package tvnep

import (
	"math"
	"testing"

	"tvnep/internal/core"
	"tvnep/internal/lp"
	"tvnep/internal/workload"
)

// TestPresolveRoundTripModelFamilies solves the LP relaxation of every model
// family (Δ, Σ, cΣ and the discrete baseline) through the presolve layer and
// verifies the postsolved solution against the ORIGINAL rows and bounds, and
// against a direct no-presolve simplex run: same status, same objective,
// every constraint satisfied within 1e-6.
func TestPresolveRoundTripModelFamilies(t *testing.T) {
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 4
	wl.FlexibilityHr = 2
	sc := workload.Generate(wl, 3)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	opts := core.BuildOptions{Objective: core.AccessControl, FixedMapping: sc.Mapping}

	problems := map[string]*lp.Problem{
		"delta":    core.Build(core.Delta, inst, opts).Model.LP(),
		"sigma":    core.Build(core.Sigma, inst, opts).Model.LP(),
		"csigma":   core.Build(core.CSigma, inst, opts).Model.LP(),
		"discrete": core.BuildDiscrete(inst, opts, 1.0).Model.LP(),
	}
	for name, p := range problems {
		t.Run(name, func(t *testing.T) {
			via := lp.Solve(p, nil)
			direct := lp.NewInstance(p).Solve(nil)
			if via.Status != direct.Status {
				t.Fatalf("status %v (presolved) vs %v (direct)", via.Status, direct.Status)
			}
			if via.Status != lp.StatusOptimal {
				t.Fatalf("relaxation status %v, want optimal", via.Status)
			}
			if math.Abs(via.Obj-direct.Obj) > 1e-6*(1+math.Abs(direct.Obj)) {
				t.Fatalf("obj %v (presolved) vs %v (direct)", via.Obj, direct.Obj)
			}
			for j, v := range via.X {
				if v < p.ColLB[j]-1e-6 || v > p.ColUB[j]+1e-6 {
					t.Fatalf("column %d (%s): value %v outside [%v, %v]",
						j, p.ColName[j], v, p.ColLB[j], p.ColUB[j])
				}
			}
			for i := 0; i < p.NumRows(); i++ {
				idx, val := p.Row(i)
				act := 0.0
				for k, jj := range idx {
					act += val[k] * via.X[jj]
				}
				if act < p.RowLB[i]-1e-6 || act > p.RowUB[i]+1e-6 {
					t.Fatalf("row %d (%s): activity %v outside [%v, %v]",
						i, p.RowName[i], act, p.RowLB[i], p.RowUB[i])
				}
			}
		})
	}
}
