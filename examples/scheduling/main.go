// Scheduling objectives on a fixed VNet set (Section IV-E-2/3): maximize
// earliness (start every job as soon as the network allows, weighted by an
// earliness fee) and balance node load over time (maximize the number of
// substrate nodes that never exceed half their capacity).
//
// A batch-processing pipeline of three jobs shares one small substrate; the
// example prints both optimal schedules side by side.
//
//	go run ./examples/scheduling
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/graph"
	"tvnep/internal/model"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

func job(name string, demand, earliest, duration, latest float64) *vnet.Request {
	return &vnet.Request{
		Name:       name,
		G:          graph.NewDigraph(1),
		NodeDemand: []float64{demand},
		LinkDemand: []float64{},
		Earliest:   earliest,
		Duration:   duration,
		Latest:     latest,
	}
}

func main() {
	sub := substrate.Grid(1, 3, 1, 1)
	reqs := []*vnet.Request{
		job("etl", 1, 0, 2, 8),
		job("train", 1, 0, 3, 8),
		job("report", 1, 2, 1, 8),
	}
	// All three jobs pinned onto substrate node 1: they must time-share it.
	mapping := vnet.NodeMapping{{1}, {1}, {1}}
	inst := &core.Instance{Sub: sub, Reqs: reqs, Horizon: 8}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Maximize earliness (every job as early as contention permits) ==")
	b := core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.MaxEarliness,
		FixedMapping: mapping,
	})
	sol, ms := b.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(30*time.Second)))
	if sol == nil {
		log.Fatalf("earliness solve failed: %v", ms.Status)
	}
	fmt.Printf("objective (fee) %.3f, status %v\n", sol.Objective, ms.Status)
	for r, req := range reqs {
		fmt.Printf("  %-7s [%.2f, %.2f] (earliest possible start %.2f)\n",
			req.Name, sol.Start[r], sol.End[r], req.Earliest)
	}

	fmt.Println("\n== Balance node load (maximize nodes never above 50% capacity) ==")
	// Free node mapping this time: the model may spread the jobs across the
	// three substrate nodes — but every node used above 50% costs a point.
	b = core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.BalanceNodeLoad,
		LoadFraction: 0.5,
	})
	sol, ms = b.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(30*time.Second)))
	if sol == nil {
		log.Fatalf("balance solve failed: %v", ms.Status)
	}
	fmt.Printf("objective (nodes ≤ 50%% loaded) %.0f of %d, status %v\n",
		sol.Objective, sub.NumNodes(), ms.Status)
	for r, req := range reqs {
		fmt.Printf("  %-7s [%.2f, %.2f] on substrate node %d\n",
			req.Name, sol.Start[r], sol.End[r], sol.Hosts[r][0])
	}
}
