// Energy savings via link disabling (Section IV-E-4): given an admitted set
// of VNets, the operator schedules and routes them so that as many substrate
// links as possible carry no traffic over the whole horizon and can be
// powered down.
//
// The example shows how temporal flexibility concentrates traffic onto
// fewer links: with slack, the solver serializes the VNets over one short
// path; without it they run concurrently and must fan out.
//
//	go run ./examples/energy
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/graph"
	"tvnep/internal/model"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// flowPrintCutoff is the flow fraction below which a link is omitted from
// the printed route breakdown.
const flowPrintCutoff = 1e-6

// pairRequest builds a 2-VM request with one virtual link.
func pairRequest(name string, linkDemand, earliest, duration, latest float64) *vnet.Request {
	g := graph.NewDigraph(2)
	g.AddEdge(0, 1)
	return &vnet.Request{
		Name:       name,
		G:          g,
		NodeDemand: []float64{0.5, 0.5},
		LinkDemand: []float64{linkDemand},
		Earliest:   earliest,
		Duration:   duration,
		Latest:     latest,
	}
}

func solve(reqs []*vnet.Request, horizon float64) {
	// 2×2 grid: 4 nodes, 8 directed links.
	sub := substrate.Grid(2, 2, 4, 1)
	inst := &core.Instance{Sub: sub, Reqs: reqs, Horizon: horizon}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}
	// Both requests between substrate corners 0 and 3: paths 0→1→3 or
	// 0→2→3 (splittable).
	mapping := vnet.NodeMapping{{0, 3}, {0, 3}}
	b := core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.DisableLinks,
		FixedMapping: mapping,
	})
	sol, ms := b.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(60*time.Second)))
	if sol == nil {
		log.Fatalf("solve failed: %v", ms.Status)
	}
	fmt.Printf("  disabled links: %.0f of %d  (status %v)\n", sol.Objective, sub.NumLinks(), ms.Status)
	for r, req := range reqs {
		fmt.Printf("  %-6s scheduled [%.2f, %.2f]; link flows:", req.Name, sol.Start[r], sol.End[r])
		for ls, f := range sol.Flows[r][0] {
			if f > flowPrintCutoff {
				u, v := sub.G.Edge(ls)
				fmt.Printf("  %d→%d:%.2f", u, v, f)
			}
		}
		fmt.Println()
	}
}

func main() {
	fmt.Println("== Rigid: both transfers run concurrently (must split across paths) ==")
	solve([]*vnet.Request{
		// Each demands the full capacity of a link; concurrent execution
		// forces them onto disjoint paths → 4 links busy.
		pairRequest("bulk-a", 1, 0, 2, 2),
		pairRequest("bulk-b", 1, 0, 2, 2),
	}, 2)

	fmt.Println()
	fmt.Println("== Flexible: 2 h of slack lets the solver serialize them on one path ==")
	solve([]*vnet.Request{
		pairRequest("bulk-a", 1, 0, 2, 4),
		pairRequest("bulk-b", 1, 0, 2, 4),
	}, 4)
}
