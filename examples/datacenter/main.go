// Datacenter admission control: the paper's headline scenario. A day's
// worth of virtual-cluster requests (star topologies, Poisson arrivals,
// Weibull durations) arrives at a grid datacenter network; the operator
// maximizes revenue by deciding which VNets to admit and when to run them.
//
// The example contrasts three operating points on the same workload:
//
//  1. no temporal flexibility (every request must start on arrival),
//
//  2. flexible requests solved exactly with the cΣ-Model,
//
//  3. flexible requests admitted by the fast greedy cΣ_A^G.
//
//     go run ./examples/datacenter
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/greedy"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/workload"
)

func solveExact(sc *workload.Scenario) *solution.Solution {
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	b := core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.AccessControl,
		FixedMapping: sc.Mapping,
	})
	sol, ms := b.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(90*time.Second)))
	if sol == nil {
		log.Fatalf("exact solve failed: %v", ms.Status)
	}
	if err := solution.Check(sc.Substrate, sc.Requests, sol); err != nil {
		log.Fatalf("exact solution failed verification: %v", err)
	}
	return sol
}

func main() {
	cfg := workload.Default()
	cfg.GridRows, cfg.GridCols = 2, 2
	cfg.NumRequests = 5
	const seed = 47

	fmt.Println("== Rigid requests (flexibility 0) ==")
	rigid := workload.Generate(cfg, seed)
	rigidSol := solveExact(rigid)
	fmt.Printf("accepted %d/%d requests, revenue %.2f\n\n",
		rigidSol.NumAccepted(), len(rigid.Requests), rigidSol.Objective)

	fmt.Println("== Flexible requests (3 h slack), exact cΣ-Model ==")
	cfg.FlexibilityHr = 3 // 180 minutes of slack per request
	flex := workload.Generate(cfg, seed)
	flexSol := solveExact(flex)
	fmt.Printf("accepted %d/%d requests, revenue %.2f (%.1f%% over rigid)\n",
		flexSol.NumAccepted(), len(flex.Requests), flexSol.Objective,
		100*(flexSol.Objective-rigidSol.Objective)/rigidSol.Objective)
	for r, req := range flex.Requests {
		mark := "✗"
		if flexSol.Accepted[r] {
			mark = "✓"
		}
		fmt.Printf("  %s %-4s window [%5.2f, %5.2f]  scheduled [%5.2f, %5.2f]  d=%.2f\n",
			mark, req.Name, req.Earliest, req.Latest, flexSol.Start[r], flexSol.End[r], req.Duration)
	}

	fmt.Println("\n== Flexible requests, greedy cΣ_A^G ==")
	inst := &core.Instance{Sub: flex.Substrate, Reqs: flex.Requests, Horizon: flex.Horizon}
	gsol, gstats, err := greedy.Solve(context.Background(), inst, flex.Mapping, core.BuildOptions{}, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := solution.Check(flex.Substrate, flex.Requests, gsol); err != nil {
		log.Fatalf("greedy solution failed verification: %v", err)
	}
	lost := 0.0
	if flexSol.Objective > 0 {
		lost = 100 * (flexSol.Objective - gsol.Objective) / flexSol.Objective
	}
	fmt.Printf("accepted %d/%d, revenue %.2f (%.1f%% below optimal) in %v (%d iterations)\n",
		gsol.NumAccepted(), len(flex.Requests), gsol.Objective, lost,
		gstats.TotalRuntime.Round(time.Millisecond), gstats.Iterations)
}
