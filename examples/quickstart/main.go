// Quickstart: build a tiny Temporal VNet Embedding Problem by hand, solve
// it to optimality with the cΣ-Model, and print the resulting schedule.
//
// Two virtual clusters compete for the same substrate node. Without
// temporal flexibility only one fits; the scheduling slack granted below
// lets the solver run them back to back and accept both — the paper's core
// observation in its smallest form.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"tvnep/internal/core"
	"tvnep/internal/graph"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

func main() {
	// Substrate: a 1×2 grid (two nodes, one bidirected link), node
	// capacity 1, link capacity 1 (Table I).
	sub := substrate.Grid(1, 2, 1, 1)

	// Two single-VM requests, both demanding the full capacity of their
	// host, each lasting 2 h with a 4 h window (Tables II and VI).
	mkReq := func(name string) *vnet.Request {
		return &vnet.Request{
			Name:       name,
			G:          graph.NewDigraph(1),
			NodeDemand: []float64{1},
			LinkDemand: []float64{},
			Earliest:   0,
			Duration:   2,
			Latest:     4, // 2 h of temporal flexibility
		}
	}
	reqs := []*vnet.Request{mkReq("red"), mkReq("blue")}

	inst := &core.Instance{Sub: sub, Reqs: reqs, Horizon: 4}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	// Both requests are pinned onto substrate node 0, as in the paper's
	// evaluation; the solver decides *when* each runs.
	built := core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.AccessControl,
		FixedMapping: vnet.NodeMapping{{0}, {0}},
	})
	fmt.Printf("cΣ-Model: %d variables, %d constraints, %d binaries\n",
		built.Model.NumVars(), built.Model.NumConstrs(), built.Model.NumIntVars())

	sol, ms := built.Solve(context.Background(), nil)
	if sol == nil {
		log.Fatalf("no solution (status %v)", ms.Status)
	}
	if err := solution.Check(sub, reqs, sol); err != nil {
		log.Fatalf("solution failed verification: %v", err)
	}

	fmt.Printf("status: %v   objective (revenue): %.2f   accepted: %d/2\n",
		ms.Status, sol.Objective, sol.NumAccepted())
	for r, req := range reqs {
		fmt.Printf("  %-5s runs [%.2f, %.2f] on substrate node %d\n",
			req.Name, sol.Start[r], sol.End[r], sol.Hosts[r][0])
	}
	fmt.Println("\nWith zero flexibility (Latest = 2) the same instance accepts only one request:")
	for _, req := range reqs {
		req.Latest = 2
	}
	inst.Horizon = 2
	built = core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.AccessControl,
		FixedMapping: vnet.NodeMapping{{0}, {0}},
	})
	sol, _ = built.Solve(context.Background(), nil)
	fmt.Printf("  accepted: %d/2, objective %.2f\n", sol.NumAccepted(), sol.Objective)
}
