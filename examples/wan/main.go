// WAN bulk-transfer scheduling: the paper's B4 motivation (Section I).
// A software-defined WAN connects a handful of datacenters; bandwidth-
// intensive data copies between sites are planned centrally. Each copy is a
// 2-VM virtual network with a deadline window; the controller admits and
// schedules them so that no WAN link is ever oversubscribed.
//
//	go run ./examples/wan
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/graph"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// flowPrintCutoff is the flow fraction below which a link is omitted from
// the printed route breakdown.
const flowPrintCutoff = 1e-6

// wan builds a 5-site topology: a ring with one chord (B4-like sparse WAN).
func wan() *substrate.Network {
	g := graph.NewDigraph(5)
	ring := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}}
	for _, e := range ring {
		g.AddEdge(e[0], e[1])
		g.AddEdge(e[1], e[0])
	}
	// Sites have ample compute; links carry 10 Gb/s of schedulable volume.
	return substrate.New(g, 100, 10)
}

// transfer is a bulk copy src→dst consuming gbps of bandwidth for the given
// number of hours, to be finished within the window.
func transfer(name string, gbps, earliest, hours, latest float64) *vnet.Request {
	g := graph.NewDigraph(2)
	g.AddEdge(0, 1)
	return &vnet.Request{
		Name:       name,
		G:          g,
		NodeDemand: []float64{1, 1},
		LinkDemand: []float64{gbps},
		Earliest:   earliest,
		Duration:   hours,
		Latest:     latest,
	}
}

func main() {
	sub := wan()
	// Three heavy copies out of site 0 towards site 2 (they share the ring
	// paths) plus one interactive-priority copy with a rigid window.
	reqs := []*vnet.Request{
		transfer("backup-a", 8, 0, 3, 12),
		transfer("backup-b", 8, 0, 3, 12),
		transfer("index-sync", 8, 0, 3, 12),
		transfer("hotfix", 6, 2, 1, 3), // rigid: must run exactly at [2,3]
	}
	// Endpoints: all copies 0 → 2; the hotfix 1 → 3.
	mapping := vnet.NodeMapping{{0, 2}, {0, 2}, {0, 2}, {1, 3}}
	horizon := 12.0
	inst := &core.Instance{Sub: sub, Reqs: reqs, Horizon: horizon}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	b := core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.AccessControl,
		FixedMapping: mapping,
	})
	sol, ms := b.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(2*time.Minute)))
	if sol == nil {
		log.Fatalf("no plan found: %v", ms.Status)
	}
	if err := solution.Check(sub, reqs, sol); err != nil {
		log.Fatalf("plan failed verification: %v", err)
	}
	fmt.Printf("admitted %d/%d transfers (status %v, %d B&B nodes)\n\n",
		sol.NumAccepted(), len(reqs), ms.Status, ms.Nodes)
	for r, req := range reqs {
		if !sol.Accepted[r] {
			fmt.Printf("  %-10s REJECTED\n", req.Name)
			continue
		}
		fmt.Printf("  %-10s [%5.2f, %5.2f]  route:", req.Name, sol.Start[r], sol.End[r])
		for ls, f := range sol.Flows[r][0] {
			if f > flowPrintCutoff {
				u, v := sub.G.Edge(ls)
				fmt.Printf(" %d→%d(%.0f%%)", u, v, f*100)
			}
		}
		fmt.Println()
	}
	fmt.Println("\nEvery copy shares the sparse WAN without oversubscribing any 10G link;")
	fmt.Println("the three flexible bulk copies are spread over the 12h window while the")
	fmt.Println("rigid hotfix claims its exact slot.")
}
