// Package tvnep's root benchmark harness: one testing.B benchmark per
// evaluation artifact of the paper (Figures 3–9 of Section VI; the paper
// has no numeric result tables — Tables I–XIV are model definitions), plus
// ablation benchmarks for the design choices called out in DESIGN.md §6.
//
// The benchmarks run miniature versions of the sweeps so that
// `go test -bench=. -benchmem` terminates in minutes; `cmd/tvnep-bench`
// regenerates the full figures at configurable scale.
package tvnep

import (
	"context"
	"math"
	"testing"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/eval"
	"tvnep/internal/greedy"
	"tvnep/internal/model"
	"tvnep/internal/workload"
)

// benchConfig is the miniature sweep used by the figure benchmarks.
func benchConfig() eval.Config {
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 3
	wl.StarLeaves = 1
	return eval.Config{
		Workload:    wl,
		FlexMinutes: []float64{0, 120},
		Seeds:       []int64{1, 2},
		Solve:       model.SolveOptions{TimeLimit: 10 * time.Second},
	}
}

// reportSeries flattens figure series into benchmark metrics (median of the
// last flexibility step, which the paper's plots emphasize). Metric units
// must contain no whitespace (testing.B.ReportMetric panics otherwise), so
// labels are slugged.
func reportSeries(b *testing.B, series []eval.Series, metric string) {
	b.Helper()
	for _, s := range series {
		if len(s.Summaries) == 0 {
			continue
		}
		last := s.Summaries[len(s.Summaries)-1]
		if !math.IsNaN(last.Median) {
			b.ReportMetric(last.Median, metric+":"+slug(s.Label))
		}
	}
}

// slug converts a series label into a ReportMetric-safe unit string.
func slug(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == 'Δ':
			out = append(out, 'D')
		case r == 'Σ':
			out = append(out, 'S')
		default:
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	return string(out)
}

// BenchmarkFig3Runtime regenerates Figure 3: runtime of the Δ-, Σ- and
// cΣ-Model under access control as flexibility grows.
func BenchmarkFig3Runtime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		recs := cfg.AccessControlSweep(context.Background(), []core.Formulation{core.Delta, core.Sigma, core.CSigma}, nil)
		if i == 0 {
			reportSeries(b, eval.Figure3(recs, cfg), "median_runtime_s")
		}
	}
}

// BenchmarkFig4Gap regenerates Figure 4: the optimality gap left after the
// time limit, per formulation.
func BenchmarkFig4Gap(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		recs := cfg.AccessControlSweep(context.Background(), []core.Formulation{core.Delta, core.Sigma, core.CSigma}, nil)
		if i == 0 {
			reportSeries(b, eval.Figure4(recs, cfg), "median_gap_pct")
		}
	}
}

// BenchmarkFig5ObjectivesRuntime regenerates Figure 5: cΣ runtime under the
// three fixed-set objectives.
func BenchmarkFig5ObjectivesRuntime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		recs := cfg.ObjectivesSweep(context.Background(), nil)
		if i == 0 {
			reportSeries(b, eval.Figure5(recs, cfg), "median_runtime_s")
		}
	}
}

// BenchmarkFig6ObjectivesGap regenerates Figure 6: cΣ gap under the three
// fixed-set objectives.
func BenchmarkFig6ObjectivesGap(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		recs := cfg.ObjectivesSweep(context.Background(), nil)
		if i == 0 {
			reportSeries(b, eval.Figure6(recs, cfg), "median_gap_pct")
		}
	}
}

// BenchmarkFig7GreedyQuality regenerates Figure 7: the relative performance
// of greedy cΣ_A^G versus the exact cΣ-Model.
func BenchmarkFig7GreedyQuality(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		recs := cfg.GreedySweep(context.Background(), nil)
		if i == 0 {
			reportSeries(b, eval.Figure7(recs, cfg), "median_gap_pct")
		}
	}
}

// BenchmarkFig8Accepted regenerates Figure 8: requests embedded by the
// cΣ-Model per flexibility step.
func BenchmarkFig8Accepted(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		recs := cfg.AccessControlSweep(context.Background(), []core.Formulation{core.CSigma}, nil)
		if i == 0 {
			reportSeries(b, eval.Figure8(recs, cfg), "median_accepted")
		}
	}
}

// BenchmarkFig9Improvement regenerates Figure 9: the relative improvement
// of the access-control objective over the rigid (flexibility-0) schedule.
func BenchmarkFig9Improvement(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		recs := cfg.AccessControlSweep(context.Background(), []core.Formulation{core.CSigma}, nil)
		if i == 0 {
			reportSeries(b, eval.Figure9(recs, cfg), "median_improvement_pct")
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §6) ---

func benchCSigmaVariant(b *testing.B, noCuts, noPresolve bool) {
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 4
	wl.StarLeaves = 1
	wl.FlexibilityHr = 2
	sc := workload.Generate(wl, 7)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	b.ResetTimer()
	cutMode := core.CutStatic
	if noCuts {
		cutMode = core.CutOff
	}
	for i := 0; i < b.N; i++ {
		built := core.BuildCSigma(inst, core.BuildOptions{
			Objective:       core.AccessControl,
			FixedMapping:    sc.Mapping,
			CutMode:         cutMode,
			DisablePresolve: noPresolve,
		})
		sol, ms := built.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(30*time.Second)))
		if sol == nil || ms.Status != model.StatusOptimal {
			b.Fatalf("variant solve failed: %v", ms.Status)
		}
		if i == 0 {
			b.ReportMetric(float64(built.Model.NumVars()), "model_vars")
			b.ReportMetric(float64(built.Model.NumConstrs()), "model_constrs")
			b.ReportMetric(float64(ms.Nodes), "bb_nodes")
		}
	}
}

// BenchmarkAblationCSigmaFull is the full cΣ-Model (cuts + presolve).
func BenchmarkAblationCSigmaFull(b *testing.B) { benchCSigmaVariant(b, false, false) }

// BenchmarkAblationCSigmaNoCuts disables the temporal dependency graph cuts
// (Constraints 19/20).
func BenchmarkAblationCSigmaNoCuts(b *testing.B) { benchCSigmaVariant(b, true, false) }

// BenchmarkAblationCSigmaNoPresolve disables the activity-interval
// state-space reduction.
func BenchmarkAblationCSigmaNoPresolve(b *testing.B) { benchCSigmaVariant(b, false, true) }

// BenchmarkAblationCSigmaBare disables both.
func BenchmarkAblationCSigmaBare(b *testing.B) { benchCSigmaVariant(b, true, true) }

// BenchmarkGreedyEndToEnd measures one full cΣ_A^G run on the default
// evaluation scenario (the paper reports ~0.1 s per iteration).
func BenchmarkGreedyEndToEnd(b *testing.B) {
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 5
	wl.FlexibilityHr = 3
	sc := workload.Generate(wl, 1)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := greedy.Solve(context.Background(), inst, sc.Mapping, core.BuildOptions{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelBuildCSigma measures pure model construction time (no
// solving): the compactification should keep builds cheap even at the
// paper's scale.
func BenchmarkModelBuildCSigma(b *testing.B) {
	wl := workload.PaperScale()
	wl.FlexibilityHr = 3
	sc := workload.Generate(wl, 1)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		built := core.BuildCSigma(inst, core.BuildOptions{
			Objective:    core.AccessControl,
			FixedMapping: sc.Mapping,
		})
		if built.Model.NumVars() == 0 {
			b.Fatal("empty model")
		}
	}
}

// BenchmarkLPRelaxationCSigma measures a single LP-relaxation solve of the
// cΣ-Model at the default evaluation scale (the unit of work inside every
// branch-and-bound node).
func BenchmarkLPRelaxationCSigma(b *testing.B) {
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 5
	wl.FlexibilityHr = 2
	sc := workload.Generate(wl, 1)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	built := core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.AccessControl,
		FixedMapping: sc.Mapping,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := built.Model.Relax()
		if !sol.HasSolution {
			b.Fatal("relaxation not solved")
		}
	}
}

// --- Worker-pool scaling benchmarks ---

// benchSweepWorkers runs the cΣ access-control sweep with a fixed worker
// count. Comparing BenchmarkSweepWorkers1 against BenchmarkSweepWorkersCPU
// quantifies the parallel speedup of the evaluation engine; on a machine
// with W ≥ 4 cores the sweep (16 independent scenarios) is expected to run
// ≥ 2× faster with the pool than serially.
func benchSweepWorkers(b *testing.B, workers int) {
	cfg := benchConfig()
	cfg.FlexMinutes = []float64{0, 60, 120, 180}
	cfg.Seeds = []int64{1, 2, 3, 4}
	cfg.Solve.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := cfg.AccessControlSweep(context.Background(), []core.Formulation{core.CSigma}, nil)
		if len(recs) != len(cfg.FlexMinutes)*len(cfg.Seeds) {
			b.Fatalf("%d records", len(recs))
		}
	}
}

// BenchmarkSweepWorkers1 is the serial baseline.
func BenchmarkSweepWorkers1(b *testing.B) { benchSweepWorkers(b, 1) }

// BenchmarkSweepWorkersCPU uses one worker per CPU (the default).
func BenchmarkSweepWorkersCPU(b *testing.B) { benchSweepWorkers(b, 0) }
