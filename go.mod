module tvnep

go 1.22
