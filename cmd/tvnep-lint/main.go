// tvnep-lint is the repository's custom static-analysis gate: the floateq,
// ctxflow, errdrop, maporder, nondet, hotalloc and waiverstale analyzers
// (see internal/analyzers) packaged as a `go vet -vettool`. It speaks the
// cmd/go unitchecker protocol directly — no golang.org/x/tools dependency —
// so it builds offline from the standard library alone, and it carries real
// per-analyzer facts through the protocol's vetx files so cross-package
// rules (hot-path annotation coverage, nondeterminism taint) see imported
// packages in dependency order.
//
// Usage:
//
//	go vet -vettool=$(command -v tvnep-lint) ./...        # vettool mode
//	go vet -vettool=... -json ./...                       # JSON diagnostics
//	go vet -vettool=... -only=floateq,hotalloc ./...      # subset
//	tvnep-lint ./...                                      # standalone: re-execs go vet
//
// Findings print to stderr as file:line:col: analyzer: message and make the
// process exit non-zero; with -json they print to stdout as the unitchecker
// JSON object {"pkg": {"analyzer": [{"posn", "message"}]}} and the exit code
// stays zero (diagnostics become data). Intentional violations are waived in
// source with `//lint:allow <analyzer> -- reason`; waivers that stop
// suppressing anything are themselves flagged by waiverstale.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"tvnep/internal/analysis"
	"tvnep/internal/analyzers"
)

// lintOpts are the tool flags cmd/go forwards after validating them against
// the -flags probe.
type lintOpts struct {
	json bool
	only []string
}

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full"):
		printVersion()
		return
	case len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags"):
		// Tool flags cmd/go may forward; the schema is the one cmd/go's
		// vetFlags parser expects ({Name, Bool, Usage} objects).
		fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON on stdout and exit 0"},` +
			`{"Name":"only","Bool":false,"Usage":"comma-separated subset of analyzers to run"}]`)
		return
	}
	var opts lintOpts
	var rest []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json" || a == "-json=true":
			opts.json = true
		case strings.HasPrefix(a, "-only="), strings.HasPrefix(a, "--only="):
			opts.only = splitNames(a[strings.Index(a, "=")+1:])
		case (a == "-only" || a == "--only") && i+1 < len(args):
			i++
			opts.only = splitNames(args[i])
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		runUnit(rest[0], opts)
		return
	}
	standalone(args)
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// printVersion answers cmd/go's tool-identity probe. The buildID must
// change whenever the tool's behavior changes, so it is a content hash of
// the executable itself — stale vet caches invalidate automatically after
// a rebuild.
func printVersion() {
	progname, _ := os.Executable()
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// standalone re-execs `go vet -vettool=<self>` so `tvnep-lint ./...` works
// as a plain command, with cmd/go doing the package loading. Leading flags
// (-json, -only=...) pass through to the per-package tool invocations.
func standalone(args []string) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tvnep-lint: %v\n", err)
		os.Exit(1)
	}
	var flags, patterns []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			flags = append(flags, a)
		} else {
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	vetArgs := append([]string{"vet", "-vettool=" + self}, flags...)
	cmd := exec.Command("go", append(vetArgs, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "tvnep-lint: %v\n", err)
		os.Exit(1)
	}
}

// unitConfig mirrors the JSON config cmd/go writes for each package when
// driving a vettool (the unitchecker protocol).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxMagic is the first line of every facts file the tool writes. Files
// without it (older tool versions, foreign tools) read as fact-free.
const vetxMagic = "tvnep-lint facts v2\n"

// vetxFacts adapts the unitchecker vetx files to analysis.Facts: imported
// packages' blobs come from cfg.PackageVetx, and this package's exports
// accumulate for writeVetx.
type vetxFacts struct {
	importMap map[string]string // source import path -> canonical
	files     map[string]string // canonical import path -> vetx file
	cache     map[string]map[string]json.RawMessage
	out       map[string]json.RawMessage
}

func newVetxFacts(cfg *unitConfig) *vetxFacts {
	return &vetxFacts{
		importMap: cfg.ImportMap,
		files:     cfg.PackageVetx,
		cache:     make(map[string]map[string]json.RawMessage),
		out:       make(map[string]json.RawMessage),
	}
}

func (v *vetxFacts) Read(pkgPath, analyzer string) []byte {
	file, ok := v.files[pkgPath]
	if !ok {
		if canon, c := v.importMap[pkgPath]; c {
			file, ok = v.files[canon]
		}
		if !ok {
			return nil
		}
	}
	blobs, ok := v.cache[file]
	if !ok {
		blobs = parseVetx(file)
		v.cache[file] = blobs
	}
	return blobs[analyzer]
}

func (v *vetxFacts) Write(analyzer string, data []byte) {
	v.out[analyzer] = json.RawMessage(data)
}

func parseVetx(file string) map[string]json.RawMessage {
	data, err := os.ReadFile(file)
	if err != nil || !strings.HasPrefix(string(data), vetxMagic) {
		return nil
	}
	var blobs map[string]json.RawMessage
	if err := json.Unmarshal(data[len(vetxMagic):], &blobs); err != nil {
		return nil
	}
	return blobs
}

// runUnit analyzes one package as described by the .cfg file and exits with
// cmd/go's expected status: 0 clean, 2 findings, 1 operational failure. In
// JSON mode findings go to stdout as data and the exit status stays 0.
func runUnit(cfgPath string, opts lintOpts) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("read config: %v", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parse config %s: %v", cfgPath, err)
	}
	facts := newVetxFacts(&cfg)
	// cmd/go schedules the tool over dependencies (stdlib included) purely
	// to propagate facts. Analyzing the standard library would dwarf the
	// lint run itself, so out-of-module fact-only invocations acknowledge
	// with an empty facts file; the analyzers' cross-package rules degrade
	// gracefully when an import carries no facts. In-module dependencies DO
	// run the full analysis with diagnostics discarded: cmd/go often vets a
	// package twice (a fact-only library unit feeding dependents plus a root
	// unit carrying its in-package tests), and dependents read the fact-only
	// unit's vetx — it must hold the real facts.
	if cfg.VetxOnly && !inModule(&cfg) {
		writeVetx(cfg.VetxOutput, facts)
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg.VetxOutput, facts)
				os.Exit(0)
			}
			fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	conf := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
			if canon, ok := cfg.ImportMap[path]; ok {
				path = canon
			}
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
		Sizes: types.SizesFor(cfg.Compiler, "amd64"),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput, facts)
			os.Exit(0)
		}
		fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	diags, err := analysis.RunWithFacts(fset, files, pkg, info, analyzers.ByName(opts.only), facts)
	if err != nil {
		fatalf("analyze %s: %v", cfg.ImportPath, err)
	}
	writeVetx(cfg.VetxOutput, facts)
	if cfg.VetxOnly {
		os.Exit(0) // fact-only unit: the root unit reports the diagnostics
	}
	if opts.json {
		printJSON(cfg.ID, diags)
		os.Exit(0)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// jsonDiagnostic mirrors the x/tools unitchecker -json wire shape.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

// printJSON emits the unitchecker JSON object for one package:
// {"pkgID": {"analyzer": [{"posn", "message"}, ...]}}.
func printJSON(pkgID string, diags []analysis.Diagnostic) {
	byAnalyzer := make(map[string][]jsonDiagnostic)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagnostic{
			Posn:    d.Posn.String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiagnostic{pkgID: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fatalf("encode json: %v", err)
	}
}

// writeVetx persists the package's exported facts at VetxOutput, where
// cmd/go hands them to dependent packages' invocations via PackageVetx.
func writeVetx(path string, facts *vetxFacts) {
	if path == "" {
		return
	}
	blob, err := json.Marshal(facts.out)
	if err != nil {
		fatalf("marshal facts: %v", err)
	}
	if err := os.WriteFile(path, append([]byte(vetxMagic), blob...), 0o666); err != nil {
		fatalf("write vetx: %v", err)
	}
}

// inModule reports whether the unit belongs to the module under analysis.
// Standard-library units carry an empty ModulePath (and do not list
// themselves in cfg.Standard), so the import path must match the module
// path to count as in-module.
func inModule(cfg *unitConfig) bool {
	return cfg.ModulePath != "" &&
		(cfg.ImportPath == cfg.ModulePath ||
			strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/"))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tvnep-lint: "+format+"\n", args...)
	os.Exit(1)
}
