// tvnep-lint is the repository's custom static-analysis gate: the floateq,
// ctxflow and errdrop analyzers (see internal/analyzers) packaged as a
// `go vet -vettool`. It speaks the cmd/go unitchecker protocol directly —
// no golang.org/x/tools dependency — so it builds offline from the standard
// library alone.
//
// Usage:
//
//	go vet -vettool=$(command -v tvnep-lint) ./...   # vettool mode
//	tvnep-lint ./...                                 # standalone: re-execs go vet
//
// Findings print to stderr as file:line:col: analyzer: message and make the
// process exit non-zero, so the tool doubles as a CI gate. Intentional
// violations are waived in source with `//lint:allow <analyzer> -- reason`.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"

	"tvnep/internal/analysis"
	"tvnep/internal/analyzers"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full"):
		printVersion()
	case len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags"):
		// No tool-specific flags; cmd/go requires valid JSON here.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		runUnit(args[0])
	default:
		standalone(args)
	}
}

// printVersion answers cmd/go's tool-identity probe. The buildID must
// change whenever the tool's behavior changes, so it is a content hash of
// the executable itself — stale vet caches invalidate automatically after
// a rebuild.
func printVersion() {
	progname, _ := os.Executable()
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f) //lint:allow errdrop -- hash of self is best-effort; a partial hash still changes on rebuild
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}

// standalone re-execs `go vet -vettool=<self>` so `tvnep-lint ./...` works
// as a plain command, with cmd/go doing the package loading.
func standalone(patterns []string) {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tvnep-lint: %v\n", err)
		os.Exit(1)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "tvnep-lint: %v\n", err)
		os.Exit(1)
	}
}

// unitConfig mirrors the JSON config cmd/go writes for each package when
// driving a vettool (the unitchecker protocol).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package as described by the .cfg file and exits with
// cmd/go's expected status: 0 clean, 2 findings, 1 operational failure.
func runUnit(cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("read config: %v", err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parse config %s: %v", cfgPath, err)
	}
	// cmd/go schedules the tool over dependencies (stdlib included) purely
	// to propagate facts. This suite keeps no cross-package facts, so
	// fact-only invocations just acknowledge with an output file.
	if cfg.VetxOnly {
		writeVetx(cfg.VetxOutput)
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx(cfg.VetxOutput)
				os.Exit(0)
			}
			fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	conf := types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
			if canon, ok := cfg.ImportMap[path]; ok {
				path = canon
			}
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}),
		Sizes: types.SizesFor(cfg.Compiler, "amd64"),
	}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewTypesInfo()
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(cfg.VetxOutput)
			os.Exit(0)
		}
		fatalf("typecheck %s: %v", cfg.ImportPath, err)
	}

	diags, err := analysis.Run(fset, files, pkg, info, analyzers.All)
	if err != nil {
		fatalf("analyze %s: %v", cfg.ImportPath, err)
	}
	writeVetx(cfg.VetxOutput)
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// writeVetx writes the (empty) facts file cmd/go expects at VetxOutput.
func writeVetx(path string) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte("tvnep-lint facts v1\n"), 0o666); err != nil {
		fatalf("write vetx: %v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tvnep-lint: "+format+"\n", args...)
	os.Exit(1)
}
