package main_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildLint compiles the vettool once per test binary into a temp dir and
// returns its absolute path.
func buildLint(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "tvnep-lint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build tvnep-lint: %v\n%s", err, out)
	}
	return bin
}

// writeFixtureModule lays out a self-contained module exercising the
// protocol: a clean package, a dirty one (floateq finding), a waived one,
// a stale-waiver one, and a two-package hot/a hot/b pair whose finding only
// exists if hotalloc facts flow across the package boundary in dependency
// order.
func writeFixtureModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module lintfix\n\ngo 1.21\n",
		"clean/clean.go": `package clean

func Add(a, b int) int { return a + b }
`,
		"dirty/dirty.go": `package dirty

func Same(a, b float64) bool { return a == b }
`,
		"waived/waived.go": `package waived

func Same(a, b float64) bool {
	//lint:allow floateq -- exact representability is guaranteed by the caller
	return a == b
}
`,
		"stale/stale.go": `package stale

func Same(a, b int) bool {
	//lint:allow floateq -- left over from a float refactor
	return a == b
}
`,
		"hot/a/a.go": `package a

// Step is the annotated hot kernel.
//
//hot:path
func Step(v []float64) float64 {
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t
}

// Cold carries no annotation, so hot callers in other packages must not
// call it without a waiver.
func Cold(v []float64) float64 { return Step(v) }
`,
		"hot/b/b.go": `package b

import "lintfix/hot/a"

// Drive is hot and calls into package a: Step is annotated there (fine),
// Cold is not (finding, via facts).
//
//hot:path
func Drive(v []float64) float64 {
	return a.Step(v) + a.Cold(v)
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runVet drives `go vet -vettool=<bin> <flags> <pattern>` inside dir and
// returns stdout, stderr and the exit code.
func runVet(t *testing.T, dir, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + bin}, args...)...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("go vet: %v\nstderr: %s", err, stderr.String())
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// TestUnitcheckerProtocol is the end-to-end round trip for the vettool:
// cmd/go probes the binary (-V=full, -flags), writes .cfg unit configs, and
// the tool must produce the right diagnostics, exit codes, JSON shape and
// cross-package facts.
func TestUnitcheckerProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("drives go vet subprocesses; skipped in -short")
	}
	bin := buildLint(t)
	fix := writeFixtureModule(t)

	t.Run("clean-exits-zero", func(t *testing.T) {
		stdout, stderr, code := runVet(t, fix, bin, "./clean")
		if code != 0 {
			t.Fatalf("exit %d on clean package\nstdout: %s\nstderr: %s", code, stdout, stderr)
		}
	})

	t.Run("dirty-fails-with-diagnostic", func(t *testing.T) {
		_, stderr, code := runVet(t, fix, bin, "./dirty")
		if code == 0 {
			t.Fatalf("expected non-zero exit on dirty package\nstderr: %s", stderr)
		}
		if !strings.Contains(stderr, "floateq") || !strings.Contains(stderr, "==") {
			t.Fatalf("stderr missing floateq diagnostic:\n%s", stderr)
		}
		if !strings.Contains(stderr, "dirty.go:3") {
			t.Fatalf("stderr missing file:line position:\n%s", stderr)
		}
	})

	t.Run("waived-exits-zero", func(t *testing.T) {
		stdout, stderr, code := runVet(t, fix, bin, "./waived")
		if code != 0 {
			t.Fatalf("exit %d on waived package\nstdout: %s\nstderr: %s", code, stdout, stderr)
		}
	})

	t.Run("stale-waiver-fails", func(t *testing.T) {
		_, stderr, code := runVet(t, fix, bin, "./stale")
		if code == 0 {
			t.Fatalf("expected non-zero exit on stale waiver\nstderr: %s", stderr)
		}
		if !strings.Contains(stderr, "waiverstale") || !strings.Contains(stderr, "suppresses no floateq diagnostic") {
			t.Fatalf("stderr missing waiverstale diagnostic:\n%s", stderr)
		}
	})

	t.Run("json-mode-exits-zero-with-diagnostics", func(t *testing.T) {
		stdout, stderr, code := runVet(t, fix, bin, "-json", "./dirty")
		if code != 0 {
			t.Fatalf("JSON mode must exit 0 even with findings; got %d\nstderr: %s", code, stderr)
		}
		// cmd/go relays the vettool's stdout through its own build-output
		// stream (stderr), prefixed with "# pkg" comment lines; strip those
		// before decoding. Accept either stream to stay robust across go
		// versions.
		var jsonLines []string
		for _, line := range strings.Split(stdout+"\n"+stderr, "\n") {
			if !strings.HasPrefix(strings.TrimSpace(line), "#") {
				jsonLines = append(jsonLines, line)
			}
		}
		var got map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		dec := json.NewDecoder(strings.NewReader(strings.Join(jsonLines, "\n")))
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode JSON diagnostics: %v\nstdout:\n%s", err, stdout)
		}
		diags := got["lintfix/dirty"]["floateq"]
		if len(diags) != 1 {
			t.Fatalf("want exactly one floateq diagnostic for lintfix/dirty, got %#v", got)
		}
		if !strings.Contains(diags[0].Posn, "dirty.go:3") {
			t.Fatalf("posn = %q, want dirty.go:3", diags[0].Posn)
		}
		if !strings.Contains(diags[0].Message, "==") {
			t.Fatalf("message = %q, want float compare text", diags[0].Message)
		}
	})

	t.Run("facts-cross-package-hotalloc", func(t *testing.T) {
		_, stderr, code := runVet(t, fix, bin, "./hot/...")
		if code == 0 {
			t.Fatalf("expected non-zero exit: b.Drive calls unannotated a.Cold\nstderr: %s", stderr)
		}
		if !strings.Contains(stderr, "calls a.Cold, which is not //hot:path in its package") {
			t.Fatalf("stderr missing cross-package hotalloc diagnostic:\n%s", stderr)
		}
		if strings.Contains(stderr, "a.Step") {
			t.Fatalf("a.Step is annotated hot and must not be flagged:\n%s", stderr)
		}
	})

	t.Run("only-flag-subsets-the-suite", func(t *testing.T) {
		stdout, stderr, code := runVet(t, fix, bin, "-only=floateq", "./hot/...")
		if code != 0 {
			t.Fatalf("-only=floateq must make ./hot/... clean; exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
		}
		// Subset runs must also mute waiverstale for out-of-run analyzers.
		stdout, stderr, code = runVet(t, fix, bin, "-only=errdrop", "./waived")
		if code != 0 {
			t.Fatalf("-only=errdrop must not judge the floateq waiver; exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
		}
	})
}
