package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"tvnep/internal/admit"
	"tvnep/internal/core"
	"tvnep/internal/lp"
	"tvnep/internal/model"
	"tvnep/internal/round"
	"tvnep/internal/stats"
	"tvnep/internal/workload"
)

// The -json mode: a machine-readable micro-benchmark of the LP solver core,
// mirroring the two guard benchmarks of the test suite
// (BenchmarkLPRelaxationCSigma and BenchmarkAblationCSigmaBare) and
// augmenting them with solver-internal statistics: simplex iterations,
// long-step ratio-test activity, warm-start success rate and factor-handoff
// rate from the lp.Debug* counters, the equilibration-scaling diagnostics
// and a steady-state allocation probe. Pass -compare with a previously
// written report to embed it as the baseline, compute speedups, and fail
// the run when ns/op or allocs/op regresses beyond regressionTol.

// regressionTol is the fractional slack the -compare regression guard
// grants over the baseline before failing the run.
// shortNsSlack is the extra ns/op slack granted in short mode: the capped
// op counts amortize less warm state per op, which reads a systematic
// 13-19% slower than the full-run baseline on an otherwise identical
// build. Allocation counts are deterministic and get no extra slack.
const (
	regressionTol = 0.10
	shortNsSlack  = 0.20
)

type lpBenchResult struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	LPItersPerOp float64 `json:"lp_iters_per_op"`
	BBNodes      float64 `json:"bb_nodes,omitempty"`
	// Long-step dual ratio-test activity (see lp.Result): nonbasic bound
	// flips absorbed without a pivot, and breakpoints walked per op.
	BoundFlipsPerOp  float64 `json:"bound_flips_per_op,omitempty"`
	RatioPassesPerOp float64 `json:"ratio_passes_per_op,omitempty"`
	// Lazy-separation statistics (LazyCutCSigma only): rows present in the
	// root LP vs rows appended on demand, separation rounds, and pool
	// dedup hits.
	CutRowsRoot      float64 `json:"cut_rows_root,omitempty"`
	CutRowsSeparated float64 `json:"cut_rows_separated,omitempty"`
	CutRounds        float64 `json:"cut_rounds,omitempty"`
	CutPoolHits      float64 `json:"cut_pool_hits,omitempty"`
	// Column-generation statistics (WANCSigmaPath only): structural columns
	// in the root LP, columns appended by pricing, pricing rounds and pool
	// dedup hits — the pricing mirror of the lazy-cut fields above.
	ColsRoot    float64 `json:"cols_root,omitempty"`
	ColsPriced  float64 `json:"cols_priced,omitempty"`
	ColRounds   float64 `json:"col_rounds,omitempty"`
	ColPoolHits float64 `json:"col_pool_hits,omitempty"`
	// Streaming-admission statistics (AdmissionStream only): per-decision
	// latency quantiles and trace-level accept / warm-restart rates.
	// RandomizedRounding reuses the quantile fields for its per-solve
	// latencies.
	P50NS      float64 `json:"p50_ns,omitempty"`
	P99NS      float64 `json:"p99_ns,omitempty"`
	AcceptRate float64 `json:"accept_rate,omitempty"`
	WarmRate   float64 `json:"warm_rate,omitempty"`
	// FallbackRate is the fraction of RandomizedRounding ops that exhausted
	// every sample and fell back to exact branch-and-bound (a pointer so a
	// genuine 0.0 rate still lands in the report, while the entry stays
	// absent from every other benchmark).
	FallbackRate *float64 `json:"fallback_rate,omitempty"`
}

type lpWarmStats struct {
	Attempts int64 `json:"attempts"`
	OK       int64 `json:"ok"`
	// FactorHandoffs counts warm starts served by an explicit
	// Result.Factors → Options.WarmFactors handoff (the parallel
	// branch-and-bound path); BasisExtensions counts warm starts whose
	// basis predated appended rows and whose LU factors were extended
	// with a bordered block instead of refactorized.
	FactorHandoffs  int64   `json:"factor_handoffs"`
	BasisExtensions int64   `json:"basis_extensions"`
	OKRate          float64 `json:"ok_rate"`
	FactorHandoffRt float64 `json:"factor_handoff_rate"`
}

// lpScalingStats reports the equilibration layer's effect on the benchmark
// model (the LPRelaxationCSigma instance): whether scaling engaged at all
// and the matrix coefficient spread max|a|/min|a| over nonzeros before and
// after. The compiled cΣ matrices are near-binary, so "scaled": false with
// equal spreads is the expected (and cheapest) outcome; the field exists so
// a model change that starts engaging the scaler is visible here.
type lpScalingStats struct {
	Scaled       bool    `json:"scaled"`
	SpreadBefore float64 `json:"spread_before"`
	SpreadAfter  float64 `json:"spread_after"`
}

type lpBenchReport struct {
	Timestamp  string          `json:"timestamp"`
	GoVersion  string          `json:"go_version"`
	Benchmarks []lpBenchResult `json:"benchmarks"`
	WarmStart  lpWarmStats     `json:"warm_start"`
	Scaling    lpScalingStats  `json:"scaling"`
	// SteadyStateAllocs is the allocation count of the simplex hot path at
	// steady state, measured differentially: allocations per warm re-solve
	// that performs dual pivots, minus the fixed result-packaging cost of
	// an identical zero-iteration re-solve, divided by the pivots
	// performed. The kernels are allocation-free, so 0 is expected.
	SteadyStateAllocs float64            `json:"steady_state_allocs"`
	Baseline          *lpBenchReport     `json:"baseline,omitempty"`
	Speedup           map[string]float64 `json:"speedup,omitempty"`
}

// measureLP times f (one op per call) with alloc accounting. f reports the
// simplex iterations it consumed; extra metrics from the first op survive
// into the result, except the ratio-test counters, which accumulate over
// every op like the iteration count.
func measureLP(name string, short bool, f func() (lpIters int, extra map[string]float64)) lpBenchResult {
	// Warmup op, also used to calibrate the iteration count to ~1s.
	t0 := time.Now()
	_, extra := f()
	per := time.Since(t0)
	n := int(time.Second / (per + 1))
	if n < 5 {
		n = 5
	}
	nmax := 2000
	if short {
		nmax = 25
	}
	if n > nmax {
		n = nmax
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	iters := 0
	flips, passes := 0.0, 0.0
	start := time.Now()
	for i := 0; i < n; i++ {
		li, ex := f()
		iters += li
		flips += ex["bound_flips"]
		passes += ex["ratio_passes"]
	}
	dt := time.Since(start)
	runtime.ReadMemStats(&ms1)

	res := lpBenchResult{
		Name:             name,
		Iterations:       n,
		NsPerOp:          float64(dt.Nanoseconds()) / float64(n),
		AllocsPerOp:      float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
		BytesPerOp:       float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
		LPItersPerOp:     float64(iters) / float64(n),
		BoundFlipsPerOp:  flips / float64(n),
		RatioPassesPerOp: passes / float64(n),
	}
	if v, ok := extra["bb_nodes"]; ok {
		res.BBNodes = v
	}
	if v, ok := extra["cut_rows_root"]; ok {
		res.CutRowsRoot = v
	}
	if v, ok := extra["cut_rows_separated"]; ok {
		res.CutRowsSeparated = v
	}
	if v, ok := extra["cut_rounds"]; ok {
		res.CutRounds = v
	}
	if v, ok := extra["cut_pool_hits"]; ok {
		res.CutPoolHits = v
	}
	if v, ok := extra["cols_root"]; ok {
		res.ColsRoot = v
	}
	if v, ok := extra["cols_priced"]; ok {
		res.ColsPriced = v
	}
	if v, ok := extra["col_rounds"]; ok {
		res.ColRounds = v
	}
	if v, ok := extra["col_pool_hits"]; ok {
		res.ColPoolHits = v
	}
	return res
}

// steadyStateAllocs measures the per-pivot allocation count of the simplex
// hot path on a solved instance. Both probe solves are warm starts with a
// factor handoff; the first re-solves the unchanged optimum (zero
// iterations — its allocations are pure result packaging), the second
// perturbs a basic column bound so the dual simplex actually pivots. The
// difference per pivot is the hot-path allocation rate.
func steadyStateAllocs(p *lp.Problem) float64 {
	inst := lp.NewInstance(p)
	first := inst.Solve(&lp.Options{CaptureFactors: true})
	if first.Status != lp.StatusOptimal {
		return -1
	}
	wb, wf := first.Basis, first.Factors

	warm := func() lp.Result {
		return inst.Solve(&lp.Options{WarmBasis: wb, WarmFactors: wf, CaptureFactors: true})
	}
	warm() // warm the solver's persistent scratch
	base := testing.AllocsPerRun(20, func() { warm() })

	// Find a structural column sitting strictly between its bounds whose
	// tightening forces dual pivots.
	const interiorTol = 1e-6 // strictly-interior margin for picking a perturbable column
	perturb := -1
	var plo, phi float64
	for j := range first.X {
		lo, hi := inst.ColBounds(j)
		if x := first.X[j]; x > lo+interiorTol && x < hi-interiorTol {
			perturb, plo, phi = j, lo, hi
			break
		}
	}
	if perturb < 0 {
		return 0 // nothing to perturb: vacuously allocation-free
	}
	x := first.X[perturb]
	iters := 0
	run := func() {
		inst.SetColBounds(perturb, plo, (plo+x)/2) // cut off the optimum
		r1 := warm()
		inst.SetColBounds(perturb, plo, phi) // restore
		r2 := warm()
		iters += r1.Iterations + r2.Iterations
	}
	run() // warm-up: grows any scratch the perturbed solves need
	iters = 0
	const runs = 20
	per := testing.AllocsPerRun(runs, run)
	itersPerRun := float64(iters) / float64(runs+1) // AllocsPerRun calls run runs+1 times
	if itersPerRun <= 0 {
		return 0
	}
	extra := per - 2*base
	if extra < 0 {
		extra = 0
	}
	return extra / itersPerRun
}

// runLPBench executes the LP benchmark suite and writes the JSON report to
// outPath. When comparePath names an earlier report, it is embedded as the
// baseline, per-benchmark speedups are computed, and the run fails if any
// shared benchmark regressed in ns/op or allocs/op by more than
// regressionTol. Short mode caps the op counts and the admission trace for
// CI.
func runLPBench(outPath, comparePath string, short bool) error {
	report := lpBenchReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	wa0, wo0 := lp.DebugWarmAttempts.Load(), lp.DebugWarmOK.Load()
	fh0, bx0 := lp.DebugFactorHandoffs.Load(), lp.DebugBasisExtensions.Load()

	// LPRelaxationCSigma: one LP-relaxation solve of the cΣ-Model at the
	// default evaluation scale (the unit of work in every B&B node).
	{
		wl := workload.Default()
		wl.GridRows, wl.GridCols = 2, 2
		wl.NumRequests = 5
		wl.FlexibilityHr = 2
		sc := workload.Generate(wl, 1)
		inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		built := core.BuildCSigma(inst, core.BuildOptions{
			Objective:    core.AccessControl,
			FixedMapping: sc.Mapping,
		})
		scaled, sb, sa := lp.NewInstance(built.Model.LP()).ScalingStats()
		report.Scaling = lpScalingStats{Scaled: scaled, SpreadBefore: sb, SpreadAfter: sa}
		report.SteadyStateAllocs = steadyStateAllocs(built.Model.LP())
		report.Benchmarks = append(report.Benchmarks, measureLP("LPRelaxationCSigma", short,
			func() (int, map[string]float64) {
				sol := built.Model.Relax()
				if !sol.HasSolution {
					fmt.Fprintln(os.Stderr, "lpbench: relaxation not solved")
					os.Exit(1)
				}
				return sol.LPIterations, map[string]float64{
					"bound_flips":  float64(sol.BoundFlips),
					"ratio_passes": float64(sol.RatioPasses),
				}
			}))
	}

	// AblationCSigmaBare: a full bare (no cuts, no model presolve)
	// branch-and-bound solve — the warm-start-heavy workload.
	{
		wl := workload.Default()
		wl.GridRows, wl.GridCols = 2, 2
		wl.NumRequests = 4
		wl.StarLeaves = 1
		wl.FlexibilityHr = 2
		sc := workload.Generate(wl, 7)
		inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		report.Benchmarks = append(report.Benchmarks, measureLP("AblationCSigmaBare", short,
			func() (int, map[string]float64) {
				built := core.BuildCSigma(inst, core.BuildOptions{
					Objective:       core.AccessControl,
					FixedMapping:    sc.Mapping,
					CutMode:         core.CutOff,
					DisablePresolve: true,
				})
				sol, ms := built.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(30*time.Second)))
				if sol == nil || ms.Status != model.StatusOptimal {
					fmt.Fprintf(os.Stderr, "lpbench: ablation solve failed: %v\n", ms.Status)
					os.Exit(1)
				}
				return ms.LPIterations, map[string]float64{
					"bb_nodes":     float64(ms.Nodes),
					"bound_flips":  float64(ms.BoundFlips),
					"ratio_passes": float64(ms.RatioPasses),
				}
			}))
	}

	// LazyCutCSigma: a full branch-and-bound solve with the Constraint-(20)
	// family separated lazily instead of statically emitted — the
	// incremental-row / cut-pool workload (seed chosen so the root LP
	// actually violates precedence candidates).
	{
		wl := workload.Default()
		wl.GridRows, wl.GridCols = 2, 2
		wl.NumRequests = 4
		wl.StarLeaves = 1
		wl.FlexibilityHr = 1.5
		sc := workload.Generate(wl, 3)
		inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		report.Benchmarks = append(report.Benchmarks, measureLP("LazyCutCSigma", short,
			func() (int, map[string]float64) {
				built := core.BuildCSigma(inst, core.BuildOptions{
					Objective:    core.AccessControl,
					FixedMapping: sc.Mapping,
					CutMode:      core.CutLazy,
				})
				sol, ms := built.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(30*time.Second)))
				if sol == nil || ms.Status != model.StatusOptimal {
					fmt.Fprintf(os.Stderr, "lpbench: lazy-cut solve failed: %v\n", ms.Status)
					os.Exit(1)
				}
				return ms.LPIterations, map[string]float64{
					"bb_nodes":           float64(ms.Nodes),
					"bound_flips":        float64(ms.BoundFlips),
					"ratio_passes":       float64(ms.RatioPasses),
					"cut_rows_root":      float64(ms.Cuts.RowsAtRoot),
					"cut_rows_separated": float64(ms.Cuts.SeparatedRows),
					"cut_rounds":         float64(ms.Cuts.Rounds),
					"cut_pool_hits":      float64(ms.Cuts.PoolHits),
				}
			}))
	}

	// WANCSigmaArc / WANCSigmaPath: full branch-and-bound solves of one
	// WAN-scale scenario (ISP-style Waxman substrate, per-link capacities)
	// under the two link-flow formulations. Arc mode carries a flow variable
	// per (request, virtual link, substrate arc); path mode replaces them
	// with priced path columns generated by the reduced-cost Dijkstra
	// pricer, so on link-rich WANs the path LP is far smaller — fewer
	// simplex iterations per op and lower ns/op, with the column-generation
	// counters reported alongside.
	{
		wl := workload.Default()
		wl.Topology = "wan"
		wl.WANNodes = 12
		wl.WANAvgDeg = 4
		wl.NumRequests = 4
		wl.StarLeaves = 1
		wl.FlexibilityHr = 1.5
		sc := workload.Generate(wl, 5)
		inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		for _, mode := range []struct {
			name string
			fm   core.FlowMode
		}{
			{"WANCSigmaArc", core.FlowArc},
			{"WANCSigmaPath", core.FlowPath},
		} {
			mode := mode
			report.Benchmarks = append(report.Benchmarks, measureLP(mode.name, short,
				func() (int, map[string]float64) {
					built := core.BuildCSigma(inst, core.BuildOptions{
						Objective:    core.AccessControl,
						FixedMapping: sc.Mapping,
						FlowMode:     mode.fm,
					})
					sol, ms := built.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(30*time.Second)))
					if sol == nil || ms.Status != model.StatusOptimal {
						fmt.Fprintf(os.Stderr, "lpbench: WAN %v solve failed: %v\n", mode.fm, ms.Status)
						os.Exit(1)
					}
					extra := map[string]float64{
						"bb_nodes":     float64(ms.Nodes),
						"bound_flips":  float64(ms.BoundFlips),
						"ratio_passes": float64(ms.RatioPasses),
					}
					if mode.fm == core.FlowPath {
						extra["cols_root"] = float64(ms.Columns.ColsAtRoot)
						extra["cols_priced"] = float64(ms.Columns.PricedCols)
						extra["col_rounds"] = float64(ms.Columns.Rounds)
						extra["col_pool_hits"] = float64(ms.Columns.PoolHits)
					}
					return ms.LPIterations, extra
				}))
		}
	}

	// RandomizedRounding: one approximate cΣ solve — LP relaxation,
	// fractional decomposition, sampling and repair — per op. It runs
	// before the admission stream on purpose: the stream's long-lived
	// engine leaves a mode-dependent live heap (10000 vs 2000 decisions)
	// that would skew GC pacing of this allocation-heavy loop and make
	// short-mode ns/op incomparable to the full-run baseline.
	// Per-op seeds derive via round.MixSeed so consecutive ops exercise
	// different sample streams deterministically. The p50/p99 fields are
	// per-solve latency quantiles and FallbackRate counts ops that
	// exhausted every sample and ran exact branch-and-bound instead.
	{
		wl := workload.Default()
		wl.FlexibilityHr = 2
		sc := workload.Generate(wl, 1)
		inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		n := 64
		if short {
			n = 16
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		lpIters, fellBack := 0, 0
		lat := make([]float64, 0, n)
		start := time.Now()
		for op := 0; op < n; op++ {
			sol, rs, err := round.Solve(context.Background(), inst, sc.Mapping, round.Options{
				Seed:      round.MixSeed(1, int64(op)),
				Objective: core.AccessControl,
				Solve:     model.SolveOptions{TimeLimit: 30 * time.Second},
			})
			if err != nil || sol == nil {
				return fmt.Errorf("lpbench: rounding op %d: sol=%v err=%v", op, sol, err)
			}
			lpIters += rs.LPIterations
			if rs.FellBack {
				fellBack++
			}
			lat = append(lat, float64(rs.Runtime.Nanoseconds()))
		}
		total := time.Since(start)
		runtime.ReadMemStats(&ms1)
		fbRate := float64(fellBack) / float64(n)
		report.Benchmarks = append(report.Benchmarks, lpBenchResult{
			Name:         "RandomizedRounding",
			Iterations:   n,
			NsPerOp:      float64(total.Nanoseconds()) / float64(n),
			AllocsPerOp:  float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
			BytesPerOp:   float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
			LPItersPerOp: float64(lpIters) / float64(n),
			P50NS:        stats.Quantile(lat, 0.5),
			P99NS:        stats.Quantile(lat, 0.99),
			FallbackRate: &fbRate,
		})
	}

	// AdmissionStream: a request arrival trace replayed through the online
	// admission engine in one pass. Unlike the micro-benchmarks above the
	// op is a single admission decision inside one long-lived engine, so
	// the trace runs exactly once: ns/op is total wall clock over decisions,
	// and the p50/p99 fields are the engine's own per-decision latency
	// quantiles — the bounded-tail-latency claim of the admission service.
	{
		wl := workload.Default()
		wl.NumRequests = 10000
		if short {
			wl.NumRequests = 2000
		}
		wl.StarLeaves = 1
		wl.FlexibilityHr = 2
		sc := workload.Generate(wl, 1)
		eng, err := admit.New(admit.Config{
			Sub:     sc.Substrate,
			Horizon: sc.Horizon,
			Solve:   model.SolveOptions{NodeLimit: admit.DefaultNodeLimit},
		})
		if err != nil {
			return fmt.Errorf("lpbench: admission engine: %w", err)
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for r, req := range sc.Requests {
			if _, err := eng.Admit(context.Background(), req, sc.Mapping[r]); err != nil {
				return fmt.Errorf("lpbench: admission stream request %d: %w", r, err)
			}
		}
		total := time.Since(start)
		runtime.ReadMemStats(&ms1)
		es := eng.Stats()
		n := es.Decisions
		report.Benchmarks = append(report.Benchmarks, lpBenchResult{
			Name:         "AdmissionStream",
			Iterations:   n,
			NsPerOp:      float64(total.Nanoseconds()) / float64(n),
			AllocsPerOp:  float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
			BytesPerOp:   float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
			LPItersPerOp: float64(es.TotalLPIters) / float64(n),
			BBNodes:      float64(es.TotalNodes) / float64(n),
			P50NS:        float64(es.LatencyP50.Nanoseconds()),
			P99NS:        float64(es.LatencyP99.Nanoseconds()),
			AcceptRate:   es.AcceptRate(),
			WarmRate:     es.WarmRate(),
		})
	}

	wa := lp.DebugWarmAttempts.Load() - wa0
	wo := lp.DebugWarmOK.Load() - wo0
	fh := lp.DebugFactorHandoffs.Load() - fh0
	bx := lp.DebugBasisExtensions.Load() - bx0
	report.WarmStart = lpWarmStats{Attempts: wa, OK: wo, FactorHandoffs: fh, BasisExtensions: bx}
	if wa > 0 {
		report.WarmStart.OKRate = float64(wo) / float64(wa)
		report.WarmStart.FactorHandoffRt = float64(fh) / float64(wa)
	}

	var regressions []string
	if comparePath != "" {
		data, err := os.ReadFile(comparePath)
		if err != nil {
			return fmt.Errorf("lpbench: read baseline: %w", err)
		}
		base := &lpBenchReport{}
		if err := json.Unmarshal(data, base); err != nil {
			return fmt.Errorf("lpbench: parse baseline: %w", err)
		}
		base.Baseline = nil // never nest more than one level
		report.Baseline = base
		report.Speedup = map[string]float64{}
		for _, b := range base.Benchmarks {
			for _, cur := range report.Benchmarks {
				if cur.Name != b.Name {
					continue
				}
				if cur.NsPerOp > 0 {
					report.Speedup[b.Name] = b.NsPerOp / cur.NsPerOp
				}
				nsTol := regressionTol
				if short {
					nsTol += shortNsSlack
				}
				if b.NsPerOp > 0 && cur.NsPerOp > b.NsPerOp*(1+nsTol) {
					regressions = append(regressions, fmt.Sprintf(
						"%s: ns/op %.0f vs baseline %.0f (+%.0f%%)",
						b.Name, cur.NsPerOp, b.NsPerOp, 100*(cur.NsPerOp/b.NsPerOp-1)))
				}
				if b.AllocsPerOp > 0 && cur.AllocsPerOp > b.AllocsPerOp*(1+regressionTol) {
					regressions = append(regressions, fmt.Sprintf(
						"%s: allocs/op %.0f vs baseline %.0f (+%.0f%%)",
						b.Name, cur.AllocsPerOp, b.AllocsPerOp, 100*(cur.AllocsPerOp/b.AllocsPerOp-1)))
				}
			}
		}
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("# wrote %s\n", outPath)
		for _, b := range report.Benchmarks {
			line := fmt.Sprintf("# %-22s %12.0f ns/op %10.0f allocs/op %8.1f lp_iters/op", b.Name, b.NsPerOp, b.AllocsPerOp, b.LPItersPerOp)
			if sp, ok := report.Speedup[b.Name]; ok {
				line += fmt.Sprintf("   %.2fx vs baseline", sp)
			}
			if b.BoundFlipsPerOp > 0 {
				line += fmt.Sprintf("   %.1f bound flips/op", b.BoundFlipsPerOp)
			}
			if b.CutRowsRoot > 0 {
				line += fmt.Sprintf("   cuts: %.0f root rows, %.0f separated in %.0f rounds, %.0f pool hits",
					b.CutRowsRoot, b.CutRowsSeparated, b.CutRounds, b.CutPoolHits)
			}
			if b.ColsRoot > 0 {
				line += fmt.Sprintf("   cols: %.0f root, %.0f priced in %.0f rounds, %.0f pool hits",
					b.ColsRoot, b.ColsPriced, b.ColRounds, b.ColPoolHits)
			}
			switch {
			case b.Name == "RandomizedRounding":
				fb := 0.0
				if b.FallbackRate != nil {
					fb = *b.FallbackRate
				}
				line += fmt.Sprintf("   p50 %.2fms, p99 %.2fms, fallback %.2f",
					b.P50NS/1e6, b.P99NS/1e6, fb)
			case b.P99NS > 0:
				line += fmt.Sprintf("   stream: %d decisions, p50 %.2fms, p99 %.2fms, accept %.2f, warm %.2f",
					b.Iterations, b.P50NS/1e6, b.P99NS/1e6, b.AcceptRate, b.WarmRate)
			}
			fmt.Println(line)
		}
		fmt.Printf("# warm starts: %d attempts, %.0f%% adopted, %.0f%% factor handoffs, %d basis extensions\n",
			wa, 100*report.WarmStart.OKRate, 100*report.WarmStart.FactorHandoffRt, bx)
		fmt.Printf("# scaling: active=%v spread %.3g -> %.3g; steady-state allocs/pivot: %.3g\n",
			report.Scaling.Scaled, report.Scaling.SpreadBefore, report.Scaling.SpreadAfter, report.SteadyStateAllocs)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("lpbench: performance regressed vs %s:\n  %s",
			comparePath, strings.Join(regressions, "\n  "))
	}
	return nil
}
