package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"tvnep/internal/admit"
	"tvnep/internal/core"
	"tvnep/internal/lp"
	"tvnep/internal/model"
	"tvnep/internal/workload"
)

// The -json mode: a machine-readable micro-benchmark of the LP solver core,
// mirroring the two guard benchmarks of the test suite
// (BenchmarkLPRelaxationCSigma and BenchmarkAblationCSigmaBare) and
// augmenting them with solver-internal statistics: simplex iterations per
// solve, warm-start success rate and factorization-cache hit rate from the
// lp.Debug* counters. Pass -compare with a previously written report to
// embed it as the baseline and compute speedups.

type lpBenchResult struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	LPItersPerOp float64 `json:"lp_iters_per_op"`
	BBNodes      float64 `json:"bb_nodes,omitempty"`
	// Lazy-separation statistics (LazyCutCSigma only): rows present in the
	// root LP vs rows appended on demand, separation rounds, and pool
	// dedup hits.
	CutRowsRoot      float64 `json:"cut_rows_root,omitempty"`
	CutRowsSeparated float64 `json:"cut_rows_separated,omitempty"`
	CutRounds        float64 `json:"cut_rounds,omitempty"`
	CutPoolHits      float64 `json:"cut_pool_hits,omitempty"`
	// Streaming-admission statistics (AdmissionStream only): per-decision
	// latency quantiles and trace-level accept / warm-restart rates.
	P50NS      float64 `json:"p50_ns,omitempty"`
	P99NS      float64 `json:"p99_ns,omitempty"`
	AcceptRate float64 `json:"accept_rate,omitempty"`
	WarmRate   float64 `json:"warm_rate,omitempty"`
}

type lpWarmStats struct {
	Attempts  int64 `json:"attempts"`
	OK        int64 `json:"ok"`
	CacheHits int64 `json:"cache_hits"`
	// FactorHandoffs counts warm starts served by an explicit
	// Result.Factors → Options.WarmFactors handoff (the parallel
	// branch-and-bound path), which takes precedence over the per-instance
	// factorization ring the cache-hit rate measures.
	FactorHandoffs  int64   `json:"factor_handoffs"`
	OKRate          float64 `json:"ok_rate"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	FactorHandoffRt float64 `json:"factor_handoff_rate"`
}

type lpBenchReport struct {
	Timestamp  string             `json:"timestamp"`
	GoVersion  string             `json:"go_version"`
	Benchmarks []lpBenchResult    `json:"benchmarks"`
	WarmStart  lpWarmStats        `json:"warm_start"`
	Baseline   *lpBenchReport     `json:"baseline,omitempty"`
	Speedup    map[string]float64 `json:"speedup,omitempty"`
}

// measureLP times f (one op per call) with alloc accounting. f reports the
// simplex iterations it consumed; extra metrics from the first op survive
// into the result.
func measureLP(name string, f func() (lpIters int, extra map[string]float64)) lpBenchResult {
	// Warmup op, also used to calibrate the iteration count to ~1s.
	t0 := time.Now()
	_, extra := f()
	per := time.Since(t0)
	n := int(time.Second / (per + 1))
	if n < 5 {
		n = 5
	}
	if n > 2000 {
		n = 2000
	}

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	iters := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		li, _ := f()
		iters += li
	}
	dt := time.Since(start)
	runtime.ReadMemStats(&ms1)

	res := lpBenchResult{
		Name:         name,
		Iterations:   n,
		NsPerOp:      float64(dt.Nanoseconds()) / float64(n),
		AllocsPerOp:  float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
		BytesPerOp:   float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
		LPItersPerOp: float64(iters) / float64(n),
	}
	if v, ok := extra["bb_nodes"]; ok {
		res.BBNodes = v
	}
	if v, ok := extra["cut_rows_root"]; ok {
		res.CutRowsRoot = v
	}
	if v, ok := extra["cut_rows_separated"]; ok {
		res.CutRowsSeparated = v
	}
	if v, ok := extra["cut_rounds"]; ok {
		res.CutRounds = v
	}
	if v, ok := extra["cut_pool_hits"]; ok {
		res.CutPoolHits = v
	}
	return res
}

// runLPBench executes the LP benchmark suite and writes the JSON report to
// outPath. When comparePath names an earlier report, it is embedded as the
// baseline and per-benchmark speedups are computed.
func runLPBench(outPath, comparePath string) error {
	report := lpBenchReport{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
	}
	wa0, wo0, ch0 := lp.DebugWarmAttempts.Load(), lp.DebugWarmOK.Load(), lp.DebugCacheHits.Load()
	fh0 := lp.DebugFactorHandoffs.Load()

	// LPRelaxationCSigma: one LP-relaxation solve of the cΣ-Model at the
	// default evaluation scale (the unit of work in every B&B node).
	{
		wl := workload.Default()
		wl.GridRows, wl.GridCols = 2, 2
		wl.NumRequests = 5
		wl.FlexibilityHr = 2
		sc := workload.Generate(wl, 1)
		inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		built := core.BuildCSigma(inst, core.BuildOptions{
			Objective:    core.AccessControl,
			FixedMapping: sc.Mapping,
		})
		report.Benchmarks = append(report.Benchmarks, measureLP("LPRelaxationCSigma",
			func() (int, map[string]float64) {
				sol := built.Model.Relax()
				if !sol.HasSolution {
					fmt.Fprintln(os.Stderr, "lpbench: relaxation not solved")
					os.Exit(1)
				}
				return sol.LPIterations, nil
			}))
	}

	// AblationCSigmaBare: a full bare (no cuts, no model presolve)
	// branch-and-bound solve — the warm-start-heavy workload.
	{
		wl := workload.Default()
		wl.GridRows, wl.GridCols = 2, 2
		wl.NumRequests = 4
		wl.StarLeaves = 1
		wl.FlexibilityHr = 2
		sc := workload.Generate(wl, 7)
		inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		report.Benchmarks = append(report.Benchmarks, measureLP("AblationCSigmaBare",
			func() (int, map[string]float64) {
				built := core.BuildCSigma(inst, core.BuildOptions{
					Objective:       core.AccessControl,
					FixedMapping:    sc.Mapping,
					DisableCuts:     true,
					DisablePresolve: true,
				})
				sol, ms := built.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(30*time.Second)))
				if sol == nil || ms.Status != model.StatusOptimal {
					fmt.Fprintf(os.Stderr, "lpbench: ablation solve failed: %v\n", ms.Status)
					os.Exit(1)
				}
				return ms.LPIterations, map[string]float64{"bb_nodes": float64(ms.Nodes)}
			}))
	}

	// LazyCutCSigma: a full branch-and-bound solve with the Constraint-(20)
	// family separated lazily instead of statically emitted — the
	// incremental-row / cut-pool workload (seed chosen so the root LP
	// actually violates precedence candidates).
	{
		wl := workload.Default()
		wl.GridRows, wl.GridCols = 2, 2
		wl.NumRequests = 4
		wl.StarLeaves = 1
		wl.FlexibilityHr = 1.5
		sc := workload.Generate(wl, 3)
		inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		report.Benchmarks = append(report.Benchmarks, measureLP("LazyCutCSigma",
			func() (int, map[string]float64) {
				built := core.BuildCSigma(inst, core.BuildOptions{
					Objective:    core.AccessControl,
					FixedMapping: sc.Mapping,
					CutMode:      core.CutLazy,
				})
				sol, ms := built.Solve(context.Background(), model.NewSolveOptions(model.WithTimeLimit(30*time.Second)))
				if sol == nil || ms.Status != model.StatusOptimal {
					fmt.Fprintf(os.Stderr, "lpbench: lazy-cut solve failed: %v\n", ms.Status)
					os.Exit(1)
				}
				return ms.LPIterations, map[string]float64{
					"bb_nodes":           float64(ms.Nodes),
					"cut_rows_root":      float64(ms.Cuts.RowsAtRoot),
					"cut_rows_separated": float64(ms.Cuts.SeparatedRows),
					"cut_rounds":         float64(ms.Cuts.Rounds),
					"cut_pool_hits":      float64(ms.Cuts.PoolHits),
				}
			}))
	}

	// AdmissionStream: a 10 000-request arrival trace replayed through the
	// online admission engine in one pass. Unlike the micro-benchmarks above
	// the op is a single admission decision inside one long-lived engine, so
	// the trace runs exactly once: ns/op is total wall clock over decisions,
	// and the p50/p99 fields are the engine's own per-decision latency
	// quantiles — the bounded-tail-latency claim of the admission service.
	{
		wl := workload.Default()
		wl.NumRequests = 10000
		wl.StarLeaves = 1
		wl.FlexibilityHr = 2
		sc := workload.Generate(wl, 1)
		eng, err := admit.New(admit.Config{
			Sub:     sc.Substrate,
			Horizon: sc.Horizon,
			Solve:   model.SolveOptions{NodeLimit: admit.DefaultNodeLimit},
		})
		if err != nil {
			return fmt.Errorf("lpbench: admission engine: %w", err)
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		for r, req := range sc.Requests {
			if _, err := eng.Admit(context.Background(), req, sc.Mapping[r]); err != nil {
				return fmt.Errorf("lpbench: admission stream request %d: %w", r, err)
			}
		}
		total := time.Since(start)
		runtime.ReadMemStats(&ms1)
		es := eng.Stats()
		n := es.Decisions
		report.Benchmarks = append(report.Benchmarks, lpBenchResult{
			Name:         "AdmissionStream",
			Iterations:   n,
			NsPerOp:      float64(total.Nanoseconds()) / float64(n),
			AllocsPerOp:  float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
			BytesPerOp:   float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(n),
			LPItersPerOp: float64(es.TotalLPIters) / float64(n),
			BBNodes:      float64(es.TotalNodes) / float64(n),
			P50NS:        float64(es.LatencyP50.Nanoseconds()),
			P99NS:        float64(es.LatencyP99.Nanoseconds()),
			AcceptRate:   es.AcceptRate(),
			WarmRate:     es.WarmRate(),
		})
	}

	wa := lp.DebugWarmAttempts.Load() - wa0
	wo := lp.DebugWarmOK.Load() - wo0
	ch := lp.DebugCacheHits.Load() - ch0
	fh := lp.DebugFactorHandoffs.Load() - fh0
	report.WarmStart = lpWarmStats{Attempts: wa, OK: wo, CacheHits: ch, FactorHandoffs: fh}
	if wa > 0 {
		report.WarmStart.OKRate = float64(wo) / float64(wa)
		report.WarmStart.CacheHitRate = float64(ch) / float64(wa)
		report.WarmStart.FactorHandoffRt = float64(fh) / float64(wa)
	}

	if comparePath != "" {
		data, err := os.ReadFile(comparePath)
		if err != nil {
			return fmt.Errorf("lpbench: read baseline: %w", err)
		}
		base := &lpBenchReport{}
		if err := json.Unmarshal(data, base); err != nil {
			return fmt.Errorf("lpbench: parse baseline: %w", err)
		}
		base.Baseline = nil // never nest more than one level
		report.Baseline = base
		report.Speedup = map[string]float64{}
		for _, b := range base.Benchmarks {
			for _, cur := range report.Benchmarks {
				if cur.Name == b.Name && cur.NsPerOp > 0 {
					report.Speedup[b.Name] = b.NsPerOp / cur.NsPerOp
				}
			}
		}
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", outPath)
	for _, b := range report.Benchmarks {
		line := fmt.Sprintf("# %-22s %12.0f ns/op %10.0f allocs/op %8.1f lp_iters/op", b.Name, b.NsPerOp, b.AllocsPerOp, b.LPItersPerOp)
		if sp, ok := report.Speedup[b.Name]; ok {
			line += fmt.Sprintf("   %.2fx vs baseline", sp)
		}
		if b.CutRowsRoot > 0 {
			line += fmt.Sprintf("   cuts: %.0f root rows, %.0f separated in %.0f rounds, %.0f pool hits",
				b.CutRowsRoot, b.CutRowsSeparated, b.CutRounds, b.CutPoolHits)
		}
		if b.P99NS > 0 {
			line += fmt.Sprintf("   stream: %d decisions, p50 %.2fms, p99 %.2fms, accept %.2f, warm %.2f",
				b.Iterations, b.P50NS/1e6, b.P99NS/1e6, b.AcceptRate, b.WarmRate)
		}
		fmt.Println(line)
	}
	fmt.Printf("# warm starts: %d attempts, %.0f%% adopted, %.0f%% factor handoffs, %.0f%% factorization-cache hits\n",
		wa, 100*report.WarmStart.OKRate, 100*report.WarmStart.FactorHandoffRt, 100*report.WarmStart.CacheHitRate)
	return nil
}
