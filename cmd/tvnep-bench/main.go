// Command tvnep-bench regenerates the figures of the paper's computational
// evaluation (Section VI, Figures 3–9) as text series: for every temporal
// flexibility step it runs the configured scenarios and prints five-number
// summaries of runtime, optimality gap, accepted requests, greedy quality
// and objective improvement.
//
// Scenarios are solved concurrently on a bounded worker pool (-workers,
// default one worker per CPU); records and progress output keep the serial
// order regardless of the worker count, and the branch-and-bound solves
// inside the sweep stay single-worker so the two levels of parallelism
// never multiply. Ctrl-C cancels every in-flight solve cooperatively.
//
// Usage:
//
//	tvnep-bench                     # all figures, scaled-down default config
//	tvnep-bench -fig 3              # only Figure 3
//	tvnep-bench -seeds 8 -timelimit 60s
//	tvnep-bench -workers 4 -v       # four concurrent scenario solves
//	tvnep-bench -progress           # stream incumbent/node updates to stderr
//	tvnep-bench -paper              # the paper's exact (hour-per-solve!) setup
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/eval"
	"tvnep/internal/model"
	"tvnep/internal/prof"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 3..9, 'ablation', 'relax', 'stream', 'rounding', or all")
		seeds     = flag.Int("seeds", 0, "number of scenario seeds per flexibility (0 → config default)")
		limit     = flag.Duration("timelimit", 0, "per-solve time limit (0 → config default)")
		workers   = flag.Int("workers", 0, "concurrent scenario solves (0 → one per CPU)")
		paper     = flag.Bool("paper", false, "use the paper's exact scale (very slow with this solver)")
		rows      = flag.Int("rows", 0, "substrate grid rows override")
		cols      = flag.Int("cols", 0, "substrate grid cols override")
		requests  = flag.Int("requests", 0, "requests per scenario override")
		flexList  = flag.String("flex", "", "comma-separated flexibility steps in minutes (default per config)")
		cutModeF  = flag.String("cutmode", "static", "Constraint-(20) cut pipeline for every cΣ solve of the sweep: static | lazy | off")
		flowModeF = flag.String("flowmode", "arc", "link-flow formulation for every cΣ solve of the sweep: arc | path (priced path columns)")
		certFlag  = flag.Bool("certify", false, "run the full internal/certify certificate on every sweep solution (including applied-cut re-validation under -cutmode lazy); exit non-zero on any violation")
		seedFlag  = flag.Int64("seed", 0, "base seed of the randomized components (rounding tier, admission stream); sweeps are bit-identical per seed")
		verbose   = flag.Bool("v", false, "print per-solve progress")
		progFlag  = flag.Bool("progress", false, "stream branch-and-bound progress (incumbents, node counts) to stderr")
		jsonMode  = flag.Bool("json", false, "run the LP solver micro-benchmarks and write a machine-readable report instead of figures")
		jsonOut   = flag.String("o", "BENCH_lp.json", "output path of the -json report ('-' for stdout)")
		baseline  = flag.String("compare", "", "embed a previous -json report as baseline, compute speedups, and fail on >10% ns/op or allocs/op regressions")
		short     = flag.Bool("short", false, "with -json, cap benchmark op counts and shorten the admission trace (CI regression-guard mode)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProfiles()

	if *jsonMode {
		if err := runLPBench(*jsonOut, *baseline, *short); err != nil {
			fmt.Fprintln(os.Stderr, err)
			stopProfiles()
			os.Exit(1)
		}
		return
	}

	// Ctrl-C cancels the sweep cooperatively: every in-flight solve returns
	// with model.StatusCancelled and the summaries cover what finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := eval.Default()
	if *paper {
		cfg = eval.Paper()
	}
	if *seeds > 0 {
		cfg.Seeds = nil
		for s := 1; s <= *seeds; s++ {
			cfg.Seeds = append(cfg.Seeds, int64(s))
		}
	}
	if *limit > 0 {
		cfg.Solve.TimeLimit = *limit
	}
	cfg.Solve.Workers = *workers
	if *rows > 0 {
		cfg.Workload.GridRows = *rows
	}
	if *cols > 0 {
		cfg.Workload.GridCols = *cols
	}
	if *requests > 0 {
		cfg.Workload.NumRequests = *requests
	}
	if *flexList != "" {
		cfg.FlexMinutes = nil
		for _, tok := range strings.Split(*flexList, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bad -flex value:", err)
				os.Exit(2)
			}
			cfg.FlexMinutes = append(cfg.FlexMinutes, v)
		}
	}
	counters := &eval.Counters{}
	cfg.Counters = counters
	cfg.Certify = *certFlag
	cfg.Seed = *seedFlag
	cm, err := core.ParseCutMode(*cutModeF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvnep-bench:", err)
		os.Exit(2)
	}
	cfg.CutMode = cm
	fm, err := core.ParseFlowMode(*flowModeF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvnep-bench:", err)
		os.Exit(2)
	}
	cfg.FlowMode = fm
	if *progFlag {
		// The callback fires from whichever worker goroutine owns the solve;
		// lines may interleave between concurrent solves but each line is
		// written in one call.
		cfg.Solve.Progress = func(p model.Progress) {
			if p.NewIncumbent {
				fmt.Fprintf(os.Stderr, "  [b&b] incumbent %.4f (bound %.4f, gap %.3g, %d nodes, %v)\n",
					p.Incumbent, p.Bound, p.Gap, p.Nodes, p.Elapsed.Round(time.Millisecond))
			} else {
				fmt.Fprintf(os.Stderr, "  [b&b] %d nodes open=%d lp_iters=%d (%v)\n",
					p.Nodes, p.Open, p.LPIterations, p.Elapsed.Round(time.Millisecond))
			}
		}
	}

	var progress *os.File
	if *verbose {
		progress = os.Stderr
	}
	want := map[string]bool{}
	if *fig == "all" {
		for _, f := range []string{"3", "4", "5", "6", "7", "8", "9"} {
			want[f] = true
		}
	} else {
		want[*fig] = true
	}

	fmt.Printf("# tvnep-bench: grid %dx%d, %d requests, %d seeds, flex %v min, time limit %v, workers %d, cutmode %v, flowmode %v\n\n",
		cfg.Workload.GridRows, cfg.Workload.GridCols, cfg.Workload.NumRequests,
		len(cfg.Seeds), cfg.FlexMinutes, cfg.Solve.TimeLimit, *workers, cfg.CutMode, cfg.FlowMode)

	start := time.Now()
	// Figures 3/4 need all three formulations; 8/9 only cΣ. Reuse records.
	if want["3"] || want["4"] {
		recs := cfg.AccessControlSweep(ctx, []core.Formulation{core.Delta, core.Sigma, core.CSigma}, progress)
		if want["3"] {
			eval.WriteSeries(os.Stdout, "Figure 3 — runtime of the MIP formulations vs temporal flexibility (access control)", eval.Figure3(recs, cfg))
		}
		if want["4"] {
			eval.WriteSeries(os.Stdout, "Figure 4 — objective gap after the time limit vs temporal flexibility", eval.Figure4(recs, cfg))
		}
		if want["8"] {
			eval.WriteSeries(os.Stdout, "Figure 8 — number of requests embedded by the cΣ-Model", eval.Figure8(recs, cfg))
			want["8"] = false
		}
		if want["9"] {
			eval.WriteSeries(os.Stdout, "Figure 9 — relative improvement of the access-control objective vs flexibility 0", eval.Figure9(recs, cfg))
			want["9"] = false
		}
	}
	if want["5"] || want["6"] {
		recs := cfg.ObjectivesSweep(ctx, progress)
		if want["5"] {
			eval.WriteSeries(os.Stdout, "Figure 5 — runtime of the cΣ-Model under the fixed-set objectives", eval.Figure5(recs, cfg))
		}
		if want["6"] {
			eval.WriteSeries(os.Stdout, "Figure 6 — gap of the cΣ-Model under the fixed-set objectives", eval.Figure6(recs, cfg))
		}
	}
	if want["7"] || want["8"] || want["9"] {
		recs := cfg.GreedySweep(ctx, progress)
		if want["7"] {
			eval.WriteSeries(os.Stdout, "Figure 7 — relative performance of greedy cΣ_A^G vs the cΣ-Model", eval.Figure7(recs, cfg))
		}
		if want["8"] {
			eval.WriteSeries(os.Stdout, "Figure 8 — number of requests embedded by the cΣ-Model", eval.Figure8(recs, cfg))
		}
		if want["9"] {
			eval.WriteSeries(os.Stdout, "Figure 9 — relative improvement of the access-control objective vs flexibility 0", eval.Figure9(recs, cfg))
		}
	}
	if want["ablation"] {
		recs, err := cfg.AblationSweep(ctx, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablation:", err)
			os.Exit(1)
		}
		eval.WriteAblation(os.Stdout, recs, cfg)
	}
	if want["relax"] {
		recs := cfg.RelaxationSweep(ctx, progress)
		eval.WriteRelaxation(os.Stdout, recs, cfg)
	}
	if want["stream"] {
		recs, err := cfg.StreamSweep(ctx, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stream:", err)
			os.Exit(1)
		}
		eval.WriteStreamTable(os.Stdout,
			"Streaming admission — per-decision latency and accept rate vs temporal flexibility", recs, cfg)
	}
	if want["rounding"] {
		recs := cfg.RoundingSweep(ctx, progress)
		eval.WriteRoundingTable(os.Stdout, recs)
	}
	fmt.Printf("# aggregate: %v\n", counters)
	fmt.Printf("# total bench time: %v\n", time.Since(start).Round(time.Millisecond))
	if ctx.Err() != nil {
		fmt.Println("# sweep interrupted — summaries cover completed solves only")
		os.Exit(130)
	}
	if failed := counters.CertifyFailed.Load(); failed > 0 {
		fmt.Fprintf(os.Stderr, "tvnep-bench: %d of %d certificates failed\n",
			failed, counters.Certified.Load())
		os.Exit(1)
	}
}
