// Command tvnep-solve solves one TVNEP scenario (JSON, as produced by
// tvnep-gen) with a chosen formulation and objective, verifies the result
// with the independent feasibility checker, and prints a report.
//
// Usage:
//
//	tvnep-solve -in scenario.json -model csigma -objective access
//	tvnep-solve -in scenario.json -model csigma -greedy
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/greedy"
	"tvnep/internal/lp"
	"tvnep/internal/model"
	"tvnep/internal/prof"
	"tvnep/internal/solution"
	"tvnep/internal/workload"
)

func main() {
	var (
		in        = flag.String("in", "", "scenario JSON file (required)")
		modelName = flag.String("model", "csigma", "formulation: delta | sigma | csigma")
		objName   = flag.String("objective", "access", "objective: access | earliness | balance | disable | makespan")
		useGreedy = flag.Bool("greedy", false, "run the greedy algorithm cΣ_A^G instead of the exact model")
		limit     = flag.Duration("timelimit", time.Minute, "MIP time limit")
		workers   = flag.Int("workers", 1, "branch-and-bound relaxation workers (deterministic: the committed result is bit-identical for every count)")
		cutMode   = flag.String("cutmode", "static", "Constraint-(20) precedence-cut pipeline, cΣ only: static (emit all rows at build time) | lazy (separate violated rows on demand) | off (drop the cut family)")
		noCuts    = flag.Bool("nocuts", false, "deprecated alias of -cutmode off: disable temporal dependency graph cuts (applies to the cΣ model only; Δ and Σ have no such cuts and ignore it)")
		noPre     = flag.Bool("nopresolve", false, "disable the activity-interval presolve (applies to the cΣ model only; Δ and Σ have no model presolve and ignore it)")
		freeMap   = flag.Bool("freemap", false, "ignore the scenario's fixed node mapping and let the model place nodes")
		doCertify = flag.Bool("certify", false, "run the full internal/certify certificate (named violations, objective recomputation, root-LP optimality certificate)")
		timeline  = flag.Bool("timeline", false, "print the piecewise-constant substrate utilization timeline")
		progFlag  = flag.Bool("progress", false, "stream branch-and-bound progress (incumbents, node counts) to stderr")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProfiles, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	defer stopProfiles()
	// Ctrl-C cancels the solve cooperatively (status: cancelled).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fail(err)
	}
	var sc workload.Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		fail(err)
	}
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	if err := inst.Validate(); err != nil {
		fail(err)
	}
	mapping := sc.Mapping
	if *freeMap {
		mapping = nil
	}

	var form core.Formulation
	switch strings.ToLower(*modelName) {
	case "delta":
		form = core.Delta
	case "sigma":
		form = core.Sigma
	case "csigma":
		form = core.CSigma
	default:
		fail(fmt.Errorf("unknown model %q", *modelName))
	}
	cm, err := core.ParseCutMode(strings.ToLower(*cutMode))
	if err != nil {
		fail(err)
	}
	// -nocuts/-nopresolve reach only the cΣ builder; say so instead of
	// silently ignoring them, and keep -nocuts working as the deprecated
	// spelling of -cutmode off.
	if form != core.CSigma && (*noCuts || *noPre || cm != core.CutStatic) {
		fmt.Fprintf(os.Stderr, "tvnep-solve: warning: -nocuts/-nopresolve/-cutmode apply to the cΣ model only; the %v model ignores them\n", form)
	}
	if *noCuts {
		if cm == core.CutLazy {
			fmt.Fprintln(os.Stderr, "tvnep-solve: warning: -nocuts overrides -cutmode lazy (cuts disabled)")
		}
		cm = core.CutOff
	}

	var obj core.Objective
	switch strings.ToLower(*objName) {
	case "access":
		obj = core.AccessControl
	case "earliness":
		obj = core.MaxEarliness
	case "balance":
		obj = core.BalanceNodeLoad
	case "disable":
		obj = core.DisableLinks
	case "makespan":
		obj = core.MinMakespan
	default:
		fail(fmt.Errorf("unknown objective %q", *objName))
	}

	solveOpts := model.NewSolveOptions(model.WithTimeLimit(*limit), model.WithWorkers(*workers))
	if *progFlag {
		solveOpts.Progress = func(p model.Progress) {
			if p.NewIncumbent {
				fmt.Fprintf(os.Stderr, "  [b&b] incumbent %.4f (bound %.4f, gap %.3g, %d nodes, %v)\n",
					p.Incumbent, p.Bound, p.Gap, p.Nodes, p.Elapsed.Round(time.Millisecond))
			} else {
				fmt.Fprintf(os.Stderr, "  [b&b] %d nodes open=%d lp_iters=%d (%v)\n",
					p.Nodes, p.Open, p.LPIterations, p.Elapsed.Round(time.Millisecond))
			}
		}
	}

	var sol *solution.Solution
	var built *core.Built
	var ms *model.Solution
	start := time.Now()
	if *useGreedy {
		if obj != core.AccessControl {
			fail(fmt.Errorf("the greedy algorithm supports the access objective only"))
		}
		var stats greedy.Stats
		sol, stats, err = greedy.Solve(ctx, inst, mapping, greedy.Options{Solve: *solveOpts})
		if err != nil {
			fail(err)
		}
		fmt.Printf("algorithm: cΣ_A^G greedy (%d iterations, %d B&B nodes, %d LP iterations)\n",
			stats.Iterations, stats.TotalBBNodes, stats.TotalLPIters)
	} else {
		b := core.Build(form, inst, core.BuildOptions{
			Objective:       obj,
			FixedMapping:    mapping,
			CutMode:         cm,
			DisablePresolve: *noPre,
		})
		built = b
		fmt.Printf("model: %v  objective: %v  vars=%d constrs=%d ints=%d\n",
			form, obj, b.Model.NumVars(), b.Model.NumConstrs(), b.Model.NumIntVars())
		if cm == core.CutLazy && form == core.CSigma {
			fmt.Printf("cuts: mode=lazy candidates=%d (rows deferred from the root LP)\n", b.PrecCutCandidates())
		}
		sol, ms = b.Solve(ctx, solveOpts)
		fmt.Printf("status: %v  gap: %.4g  nodes: %d  lp-iterations: %d\n",
			ms.Status, ms.Gap, ms.Nodes, ms.LPIterations)
		if cm == core.CutLazy && form == core.CSigma {
			fmt.Printf("cuts: root_rows=%d separated=%d rounds=%d offered=%d pool_hits=%d evicted=%d\n",
				ms.Cuts.RowsAtRoot, ms.Cuts.SeparatedRows, ms.Cuts.Rounds,
				ms.Cuts.Offered, ms.Cuts.PoolHits, ms.Cuts.Evicted)
		}
		if sol == nil {
			fmt.Println("no feasible solution found within the limits")
			stopProfiles() // os.Exit skips the deferred stop
			os.Exit(1)
		}
	}
	elapsed := time.Since(start)

	if err := solution.Check(sc.Substrate, sc.Requests, sol); err != nil {
		fail(fmt.Errorf("solution failed independent verification: %w", err))
	}
	if *doCertify {
		rep := certify.Solution(inst, sol, certify.Options{Objective: obj, Mapping: mapping})
		if err := rep.Err(); err != nil {
			fail(fmt.Errorf("solution failed certification: %w", err))
		}
		fmt.Printf("certificate: solution OK (recomputed objective %.6g)\n", rep.RecomputedObjective)
		if built != nil && ms != nil {
			// Re-validate every applied cut against the dependency graph: a
			// cut that excludes the (just certified feasible) incumbent is a
			// named violation.
			if err := certify.Cuts(built, ms).Err(); err != nil {
				fail(fmt.Errorf("applied cuts failed certification: %w", err))
			}
			if n := len(ms.AppliedCuts); n > 0 {
				fmt.Printf("certificate: %d applied cut(s) OK (family membership + incumbent validity)\n", n)
			}
		}
		if built != nil {
			// Independent optimality certificate of the root relaxation:
			// re-solve the LP cold and verify primal/dual feasibility and
			// strong duality on the postsolved result.
			lpp := built.Model.LP()
			res := lp.Solve(lpp, nil)
			cert := certify.LP(lpp, res, 0)
			if err := cert.Err(); err != nil {
				fail(fmt.Errorf("root LP failed certification: %w", err))
			}
			fmt.Printf("certificate: root LP OK (status %v, primal residual %.3g, dual residual %.3g, duality gap %.3g)\n",
				res.Status, cert.PrimalResidual, cert.DualResidual, cert.DualityGap)
		}
	}
	fmt.Printf("runtime: %.3fs   objective: %.4f   accepted: %d/%d   verified: OK\n",
		elapsed.Seconds(), sol.Objective, sol.NumAccepted(), len(sc.Requests))
	for r, req := range sc.Requests {
		status := "rejected"
		if sol.Accepted[r] {
			status = "accepted"
		}
		fmt.Printf("  %-6s %-8s start=%7.3f end=%7.3f window=[%.3f, %.3f] d=%.3f\n",
			req.Name, status, sol.Start[r], sol.End[r], req.Earliest, req.Latest, req.Duration)
	}
	if *timeline {
		fmt.Println()
		solution.WriteTimeline(os.Stdout, sc.Substrate, sc.Requests, sol)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tvnep-solve:", err)
	os.Exit(1)
}
