// Command tvnep-solve solves one TVNEP scenario (JSON, as produced by
// tvnep-gen) with a chosen formulation and objective through the public
// pkg/tvnep facade, verifies the result with the independent feasibility
// checker, and prints a report.
//
// Usage:
//
//	tvnep-solve -in scenario.json -model csigma -objective access
//	tvnep-solve -in scenario.json -model csigma -greedy
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"tvnep/internal/prof"
	"tvnep/pkg/tvnep"
)

func main() {
	var (
		in        = flag.String("in", "", "scenario JSON file (required)")
		modelName = flag.String("model", "csigma", "formulation: delta | sigma | csigma")
		objName   = flag.String("objective", "access", "objective: access | earliness | balance | disable | makespan")
		useGreedy = flag.Bool("greedy", false, "deprecated alias of -algorithm greedy")
		algoName  = flag.String("algorithm", "", "algorithm: exact | greedy | rounding (default exact)")
		seed      = flag.Int64("seed", 0, "seed for the randomized-rounding sampler (deterministic per seed)")
		limit     = flag.Duration("timelimit", time.Minute, "MIP time limit")
		workers   = flag.Int("workers", 1, "branch-and-bound relaxation workers (deterministic: the committed result is bit-identical for every count)")
		cutMode   = flag.String("cutmode", "static", "Constraint-(20) precedence-cut pipeline, cΣ only: static (emit all rows at build time) | lazy (separate violated rows on demand) | off (drop the cut family)")
		flowMode  = flag.String("flowmode", "arc", "link-flow formulation, cΣ only: arc (per-link flow variables) | path (convexity rows + path columns priced on demand; requires the scenario's node mapping)")
		noCuts    = flag.Bool("nocuts", false, "deprecated alias of -cutmode off: disable temporal dependency graph cuts (applies to the cΣ model only)")
		noPre     = flag.Bool("nopresolve", false, "disable the activity-interval presolve (applies to the cΣ model only)")
		freeMap   = flag.Bool("freemap", false, "ignore the scenario's fixed node mapping and let the model place nodes")
		doCertify = flag.Bool("certify", false, "run the full certificate suite (named violations, objective recomputation, root-LP optimality certificate)")
		timeline  = flag.Bool("timeline", false, "print the piecewise-constant substrate utilization timeline")
		progFlag  = flag.Bool("progress", false, "stream branch-and-bound progress (incumbents, node counts) to stderr")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProfiles, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fail(err)
	}
	defer stopProfiles()
	// Ctrl-C cancels the solve cooperatively (status: cancelled).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stopSignals()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fail(err)
	}
	var sc tvnep.Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		fail(err)
	}
	mapping := sc.Mapping
	if *freeMap {
		mapping = nil
	}

	var form tvnep.Formulation
	switch strings.ToLower(*modelName) {
	case "delta":
		form = tvnep.Delta
	case "sigma":
		form = tvnep.Sigma
	case "csigma":
		form = tvnep.CSigma
	default:
		fail(fmt.Errorf("unknown model %q", *modelName))
	}
	cm, err := tvnep.ParseCutMode(strings.ToLower(*cutMode))
	if err != nil {
		fail(err)
	}
	if *noCuts {
		if cm == tvnep.CutLazy {
			fmt.Fprintln(os.Stderr, "tvnep-solve: warning: -nocuts overrides -cutmode lazy (cuts disabled)")
		}
		cm = tvnep.CutOff
	}
	fm, err := tvnep.ParseFlowMode(strings.ToLower(*flowMode))
	if err != nil {
		fail(err)
	}
	if fm == tvnep.FlowPath && *freeMap {
		fail(fmt.Errorf("-flowmode path requires the scenario's fixed node mapping; drop -freemap"))
	}

	algo := tvnep.Exact
	switch strings.ToLower(*algoName) {
	case "", "exact":
		if *useGreedy {
			algo = tvnep.Greedy
		}
	case "greedy":
		algo = tvnep.Greedy
	case "rounding":
		algo = tvnep.Rounding
	default:
		fail(fmt.Errorf("unknown algorithm %q (want exact, greedy or rounding)", *algoName))
	}

	var obj tvnep.Objective
	switch strings.ToLower(*objName) {
	case "access":
		obj = tvnep.AccessControl
	case "earliness":
		obj = tvnep.MaxEarliness
	case "balance":
		obj = tvnep.BalanceNodeLoad
	case "disable":
		obj = tvnep.DisableLinks
	case "makespan":
		obj = tvnep.MinMakespan
	default:
		fail(fmt.Errorf("unknown objective %q", *objName))
	}

	opts := []tvnep.Option{
		tvnep.WithFormulation(form),
		tvnep.WithObjective(obj),
		tvnep.WithHorizon(sc.Horizon),
		tvnep.WithTimeLimit(*limit),
		tvnep.WithWorkers(*workers),
	}
	if cm != tvnep.CutStatic || *noCuts {
		opts = append(opts, tvnep.WithCutMode(cm))
	}
	if fm != tvnep.FlowArc {
		opts = append(opts, tvnep.WithFlowMode(fm))
	}
	if *noPre {
		opts = append(opts, tvnep.WithoutPresolve())
	}
	if algo != tvnep.Exact {
		opts = append(opts, tvnep.WithAlgorithm(algo))
	}
	if algo == tvnep.Rounding {
		opts = append(opts, tvnep.WithSeed(*seed))
	}
	if *doCertify {
		opts = append(opts, tvnep.WithCertify())
	}
	if *progFlag {
		opts = append(opts, tvnep.WithProgress(func(p tvnep.Progress) {
			if p.NewIncumbent {
				fmt.Fprintf(os.Stderr, "  [b&b] incumbent %.4f (bound %.4f, gap %.3g, %d nodes, %v)\n",
					p.Incumbent, p.Bound, p.Gap, p.Nodes, p.Elapsed.Round(time.Millisecond))
			} else {
				fmt.Fprintf(os.Stderr, "  [b&b] %d nodes open=%d lp_iters=%d (%v)\n",
					p.Nodes, p.Open, p.LPIterations, p.Elapsed.Round(time.Millisecond))
			}
		}))
	}

	solver, err := tvnep.New(sc.Substrate, opts...)
	// The cΣ-only ablation flags used to degrade to a stderr warning; the
	// facade reports them as a typed configuration error instead. Keep the
	// CLI's permissive behavior: warn, drop the inapplicable options, retry.
	var conflict *tvnep.OptionConflictError
	if errors.As(err, &conflict) {
		fmt.Fprintf(os.Stderr, "tvnep-solve: warning: %v (ignoring it)\n", conflict)
		solver, err = tvnep.New(sc.Substrate, dropConflicting(sc, form, obj, *limit, *workers, *seed, algo, *doCertify)...)
	}
	if err != nil {
		fail(err)
	}

	start := time.Now()
	res, solveErr := solver.Solve(ctx, sc.Requests, mapping)
	elapsed := time.Since(start)
	if errors.Is(solveErr, tvnep.ErrNoSolution) {
		if m := res.ModelStats; m != nil {
			fmt.Printf("model: %v  objective: %v  vars=%d constrs=%d ints=%d\n",
				m.Formulation, m.Objective, m.Vars, m.Constrs, m.IntVars)
			fmt.Printf("status: %v  gap: %.4g  nodes: %d  lp-iterations: %d\n",
				res.Status, res.Gap, res.Nodes, res.LPIterations)
		}
		fmt.Println("no feasible solution found within the limits")
		stopProfiles() // os.Exit skips the deferred stop
		os.Exit(1)
	}
	if solveErr != nil {
		fail(solveErr)
	}
	sol := res.Solution

	if res.Greedy != nil {
		fmt.Printf("algorithm: cΣ_A^G greedy (%d iterations, %d B&B nodes, %d LP iterations)\n",
			res.Greedy.Iterations, res.Greedy.TotalBBNodes, res.Greedy.TotalLPIters)
	}
	if rs := res.Rounding; rs != nil {
		fmt.Printf("algorithm: randomized rounding (seed %d: %d samples, %d feasible, best #%d, %d repairs, %d repair-rejections)\n",
			*seed, rs.Samples, rs.Feasible, rs.BestSample, rs.Repairs, rs.Rejections)
		if rs.FellBack {
			fmt.Printf("rounding: fell back to exact branch-and-bound (%d nodes)\n", rs.FallbackNodes)
		} else {
			fmt.Printf("rounding: LP bound %.4f, %d LP iterations, no fallback\n", rs.LPBound, rs.LPIterations)
		}
	}
	if m := res.ModelStats; m != nil {
		fmt.Printf("model: %v  objective: %v  vars=%d constrs=%d ints=%d\n",
			m.Formulation, m.Objective, m.Vars, m.Constrs, m.IntVars)
		if cm == tvnep.CutLazy && form == tvnep.CSigma {
			fmt.Printf("cuts: mode=lazy candidates=%d (rows deferred from the root LP)\n", m.CutCandidates)
			fmt.Printf("cuts: root_rows=%d separated=%d rounds=%d offered=%d pool_hits=%d evicted=%d\n",
				res.Cuts.RowsAtRoot, res.Cuts.SeparatedRows, res.Cuts.Rounds,
				res.Cuts.Offered, res.Cuts.PoolHits, res.Cuts.Evicted)
		}
		if fm == tvnep.FlowPath && form == tvnep.CSigma {
			fmt.Printf("columns: mode=path root_cols=%d priced=%d rounds=%d offered=%d pool_hits=%d evicted=%d\n",
				res.ColumnStats.ColsAtRoot, res.ColumnStats.PricedCols, res.ColumnStats.Rounds,
				res.ColumnStats.Offered, res.ColumnStats.PoolHits, res.ColumnStats.Evicted)
		}
		fmt.Printf("status: %v  gap: %.4g  nodes: %d  lp-iterations: %d\n",
			res.Status, res.Gap, res.Nodes, res.LPIterations)
	}
	if cert := res.Certificate; cert != nil {
		fmt.Printf("certificate: solution OK (recomputed objective %.6g)\n",
			cert.Solution.RecomputedObjective)
		if cert.Cuts != nil {
			fmt.Println("certificate: applied cuts OK (family membership + incumbent validity)")
		}
		if cert.Columns != nil {
			fmt.Println("certificate: priced columns OK (path validity + coefficient reconstruction)")
		}
		if cert.RootLP != nil {
			fmt.Printf("certificate: root LP OK (primal residual %.3g, dual residual %.3g, duality gap %.3g)\n",
				cert.RootLP.PrimalResidual, cert.RootLP.DualResidual, cert.RootLP.DualityGap)
		}
	}
	fmt.Printf("runtime: %.3fs   objective: %.4f   accepted: %d/%d   verified: OK\n",
		elapsed.Seconds(), sol.Objective, sol.NumAccepted(), len(sc.Requests))
	for r, req := range sc.Requests {
		status := "rejected"
		if sol.Accepted[r] {
			status = "accepted"
		}
		fmt.Printf("  %-6s %-8s start=%7.3f end=%7.3f window=[%.3f, %.3f] d=%.3f\n",
			req.Name, status, sol.Start[r], sol.End[r], req.Earliest, req.Latest, req.Duration)
	}
	if *timeline {
		fmt.Println()
		tvnep.WriteTimeline(os.Stdout, sc.Substrate, sc.Requests, sol)
	}
}

// dropConflicting rebuilds the option list without the cΣ-only ablation
// options (and algorithm-conflicting cut modes) that the facade rejected
// for this configuration.
func dropConflicting(sc tvnep.Scenario, form tvnep.Formulation, obj tvnep.Objective, limit time.Duration, workers int, seed int64, algo tvnep.Algorithm, doCertify bool) []tvnep.Option {
	opts := []tvnep.Option{
		tvnep.WithFormulation(form),
		tvnep.WithObjective(obj),
		tvnep.WithHorizon(sc.Horizon),
		tvnep.WithTimeLimit(limit),
		tvnep.WithWorkers(workers),
	}
	if algo != tvnep.Exact {
		opts = append(opts, tvnep.WithAlgorithm(algo))
	}
	if algo == tvnep.Rounding {
		opts = append(opts, tvnep.WithSeed(seed))
	}
	if doCertify {
		opts = append(opts, tvnep.WithCertify())
	}
	return opts
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tvnep-solve:", err)
	os.Exit(1)
}
