// Command tvnep-gen generates synthetic TVNEP scenarios following the
// methodology of Section VI-A (grid substrate, star requests, Poisson
// arrivals, Weibull durations) and writes them as JSON.
//
// Usage:
//
//	tvnep-gen -seed 1 -flex 120 -o scenario.json
//	tvnep-gen -paper -seed 7            # the paper's 4×5/20-request scale
package main

import (
	"flag"
	"fmt"
	"os"

	"tvnep/pkg/tvnep"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed")
		flexMin  = flag.Float64("flex", 0, "temporal flexibility per request in minutes")
		topology = flag.String("topology", "grid", "substrate topology: grid (the paper's bidirected grid) | wan (ISP-style Waxman WAN with per-link capacities)")
		rows     = flag.Int("rows", 3, "substrate grid rows")
		cols     = flag.Int("cols", 3, "substrate grid cols")
		nodes    = flag.Int("nodes", 0, "wan topology: number of PoPs (0 → rows×cols)")
		avgDeg   = flag.Float64("avgdeg", 0, "wan topology: average-degree target (0 → 4)")
		requests = flag.Int("requests", 8, "number of requests")
		leaves   = flag.Int("leaves", 2, "star leaves per request")
		paper    = flag.Bool("paper", false, "use the paper's exact scale (4×5 grid, 20 requests, 5-node stars)")
		out      = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	cfg := tvnep.DefaultWorkload()
	if *paper {
		cfg = tvnep.PaperWorkload()
	} else {
		cfg.GridRows, cfg.GridCols = *rows, *cols
		cfg.NumRequests = *requests
		cfg.StarLeaves = *leaves
	}
	switch *topology {
	case "grid", "wan":
		cfg.Topology = *topology
	default:
		fmt.Fprintf(os.Stderr, "tvnep-gen: unknown topology %q (want grid or wan)\n", *topology)
		os.Exit(2)
	}
	cfg.WANNodes = *nodes
	cfg.WANAvgDeg = *avgDeg
	cfg.FlexibilityHr = *flexMin / 60

	sc := tvnep.Generate(cfg, *seed)
	if err := sc.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "generated scenario invalid:", err)
		os.Exit(1)
	}
	data, err := sc.MarshalJSON()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out == "-" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d requests on %d substrate nodes, horizon %.2f h\n",
		*out, len(sc.Requests), sc.Substrate.NumNodes(), sc.Horizon)
}
