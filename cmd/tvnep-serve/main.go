// Command tvnep-serve runs the online admission service: a long-running
// HTTP/JSON server that receives VNet requests one at a time and decides
// each admission with the incremental cΣ engine (accepted schedules are
// committed and never change). It can also replay a scenario file offline
// (-replay) for benchmarking and CI smoke tests.
//
// Usage:
//
//	tvnep-serve -scenario scenario.json -addr :8080
//	tvnep-serve -rows 3 -cols 3 -nodecap 3.5 -linkcap 5 -horizon 48 -addr :8080
//	tvnep-serve -replay scenario.json -certify
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"tvnep/pkg/tvnep"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		scenFile = flag.String("scenario", "", "scenario JSON file supplying the substrate and horizon")
		replay   = flag.String("replay", "", "replay this scenario file through the engine and exit (no HTTP server)")
		rows     = flag.Int("rows", 3, "substrate grid rows (without -scenario)")
		cols     = flag.Int("cols", 3, "substrate grid cols (without -scenario)")
		nodeCap  = flag.Float64("nodecap", 3.5, "substrate node capacity (without -scenario)")
		linkCap  = flag.Float64("linkcap", 5, "substrate link capacity (without -scenario)")
		horizon  = flag.Float64("horizon", 48, "planning horizon T in hours (without -scenario)")
		cutMode  = flag.String("cutmode", "static", "Constraint-(20) cut pipeline: static | lazy | off")
		nodeLim  = flag.Int("nodelimit", 0, "branch-and-bound node budget per decision (0 → engine default; keeps replays deterministic)")
		workers  = flag.Int("workers", 1, "branch-and-bound workers per decision (decisions are bit-identical for every count)")
		algoName = flag.String("algorithm", "exact", "admission fast-tier mode: exact (LP → MIP) | rounding (LP → randomized rounding → MIP)")
		seed     = flag.Int64("seed", 0, "seed for the rounding tier's sampler (replays are bit-identical per seed)")
		certify  = flag.Bool("certify", false, "independently certify every accepting decision before committing it")
		reopt    = flag.Int("reopt", 0, "re-optimize committed link allocations after every n-th acceptance (0 → never)")
		quiet    = flag.Bool("q", false, "suppress per-decision replay output")
	)
	flag.Parse()

	cm, err := tvnep.ParseCutMode(*cutMode)
	if err != nil {
		fail(err)
	}

	var sub *tvnep.Substrate
	var sc *tvnep.Scenario
	T := *horizon
	src := *scenFile
	if *replay != "" {
		src = *replay
	}
	if src != "" {
		data, err := os.ReadFile(src)
		if err != nil {
			fail(err)
		}
		sc = &tvnep.Scenario{}
		if err := json.Unmarshal(data, sc); err != nil {
			fail(err)
		}
		sub = sc.Substrate
		T = sc.Horizon
	} else {
		sub = tvnep.Grid(*rows, *cols, *nodeCap, *linkCap)
	}

	opts := []tvnep.Option{
		tvnep.WithHorizon(T),
		tvnep.WithCutMode(cm),
		tvnep.WithWorkers(*workers),
		tvnep.WithReoptEvery(*reopt),
	}
	switch *algoName {
	case "", "exact":
	case "rounding":
		opts = append(opts, tvnep.WithAlgorithm(tvnep.Rounding), tvnep.WithSeed(*seed))
	default:
		fail(fmt.Errorf("unknown algorithm %q (want exact or rounding)", *algoName))
	}
	if *nodeLim > 0 {
		opts = append(opts, tvnep.WithNodeLimit(*nodeLim))
	}
	if *certify {
		opts = append(opts, tvnep.WithCertify())
	}
	solver, err := tvnep.New(sub, opts...)
	if err != nil {
		fail(err)
	}

	if *replay != "" {
		os.Exit(runReplay(solver, sc, *quiet))
	}

	srv := &http.Server{Addr: *addr, Handler: tvnep.NewServer(solver)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx) //nolint:errcheck // best-effort drain on SIGINT
	}()
	fmt.Fprintf(os.Stderr, "tvnep-serve: listening on %s (horizon %.2f h, %d substrate nodes)\n",
		*addr, T, sub.NumNodes())
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
}

// runReplay streams every scenario request through the engine, prints the
// decisions and summary statistics, and re-certifies the committed snapshot
// independently. Non-zero exit on any error or certificate violation.
func runReplay(solver *tvnep.Solver, sc *tvnep.Scenario, quiet bool) int {
	if sc.Mapping == nil {
		fmt.Fprintln(os.Stderr, "tvnep-serve: replay scenario carries no node mapping")
		return 1
	}
	ctx := context.Background()
	for i, req := range sc.Requests {
		d, err := solver.Admit(ctx, req, sc.Mapping[i])
		if err != nil {
			fmt.Fprintf(os.Stderr, "tvnep-serve: admit %d (%s): %v\n", i, req.Name, err)
			return 1
		}
		if d.CertErr != nil {
			fmt.Fprintf(os.Stderr, "tvnep-serve: decision %d (%s) failed certification: %v\n",
				i, req.Name, d.CertErr)
			return 1
		}
		if !quiet {
			verdict := "reject"
			if d.Accepted {
				verdict = "accept"
			}
			fmt.Printf("%4d %-8s %-6s start=%8.3f end=%8.3f tier=%-8s lp_iters=%5d nodes=%5d warm=%v\n",
				d.Index, d.Name, verdict, d.Start, d.End, d.Stats.Tier,
				d.Stats.LPIterations, d.Stats.Nodes, d.Stats.WarmUsed)
		}
	}
	s := solver.EngineStats()
	fmt.Printf("decisions=%d accepted=%d (rate %.3f) tiers: precheck=%d lp=%d rounding=%d mip=%d\n",
		s.Decisions, s.Accepted, s.AcceptRate(), s.PrecheckTier, s.LPTier, s.RoundingTier, s.MIPTier)
	fmt.Printf("latency: p50=%v p99=%v   warm rate %.3f (%d/%d, %d LU extensions)   reopts=%d\n",
		s.LatencyP50, s.LatencyP99, s.WarmRate(), s.WarmUsed, s.WarmAttempts, s.BasisExtended, s.Reopts)

	// Final gate: the cumulative committed solution must pass the
	// independent checker, whatever the per-decision settings were.
	inst, _, sol := solver.Snapshot()
	if err := tvnep.CheckSolution(inst.Sub, inst.Reqs, sol); err != nil {
		fmt.Fprintf(os.Stderr, "tvnep-serve: committed snapshot failed verification: %v\n", err)
		return 1
	}
	fmt.Printf("snapshot: %d requests, objective %.4f, verified OK\n", len(inst.Reqs), sol.Objective)
	return 0
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tvnep-serve:", err)
	os.Exit(1)
}
