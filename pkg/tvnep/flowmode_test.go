package tvnep_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"tvnep/pkg/tvnep"
)

// TestFlowModeFacade solves the same scenario through the facade in both
// flow modes with full certification and requires the same certified
// optimum; the path run additionally carries a (possibly trivially passing)
// column certificate.
func TestFlowModeFacade(t *testing.T) {
	sc := scenario(t, 4, 7)
	solve := func(m tvnep.FlowMode) *tvnep.Result {
		solver, err := tvnep.New(sc.Substrate,
			tvnep.WithFlowMode(m),
			tvnep.WithCertify(),
			tvnep.WithHorizon(sc.Horizon),
		)
		if err != nil {
			t.Fatalf("New(%v): %v", m, err)
		}
		res, err := solver.Solve(context.Background(), sc.Requests, sc.Mapping)
		if err != nil {
			t.Fatalf("Solve(%v): %v", m, err)
		}
		if res.Status != tvnep.StatusOptimal {
			t.Fatalf("Solve(%v): status %v", m, res.Status)
		}
		return res
	}
	arc := solve(tvnep.FlowArc)
	path := solve(tvnep.FlowPath)
	if math.Abs(arc.Solution.Objective-path.Solution.Objective) > 1e-6*(1+math.Abs(arc.Solution.Objective)) {
		t.Fatalf("arc optimum %v != path optimum %v", arc.Solution.Objective, path.Solution.Objective)
	}
	if path.Certificate == nil || path.Certificate.Columns == nil {
		t.Fatalf("path solve missing the column certificate: %+v", path.Certificate)
	}
	if !path.Certificate.Columns.OK() {
		t.Fatalf("column certificate failed: %v", path.Certificate.Columns.Err())
	}
	if path.ModelStats.Vars >= arc.ModelStats.Vars {
		t.Fatalf("path build has %d variables, arc %d — path mode must compress the model",
			path.ModelStats.Vars, arc.ModelStats.Vars)
	}
}

// TestFlowModeConflicts pins the typed-error contract for every combination
// path mode does not support.
func TestFlowModeConflicts(t *testing.T) {
	sub := tvnep.Grid(2, 2, 1, 1)
	cases := []struct {
		name string
		opts []tvnep.Option
	}{
		{"delta", []tvnep.Option{tvnep.WithFormulation(tvnep.Delta), tvnep.WithFlowMode(tvnep.FlowPath)}},
		{"sigma", []tvnep.Option{tvnep.WithFormulation(tvnep.Sigma), tvnep.WithFlowMode(tvnep.FlowPath)}},
		{"rounding", []tvnep.Option{tvnep.WithAlgorithm(tvnep.Rounding), tvnep.WithFlowMode(tvnep.FlowPath)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tvnep.New(sub, tc.opts...)
			var conflict *tvnep.OptionConflictError
			if !errors.As(err, &conflict) {
				t.Fatalf("want *OptionConflictError, got %v", err)
			}
			if !strings.Contains(conflict.Option, "WithFlowMode") {
				t.Errorf("Option = %q, want a WithFlowMode conflict", conflict.Option)
			}
		})
	}

	// Online admission rejects path mode with the typed error too.
	solver, err := tvnep.New(sub, tvnep.WithFlowMode(tvnep.FlowPath), tvnep.WithHorizon(10))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	req := tvnep.Star("r", 1, false, 0.5, 0.25)
	req.Duration, req.Earliest, req.Latest = 1, 0, 2
	_, err = solver.Admit(context.Background(), req, []int{0, 1})
	var conflict *tvnep.OptionConflictError
	if !errors.As(err, &conflict) || !conflict.Online {
		t.Fatalf("Admit under path mode: want an online *OptionConflictError, got %v", err)
	}

	// Path mode without a node mapping is a Solve-time error: the builder
	// needs the path endpoints.
	if _, err := solver.Solve(context.Background(), []*tvnep.Request{req}, nil); err == nil {
		t.Fatal("path-mode Solve without a mapping must fail")
	}

	// Greedy combines with path mode (it pins mappings per iteration).
	if _, err := tvnep.New(sub, tvnep.WithAlgorithm(tvnep.Greedy), tvnep.WithFlowMode(tvnep.FlowPath)); err != nil {
		t.Fatalf("greedy + path must construct: %v", err)
	}
}

// TestGreedyFlowModesAgree runs the greedy heuristic in both flow modes;
// the heuristic is deterministic, so the accept sets and schedules must
// coincide exactly.
func TestGreedyFlowModesAgree(t *testing.T) {
	sc := scenario(t, 5, 11)
	run := func(m tvnep.FlowMode) *tvnep.Result {
		solver, err := tvnep.New(sc.Substrate,
			tvnep.WithAlgorithm(tvnep.Greedy),
			tvnep.WithFlowMode(m),
			tvnep.WithHorizon(sc.Horizon),
		)
		if err != nil {
			t.Fatalf("New(%v): %v", m, err)
		}
		res, err := solver.Solve(context.Background(), sc.Requests, sc.Mapping)
		if err != nil {
			t.Fatalf("Solve(%v): %v", m, err)
		}
		return res
	}
	arc := run(tvnep.FlowArc)
	path := run(tvnep.FlowPath)
	for r := range sc.Requests {
		if arc.Solution.Accepted[r] != path.Solution.Accepted[r] {
			t.Fatalf("request %d: arc accepted %v, path %v", r, arc.Solution.Accepted[r], path.Solution.Accepted[r])
		}
		if arc.Solution.Accepted[r] &&
			(math.Float64bits(arc.Solution.Start[r]) != math.Float64bits(path.Solution.Start[r]) ||
				math.Float64bits(arc.Solution.End[r]) != math.Float64bits(path.Solution.End[r])) {
			t.Fatalf("request %d: arc schedule [%v,%v], path [%v,%v]", r,
				arc.Solution.Start[r], arc.Solution.End[r], path.Solution.Start[r], path.Solution.End[r])
		}
	}
}
