// Package tvnep is the public API of the TVNEP repository: optimal and
// heuristic solvers for the Temporal Virtual Network Embedding Problem —
// embedding virtual networks (nodes with CPU demands, links with bandwidth
// demands) into a shared substrate when every request carries a duration
// and a start-time window [earliest, latest] it may be scheduled in.
//
// The package is a facade: it re-exports the problem-data types (Substrate,
// Request, NodeMapping, Solution, Scenario) and funnels every solve through
// one Solver type configured with functional options. Three modes exist:
//
//   - Exact offline solves (Solver.Solve with WithAlgorithm(Exact), the
//     default): one of the paper's three MIP formulations (Delta, Sigma,
//     CSigma) under one of the Section IV-E objectives, solved to proven
//     optimality by the built-in branch-and-bound/simplex stack.
//
//   - The greedy heuristic (WithAlgorithm(Greedy)): the polynomial-time
//     online algorithm cΣ_A^G for the access-control objective.
//
//   - Online admission (Solver.Admit): a long-running streaming engine
//     that decides each arriving request against the committed system,
//     never revisiting a decision. Requires WithHorizon. NewServer wraps
//     the engine into an HTTP/JSON handler (see cmd/tvnep-serve).
//
// Results are verified with an independent Definition-2.1 feasibility
// checker on every solve; WithCertify adds the full certificate suite
// (objective recomputation, applied-cut validity, root-LP optimality).
//
// Determinism is a design contract throughout: branch-and-bound results are
// bit-identical for every WithWorkers value, and admission traces replay
// identically as long as budgets are node-based (WithNodeLimit) rather than
// time-based.
//
// Direct use of the internal packages (internal/core, internal/greedy,
// internal/mip, …) is unsupported; their exported surfaces exist for this
// facade and the repository's own tools.
package tvnep
