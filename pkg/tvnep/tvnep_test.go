package tvnep_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"tvnep/internal/core"
	"tvnep/internal/greedy"
	"tvnep/internal/model"
	"tvnep/internal/workload"
	"tvnep/pkg/tvnep"
)

func scenario(t *testing.T, n int, seed int64) *workload.Scenario {
	t.Helper()
	cfg := workload.Default()
	cfg.NumRequests = n
	cfg.FlexibilityHr = 2
	sc := workload.Generate(cfg, seed)
	if err := sc.Validate(); err != nil {
		t.Fatalf("scenario: %v", err)
	}
	return sc
}

// TestFacadeMatchesDirect solves the same instance once through the facade
// and once through the internal path and requires byte-identical results on
// all four Section IV-E objectives: the facade must be a pure re-packaging
// of the solve, never a behavioral fork.
func TestFacadeMatchesDirect(t *testing.T) {
	sc := scenario(t, 6, 9)
	// The fixed-set objectives assume every request is embeddable; loosen
	// the capacities so the all-accept system is feasible.
	loose := func() *workload.Scenario {
		cfg := workload.Default()
		cfg.NumRequests = 4
		cfg.FlexibilityHr = 4
		cfg.NodeCap, cfg.LinkCap = 50, 50
		lsc := workload.Generate(cfg, 9)
		if err := lsc.Validate(); err != nil {
			t.Fatalf("loose scenario: %v", err)
		}
		return lsc
	}()
	objectives := []core.Objective{
		core.AccessControl, core.MaxEarliness, core.BalanceNodeLoad, core.DisableLinks,
	}
	for _, obj := range objectives {
		obj := obj
		t.Run(obj.String(), func(t *testing.T) {
			sc := sc
			if obj.FixedSet() {
				sc = loose
			}
			// A modest node budget keeps the pathological objectives
			// (DisableLinks explores deep symmetric subtrees) bounded; the
			// equality claim only needs both paths to run the identical
			// search, not to finish it.
			opts := model.SolveOptions{NodeLimit: 2000}

			inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
			b := core.Build(core.CSigma, inst, core.BuildOptions{
				Objective:    obj,
				FixedMapping: sc.Mapping,
			})
			wantSol, wantMS := b.Solve(context.Background(), &opts)
			if wantSol == nil {
				t.Fatalf("direct solve found no solution")
			}

			solver, err := tvnep.New(sc.Substrate,
				tvnep.WithObjective(obj),
				tvnep.WithNodeLimit(2000),
				tvnep.WithHorizon(sc.Horizon),
			)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			got, err := solver.Solve(context.Background(), sc.Requests, sc.Mapping)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}

			if math.Float64bits(got.Solution.Objective) != math.Float64bits(wantSol.Objective) {
				t.Errorf("objective %v != direct %v", got.Solution.Objective, wantSol.Objective)
			}
			if got.Nodes != wantMS.Nodes || got.LPIterations != wantMS.LPIterations {
				t.Errorf("work (%d nodes, %d iters) != direct (%d, %d)",
					got.Nodes, got.LPIterations, wantMS.Nodes, wantMS.LPIterations)
			}
			if got.Status != wantMS.Status {
				t.Errorf("status %v != direct %v", got.Status, wantMS.Status)
			}
			for r := range sc.Requests {
				if got.Solution.Accepted[r] != wantSol.Accepted[r] {
					t.Errorf("request %d: accepted %v != direct %v", r, got.Solution.Accepted[r], wantSol.Accepted[r])
				}
				if math.Float64bits(got.Solution.Start[r]) != math.Float64bits(wantSol.Start[r]) ||
					math.Float64bits(got.Solution.End[r]) != math.Float64bits(wantSol.End[r]) {
					t.Errorf("request %d: schedule [%v,%v] != direct [%v,%v]", r,
						got.Solution.Start[r], got.Solution.End[r], wantSol.Start[r], wantSol.End[r])
				}
			}
		})
	}
}

// TestGreedyFacadeMatchesDirect does the same for the greedy algorithm.
func TestGreedyFacadeMatchesDirect(t *testing.T) {
	sc := scenario(t, 8, 4)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	wantSol, wantStats, err := greedy.Solve(context.Background(), inst, sc.Mapping, core.BuildOptions{}, nil)
	if err != nil {
		t.Fatalf("direct greedy: %v", err)
	}

	solver, err := tvnep.New(sc.Substrate,
		tvnep.WithAlgorithm(tvnep.Greedy),
		tvnep.WithHorizon(sc.Horizon),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, err := solver.Solve(context.Background(), sc.Requests, sc.Mapping)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if math.Float64bits(got.Solution.Objective) != math.Float64bits(wantSol.Objective) {
		t.Errorf("objective %v != direct %v", got.Solution.Objective, wantSol.Objective)
	}
	if got.Greedy == nil || got.Greedy.AcceptedCount != wantStats.AcceptedCount {
		t.Errorf("greedy stats %+v != direct %+v", got.Greedy, wantStats)
	}
	for r := range sc.Requests {
		if got.Solution.Accepted[r] != wantSol.Accepted[r] {
			t.Errorf("request %d: accepted %v != direct %v", r, got.Solution.Accepted[r], wantSol.Accepted[r])
		}
	}
}

// TestOptionConflict pins the typed-error contract: cΣ-only ablation
// options combined with Δ or Σ fail construction with *OptionConflictError
// naming the offending option (replacing the old stderr warning path).
func TestOptionConflict(t *testing.T) {
	sub := tvnep.Grid(2, 2, 1, 1)
	cases := []struct {
		name string
		opts []tvnep.Option
		want string
	}{
		{"cutmode-delta", []tvnep.Option{tvnep.WithFormulation(tvnep.Delta), tvnep.WithCutMode(tvnep.CutLazy)}, "WithCutMode"},
		{"presolve-sigma", []tvnep.Option{tvnep.WithFormulation(tvnep.Sigma), tvnep.WithoutPresolve()}, "WithoutPresolve"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tvnep.New(sub, tc.opts...)
			var conflict *tvnep.OptionConflictError
			if !errors.As(err, &conflict) {
				t.Fatalf("want *OptionConflictError, got %v", err)
			}
			if conflict.Option != tc.want {
				t.Errorf("Option = %q, want %q", conflict.Option, tc.want)
			}
		})
	}
	// The same options are fine on cΣ.
	if _, err := tvnep.New(sub, tvnep.WithCutMode(tvnep.CutLazy), tvnep.WithoutPresolve()); err != nil {
		t.Fatalf("cΣ with cut/presolve options must construct: %v", err)
	}
	// And on Δ/Σ without the cΣ-only options.
	if _, err := tvnep.New(sub, tvnep.WithFormulation(tvnep.Delta)); err != nil {
		t.Fatalf("plain Δ must construct: %v", err)
	}
}

// TestAdmitRequiresHorizon pins the ErrNoHorizon contract.
func TestAdmitRequiresHorizon(t *testing.T) {
	sub := tvnep.Grid(2, 2, 1, 1)
	solver, err := tvnep.New(sub)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	req := tvnep.Star("r", 1, false, 0.5, 0.25)
	req.Duration, req.Earliest, req.Latest = 1, 0, 2
	if _, err := solver.Admit(context.Background(), req, []int{0, 1}); !errors.Is(err, tvnep.ErrNoHorizon) {
		t.Fatalf("want ErrNoHorizon, got %v", err)
	}
}

// TestCertifiedSolve exercises the WithCertify path end to end.
func TestCertifiedSolve(t *testing.T) {
	sc := scenario(t, 5, 2)
	solver, err := tvnep.New(sc.Substrate,
		tvnep.WithCertify(),
		tvnep.WithCutMode(tvnep.CutLazy),
		tvnep.WithHorizon(sc.Horizon),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := solver.Solve(context.Background(), sc.Requests, sc.Mapping)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Certificate == nil || res.Certificate.Solution == nil || res.Certificate.RootLP == nil {
		t.Fatalf("certificates missing: %+v", res.Certificate)
	}
	if !res.Certificate.Solution.OK() {
		t.Fatalf("solution certificate failed: %v", res.Certificate.Solution.Err())
	}
	if !res.Certificate.RootLP.OK() {
		t.Fatalf("root-LP certificate failed: %v", res.Certificate.RootLP.Err())
	}
}
