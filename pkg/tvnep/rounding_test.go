package tvnep_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"tvnep/pkg/tvnep"
)

// TestRoundingFacade exercises WithAlgorithm(Rounding) end to end: the
// result must carry the tier's statistics, a solution whose objective
// respects the LP bound, and an always-on feasibility check (verify runs
// inside Solve); with WithCertify the full certificate must pass too.
func TestRoundingFacade(t *testing.T) {
	sc := scenario(t, 6, 9)
	solver, err := tvnep.New(sc.Substrate,
		tvnep.WithAlgorithm(tvnep.Rounding),
		tvnep.WithSeed(21),
		tvnep.WithCertify(),
		tvnep.WithHorizon(sc.Horizon),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := solver.Solve(context.Background(), sc.Requests, sc.Mapping)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Rounding == nil {
		t.Fatal("Result.Rounding is nil on a rounding solve")
	}
	if res.Rounding.LPBound < res.Solution.Objective-1e-6 {
		t.Fatalf("objective %v exceeds LP bound %v", res.Solution.Objective, res.Rounding.LPBound)
	}
	if res.Certificate == nil || res.Certificate.Solution == nil || !res.Certificate.Solution.OK() {
		t.Fatalf("rounding result did not certify: %+v", res.Certificate)
	}
	if res.Rounding.FellBack {
		t.Fatalf("facade scenario unexpectedly fell back: %+v", res.Rounding)
	}
}

// TestRoundingFacadeDeterministicSeed runs the same rounding solve twice
// per seed: equal seeds must reproduce the objective bit for bit, and the
// two configured seeds must both yield valid (not necessarily equal)
// results.
func TestRoundingFacadeDeterministicSeed(t *testing.T) {
	sc := scenario(t, 6, 9)
	solveWith := func(seed int64) float64 {
		solver, err := tvnep.New(sc.Substrate,
			tvnep.WithAlgorithm(tvnep.Rounding),
			tvnep.WithSeed(seed),
			tvnep.WithHorizon(sc.Horizon),
		)
		if err != nil {
			t.Fatalf("New(seed=%d): %v", seed, err)
		}
		res, err := solver.Solve(context.Background(), sc.Requests, sc.Mapping)
		if err != nil {
			t.Fatalf("Solve(seed=%d): %v", seed, err)
		}
		return res.Solution.Objective
	}
	for _, seed := range []int64{3, 77} {
		first, second := solveWith(seed), solveWith(seed)
		if math.Float64bits(first) != math.Float64bits(second) {
			t.Fatalf("seed %d: objectives %v and %v differ between runs", seed, first, second)
		}
	}
}

// TestRoundingOptionConflicts pins the typed-error contract of the
// rounding algorithm: it requires the cΣ formulation and refuses an
// explicit lazy cut pipeline (a bare LP relaxation never separates cuts,
// so honoring the option would silently change its meaning).
func TestRoundingOptionConflicts(t *testing.T) {
	sub := tvnep.Grid(2, 2, 1, 1)
	cases := []struct {
		name string
		opts []tvnep.Option
		want string
	}{
		{"rounding-delta", []tvnep.Option{
			tvnep.WithAlgorithm(tvnep.Rounding), tvnep.WithFormulation(tvnep.Delta),
		}, "WithAlgorithm(rounding)"},
		{"rounding-sigma", []tvnep.Option{
			tvnep.WithAlgorithm(tvnep.Rounding), tvnep.WithFormulation(tvnep.Sigma),
		}, "WithAlgorithm(rounding)"},
		{"rounding-lazy", []tvnep.Option{
			tvnep.WithAlgorithm(tvnep.Rounding), tvnep.WithCutMode(tvnep.CutLazy),
		}, "WithCutMode(lazy)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tvnep.New(sub, tc.opts...)
			var conflict *tvnep.OptionConflictError
			if !errors.As(err, &conflict) {
				t.Fatalf("want *OptionConflictError, got %v", err)
			}
			if conflict.Option != tc.want {
				t.Errorf("Option = %q, want %q", conflict.Option, tc.want)
			}
			if !strings.Contains(err.Error(), "tvnep:") {
				t.Errorf("error %q lost its package prefix", err)
			}
		})
	}
	// Rounding with the compatible cut modes must construct.
	for _, opt := range []tvnep.Option{tvnep.WithCutMode(tvnep.CutStatic), tvnep.WithCutMode(tvnep.CutOff)} {
		if _, err := tvnep.New(sub, tvnep.WithAlgorithm(tvnep.Rounding), opt); err != nil {
			t.Fatalf("compatible cut mode refused: %v", err)
		}
	}
}
