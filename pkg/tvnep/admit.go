package tvnep

import (
	"context"

	"tvnep/internal/admit"
	"tvnep/internal/core"
)

// engine returns the solver's admission engine, creating it on first use.
func (s *Solver) engine() (*admit.Engine, error) {
	s.engOnce.Do(func() {
		if s.cfg.horizon <= 0 {
			s.engErr = ErrNoHorizon
			return
		}
		if s.cfg.flowMode == core.FlowPath {
			// The admission tiers (integral-LP shortcut, rounding, warm
			// commit-restart) all decompose arc flows; path mode has no
			// incremental counterpart here.
			s.engErr = &OptionConflictError{Option: "WithFlowMode(path)", Online: true}
			return
		}
		s.eng, s.engErr = admit.New(admit.Config{
			Sub:             s.sub,
			Horizon:         s.cfg.horizon,
			Solve:           s.cfg.solve,
			CutMode:         s.cfg.cutMode,
			DisablePresolve: s.cfg.noPresolve,
			Rounding:        s.cfg.algorithm == Rounding,
			Seed:            s.cfg.solve.Seed,
			Certify:         s.cfg.certify,
			ReoptEvery:      s.cfg.reoptEvery,
		})
	})
	return s.eng, s.engErr
}

// Admit streams one arriving request through the online admission engine:
// the request is accepted (and its schedule committed, never to change)
// exactly when a feasible embedding alongside all previously committed
// requests exists, following objective (21) of the greedy algorithm.
// mapping pins every virtual node a priori. Requires WithHorizon; decisions
// are made strictly in call order and, under the default node-limit budget,
// are a pure function of the submission sequence (bit-identical replays for
// any WithWorkers value).
func (s *Solver) Admit(ctx context.Context, req *Request, mapping []int) (Decision, error) {
	eng, err := s.engine()
	if err != nil {
		return Decision{}, err
	}
	return eng.Admit(ctx, req, mapping)
}

// EngineStats returns the admission engine's aggregate statistics (zero
// before the first Admit call).
func (s *Solver) EngineStats() EngineStats {
	if s.eng == nil {
		return EngineStats{}
	}
	return s.eng.Stats()
}

// Decisions returns every admission decision so far, in arrival order.
func (s *Solver) Decisions() []Decision {
	if s.eng == nil {
		return nil
	}
	return s.eng.Decisions()
}

// Snapshot reconstructs the instance streamed so far and the engine's
// committed solution over it (accepted requests keep their committed
// schedules and embeddings; rejected requests carry the Definition-2.1
// fixed times). The pair certifies under the AccessControl objective.
func (s *Solver) Snapshot() (*Instance, NodeMapping, *Solution) {
	if s.eng == nil {
		return &core.Instance{Sub: s.sub, Horizon: s.cfg.horizon}, nil, &Solution{}
	}
	return s.eng.Snapshot()
}
