package tvnep_test

import (
	"context"
	"fmt"

	"tvnep/pkg/tvnep"
)

// Example embeds two star requests into a 2×2 grid substrate: one exact
// offline solve, then the same pair streamed through the online admission
// engine.
func Example() {
	sub := tvnep.Grid(2, 2, 2.0, 2.0)

	a := tvnep.Star("a", 1, false, 1.0, 0.5)
	a.Duration, a.Earliest, a.Latest = 2, 0, 6
	b := tvnep.Star("b", 1, false, 1.0, 0.5)
	b.Duration, b.Earliest, b.Latest = 3, 1, 8
	mapping := tvnep.NodeMapping{{0, 1}, {0, 2}}

	// Exact offline solve of the whole instance.
	solver, err := tvnep.New(sub,
		tvnep.WithObjective(tvnep.AccessControl),
		tvnep.WithNodeLimit(10000),
	)
	if err != nil {
		panic(err)
	}
	res, err := solver.Solve(context.Background(), []*tvnep.Request{a, b}, mapping)
	if err != nil {
		panic(err)
	}
	fmt.Printf("offline: status=%v accepted=%d objective=%.1f\n",
		res.Status, res.Solution.NumAccepted(), res.Solution.Objective)

	// The same requests, streamed one at a time.
	online, err := tvnep.New(sub, tvnep.WithHorizon(10), tvnep.WithCertify())
	if err != nil {
		panic(err)
	}
	for i, req := range []*tvnep.Request{a, b} {
		d, err := online.Admit(context.Background(), req, mapping[i])
		if err != nil {
			panic(err)
		}
		fmt.Printf("online: %s accepted=%v start=%.1f\n", d.Name, d.Accepted, d.Start)
	}

	// Output:
	// offline: status=optimal accepted=2 objective=10.0
	// online: a accepted=true start=0.0
	// online: b accepted=true start=1.0
}
