package tvnep

import (
	"context"
	"fmt"
	"time"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/greedy"
	"tvnep/internal/lp"
	"tvnep/internal/model"
	"tvnep/internal/round"
	"tvnep/internal/solution"
)

// Result is the outcome of one offline solve.
type Result struct {
	// Solution is the extracted solution (never nil on a nil error).
	Solution *Solution
	// Status is the solver's typed outcome.
	Status SolveStatus
	// Gap is the final relative optimality gap.
	Gap float64
	// Nodes and LPIterations count branch-and-bound and simplex work.
	Nodes        int
	LPIterations int
	// Runtime is the wall-clock solve time.
	Runtime time.Duration
	// Cuts summarizes lazy separation (zero without separators).
	Cuts model.CutStats
	// ColumnStats summarizes column generation (zero without pricers, i.e.
	// outside FlowPath mode).
	ColumnStats model.ColumnStats
	// ModelStats describes the built formulation (nil for greedy runs).
	ModelStats *ModelStats
	// Greedy carries the heuristic's per-run statistics (nil for exact
	// runs).
	Greedy *GreedyStats
	// Rounding carries the randomized-rounding tier's per-run statistics
	// (nil unless WithAlgorithm(Rounding) was used).
	Rounding *RoundingStats
	// Certificate holds the independent certificates when WithCertify is
	// set (nil otherwise).
	Certificate *Certificate
}

// ModelStats describes a built formulation.
type ModelStats struct {
	Formulation Formulation
	Objective   Objective
	Vars        int
	Constrs     int
	IntVars     int
	// CutCandidates is the size of the lazily separated Constraint-(20)
	// family (CutLazy cΣ builds only).
	CutCandidates int
}

// Certificate bundles the independent certificates of one result.
type Certificate struct {
	// Solution is the Definition-2.1 + objective recomputation certificate.
	Solution *certify.Report
	// Cuts re-validates every applied lazy cut (exact solves; nil
	// otherwise).
	Cuts *certify.Report
	// Columns re-validates every priced path column against the substrate
	// graph (exact FlowPath solves; nil otherwise).
	Columns *certify.Report
	// RootLP is the primal/dual optimality certificate of the root
	// relaxation (exact solves; nil otherwise).
	RootLP *certify.LPCertificate
}

// Solve solves the instance formed by the requests over the solver's
// substrate. mapping pins virtual nodes a priori (the paper's evaluation
// mode); a nil mapping lets exact models place nodes freely. It returns
// ErrNoSolution when the limits are exhausted without a feasible solution
// and *CertificationError when WithCertify is set and a certificate fails.
func (s *Solver) Solve(ctx context.Context, reqs []*Request, mapping NodeMapping) (*Result, error) {
	horizon := s.cfg.horizon
	if horizon <= 0 {
		for _, r := range reqs {
			if r != nil && r.Latest > horizon {
				horizon = r.Latest
			}
		}
	}
	inst := &core.Instance{Sub: s.sub, Reqs: reqs, Horizon: horizon}
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("tvnep: %w", err)
	}
	if s.cfg.flowMode == core.FlowPath && mapping == nil {
		return nil, fmt.Errorf("tvnep: WithFlowMode(path) requires a node mapping (path endpoints must be known at build time)")
	}
	switch s.cfg.algorithm {
	case Greedy:
		return s.solveGreedy(ctx, inst, mapping)
	case Rounding:
		return s.solveRounding(ctx, inst, mapping)
	}
	return s.solveExact(ctx, inst, mapping)
}

func (s *Solver) solveGreedy(ctx context.Context, inst *core.Instance, mapping NodeMapping) (*Result, error) {
	build := core.BuildOptions{
		CutMode:         s.cfg.cutMode,
		FlowMode:        s.cfg.flowMode,
		DisablePresolve: s.cfg.noPresolve,
	}
	sol, stats, err := greedy.Solve(ctx, inst, mapping, build, &s.cfg.solve)
	if err != nil {
		return nil, fmt.Errorf("tvnep: %w", err)
	}
	res := &Result{
		Solution:     sol,
		Status:       StatusFeasible, // heuristic: feasible, no optimality claim
		Nodes:        stats.TotalBBNodes,
		LPIterations: stats.TotalLPIters,
		Runtime:      stats.TotalRuntime,
		Greedy:       &stats,
	}
	if err := s.verify(inst, sol, mapping, res, nil, nil); err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Solver) solveRounding(ctx context.Context, inst *core.Instance, mapping NodeMapping) (*Result, error) {
	opts := round.Options{
		Seed:            s.cfg.solve.Seed,
		Objective:       s.cfg.objective,
		LoadFraction:    s.cfg.loadFraction,
		CutMode:         s.cfg.cutMode,
		DisablePresolve: s.cfg.noPresolve,
		Solve:           s.cfg.solve,
	}
	sol, stats, err := round.Solve(ctx, inst, mapping, opts)
	if err != nil {
		return nil, fmt.Errorf("tvnep: %w", err)
	}
	res := &Result{
		Status:       StatusFeasible, // heuristic: feasible, no optimality claim
		Nodes:        stats.FallbackNodes,
		LPIterations: stats.LPIterations,
		Runtime:      stats.Runtime,
		Rounding:     &stats,
	}
	if sol == nil {
		return res, ErrNoSolution
	}
	res.Solution = sol
	res.Gap = sol.Gap
	if sol.Optimal {
		res.Status = StatusOptimal
	}
	if err := s.verify(inst, sol, mapping, res, nil, nil); err != nil {
		return nil, err
	}
	return res, nil
}

func (s *Solver) solveExact(ctx context.Context, inst *core.Instance, mapping NodeMapping) (*Result, error) {
	b := core.Build(s.cfg.formulation, inst, core.BuildOptions{
		Objective:       s.cfg.objective,
		LoadFraction:    s.cfg.loadFraction,
		FixedMapping:    mapping,
		CutMode:         s.cfg.cutMode,
		FlowMode:        s.cfg.flowMode,
		DisablePresolve: s.cfg.noPresolve,
	})
	sol, ms := b.Solve(ctx, &s.cfg.solve)
	res := &Result{
		Status:       ms.Status,
		Gap:          ms.Gap,
		Nodes:        ms.Nodes,
		LPIterations: ms.LPIterations,
		Runtime:      ms.Runtime,
		Cuts:         ms.Cuts,
		ColumnStats:  ms.Columns,
		ModelStats: &ModelStats{
			Formulation:   s.cfg.formulation,
			Objective:     s.cfg.objective,
			Vars:          b.Model.NumVars(),
			Constrs:       b.Model.NumConstrs(),
			IntVars:       b.Model.NumIntVars(),
			CutCandidates: b.PrecCutCandidates(),
		},
	}
	if ms.Status == model.StatusCancelled {
		return nil, ctx.Err()
	}
	if sol == nil {
		return res, ErrNoSolution
	}
	res.Solution = sol
	if err := s.verify(inst, sol, mapping, res, b, ms); err != nil {
		return nil, err
	}
	return res, nil
}

// verify runs the always-on feasibility check and, under WithCertify, the
// full independent certificates (solution, applied cuts, root LP).
func (s *Solver) verify(inst *core.Instance, sol *Solution, mapping NodeMapping, res *Result, b *core.Built, ms *model.Solution) error {
	if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
		return &CertificationError{Stage: "solution", Err: err}
	}
	if !s.cfg.certify {
		return nil
	}
	cert := &Certificate{}
	res.Certificate = cert
	certOpts := certify.Options{
		Objective:    s.cfg.objective,
		LoadFraction: s.cfg.loadFraction,
		Mapping:      mapping,
		// Greedy solutions carry the per-iteration objective; the greedy
		// driver recomputes the access-control value itself, so the
		// recomputation applies there too.
	}
	cert.Solution = certify.Solution(inst, sol, certOpts)
	if err := cert.Solution.Err(); err != nil {
		return &CertificationError{Stage: "solution", Err: err}
	}
	if b != nil && ms != nil {
		cert.Cuts = certify.Cuts(b, ms)
		if err := cert.Cuts.Err(); err != nil {
			return &CertificationError{Stage: "cuts", Err: err}
		}
		cert.Columns = certify.Columns(b, ms)
		if err := cert.Columns.Err(); err != nil {
			return &CertificationError{Stage: "columns", Err: err}
		}
		lpp := b.Model.LP()
		lpRes := lp.Solve(lpp, nil)
		cert.RootLP = certify.LP(lpp, lpRes, 0)
		if err := cert.RootLP.Err(); err != nil {
			return &CertificationError{Stage: "root-lp", Err: err}
		}
	}
	return nil
}
