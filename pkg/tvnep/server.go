package tvnep

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/workload"
)

// AdmitRequest is the POST /v1/admit request body.
type AdmitRequest struct {
	// Request is the arriving VNet request in wire form.
	Request RequestWire `json:"request"`
	// Mapping pins each virtual node to a substrate node.
	Mapping []int `json:"mapping"`
}

// AdmitResponse is the POST /v1/admit response body.
type AdmitResponse struct {
	Index         int     `json:"index"`
	Name          string  `json:"name"`
	Accepted      bool    `json:"accepted"`
	Start         float64 `json:"start"`
	End           float64 `json:"end"`
	Hosts         []int   `json:"hosts,omitempty"`
	Tier          Tier    `json:"tier"`
	LatencyNS     int64   `json:"latency_ns"`
	LPIterations  int     `json:"lp_iterations"`
	Nodes         int     `json:"nodes"`
	WarmUsed      bool    `json:"warm_used"`
	BasisExtended bool    `json:"basis_extended"`
	CertError     string  `json:"cert_error,omitempty"`
}

// StatsResponse is the GET /v1/stats response body.
type StatsResponse struct {
	Decisions     int     `json:"decisions"`
	Accepted      int     `json:"accepted"`
	Rejected      int     `json:"rejected"`
	AcceptRate    float64 `json:"accept_rate"`
	PrecheckTier  int     `json:"precheck_tier"`
	LPTier        int     `json:"lp_tier"`
	MIPTier       int     `json:"mip_tier"`
	CertFailures  int     `json:"cert_failures"`
	Reopts        int     `json:"reopts"`
	TotalLPIters  int     `json:"total_lp_iterations"`
	TotalNodes    int     `json:"total_nodes"`
	WarmAttempts  int     `json:"warm_attempts"`
	WarmUsed      int     `json:"warm_used"`
	WarmRate      float64 `json:"warm_rate"`
	BasisExtended int     `json:"basis_extended"`
	LatencyP50NS  int64   `json:"latency_p50_ns"`
	LatencyP99NS  int64   `json:"latency_p99_ns"`
}

// SolutionResponse is the GET /v1/solution response body: the instance
// streamed so far and the committed solution over it, re-certified on the
// way out.
type SolutionResponse struct {
	Horizon   float64       `json:"horizon"`
	Requests  []RequestWire `json:"requests"`
	Mapping   [][]int       `json:"mapping"`
	Accepted  []bool        `json:"accepted"`
	Start     []float64     `json:"start"`
	End       []float64     `json:"end"`
	Objective float64       `json:"objective"`
	// Certified reports that the snapshot passed the independent
	// certificate; Violations lists the named failures otherwise.
	Certified  bool     `json:"certified"`
	Violations []string `json:"violations,omitempty"`
}

// Server exposes a Solver's online admission engine over HTTP/JSON:
//
//	POST /v1/admit     {"request": {...}, "mapping": [...]} → decision
//	GET  /v1/solution  committed snapshot, independently certified
//	GET  /v1/stats     aggregate engine statistics
//	GET  /healthz      liveness probe
//
// The zero value is not useful; use NewServer. Server is an http.Handler.
type Server struct {
	solver *Solver
	mux    *http.ServeMux
}

// NewServer wraps a Solver (configured with WithHorizon for admission) into
// an HTTP handler.
func NewServer(s *Solver) *Server {
	sv := &Server{solver: s, mux: http.NewServeMux()}
	sv.mux.HandleFunc("/v1/admit", sv.handleAdmit)
	sv.mux.HandleFunc("/v1/solution", sv.handleSolution)
	sv.mux.HandleFunc("/v1/stats", sv.handleStats)
	sv.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return sv
}

// ServeHTTP implements http.Handler.
func (sv *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { sv.mux.ServeHTTP(w, r) }

// maxBody bounds one admit request body; real requests are a few KB.
const maxBody = 1 << 20

func (sv *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var in AdmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	req, err := in.Request.Decode()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	d, err := sv.solver.Admit(r.Context(), req, in.Mapping)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	out := AdmitResponse{
		Index:         d.Index,
		Name:          d.Name,
		Accepted:      d.Accepted,
		Start:         d.Start,
		End:           d.End,
		Hosts:         d.Hosts,
		Tier:          d.Stats.Tier,
		LatencyNS:     d.Stats.Latency.Nanoseconds(),
		LPIterations:  d.Stats.LPIterations,
		Nodes:         d.Stats.Nodes,
		WarmUsed:      d.Stats.WarmUsed,
		BasisExtended: d.Stats.BasisExtended,
	}
	if d.CertErr != nil {
		out.CertError = d.CertErr.Error()
	}
	writeJSON(w, out)
}

func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	s := sv.solver.EngineStats()
	writeJSON(w, StatsResponse{
		Decisions:     s.Decisions,
		Accepted:      s.Accepted,
		Rejected:      s.Rejected,
		AcceptRate:    s.AcceptRate(),
		PrecheckTier:  s.PrecheckTier,
		LPTier:        s.LPTier,
		MIPTier:       s.MIPTier,
		CertFailures:  s.CertFailures,
		Reopts:        s.Reopts,
		TotalLPIters:  s.TotalLPIters,
		TotalNodes:    s.TotalNodes,
		WarmAttempts:  s.WarmAttempts,
		WarmUsed:      s.WarmUsed,
		WarmRate:      s.WarmRate(),
		BasisExtended: s.BasisExtended,
		LatencyP50NS:  int64(s.LatencyP50 / time.Nanosecond),
		LatencyP99NS:  int64(s.LatencyP99 / time.Nanosecond),
	})
}

func (sv *Server) handleSolution(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	inst, mapping, sol := sv.solver.Snapshot()
	out := SolutionResponse{
		Horizon:   inst.Horizon,
		Mapping:   mapping,
		Accepted:  sol.Accepted,
		Start:     sol.Start,
		End:       sol.End,
		Objective: sol.Objective,
	}
	for _, req := range inst.Reqs {
		out.Requests = append(out.Requests, workload.EncodeRequest(req))
	}
	rep := certify.Solution(inst, sol, certify.Options{Objective: core.AccessControl, Mapping: mapping})
	out.Certified = rep.OK()
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, v.String())
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are gone; nothing to do beyond noting it in the log-free
		// server: the client sees a truncated body and a closed connection.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
