package tvnep_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"tvnep/internal/workload"
	"tvnep/pkg/tvnep"
)

// TestServerRoundTrip drives the full HTTP surface: health probe, streamed
// admissions, per-decision responses, aggregate stats and the certified
// solution fetch.
func TestServerRoundTrip(t *testing.T) {
	sc := scenario(t, 12, 6)
	solver, err := tvnep.New(sc.Substrate,
		tvnep.WithHorizon(sc.Horizon),
		tvnep.WithCertify(),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(tvnep.NewServer(solver))
	defer ts.Close()

	// Liveness.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v (status %v)", err, resp.Status)
	}
	resp.Body.Close()

	// Stream every request; collect decisions.
	accepted := 0
	for i, req := range sc.Requests {
		body, err := json.Marshal(tvnep.AdmitRequest{
			Request: workload.EncodeRequest(req),
			Mapping: sc.Mapping[i],
		})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		resp, err := http.Post(ts.URL+"/v1/admit", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		var d tvnep.AdmitResponse
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatalf("admit %d: decode: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit %d: status %v", i, resp.Status)
		}
		if d.Index != i || d.Name != req.Name {
			t.Fatalf("admit %d: echoed (%d, %q), want (%d, %q)", i, d.Index, d.Name, i, req.Name)
		}
		if d.CertError != "" {
			t.Fatalf("admit %d: certificate failure: %s", i, d.CertError)
		}
		if d.Accepted {
			accepted++
		}
	}
	if accepted == 0 {
		t.Fatal("server accepted nothing; scenario too tight to be meaningful")
	}

	// Aggregate stats must agree with the streamed decisions.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var stats tvnep.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("stats: decode: %v", err)
	}
	resp.Body.Close()
	if stats.Decisions != len(sc.Requests) || stats.Accepted != accepted {
		t.Fatalf("stats (%d decisions, %d accepted) disagree with stream (%d, %d)",
			stats.Decisions, stats.Accepted, len(sc.Requests), accepted)
	}
	if stats.WarmAttempts > 0 && stats.WarmUsed == 0 {
		t.Errorf("warm rate zero across %d attempts", stats.WarmAttempts)
	}
	if stats.LatencyP99NS <= 0 {
		t.Errorf("latency p99 not reported: %d", stats.LatencyP99NS)
	}

	// Certified solution fetch.
	resp, err = http.Get(ts.URL + "/v1/solution")
	if err != nil {
		t.Fatalf("solution: %v", err)
	}
	var sol tvnep.SolutionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sol); err != nil {
		t.Fatalf("solution: decode: %v", err)
	}
	resp.Body.Close()
	if !sol.Certified {
		t.Fatalf("solution snapshot not certified: %v", sol.Violations)
	}
	if len(sol.Requests) != len(sc.Requests) || len(sol.Accepted) != len(sc.Requests) {
		t.Fatalf("solution covers %d/%d requests", len(sol.Requests), len(sc.Requests))
	}
	gotAccepted := 0
	for _, a := range sol.Accepted {
		if a {
			gotAccepted++
		}
	}
	if gotAccepted != accepted {
		t.Fatalf("solution accepted %d != streamed %d", gotAccepted, accepted)
	}
}

// TestServerRejectsMalformed pins the error paths of the admit endpoint.
func TestServerRejectsMalformed(t *testing.T) {
	sub := tvnep.Grid(2, 2, 1, 1)
	solver, err := tvnep.New(sub, tvnep.WithHorizon(10))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(tvnep.NewServer(solver))
	defer ts.Close()

	for name, body := range map[string]string{
		"not-json":      "{",
		"unknown-field": `{"bogus": 1}`,
		"bad-request":   `{"request": {"name": "x", "nodes": -3}, "mapping": []}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/admit", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %v, want 400", name, resp.Status)
		}
	}

	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/admit")
	if err != nil {
		t.Fatalf("GET admit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET admit: status %v, want 405", resp.Status)
	}

	// A structurally valid request whose mapping is out of range is a
	// semantic rejection (422), not a decision.
	req := tvnep.Star("r", 1, false, 0.5, 0.25)
	req.Duration, req.Earliest, req.Latest = 1, 0, 2
	body, err := json.Marshal(tvnep.AdmitRequest{Request: workload.EncodeRequest(req), Mapping: []int{0, 99}})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err = http.Post(ts.URL+"/v1/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("out-of-range mapping: status %v, want 422", resp.Status)
	}
}
