// Package tvnep is the public API of this repository. See doc.go for the
// package overview and a runnable example.
package tvnep

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tvnep/internal/admit"
	"tvnep/internal/core"
	"tvnep/internal/greedy"
	"tvnep/internal/model"
	"tvnep/internal/round"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

// Re-exported problem-data types. The facade is the only supported entry
// point; these aliases are the full public surface of the underlying
// packages.
type (
	// Substrate is the physical network (nodes/links with capacities).
	Substrate = substrate.Network
	// Request is one VNet request with temporal parameters (Table VI).
	Request = vnet.Request
	// NodeMapping pins virtual nodes to substrate nodes a priori.
	NodeMapping = vnet.NodeMapping
	// Solution is a (candidate) TVNEP solution.
	Solution = solution.Solution
	// Instance bundles a substrate, a request set and a horizon.
	Instance = core.Instance
	// Scenario is a generated evaluation scenario.
	Scenario = workload.Scenario
	// WorkloadConfig parameterizes scenario generation (Section VI-A).
	WorkloadConfig = workload.Config
	// RequestWire is the JSON wire form of a request (scenario files and
	// the admission server's submit endpoint).
	RequestWire = workload.RequestJSON

	// Formulation identifies one of the paper's three MIP models.
	Formulation = core.Formulation
	// Objective selects one of the Section IV-E objective functions.
	Objective = core.Objective
	// CutMode selects the Constraint-(20) cut pipeline (cΣ only).
	CutMode = core.CutMode
	// FlowMode selects arc-based or path-based link flows (cΣ only).
	FlowMode = core.FlowMode

	// SolveStatus is the typed outcome of a solve.
	SolveStatus = model.Status
	// Progress is a snapshot of a running solve.
	Progress = model.Progress
	// GreedyStats reports per-run statistics of the greedy algorithm.
	GreedyStats = greedy.Stats
	// RoundingStats reports per-run statistics of the randomized-rounding
	// tier (samples, repairs, fallback).
	RoundingStats = round.Stats

	// Decision is the admission engine's answer to one streamed request.
	Decision = admit.Decision
	// DecisionStats are the per-decision solver statistics.
	DecisionStats = admit.DecisionStats
	// EngineStats aggregates admission statistics across all decisions.
	EngineStats = admit.Stats
	// Tier names the cost tier that produced an admission decision.
	Tier = admit.Tier
)

// Formulations.
const (
	Delta  = core.Delta
	Sigma  = core.Sigma
	CSigma = core.CSigma
)

// Objectives.
const (
	AccessControl   = core.AccessControl
	MaxEarliness    = core.MaxEarliness
	BalanceNodeLoad = core.BalanceNodeLoad
	DisableLinks    = core.DisableLinks
	MinMakespan     = core.MinMakespan
)

// Cut modes.
const (
	CutStatic = core.CutStatic
	CutLazy   = core.CutLazy
	CutOff    = core.CutOff
)

// Flow modes.
const (
	FlowArc  = core.FlowArc
	FlowPath = core.FlowPath
)

// Solve statuses.
const (
	StatusOptimal    = model.StatusOptimal
	StatusFeasible   = model.StatusFeasible
	StatusInfeasible = model.StatusInfeasible
	StatusUnbounded  = model.StatusUnbounded
	StatusTimeLimit  = model.StatusTimeLimit
	StatusCancelled  = model.StatusCancelled
)

// Admission tiers.
const (
	TierPrecheck = admit.TierPrecheck
	TierLP       = admit.TierLP
	TierRounding = admit.TierRounding
	TierMIP      = admit.TierMIP
)

// Re-exported constructors and helpers.
var (
	// Grid builds the rows×cols grid substrate of the paper's evaluation.
	Grid = substrate.Grid
	// Star, Chain and Clique build the canonical request topologies.
	Star   = vnet.Star
	Chain  = vnet.Chain
	Clique = vnet.Clique
	// Generate produces a seeded evaluation scenario.
	Generate = workload.Generate
	// DefaultWorkload and PaperWorkload are the two scenario presets.
	DefaultWorkload = workload.Default
	PaperWorkload   = workload.PaperScale
	// ParseCutMode parses the CLI spelling of a cut mode.
	ParseCutMode = core.ParseCutMode
	// ParseFlowMode parses the CLI spelling of a flow mode.
	ParseFlowMode = core.ParseFlowMode
	// WriteTimeline prints the piecewise-constant utilization timeline.
	WriteTimeline = solution.WriteTimeline
	// CheckSolution is the independent Definition-2.1 feasibility checker.
	CheckSolution = solution.Check
	// EncodeRequest converts a request into its JSON wire form.
	EncodeRequest = workload.EncodeRequest
)

// Algorithm selects how Solver.Solve computes its solution.
type Algorithm int

const (
	// Exact solves the selected formulation to proven optimality.
	Exact Algorithm = iota
	// Greedy runs the polynomial-time online heuristic cΣ_A^G (Section V).
	// It supports the AccessControl objective only and requires a node
	// mapping.
	Greedy
	// Rounding runs the approximate LP-relaxation randomized-rounding tier
	// (internal/round): relax, decompose, sample, repair by deferral, and
	// fall back to exact branch-and-bound only when no sample survives. It
	// requires a node mapping and the cΣ formulation; every returned
	// solution has passed the independent certifier. Online admission
	// (Solver.Admit) uses it as an extra fast tier ahead of the MIP tier.
	Rounding
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case Exact:
		return "exact"
	case Greedy:
		return "greedy"
	case Rounding:
		return "rounding"
	default:
		return fmt.Sprintf("tvnep.Algorithm(%d)", int(a))
	}
}

// OptionConflictError reports an option that does not apply to the
// configured formulation or algorithm: the cut pipeline and the
// activity-interval presolve exist in the cΣ-Model only, so requesting
// them with Δ or Σ is a configuration error, not a silent no-op (and not
// a stderr warning). Likewise, the rounding algorithm solves only a bare
// LP relaxation, so options that shape the branch-and-bound cut pipeline
// (lazy separation) are meaningless with it, and the algorithm itself is
// cΣ-only.
type OptionConflictError struct {
	// Option is the conflicting option's name, e.g. "WithCutMode".
	Option string
	// Formulation is the formulation the option does not apply to (for
	// formulation conflicts; Algorithm is Exact then).
	Formulation Formulation
	// Algorithm is the algorithm the option does not combine with (for
	// algorithm conflicts, e.g. WithCutMode(lazy) with Rounding).
	Algorithm Algorithm
	// Online is set when the option does not combine with online admission
	// (Solver.Admit), whose incremental tiers run the arc-flow engine.
	Online bool
}

// Error implements error.
func (e *OptionConflictError) Error() string {
	if e.Online {
		return fmt.Sprintf("tvnep: %s does not combine with online admission", e.Option)
	}
	if e.Algorithm != Exact {
		return fmt.Sprintf("tvnep: %s does not combine with the %v algorithm",
			e.Option, e.Algorithm)
	}
	return fmt.Sprintf("tvnep: %s applies to the cΣ model only; the %v model has no such ablation",
		e.Option, e.Formulation)
}

// CertificationError reports that a solve or admission produced a solution
// the independent certifier rejected.
type CertificationError struct {
	// Stage names the certificate that failed ("solution", "cuts",
	// "columns", "root-lp").
	Stage string
	// Err is the underlying certificate error (all named violations).
	Err error
}

// Error implements error.
func (e *CertificationError) Error() string {
	return fmt.Sprintf("tvnep: %s certificate failed: %v", e.Stage, e.Err)
}

// Unwrap exposes the certificate error to errors.Is/As.
func (e *CertificationError) Unwrap() error { return e.Err }

// ErrNoSolution is returned when a solve finds no feasible solution within
// its limits.
var ErrNoSolution = errors.New("tvnep: no feasible solution found within the limits")

// ErrNoHorizon is returned when online admission is requested without a
// planning horizon (WithHorizon): the streaming engine cannot derive T from
// requests it has not seen yet.
var ErrNoHorizon = errors.New("tvnep: online admission requires WithHorizon")

// config is the resolved option set of a Solver.
type config struct {
	formulation     Formulation
	objective       Objective
	algorithm       Algorithm
	cutMode         CutMode
	cutModeSet      bool
	flowMode        FlowMode
	flowModeSet     bool
	noPresolve      bool
	loadFraction    float64
	horizon         float64
	certify         bool
	reoptEvery      int
	solve           model.SolveOptions
	progressSet     bool
	conflictingOpts []string // options that require the cΣ formulation
}

// Option configures a Solver; see New.
type Option func(*config)

// WithFormulation selects the MIP model (default CSigma).
func WithFormulation(f Formulation) Option {
	return func(c *config) { c.formulation = f }
}

// WithObjective selects the objective function (default AccessControl).
func WithObjective(o Objective) Option {
	return func(c *config) { c.objective = o }
}

// WithAlgorithm selects exact or greedy solving (default Exact). Online
// admission (Solver.Admit) always runs the engine's incremental algorithm
// and ignores this option.
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) { c.algorithm = a }
}

// WithCutMode selects the Constraint-(20) cut pipeline. cΣ only: combining
// it with Delta or Sigma makes New fail with *OptionConflictError.
func WithCutMode(m CutMode) Option {
	return func(c *config) {
		c.cutMode = m
		c.cutModeSet = true
		c.conflictingOpts = append(c.conflictingOpts, "WithCutMode")
	}
}

// WithFlowMode selects arc-based or path-based link flows (default arc).
// Path mode replaces the per-link arc variables and conservation rows with
// one convexity row per virtual link and path columns priced on demand by a
// reduced-cost shortest-path pricer; both modes reach the same certified
// optimum. cΣ only: combining it with Delta or Sigma makes New fail with
// *OptionConflictError, as do the rounding algorithm and online admission,
// whose tiers decompose arc flows. Path mode requires a node mapping at
// Solve time (path endpoints must be known when the model is built).
func WithFlowMode(m FlowMode) Option {
	return func(c *config) {
		c.flowMode = m
		c.flowModeSet = true
		c.conflictingOpts = append(c.conflictingOpts, "WithFlowMode")
	}
}

// WithoutPresolve disables the activity-interval state-space reduction
// (ablations). cΣ only: combining it with Delta or Sigma makes New fail
// with *OptionConflictError.
func WithoutPresolve() Option {
	return func(c *config) {
		c.noPresolve = true
		c.conflictingOpts = append(c.conflictingOpts, "WithoutPresolve")
	}
}

// WithLoadFraction sets f for the BalanceNodeLoad objective (default 0.5).
func WithLoadFraction(f float64) Option {
	return func(c *config) { c.loadFraction = f }
}

// WithHorizon fixes the planning horizon T. Offline solves default to the
// largest request window end; online admission requires this option.
func WithHorizon(t float64) Option {
	return func(c *config) { c.horizon = t }
}

// WithTimeLimit bounds each solve by d. Note that a time limit makes online
// admission decisions depend on machine speed; prefer WithNodeLimit for
// reproducible traces.
func WithTimeLimit(d time.Duration) Option {
	return func(c *config) { c.solve.TimeLimit = d }
}

// WithNodeLimit bounds each branch-and-bound search by n nodes. Unlike a
// time limit this keeps decisions a pure function of the inputs.
func WithNodeLimit(n int) Option {
	return func(c *config) { c.solve.NodeLimit = n }
}

// WithGapTol sets the relative optimality gap at which a search stops
// (default 1e-6).
func WithGapTol(g float64) Option {
	return func(c *config) { c.solve.GapTol = g }
}

// WithWorkers sets the branch-and-bound parallelism. The tree search is
// deterministic: results are bit-identical for every worker count.
func WithWorkers(n int) Option {
	return func(c *config) { c.solve.Workers = n }
}

// WithSeed sets the seed for the randomized-rounding tier's explicitly
// seeded sampling (WithAlgorithm(Rounding) and the admission engine's
// rounding tier). Equal seeds give bit-identical results; the exact
// branch-and-bound is deterministic by construction and ignores it.
func WithSeed(seed int64) Option {
	return func(c *config) { c.solve.Seed = seed }
}

// WithProgress installs a per-solve progress callback.
func WithProgress(fn func(Progress)) Option {
	return func(c *config) {
		c.solve.Progress = fn
		c.progressSet = true
	}
}

// WithCertify re-verifies every result with the independent certifier
// before it is returned (solution certificate; for exact solves also the
// applied-cut and root-LP certificates). Certification failures surface as
// *CertificationError; the admission engine additionally downgrades
// uncertified acceptances to rejections.
func WithCertify() Option {
	return func(c *config) { c.certify = true }
}

// WithReoptEvery triggers a batched re-optimization of committed link
// allocations after every n-th accepted admission (0 → never).
func WithReoptEvery(n int) Option {
	return func(c *config) { c.reoptEvery = n }
}

// Solver is the facade over every solve mode of the repository: exact
// formulations, the greedy heuristic, and the online admission engine. A
// Solver is safe for concurrent use; admissions are serialized internally.
type Solver struct {
	sub *Substrate
	cfg config

	// Online admission engine, created lazily by the first Admit call.
	engOnce sync.Once
	eng     *admit.Engine
	engErr  error
}

// New validates the configuration and returns a Solver for the substrate.
func New(sub *Substrate, opts ...Option) (*Solver, error) {
	if sub == nil {
		return nil, errors.New("tvnep: nil substrate")
	}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("tvnep: %w", err)
	}
	cfg := config{formulation: CSigma, objective: AccessControl}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.formulation != CSigma && len(cfg.conflictingOpts) > 0 {
		return nil, &OptionConflictError{Option: cfg.conflictingOpts[0], Formulation: cfg.formulation}
	}
	if cfg.algorithm == Greedy && cfg.objective != AccessControl {
		return nil, fmt.Errorf("tvnep: the greedy algorithm supports the %v objective only, not %v",
			AccessControl, cfg.objective)
	}
	if cfg.algorithm == Rounding {
		if cfg.formulation != CSigma {
			return nil, &OptionConflictError{Option: "WithAlgorithm(rounding)", Formulation: cfg.formulation}
		}
		if cfg.flowMode == FlowPath {
			// The rounding tier samples from an arc-flow relaxation and its
			// path decomposition; it has no column-generation loop to price
			// path variables with.
			return nil, &OptionConflictError{Option: "WithFlowMode(path)", Algorithm: Rounding}
		}
		if cfg.cutModeSet && cfg.cutMode == CutLazy {
			// Rounding solves a bare relaxation: nothing ever separates
			// lazy cuts, so the request is a configuration error rather
			// than a silently weaker relaxation.
			return nil, &OptionConflictError{Option: "WithCutMode(lazy)", Algorithm: Rounding}
		}
	}
	return &Solver{sub: sub, cfg: cfg}, nil
}

// Substrate returns the solver's substrate network.
func (s *Solver) Substrate() *Substrate { return s.sub }
