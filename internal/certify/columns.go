package certify

// Column certificate: re-verifies every path column a FlowPath cΣ solve
// priced through the column-generation pipeline (internal/core's path pricer
// feeding internal/mip's column pool). Each applied column must (a) carry a
// path tag naming the virtual link it serves, (b) route that tag over a
// contiguous simple directed substrate path between the pinned endpoint
// hosts, and (c) carry exactly the LP coefficients that path implies. The
// expected coefficients are re-derived here from the dependency graph and
// the compiled row names — independently of the link-use registry the
// builder and pricer share — so a registry corrupted at build time cannot
// vouch for the columns it produced.

import (
	"fmt"

	"tvnep/internal/core"
	"tvnep/internal/depgraph"
	"tvnep/internal/lp"
	"tvnep/internal/model"
)

// Column-certificate violation classes.
const (
	// ColShape: an applied column is malformed (length mismatch, row index
	// outside the model, or bounds/objective differing from a unit path
	// variable's 0 ≤ λ ≤ 1 with zero objective).
	ColShape Kind = "col-shape"
	// ColTag: an applied column carries no path tag, or a tag naming a
	// request or virtual link outside the instance.
	ColTag Kind = "col-tag"
	// ColPath: a column's tagged link sequence is not a contiguous simple
	// directed substrate path between the pinned endpoint hosts.
	ColPath Kind = "col-path"
	// ColCoef: a column's LP coefficients disagree with the coefficients its
	// tagged path implies under the dependency-graph activity analysis.
	ColCoef Kind = "col-coef"
)

// Columns re-verifies every applied path column of a cΣ solve. A solve
// without applied columns passes trivially; applied columns on anything but
// a FlowPath cΣ build are themselves a violation, since no other build
// registers a pricer.
func Columns(b *core.Built, ms *model.Solution) *Report {
	rep := &Report{}
	if ms == nil || len(ms.AppliedColumns) == 0 {
		return rep
	}
	if b.Kind != core.CSigma || b.Opts.FlowMode != core.FlowPath {
		rep.addf(ColTag, -1, "applied columns on a %v/%v build; only FlowPath cΣ prices columns",
			b.Kind, b.Opts.FlowMode)
		return rep
	}
	rows := rowIndexByName(b.Model.LP())
	oracle := newActivityOracle(b)
	for _, c := range ms.AppliedColumns {
		checkColumn(rep, b, rows, oracle, c)
	}
	return rep
}

func checkColumn(rep *Report, b *core.Built, rows map[string]int, oracle *activityOracle, c model.Column) {
	if len(c.Idx) != len(c.Val) || len(c.Idx) == 0 {
		rep.addf(ColShape, -1, "column %q: %d indices, %d values", c.Name, len(c.Idx), len(c.Val))
		return
	}
	nRows := b.Model.NumConstrs()
	for _, i := range c.Idx {
		if int(i) < 0 || int(i) >= nRows {
			rep.addf(ColShape, -1, "column %q: row %d outside model with %d rows", c.Name, i, nRows)
			return
		}
	}
	//lint:allow floateq -- path-weight bounds are the exact literals 0 and 1 the builder emits; any drift is the violation
	if c.LB != 0 || c.UB != 1 || c.Obj != 0 {
		rep.addf(ColShape, -1, "column %q: bounds [%v, %v] obj %v, want [0, 1] obj 0",
			c.Name, c.LB, c.UB, c.Obj)
	}

	r, lv, links, ok := core.PathTagInfo(c)
	if !ok {
		rep.addf(ColTag, -1, "column %q carries no path tag", c.Name)
		return
	}
	if r < 0 || r >= len(b.Inst.Reqs) {
		rep.addf(ColTag, -1, "column %q: request %d outside instance with %d requests", c.Name, r, len(b.Inst.Reqs))
		return
	}
	req := b.Inst.Reqs[r]
	if lv < 0 || lv >= req.G.NumEdges() {
		rep.addf(ColTag, r, "column %q: virtual link %d outside request with %d links", c.Name, lv, req.G.NumEdges())
		return
	}
	u, v := req.G.Edge(lv)
	hu, hv := b.Opts.FixedMapping[r][u], b.Opts.FixedMapping[r][v]
	if hu == hv {
		rep.addf(ColPath, r, "column %q serves virtual link %d whose endpoints share host %d — no path column should exist",
			c.Name, lv, hu)
		return
	}
	if !checkSimplePath(rep, b, c.Name, r, links, hu, hv) {
		return
	}

	wantIdx, wantVal, ok := expectedPathColumn(rep, b, rows, oracle, c.Name, r, lv, links)
	if !ok {
		return
	}
	if cutRowKey(wantIdx, wantVal, 0, 0) != cutRowKey(c.Idx, c.Val, 0, 0) {
		rep.addf(ColCoef, r,
			"column %q: coefficients disagree with path %v (got %d terms %v@%v, expected %d terms %v@%v)",
			c.Name, links, len(c.Idx), c.Idx, c.Val, len(wantIdx), wantIdx, wantVal)
	}
}

// checkSimplePath verifies links is a contiguous directed walk from hu to hv
// over the substrate graph visiting no substrate node twice.
func checkSimplePath(rep *Report, b *core.Built, name string, r int, links []int, hu, hv int) bool {
	g := b.Inst.Sub.G
	if len(links) == 0 {
		rep.addf(ColPath, r, "column %q: empty path between distinct hosts %d and %d", name, hu, hv)
		return false
	}
	seen := map[int]bool{hu: true}
	at := hu
	for _, e := range links {
		if e < 0 || e >= g.NumEdges() {
			rep.addf(ColPath, r, "column %q: link %d outside substrate with %d links", name, e, g.NumEdges())
			return false
		}
		eu, ev := g.Edge(e)
		if eu != at {
			rep.addf(ColPath, r, "column %q: path %v breaks at link %d (tail %d, walker at %d)", name, links, e, eu, at)
			return false
		}
		if seen[ev] {
			rep.addf(ColPath, r, "column %q: path %v revisits substrate node %d", name, links, ev)
			return false
		}
		seen[ev] = true
		at = ev
	}
	if at != hv {
		rep.addf(ColPath, r, "column %q: path %v ends at %d, want host %d", name, links, at, hv)
		return false
	}
	return true
}

// expectedPathColumn re-derives the LP column the tagged path implies: +1 on
// the convexity row, the per-state allocation coefficients of every
// traversed link (−d on the Maybe-state rows, +d directly on the
// Always-state capacity rows, per the Section IV-C presolve), and the unit
// flow-count coefficients on the DisableLinks activity rows. Activity comes
// from a fresh dependency-graph analysis, not from the builder's registry.
func expectedPathColumn(rep *Report, b *core.Built, rows map[string]int, oracle *activityOracle, name string, r, lv int, links []int) ([]int32, []float64, bool) {
	conv, ok := rows[fmt.Sprintf("conv[%d][%d]", r, lv)]
	if !ok {
		rep.addf(ColCoef, r, "column %q: model has no convexity row conv[%d][%d]", name, r, lv)
		return nil, nil, false
	}
	idx := []int32{int32(conv)}
	val := []float64{1}
	k := len(b.Inst.Reqs)
	numNodes := b.Inst.Sub.NumNodes()
	d := b.Inst.Reqs[r].LinkDemand[lv]
	for _, ls := range links {
		if d > 0 {
			rsc := numNodes + ls
			for n := 1; n <= k; n++ {
				switch oracle.at(r, n) {
				case depgraph.Maybe:
					row, ok := rows[fmt.Sprintf("state[%d][%d][%d]", r, n, rsc)]
					if !ok {
						rep.addf(ColCoef, r, "column %q: no state row state[%d][%d][%d] for traversed link %d",
							name, r, n, rsc, ls)
						return nil, nil, false
					}
					idx = append(idx, int32(row))
					val = append(val, -d)
				case depgraph.Always:
					row, ok := rows[fmt.Sprintf("cap[%d][%d]", n, rsc)]
					if !ok {
						rep.addf(ColCoef, r, "column %q: no capacity row cap[%d][%d] for traversed link %d",
							name, n, rsc, ls)
						return nil, nil, false
					}
					idx = append(idx, int32(row))
					val = append(val, d)
				}
			}
		}
		if b.Opts.Objective == core.DisableLinks {
			row, ok := rows[fmt.Sprintf("dis[%d]", ls)]
			if !ok {
				rep.addf(ColCoef, r, "column %q: no activity row dis[%d] for traversed link %d", name, ls, ls)
				return nil, nil, false
			}
			idx = append(idx, int32(row))
			val = append(val, 1)
		}
	}
	return idx, val, true
}

// activityOracle replays the cΣ builder's request-activity analysis from the
// problem data: dependency-graph activity normally, window-bounded Maybe when
// the presolve is disabled, full windows when the cut family is off.
type activityOracle struct {
	dg               *depgraph.Graph
	disablePresolve  bool
	startWin, endWin []depgraph.Window
}

func newActivityOracle(b *core.Built) *activityOracle {
	dg := depgraph.Build(b.Inst.Reqs)
	o := &activityOracle{dg: dg, disablePresolve: b.Opts.DisablePresolve}
	if b.Opts.CutMode == core.CutOff {
		o.startWin, o.endWin = depgraph.FullWindows(len(b.Inst.Reqs))
	} else {
		o.startWin, o.endWin = dg.StartWindow, dg.EndWindow
	}
	return o
}

func (o *activityOracle) at(r, n int) depgraph.Activity {
	if o.disablePresolve {
		if n < o.startWin[r].Lo || n > o.endWin[r].Hi-1 {
			return depgraph.Never
		}
		return depgraph.Maybe
	}
	return o.dg.ActivityAt(r, n)
}

// rowIndexByName inverts the compiled problem's row names.
func rowIndexByName(p *lp.Problem) map[string]int {
	rows := make(map[string]int, len(p.RowName))
	for i, name := range p.RowName {
		rows[name] = i
	}
	return rows
}
