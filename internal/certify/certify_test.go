package certify_test

import (
	"context"
	"testing"
	"time"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/greedy"
	"tvnep/internal/lp"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

func solveOpts() *model.SolveOptions {
	return model.NewSolveOptions(model.WithTimeLimit(30 * time.Second))
}

func smallScenario(t *testing.T) *workload.Scenario {
	t.Helper()
	cfg := workload.Default()
	cfg.NumRequests = 4
	cfg.FlexibilityHr = 2
	return workload.Generate(cfg, 7)
}

// TestKnownGoodFormulations certifies solver outputs of all three exact
// model families on the same scenario (kept tiny: the Δ formulation's
// event grid grows much faster than cΣ's).
func TestKnownGoodFormulations(t *testing.T) {
	cfg := workload.Default()
	cfg.NumRequests = 3
	cfg.FlexibilityHr = 1
	sc := workload.Generate(cfg, 7)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	for _, form := range []core.Formulation{core.CSigma, core.Delta, core.Sigma} {
		b := core.Build(form, inst, core.BuildOptions{
			Objective:    core.AccessControl,
			FixedMapping: sc.Mapping,
		})
		sol, ms := b.Solve(context.Background(), solveOpts())
		if sol == nil {
			t.Fatalf("%v: no solution (status %v)", form, ms.Status)
		}
		rep := certify.Solution(inst, sol, certify.Options{
			Objective: core.AccessControl,
			Mapping:   sc.Mapping,
		})
		if err := rep.Err(); err != nil {
			t.Errorf("%v: known-good solution rejected: %v", form, err)
		}
	}
}

// TestKnownGoodObjectives certifies cΣ solutions under every Section IV-E
// objective, including the recomputation direction rules. Fixed-set
// objectives force every request to be embedded, so — as in the eval
// pipeline — the instance is first restricted to an admission-controlled
// accepted set.
func TestKnownGoodObjectives(t *testing.T) {
	sc := smallScenario(t)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}

	pre := core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.AccessControl,
		FixedMapping: sc.Mapping,
	})
	preSol, ms := pre.Solve(context.Background(), solveOpts())
	if preSol == nil {
		t.Fatalf("admission solve failed (status %v)", ms.Status)
	}
	rep := certify.Solution(inst, preSol, certify.Options{
		Objective: core.AccessControl,
		Mapping:   sc.Mapping,
	})
	if err := rep.Err(); err != nil {
		t.Errorf("access-control: known-good solution rejected: %v", err)
	}

	var reqs []*vnet.Request
	var subMap vnet.NodeMapping
	for r, acc := range preSol.Accepted {
		if acc {
			reqs = append(reqs, inst.Reqs[r])
			subMap = append(subMap, sc.Mapping[r])
		}
	}
	if len(reqs) == 0 {
		t.Fatal("admission control accepted no requests")
	}
	fixed := &core.Instance{Sub: sc.Substrate, Reqs: reqs, Horizon: sc.Horizon}
	for _, obj := range []core.Objective{
		core.MaxEarliness, core.BalanceNodeLoad, core.DisableLinks, core.MinMakespan,
	} {
		b := core.BuildCSigma(fixed, core.BuildOptions{
			Objective:    obj,
			FixedMapping: subMap,
		})
		sol, ms := b.Solve(context.Background(), solveOpts())
		if sol == nil {
			t.Fatalf("%v: no solution (status %v)", obj, ms.Status)
		}
		rep := certify.Solution(fixed, sol, certify.Options{
			Objective: obj,
			Mapping:   subMap,
		})
		if err := rep.Err(); err != nil {
			t.Errorf("%v: known-good solution rejected: %v", obj, err)
		}
	}
}

// TestKnownGoodGreedy certifies the greedy algorithm's final solution.
func TestKnownGoodGreedy(t *testing.T) {
	sc := smallScenario(t)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	sol, _, err := greedy.Solve(context.Background(), inst, sc.Mapping, core.BuildOptions{}, solveOpts())
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	rep := certify.Solution(inst, sol, certify.Options{
		Objective: core.AccessControl,
		Mapping:   sc.Mapping,
	})
	if err := rep.Err(); err != nil {
		t.Errorf("greedy known-good solution rejected: %v", err)
	}
}

// tinyInstance is a deterministic 2-node substrate with one chain request
// whose unique embedding routes one unit over the 0→1 link.
func tinyInstance(t *testing.T, nodeCap, linkCap float64, numReqs int) (*core.Instance, *solution.Solution, int) {
	t.Helper()
	sub := substrate.Grid(1, 2, nodeCap, linkCap)
	e01 := -1
	for e := 0; e < sub.NumLinks(); e++ {
		u, v := sub.G.Edge(e)
		if u == 0 && v == 1 {
			e01 = e
		}
	}
	if e01 < 0 {
		t.Fatal("grid substrate has no 0→1 link")
	}
	var reqs []*vnet.Request
	for i := 0; i < numReqs; i++ {
		r := vnet.Chain("A", 2, 1, 1)
		r.Duration = 1
		r.Earliest = 0
		r.Latest = 2
		reqs = append(reqs, r)
	}
	inst := &core.Instance{Sub: sub, Reqs: reqs, Horizon: 3}
	sol := &solution.Solution{
		Accepted: make([]bool, numReqs),
		Start:    make([]float64, numReqs),
		End:      make([]float64, numReqs),
		Hosts:    make([][]int, numReqs),
		Flows:    make([][][]float64, numReqs),
	}
	for i := 0; i < numReqs; i++ {
		sol.Accepted[i] = true
		sol.Start[i] = 0
		sol.End[i] = 1
		sol.Hosts[i] = []int{0, 1}
		flow := make([]float64, sub.NumLinks())
		flow[e01] = 1
		sol.Flows[i] = [][]float64{flow}
		sol.Objective += 2 // d·Σc = 1·(1+1) per accepted request
	}
	return inst, sol, e01
}

// TestMutationsRejected verifies that every corruption of a known-good
// solution is rejected with its precise named violation.
func TestMutationsRejected(t *testing.T) {
	base := func() (*core.Instance, *solution.Solution, int) {
		return tinyInstance(t, 10, 10, 1)
	}
	opts := certify.Options{Objective: core.AccessControl}

	t.Run("baseline-accepted", func(t *testing.T) {
		inst, sol, _ := base()
		if err := certify.Solution(inst, sol, opts).Err(); err != nil {
			t.Fatalf("baseline must certify: %v", err)
		}
	})
	t.Run("window", func(t *testing.T) {
		inst, sol, _ := base()
		sol.Start[0], sol.End[0] = 1.5, 2.5 // ends after latest=2
		rep := certify.Solution(inst, sol, opts)
		if !rep.Has(certify.Window) {
			t.Fatalf("want %v, got %v", certify.Window, rep.Violations)
		}
	})
	t.Run("duration", func(t *testing.T) {
		inst, sol, _ := base()
		sol.End[0] = 1.7 // duration 1.7 != 1
		rep := certify.Solution(inst, sol, opts)
		if !rep.Has(certify.Duration) {
			t.Fatalf("want %v, got %v", certify.Duration, rep.Violations)
		}
	})
	t.Run("flow-conservation", func(t *testing.T) {
		inst, sol, e01 := base()
		sol.Flows[0][0][e01] = 0.25 // ships only a quarter unit
		rep := certify.Solution(inst, sol, opts)
		if !rep.Has(certify.FlowConservation) {
			t.Fatalf("want %v, got %v", certify.FlowConservation, rep.Violations)
		}
	})
	t.Run("flow-range", func(t *testing.T) {
		inst, sol, e01 := base()
		sol.Flows[0][0][e01] = 1.4
		rep := certify.Solution(inst, sol, opts)
		if !rep.Has(certify.FlowRange) {
			t.Fatalf("want %v, got %v", certify.FlowRange, rep.Violations)
		}
	})
	t.Run("host-range", func(t *testing.T) {
		inst, sol, _ := base()
		sol.Hosts[0][1] = 9
		rep := certify.Solution(inst, sol, opts)
		if !rep.Has(certify.HostRange) {
			t.Fatalf("want %v, got %v", certify.HostRange, rep.Violations)
		}
	})
	t.Run("mapping-pinned", func(t *testing.T) {
		inst, sol, _ := base()
		pinned := opts
		pinned.Mapping = vnet.NodeMapping{{1, 0}} // solution uses {0,1}
		rep := certify.Solution(inst, sol, pinned)
		if !rep.Has(certify.MappingPinned) {
			t.Fatalf("want %v, got %v", certify.MappingPinned, rep.Violations)
		}
	})
	t.Run("node-capacity", func(t *testing.T) {
		// Two overlapping unit-demand requests on a 1.5-capacity node.
		inst, sol, _ := tinyInstance(t, 1.5, 10, 2)
		rep := certify.Solution(inst, sol, opts)
		if !rep.Has(certify.NodeCapacity) {
			t.Fatalf("want %v, got %v", certify.NodeCapacity, rep.Violations)
		}
	})
	t.Run("link-capacity", func(t *testing.T) {
		// Two overlapping unit-demand flows on a 1.5-capacity link.
		inst, sol, _ := tinyInstance(t, 10, 1.5, 2)
		rep := certify.Solution(inst, sol, opts)
		if !rep.Has(certify.LinkCapacity) {
			t.Fatalf("want %v, got %v", certify.LinkCapacity, rep.Violations)
		}
	})
	t.Run("staggered-requests-fit", func(t *testing.T) {
		// The same two requests certify once they do not overlap.
		inst, sol, _ := tinyInstance(t, 1.5, 1.5, 2)
		sol.Start[1], sol.End[1] = 1, 2
		if err := certify.Solution(inst, sol, opts).Err(); err != nil {
			t.Fatalf("staggered solution must certify: %v", err)
		}
	})
	t.Run("objective-mismatch", func(t *testing.T) {
		inst, sol, _ := base()
		sol.Objective += 5
		rep := certify.Solution(inst, sol, opts)
		if !rep.Has(certify.Objective) {
			t.Fatalf("want %v, got %v", certify.Objective, rep.Violations)
		}
	})
	t.Run("shape", func(t *testing.T) {
		inst, sol, _ := base()
		sol.Start = sol.Start[:0]
		rep := certify.Solution(inst, sol, opts)
		if !rep.Has(certify.Shape) {
			t.Fatalf("want %v, got %v", certify.Shape, rep.Violations)
		}
	})
}

// smallLP builds max 3x+2y s.t. x+y ≤ 4, x ∈ [0,2], y ∈ [0,3]
// (optimum x=2, y=2, objective 10).
func smallLP() *lp.Problem {
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	x := p.AddCol(3, 0, 2, "x")
	y := p.AddCol(2, 0, 3, "y")
	p.AddLE([]int32{int32(x), int32(y)}, []float64{1, 1}, 4, "cap")
	return p
}

// TestLPCertificateKnownGood certifies honest LP results, including one
// routed through presolve/postsolve and a real model root relaxation.
func TestLPCertificateKnownGood(t *testing.T) {
	p := smallLP()
	res := lp.Solve(p, nil)
	if res.Status != lp.StatusOptimal {
		t.Fatalf("solve: %v", res.Status)
	}
	cert := certify.LP(p, res, 0)
	if err := cert.Err(); err != nil {
		t.Fatalf("known-good LP rejected: %v", err)
	}
	if cert.PrimalResidual > certify.DefaultLPTol || cert.DualityGap > certify.DefaultLPTol {
		t.Fatalf("residuals too large: primal %v gap %v", cert.PrimalResidual, cert.DualityGap)
	}

	// Root relaxation of a real model (exercises dual recovery through the
	// model-level presolve path).
	sc := smallScenario(t)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	b := core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.AccessControl,
		FixedMapping: sc.Mapping,
	})
	lpp := b.Model.LP()
	rres := lp.Solve(lpp, nil)
	if rres.Status != lp.StatusOptimal {
		t.Fatalf("root LP: %v", rres.Status)
	}
	rcert := certify.LP(lpp, rres, 0)
	if err := rcert.Err(); err != nil {
		t.Fatalf("root LP certificate rejected: %v", err)
	}
}

// TestLPCertificateMutations corrupts optimal LP results and checks each
// corruption is caught by the matching certificate condition.
func TestLPCertificateMutations(t *testing.T) {
	p := smallLP()
	res := lp.Solve(p, nil)
	if res.Status != lp.StatusOptimal {
		t.Fatalf("solve: %v", res.Status)
	}
	clone := func() lp.Result {
		c := res
		c.X = append([]float64(nil), res.X...)
		c.Duals = append([]float64(nil), res.Duals...)
		return c
	}
	t.Run("row-residual", func(t *testing.T) {
		r := clone()
		r.X[1] += 0.5 // activity 4.5 > 4
		cert := certify.LP(p, r, 0)
		if !cert.Has(certify.LPRowResidual) {
			t.Fatalf("want %v, got %v", certify.LPRowResidual, cert.Violations)
		}
	})
	t.Run("bound", func(t *testing.T) {
		r := clone()
		r.X[0] = 2.5 // above ub 2
		cert := certify.LP(p, r, 0)
		if !cert.Has(certify.LPBound) {
			t.Fatalf("want %v, got %v", certify.LPBound, cert.Violations)
		}
	})
	t.Run("dual-sign", func(t *testing.T) {
		r := clone()
		r.Duals[0] = -r.Duals[0] - 1
		cert := certify.LP(p, r, 0)
		if !cert.Has(certify.LPDualSign) && !cert.Has(certify.LPDualityGap) {
			t.Fatalf("want dual violation, got %v", cert.Violations)
		}
	})
	t.Run("objective", func(t *testing.T) {
		r := clone()
		r.Obj += 1
		cert := certify.LP(p, r, 0)
		if !cert.Has(certify.LPObjective) {
			t.Fatalf("want %v, got %v", certify.LPObjective, cert.Violations)
		}
	})
	t.Run("non-optimal-status", func(t *testing.T) {
		r := clone()
		r.Status = lp.StatusIterLimit
		cert := certify.LP(p, r, 0)
		if !cert.Has(certify.LPStatus) {
			t.Fatalf("want %v, got %v", certify.LPStatus, cert.Violations)
		}
	})
}
