package certify

import (
	"math"

	"tvnep/internal/lp"
	"tvnep/internal/numtol"
)

// LP-certificate violation classes.
const (
	// LPStatus: the result does not claim optimality, so no certificate
	// can be checked.
	LPStatus Kind = "lp-status"
	// LPRowResidual: a row activity violates its range (‖Ax−b‖∞ test).
	LPRowResidual Kind = "lp-row-residual"
	// LPBound: a column value violates its bounds.
	LPBound Kind = "lp-bound"
	// LPDualSign: a reduced cost or row dual has the wrong sign for the
	// at-bound status of its column/row (dual infeasibility).
	LPDualSign Kind = "lp-dual-sign"
	// LPDualityGap: the primal and dual objective values disagree beyond
	// tolerance (complementary slackness fails somewhere).
	LPDualityGap Kind = "lp-duality-gap"
	// LPObjective: the reported objective disagrees with c·x + offset.
	LPObjective Kind = "lp-objective"
)

// DefaultLPTol is the acceptance tolerance of the LP certificate. It is
// deliberately looser than the solver's own numtol.LPFeasTol: the
// certificate checks postsolved quantities whose residuals accumulate
// across presolve reconstruction, and its job is to catch wrong answers,
// not to re-litigate the last two ulps of a correct one.
const DefaultLPTol = 100 * numtol.LPFeasTol

// LPCertificate is the outcome of re-verifying an lp.Result against its
// problem: max-norm residuals of each optimality condition plus the named
// violations for any that exceed tolerance.
type LPCertificate struct {
	Report
	// PrimalResidual is the max row-range violation ‖Ax−b‖∞ (for ranged
	// rows, distance outside [rlb, rub]).
	PrimalResidual float64
	// BoundResidual is the max column-bound violation.
	BoundResidual float64
	// DualResidual is the max dual-feasibility (sign) violation over
	// reduced costs and row duals.
	DualResidual float64
	// DualityGap is the relative gap |c·x − dual objective| / (1+|c·x|).
	DualityGap float64
}

// LP checks the optimality certificate of res for problem p: primal
// feasibility (row ranges, column bounds), dual feasibility (reduced-cost
// and row-dual signs against at-bound status) and strong duality (primal
// and dual objectives agree). All algebra runs in the minimization
// convention; maximization problems are negated on entry. tol ≤ 0 selects
// DefaultLPTol.
func LP(p *lp.Problem, res lp.Result, tol float64) *LPCertificate {
	cert := &LPCertificate{}
	if tol <= 0 {
		tol = DefaultLPTol
	}
	if res.Status != lp.StatusOptimal {
		cert.addf(LPStatus, -1, "status %v: nothing to certify", res.Status)
		return cert
	}
	n, m := p.NumCols(), p.NumRows()
	if len(res.X) != n || len(res.Duals) != m {
		cert.addf(LPStatus, -1, "result dimensions (%d cols, %d duals) do not match problem (%d, %d)",
			len(res.X), len(res.Duals), n, m)
		return cert
	}
	negate := p.Sense == lp.Maximize
	cmin := make([]float64, n)
	for j := 0; j < n; j++ {
		if negate {
			cmin[j] = -p.Obj[j]
		} else {
			cmin[j] = p.Obj[j]
		}
	}
	ymin := make([]float64, m)
	for i := 0; i < m; i++ {
		if negate {
			ymin[i] = -res.Duals[i]
		} else {
			ymin[i] = res.Duals[i]
		}
	}

	// Row activities, primal residual, and yᵀA accumulated per column.
	act := make([]float64, m)
	yA := make([]float64, n)
	for i := 0; i < m; i++ {
		idx, val := p.Row(i)
		a := 0.0
		for k, j := range idx {
			a += val[k] * res.X[j]
			yA[j] += ymin[i] * val[k]
		}
		act[i] = a
		if r := math.Max(p.RowLB[i]-a, a-p.RowUB[i]); r > cert.PrimalResidual {
			cert.PrimalResidual = r
		}
		if math.Max(p.RowLB[i]-a, a-p.RowUB[i]) > tol*(1+math.Abs(a)) {
			cert.addf(LPRowResidual, -1, "row %q: activity %v outside [%v, %v]", p.RowName[i], a, p.RowLB[i], p.RowUB[i])
		}
	}

	// Column bounds.
	for j := 0; j < n; j++ {
		x := res.X[j]
		if r := math.Max(p.ColLB[j]-x, x-p.ColUB[j]); r > cert.BoundResidual {
			cert.BoundResidual = r
		}
		if math.Max(p.ColLB[j]-x, x-p.ColUB[j]) > tol*(1+math.Abs(x)) {
			cert.addf(LPBound, -1, "column %q: value %v outside [%v, %v]", p.ColName[j], x, p.ColLB[j], p.ColUB[j])
		}
	}

	// Dual feasibility of reduced costs d = c − Aᵀy against each column's
	// at-bound status: at lower → d ≥ 0, at upper → d ≤ 0, interior → d = 0
	// (all modulo tol). Fixed columns impose no sign.
	d := make([]float64, n)
	for j := 0; j < n; j++ {
		d[j] = cmin[j] - yA[j]
		lb, ub := p.ColLB[j], p.ColUB[j]
		if ub-lb <= numtol.AtBoundTol*(1+math.Abs(lb)) {
			continue
		}
		x := res.X[j]
		atLB := !math.IsInf(lb, -1) && x-lb <= numtol.AtBoundTol*(1+math.Abs(lb))
		atUB := !math.IsInf(ub, 1) && ub-x <= numtol.AtBoundTol*(1+math.Abs(ub))
		viol := dualSignViolation(d[j], atLB, atUB)
		if viol > cert.DualResidual {
			cert.DualResidual = viol
		}
		if viol > tol*(1+math.Abs(cmin[j])) {
			cert.addf(LPDualSign, -1, "column %q: reduced cost %v inconsistent with at-bound status (atLB=%v atUB=%v)",
				p.ColName[j], d[j], atLB, atUB)
		}
	}
	// Row duals against the activity's at-bound status. The slack of row i
	// carries reduced cost y_i in the expanded system, so the same sign
	// rules apply with the range [rlb, rub] as its bounds.
	for i := 0; i < m; i++ {
		rlb, rub := p.RowLB[i], p.RowUB[i]
		if rub-rlb <= numtol.AtBoundTol*(1+math.Abs(rlb)) {
			continue
		}
		atLB := !math.IsInf(rlb, -1) && act[i]-rlb <= numtol.AtBoundTol*(1+math.Abs(rlb))
		atUB := !math.IsInf(rub, 1) && rub-act[i] <= numtol.AtBoundTol*(1+math.Abs(rub))
		viol := dualSignViolation(ymin[i], atLB, atUB)
		if viol > cert.DualResidual {
			cert.DualResidual = viol
		}
		if viol > tol*(1+math.Abs(ymin[i])) {
			cert.addf(LPDualSign, -1, "row %q: dual %v inconsistent with at-bound status (atLB=%v atUB=%v)",
				p.RowName[i], ymin[i], atLB, atUB)
		}
	}

	// Strong duality: evaluate the dual objective by charging each dual
	// multiplier to the bound its sign selects (complementary slackness
	// pairs each positive multiplier with an active lower bound and each
	// negative one with an active upper bound; a multiplier that selects an
	// infinite bound was already reported as a sign violation, so the
	// activity stands in to keep the gap finite).
	primal := 0.0
	for j := 0; j < n; j++ {
		primal += cmin[j] * res.X[j]
	}
	dual := 0.0
	for i := 0; i < m; i++ {
		dual += ymin[i] * chooseBound(ymin[i], p.RowLB[i], p.RowUB[i], act[i], tol)
	}
	for j := 0; j < n; j++ {
		dual += d[j] * chooseBound(d[j], p.ColLB[j], p.ColUB[j], res.X[j], tol)
	}
	cert.DualityGap = math.Abs(primal-dual) / (1 + math.Abs(primal))
	if cert.DualityGap > tol {
		cert.addf(LPDualityGap, -1, "primal %v vs dual %v (relative gap %v)", primal, dual, cert.DualityGap)
	}

	// Reported objective versus c·x + offset in the original sense.
	obj := p.ObjOffset
	for j := 0; j < n; j++ {
		obj += p.Obj[j] * res.X[j]
	}
	if math.Abs(obj-res.Obj) > tol*(1+math.Abs(obj)) {
		cert.addf(LPObjective, -1, "reported objective %v, recomputed %v", res.Obj, obj)
	}
	return cert
}

// dualSignViolation measures how far a multiplier strays from the sign its
// column/row status requires in the minimization convention.
func dualSignViolation(d float64, atLB, atUB bool) float64 {
	switch {
	case atLB && atUB:
		return 0 // degenerate range: either sign is consistent
	case atLB:
		return math.Max(0, -d)
	case atUB:
		return math.Max(0, d)
	default:
		return math.Abs(d)
	}
}

// chooseBound returns the bound a multiplier's sign charges in the dual
// objective: lower for positive, upper for negative, the current value for
// (numerically) zero or when the selected bound is infinite.
func chooseBound(mult, lb, ub, cur float64, tol float64) float64 {
	switch {
	case mult > tol && !math.IsInf(lb, -1):
		return lb
	case mult < -tol && !math.IsInf(ub, 1):
		return ub
	default:
		return cur
	}
}
