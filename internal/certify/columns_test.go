package certify

import (
	"context"
	"testing"

	"tvnep/internal/core"
	"tvnep/internal/graph"
	"tvnep/internal/model"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// diamondPathSolve builds and solves the minimal column-generation instance:
// two requests each embedding one virtual link from substrate node 0 to node
// 3 over a diamond with unit link capacities, so both BFS seeds collide on
// 0→1→3 and the pricer must open the alternate route.
func diamondPathSolve(t *testing.T, obj core.Objective) (*core.Built, *model.Solution) {
	t.Helper()
	g := graph.NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	sub := substrate.New(g, 4, 1)
	req := func(name string) *vnet.Request {
		rg := graph.NewDigraph(2)
		rg.AddEdge(0, 1)
		return &vnet.Request{
			Name: name, G: rg,
			NodeDemand: []float64{0.5, 0.5}, LinkDemand: []float64{1},
			Earliest: 0, Duration: 2, Latest: 2,
		}
	}
	inst := &core.Instance{Sub: sub, Reqs: []*vnet.Request{req("a"), req("b")}, Horizon: 2}
	b := core.BuildCSigma(inst, core.BuildOptions{
		Objective:    obj,
		FixedMapping: vnet.NodeMapping{{0, 3}, {0, 3}},
		FlowMode:     core.FlowPath,
	})
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal || sol == nil {
		t.Fatalf("diamond solve (%v): status %v", obj, ms.Status)
	}
	if len(ms.AppliedColumns) == 0 {
		t.Fatalf("diamond solve (%v) applied no columns; the fixture no longer exercises pricing", obj)
	}
	return b, ms
}

func TestColumnsCertificateKnownGood(t *testing.T) {
	for _, obj := range []core.Objective{core.AccessControl, core.DisableLinks} {
		b, ms := diamondPathSolve(t, obj)
		if rep := Columns(b, ms); !rep.OK() {
			t.Fatalf("%v: known-good priced columns rejected: %v", obj, rep.Err())
		}
	}
}

func TestColumnsCertificateTrivialPass(t *testing.T) {
	if rep := Columns(nil, nil); !rep.OK() {
		t.Fatalf("nil solution should pass trivially: %v", rep.Err())
	}
}

// mutateColumns deep-copies the applied-column list so a mutation cannot leak
// between subtests, applies f to the copy, and certifies.
func mutateColumns(b *core.Built, ms *model.Solution, f func(cols []model.Column)) *Report {
	mutated := *ms
	mutated.AppliedColumns = make([]model.Column, len(ms.AppliedColumns))
	for i, c := range ms.AppliedColumns {
		c.Idx = append([]int32(nil), c.Idx...)
		c.Val = append([]float64(nil), c.Val...)
		mutated.AppliedColumns[i] = c
	}
	f(mutated.AppliedColumns)
	return Columns(b, &mutated)
}

func TestColumnsCertificateMutations(t *testing.T) {
	b, ms := diamondPathSolve(t, core.AccessControl)
	cases := []struct {
		name   string
		mutate func(cols []model.Column)
		want   Kind
	}{
		{"coef-shifted", func(cols []model.Column) { cols[0].Val[0] += 0.5 }, ColCoef},
		{"row-dropped", func(cols []model.Column) {
			cols[0].Idx = cols[0].Idx[:len(cols[0].Idx)-1]
			cols[0].Val = cols[0].Val[:len(cols[0].Val)-1]
		}, ColCoef},
		{"length-mismatch", func(cols []model.Column) { cols[0].Idx = cols[0].Idx[:len(cols[0].Idx)-1] }, ColShape},
		{"row-out-of-range", func(cols []model.Column) { cols[0].Idx[0] = 1 << 20 }, ColShape},
		{"bounds-widened", func(cols []model.Column) { cols[0].UB = 2 }, ColShape},
		{"tag-stripped", func(cols []model.Column) { cols[0].Tag = nil }, ColTag},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := mutateColumns(b, ms, tc.mutate)
			if rep.OK() {
				t.Fatal("mutation not detected")
			}
			if !rep.Has(tc.want) {
				t.Fatalf("want a %q violation, got %v", tc.want, rep.Err())
			}
		})
	}
}

// TestColumnsCertificateRejectsBogusPath retags a genuine column with a
// non-contiguous link sequence and expects a path violation.
func TestColumnsCertificateRejectsBogusPath(t *testing.T) {
	b, ms := diamondPathSolve(t, core.AccessControl)
	c := ms.AppliedColumns[0]
	r, lv, links, ok := core.PathTagInfo(c)
	if !ok {
		t.Fatal("applied column carries no path tag")
	}
	// Edges 0 (0→1) and 3 (2→3) do not join: a walk cannot traverse them.
	c.Tag = core.MakePathTag(r, lv, []int{0, 3})
	mutated := *ms
	mutated.AppliedColumns = []model.Column{c}
	rep := Columns(b, &mutated)
	if !rep.Has(ColPath) {
		t.Fatalf("non-contiguous retag %v→[0 3] not flagged: %v", links, rep.Err())
	}
}
