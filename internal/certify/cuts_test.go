package certify

import (
	"context"
	"testing"

	"tvnep/internal/core"
	"tvnep/internal/model"
	"tvnep/internal/workload"
)

// lazySolve builds and solves a generated workload in CutLazy mode. Seed 3
// is pinned because its root LP violates precedence candidates, so the solve
// genuinely appends cuts (see the matching core test).
func lazySolve(t *testing.T) (*core.Built, *model.Solution) {
	t.Helper()
	cfg := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 4, StarLeaves: 1, DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1.5, WeibullShape: 2, WeibullScale: 2, FlexibilityHr: 1.5,
	}
	sc := workload.Generate(cfg, 3)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	b := core.BuildCSigma(inst, core.BuildOptions{
		Objective:    core.AccessControl,
		FixedMapping: sc.Mapping,
		CutMode:      core.CutLazy,
	})
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal || sol == nil {
		t.Fatalf("lazy solve: status %v", ms.Status)
	}
	if len(ms.AppliedCuts) == 0 {
		t.Fatalf("lazy solve applied no cuts; the pinned seed no longer exercises the certificate")
	}
	if rep := Solution(inst, sol, Options{Objective: core.AccessControl, Mapping: sc.Mapping}); !rep.OK() {
		t.Fatalf("incumbent fails the solution certificate: %v", rep.Err())
	}
	return b, ms
}

func TestCutsCertificateAccepts(t *testing.T) {
	b, ms := lazySolve(t)
	if rep := Cuts(b, ms); !rep.OK() {
		t.Fatalf("cut certificate rejected a clean lazy solve: %v", rep.Err())
	}
}

func TestCutsCertificateTrivialCases(t *testing.T) {
	b, ms := lazySolve(t)
	if rep := Cuts(b, nil); !rep.OK() {
		t.Fatalf("nil solution must pass trivially: %v", rep.Err())
	}
	empty := *ms
	empty.AppliedCuts = nil
	if rep := Cuts(b, &empty); !rep.OK() {
		t.Fatalf("solve without applied cuts must pass trivially: %v", rep.Err())
	}
}

// Mutation tests: each corruption of the applied-cut list must surface as
// exactly the named violation class.
func TestCutsCertificateMutations(t *testing.T) {
	b, ms := lazySolve(t)
	base := ms.AppliedCuts

	mutate := func(cuts []model.Cut) *model.Solution {
		m := *ms
		m.AppliedCuts = cuts
		return &m
	}
	clone := func(c model.Cut) model.Cut {
		c.Idx = append([]int32(nil), c.Idx...)
		c.Val = append([]float64(nil), c.Val...)
		return c
	}

	t.Run("foreign row", func(t *testing.T) {
		c := clone(base[0])
		c.Val[0] *= 2 // no family member scales a χ prefix coefficient
		c.Name = "forged"
		rep := Cuts(b, mutate(append(append([]model.Cut(nil), base...), c)))
		if !rep.Has(CutUnknown) {
			t.Fatalf("forged row not flagged: %v", rep.Violations)
		}
	})
	t.Run("renamed row", func(t *testing.T) {
		c := clone(base[0])
		c.Name = "prec[0][0][0]"
		rep := Cuts(b, mutate([]model.Cut{c}))
		if !rep.Has(CutUnknown) {
			t.Fatalf("renamed row not flagged: %v", rep.Violations)
		}
	})
	t.Run("excludes feasible", func(t *testing.T) {
		// Tighten the bound strictly below the incumbent's activity: the row
		// then cuts off the certified-feasible solution by construction.
		c := clone(base[0])
		x := ms.X()
		act := 0.0
		for k, j := range c.Idx {
			act += c.Val[k] * x[j]
		}
		c.UB = act - 0.5
		rep := Cuts(b, mutate([]model.Cut{c}))
		if !rep.Has(CutExcludesFeasible) {
			t.Fatalf("infeasible-making row not flagged: %v", rep.Violations)
		}
		if !rep.Has(CutUnknown) {
			t.Fatalf("tightened bound should also leave the family: %v", rep.Violations)
		}
	})
	t.Run("column out of range", func(t *testing.T) {
		c := clone(base[0])
		c.Idx[0] = int32(b.Model.NumVars())
		rep := Cuts(b, mutate([]model.Cut{c}))
		if !rep.Has(CutShape) {
			t.Fatalf("out-of-range column not flagged: %v", rep.Violations)
		}
	})
	t.Run("length mismatch", func(t *testing.T) {
		c := clone(base[0])
		c.Val = c.Val[:len(c.Val)-1]
		rep := Cuts(b, mutate([]model.Cut{c}))
		if !rep.Has(CutShape) {
			t.Fatalf("length mismatch not flagged: %v", rep.Violations)
		}
	})
	t.Run("permuted terms still accepted", func(t *testing.T) {
		c := clone(base[0])
		if len(c.Idx) < 2 {
			t.Skip("row too short to permute")
		}
		last := len(c.Idx) - 1
		c.Idx[0], c.Idx[last] = c.Idx[last], c.Idx[0]
		c.Val[0], c.Val[last] = c.Val[last], c.Val[0]
		rep := Cuts(b, mutate([]model.Cut{c}))
		if !rep.OK() {
			t.Fatalf("canonicalization must accept permuted terms: %v", rep.Err())
		}
	})
	t.Run("wrong bound kind", func(t *testing.T) {
		c := clone(base[0])
		c.LB = 0 // family rows are one-sided ≤ rows
		rep := Cuts(b, mutate([]model.Cut{c}))
		if !rep.Has(CutUnknown) {
			t.Fatalf("two-sided row not flagged: %v", rep.Violations)
		}
	})
}
