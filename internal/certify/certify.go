// Package certify is the independent correctness gate of this repository:
// it re-verifies solver outputs against the original problem data, written
// deliberately against the problem statement (Definition 2.1 and the
// Section IV-E objectives) rather than against any MIP formulation, so a
// bug shared by a model builder and its extractor cannot hide from it.
//
// Two certificates are provided: Solution re-checks a solution.Solution
// (windows, durations, splittable-flow conservation, node/link capacity at
// every event interval, pinned mappings, and a full objective
// recomputation), and LP (lpcert.go) re-checks an lp.Result against its
// lp.Problem (primal residuals, bound feasibility, dual feasibility and
// complementary slackness). Every failure is reported as a named Violation
// so tests and CI logs can assert on the exact defect class.
package certify

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tvnep/internal/core"
	"tvnep/internal/numtol"
	"tvnep/internal/solution"
	"tvnep/internal/vnet"
)

// Kind names one class of certificate violation.
type Kind string

// Solution-certificate violation classes.
const (
	// Shape: solution slices do not match the instance dimensions.
	Shape Kind = "shape"
	// Window: a request is scheduled outside [t^s, t^e].
	Window Kind = "window"
	// Duration: end − start differs from the request duration.
	Duration Kind = "duration"
	// HostRange: a virtual node is hosted on a nonexistent substrate node.
	HostRange Kind = "host-range"
	// MappingPinned: a host differs from the a-priori fixed node mapping.
	MappingPinned Kind = "mapping-pinned"
	// FlowRange: a splittable-flow fraction lies outside [0,1].
	FlowRange Kind = "flow-range"
	// FlowConservation: a virtual link's flow does not ship one unit from
	// its source host to its destination host.
	FlowConservation Kind = "flow-conservation"
	// NodeCapacity: a substrate node is overbooked in some event interval.
	NodeCapacity Kind = "node-capacity"
	// LinkCapacity: a substrate link is overbooked in some event interval.
	LinkCapacity Kind = "link-capacity"
	// Objective: the reported objective disagrees with the value recomputed
	// from the solution.
	Objective Kind = "objective-mismatch"
)

// Violation is one named certificate failure.
type Violation struct {
	Kind    Kind
	Request int // request index, or -1 when instance-scoped
	Detail  string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	if v.Request >= 0 {
		return fmt.Sprintf("%s[req %d]: %s", v.Kind, v.Request, v.Detail)
	}
	return fmt.Sprintf("%s: %s", v.Kind, v.Detail)
}

// Report collects every violation found by a certificate check.
type Report struct {
	Violations []Violation
	// RecomputedObjective is the objective value derived from the solution
	// data alone (meaningful for Solution reports).
	RecomputedObjective float64
}

// OK reports whether the certificate holds.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil when the certificate holds and an error naming every
// violation otherwise.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	msgs := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		msgs[i] = v.String()
	}
	return fmt.Errorf("certify: %d violation(s):\n  %s", len(r.Violations), strings.Join(msgs, "\n  "))
}

// Has reports whether the report contains a violation of the given kind.
func (r *Report) Has(k Kind) bool {
	for _, v := range r.Violations {
		if v.Kind == k {
			return true
		}
	}
	return false
}

func (r *Report) addf(k Kind, req int, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{Kind: k, Request: req, Detail: fmt.Sprintf(format, args...)})
}

// Options configures a Solution certificate.
type Options struct {
	// Objective selects which Section IV-E objective to recompute.
	Objective core.Objective
	// LoadFraction is f for BalanceNodeLoad; outside (0,1) the builders'
	// default of 0.5 applies.
	LoadFraction float64
	// Mapping, when non-nil, asserts that every accepted request uses
	// exactly the pinned virtual-node placement.
	Mapping vnet.NodeMapping
	// SkipObjective disables the objective recomputation (for solutions
	// produced under a custom objective, e.g. single greedy iterations).
	SkipObjective bool
}

func (o Options) loadFraction() float64 {
	if o.LoadFraction <= 0 || o.LoadFraction >= 1 {
		return 0.5
	}
	return o.LoadFraction
}

// Solution re-verifies sol against the instance and returns a report of
// every violation found (never stopping at the first, so a single run
// pins down all defects).
func Solution(inst *core.Instance, sol *solution.Solution, opts Options) *Report {
	rep := &Report{}
	k := len(inst.Reqs)
	if sol == nil {
		rep.addf(Shape, -1, "nil solution")
		return rep
	}
	if len(sol.Accepted) != k || len(sol.Start) != k || len(sol.End) != k {
		rep.addf(Shape, -1, "slice lengths (%d,%d,%d) do not match %d requests",
			len(sol.Accepted), len(sol.Start), len(sol.End), k)
		return rep
	}
	for r, req := range inst.Reqs {
		checkTemporal(rep, req, sol, r)
		if sol.Accepted[r] {
			checkEmbedding(rep, inst, sol, r, opts.Mapping)
		}
	}
	checkCapacities(rep, inst, sol)
	if !opts.SkipObjective {
		checkObjective(rep, inst, sol, opts)
	}
	return rep
}

func checkTemporal(rep *Report, req *vnet.Request, sol *solution.Solution, r int) {
	st, en := sol.Start[r], sol.End[r]
	if math.Abs((en-st)-req.Duration) > numtol.TimeTol {
		rep.addf(Duration, r, "scheduled duration %v != d=%v", en-st, req.Duration)
	}
	if st < req.Earliest-numtol.TimeTol {
		rep.addf(Window, r, "starts at %v before earliest %v", st, req.Earliest)
	}
	if en > req.Latest+numtol.TimeTol {
		rep.addf(Window, r, "ends at %v after latest %v", en, req.Latest)
	}
}

func checkEmbedding(rep *Report, inst *core.Instance, sol *solution.Solution, r int, mapping vnet.NodeMapping) {
	sub, req := inst.Sub, inst.Reqs[r]
	if len(sol.Hosts) <= r || len(sol.Hosts[r]) != req.G.N {
		rep.addf(Shape, r, "missing host assignment")
		return
	}
	for v, host := range sol.Hosts[r] {
		if host < 0 || host >= sub.NumNodes() {
			rep.addf(HostRange, r, "virtual node %d hosted on invalid substrate node %d", v, host)
			return
		}
		if mapping != nil && r < len(mapping) && mapping[r] != nil && mapping[r][v] != host {
			rep.addf(MappingPinned, r, "virtual node %d hosted on %d, pinned to %d", v, host, mapping[r][v])
		}
	}
	if len(sol.Flows) <= r || len(sol.Flows[r]) != req.G.NumEdges() {
		rep.addf(Shape, r, "missing flow assignment")
		return
	}
	for lv := 0; lv < req.G.NumEdges(); lv++ {
		u, v := req.G.Edge(lv)
		flow := sol.Flows[r][lv]
		if len(flow) != sub.NumLinks() {
			rep.addf(Shape, r, "virtual link %d: flow over %d substrate links, want %d", lv, len(flow), sub.NumLinks())
			return
		}
		for ls, f := range flow {
			if f < -numtol.FlowTol || f > 1+numtol.FlowTol {
				rep.addf(FlowRange, r, "virtual link %d: flow %v on substrate link %d outside [0,1]", lv, f, ls)
			}
		}
		src, dst := sol.Hosts[r][u], sol.Hosts[r][v]
		for ns := 0; ns < sub.NumNodes(); ns++ {
			bal := 0.0
			for _, e := range sub.G.Out(ns) {
				bal += flow[e]
			}
			for _, e := range sub.G.In(ns) {
				bal -= flow[e]
			}
			want := 0.0
			if ns == src {
				want++
			}
			if ns == dst {
				want--
			}
			if math.Abs(bal-want) > numtol.FlowTol {
				rep.addf(FlowConservation, r, "virtual link %d: balance %v at substrate node %d, want %v", lv, bal, ns, want)
			}
		}
	}
}

// checkCapacities sweeps the open intervals between consecutive event
// times and verifies Definition 2.1's allocation condition at an interior
// point of each.
func checkCapacities(rep *Report, inst *core.Instance, sol *solution.Solution) {
	var events []float64
	for r := range inst.Reqs {
		if sol.Accepted[r] {
			events = append(events, sol.Start[r], sol.End[r])
		}
	}
	sort.Float64s(events)
	for i := 0; i+1 < len(events); i++ {
		if events[i+1]-events[i] < numtol.EventCoincide {
			continue
		}
		checkInstant(rep, inst, sol, (events[i]+events[i+1])/2)
	}
}

func checkInstant(rep *Report, inst *core.Instance, sol *solution.Solution, t float64) {
	sub := inst.Sub
	nodeLoad := make([]float64, sub.NumNodes())
	linkLoad := make([]float64, sub.NumLinks())
	for r, req := range inst.Reqs {
		if !sol.Accepted[r] || t <= sol.Start[r] || t >= sol.End[r] {
			continue
		}
		if len(sol.Hosts) <= r || len(sol.Hosts[r]) != req.G.N || len(sol.Flows) <= r {
			continue // shape violations are reported by checkEmbedding
		}
		for v, host := range sol.Hosts[r] {
			if host >= 0 && host < sub.NumNodes() {
				nodeLoad[host] += req.NodeDemand[v]
			}
		}
		for lv := 0; lv < req.G.NumEdges() && lv < len(sol.Flows[r]); lv++ {
			for ls, f := range sol.Flows[r][lv] {
				if f > numtol.FlowTol && ls < sub.NumLinks() {
					linkLoad[ls] += req.LinkDemand[lv] * f
				}
			}
		}
	}
	for ns, load := range nodeLoad {
		if load > sub.NodeCap[ns]+numtol.CapTol {
			rep.addf(NodeCapacity, -1, "t=%v: substrate node %d loaded %v > capacity %v", t, ns, load, sub.NodeCap[ns])
		}
	}
	for ls, load := range linkLoad {
		if load > sub.LinkCap[ls]+numtol.CapTol {
			rep.addf(LinkCapacity, -1, "t=%v: substrate link %d loaded %v > capacity %v", t, ls, load, sub.LinkCap[ls])
		}
	}
}

// checkObjective recomputes the selected Section IV-E objective from the
// solution data and compares it with the reported value. AccessControl and
// MaxEarliness admit an exact recomputation; the counting objectives
// (BalanceNodeLoad, DisableLinks) and MinMakespan are verified one-sidedly
// — a solver may under-claim on a non-optimal incumbent (loose counting
// binaries, slack makespan variable) but never over-claim.
func checkObjective(rep *Report, inst *core.Instance, sol *solution.Solution, opts Options) {
	var recomputed float64
	exact := true
	switch opts.Objective {
	case core.AccessControl:
		for r, req := range inst.Reqs {
			if sol.Accepted[r] {
				recomputed += req.Duration * req.TotalNodeDemand()
			}
		}
	case core.MaxEarliness:
		for r, req := range inst.Reqs {
			flex := req.Flexibility()
			if flex <= numtol.EventCoincide {
				recomputed += req.Duration
				continue
			}
			recomputed += req.Duration * (1 - (sol.Start[r]-req.Earliest)/flex)
		}
	case core.BalanceNodeLoad:
		recomputed = float64(countBalancedNodes(inst, sol, opts.loadFraction()))
		exact = false
	case core.DisableLinks:
		recomputed = float64(countDisabledLinks(inst, sol))
		exact = false
	case core.MinMakespan:
		makespan := 0.0
		for r := range inst.Reqs {
			if sol.End[r] > makespan {
				makespan = sol.End[r]
			}
		}
		recomputed = -makespan
		exact = false
	default:
		rep.addf(Objective, -1, "unknown objective %d", int(opts.Objective))
		return
	}
	rep.RecomputedObjective = recomputed
	diff := sol.Objective - recomputed
	scale := 1 + math.Abs(recomputed)
	if exact {
		if math.Abs(diff) > numtol.ObjTol*scale {
			rep.addf(Objective, -1, "reported %v, recomputed %v (objective %v)", sol.Objective, recomputed, opts.Objective)
		}
	} else if diff > numtol.ObjTol*scale {
		rep.addf(Objective, -1, "reported %v exceeds recomputed bound %v (objective %v)", sol.Objective, recomputed, opts.Objective)
	}
}

// countBalancedNodes counts substrate nodes whose load stays within
// fraction f of capacity in every event interval.
func countBalancedNodes(inst *core.Instance, sol *solution.Solution, f float64) int {
	sub := inst.Sub
	ok := make([]bool, sub.NumNodes())
	for i := range ok {
		ok[i] = true
	}
	var events []float64
	for r := range inst.Reqs {
		if sol.Accepted[r] {
			events = append(events, sol.Start[r], sol.End[r])
		}
	}
	sort.Float64s(events)
	for i := 0; i+1 < len(events); i++ {
		if events[i+1]-events[i] < numtol.EventCoincide {
			continue
		}
		t := (events[i] + events[i+1]) / 2
		load := make([]float64, sub.NumNodes())
		for r, req := range inst.Reqs {
			if !sol.Accepted[r] || t <= sol.Start[r] || t >= sol.End[r] {
				continue
			}
			for v, host := range sol.Hosts[r] {
				if host >= 0 && host < sub.NumNodes() {
					load[host] += req.NodeDemand[v]
				}
			}
		}
		for ns := range ok {
			if load[ns] > f*sub.NodeCap[ns]+numtol.CapTol {
				ok[ns] = false
			}
		}
	}
	n := 0
	for _, b := range ok {
		if b {
			n++
		}
	}
	return n
}

// countDisabledLinks counts substrate links carrying no flow from any
// accepted request.
func countDisabledLinks(inst *core.Instance, sol *solution.Solution) int {
	sub := inst.Sub
	used := make([]float64, sub.NumLinks())
	for r, req := range inst.Reqs {
		if !sol.Accepted[r] || len(sol.Flows) <= r {
			continue
		}
		for lv := 0; lv < req.G.NumEdges() && lv < len(sol.Flows[r]); lv++ {
			for ls, f := range sol.Flows[r][lv] {
				if ls < sub.NumLinks() {
					used[ls] += f
				}
			}
		}
	}
	n := 0
	for _, u := range used {
		if u <= numtol.FlowTol {
			n++
		}
	}
	return n
}
