package certify

// Cut certificate: re-verifies every row a lazy cΣ solve appended through
// the separation pipeline (internal/core's precedence separator feeding
// internal/mip's cut pool). The Constraint-(20) family is re-enumerated
// here from the temporal dependency graph — independently of the enumeration
// internal/core shares between static emission and separation — and each
// applied cut must (a) be a member of that family and (b) hold at the
// incumbent. Because the incumbent is separately certified feasible against
// Definition 2.1 by the Solution certificate, a violated applied cut proves
// the pipeline excluded a certified-feasible solution.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"tvnep/internal/core"
	"tvnep/internal/depgraph"
	"tvnep/internal/model"
)

// Cut-certificate violation classes.
const (
	// CutShape: an applied cut row is malformed (length mismatch, column
	// index outside the model).
	CutShape Kind = "cut-shape"
	// CutUnknown: an applied cut is not a member of the Constraint-(20)
	// family derived from the dependency graph.
	CutUnknown Kind = "cut-unknown"
	// CutExcludesFeasible: an applied cut is violated by the incumbent — the
	// separation pipeline cut off a certified-feasible solution.
	CutExcludesFeasible Kind = "cut-excludes-feasible"
)

// cutRowTol bounds the acceptable activity excess of an applied cut at the
// incumbent. Incumbents are LP-tolerance accurate, so this mirrors the
// feasibility slack the solver itself grants rows.
const cutRowTol = 1e-6

// Cuts re-verifies every applied cut of a cΣ solve. A build without applied
// cuts (static or off mode, or lazy with nothing separated) passes trivially.
// The model solution must carry an incumbent; callers certify it with
// Solution first, which is what gives CutExcludesFeasible its meaning.
func Cuts(b *core.Built, ms *model.Solution) *Report {
	rep := &Report{}
	if ms == nil || len(ms.AppliedCuts) == 0 {
		return rep
	}
	if b.Kind != core.CSigma {
		rep.addf(CutUnknown, -1, "applied cuts on a %v build; only cΣ separates cuts", b.Kind)
		return rep
	}
	known := precFamily(b)
	x := ms.X()
	n := b.Model.NumVars()
	for _, c := range ms.AppliedCuts {
		if len(c.Idx) != len(c.Val) || len(c.Idx) == 0 {
			rep.addf(CutShape, -1, "cut %q: %d indices, %d values", c.Name, len(c.Idx), len(c.Val))
			continue
		}
		bad := false
		for _, j := range c.Idx {
			if int(j) < 0 || int(j) >= n {
				rep.addf(CutShape, -1, "cut %q: column %d outside model with %d variables", c.Name, j, n)
				bad = true
			}
		}
		if bad {
			continue
		}
		if name, ok := known[cutRowKey(c.Idx, c.Val, c.LB, c.UB)]; !ok {
			rep.addf(CutUnknown, -1, "cut %q is not in the dependency-graph precedence family", c.Name)
		} else if name != c.Name {
			rep.addf(CutUnknown, -1, "cut %q matches family row %q under a different name", c.Name, name)
		}
		if x == nil {
			continue
		}
		act := 0.0
		for k, j := range c.Idx {
			act += c.Val[k] * x[j]
		}
		if act > c.UB+cutRowTol || act < c.LB-cutRowTol {
			rep.addf(CutExcludesFeasible, -1,
				"cut %q: incumbent activity %v outside [%v, %v]", c.Name, act, c.LB, c.UB)
		}
	}
	return rep
}

// precFamily independently re-enumerates the Constraint-(20) rows from the
// dependency graph: for every positive-distance precedence (V, W, gap) and
// event index i in W's window, Σ_{j≤i} χ_W − Σ_{j≤i−gap} χ_V ≤ 0. Keys are
// canonical row encodings, values the row names core assigns.
func precFamily(b *core.Built) map[string]string {
	dg := depgraph.Build(b.Inst.Reqs)
	fam := make(map[string]string)
	for _, pr := range dg.Precedences() {
		chiV, winV := chiSide(b, dg, pr.V)
		chiW, winW := chiSide(b, dg, pr.W)
		hi := winW.Hi
		if lim := winV.Hi + pr.Gap - 1; lim < hi {
			hi = lim
		}
		for i := winW.Lo; i <= hi; i++ {
			var idx []int32
			var val []float64
			for j := 0; j <= i && j < len(chiW); j++ {
				if chiW[j].Valid() {
					idx = append(idx, int32(chiW[j].Index()))
					val = append(val, 1)
				}
			}
			if len(idx) == 0 {
				continue
			}
			for j := 0; j <= i-pr.Gap && j < len(chiV); j++ {
				if chiV[j].Valid() {
					idx = append(idx, int32(chiV[j].Index()))
					val = append(val, -1)
				}
			}
			name := precName(pr.V, pr.W, i)
			fam[cutRowKey(idx, val, math.Inf(-1), 0)] = name
		}
	}
	return fam
}

// precName mirrors the row naming of internal/core's shared enumeration.
func precName(v, w, i int) string { return fmt.Sprintf("prec[%d][%d][%d]", v, w, i) }

// chiSide selects the χ variable row and event window for one dependency
// node (start or end side of its request).
func chiSide(b *core.Built, dg *depgraph.Graph, node int) ([]model.Var, depgraph.Window) {
	r := depgraph.RequestOf(node)
	if depgraph.IsStartNode(node) {
		return b.ChiPlus[r], dg.StartWindow[r]
	}
	return b.ChiMinus[r], dg.EndWindow[r]
}

// cutRowKey canonicalizes a row (sort by column, merge duplicates, drop
// exact zeros) and encodes it into a collision-free string key, so rows
// compare structurally regardless of term order.
func cutRowKey(idx []int32, val []float64, lb, ub float64) string {
	type term struct {
		col  int32
		coef float64
	}
	terms := make([]term, len(idx))
	for k := range idx {
		terms[k] = term{idx[k], val[k]}
	}
	sort.Slice(terms, func(a, b int) bool { return terms[a].col < terms[b].col })
	merged := terms[:0]
	for _, t := range terms {
		if len(merged) > 0 && merged[len(merged)-1].col == t.col {
			merged[len(merged)-1].coef += t.coef
			continue
		}
		merged = append(merged, t)
	}
	buf := make([]byte, 0, 12*len(merged)+16)
	var w [8]byte
	for _, t := range merged {
		if t.coef == 0 {
			continue
		}
		binary.LittleEndian.PutUint32(w[:4], uint32(t.col))
		buf = append(buf, w[:4]...)
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(t.coef))
		buf = append(buf, w[:]...)
	}
	binary.LittleEndian.PutUint64(w[:], math.Float64bits(lb))
	buf = append(buf, w[:]...)
	binary.LittleEndian.PutUint64(w[:], math.Float64bits(ub))
	buf = append(buf, w[:]...)
	return string(buf)
}
