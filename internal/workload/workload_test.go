package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Default(), 42)
	b := Generate(Default(), 42)
	if len(a.Requests) != len(b.Requests) {
		t.Fatal("nondeterministic request count")
	}
	for i := range a.Requests {
		if a.Requests[i].Earliest != b.Requests[i].Earliest ||
			a.Requests[i].Duration != b.Requests[i].Duration {
			t.Fatalf("request %d differs between identical seeds", i)
		}
		for v := range a.Mapping[i] {
			if a.Mapping[i][v] != b.Mapping[i][v] {
				t.Fatalf("mapping %d differs between identical seeds", i)
			}
		}
	}
}

func TestGenerateDiffersAcrossSeeds(t *testing.T) {
	a := Generate(Default(), 1)
	b := Generate(Default(), 2)
	same := true
	for i := range a.Requests {
		if a.Requests[i].Duration != b.Requests[i].Duration {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical durations")
	}
}

func TestGenerateValidates(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sc := Generate(Default(), seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestPaperScaleShape(t *testing.T) {
	sc := Generate(PaperScale(), 7)
	if sc.Substrate.NumNodes() != 20 || sc.Substrate.NumLinks() != 62 {
		t.Fatalf("substrate %d nodes %d links, want 20, 62", sc.Substrate.NumNodes(), sc.Substrate.NumLinks())
	}
	if len(sc.Requests) != 20 {
		t.Fatalf("%d requests, want 20", len(sc.Requests))
	}
	for _, r := range sc.Requests {
		if r.G.N != 5 {
			t.Fatalf("request %s has %d nodes, want 5", r.Name, r.G.N)
		}
	}
}

func TestFlexibilityApplied(t *testing.T) {
	cfg := Default()
	cfg.FlexibilityHr = 3
	sc := Generate(cfg, 5)
	for _, r := range sc.Requests {
		if math.Abs(r.Flexibility()-3) > 1e-9 {
			t.Fatalf("request %s flexibility %v, want 3", r.Name, r.Flexibility())
		}
	}
}

func TestZeroFlexibility(t *testing.T) {
	sc := Generate(Default(), 5)
	for _, r := range sc.Requests {
		if math.Abs(r.Flexibility()) > 1e-9 {
			t.Fatalf("request %s flexibility %v, want 0", r.Name, r.Flexibility())
		}
	}
}

func TestDemandsInRange(t *testing.T) {
	cfg := Default()
	sc := Generate(cfg, 9)
	for _, r := range sc.Requests {
		for _, d := range r.NodeDemand {
			if d < cfg.DemandLow || d > cfg.DemandHigh {
				t.Fatalf("node demand %v outside [%v,%v]", d, cfg.DemandLow, cfg.DemandHigh)
			}
		}
		for _, d := range r.LinkDemand {
			if d < cfg.DemandLow || d > cfg.DemandHigh {
				t.Fatalf("link demand %v outside [%v,%v]", d, cfg.DemandLow, cfg.DemandHigh)
			}
		}
	}
}

func TestWeibullMoments(t *testing.T) {
	// Weibull(2, 4) has mean 4·Γ(1.5) = 4·(√π/2) ≈ 3.545 (the paper's
	// "approximately 3.5 hours").
	rng := rand.New(rand.NewSource(1))
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Weibull(rng, 2, 4)
	}
	mean := sum / float64(n)
	want := 4 * math.Sqrt(math.Pi) / 2
	if math.Abs(mean-want) > 0.05 {
		t.Fatalf("Weibull(2,4) sample mean %v, want ≈ %v", mean, want)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Exponential(rng, 1.5)
	}
	if mean := sum / float64(n); math.Abs(mean-1.5) > 0.03 {
		t.Fatalf("Exponential(mean 1.5) sample mean %v", mean)
	}
}

func TestArrivalsMonotone(t *testing.T) {
	sc := Generate(Default(), 3)
	for i := 1; i < len(sc.Requests); i++ {
		if sc.Requests[i].Earliest < sc.Requests[i-1].Earliest {
			t.Fatal("arrival times not monotone")
		}
	}
}

// Property: all generated scenarios validate and their horizon covers every
// request window.
func TestQuickScenarioInvariants(t *testing.T) {
	f := func(seed int64, flexRaw uint8) bool {
		cfg := Default()
		cfg.FlexibilityHr = float64(flexRaw%12) / 2
		sc := Generate(cfg, seed)
		if sc.Validate() != nil {
			return false
		}
		for _, r := range sc.Requests {
			if r.Latest > sc.Horizon+1e-9 || r.Duration <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateWANTopology(t *testing.T) {
	cfg := Default()
	cfg.Topology = "wan"
	cfg.WANNodes = 12
	cfg.WANAvgDeg = 4
	for seed := int64(1); seed <= 5; seed++ {
		sc := Generate(cfg, seed)
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sc.Substrate.NumNodes() != 12 {
			t.Fatalf("seed %d: %d PoPs, want 12", seed, sc.Substrate.NumNodes())
		}
	}
	// WAN scenarios round-trip through the JSON wire format: it carries the
	// full edge list and per-link capacities, so nothing grid-specific leaks.
	sc := Generate(cfg, 3)
	data, err := sc.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back.Substrate.NumLinks() != sc.Substrate.NumLinks() {
		t.Fatalf("round trip lost links: %d vs %d", back.Substrate.NumLinks(), sc.Substrate.NumLinks())
	}
	for e := range sc.Substrate.LinkCap {
		if back.Substrate.LinkCap[e] != sc.Substrate.LinkCap[e] {
			t.Fatalf("link %d cap %v after round trip, want %v", e, back.Substrate.LinkCap[e], sc.Substrate.LinkCap[e])
		}
	}
}

func TestGenerateWANDefaults(t *testing.T) {
	cfg := Default() // 3×3 grid dims
	cfg.Topology = "wan"
	sc := Generate(cfg, 1)
	if sc.Substrate.NumNodes() != 9 {
		t.Fatalf("%d PoPs, want GridRows·GridCols = 9 when WANNodes is 0", sc.Substrate.NumNodes())
	}
}

func TestGenerateRejectsUnknownTopology(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown topology not rejected")
		}
	}()
	cfg := Default()
	cfg.Topology = "torus"
	Generate(cfg, 1)
}
