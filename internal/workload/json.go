package workload

import (
	"encoding/json"
	"fmt"

	"tvnep/internal/graph"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// scenarioJSON is the on-disk format used by the cmd/ tools.
type scenarioJSON struct {
	Substrate substrateJSON `json:"substrate"`
	Requests  []RequestJSON `json:"requests"`
	Mapping   [][]int       `json:"mapping,omitempty"`
	Horizon   float64       `json:"horizon"`
	Seed      int64         `json:"seed,omitempty"`
}

type substrateJSON struct {
	Nodes    int       `json:"nodes"`
	Edges    [][2]int  `json:"edges"`
	NodeCaps []float64 `json:"node_caps"`
	LinkCaps []float64 `json:"link_caps"`
}

// RequestJSON is the wire format of one VNet request, shared by the
// scenario files and the admission server's submit endpoint.
type RequestJSON struct {
	Name        string    `json:"name"`
	Nodes       int       `json:"nodes"`
	Edges       [][2]int  `json:"edges"`
	NodeDemands []float64 `json:"node_demands"`
	LinkDemands []float64 `json:"link_demands"`
	Duration    float64   `json:"duration"`
	Earliest    float64   `json:"earliest"`
	Latest      float64   `json:"latest"`
}

// EncodeRequest converts a request into its wire form.
func EncodeRequest(r *vnet.Request) RequestJSON {
	rj := RequestJSON{
		Name:        r.Name,
		Nodes:       r.G.N,
		NodeDemands: r.NodeDemand,
		LinkDemands: r.LinkDemand,
		Duration:    r.Duration,
		Earliest:    r.Earliest,
		Latest:      r.Latest,
	}
	for e := 0; e < r.G.NumEdges(); e++ {
		u, v := r.G.Edge(e)
		rj.Edges = append(rj.Edges, [2]int{u, v})
	}
	return rj
}

// Decode validates the wire form (untrusted input) and assembles a request.
func (rj RequestJSON) Decode() (*vnet.Request, error) {
	g, err := buildGraph(rj.Nodes, rj.Edges)
	if err != nil {
		return nil, fmt.Errorf("workload: request %q: %w", rj.Name, err)
	}
	r := &vnet.Request{
		Name:       rj.Name,
		G:          g,
		NodeDemand: rj.NodeDemands,
		LinkDemand: rj.LinkDemands,
		Duration:   rj.Duration,
		Earliest:   rj.Earliest,
		Latest:     rj.Latest,
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return r, nil
}

// MarshalJSON implements json.Marshaler for Scenario.
func (sc *Scenario) MarshalJSON() ([]byte, error) {
	out := scenarioJSON{
		Horizon: sc.Horizon,
		Seed:    sc.Seed,
		Mapping: sc.Mapping,
	}
	out.Substrate = substrateJSON{
		Nodes:    sc.Substrate.NumNodes(),
		NodeCaps: sc.Substrate.NodeCap,
		LinkCaps: sc.Substrate.LinkCap,
	}
	for e := 0; e < sc.Substrate.NumLinks(); e++ {
		u, v := sc.Substrate.G.Edge(e)
		out.Substrate.Edges = append(out.Substrate.Edges, [2]int{u, v})
	}
	for _, r := range sc.Requests {
		out.Requests = append(out.Requests, EncodeRequest(r))
	}
	return json.MarshalIndent(out, "", "  ")
}

// buildGraph validates a node count and edge list from an untrusted file
// and assembles the digraph. graph.AddEdge enforces the same invariants by
// panicking — fine for generator code, but a decoder must reject malformed
// input with an error instead.
func buildGraph(n int, edges [][2]int) (*graph.Digraph, error) {
	// The adjacency structures are O(n) before a single edge is read, so an
	// absurd node count in a hand-edited file would allocate gigabytes.
	// Real TVNEP instances have tens of nodes; 1<<16 is far beyond any of
	// them while keeping the worst-case decoder allocation a few MB.
	const maxNodes = 1 << 16
	if n < 0 || n > maxNodes {
		return nil, fmt.Errorf("node count %d outside [0, %d]", n, maxNodes)
	}
	g := graph.NewDigraph(n)
	seen := make(map[[2]int]bool, len(edges))
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("edge (%d,%d) out of range [0,%d)", e[0], e[1], n)
		}
		if e[0] == e[1] {
			return nil, fmt.Errorf("self-loop at node %d", e[0])
		}
		if seen[e] {
			return nil, fmt.Errorf("duplicate edge (%d,%d)", e[0], e[1])
		}
		seen[e] = true
		g.AddEdge(e[0], e[1])
	}
	return g, nil
}

// UnmarshalJSON implements json.Unmarshaler for Scenario.
func (sc *Scenario) UnmarshalJSON(data []byte) error {
	var in scenarioJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	g, err := buildGraph(in.Substrate.Nodes, in.Substrate.Edges)
	if err != nil {
		return fmt.Errorf("workload: substrate: %w", err)
	}
	sub := &substrate.Network{G: g, NodeCap: in.Substrate.NodeCaps, LinkCap: in.Substrate.LinkCaps}
	if err := sub.Validate(); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	sc.Substrate = sub
	sc.Requests = nil
	for _, rj := range in.Requests {
		r, err := rj.Decode()
		if err != nil {
			return err
		}
		sc.Requests = append(sc.Requests, r)
	}
	sc.Mapping = in.Mapping
	sc.Horizon = in.Horizon
	sc.Seed = in.Seed
	return sc.validateLoose()
}

// validateLoose checks everything except the mapping (which is optional in
// files: tools can run with free node mappings).
func (sc *Scenario) validateLoose() error {
	if sc.Mapping == nil {
		return nil
	}
	return sc.Validate()
}
