package workload

import (
	"encoding/json"
	"fmt"

	"tvnep/internal/graph"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// scenarioJSON is the on-disk format used by the cmd/ tools.
type scenarioJSON struct {
	Substrate substrateJSON `json:"substrate"`
	Requests  []requestJSON `json:"requests"`
	Mapping   [][]int       `json:"mapping,omitempty"`
	Horizon   float64       `json:"horizon"`
	Seed      int64         `json:"seed,omitempty"`
}

type substrateJSON struct {
	Nodes    int       `json:"nodes"`
	Edges    [][2]int  `json:"edges"`
	NodeCaps []float64 `json:"node_caps"`
	LinkCaps []float64 `json:"link_caps"`
}

type requestJSON struct {
	Name        string    `json:"name"`
	Nodes       int       `json:"nodes"`
	Edges       [][2]int  `json:"edges"`
	NodeDemands []float64 `json:"node_demands"`
	LinkDemands []float64 `json:"link_demands"`
	Duration    float64   `json:"duration"`
	Earliest    float64   `json:"earliest"`
	Latest      float64   `json:"latest"`
}

// MarshalJSON implements json.Marshaler for Scenario.
func (sc *Scenario) MarshalJSON() ([]byte, error) {
	out := scenarioJSON{
		Horizon: sc.Horizon,
		Seed:    sc.Seed,
		Mapping: sc.Mapping,
	}
	out.Substrate = substrateJSON{
		Nodes:    sc.Substrate.NumNodes(),
		NodeCaps: sc.Substrate.NodeCap,
		LinkCaps: sc.Substrate.LinkCap,
	}
	for e := 0; e < sc.Substrate.NumLinks(); e++ {
		u, v := sc.Substrate.G.Edge(e)
		out.Substrate.Edges = append(out.Substrate.Edges, [2]int{u, v})
	}
	for _, r := range sc.Requests {
		rj := requestJSON{
			Name:        r.Name,
			Nodes:       r.G.N,
			NodeDemands: r.NodeDemand,
			LinkDemands: r.LinkDemand,
			Duration:    r.Duration,
			Earliest:    r.Earliest,
			Latest:      r.Latest,
		}
		for e := 0; e < r.G.NumEdges(); e++ {
			u, v := r.G.Edge(e)
			rj.Edges = append(rj.Edges, [2]int{u, v})
		}
		out.Requests = append(out.Requests, rj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON implements json.Unmarshaler for Scenario.
func (sc *Scenario) UnmarshalJSON(data []byte) error {
	var in scenarioJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	g := graph.NewDigraph(in.Substrate.Nodes)
	for _, e := range in.Substrate.Edges {
		g.AddEdge(e[0], e[1])
	}
	sub := &substrate.Network{G: g, NodeCap: in.Substrate.NodeCaps, LinkCap: in.Substrate.LinkCaps}
	if err := sub.Validate(); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	sc.Substrate = sub
	sc.Requests = nil
	for _, rj := range in.Requests {
		rg := graph.NewDigraph(rj.Nodes)
		for _, e := range rj.Edges {
			rg.AddEdge(e[0], e[1])
		}
		r := &vnet.Request{
			Name:       rj.Name,
			G:          rg,
			NodeDemand: rj.NodeDemands,
			LinkDemand: rj.LinkDemands,
			Duration:   rj.Duration,
			Earliest:   rj.Earliest,
			Latest:     rj.Latest,
		}
		if err := r.Validate(); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
		sc.Requests = append(sc.Requests, r)
	}
	sc.Mapping = in.Mapping
	sc.Horizon = in.Horizon
	sc.Seed = in.Seed
	return sc.validateLoose()
}

// validateLoose checks everything except the mapping (which is optional in
// files: tools can run with free node mappings).
func (sc *Scenario) validateLoose() error {
	if sc.Mapping == nil {
		return nil
	}
	return sc.Validate()
}
