// Package workload generates the synthetic evaluation scenarios of
// Section VI-A: star-topology requests arriving by a Poisson process with
// Weibull-distributed durations and uniform resource demands, plus the a
// priori random node mappings the paper fixes before solving.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"tvnep/internal/numtol"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// Config describes one scenario family. The zero value is not useful; use
// Default() (the paper's parameters, scaled) or PaperScale().
type Config struct {
	// Substrate. Topology selects the generator: "" or "grid" builds the
	// paper's bidirected rows×cols grid with uniform capacities; "wan"
	// builds an ISP-style Waxman WAN (substrate.WAN) with WANNodes PoPs,
	// WANAvgDeg average degree and per-link capacities (backbone trunks
	// carry 2·LinkCap). The WAN layout is deterministic per scenario seed.
	Topology           string
	GridRows, GridCols int
	WANNodes           int     // wan: PoP count (0 → GridRows·GridCols)
	WANAvgDeg          float64 // wan: average-degree target (0 → 4)
	NodeCap, LinkCap   float64

	// Requests.
	NumRequests   int
	StarLeaves    int     // 4 in the paper (5-node stars)
	DemandLow     float64 // uniform demand interval [DemandLow, DemandHigh]
	DemandHigh    float64
	MeanInterArr  float64 // hours; Poisson process with this mean gap
	WeibullShape  float64 // 2 in the paper
	WeibullScale  float64 // 4 in the paper (≈3.5 h mean duration)
	FlexibilityHr float64 // scheduling slack added to every window (x-axis of all figures)
}

// Default returns the evaluation configuration scaled for the pure-Go MIP
// solver (see DESIGN.md §2): 3×3 grid, 8 requests, 3-node stars.
func Default() Config {
	return Config{
		GridRows: 3, GridCols: 3, NodeCap: 3.5, LinkCap: 5,
		NumRequests: 8, StarLeaves: 2,
		DemandLow: 1, DemandHigh: 2,
		MeanInterArr: 1, WeibullShape: 2, WeibullScale: 4,
	}
}

// PaperScale returns the paper's exact scenario: 4×5 grid, 20 requests,
// 5-node stars.
func PaperScale() Config {
	c := Default()
	c.GridRows, c.GridCols = 4, 5
	c.NumRequests = 20
	c.StarLeaves = 4
	return c
}

// Scenario is one generated problem instance.
type Scenario struct {
	Substrate *substrate.Network
	Requests  []*vnet.Request
	Mapping   vnet.NodeMapping // fixed a priori node placements
	Horizon   float64          // time horizon T
	Seed      int64
}

// Weibull samples a Weibull(shape k, scale λ) variate by inverse transform.
func Weibull(rng *rand.Rand, shape, scale float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return scale * math.Pow(-math.Log(u), 1/shape)
}

// Exponential samples an exponential variate with the given mean.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Generate builds a scenario from cfg deterministically from seed.
func Generate(cfg Config, seed int64) *Scenario {
	rng := rand.New(rand.NewSource(seed))
	var sub *substrate.Network
	switch cfg.Topology {
	case "", "grid":
		sub = substrate.Grid(cfg.GridRows, cfg.GridCols, cfg.NodeCap, cfg.LinkCap)
	case "wan":
		nodes := cfg.WANNodes
		if nodes == 0 {
			nodes = cfg.GridRows * cfg.GridCols
		}
		deg := cfg.WANAvgDeg
		if deg <= 0 {
			deg = 4
		}
		sub = substrate.WAN(nodes, deg, cfg.NodeCap, cfg.LinkCap, seed)
	default:
		panic(fmt.Sprintf("workload: unknown topology %q (want grid or wan)", cfg.Topology))
	}

	sc := &Scenario{Substrate: sub, Seed: seed}
	arrival := 0.0
	maxEnd := 0.0
	for i := 0; i < cfg.NumRequests; i++ {
		arrival += Exponential(rng, cfg.MeanInterArr)
		duration := Weibull(rng, cfg.WeibullShape, cfg.WeibullScale)
		if duration < 0.1 {
			duration = 0.1
		}
		inward := rng.Intn(2) == 0
		r := vnet.Star(fmt.Sprintf("R%d", i), cfg.StarLeaves, inward, 0, 0)
		for v := range r.NodeDemand {
			r.NodeDemand[v] = cfg.DemandLow + rng.Float64()*(cfg.DemandHigh-cfg.DemandLow)
		}
		for e := range r.LinkDemand {
			r.LinkDemand[e] = cfg.DemandLow + rng.Float64()*(cfg.DemandHigh-cfg.DemandLow)
		}
		r.Duration = duration
		r.Earliest = arrival
		r.Latest = arrival + duration + cfg.FlexibilityHr
		sc.Requests = append(sc.Requests, r)
		if r.Latest > maxEnd {
			maxEnd = r.Latest
		}

		// A priori uniform node mapping (Section VI-A).
		mapping := make([]int, r.G.N)
		for v := range mapping {
			mapping[v] = rng.Intn(sub.NumNodes())
		}
		sc.Mapping = append(sc.Mapping, mapping)
	}
	sc.Horizon = maxEnd
	return sc
}

// Validate checks every request of the scenario.
func (sc *Scenario) Validate() error {
	if err := sc.Substrate.Validate(); err != nil {
		return err
	}
	if len(sc.Mapping) != len(sc.Requests) {
		return fmt.Errorf("workload: %d mappings for %d requests", len(sc.Mapping), len(sc.Requests))
	}
	for i, r := range sc.Requests {
		if err := r.Validate(); err != nil {
			return err
		}
		if len(sc.Mapping[i]) != r.G.N {
			return fmt.Errorf("workload: mapping %d has %d entries for %d virtual nodes", i, len(sc.Mapping[i]), r.G.N)
		}
		for _, host := range sc.Mapping[i] {
			if host < 0 || host >= sc.Substrate.NumNodes() {
				return fmt.Errorf("workload: mapping %d targets substrate node %d out of range", i, host)
			}
		}
		if r.Latest > sc.Horizon+numtol.WindowTol {
			return fmt.Errorf("workload: request %d ends after horizon", i)
		}
	}
	return nil
}
