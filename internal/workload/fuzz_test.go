package workload

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzWorkloadJSONRoundTrip asserts the on-disk scenario format is a
// fixpoint: any byte string that Unmarshal accepts must re-marshal to a
// canonical form that survives a second round trip byte-identically and
// decodes to a semantically equal scenario. This is the contract the cmd/
// tools rely on when they read, rewrite and re-read scenario files.
func FuzzWorkloadJSONRoundTrip(f *testing.F) {
	cfg := Default()
	cfg.GridRows, cfg.GridCols, cfg.NumRequests = 2, 2, 3
	for seed := int64(1); seed <= 3; seed++ {
		sc := Generate(cfg, seed)
		data, err := json.Marshal(sc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"substrate":{"nodes":1,"node_caps":[1]},"horizon":1}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sc1 Scenario
		if err := json.Unmarshal(data, &sc1); err != nil {
			return // rejected inputs are out of contract
		}
		out1, err := json.Marshal(&sc1)
		if err != nil {
			t.Fatalf("accepted scenario failed to marshal: %v", err)
		}
		var sc2 Scenario
		if err := json.Unmarshal(out1, &sc2); err != nil {
			t.Fatalf("canonical form rejected by its own decoder: %v\n%s", err, out1)
		}
		out2, err := json.Marshal(&sc2)
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("canonical form is not a fixpoint:\nfirst:  %s\nsecond: %s", out1, out2)
		}
		if !reflect.DeepEqual(&sc1, &sc2) {
			t.Fatalf("round trip changed the scenario:\nbefore: %+v\nafter:  %+v", sc1, sc2)
		}
	})
}
