package workload

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := Generate(Default(), 13)
	data, err := orig.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Substrate.NumNodes() != orig.Substrate.NumNodes() ||
		back.Substrate.NumLinks() != orig.Substrate.NumLinks() {
		t.Fatal("substrate shape changed through JSON")
	}
	if len(back.Requests) != len(orig.Requests) {
		t.Fatal("request count changed")
	}
	for i, r := range orig.Requests {
		b := back.Requests[i]
		if r.Name != b.Name || r.Duration != b.Duration ||
			r.Earliest != b.Earliest || r.Latest != b.Latest {
			t.Fatalf("request %d temporal data changed", i)
		}
		if r.G.NumEdges() != b.G.NumEdges() {
			t.Fatalf("request %d topology changed", i)
		}
		for v := range r.NodeDemand {
			if r.NodeDemand[v] != b.NodeDemand[v] {
				t.Fatalf("request %d node demand changed", i)
			}
		}
		for e := range r.LinkDemand {
			if r.LinkDemand[e] != b.LinkDemand[e] {
				t.Fatalf("request %d link demand changed", i)
			}
		}
		for v := range orig.Mapping[i] {
			if orig.Mapping[i][v] != back.Mapping[i][v] {
				t.Fatalf("mapping %d changed", i)
			}
		}
	}
	if back.Horizon != orig.Horizon || back.Seed != orig.Seed {
		t.Fatal("scalar fields changed")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	// Substrate edge orientation must survive too.
	for e := 0; e < orig.Substrate.NumLinks(); e++ {
		u1, v1 := orig.Substrate.G.Edge(e)
		u2, v2 := back.Substrate.G.Edge(e)
		if u1 != u2 || v1 != v2 {
			t.Fatalf("edge %d reordered: (%d,%d) vs (%d,%d)", e, u1, v1, u2, v2)
		}
	}
}

func TestJSONRejectsCorruptData(t *testing.T) {
	cases := map[string]string{
		"not json":         `{`,
		"bad request":      `{"substrate":{"nodes":1,"edges":[],"node_caps":[1],"link_caps":[]},"requests":[{"name":"x","nodes":1,"node_demands":[1],"link_demands":[],"duration":-1,"earliest":0,"latest":1}],"horizon":1}`,
		"negative caps":    `{"substrate":{"nodes":1,"edges":[],"node_caps":[-1],"link_caps":[]},"requests":[],"horizon":1}`,
		"cap len mismatch": `{"substrate":{"nodes":2,"edges":[],"node_caps":[1],"link_caps":[]},"requests":[],"horizon":1}`,
	}
	for name, payload := range cases {
		var sc Scenario
		if err := json.Unmarshal([]byte(payload), &sc); err == nil {
			t.Fatalf("%s: corrupt payload accepted", name)
		}
	}
}

func TestJSONOmitsEmptyMapping(t *testing.T) {
	sc := Generate(Default(), 1)
	sc.Mapping = nil
	data, err := sc.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"mapping"`) {
		t.Fatal("nil mapping serialized")
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Mapping != nil {
		t.Fatal("mapping materialized from nothing")
	}
}
