// Package prof wires the -cpuprofile/-memprofile flags of the command-line
// tools to runtime/pprof. Profiles feed `go tool pprof` to attribute solver
// time (factorization vs pricing vs pivoting) and steady-state allocations.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). The stop function is idempotent.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
		cpuFile = f
	}
	done := false
	stop := func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof: create heap profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof: write heap profile:", err)
			}
		}
	}
	return stop, nil
}
