// Package vnet defines virtual network requests: a topology with node and
// link resource demands (Table II) plus the temporal parameters of Table VI
// (duration, earliest start, latest end).
package vnet

import (
	"fmt"

	"tvnep/internal/graph"
	"tvnep/internal/numtol"
)

// Request is one VNet request R ∈ 𝓡.
type Request struct {
	Name string
	G    *graph.Digraph

	NodeDemand []float64 // c_R on virtual nodes
	LinkDemand []float64 // c_R on virtual links (by edge index of G)

	// Temporal parameters (Table VI).
	Duration float64 // d_R > 0
	Earliest float64 // t^s_R: earliest possible start
	Latest   float64 // t^e_R: latest possible end
}

// Flexibility returns the scheduling slack t^e − t^s − d (how much the start
// may be shifted). Zero means the request has a forced schedule.
func (r *Request) Flexibility() float64 { return r.Latest - r.Earliest - r.Duration }

// LatestStart returns t^e − d, the latest feasible start time.
func (r *Request) LatestStart() float64 { return r.Latest - r.Duration }

// EarliestEnd returns t^s + d, the earliest feasible end time.
func (r *Request) EarliestEnd() float64 { return r.Earliest + r.Duration }

// TotalNodeDemand returns Σ_{N_v ∈ V_R} c_R(N_v) (used by the access-control
// revenue objective).
func (r *Request) TotalNodeDemand() float64 {
	s := 0.0
	for _, d := range r.NodeDemand {
		s += d
	}
	return s
}

// Validate checks structural and temporal invariants.
func (r *Request) Validate() error {
	if len(r.NodeDemand) != r.G.N {
		return fmt.Errorf("vnet %s: %d node demands for %d nodes", r.Name, len(r.NodeDemand), r.G.N)
	}
	if len(r.LinkDemand) != r.G.NumEdges() {
		return fmt.Errorf("vnet %s: %d link demands for %d links", r.Name, len(r.LinkDemand), r.G.NumEdges())
	}
	if r.Duration <= 0 {
		return fmt.Errorf("vnet %s: nonpositive duration %v", r.Name, r.Duration)
	}
	if r.Earliest < 0 {
		return fmt.Errorf("vnet %s: negative earliest start %v", r.Name, r.Earliest)
	}
	if r.Flexibility() < -numtol.WindowTol { // tolerate float rounding in t^s + d + flex
		return fmt.Errorf("vnet %s: window [%v,%v] shorter than duration %v",
			r.Name, r.Earliest, r.Latest, r.Duration)
	}
	return nil
}

// Star builds the paper's request topology: a star with one center and the
// given number of leaves; inward selects edge orientation. All nodes share
// nodeDemand and all links linkDemand.
func Star(name string, leaves int, inward bool, nodeDemand, linkDemand float64) *Request {
	g := graph.Star(leaves, inward)
	r := &Request{
		Name:       name,
		G:          g,
		NodeDemand: make([]float64, g.N),
		LinkDemand: make([]float64, g.NumEdges()),
	}
	for i := range r.NodeDemand {
		r.NodeDemand[i] = nodeDemand
	}
	for i := range r.LinkDemand {
		r.LinkDemand[i] = linkDemand
	}
	return r
}

// Chain builds a directed-path request 0→1→…→(n−1), the pipeline topology
// of staged applications.
func Chain(name string, nodes int, nodeDemand, linkDemand float64) *Request {
	g := graph.Chain(nodes)
	r := &Request{
		Name:       name,
		G:          g,
		NodeDemand: make([]float64, g.N),
		LinkDemand: make([]float64, g.NumEdges()),
	}
	for i := range r.NodeDemand {
		r.NodeDemand[i] = nodeDemand
	}
	for i := range r.LinkDemand {
		r.LinkDemand[i] = linkDemand
	}
	return r
}

// Clique builds a fully meshed request on the given number of nodes (every
// ordered pair connected), the all-to-all traffic pattern of SecondNet-style
// graph VNets.
func Clique(name string, nodes int, nodeDemand, linkDemand float64) *Request {
	g := graph.NewDigraph(nodes)
	for u := 0; u < nodes; u++ {
		for v := 0; v < nodes; v++ {
			if u != v {
				g.AddEdge(u, v)
			}
		}
	}
	r := &Request{
		Name:       name,
		G:          g,
		NodeDemand: make([]float64, g.N),
		LinkDemand: make([]float64, g.NumEdges()),
	}
	for i := range r.NodeDemand {
		r.NodeDemand[i] = nodeDemand
	}
	for i := range r.LinkDemand {
		r.LinkDemand[i] = linkDemand
	}
	return r
}

// NodeMapping fixes virtual node → substrate node placement for a request
// set, as done in the paper's evaluation (Section VI-A fixes node mappings
// a priori and lets the model choose link embeddings and schedules).
// NodeMapping[r][v] is the substrate node hosting virtual node v of
// request r.
type NodeMapping [][]int
