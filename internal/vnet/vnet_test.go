package vnet

import (
	"math"
	"testing"
)

func TestStarRequest(t *testing.T) {
	r := Star("r", 4, true, 1.5, 2.5)
	if r.G.N != 5 || r.G.NumEdges() != 4 {
		t.Fatalf("star shape %d/%d", r.G.N, r.G.NumEdges())
	}
	if r.TotalNodeDemand() != 7.5 {
		t.Fatalf("total node demand %v, want 7.5", r.TotalNodeDemand())
	}
	for _, d := range r.LinkDemand {
		if d != 2.5 {
			t.Fatalf("link demand %v", d)
		}
	}
}

func TestTemporalHelpers(t *testing.T) {
	r := Star("r", 1, false, 1, 1)
	r.Earliest = 2
	r.Duration = 3
	r.Latest = 9
	if r.Flexibility() != 4 {
		t.Fatalf("flexibility %v, want 4", r.Flexibility())
	}
	if r.LatestStart() != 6 || r.EarliestEnd() != 5 {
		t.Fatalf("latest start %v earliest end %v", r.LatestStart(), r.EarliestEnd())
	}
}

func TestValidate(t *testing.T) {
	mk := func() *Request {
		r := Star("r", 2, true, 1, 1)
		r.Earliest = 0
		r.Duration = 2
		r.Latest = 3
		return r
	}
	if err := mk().Validate(); err != nil {
		t.Fatal(err)
	}
	r := mk()
	r.Duration = 0
	if r.Validate() == nil {
		t.Fatal("zero duration accepted")
	}
	r = mk()
	r.Earliest = -1
	if r.Validate() == nil {
		t.Fatal("negative earliest accepted")
	}
	r = mk()
	r.Latest = 1 // window shorter than duration
	if r.Validate() == nil {
		t.Fatal("short window accepted")
	}
	r = mk()
	r.NodeDemand = r.NodeDemand[:1]
	if r.Validate() == nil {
		t.Fatal("node demand mismatch accepted")
	}
	r = mk()
	r.LinkDemand = nil
	if r.Validate() == nil {
		t.Fatal("link demand mismatch accepted")
	}
}

func TestFlexibilityTolerance(t *testing.T) {
	r := Star("r", 1, true, 1, 1)
	r.Earliest = 1.6324041020646987
	r.Duration = 4.9647509087019825
	r.Latest = r.Earliest + r.Duration // bit-rounded sum
	if math.Abs(r.Flexibility()) > 1e-9 {
		t.Skip("platform rounds differently")
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("rounding rejected: %v", err)
	}
}

func TestChainRequest(t *testing.T) {
	r := Chain("pipe", 4, 1, 2)
	if r.G.N != 4 || r.G.NumEdges() != 3 {
		t.Fatalf("chain shape %d/%d", r.G.N, r.G.NumEdges())
	}
	if r.TotalNodeDemand() != 4 {
		t.Fatalf("demand %v", r.TotalNodeDemand())
	}
}

func TestCliqueRequest(t *testing.T) {
	r := Clique("mesh", 3, 1, 1)
	if r.G.N != 3 || r.G.NumEdges() != 6 {
		t.Fatalf("clique shape %d/%d", r.G.N, r.G.NumEdges())
	}
	for u := 0; u < 3; u++ {
		for v := 0; v < 3; v++ {
			if u != v && !r.G.HasEdge(u, v) {
				t.Fatalf("missing edge %d→%d", u, v)
			}
		}
	}
}
