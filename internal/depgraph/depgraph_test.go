package depgraph

import (
	"fmt"
	"math/rand"
	"testing"

	"tvnep/internal/vnet"
)

// mkReq builds a single-node request with the given temporal parameters.
func mkReq(name string, earliest, duration, latest float64) *vnet.Request {
	r := vnet.Star(name, 1, true, 1, 1)
	r.Earliest = earliest
	r.Duration = duration
	r.Latest = latest
	return r
}

func TestDisjointRequestsFullyOrdered(t *testing.T) {
	// R0 in [0, 2], R1 in [10, 12]: every R0 checkpoint precedes every R1
	// checkpoint.
	reqs := []*vnet.Request{mkReq("a", 0, 2, 2), mkReq("b", 10, 2, 12)}
	dg := Build(reqs)
	if !dg.Feasible() {
		t.Fatal("feasible scenario reported infeasible")
	}
	// R0's start must be event 1, R1's start event 2.
	if dg.StartWindow[0] != (Window{1, 1}) {
		t.Fatalf("StartWindow[0] = %v, want {1 1}", dg.StartWindow[0])
	}
	if dg.StartWindow[1] != (Window{2, 2}) {
		t.Fatalf("StartWindow[1] = %v, want {2 2}", dg.StartWindow[1])
	}
	// R0's end precedes R1's start: end window of R0 is exactly event 2.
	if dg.EndWindow[0] != (Window{2, 2}) {
		t.Fatalf("EndWindow[0] = %v, want {2 2}", dg.EndWindow[0])
	}
	// R1's end can only be the final event 3.
	if dg.EndWindow[1] != (Window{3, 3}) {
		t.Fatalf("EndWindow[1] = %v, want {3 3}", dg.EndWindow[1])
	}
}

func TestOverlappingRequestsUnordered(t *testing.T) {
	reqs := []*vnet.Request{mkReq("a", 0, 2, 10), mkReq("b", 0, 2, 10)}
	dg := Build(reqs)
	if dg.StartWindow[0] != (Window{1, 2}) || dg.StartWindow[1] != (Window{1, 2}) {
		t.Fatalf("start windows %v %v, want {1 2} both", dg.StartWindow[0], dg.StartWindow[1])
	}
	if dg.EndWindow[0] != (Window{2, 3}) || dg.EndWindow[1] != (Window{2, 3}) {
		t.Fatalf("end windows %v %v, want {2 3} both", dg.EndWindow[0], dg.EndWindow[1])
	}
}

func TestOwnStartEndEdgeAlwaysPresent(t *testing.T) {
	// Large flexibility: latest(start) = 10−1 = 9 > earliest(end) = 1, so
	// the paper's condition does not create the start→end edge; Build must
	// add it explicitly.
	reqs := []*vnet.Request{mkReq("a", 0, 1, 10)}
	dg := Build(reqs)
	if !dg.G.HasEdge(StartNode(0), EndNode(0)) {
		t.Fatal("missing explicit start→end edge")
	}
	if dg.EndWindow[0].Lo != 2 {
		t.Fatalf("EndWindow.Lo = %d, want 2", dg.EndWindow[0].Lo)
	}
}

func TestSymmetryExample(t *testing.T) {
	// Section IV-D: k requests of duration slightly above half the window
	// [0,2] must all start before any ends.
	k := 4
	var reqs []*vnet.Request
	for i := 0; i < k; i++ {
		d := 1 + 1/float64(int(1)<<uint(i+1))
		reqs = append(reqs, mkReq(fmt.Sprintf("r%d", i), 0, d, 2))
	}
	dg := Build(reqs)
	for i := 0; i < k; i++ {
		// Every start precedes every other request's end (pairwise overlap
		// is forced), so all ends are mapped on the last event k+1.
		if dg.EndWindow[i].Lo != k+1 {
			t.Fatalf("EndWindow[%d] = %v, want Lo = %d", i, dg.EndWindow[i], k+1)
		}
	}
}

func TestPrecedences(t *testing.T) {
	reqs := []*vnet.Request{mkReq("a", 0, 2, 2), mkReq("b", 10, 2, 12)}
	dg := Build(reqs)
	found := false
	for _, pr := range dg.Precedences() {
		if pr.V == StartNode(0) && pr.W == StartNode(1) {
			found = true
			if pr.Gap < 1 {
				t.Fatalf("gap %d < 1", pr.Gap)
			}
		}
		if pr.Gap < 1 {
			t.Fatalf("precedence with gap %d", pr.Gap)
		}
	}
	if !found {
		t.Fatal("missing precedence start(a) → start(b)")
	}
}

func TestActivityClassification(t *testing.T) {
	// Two sequential requests: R0 always active in state 1, R1 in state 2.
	reqs := []*vnet.Request{mkReq("a", 0, 2, 2), mkReq("b", 10, 2, 12)}
	dg := Build(reqs)
	if got := dg.ActivityAt(0, 1); got != Always {
		t.Fatalf("R0 in s1 = %v, want Always", got)
	}
	if got := dg.ActivityAt(0, 2); got != Never {
		t.Fatalf("R0 in s2 = %v, want Never", got)
	}
	if got := dg.ActivityAt(1, 1); got != Never {
		t.Fatalf("R1 in s1 = %v, want Never", got)
	}
	if got := dg.ActivityAt(1, 2); got != Always {
		t.Fatalf("R1 in s2 = %v, want Always", got)
	}
}

func TestActivityMaybe(t *testing.T) {
	reqs := []*vnet.Request{mkReq("a", 0, 2, 10), mkReq("b", 0, 2, 10)}
	dg := Build(reqs)
	for r := 0; r < 2; r++ {
		for n := 1; n <= 2; n++ {
			if got := dg.ActivityAt(r, n); got != Maybe {
				t.Fatalf("R%d in s%d = %v, want Maybe", r, n, got)
			}
		}
	}
}

func TestWindowHelpers(t *testing.T) {
	w := Window{2, 4}
	if w.Empty() || !w.Contains(2) || !w.Contains(4) || w.Contains(1) || w.Contains(5) {
		t.Fatalf("window helpers broken for %v", w)
	}
	if !(Window{3, 2}).Empty() {
		t.Fatal("empty window not detected")
	}
}

func TestNodeHelpers(t *testing.T) {
	if StartNode(3) != 6 || EndNode(3) != 7 {
		t.Fatal("node ids wrong")
	}
	if !IsStartNode(6) || IsStartNode(7) {
		t.Fatal("IsStartNode wrong")
	}
	if RequestOf(6) != 3 || RequestOf(7) != 3 {
		t.Fatal("RequestOf wrong")
	}
}

// Property: windows are always within the legal event ranges and the
// structure is acyclic for random feasible workloads.
func TestRandomWorkloadsWindowsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		var reqs []*vnet.Request
		for i := 0; i < k; i++ {
			e := rng.Float64() * 20
			d := 0.5 + rng.Float64()*4
			flex := rng.Float64() * 6
			reqs = append(reqs, mkReq(fmt.Sprintf("r%d", i), e, d, e+d+flex))
		}
		dg := Build(reqs)
		if !dg.Feasible() {
			t.Fatalf("trial %d: feasible-by-construction scenario reported infeasible", trial)
		}
		for r := 0; r < k; r++ {
			sw, ew := dg.StartWindow[r], dg.EndWindow[r]
			if sw.Lo < 1 || sw.Hi > k {
				t.Fatalf("trial %d: start window %v outside [1,%d]", trial, sw, k)
			}
			if ew.Lo < 2 || ew.Hi > k+1 {
				t.Fatalf("trial %d: end window %v outside [2,%d]", trial, ew, k+1)
			}
		}
	}
}
