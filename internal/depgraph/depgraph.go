// Package depgraph builds the temporal dependency graph of Section IV-C:
// a DAG over the start/end checkpoints of all requests whose edges encode
// provable temporal precedences. From it we derive the event-index windows
// of the temporal dependency graph cuts (Constraint 19), the pairwise
// precedence distances used by Constraint 20, and the activity-interval
// classification that powers the state-space-reduction presolve.
//
// Event indexing follows the cΣ-Model (Section IV): events e_1 … e_{|R|+1},
// request starts bijectively on e_1 … e_{|R|}, request ends (many-to-one)
// on e_2 … e_{|R|+1}.
package depgraph

import (
	"math"

	"tvnep/internal/graph"
	"tvnep/internal/numtol"
	"tvnep/internal/vnet"
)

// StartNode returns the dependency-graph node id of (request r, start).
func StartNode(r int) int { return 2 * r }

// EndNode returns the dependency-graph node id of (request r, end).
func EndNode(r int) int { return 2*r + 1 }

// IsStartNode reports whether dependency node v is a start checkpoint.
func IsStartNode(v int) bool { return v%2 == 0 }

// RequestOf returns the request index of dependency node v.
func RequestOf(v int) int { return v / 2 }

// Window is an inclusive range of event indices (1-based, as in the paper).
type Window struct{ Lo, Hi int }

// Empty reports whether the window contains no event.
func (w Window) Empty() bool { return w.Lo > w.Hi }

// Contains reports whether event index i lies in the window.
func (w Window) Contains(i int) bool { return i >= w.Lo && i <= w.Hi }

// FullWindows returns the unrestricted event windows of the cΣ event
// structure for k requests: every start may map to any of e_1…e_k, every
// end to any of e_2…e_{k+1}. This is the window set used when the
// Constraint-(19) cuts are disabled; the dependency-graph windows are always
// subsets of it.
func FullWindows(k int) (start, end []Window) {
	start = make([]Window, k)
	end = make([]Window, k)
	for r := 0; r < k; r++ {
		start[r] = Window{Lo: 1, Hi: k}
		end[r] = Window{Lo: 2, Hi: k + 1}
	}
	return start, end
}

// Graph is the temporal dependency graph plus the derived cut data.
type Graph struct {
	NumReq int
	G      *graph.Digraph // 2·NumReq nodes; see StartNode/EndNode

	// Dist[v][w] is the maximum number of *start* checkpoints on any
	// v→…→w path, counting v itself if it is a start; NegInf when w is
	// unreachable from v; 0 on the diagonal. This matches dist_max of
	// Section IV-C (edge weight 1 when the edge's tail is a start).
	Dist [][]float64

	// StartWindow[r] and EndWindow[r] are the event windows of
	// Constraint (19) for the cΣ event structure.
	StartWindow []Window
	EndWindow   []Window
}

// Build constructs the dependency graph for the request set. Beyond the
// paper's latest(v) < earliest(w) edges it adds the always-valid edge
// (R,start)→(R,end) for every request, which lets Observations 1–3 of the
// paper be applied uniformly.
func Build(reqs []*vnet.Request) *Graph {
	k := len(reqs)
	dg := &Graph{NumReq: k, G: graph.NewDigraph(2 * k)}

	earliest := func(v int) float64 {
		r := reqs[RequestOf(v)]
		if IsStartNode(v) {
			return r.Earliest
		}
		return r.EarliestEnd()
	}
	latest := func(v int) float64 {
		r := reqs[RequestOf(v)]
		if IsStartNode(v) {
			return r.LatestStart()
		}
		return r.Latest
	}
	// numtol.TieEps guards against float-dust precedences: schedules
	// produced by LP solves are only accurate to the solver's feasibility
	// tolerance, so two checkpoints closer than this are treated as
	// unordered. Dropping an edge only weakens the cuts; it never cuts off
	// a solution.
	const tieEps = numtol.TieEps
	for v := 0; v < 2*k; v++ {
		for w := 0; w < 2*k; w++ {
			if v == w || RequestOf(v) == RequestOf(w) {
				continue
			}
			if latest(v) < earliest(w)-tieEps {
				dg.G.AddEdge(v, w)
			}
		}
	}
	for r := 0; r < k; r++ {
		dg.G.AddEdge(StartNode(r), EndNode(r))
	}

	// Edge weight 1 iff the tail is a start checkpoint.
	dg.Dist = dg.G.LongestDistances(func(e int) float64 {
		u, _ := dg.G.Edge(e)
		if IsStartNode(u) {
			return 1
		}
		return 0
	})

	dg.StartWindow = make([]Window, k)
	dg.EndWindow = make([]Window, k)
	for r := 0; r < k; r++ {
		sLo := 1 + dg.startAncestors(StartNode(r))
		sHi := k - dg.startDescendants(StartNode(r))
		dg.StartWindow[r] = Window{Lo: sLo, Hi: sHi}

		eLo := 1 + dg.startAncestors(EndNode(r)) // own start counted → ≥ 2
		eHi := k + 1 - dg.startDescendants(EndNode(r))
		if eLo < 2 {
			eLo = 2
		}
		dg.EndWindow[r] = Window{Lo: eLo, Hi: eHi}
	}
	return dg
}

// startAncestors counts start checkpoints u ≠ v with a path u→v.
func (dg *Graph) startAncestors(v int) int {
	n := 0
	for u := 0; u < dg.G.N; u++ {
		if u != v && IsStartNode(u) && !math.IsInf(dg.Dist[u][v], -1) {
			n++
		}
	}
	return n
}

// startDescendants counts start checkpoints w ≠ v with a path v→w.
func (dg *Graph) startDescendants(v int) int {
	n := 0
	for w := 0; w < dg.G.N; w++ {
		if w != v && IsStartNode(w) && !math.IsInf(dg.Dist[v][w], -1) {
			n++
		}
	}
	return n
}

// Feasible reports whether every checkpoint has a non-empty event window.
// An empty window proves that no schedule exists in which all 2·|R| event
// checkpoints receive consistent event indices.
func (dg *Graph) Feasible() bool {
	for r := 0; r < dg.NumReq; r++ {
		if dg.StartWindow[r].Empty() || dg.EndWindow[r].Empty() {
			return false
		}
	}
	return true
}

// Precedence holds one Constraint-(20) cut: checkpoint V must be mapped at
// least Gap event indices before checkpoint W.
type Precedence struct {
	V, W int // dependency-graph node ids
	Gap  int // dist_max(V, W) ≥ 1
}

// Precedences enumerates all ordered pairs with positive longest distance,
// i.e. the index pairs for which Constraint (20) is non-vacuous.
func (dg *Graph) Precedences() []Precedence {
	var out []Precedence
	for v := 0; v < dg.G.N; v++ {
		for w := 0; w < dg.G.N; w++ {
			if v == w {
				continue
			}
			d := dg.Dist[v][w]
			if !math.IsInf(d, -1) && d >= 1 {
				out = append(out, Precedence{V: v, W: w, Gap: int(d)})
			}
		}
	}
	return out
}

// Activity classifies request r's relationship with state s_n (the interval
// between events e_n and e_{n+1}, 1 ≤ n ≤ |R|).
type Activity int

const (
	// Never: r cannot be active during the state.
	Never Activity = iota
	// Maybe: r may or may not be active depending on the event mapping.
	Maybe
	// Always: r is provably active during the state under every feasible
	// event mapping (its allocation can be added as a constant — the
	// presolve of Section IV-C).
	Always
)

// ActivityAt returns the classification of request r in state s_n.
func (dg *Graph) ActivityAt(r, n int) Activity {
	sw, ew := dg.StartWindow[r], dg.EndWindow[r]
	// Active in s_n ⟺ startEvent ≤ n and endEvent ≥ n+1.
	if n < sw.Lo || n > ew.Hi-1 {
		return Never
	}
	if n >= sw.Hi && n <= ew.Lo-1 {
		return Always
	}
	return Maybe
}
