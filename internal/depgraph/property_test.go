package depgraph

import (
	"math"
	"math/rand"
	"testing"

	"tvnep/internal/vnet"
)

// Randomized property tests for the dependency-graph derivations. The cut
// data (windows (19), precedences (20)) is only sound if it never excludes
// a feasible schedule; these tests check exactly that against brute-force
// enumeration of schedules for small request sets, plus the fixpoint
// property of the longest-distance matrix everything is derived from.

// randReqs draws k requests with random temporal windows on [0, 100]. Every
// third request gets zero flexibility (a forced schedule), which is what
// produces rich dependency graphs.
func randReqs(rng *rand.Rand, k int) []*vnet.Request {
	reqs := make([]*vnet.Request, k)
	for r := 0; r < k; r++ {
		req := vnet.Chain("r", 2, 1, 1)
		req.Earliest = rng.Float64() * 60
		req.Duration = 1 + rng.Float64()*20
		flex := rng.Float64() * 25
		if rng.Intn(3) == 0 {
			flex = 0
		}
		req.Latest = req.Earliest + req.Duration + flex
		reqs[r] = req
	}
	return reqs
}

// bruteLongest enumerates every path u→…→w by DFS and returns the maximum
// path weight (number of start-checkpoint tails), −Inf when unreachable and
// 0 for u == w. Exponential, fine for 2·k ≤ 12 nodes.
func bruteLongest(dg *Graph, u, w int) float64 {
	if u == w {
		return 0
	}
	best := math.Inf(-1)
	var dfs func(v int, weight float64)
	dfs = func(v int, weight float64) {
		if v == w {
			if weight > best {
				best = weight
			}
			return
		}
		for _, e := range dg.G.Out(v) {
			_, next := dg.G.Edge(int(e))
			wt := 0.0
			if IsStartNode(v) {
				wt = 1
			}
			dfs(next, weight+wt)
		}
	}
	dfs(u, 0)
	return best
}

// TestLongestDistanceFixpoint: Dist must be the exact longest-distance
// matrix — a fixpoint of Bellman relaxation (no edge can improve any entry,
// and every off-diagonal finite entry is achieved through some predecessor)
// — and must agree with brute-force path enumeration.
func TestLongestDistanceFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(5)
		dg := Build(randReqs(rng, k))
		n := dg.G.N
		weight := func(v int) float64 {
			if IsStartNode(v) {
				return 1
			}
			return 0
		}
		for a := 0; a < n; a++ {
			if dg.Dist[a][a] != 0 {
				t.Fatalf("trial %d: Dist[%d][%d] = %v, want 0", trial, a, a, dg.Dist[a][a])
			}
			// No relaxation step may improve any entry: for every edge
			// (u,v), Dist[a][v] ≥ Dist[a][u] + weight(u).
			for u := 0; u < n; u++ {
				if math.IsInf(dg.Dist[a][u], -1) {
					continue
				}
				for _, e := range dg.G.Out(u) {
					_, v := dg.G.Edge(int(e))
					if v != a && dg.Dist[a][v] < dg.Dist[a][u]+weight(u) {
						t.Fatalf("trial %d: not a fixpoint: Dist[%d][%d]=%v < Dist[%d][%d]+%v via edge %d→%d",
							trial, a, v, dg.Dist[a][v], a, u, weight(u), u, v)
					}
				}
			}
		}
		// Small instances: compare every entry against exhaustive path
		// enumeration (the matrix must be achieved, not just admissible).
		if k <= 4 {
			for u := 0; u < n; u++ {
				for w := 0; w < n; w++ {
					want := bruteLongest(dg, u, w)
					got := dg.Dist[u][w]
					if math.IsInf(want, -1) != math.IsInf(got, -1) || (!math.IsInf(want, -1) && got != want) {
						t.Fatalf("trial %d: Dist[%d][%d] = %v, brute force %v", trial, u, w, got, want)
					}
				}
			}
		}
	}
}

// eventIndices derives the canonical cΣ event structure of a concrete
// schedule given by start times (ends follow at start+duration): start
// indices are the 1-based ranks of the start times, the end of r maps to
// event c+1 where c counts starts strictly before the end time.
func eventIndices(reqs []*vnet.Request, starts []float64) (startIdx, endIdx []int) {
	k := len(reqs)
	startIdx = make([]int, k)
	endIdx = make([]int, k)
	for r := 0; r < k; r++ {
		rank := 1
		for q := 0; q < k; q++ {
			if q == r {
				continue
			}
			if starts[q] < starts[r] || (starts[q] == starts[r] && q < r) {
				rank++
			}
		}
		startIdx[r] = rank
		end := starts[r] + reqs[r].Duration
		c := 0
		for q := 0; q < k; q++ {
			if starts[q] < end {
				c++
			}
		}
		endIdx[r] = c + 1
	}
	return startIdx, endIdx
}

// checkScheduleCovered asserts the cut data admits the schedule: every start
// and end index inside its window and every precedence satisfied with its
// full gap.
func checkScheduleCovered(t *testing.T, trial int, dg *Graph, reqs []*vnet.Request, starts []float64) {
	t.Helper()
	startIdx, endIdx := eventIndices(reqs, starts)
	idxOf := func(v int) int {
		if IsStartNode(v) {
			return startIdx[RequestOf(v)]
		}
		return endIdx[RequestOf(v)]
	}
	for r := range reqs {
		if !dg.StartWindow[r].Contains(startIdx[r]) {
			t.Fatalf("trial %d: feasible schedule start %v of request %d (index %d) excluded by window %+v (starts %v)",
				trial, starts[r], r, startIdx[r], dg.StartWindow[r], starts)
		}
		if !dg.EndWindow[r].Contains(endIdx[r]) {
			t.Fatalf("trial %d: feasible schedule end of request %d (index %d) excluded by window %+v (starts %v)",
				trial, r, endIdx[r], dg.EndWindow[r], starts)
		}
	}
	for _, pr := range dg.Precedences() {
		if idxOf(pr.W)-idxOf(pr.V) < pr.Gap {
			t.Fatalf("trial %d: feasible schedule violates precedence %d→%d gap %d (indices %d, %d; starts %v)",
				trial, pr.V, pr.W, pr.Gap, idxOf(pr.V), idxOf(pr.W), starts)
		}
	}
}

// TestCutsNeverExcludeFeasibleSchedule: for |R| ≤ 4, enumerate a dense grid
// of start-time tuples (every tuple is a feasible schedule by construction,
// since ends are start+duration and starts stay within [earliest,
// latest−duration]) plus extra random tuples, and require that windows (19)
// and precedences (20) admit the induced event structure of every one.
func TestCutsNeverExcludeFeasibleSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(3) // 2–4 requests
		reqs := randReqs(rng, k)
		dg := Build(reqs)
		if !dg.Feasible() {
			t.Fatalf("trial %d: empty window on an instance with feasible schedules", trial)
		}
		// Window sanity: the cut windows are subsets of the full ranges.
		fullS, fullE := FullWindows(k)
		for r := 0; r < k; r++ {
			if dg.StartWindow[r].Lo < fullS[r].Lo || dg.StartWindow[r].Hi > fullS[r].Hi ||
				dg.EndWindow[r].Lo < fullE[r].Lo || dg.EndWindow[r].Hi > fullE[r].Hi {
				t.Fatalf("trial %d: window exceeds full range: %+v / %+v", trial, dg.StartWindow[r], dg.EndWindow[r])
			}
		}

		// Brute-force grid: 4 candidate start times per request, all tuples.
		grid := make([][]float64, k)
		for r, req := range reqs {
			lo, hi := req.Earliest, req.LatestStart()
			grid[r] = []float64{lo, lo + (hi-lo)/3, lo + 2*(hi-lo)/3, hi}
		}
		starts := make([]float64, k)
		var walk func(r int)
		walk = func(r int) {
			if r == k {
				checkScheduleCovered(t, trial, dg, reqs, starts)
				return
			}
			for _, v := range grid[r] {
				starts[r] = v
				walk(r + 1)
			}
		}
		walk(0)

		// Plus random interior tuples.
		for s := 0; s < 50; s++ {
			for r, req := range reqs {
				starts[r] = req.Earliest + rng.Float64()*(req.LatestStart()-req.Earliest)
			}
			checkScheduleCovered(t, trial, dg, reqs, starts)
		}
	}
}
