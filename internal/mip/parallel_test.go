package mip

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"tvnep/internal/lp"
)

// randKnapsack builds a randomized 0/1 knapsack with n items; eq adds an
// equality cardinality row, which makes the search burn far more nodes and
// produce a long chain of improving incumbents.
func randKnapsack(seed int64, n int, capacity float64, eq bool) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	var idx []int32
	var val, ones []float64
	for j := 0; j < n; j++ {
		c := p.AddCol(rng.Float64()*10, 0, 1, "")
		idx = append(idx, int32(c))
		val = append(val, 1+rng.Float64()*4)
		ones = append(ones, 1)
	}
	p.AddLE(idx, val, capacity, "cap")
	if eq {
		p.AddEQ(idx, ones, math.Floor(float64(n)/3), "card")
	}
	mp := NewProblem(p)
	for j := 0; j < n; j++ {
		mp.SetInteger(j)
	}
	return mp
}

// multiKnapsack builds a randomized multidimensional 0/1 knapsack: m
// correlated capacity rows make the LP bound loose, so the search has to
// explore a deep tree (thousands of nodes) — the profile the parallel
// engine is built for.
func multiKnapsack(seed int64, n, m int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	var idx []int32
	for j := 0; j < n; j++ {
		c := p.AddCol(1+rng.Float64()*10, 0, 1, "")
		idx = append(idx, int32(c))
	}
	for i := 0; i < m; i++ {
		val := make([]float64, n)
		tot := 0.0
		for j := range val {
			val[j] = rng.Float64() * 10
			tot += val[j]
		}
		p.AddLE(idx, val, tot*0.3, "")
	}
	mp := NewProblem(p)
	for j := 0; j < n; j++ {
		mp.SetInteger(j)
	}
	return mp
}

// assertBitIdentical fails the test unless the two results agree bit for
// bit on every deterministic field (WastedLPIterations and Runtime are the
// only fields allowed to differ between worker counts).
func assertBitIdentical(t *testing.T, name string, base, got Result, baseW, gotW int) {
	t.Helper()
	if got.Status != base.Status {
		t.Errorf("%s: status differs between %d and %d workers: %v vs %v", name, baseW, gotW, base.Status, got.Status)
	}
	if got.HasSolution != base.HasSolution {
		t.Errorf("%s: HasSolution differs between %d and %d workers", name, baseW, gotW)
	}
	if math.Float64bits(got.Obj) != math.Float64bits(base.Obj) {
		t.Errorf("%s: objective not bit-identical between %d and %d workers: %x vs %x (%v vs %v)",
			name, baseW, gotW, math.Float64bits(base.Obj), math.Float64bits(got.Obj), base.Obj, got.Obj)
	}
	if math.Float64bits(got.Bound) != math.Float64bits(base.Bound) {
		t.Errorf("%s: bound not bit-identical between %d and %d workers: %v vs %v", name, baseW, gotW, base.Bound, got.Bound)
	}
	if got.Nodes != base.Nodes {
		t.Errorf("%s: node count differs between %d and %d workers: %d vs %d", name, baseW, gotW, base.Nodes, got.Nodes)
	}
	if got.LPIterations != base.LPIterations {
		t.Errorf("%s: committed LP iterations differ between %d and %d workers: %d vs %d",
			name, baseW, gotW, base.LPIterations, got.LPIterations)
	}
	if len(got.X) != len(base.X) {
		t.Fatalf("%s: solution length differs between %d and %d workers", name, baseW, gotW)
	}
	for j := range base.X {
		if math.Float64bits(got.X[j]) != math.Float64bits(base.X[j]) {
			t.Errorf("%s: x[%d] not bit-identical between %d and %d workers: %v vs %v",
				name, baseW, gotW, j, base.X[j], got.X[j])
		}
	}
}

// TestParallelDeterminism asserts the tentpole guarantee at the solver
// level: the full committed result — objective, solution vector, bound,
// node count, LP iteration count — is bit-identical for any worker count.
func TestParallelDeterminism(t *testing.T) {
	cases := []struct {
		name string
		prob *Problem
	}{
		{"knapsack-le", randKnapsack(5, 22, 30, false)},
		{"knapsack-eq", randKnapsack(9, 18, 24, true)},
		{"knapsack-heur-off", randKnapsack(11, 20, 26, false)},
		{"multiknapsack", multiKnapsack(3, 30, 10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var opts Options
			if tc.name == "knapsack-heur-off" {
				opts.HeuristicEvery = -1
			}
			var base Result
			for _, w := range []int{1, 2, 4, 8} {
				o := opts
				o.Workers = w
				res := Solve(context.Background(), tc.prob, &o)
				if res.Status != StatusOptimal {
					t.Fatalf("workers=%d: status %v", w, res.Status)
				}
				if w == 1 {
					base = res
					if res.WastedLPIterations != 0 {
						t.Errorf("single worker reported %d wasted LP iterations; speculation must be off", res.WastedLPIterations)
					}
					continue
				}
				assertBitIdentical(t, tc.name, base, res, 1, w)
			}
		})
	}
}

// TestParallelDeterminismRepeated re-runs the same parallel solve several
// times: scheduling noise between runs must never leak into the committed
// result.
func TestParallelDeterminismRepeated(t *testing.T) {
	mp := randKnapsack(13, 20, 27, true)
	base := Solve(context.Background(), mp, &Options{Workers: 4})
	if base.Status != StatusOptimal {
		t.Fatalf("status %v", base.Status)
	}
	for i := 0; i < 4; i++ {
		res := Solve(context.Background(), mp, &Options{Workers: 4})
		assertBitIdentical(t, "repeat", base, res, 4, 4)
	}
}

// TestParallelIncumbentStress hammers the shared atomic incumbent: an
// equality-constrained knapsack produces a long chain of improving
// incumbents while eight workers race to read the published bound for
// speculation pruning. Run under -race this is the engine's memory-model
// check; in any mode it asserts the parallel result matches serial.
func TestParallelIncumbentStress(t *testing.T) {
	mp := multiKnapsack(7, 28, 8)
	serial := Solve(context.Background(), mp, &Options{Workers: 1})
	if serial.Status != StatusOptimal {
		t.Fatalf("serial status %v", serial.Status)
	}
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	for i := 0; i < rounds; i++ {
		res := Solve(context.Background(), mp, &Options{Workers: 8})
		assertBitIdentical(t, "stress", serial, res, 1, 8)
	}
}

// TestParallelProgressSerialized checks that progress callbacks stay
// serialized on the committing goroutine with many workers: concurrent
// invocations would race on the unsynchronized counter (and trip -race).
func TestParallelProgressSerialized(t *testing.T) {
	mp := randKnapsack(7, 24, 32, true)
	calls := 0
	lastNodes := 0
	opts := &Options{
		Workers:       8,
		ProgressEvery: 1,
		Progress: func(p Progress) {
			calls++
			if p.NewIncumbent {
				return
			}
			if p.Nodes < lastNodes {
				t.Errorf("periodic progress went backwards: %d after %d", p.Nodes, lastNodes)
			}
			lastNodes = p.Nodes
			if p.Worker < 0 || p.Worker > 8 {
				t.Errorf("progress carries out-of-range worker id %d", p.Worker)
			}
		},
	}
	res := Solve(context.Background(), mp, opts)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if calls == 0 {
		t.Fatal("progress callback never fired")
	}
}

// TestParallelCancellation cancels mid-search with every worker busy; the
// solve must come back promptly with StatusCancelled and no goroutine may
// outlive it (the -race build would flag stragglers writing task state).
func TestParallelCancellation(t *testing.T) {
	mp := randKnapsack(5, 40, 55, true)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := Solve(ctx, mp, &Options{Workers: 8})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if res.Status != StatusCancelled && res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
}

// TestTightTimeLimitStops is the regression test for the hoisted deadline
// check: the wall clock is only read every timedOutEvery nodes, which must
// not let a tight-but-positive TimeLimit run away (the LP-level deadline
// bounds each node solve independently).
func TestTightTimeLimitStops(t *testing.T) {
	mp := multiKnapsack(5, 50, 15) // ~140 ms serial: cannot finish in 30 ms
	for _, w := range []int{1, 4} {
		start := time.Now()
		res := Solve(context.Background(), mp, &Options{TimeLimit: 30 * time.Millisecond, Workers: w})
		elapsed := time.Since(start)
		if res.Status != StatusLimit {
			t.Fatalf("workers=%d: status %v, want %v (elapsed %v)", w, res.Status, StatusLimit, elapsed)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("workers=%d: 30ms time limit stopped only after %v", w, elapsed)
		}
	}
}
