// Package mip implements a mixed-integer programming solver: LP-relaxation
// based branch-and-bound with best-first node selection, warm-started
// dual-simplex re-solves, a rounding primal heuristic and time/node/gap
// limits. It plays the role Gurobi plays in the paper's evaluation.
package mip

import (
	"container/heap"
	"context"
	"math"
	"time"

	"tvnep/internal/linalg/sparselu"
	"tvnep/internal/lp"
	"tvnep/internal/numtol"
)

const (
	// boundCutoffTol is the margin by which a node's relaxation bound (or
	// a candidate incumbent) must beat the incumbent to stay interesting;
	// it absorbs LP-level noise in the bound values.
	boundCutoffTol = 1e-9
	// gapDenFloor keeps the relative-gap denominator away from zero for
	// near-zero objectives.
	gapDenFloor = 1e-10
	// branchObjWeight is the tiny weight mixing objective magnitude into
	// the fractionality branching score as a deterministic tie-break.
	branchObjWeight = 1e-6
	// maxDivePasses bounds the fix-and-dive heuristic: each pass fixes one
	// integer column and pays one warm LP solve, so the cap is also the
	// heuristic's per-invocation LP budget.
	maxDivePasses = 200
)

// Problem couples an LP with integrality markers.
type Problem struct {
	LP      *lp.Problem
	Integer []bool // len == LP.NumCols(); true → column must be integral
}

// NewProblem wraps an LP builder; mark integer columns via SetInteger.
func NewProblem(p *lp.Problem) *Problem {
	return &Problem{LP: p, Integer: make([]bool, p.NumCols())}
}

// SetInteger marks column j as integral. The Integer slice is grown on
// demand so columns may be added to the LP after construction.
func (p *Problem) SetInteger(j int) {
	for len(p.Integer) <= j {
		p.Integer = append(p.Integer, false)
	}
	p.Integer[j] = true
}

// Status reports the outcome of a MIP solve.
type Status int

const (
	// StatusOptimal means the incumbent is proven optimal within GapTol.
	StatusOptimal Status = iota
	// StatusInfeasible means no integral solution exists.
	StatusInfeasible
	// StatusUnbounded means the relaxation (and thus the MIP, if feasible)
	// is unbounded.
	StatusUnbounded
	// StatusLimit means a time/node/iteration limit stopped the search; an
	// incumbent may or may not exist (check HasSolution).
	StatusLimit
	// StatusCancelled means the solve's context was cancelled before the
	// search concluded; an incumbent may or may not exist.
	StatusCancelled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusLimit:
		return "limit"
	case StatusCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Progress is a snapshot of the branch-and-bound search handed to the
// Options.Progress callback. Incumbent and Bound are expressed in the
// problem's original optimization sense; Incumbent is NaN while no integral
// solution exists. Callbacks are always serialized (they run on the
// committing goroutine) regardless of Options.Workers.
type Progress struct {
	Nodes        int
	Open         int // open (unexplored) nodes
	LPIterations int
	Incumbent    float64
	Bound        float64
	Gap          float64
	Elapsed      time.Duration
	// NewIncumbent marks callbacks fired because a better integral solution
	// was just found (otherwise the callback is periodic).
	NewIncumbent bool
	// Worker is the 1-based id of the worker whose LP solve produced the
	// most recently committed node relaxation (0 before the first commit).
	// It is informational: which worker solves which node is scheduling
	// noise and, unlike every other field, not reproducible across runs.
	Worker int
}

// Options tunes the branch-and-bound search. It is the lowering target of
// model.SolveOptions: external callers configure solves through the
// pkg/tvnep facade's functional options, which lower onto this struct in
// exactly one place (model.Optimize).
type Options struct {
	TimeLimit time.Duration // 0 → none
	NodeLimit int           // 0 → none
	GapTol    float64       // relative optimality gap, default 1e-6
	IntTol    float64       // integrality tolerance, default 1e-6
	// HeuristicEvery runs the rounding heuristic at the root and at every
	// k-th node thereafter (0 → the default of 50; a negative value
	// disables the heuristic entirely, including at the root).
	HeuristicEvery int
	// Workers is the number of workers evaluating node relaxations
	// concurrently (0 or 1 → a single worker). Each worker owns its own
	// simplex state; the search itself is committed by one goroutine in
	// strict sequential order, so the reported objective, solution, node
	// count and LP iteration count are bit-identical for every worker
	// count — as long as no time limit cuts the run short, since where a
	// wall-clock limit lands is never reproducible.
	Workers int
	// Progress, when non-nil, is invoked on every new incumbent and every
	// ProgressEvery nodes. Callbacks run synchronously on the committing
	// goroutine (even with Workers > 1); keep them cheap.
	Progress func(Progress)
	// ProgressEvery is the periodic callback interval in nodes (default
	// 100; < 0 disables periodic callbacks, leaving incumbent ones).
	ProgressEvery int
	// Separators generate valid inequalities lazily instead of having the
	// model emit them all up front; see the Separator contract in cuts.go.
	// Separation runs only on the committing goroutine, so the
	// bit-identical-for-any-worker-count guarantee extends to cut rounds.
	Separators []Separator
	// RootCutRounds bounds the separation rounds at the root node (0 → the
	// default of 20; negative → no root separation). The root is where cuts
	// pay off most, so it gets a much deeper budget than tree nodes.
	RootCutRounds int
	// TreeCutRounds bounds the separation rounds at each non-root node
	// (0 → the default of 2; negative → none).
	TreeCutRounds int
	// CutBatch is the maximum number of cuts appended per separation round,
	// taken in decreasing violation order (0 → the default of 32).
	CutBatch int
	// CutMaxAge evicts a pooled-but-never-appended cut after this many
	// rounds without a violation (0 → the default of 8; negative → never
	// evict).
	CutMaxAge int
	// Pricers generate structural columns lazily instead of having the model
	// emit them all up front; see the Pricer contract in price.go. Pricing
	// runs only on the committing goroutine and — unlike separation — to
	// convergence at every node, since a restricted relaxation's value is
	// only a valid node bound once no column prices in.
	Pricers []Pricer
	// PriceRounds caps the pricing rounds per node (0 → the default of 200).
	// It is a safety net against a non-converging Pricer, not a budget:
	// hitting it leaves the node with a possibly-invalid bound.
	PriceRounds int
	// PriceBatch is the maximum number of columns appended per pricing
	// round, taken in decreasing reduced-cost order (0 → the default of 32).
	PriceBatch int
	// ColMaxAge evicts a pooled-but-never-appended column after this many
	// pricing rounds without an improving reduced cost (0 → the default of
	// 8; negative → never evict).
	ColMaxAge int
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.GapTol <= 0 {
		out.GapTol = numtol.MIPGapTol
	}
	if out.IntTol <= 0 {
		out.IntTol = numtol.MIPIntTol
	}
	if out.HeuristicEvery == 0 {
		out.HeuristicEvery = 50
	}
	if out.Workers < 1 {
		out.Workers = 1
	}
	if out.ProgressEvery == 0 {
		out.ProgressEvery = 100
	}
	if out.RootCutRounds == 0 {
		out.RootCutRounds = 20
	} else if out.RootCutRounds < 0 {
		out.RootCutRounds = 0
	}
	if out.TreeCutRounds == 0 {
		out.TreeCutRounds = 2
	} else if out.TreeCutRounds < 0 {
		out.TreeCutRounds = 0
	}
	if out.CutBatch <= 0 {
		out.CutBatch = 32
	}
	if out.CutMaxAge == 0 {
		out.CutMaxAge = 8
	}
	if out.PriceRounds <= 0 {
		out.PriceRounds = 200
	}
	if out.PriceBatch <= 0 {
		out.PriceBatch = 32
	}
	if out.ColMaxAge == 0 {
		out.ColMaxAge = 8
	}
	return out
}

// Result reports the outcome of a solve. Obj, Bound and Gap are expressed in
// the problem's original optimization sense.
type Result struct {
	Status       Status
	HasSolution  bool
	Obj          float64   // incumbent objective (valid if HasSolution)
	Bound        float64   // best proven bound on the optimum
	Gap          float64   // relative gap; +Inf when no incumbent exists
	X            []float64 // incumbent solution
	Nodes        int
	LPIterations int // LP iterations of the committed search (deterministic)
	// BoundFlips and RatioPasses aggregate the LP solver's long-step dual
	// ratio-test activity over the committed search (see lp.Result); like
	// LPIterations they are deterministic for any worker count.
	BoundFlips  int
	RatioPasses int
	// WastedLPIterations counts LP iterations spent on speculative node
	// evaluations that the committed search never used (pruned before
	// commit or still in flight at termination). Always 0 with a single
	// worker; with several it depends on scheduling and is therefore — by
	// design — the only nondeterministic iteration count reported.
	WastedLPIterations int
	Runtime            time.Duration
	// Cuts summarizes lazy separation (zero-valued apart from RowsAtRoot
	// when no separators were registered). All of its fields are part of
	// the committed search and therefore deterministic.
	Cuts CutStats
	// AppliedCuts lists, in append order, every cut row the search added to
	// the LP relaxation, so callers can re-validate them independently
	// (internal/certify checks each against the dependency graph).
	AppliedCuts []Cut
	// Columns summarizes column generation (zero-valued apart from
	// ColsAtRoot when no pricers were registered). All of its fields are
	// part of the committed search and therefore deterministic.
	Columns ColumnStats
	// AppliedColumns lists, in append order, every column pricing added to
	// the LP relaxation: the k-th entry is LP column ColsAtRoot+k, so
	// callers can map incumbent values back to pricer payloads (Column.Tag)
	// and re-validate each column independently. Note that X may be shorter
	// than ColsAtRoot+len(AppliedColumns): an incumbent found before later
	// pricing rounds simply does not use the columns appended after it.
	AppliedColumns []Column
}

// node is a branch-and-bound node: a chain of bound overrides on top of the
// root relaxation.
type node struct {
	parent *node
	col    int // branched column (-1 at root)
	lo, hi float64
	depth  int
	bound  float64 // parent LP bound (minimization sense)
	basis  *lp.Basis
	// fac is the parent relaxation's captured LU factorization matching
	// basis; shared read-only between siblings, cloned inside every warm
	// start. Carrying it explicitly (instead of relying on an instance's
	// factorization cache) keeps each node's solve a pure function of the
	// node, which is what the deterministic parallel search relies on.
	fac *sparselu.Factors
	// seq is the committer-assigned creation sequence number, the final
	// heap tie-break; committer-ordered, so identical for any worker count.
	seq int64
	// task is the node's (single) relaxation evaluation, created by the
	// speculating worker or on demand by the committer.
	task *lpTask
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	//lint:allow floateq -- heap ordering needs any consistent total order, not a tolerance
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	if h[i].depth != h[j].depth {
		return h[i].depth > h[j].depth // plunge on ties
	}
	return h[i].seq < h[j].seq // strict deterministic total order
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

type searcher struct {
	prob     *Problem
	inst     *lp.Instance // committer's own instance (heuristic solves only)
	opts     Options
	minimize bool
	ctx      context.Context
	start    time.Time
	eng      *engine

	rootLB, rootUB []float64

	incumbent    []float64
	incumbentMin float64 // minimization-sense incumbent objective
	hasInc       bool

	open       nodeHeap
	nodes      int
	iters      int // committed LP iterations (node relaxations + heuristics)
	taskIters  int // committed LP iterations from node relaxations only
	bflips     int // committed long-step bound flips
	rpasses    int // committed ratio-test breakpoint passes
	nextSeq    int64
	lastWorker int

	// Lazy-cut and pricing state, touched only by the committer. pool is
	// nil when no separators are registered, colPool when no pricers are;
	// applied/appliedCols are the append-only lists of cut rows and priced
	// columns added to the LP, and opOrder is their interleaved commit
	// order (one opCut/opCol byte per append), whose length is the current
	// op epoch the workers replay to.
	pool        *cutPool
	applied     []Cut
	sepRounds   int
	colPool     *columnPool
	appliedCols []Column
	opOrder     []byte
	priceRounds int

	deadline    time.Time
	hasDL       bool
	dlCountdown int // nodes until the next wall-clock deadline check
}

// Solve runs branch and bound. Cancelling ctx stops the search
// cooperatively — within one branch-and-bound node, i.e. at worst one LP
// iteration-checkpoint interval — with StatusCancelled. A nil ctx is
// treated as context.Background().
//
//det:entry
func Solve(ctx context.Context, p *Problem, opts *Options) Result {
	start := time.Now() //lint:allow nondet -- wall-clock Runtime stat only
	if ctx == nil {
		ctx = context.Background()
	}
	o := opts.withDefaults()
	s := &searcher{
		prob:         p,
		inst:         lp.NewInstance(p.LP),
		opts:         o,
		minimize:     p.LP.Sense == lp.Minimize,
		ctx:          ctx,
		start:        start,
		incumbentMin: math.Inf(1),
	}
	n := p.LP.NumCols()
	for len(p.Integer) < n {
		p.Integer = append(p.Integer, false)
	}
	if len(o.Separators) > 0 {
		s.pool = newCutPool(n)
	}
	if len(o.Pricers) > 0 {
		s.colPool = newColumnPool()
	}
	s.rootLB = make([]float64, n)
	s.rootUB = make([]float64, n)
	for j := 0; j < n; j++ {
		s.rootLB[j], s.rootUB[j] = s.inst.ColBounds(j)
	}
	if o.TimeLimit > 0 {
		s.deadline = start.Add(o.TimeLimit)
		s.hasDL = true
		s.dlCountdown = 1 // check wall clock on the very first node
	}

	status := s.run()
	res := Result{
		Status:       status,
		HasSolution:  s.hasInc,
		Nodes:        s.nodes,
		LPIterations: s.iters,
		BoundFlips:   s.bflips,
		RatioPasses:  s.rpasses,
		Runtime:      time.Since(start), //lint:allow nondet -- wall-clock Runtime stat only
	}
	if s.eng != nil {
		// Everything the workers evaluated minus everything the committed
		// search used; the engine has stopped, so the atomic is final.
		res.WastedLPIterations = int(s.eng.taskIters.Load()) - s.taskIters
	}
	res.Cuts = CutStats{RowsAtRoot: p.LP.NumRows()}
	if s.pool != nil {
		res.Cuts.SeparatedRows = len(s.applied)
		res.Cuts.Rounds = s.sepRounds
		res.Cuts.Offered = s.pool.offered
		res.Cuts.PoolHits = s.pool.hits
		res.Cuts.Evicted = s.pool.evicted
		res.AppliedCuts = s.applied
	}
	res.Columns = ColumnStats{ColsAtRoot: n}
	if s.colPool != nil {
		res.Columns.PricedCols = len(s.appliedCols)
		res.Columns.Rounds = s.priceRounds
		res.Columns.Offered = s.colPool.offered
		res.Columns.PoolHits = s.colPool.hits
		res.Columns.Evicted = s.colPool.evicted
		res.AppliedColumns = s.appliedCols
	}
	bound := s.globalBoundMin()
	if s.hasInc {
		res.X = s.incumbent
		res.Obj = s.fromMin(s.incumbentMin)
		res.Gap = relGap(s.incumbentMin, bound)
	} else {
		res.Gap = math.Inf(1)
	}
	res.Bound = s.fromMin(bound)
	if status == StatusOptimal && s.hasInc {
		res.Gap = 0
		res.Bound = res.Obj
	}
	return res
}

// toMin converts an original-sense objective to minimization sense.
func (s *searcher) toMin(v float64) float64 {
	if s.minimize {
		return v
	}
	return -v
}

func (s *searcher) fromMin(v float64) float64 { return s.toMin(v) } // involution

// relGap computes the relative optimality gap between an incumbent and a
// bound (both minimization-sense).
func relGap(inc, bound float64) float64 {
	if math.IsInf(inc, 1) {
		return math.Inf(1)
	}
	d := inc - bound
	if d <= 0 {
		return 0
	}
	den := math.Max(math.Abs(inc), math.Abs(bound))
	if den < gapDenFloor {
		den = gapDenFloor
	}
	return d / den
}

// globalBoundMin is the best minimization-sense bound over all open nodes
// (or the incumbent when the tree is exhausted).
func (s *searcher) globalBoundMin() float64 {
	best := s.incumbentMin
	if len(s.open) > 0 && s.open[0].bound < best {
		best = s.open[0].bound
	}
	return best
}

// timedOutEvery is the stride, in nodes, between wall-clock reads of the
// deadline check: time.Now() costs far more than the surrounding bookkeeping
// on the per-node hot path, so it is hoisted out and consulted every k-th
// node (the very first node always checks). The worst-case overshoot — k−1
// nodes — is bounded tightly anyway because every LP solve enforces the
// same deadline internally at its own iteration checkpoints.
const timedOutEvery = 16

func (s *searcher) timedOut() bool {
	if !s.hasDL {
		return false
	}
	s.dlCountdown--
	if s.dlCountdown > 0 {
		return false
	}
	s.dlCountdown = timedOutEvery
	return time.Now().After(s.deadline) //lint:allow nondet -- deadline enforcement is deliberate wall-clock dependence
}

// cancelled reports whether the solve's context has been cancelled.
func (s *searcher) cancelled() bool { return s.ctx.Err() != nil }

// emitProgress invokes the progress callback with a snapshot of the search.
func (s *searcher) emitProgress(newIncumbent bool) {
	if s.opts.Progress == nil {
		return
	}
	inc := math.NaN()
	if s.hasInc {
		inc = s.fromMin(s.incumbentMin)
	}
	bound := s.globalBoundMin()
	s.opts.Progress(Progress{
		Nodes:        s.nodes,
		Open:         len(s.open),
		LPIterations: s.iters,
		Incumbent:    inc,
		Bound:        s.fromMin(bound),
		Gap:          relGap(s.incumbentMin, bound),
		Elapsed:      time.Since(s.start), //lint:allow nondet -- progress-callback timing stat
		NewIncumbent: newIncumbent,
		Worker:       s.lastWorker,
	})
}

// applyBounds installs the node's bound-override chain onto the committer's
// instance. It reports false when the chain produces an empty interval (the
// node is trivially infeasible).
func (s *searcher) applyBounds(nd *node) bool {
	return applyBoundsOn(s.inst, s.rootLB, s.rootUB, nd)
}

// fractional returns the index of the integer column to branch on, or -1 if
// x is integral. Selection: most fractional, ties broken by larger absolute
// objective coefficient.
func (s *searcher) fractional(x []float64) int {
	best, bestScore := -1, s.opts.IntTol
	for j, isInt := range s.prob.Integer {
		if !isInt {
			continue
		}
		f := math.Abs(x[j] - math.Round(x[j]))
		if f <= s.opts.IntTol {
			continue
		}
		score := 0.5 - math.Abs(f-0.5) // distance from integrality, peak at 0.5
		score += branchObjWeight * math.Abs(s.prob.LP.Obj[j])
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// tryIncumbent records x as the new incumbent if it improves.
func (s *searcher) tryIncumbent(x []float64, objMin float64) bool {
	if objMin >= s.incumbentMin-boundCutoffTol {
		return false
	}
	s.incumbent = append([]float64(nil), x...)
	// Round the integer components exactly.
	for j, isInt := range s.prob.Integer {
		if isInt {
			s.incumbent[j] = math.Round(s.incumbent[j])
		}
	}
	s.incumbentMin = objMin
	s.hasInc = true
	if s.eng != nil {
		// Publish for the workers, which use it to skip dominated
		// speculation. Monotone: tryIncumbent only ever improves it.
		s.eng.publishIncumbent(objMin)
	}
	s.emitProgress(true)
	return true
}

// roundingHeuristic tries to turn the node's fractional relaxation into a
// feasible integral solution. It first fixes all integer columns to their
// rounded LP values at once and re-solves over the continuous columns —
// cheap, and sufficient on near-integral vertices. When that fails (typical
// on symmetric relaxations whose vertices sit at one-half everywhere), it
// falls back to a bounded fix-and-dive pass: fix the integer column closest
// to integrality, re-solve warm, and repeat, letting the LP repair the
// remaining columns after every fix. Both passes run on the committer's own
// instance — whose bounds the caller has already set to the node's box —
// warm-started from the node's final basis and factors, so their outcome is
// as much a pure function of the committed node as the relaxations are. The
// instance bounds are left dirty; every use of s.inst reinstalls bounds
// from scratch.
func (s *searcher) roundingHeuristic(nd *node, res lp.Result) {
	touched := false
	for j, isInt := range s.prob.Integer {
		if !isInt {
			continue
		}
		lo, hi := s.inst.ColBounds(j)
		v := math.Round(res.X[j])
		if v < lo {
			v = math.Ceil(lo)
		}
		if v > hi {
			v = math.Floor(hi)
		}
		if v < lo || v > hi {
			return // no integral point in range
		}
		s.inst.SetColBounds(j, v, v)
		touched = true
	}
	if !touched {
		return
	}
	hres := s.heurSolve(&lp.Options{WarmBasis: res.Basis, WarmFactors: res.Factors})
	if hres.Status == lp.StatusOptimal {
		s.tryIncumbent(hres.X, s.toMin(hres.Obj))
		return
	}
	// The dive is a first-feasible rescue for models whose vertices the
	// simultaneous rounding can never repair (symmetric halves). Once any
	// incumbent exists the search prunes on it and the dive's extra LP
	// solves stop paying for themselves, so it is gated off.
	if !s.hasInc {
		s.diveHeuristic(nd, res)
	}
}

// diveHeuristic is the fix-and-dive fallback of roundingHeuristic: starting
// from the node's relaxation, repeatedly fix the fractional integer column
// closest to integrality (lowest index on ties) to its rounded value and
// re-solve warm, until the relaxation comes back integral, infeasible, or
// the pass budget is spent. One column is fixed per pass, so the LP can
// shift the remaining fractional columns after each fix — which is what
// lets the dive succeed where simultaneous rounding rounds into
// infeasibility.
func (s *searcher) diveHeuristic(nd *node, res lp.Result) {
	if !s.applyBounds(nd) {
		return
	}
	basis, factors := res.Basis, res.Factors
	x := res.X
	for pass := 0; pass < maxDivePasses; pass++ {
		fix, bestFrac := -1, 1.0 // f ≤ 0.5 always; 1.0 admits exact halves
		for j, isInt := range s.prob.Integer {
			if !isInt {
				continue
			}
			f := math.Abs(x[j] - math.Round(x[j]))
			if f <= s.opts.IntTol {
				continue
			}
			if f < bestFrac {
				fix, bestFrac = j, f
			}
		}
		if fix == -1 {
			// Integral already (the caller would have branched otherwise
			// only on the first pass): nothing to dive on.
			return
		}
		lo, hi := s.inst.ColBounds(fix)
		v := math.Round(x[fix])
		if v < lo {
			v = math.Ceil(lo)
		}
		if v > hi {
			v = math.Floor(hi)
		}
		if v < lo || v > hi {
			return
		}
		s.inst.SetColBounds(fix, v, v)
		hres := s.heurSolve(&lp.Options{WarmBasis: basis, WarmFactors: factors, CaptureFactors: true})
		if hres.Status != lp.StatusOptimal {
			// One-level backtrack: rounding to the nearest integer painted
			// the dive into an infeasible corner; the other integer
			// neighbor may still work (typical for link-activation
			// columns, where rounding down severs a flow).
			alt := v + 1
			if math.Round(x[fix]) >= x[fix] {
				alt = v - 1
			}
			if alt < lo || alt > hi {
				return
			}
			s.inst.SetColBounds(fix, alt, alt)
			hres = s.heurSolve(&lp.Options{WarmBasis: basis, WarmFactors: factors, CaptureFactors: true})
			if hres.Status != lp.StatusOptimal {
				return
			}
		}
		if s.fractional(hres.X) == -1 {
			s.tryIncumbent(hres.X, s.toMin(hres.Obj))
			return
		}
		basis, factors, x = hres.Basis, hres.Factors, hres.X
	}
}

// heurSolve runs one heuristic LP on the committer instance with the
// committed iteration accounting applied.
func (s *searcher) heurSolve(lpo *lp.Options) lp.Result {
	lpo.Context = s.ctx
	if s.hasDL {
		lpo.Deadline = s.deadline
	}
	hres := s.inst.Solve(lpo)
	s.iters += hres.Iterations
	s.bflips += hres.BoundFlips
	s.rpasses += hres.RatioPasses
	return hres
}

// run is the committer: the single goroutine that executes the sequential
// branch-and-bound algorithm, delegating every node relaxation to the
// engine's workers. Because the committed decisions — pruning, incumbent
// updates, branching, heap order — depend only on relaxation results that
// are pure functions of their nodes, the committed search is bit-identical
// for any worker count.
func (s *searcher) run() Status {
	e := newEngine(s)
	defer e.stop()

	root := &node{col: -1, bound: math.Inf(-1), seq: s.seq()}
	heap.Push(&s.open, root)

	for len(s.open) > 0 {
		nd := heap.Pop(&s.open).(*node)
		// Dive: after branching, continue immediately with one child, whose
		// relaxation warm-starts from (and is usually already speculatively
		// solved with) the parent's final basis and factors; the sibling
		// goes to the heap. This is the classic best-first + plunging
		// hybrid.
		for nd != nil {
			if s.cancelled() {
				heap.Push(&s.open, nd)
				return StatusCancelled
			}
			if s.timedOut() || (s.opts.NodeLimit > 0 && s.nodes >= s.opts.NodeLimit) {
				// Re-park the dive node so the reported global bound stays
				// valid.
				heap.Push(&s.open, nd)
				return StatusLimit
			}
			// Bound-based pruning against the current incumbent.
			if s.hasInc && nd.bound >= s.incumbentMin-boundCutoffTol {
				break
			}
			if s.hasInc && relGap(s.incumbentMin, math.Min(nd.bound, s.globalBoundMin())) <= s.opts.GapTol {
				return StatusOptimal
			}
			s.nodes++
			if s.opts.ProgressEvery > 0 && s.nodes%s.opts.ProgressEvery == 0 {
				s.emitProgress(false)
			}
			// Install the node's box on the committer instance too: it
			// detects trivially infeasible chains and leaves the bounds in
			// place for a potential heuristic run below.
			if !s.applyBounds(nd) {
				break // empty bound interval: infeasible by construction
			}
			// Resolve the relaxation, interleaving lazy-cut separation
			// rounds when separators are registered (see cuts.go); the
			// committed iteration accounting happens inside.
			t, ok := s.solveSeparated(nd)
			if !ok {
				heap.Push(&s.open, nd)
				return StatusCancelled
			}
			res := t.res
			switch res.Status {
			case lp.StatusInfeasible:
				nd = nil
				continue
			case lp.StatusUnbounded:
				if nd.col == -1 {
					return StatusUnbounded
				}
				nd = nil // should not happen below the root; treat as cut off
				continue
			case lp.StatusIterLimit, lp.StatusNumeric:
				if s.cancelled() {
					heap.Push(&s.open, nd)
					return StatusCancelled
				}
				// The node's relaxation did not converge (or failed
				// numerically); the search can no longer prove optimality,
				// so stop with what we have.
				return StatusLimit
			}
			objMin := s.toMin(res.Obj)
			if s.hasInc && objMin >= s.incumbentMin-boundCutoffTol {
				break // dominated
			}
			br := t.children // created by the solving worker; nil iff integral
			if br == nil {
				s.tryIncumbent(res.X, objMin)
				break
			}
			if s.opts.HeuristicEvery > 0 && (s.nodes == 1 || s.nodes%s.opts.HeuristicEvery == 0) {
				s.roundingHeuristic(nd, res)
			}
			// Sequence numbers are assigned here, in commit order, so the
			// heap tie-break is identical for any worker count; park the
			// non-dive child on the heap.
			br.dive.seq = s.seq()
			br.park.seq = s.seq()
			heap.Push(&s.open, br.park)
			nd = br.dive
		}
	}
	if s.hasInc {
		return StatusOptimal
	}
	return StatusInfeasible
}

// seq returns the next committer-assigned node sequence number.
func (s *searcher) seq() int64 {
	v := s.nextSeq
	s.nextSeq++
	return v
}
