// Package mip implements a mixed-integer programming solver: LP-relaxation
// based branch-and-bound with best-first node selection, warm-started
// dual-simplex re-solves, a rounding primal heuristic and time/node/gap
// limits. It plays the role Gurobi plays in the paper's evaluation.
package mip

import (
	"container/heap"
	"context"
	"math"
	"time"

	"tvnep/internal/lp"
	"tvnep/internal/numtol"
)

const (
	// boundCutoffTol is the margin by which a node's relaxation bound (or
	// a candidate incumbent) must beat the incumbent to stay interesting;
	// it absorbs LP-level noise in the bound values.
	boundCutoffTol = 1e-9
	// gapDenFloor keeps the relative-gap denominator away from zero for
	// near-zero objectives.
	gapDenFloor = 1e-10
	// branchObjWeight is the tiny weight mixing objective magnitude into
	// the fractionality branching score as a deterministic tie-break.
	branchObjWeight = 1e-6
)

// Problem couples an LP with integrality markers.
type Problem struct {
	LP      *lp.Problem
	Integer []bool // len == LP.NumCols(); true → column must be integral
}

// NewProblem wraps an LP builder; mark integer columns via SetInteger.
func NewProblem(p *lp.Problem) *Problem {
	return &Problem{LP: p, Integer: make([]bool, p.NumCols())}
}

// SetInteger marks column j as integral. The Integer slice is grown on
// demand so columns may be added to the LP after construction.
func (p *Problem) SetInteger(j int) {
	for len(p.Integer) <= j {
		p.Integer = append(p.Integer, false)
	}
	p.Integer[j] = true
}

// Status reports the outcome of a MIP solve.
type Status int

const (
	// StatusOptimal means the incumbent is proven optimal within GapTol.
	StatusOptimal Status = iota
	// StatusInfeasible means no integral solution exists.
	StatusInfeasible
	// StatusUnbounded means the relaxation (and thus the MIP, if feasible)
	// is unbounded.
	StatusUnbounded
	// StatusLimit means a time/node/iteration limit stopped the search; an
	// incumbent may or may not exist (check HasSolution).
	StatusLimit
	// StatusCancelled means the solve's context was cancelled before the
	// search concluded; an incumbent may or may not exist.
	StatusCancelled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusLimit:
		return "limit"
	case StatusCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Progress is a snapshot of the branch-and-bound search handed to the
// Options.Progress callback. Incumbent and Bound are expressed in the
// problem's original optimization sense; Incumbent is NaN while no integral
// solution exists.
type Progress struct {
	Nodes        int
	Open         int // open (unexplored) nodes
	LPIterations int
	Incumbent    float64
	Bound        float64
	Gap          float64
	Elapsed      time.Duration
	// NewIncumbent marks callbacks fired because a better integral solution
	// was just found (otherwise the callback is periodic).
	NewIncumbent bool
}

// Options tunes the branch-and-bound search.
type Options struct {
	TimeLimit time.Duration // 0 → none
	NodeLimit int           // 0 → none
	GapTol    float64       // relative optimality gap, default 1e-6
	IntTol    float64       // integrality tolerance, default 1e-6
	// HeuristicEvery runs the rounding heuristic at every k-th node
	// (default 50; 0 disables except at the root).
	HeuristicEvery int
	// Progress, when non-nil, is invoked on every new incumbent and every
	// ProgressEvery nodes. Callbacks run synchronously on the solving
	// goroutine; keep them cheap.
	Progress func(Progress)
	// ProgressEvery is the periodic callback interval in nodes (default
	// 100; < 0 disables periodic callbacks, leaving incumbent ones).
	ProgressEvery int
}

func (o *Options) withDefaults() Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.GapTol <= 0 {
		out.GapTol = numtol.MIPGapTol
	}
	if out.IntTol <= 0 {
		out.IntTol = numtol.MIPIntTol
	}
	if out.HeuristicEvery == 0 {
		out.HeuristicEvery = 50
	}
	if out.ProgressEvery == 0 {
		out.ProgressEvery = 100
	}
	return out
}

// Result reports the outcome of a solve. Obj, Bound and Gap are expressed in
// the problem's original optimization sense.
type Result struct {
	Status       Status
	HasSolution  bool
	Obj          float64   // incumbent objective (valid if HasSolution)
	Bound        float64   // best proven bound on the optimum
	Gap          float64   // relative gap; +Inf when no incumbent exists
	X            []float64 // incumbent solution
	Nodes        int
	LPIterations int
	Runtime      time.Duration
}

// node is a branch-and-bound node: a chain of bound overrides on top of the
// root relaxation.
type node struct {
	parent *node
	col    int // branched column (-1 at root)
	lo, hi float64
	depth  int
	bound  float64 // parent LP bound (minimization sense)
	basis  *lp.Basis
}

type nodeHeap []*node

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	//lint:allow floateq -- heap ordering needs any consistent total order, not a tolerance
	if h[i].bound != h[j].bound {
		return h[i].bound < h[j].bound
	}
	return h[i].depth > h[j].depth // plunge on ties
}
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

type searcher struct {
	prob     *Problem
	inst     *lp.Instance
	opts     Options
	minimize bool
	ctx      context.Context
	start    time.Time

	rootLB, rootUB []float64

	incumbent    []float64
	incumbentMin float64 // minimization-sense incumbent objective
	hasInc       bool

	open  nodeHeap
	nodes int
	iters int

	deadline time.Time
	hasDL    bool
}

// Solve runs branch and bound. Cancelling ctx stops the search
// cooperatively — within one branch-and-bound node, i.e. at worst one LP
// iteration-checkpoint interval — with StatusCancelled. A nil ctx is
// treated as context.Background().
func Solve(ctx context.Context, p *Problem, opts *Options) Result {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	o := opts.withDefaults()
	s := &searcher{
		prob:         p,
		inst:         lp.NewInstance(p.LP),
		opts:         o,
		minimize:     p.LP.Sense == lp.Minimize,
		ctx:          ctx,
		start:        start,
		incumbentMin: math.Inf(1),
	}
	n := p.LP.NumCols()
	for len(p.Integer) < n {
		p.Integer = append(p.Integer, false)
	}
	s.rootLB = make([]float64, n)
	s.rootUB = make([]float64, n)
	for j := 0; j < n; j++ {
		s.rootLB[j], s.rootUB[j] = s.inst.ColBounds(j)
	}
	if o.TimeLimit > 0 {
		s.deadline = start.Add(o.TimeLimit)
		s.hasDL = true
	}

	status := s.run()
	res := Result{
		Status:       status,
		HasSolution:  s.hasInc,
		Nodes:        s.nodes,
		LPIterations: s.iters,
		Runtime:      time.Since(start),
	}
	bound := s.globalBoundMin()
	if s.hasInc {
		res.X = s.incumbent
		res.Obj = s.fromMin(s.incumbentMin)
		res.Gap = relGap(s.incumbentMin, bound)
	} else {
		res.Gap = math.Inf(1)
	}
	res.Bound = s.fromMin(bound)
	if status == StatusOptimal && s.hasInc {
		res.Gap = 0
		res.Bound = res.Obj
	}
	return res
}

// toMin converts an original-sense objective to minimization sense.
func (s *searcher) toMin(v float64) float64 {
	if s.minimize {
		return v
	}
	return -v
}

func (s *searcher) fromMin(v float64) float64 { return s.toMin(v) } // involution

// relGap computes the relative optimality gap between an incumbent and a
// bound (both minimization-sense).
func relGap(inc, bound float64) float64 {
	if math.IsInf(inc, 1) {
		return math.Inf(1)
	}
	d := inc - bound
	if d <= 0 {
		return 0
	}
	den := math.Max(math.Abs(inc), math.Abs(bound))
	if den < gapDenFloor {
		den = gapDenFloor
	}
	return d / den
}

// globalBoundMin is the best minimization-sense bound over all open nodes
// (or the incumbent when the tree is exhausted).
func (s *searcher) globalBoundMin() float64 {
	best := s.incumbentMin
	if len(s.open) > 0 && s.open[0].bound < best {
		best = s.open[0].bound
	}
	return best
}

func (s *searcher) timedOut() bool { return s.hasDL && time.Now().After(s.deadline) }

// cancelled reports whether the solve's context has been cancelled.
func (s *searcher) cancelled() bool { return s.ctx.Err() != nil }

// emitProgress invokes the progress callback with a snapshot of the search.
func (s *searcher) emitProgress(newIncumbent bool) {
	if s.opts.Progress == nil {
		return
	}
	inc := math.NaN()
	if s.hasInc {
		inc = s.fromMin(s.incumbentMin)
	}
	bound := s.globalBoundMin()
	s.opts.Progress(Progress{
		Nodes:        s.nodes,
		Open:         len(s.open),
		LPIterations: s.iters,
		Incumbent:    inc,
		Bound:        s.fromMin(bound),
		Gap:          relGap(s.incumbentMin, bound),
		Elapsed:      time.Since(s.start),
		NewIncumbent: newIncumbent,
	})
}

// applyBounds installs the node's bound-override chain onto the instance.
// It reports false when the chain produces an empty interval (the node is
// trivially infeasible).
func (s *searcher) applyBounds(nd *node) bool {
	n := len(s.rootLB)
	for j := 0; j < n; j++ {
		s.inst.SetColBounds(j, s.rootLB[j], s.rootUB[j])
	}
	// Walk the chain root→leaf so deeper overrides win.
	var chain []*node
	for c := nd; c != nil && c.col >= 0; c = c.parent {
		chain = append(chain, c)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		lo, hi := s.inst.ColBounds(c.col)
		if c.lo > lo {
			lo = c.lo
		}
		if c.hi < hi {
			hi = c.hi
		}
		if lo > hi {
			return false
		}
		s.inst.SetColBounds(c.col, lo, hi)
	}
	return true
}

// fractional returns the index of the integer column to branch on, or -1 if
// x is integral. Selection: most fractional, ties broken by larger absolute
// objective coefficient.
func (s *searcher) fractional(x []float64) int {
	best, bestScore := -1, s.opts.IntTol
	for j, isInt := range s.prob.Integer {
		if !isInt {
			continue
		}
		f := math.Abs(x[j] - math.Round(x[j]))
		if f <= s.opts.IntTol {
			continue
		}
		score := 0.5 - math.Abs(f-0.5) // distance from integrality, peak at 0.5
		score += branchObjWeight * math.Abs(s.prob.LP.Obj[j])
		if score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// tryIncumbent records x as the new incumbent if it improves.
func (s *searcher) tryIncumbent(x []float64, objMin float64) bool {
	if objMin >= s.incumbentMin-boundCutoffTol {
		return false
	}
	s.incumbent = append([]float64(nil), x...)
	// Round the integer components exactly.
	for j, isInt := range s.prob.Integer {
		if isInt {
			s.incumbent[j] = math.Round(s.incumbent[j])
		}
	}
	s.incumbentMin = objMin
	s.hasInc = true
	s.emitProgress(true)
	return true
}

// roundingHeuristic fixes all integer columns to their rounded LP values and
// re-solves the LP over the continuous columns. On success the result is a
// feasible integral solution.
func (s *searcher) roundingHeuristic(nd *node, x []float64) {
	savedLB := make([]float64, len(x))
	savedUB := make([]float64, len(x))
	touched := false
	for j, isInt := range s.prob.Integer {
		if !isInt {
			continue
		}
		lo, hi := s.inst.ColBounds(j)
		savedLB[j], savedUB[j] = lo, hi
		v := math.Round(x[j])
		if v < lo {
			v = math.Ceil(lo)
		}
		if v > hi {
			v = math.Floor(hi)
		}
		if v < lo || v > hi {
			// No integral point in range; restore and abort.
			for k := 0; k < j; k++ {
				if s.prob.Integer[k] {
					s.inst.SetColBounds(k, savedLB[k], savedUB[k])
				}
			}
			return
		}
		s.inst.SetColBounds(j, v, v)
		touched = true
	}
	if touched {
		lpo := lp.Options{WarmBasis: nd.basis, Context: s.ctx}
		if s.hasDL {
			lpo.Deadline = s.deadline
		}
		res := s.inst.Solve(&lpo)
		s.iters += res.Iterations
		if res.Status == lp.StatusOptimal {
			s.tryIncumbent(res.X, s.toMin(res.Obj))
		}
	}
	for j, isInt := range s.prob.Integer {
		if isInt {
			s.inst.SetColBounds(j, savedLB[j], savedUB[j])
		}
	}
}

func (s *searcher) run() Status {
	root := &node{col: -1, bound: math.Inf(-1)}
	heap.Push(&s.open, root)

	for len(s.open) > 0 {
		nd := heap.Pop(&s.open).(*node)
		// Dive: after branching, continue immediately with one child while
		// the LP instance's basis-inverse cache is hot; the sibling goes to
		// the heap. This is the classic best-first + plunging hybrid.
		for nd != nil {
			if s.cancelled() {
				heap.Push(&s.open, nd)
				return StatusCancelled
			}
			if s.timedOut() || (s.opts.NodeLimit > 0 && s.nodes >= s.opts.NodeLimit) {
				// Re-park the dive node so the reported global bound stays
				// valid.
				heap.Push(&s.open, nd)
				return StatusLimit
			}
			// Bound-based pruning against the current incumbent.
			if s.hasInc && nd.bound >= s.incumbentMin-boundCutoffTol {
				break
			}
			if s.hasInc && relGap(s.incumbentMin, math.Min(nd.bound, s.globalBoundMin())) <= s.opts.GapTol {
				return StatusOptimal
			}
			s.nodes++
			if s.opts.ProgressEvery > 0 && s.nodes%s.opts.ProgressEvery == 0 {
				s.emitProgress(false)
			}
			if !s.applyBounds(nd) {
				break // empty bound interval: infeasible by construction
			}
			var lpo lp.Options
			if nd.basis != nil {
				lpo.WarmBasis = nd.basis
			}
			if s.hasDL {
				lpo.Deadline = s.deadline
			}
			lpo.Context = s.ctx
			res := s.inst.Solve(&lpo)
			s.iters += res.Iterations
			switch res.Status {
			case lp.StatusInfeasible:
				nd = nil
				continue
			case lp.StatusUnbounded:
				if nd.col == -1 {
					return StatusUnbounded
				}
				nd = nil // should not happen below the root; treat as cut off
				continue
			case lp.StatusIterLimit, lp.StatusNumeric:
				if s.cancelled() {
					heap.Push(&s.open, nd)
					return StatusCancelled
				}
				// The node's relaxation did not converge (or failed
				// numerically); the search can no longer prove optimality,
				// so stop with what we have.
				return StatusLimit
			}
			objMin := s.toMin(res.Obj)
			if s.hasInc && objMin >= s.incumbentMin-boundCutoffTol {
				break // dominated
			}
			branchCol := s.fractional(res.X)
			if branchCol == -1 {
				s.tryIncumbent(res.X, objMin)
				break
			}
			if s.opts.HeuristicEvery > 0 && (s.nodes == 1 || s.nodes%s.opts.HeuristicEvery == 0) {
				s.roundingHeuristic(nd, res.X) // restores node bounds internally
			}
			v := res.X[branchCol]
			down := &node{
				parent: nd, col: branchCol,
				lo: math.Inf(-1), hi: math.Floor(v),
				depth: nd.depth + 1, bound: objMin, basis: res.Basis,
			}
			up := &node{
				parent: nd, col: branchCol,
				lo: math.Ceil(v), hi: math.Inf(1),
				depth: nd.depth + 1, bound: objMin, basis: res.Basis,
			}
			// Dive towards the side the fractional value leans to; park the
			// other child on the heap.
			dive, park := down, up
			if v-math.Floor(v) > 0.5 {
				dive, park = up, down
			}
			heap.Push(&s.open, park)
			nd = dive
		}
	}
	if s.hasInc {
		return StatusOptimal
	}
	return StatusInfeasible
}
