package mip

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"tvnep/internal/lp"
	"tvnep/internal/numtol"
)

// colGenProblem builds a randomized capacity-release model with a genuine
// master/pricing split: binary facilities y_j (static, integer) pay an
// opening cost f_j and release capacity u_j on their linking row
// Σ_p a_{jp}·λ_p − u_j·y_j ≤ 0, while continuous pattern columns λ_p earn a
// profit over 1–3 facilities' capacity. The LP relaxation opens facilities
// fractionally to exactly match pattern usage, so branch and bound has to
// work for its optimum — at different y fixings different patterns price in,
// which is what exercises pricing in the tree, not just at the root.
//
// When full is true every pattern is emitted as a static LP column and the
// returned lazy list is empty; otherwise the LP holds only the facilities
// and every pattern comes back as a lazy Column for a Pricer to offer.
func colGenProblem(seed int64, nFac, nPat int, full bool) (*Problem, []Column) {
	rng := rand.New(rand.NewSource(seed))
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	caps := make([]float64, nFac)
	for j := 0; j < nFac; j++ {
		caps[j] = 2 + rng.Float64()*6
		p.AddCol(-(1 + rng.Float64()*3), 0, 1, "") // opening cost
	}
	var pats []Column
	for q := 0; q < nPat; q++ {
		k := 1 + rng.Intn(3)
		seen := map[int]bool{}
		var idx []int32
		var val []float64
		for len(idx) < k {
			j := rng.Intn(nFac)
			if seen[j] {
				continue
			}
			seen[j] = true
			idx = append(idx, int32(j))
			val = append(val, 0.5+rng.Float64()*1.5)
		}
		pats = append(pats, Column{Idx: idx, Val: val, LB: 0,
			UB: 1 + rng.Float64()*3, Obj: 1 + rng.Float64()*4})
	}
	var lazy []Column
	patCol := make([]int32, len(pats))
	for q, c := range pats {
		if full {
			patCol[q] = int32(p.AddCol(c.Obj, c.LB, c.UB, ""))
		} else {
			lazy = append(lazy, c)
		}
	}
	for j := 0; j < nFac; j++ {
		idx := []int32{int32(j)}
		val := []float64{-caps[j]}
		if full {
			for q, c := range pats {
				for t, i := range c.Idx {
					if int(i) == j {
						idx = append(idx, patCol[q])
						val = append(val, c.Val[t])
					}
				}
			}
		}
		p.AddLE(idx, val, 0, "link")
	}
	mp := NewProblem(p)
	for j := 0; j < nFac; j++ {
		mp.SetInteger(j)
	}
	return mp, lazy
}

// patternPricer is the test Pricer: it holds the full formulation's lazy
// pattern columns and returns the ones with improving reduced cost at the
// dual point — a pure function of duals, as the contract requires. Appended
// columns are re-offered freely; the pool's dedup absorbs them.
type patternPricer struct {
	cols     []Column
	minimize bool
}

func (pp *patternPricer) Price(duals, x []float64) []Column {
	var out []Column
	for _, c := range pp.cols {
		d := lp.CandidateReducedCost(c.Obj, c.Idx, c.Val, duals)
		if pp.minimize {
			d = -d
		}
		if d > numtol.PriceRedTol {
			out = append(out, c)
		}
	}
	return out
}

func TestColumnPoolDedupSelectEvict(t *testing.T) {
	cp := newColumnPool()
	// Same column offered three ways (permuted, duplicated entries) must
	// pool exactly once.
	cp.offer(Column{Idx: []int32{0, 1}, Val: []float64{1, 2}, UB: 1, Obj: 5, Name: "a"}, 4)
	cp.offer(Column{Idx: []int32{1, 0}, Val: []float64{2, 1}, UB: 1, Obj: 5, Name: "a-permuted"}, 4)
	cp.offer(Column{Idx: []int32{0, 1, 1}, Val: []float64{1, 3, -1}, UB: 1, Obj: 5, Name: "a-split"}, 4)
	if len(cp.entries) != 1 || cp.hits != 2 || cp.offered != 3 {
		t.Fatalf("dedup: %d entries, %d hits, %d offered", len(cp.entries), cp.hits, cp.offered)
	}
	// A zero-sum column canonicalizes to nothing and is dropped.
	cp.offer(Column{Idx: []int32{2, 2}, Val: []float64{1, -1}, UB: 1, Obj: 1, Name: "empty"}, 4)
	if len(cp.entries) != 1 {
		t.Fatalf("coefficient-free column was pooled")
	}
	// Same coefficients but different objective = a different variable.
	cp.offer(Column{Idx: []int32{0, 1}, Val: []float64{1, 2}, UB: 1, Obj: 7, Name: "b"}, 4)
	// A column that does not price in at the test duals is pooled but never
	// selected.
	cp.offer(Column{Idx: []int32{3}, Val: []float64{10}, UB: 1, Obj: 1, Name: "dull"}, 4)
	if len(cp.entries) != 3 {
		t.Fatalf("pool size %d, want 3", len(cp.entries))
	}

	// Maximization sense: reduced cost obj − yᵀa; duals zero on rows 0,1 and
	// large on row 3 → "b" (7) beats "a" (5), "dull" prices out.
	duals := []float64{0, 0, 0, 5}
	sel := cp.selectImproving(duals, false, 10)
	if len(sel) != 2 || sel[0].col.Name != "b" || sel[1].col.Name != "a" {
		t.Fatalf("selection order wrong: %d selected", len(sel))
	}
	if got := cp.selectImproving(duals, false, 1); len(got) != 1 || got[0].col.Name != "b" {
		t.Fatalf("batch limit not honored")
	}
	sel[0].added = true
	if got := cp.selectImproving(duals, false, 10); len(got) != 1 || got[0].col.Name != "a" {
		t.Fatalf("added column re-selected")
	}
	// Minimization sense flips the test: obj 5 now needs yᵀa > 5 to improve.
	if got := cp.selectImproving(duals, true, 10); len(got) != 1 || got[0].col.Name != "dull" {
		t.Fatalf("minimize-sense selection wrong")
	}

	// Aging: mark "a" added too, then run rounds where only "dull" keeps
	// pricing in (minimize sense); under maximize duals it never improves,
	// so age it out with maximize selections.
	sel = cp.selectImproving(duals, false, 10)
	sel[0].added = true // "a"
	for r := 0; r < 4; r++ {
		cp.selectImproving(duals, false, 10)
		cp.endRound(3)
	}
	names := map[string]bool{}
	for _, ce := range cp.entries {
		names[ce.col.Name] = true
	}
	if names["dull"] || !names["a"] || !names["b"] || cp.evicted != 1 {
		t.Fatalf("eviction wrong: entries %v, evicted %d", names, cp.evicted)
	}
	// An evicted column may be offered (and therefore appended) again.
	cp.offer(Column{Idx: []int32{3}, Val: []float64{10}, UB: 1, Obj: 1, Name: "dull"}, 4)
	if len(cp.entries) != 3 {
		t.Fatalf("re-offer after eviction did not pool")
	}
}

func TestColumnPoolRejectsOutOfRange(t *testing.T) {
	cp := newColumnPool()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range column row did not panic")
		}
	}()
	cp.offer(Column{Idx: []int32{5}, Val: []float64{1}, UB: 1, Obj: 1, Name: "bad"}, 2)
}

// TestPricingMatchesStaticSolve is the correctness anchor: solving the
// restricted master with a Pricer must reach exactly the optimum of the full
// statically built formulation, because pricing to convergence closes the
// restricted relaxation at every node. Checked across shapes and both
// optimization senses.
func TestPricingMatchesStaticSolve(t *testing.T) {
	shapes := []struct {
		seed       int64
		nFac, nPat int
	}{
		{3, 4, 12}, {7, 5, 20}, {11, 6, 30}, {19, 3, 8}, {23, 8, 40},
	}
	sawTreeCols := false
	for _, sh := range shapes {
		full, _ := colGenProblem(sh.seed, sh.nFac, sh.nPat, true)
		restricted, lazy := colGenProblem(sh.seed, sh.nFac, sh.nPat, false)
		want := Solve(context.Background(), full, nil)
		if want.Status != StatusOptimal {
			t.Fatalf("seed %d: full status %v", sh.seed, want.Status)
		}
		got := Solve(context.Background(), restricted, &Options{
			Pricers: []Pricer{&patternPricer{cols: lazy}},
		})
		if got.Status != StatusOptimal {
			t.Fatalf("seed %d: priced status %v", sh.seed, got.Status)
		}
		if d := math.Abs(got.Obj - want.Obj); d > 1e-6*(1+math.Abs(want.Obj)) {
			t.Errorf("seed %d: priced obj %v differs from static %v", sh.seed, got.Obj, want.Obj)
		}
		if got.Columns.ColsAtRoot != restricted.LP.NumCols() {
			t.Errorf("seed %d: ColsAtRoot %d, want %d", sh.seed, got.Columns.ColsAtRoot, restricted.LP.NumCols())
		}
		if got.Columns.PricedCols != len(got.AppliedColumns) {
			t.Errorf("seed %d: PricedCols %d != len(AppliedColumns) %d",
				sh.seed, got.Columns.PricedCols, len(got.AppliedColumns))
		}
		if got.Columns.PricedCols == 0 {
			t.Errorf("seed %d: no column priced in; the shape no longer exercises pricing", sh.seed)
		}
		if got.Columns.Rounds > 1 {
			sawTreeCols = true
		}
		// Validity half of the Pricer contract, end to end: every appended
		// column must be one of the full formulation's pattern columns.
		known := map[string]bool{}
		for _, c := range lazy {
			if canon, ok := canonicalColumn(c); ok {
				known[colKey(canon)] = true
			}
		}
		for _, c := range got.AppliedColumns {
			if !known[colKey(c)] {
				t.Errorf("seed %d: applied column %q is not a formulation column", sh.seed, c.Name)
			}
		}
	}
	if !sawTreeCols {
		t.Error("no shape needed more than one pricing round; the cases are too easy")
	}
}

// TestPricingSmallBatchConverges forces many rounds through PriceBatch=1 and
// still must land on the same optimum, with one round per appended column.
func TestPricingSmallBatchConverges(t *testing.T) {
	full, _ := colGenProblem(7, 5, 20, true)
	restricted, lazy := colGenProblem(7, 5, 20, false)
	want := Solve(context.Background(), full, nil)
	got := Solve(context.Background(), restricted, &Options{
		Pricers:    []Pricer{&patternPricer{cols: lazy}},
		PriceBatch: 1,
	})
	if got.Status != StatusOptimal {
		t.Fatalf("status %v", got.Status)
	}
	if d := math.Abs(got.Obj - want.Obj); d > 1e-6*(1+math.Abs(want.Obj)) {
		t.Errorf("obj %v differs from static %v", got.Obj, want.Obj)
	}
	if got.Columns.Rounds != got.Columns.PricedCols {
		t.Errorf("batch=1 appended %d columns in %d rounds", got.Columns.PricedCols, got.Columns.Rounds)
	}
}

// TestParallelDeterminismWithPricing extends the bit-identical guarantee to
// column generation, alone and interleaved with lazy cuts: pricing runs only
// on the committer and workers replay the committed op log in order, so the
// committed result, the column trajectory and the cut trajectory must all be
// independent of the worker count.
func TestParallelDeterminismWithPricing(t *testing.T) {
	shapes := []struct {
		name       string
		seed       int64
		nFac, nPat int
		withCuts   bool
	}{
		{"pricing", 7, 5, 20, false},
		{"pricing-wide", 23, 8, 40, false},
		{"pricing+cuts", 11, 6, 30, true},
	}
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			var base Result
			for _, w := range []int{1, 2, 4, 8} {
				prob, lazy := colGenProblem(sh.seed, sh.nFac, sh.nPat, false)
				o := &Options{
					Workers: w,
					Pricers: []Pricer{&patternPricer{cols: lazy}},
				}
				if sh.withCuts {
					o.Separators = []Separator{&coverSeparator{prob: prob}}
				}
				res := Solve(context.Background(), prob, o)
				if res.Status != StatusOptimal {
					t.Fatalf("workers=%d: status %v", w, res.Status)
				}
				if w == 1 {
					base = res
					continue
				}
				assertBitIdentical(t, sh.name, base, res, 1, w)
				if res.Columns != base.Columns {
					t.Errorf("column stats differ between 1 and %d workers: %+v vs %+v", w, base.Columns, res.Columns)
				}
				if !colsEqual(res.AppliedColumns, base.AppliedColumns) {
					t.Errorf("applied columns differ between 1 and %d workers", w)
				}
				if res.Cuts != base.Cuts {
					t.Errorf("cut stats differ between 1 and %d workers", w)
				}
				if !reflect.DeepEqual(res.AppliedCuts, base.AppliedCuts) {
					t.Errorf("applied cuts differ between 1 and %d workers", w)
				}
			}
		})
	}
}

// colsEqual compares applied-column lists entry by entry on the exact key.
func colsEqual(a, b []Column) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if colKey(a[k]) != colKey(b[k]) {
			return false
		}
	}
	return true
}
