package mip

// Column generation, the column-side mirror of the lazy-cut pipeline in
// cuts.go. Instead of emitting every variable into the root LP up front,
// callers register Pricer callbacks that examine the relaxation's dual values
// and return columns with improving reduced cost. The searcher keeps the
// returned columns in a deterministic column pool (deduplicated by an exact
// canonical-column key), appends the best-priced batch to the LP, and
// hot-restarts the same node from its own final basis — the appended columns
// ride the basis remap + primal restart in internal/lp, so a pricing round
// costs a handful of primal pivots, not a refactorization.
//
// Pricing runs only on the serial committer, and — unlike cut separation,
// which is an optional strengthening — it runs to convergence at every node:
// a restricted master's objective is only a valid branch-and-bound node bound
// once no column prices in, so the per-node round cap exists purely as a
// safety net against a non-converging Pricer. Workers learn about committed
// columns (and cut rows) through the atomically published append-only op log
// (see engine.go) and replay them onto their own instances in committed
// order before solving, so the committed search stays bit-identical for any
// worker count.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"tvnep/internal/lp"
	"tvnep/internal/numtol"
)

// Column is one priced structural column: coefficients Val over the rows Idx
// of the LP relaxation, bounds [LB, UB] and objective coefficient Obj, all in
// the problem's original sense. Name is a diagnostic label carried through to
// certification; Tag carries pricer-private payload (e.g. the substrate path
// a path-flow column encodes) through to the solution and its certificates.
type Column struct {
	Idx []int32
	Val []float64
	LB  float64
	UB  float64
	Obj float64

	Name string
	Tag  interface{}
}

// Pricer generates columns with improving reduced cost at a relaxation
// optimum. The contract has two parts, both load-bearing:
//
//   - Validity: every returned column must be a genuine variable of the full
//     (unrestricted) formulation — adding it may only ever enlarge the
//     feasible region toward the true relaxation, never change the problem.
//     The search prunes on node bounds taken from priced-out relaxations,
//     which is only sound when the full formulation is exactly the closure
//     of the restricted master under Price.
//   - Determinism: Price must be a pure function of (duals, x) (same point,
//     same columns, same order). The committer calls it exactly once per
//     pricing round on deterministic points; any internal randomness or
//     iteration over unordered maps would break the bit-identical-across-
//     workers guarantee.
//
// duals is lp.Result.Duals at the node optimum (length = current LP rows,
// original sense); x is the relaxation point (length = current LP columns).
// Price may return columns that do not price in (they are pooled for later
// rounds) and may return duplicates (the pool deduplicates), but it must not
// mutate its arguments. A pricer that can prove no improving column exists
// must eventually return none, or the round cap stops the node's pricing
// with an invalid bound.
type Pricer interface {
	Price(duals []float64, x []float64) []Column
}

// ColumnStats summarizes the pricing work of one solve.
type ColumnStats struct {
	// ColsAtRoot is the number of structural LP columns the root relaxation
	// started with (the statically emitted variables).
	ColsAtRoot int
	// PricedCols is the number of columns appended by pricing over the whole
	// search.
	PricedCols int
	// Rounds is the number of pricing rounds that appended at least one
	// column.
	Rounds int
	// Offered is the total number of columns returned by pricers (before
	// deduplication).
	Offered int
	// PoolHits counts offered columns that were already pooled — the dedup
	// rate is PoolHits/Offered.
	PoolHits int
	// Evicted counts pooled-but-never-appended columns dropped by age-based
	// eviction.
	Evicted int
}

// colKey returns the exact canonical key of an already-canonicalized column:
// the little-endian concatenation of (row, coefficient-bits) pairs plus the
// bound and objective bits. Two columns share a key iff they are the same
// variable, so the pool's dedup can never be fooled by a hash collision.
func colKey(c Column) string {
	buf := make([]byte, 0, 12*len(c.Idx)+24)
	var b [8]byte
	for k, i := range c.Idx {
		binary.LittleEndian.PutUint32(b[:4], uint32(i))
		buf = append(buf, b[:4]...)
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.Val[k]))
		buf = append(buf, b[:8]...)
	}
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.LB))
	buf = append(buf, b[:8]...)
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.UB))
	buf = append(buf, b[:8]...)
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.Obj))
	buf = append(buf, b[:8]...)
	return string(buf)
}

// canonicalColumn sorts the column by row index, merges duplicate entries and
// drops exact-zero coefficients, mirroring lp.AppendColumn's canonical form
// so that the pool key and the appended column agree. ok is false for
// columns that canonicalize to nothing: a coefficient-free column can never
// price in (its reduced cost is its objective, which a correct pricer only
// offers when coupling rows exist).
func canonicalColumn(c Column) (Column, bool) {
	idx := append([]int32(nil), c.Idx...)
	val := append([]float64(nil), c.Val...)
	sort.Sort(&rowByCol{idx: idx, val: val})
	out := Column{LB: c.LB, UB: c.UB, Obj: c.Obj, Name: c.Name, Tag: c.Tag}
	for k := 0; k < len(idx); {
		i, v := idx[k], val[k]
		k++
		for k < len(idx) && idx[k] == i {
			v += val[k]
			k++
		}
		if v == 0 {
			continue
		}
		out.Idx = append(out.Idx, i)
		out.Val = append(out.Val, v)
	}
	return out, len(out.Idx) > 0
}

// colEntry is one pooled column plus its selection and eviction bookkeeping,
// the column-side twin of poolEntry.
type colEntry struct {
	col Column
	// seq is the deterministic insertion order, the final tie-break of the
	// reduced-cost sort.
	seq int
	// added marks columns already appended to the LP; they stay pooled (so a
	// pricer re-offering them is a cheap pool hit) but are never selected or
	// evicted again.
	added bool
	// lastImproving is the pricing round that last saw this column price in
	// (its insertion round initially); age-based eviction keys off it.
	lastImproving int
	// score is scratch state: the sense-adjusted improving reduced cost at
	// the round's dual point (positive = improving).
	score float64
}

// columnPool is the committer-private store of offered columns. All
// operations are deterministic: iteration follows insertion order, selection
// sorts by (improving reduced cost desc, insertion seq asc), and the dedup
// key is exact.
type columnPool struct {
	byKey   map[string]*colEntry
	entries []*colEntry
	round   int // current pricing round, advanced by endRound
	offered int
	hits    int
	evicted int
}

func newColumnPool() *columnPool {
	return &columnPool{byKey: make(map[string]*colEntry)}
}

// offer canonicalizes the column and pools it unless an identical one is
// already present. m is the current LP row count; columns over out-of-range
// rows panic here, with the pricer's column name, rather than deep inside
// lp.AppendColumn.
func (cp *columnPool) offer(c Column, m int) {
	cp.offered++
	if len(c.Idx) != len(c.Val) {
		panic(fmt.Sprintf("mip: pricer column %q index/value length mismatch", c.Name))
	}
	if c.LB > c.UB {
		panic(fmt.Sprintf("mip: pricer column %q bounds %v > %v", c.Name, c.LB, c.UB))
	}
	canon, ok := canonicalColumn(c)
	if !ok {
		return // coefficient-free column: nothing to price
	}
	for _, i := range canon.Idx {
		if int(i) >= m || i < 0 {
			panic(fmt.Sprintf("mip: pricer column %q references row %d of %d", c.Name, i, m))
		}
	}
	key := colKey(canon)
	if _, dup := cp.byKey[key]; dup {
		cp.hits++
		return
	}
	ce := &colEntry{col: canon, seq: len(cp.entries), lastImproving: cp.round}
	cp.byKey[key] = ce
	cp.entries = append(cp.entries, ce)
}

// selectImproving returns the (at most) batch unapplied columns with the
// best improving reduced cost at the dual point, refreshing lastImproving on
// every genuinely improving entry — including those beyond the batch, which
// stay pooled for the next round instead of aging out. The score is the
// sense-adjusted reduced cost: for a minimization problem a column improves
// when its reduced cost is below −PriceRedTol, for maximization above it.
func (cp *columnPool) selectImproving(duals []float64, minimize bool, batch int) []*colEntry {
	var cand []*colEntry
	for _, ce := range cp.entries {
		if ce.added {
			continue
		}
		d := lp.CandidateReducedCost(ce.col.Obj, ce.col.Idx, ce.col.Val, duals)
		if minimize {
			d = -d
		}
		ce.score = d
		if d > numtol.PriceRedTol {
			ce.lastImproving = cp.round
			cand = append(cand, ce)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		//lint:allow floateq -- selection needs a strict deterministic total order, not a tolerance
		if cand[i].score != cand[j].score {
			return cand[i].score > cand[j].score
		}
		return cand[i].seq < cand[j].seq
	})
	if len(cand) > batch {
		cand = cand[:batch]
	}
	return cand
}

// endRound advances the round counter and evicts unapplied columns that have
// not priced in for more than maxAge rounds (maxAge ≤ 0 disables eviction).
// Applied columns are permanent: they are LP columns now, and keeping them
// pooled keeps the dedup exact.
func (cp *columnPool) endRound(maxAge int) {
	cp.round++
	if maxAge <= 0 {
		return
	}
	kept := cp.entries[:0]
	for _, ce := range cp.entries {
		if !ce.added && cp.round-ce.lastImproving > maxAge {
			delete(cp.byKey, colKey(ce.col))
			cp.evicted++
			continue
		}
		kept = append(kept, ce)
	}
	for i := len(kept); i < len(cp.entries); i++ {
		cp.entries[i] = nil
	}
	cp.entries = kept
}

// price runs one pricing round at the node optimum res: offer every pricer's
// columns, append the best-priced batch to the committer's instance, publish
// the grown op log to the workers, and age the pool. Returns the number of
// columns appended (0 → no column prices in: the relaxation value is the true
// node bound and the caller stops rounding).
func (s *searcher) price(res lp.Result) int {
	for _, pr := range s.opts.Pricers {
		for _, c := range pr.Price(res.Duals, res.X) {
			s.colPool.offer(c, s.inst.NumRows())
		}
	}
	batch := s.colPool.selectImproving(res.Duals, s.minimize, s.opts.PriceBatch)
	for _, ce := range batch {
		ce.added = true
		s.inst.AppendColumn(ce.col.Idx, ce.col.Val, ce.col.LB, ce.col.UB, ce.col.Obj)
		s.appliedCols = append(s.appliedCols, ce.col)
		s.opOrder = append(s.opOrder, opCol)
	}
	if len(batch) > 0 {
		s.eng.publishOps(s.applied, s.appliedCols, s.opOrder)
		s.priceRounds++
	}
	s.colPool.endRound(s.opts.ColMaxAge)
	return len(batch)
}
