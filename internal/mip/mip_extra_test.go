package mip

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"tvnep/internal/lp"
)

func TestGapToleranceStopsEarly(t *testing.T) {
	// With a 50% gap tolerance the solver may stop as soon as any incumbent
	// is within half of the bound — it must still report a feasible answer.
	rng := rand.New(rand.NewSource(4))
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	var idx []int32
	var val []float64
	for j := 0; j < 24; j++ {
		c := p.AddCol(rng.Float64()*10, 0, 1, "")
		idx = append(idx, int32(c))
		val = append(val, 1+rng.Float64()*9)
	}
	p.AddLE(idx, val, 30, "cap")
	mp := NewProblem(p)
	for j := 0; j < 24; j++ {
		mp.SetInteger(j)
	}
	res := Solve(context.Background(), mp, &Options{GapTol: 0.5})
	if !res.HasSolution {
		t.Fatal("no incumbent despite generous gap tolerance")
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	// Verify the claimed bound actually dominates the incumbent.
	if res.Bound < res.Obj-1e-6 {
		t.Fatalf("bound %v < incumbent %v on a maximize problem", res.Bound, res.Obj)
	}
}

func TestMinimizeWithNegativeRange(t *testing.T) {
	// min 2x + 3y, x ∈ [−4, 4] integer, y ∈ [−2, 2] integer, x + y ≥ −3.
	// Optimum: y = −2, x = −1 → −8? check: x+y = −3 ✓, obj = −2−6 = −8;
	// or x = −4, y = 1 → −8 −... x+y = −3 ✓ obj = −8+3 = −5. So −8.
	p := lp.NewProblem()
	x := p.AddCol(2, -4, 4, "x")
	y := p.AddCol(3, -2, 2, "y")
	p.AddGE([]int32{int32(x), int32(y)}, []float64{1, 1}, -3, "r")
	mp := NewProblem(p)
	mp.SetInteger(x)
	mp.SetInteger(y)
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-8)) > 1e-6 {
		t.Fatalf("status %v obj %v X %v, want optimal -8", res.Status, res.Obj, res.X)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max x + y with x integer ≤ 2.5 → 2, y continuous ≤ 1.5 coupled by
	// x + 2y ≤ 5 → y = 1.5.
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	x := p.AddCol(1, 0, 2.5, "x")
	y := p.AddCol(1, 0, 1.5, "y")
	p.AddLE([]int32{int32(x), int32(y)}, []float64{1, 2}, 5, "r")
	mp := NewProblem(p)
	mp.SetInteger(x)
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-3.5) > 1e-6 {
		t.Fatalf("obj %v, want 3.5 (x=2, y=1.5)", res.Obj)
	}
	if math.Abs(res.X[x]-2) > 1e-9 {
		t.Fatalf("x = %v, want 2", res.X[x])
	}
}

func TestHeuristicDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	var idx []int32
	var val []float64
	for j := 0; j < 15; j++ {
		c := p.AddCol(rng.Float64()*10, 0, 1, "")
		idx = append(idx, int32(c))
		val = append(val, 1+rng.Float64()*4)
	}
	p.AddLE(idx, val, 20, "cap")
	mp := NewProblem(p)
	for j := 0; j < 15; j++ {
		mp.SetInteger(j)
	}
	withH := Solve(context.Background(), mp, nil)
	withoutH := Solve(context.Background(), mp, &Options{HeuristicEvery: -1})
	if withH.Status != StatusOptimal || withoutH.Status != StatusOptimal {
		t.Fatalf("statuses %v / %v", withH.Status, withoutH.Status)
	}
	if math.Abs(withH.Obj-withoutH.Obj) > 1e-6 {
		t.Fatalf("heuristic changed the optimum: %v vs %v", withH.Obj, withoutH.Obj)
	}
	// The documented contract: 0 means "use the default interval of 50", so
	// the two settings must commit bit-identical searches — while -1 must
	// genuinely disable the heuristic, including at the root (fewer or
	// equal LP iterations, never the heuristic's extra solves).
	zero := Solve(context.Background(), mp, &Options{HeuristicEvery: 0})
	fifty := Solve(context.Background(), mp, &Options{HeuristicEvery: 50})
	if zero.Nodes != fifty.Nodes || zero.LPIterations != fifty.LPIterations ||
		math.Float64bits(zero.Obj) != math.Float64bits(fifty.Obj) {
		t.Fatalf("HeuristicEvery 0 (→ default) and 50 diverge: nodes %d/%d iters %d/%d obj %v/%v",
			zero.Nodes, fifty.Nodes, zero.LPIterations, fifty.LPIterations, zero.Obj, fifty.Obj)
	}
	if withoutH.LPIterations > zero.LPIterations {
		t.Fatalf("HeuristicEvery -1 ran more LP iterations (%d) than the default (%d); is the root heuristic really off?",
			withoutH.LPIterations, zero.LPIterations)
	}
}

func TestRepeatedSolveIndependence(t *testing.T) {
	// Solving the same Problem twice must give identical results (no state
	// leaks through the shared *lp.Problem).
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	a := p.AddCol(5, 0, 1, "a")
	b := p.AddCol(4, 0, 1, "b")
	p.AddLE([]int32{int32(a), int32(b)}, []float64{2, 3}, 4, "cap")
	mp := NewProblem(p)
	mp.SetInteger(a)
	mp.SetInteger(b)
	r1 := Solve(context.Background(), mp, nil)
	r2 := Solve(context.Background(), mp, nil)
	if r1.Obj != r2.Obj || r1.Status != r2.Status {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", r1.Status, r1.Obj, r2.Status, r2.Obj)
	}
}

func TestDeepBranching(t *testing.T) {
	// A problem that needs real branching: equality-sum with weights that
	// defeat rounding. 3a + 5b + 7c + 9d = 16, binaries → a=0,b=0,c=1,d=1.
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	cols := []int32{}
	w := []float64{3, 5, 7, 9}
	for j := 0; j < 4; j++ {
		cols = append(cols, int32(p.AddCol(1, 0, 1, "")))
	}
	p.AddEQ(cols, w, 16, "sum")
	mp := NewProblem(p)
	for j := 0; j < 4; j++ {
		mp.SetInteger(j)
	}
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if math.Abs(res.X[2]-1) > 1e-9 || math.Abs(res.X[3]-1) > 1e-9 ||
		math.Abs(res.X[0]) > 1e-9 || math.Abs(res.X[1]) > 1e-9 {
		t.Fatalf("solution %v, want c=d=1", res.X)
	}
}

func TestGeneralIntegerBranching(t *testing.T) {
	// Diophantine-flavored: max 7x + 9y s.t. 13x + 11y ≤ 47, x,y ≥ 0 int.
	// Candidates: x=0,y=4 → 36; x=1,y=3 → 34; x=2,y=1 → 23; x=3,y=0 → 21.
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	x := p.AddCol(7, 0, lp.Inf, "x")
	y := p.AddCol(9, 0, lp.Inf, "y")
	p.AddLE([]int32{int32(x), int32(y)}, []float64{13, 11}, 47, "r")
	mp := NewProblem(p)
	mp.SetInteger(x)
	mp.SetInteger(y)
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-36) > 1e-6 {
		t.Fatalf("obj %v X %v, want 36 at (0,4)", res.Obj, res.X)
	}
}

func TestLargerBruteForceSweep(t *testing.T) {
	// Wider randomized cross-validation than the base suite: mixed senses,
	// equalities, continuous riders.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		nInt := 3 + rng.Intn(6)
		p := lp.NewProblem()
		if rng.Intn(2) == 0 {
			p.Sense = lp.Maximize
		}
		var intCols []int
		for j := 0; j < nInt; j++ {
			intCols = append(intCols, p.AddCol(rng.NormFloat64()*4, 0, 1, ""))
		}
		cont := p.AddCol(rng.NormFloat64(), 0, 3, "")
		_ = cont
		for i := 0; i < 2+rng.Intn(4); i++ {
			var idx []int32
			var val []float64
			for j := 0; j < p.NumCols(); j++ {
				if rng.Float64() < 0.6 {
					idx = append(idx, int32(j))
					val = append(val, float64(rng.Intn(9)-4))
				}
			}
			if len(idx) == 0 {
				continue
			}
			switch rng.Intn(3) {
			case 0:
				p.AddLE(idx, val, float64(rng.Intn(6)), "")
			case 1:
				p.AddGE(idx, val, -float64(rng.Intn(6)), "")
			default:
				p.AddEQ(idx, val, float64(rng.Intn(3)), "")
			}
		}
		mp := NewProblem(p)
		for _, j := range intCols {
			mp.SetInteger(j)
		}
		res := Solve(context.Background(), mp, nil)
		want := bruteForceBinary(p, intCols)
		if math.IsNaN(want) {
			if res.Status != StatusInfeasible {
				t.Fatalf("trial %d: want infeasible, got %v obj %v", trial, res.Status, res.Obj)
			}
			continue
		}
		if res.Status != StatusOptimal || math.Abs(res.Obj-want) > 1e-5 {
			t.Fatalf("trial %d: got %v obj %v, brute force %v", trial, res.Status, res.Obj, want)
		}
	}
}
