package mip

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"tvnep/internal/lp"
)

// The parallel node-solving engine behind Solve.
//
// Determinism comes from a strict split of responsibilities: the committer
// (the searcher's run loop) is the only goroutine that touches the heap,
// the node counter, the incumbent and the progress callbacks, and it
// executes the exact sequential branch-and-bound algorithm. Workers only
// evaluate LP relaxations — and a node's relaxation is a pure function of
// its bound chain, warm basis and warm factors — so it does not matter
// which worker solves a node, or when: the committed search replays the
// same decisions in the same order for any worker count. Parallel speedup
// comes from speculation: after solving a node a worker immediately
// enqueues that node's children, so by the time the committer reaches a
// frontier node its relaxation (and often its subtree's) is already done.
// Speculative work the committer never commits is wasted, never wrong; its
// LP iterations are reported separately in Result.WastedLPIterations.

// lpTask is one node-relaxation evaluation. It is created exactly once per
// node, solved by exactly one worker (claimed), and read by the committer
// only after done is closed.
type lpTask struct {
	nd *node

	// demand is set by the committer when it is (about to be) blocked on
	// this task; workers never skip a demanded task.
	demand atomic.Bool
	// claimed is CAS-acquired by the worker that evaluates the task;
	// losers drop the task (it can transiently sit in both queues).
	claimed atomic.Bool

	// Written by the claiming worker before done is closed.
	res      lp.Result
	children *branch // non-nil iff res is optimal and fractional
	worker   int     // 1-based id of the solving worker
	skipped  bool    // dominated speculative work, not evaluated
	// epoch is the number of committed incremental ops (cut rows and priced
	// columns, interleaved in commit order) the solving worker had applied
	// to its instance when it evaluated the task. The committer discards
	// results from older epochs (re-demanding the node), so every committed
	// relaxation saw the full committed op log — which is what keeps
	// separation and pricing deterministic under speculation.
	epoch int

	done chan struct{}
}

// branch is the deterministic pair of children created from one fractional
// relaxation. dive is the side the fractional value leans to.
type branch struct {
	dive, park *node
}

// workQueue is the two-priority task queue: demanded tasks (the committer
// is waiting) are FIFO and always served first; speculative tasks form a
// LIFO stack so workers chase the deepest — most-likely-next — dive chain.
type workQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	demand []*lpTask
	spec   []*lpTask
	closed bool
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// pop blocks until a task is available or the queue is closed (nil).
func (q *workQueue) pop() *lpTask {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.demand) > 0 {
			t := q.demand[0]
			q.demand[0] = nil
			q.demand = q.demand[1:]
			return t
		}
		if n := len(q.spec); n > 0 {
			t := q.spec[n-1]
			q.spec[n-1] = nil
			q.spec = q.spec[:n-1]
			return t
		}
		if q.closed {
			return nil
		}
		q.cond.Wait()
	}
}

// pushSpec enqueues speculative work, dropping it when the backlog is
// already limit tasks deep (a dropped task is simply solved on demand
// later).
func (q *workQueue) pushSpec(t *lpTask, limit int) {
	q.mu.Lock()
	if !q.closed && len(q.spec) < limit {
		q.spec = append(q.spec, t)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

// pushDemand moves t to the head-priority queue. If the task still sits in
// the speculative stack it is promoted; if it was never enqueued (dropped
// speculation) it is enqueued now. Claimed tasks are left alone — a worker
// is already on them. The claim CAS makes a harmless double enqueue safe.
func (q *workQueue) pushDemand(t *lpTask) {
	q.mu.Lock()
	if !q.closed && !t.claimed.Load() {
		for i, st := range q.spec {
			if st == t {
				q.spec = append(q.spec[:i], q.spec[i+1:]...)
				break
			}
		}
		q.demand = append(q.demand, t)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

func (q *workQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// engine owns the worker pool of one Solve call.
type engine struct {
	s     *searcher
	q     *workQueue
	wg    sync.WaitGroup
	ctx   context.Context
	stopf context.CancelFunc

	// speculate is false for a single worker: one worker chasing
	// speculative tasks could only delay the committer's demands, so the
	// engine degenerates to the exact serial work profile.
	speculate bool
	specCap   int

	// incBits is the minimization-sense incumbent objective as an atomic
	// float64 image, published by the committer on every improvement and
	// read by workers to skip dominated speculation. It only ever
	// decreases, which is what makes the skip safe: any node a worker
	// deems dominated is guaranteed to be pruned by the committer too.
	incBits atomic.Uint64

	// taskIters accumulates LP iterations across every evaluated task,
	// committed or not; the excess over the committed count is reported as
	// Result.WastedLPIterations.
	taskIters atomic.Int64

	// ops is the committer-published snapshot of the committed incremental
	// ops: cut rows and priced columns, interleaved in commit order. The
	// committer appends to its master slices and re-publishes the header
	// after each batch, so every snapshot is a prefix of an append-only
	// log: a worker holding an older header can never observe the elements
	// a newer batch appends behind it. Replaying the interleaved order —
	// not cuts-then-columns — is what lets a committed cut reference any
	// column that existed when it was committed and vice versa.
	ops atomic.Pointer[opSnap]
}

// The two op kinds of the incremental log; opSnap.order holds one entry per
// committed op, and its value selects which master slice the op came from.
const (
	opCut byte = iota
	opCol
)

// opSnap is an immutable view of the first len(order) committed ops; the
// cuts and cols slices hold the ops of each kind in commit order.
type opSnap struct {
	cuts  []Cut
	cols  []Column
	order []byte
}

// workerSync tracks how much of the committed op log one worker's instance
// has replayed, split per kind (cursor into each master slice).
type workerSync struct {
	ops, cuts, cols int
}

func newEngine(s *searcher) *engine {
	e := &engine{
		s:         s,
		q:         newWorkQueue(),
		speculate: s.opts.Workers > 1,
		specCap:   64 + 4*s.opts.Workers,
	}
	e.ctx, e.stopf = context.WithCancel(s.ctx)
	e.incBits.Store(math.Float64bits(math.Inf(1)))
	e.ops.Store(&opSnap{})
	s.eng = e
	e.wg.Add(s.opts.Workers)
	for id := 1; id <= s.opts.Workers; id++ {
		// Clone here, before the committer starts mutating its own
		// instance's bounds: the clones must snapshot the root bounds.
		go e.worker(id, s.inst.Clone())
	}
	return e
}

// stop aborts in-flight speculative solves and waits for every worker to
// exit, so no goroutine outlives Solve.
func (e *engine) stop() {
	e.stopf()
	e.q.close()
	e.wg.Wait()
}

// incumbentMin returns the worker-visible incumbent bound.
func (e *engine) incumbentMin() float64 {
	return math.Float64frombits(e.incBits.Load())
}

// publishIncumbent is called by the committer (only) on each improvement.
func (e *engine) publishIncumbent(objMin float64) {
	e.incBits.Store(math.Float64bits(objMin))
}

// publishOps is called by the committer (only) after appending a cut or
// column batch to its own instance; the arguments are the committer's master
// slices (searcher.applied/appliedCols/opOrder).
func (e *engine) publishOps(cuts []Cut, cols []Column, order []byte) {
	e.ops.Store(&opSnap{cuts: cuts, cols: cols, order: order})
}

// resolve hands the committer the evaluated task for nd, creating and
// demanding one if no worker speculated it. ok is false when the solve's
// context was cancelled while waiting.
func (e *engine) resolve(nd *node) (t *lpTask, ok bool) {
	for {
		t = nd.task
		if t == nil {
			t = &lpTask{nd: nd, done: make(chan struct{})}
			t.demand.Store(true)
			nd.task = t
		} else {
			t.demand.Store(true)
		}
		e.q.pushDemand(t)
		select {
		case <-t.done:
		case <-e.s.ctx.Done():
			return nil, false
		}
		if !t.skipped && t.epoch == len(e.s.opOrder) {
			return t, true
		}
		// Stale: a worker raced the demand flag and skipped the task as
		// dominated, or evaluated it speculatively before the latest cut or
		// column batch was committed. Retry with a fresh, pre-demanded task:
		// workers never skip those, and a demanded task is always solved at
		// the current epoch because the committer publishes the op-log
		// snapshot before enqueueing the demand and the worker syncs its
		// instance from the snapshot before solving.
		nd.task = nil
	}
}

// worker is the body of one worker goroutine. Each worker owns an Instance
// clone, so no simplex state is ever shared.
func (e *engine) worker(id int, inst *lp.Instance) {
	defer e.wg.Done()
	var sync workerSync // committed ops already applied to this instance
	for {
		t := e.q.pop()
		if t == nil {
			return
		}
		if !t.claimed.CompareAndSwap(false, true) {
			continue
		}
		e.evaluate(inst, id, t, &sync)
	}
}

// evaluate solves one node relaxation on the worker's instance and, when it
// branches, creates the node's children and speculates on them. sync tracks
// how much of the committed op log this worker's instance carries.
func (e *engine) evaluate(inst *lp.Instance, id int, t *lpTask, sync *workerSync) {
	defer close(t.done)
	s := e.s
	t.worker = id
	nd := t.nd
	if !t.demand.Load() && s.hasIncBound(nd.bound, e.incumbentMin()) {
		// Dominated speculation: the committer is guaranteed to prune nd
		// too, because the incumbent it will hold then is at least as good
		// as the one observed here.
		t.skipped = true
		return
	}
	// Replay committed ops this instance has not seen yet, in commit order.
	// Cuts are globally valid inequalities and priced columns are genuine
	// variables of the full formulation, so applying them to every
	// subsequent node relaxation is sound; the recorded epoch lets the
	// committer reject results that predate the ops it has committed.
	snap := e.ops.Load()
	for sync.ops < len(snap.order) {
		switch snap.order[sync.ops] {
		case opCut:
			c := snap.cuts[sync.cuts]
			inst.AppendRow(c.Idx, c.Val, c.LB, c.UB)
			sync.cuts++
		default:
			c := snap.cols[sync.cols]
			inst.AppendColumn(c.Idx, c.Val, c.LB, c.UB, c.Obj)
			sync.cols++
		}
		sync.ops++
	}
	t.epoch = sync.ops
	if !applyBoundsOn(inst, s.rootLB, s.rootUB, nd) {
		// Empty bound interval: the relaxation is infeasible by
		// construction (the committer never demands such nodes).
		t.res = lp.Result{Status: lp.StatusInfeasible}
		return
	}
	lpo := lp.Options{Context: e.ctx, CaptureFactors: true}
	if nd.basis != nil {
		lpo.WarmBasis = nd.basis
		lpo.WarmFactors = nd.fac
	}
	if s.hasDL {
		lpo.Deadline = s.deadline
	}
	res := inst.Solve(&lpo)
	t.res = res
	e.taskIters.Add(int64(res.Iterations))
	if res.Status != lp.StatusOptimal {
		return
	}
	col := s.fractional(res.X)
	if col < 0 {
		return // integral: a leaf, no children
	}
	t.children = makeBranch(nd, col, s.toMin(res.Obj), res)
	if e.speculate {
		// Enqueue park first so the LIFO stack hands out the dive side
		// before it, extending this speculative dive chain exactly the way
		// the committer will walk it.
		br := t.children
		br.park.task = &lpTask{nd: br.park, done: make(chan struct{})}
		br.dive.task = &lpTask{nd: br.dive, done: make(chan struct{})}
		e.q.pushSpec(br.park.task, e.specCap)
		e.q.pushSpec(br.dive.task, e.specCap)
	}
}

// hasIncBound reports whether a node bound is cut off by the given
// minimization-sense incumbent value (+Inf when none exists).
func (s *searcher) hasIncBound(bound, incMin float64) bool {
	return !math.IsInf(incMin, 1) && bound >= incMin-boundCutoffTol
}

// makeBranch builds the deterministic child pair of a fractional node. Both
// children warm-start from the parent's final basis and captured factors
// (the factors are shared read-only; every warm start clones them).
func makeBranch(nd *node, col int, objMin float64, res lp.Result) *branch {
	v := res.X[col]
	down := &node{
		parent: nd, col: col,
		lo: math.Inf(-1), hi: math.Floor(v),
		depth: nd.depth + 1, bound: objMin,
		basis: res.Basis, fac: res.Factors,
	}
	up := &node{
		parent: nd, col: col,
		lo: math.Ceil(v), hi: math.Inf(1),
		depth: nd.depth + 1, bound: objMin,
		basis: res.Basis, fac: res.Factors,
	}
	// Dive towards the side the fractional value leans to.
	if v-math.Floor(v) > 0.5 {
		return &branch{dive: up, park: down}
	}
	return &branch{dive: down, park: up}
}

// applyBoundsOn installs the node's bound-override chain onto an instance,
// reporting false when the chain produces an empty interval. It is the
// worker-side twin of searcher.applyBounds and must stay in lockstep with
// it: both must derive identical boxes for identical chains.
func applyBoundsOn(inst *lp.Instance, rootLB, rootUB []float64, nd *node) bool {
	for j := range rootLB {
		inst.SetColBounds(j, rootLB[j], rootUB[j])
	}
	// Walk the chain root→leaf so deeper overrides win.
	var chain []*node
	for c := nd; c != nil && c.col >= 0; c = c.parent {
		chain = append(chain, c)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		lo, hi := inst.ColBounds(c.col)
		if c.lo > lo {
			lo = c.lo
		}
		if c.hi < hi {
			hi = c.hi
		}
		if lo > hi {
			return false
		}
		inst.SetColBounds(c.col, lo, hi)
	}
	return true
}
