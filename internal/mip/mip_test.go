package mip

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"tvnep/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6, binaries.
	// Best: a + c = 17 (weight 5); b + c = 20 (weight 6) ✓ → 20.
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	a := p.AddCol(10, 0, 1, "a")
	b := p.AddCol(13, 0, 1, "b")
	c := p.AddCol(7, 0, 1, "c")
	p.AddLE([]int32{int32(a), int32(b), int32(c)}, []float64{3, 4, 2}, 6, "cap")
	mp := NewProblem(p)
	mp.SetInteger(a)
	mp.SetInteger(b)
	mp.SetInteger(c)
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-20) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 20", res.Status, res.Obj)
	}
	if math.Abs(res.X[b]-1) > 1e-6 || math.Abs(res.X[c]-1) > 1e-6 || math.Abs(res.X[a]) > 1e-6 {
		t.Fatalf("solution %v, want b=c=1, a=0", res.X)
	}
	if res.Gap != 0 {
		t.Fatalf("gap = %v, want 0", res.Gap)
	}
}

func TestPureLPPassThrough(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddCol(1, 0, 5, "x")
	p.AddGE([]int32{int32(x)}, []float64{1}, 2.5, "r")
	mp := NewProblem(p) // no integers
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-2.5) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal 2.5", res.Status, res.Obj)
	}
}

func TestIntegerRounding(t *testing.T) {
	// min x s.t. x ≥ 2.3, x integer → 3.
	p := lp.NewProblem()
	x := p.AddCol(1, 0, 10, "x")
	p.AddGE([]int32{int32(x)}, []float64{1}, 2.3, "r")
	mp := NewProblem(p)
	mp.SetInteger(x)
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-3) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal 3", res.Status, res.Obj)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	// 0.4 ≤ x ≤ 0.6, x integer → infeasible.
	p := lp.NewProblem()
	x := p.AddCol(1, 0.4, 0.6, "x")
	_ = x
	mp := NewProblem(p)
	mp.SetInteger(x)
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
	if res.HasSolution {
		t.Fatal("infeasible MIP reports a solution")
	}
	if !math.IsInf(res.Gap, 1) {
		t.Fatalf("gap = %v, want +Inf", res.Gap)
	}
}

func TestUnboundedMIP(t *testing.T) {
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	p.AddCol(1, 0, lp.Inf, "x")
	mp := NewProblem(p)
	mp.SetInteger(0)
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestEqualityParity(t *testing.T) {
	// x + y = 5, x,y ≥ 0 integer, min 3x + y → x=0, y=5 → 5.
	p := lp.NewProblem()
	x := p.AddCol(3, 0, lp.Inf, "x")
	y := p.AddCol(1, 0, lp.Inf, "y")
	p.AddEQ([]int32{int32(x), int32(y)}, []float64{1, 1}, 5, "sum")
	mp := NewProblem(p)
	mp.SetInteger(x)
	mp.SetInteger(y)
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-5) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 5", res.Status, res.Obj)
	}
}

// bruteForceBinary enumerates all binary assignments and returns the best
// objective (original sense), or NaN if infeasible.
func bruteForceBinary(p *lp.Problem, intCols []int) float64 {
	nInt := len(intCols)
	best := math.NaN()
	better := func(a, b float64) bool {
		if p.Sense == lp.Maximize {
			return a > b
		}
		return a < b
	}
	for mask := 0; mask < 1<<nInt; mask++ {
		inst := lp.NewInstance(p)
		for k, j := range intCols {
			v := float64((mask >> k) & 1)
			inst.SetColBounds(j, v, v)
		}
		res := inst.Solve(nil)
		if res.Status != lp.StatusOptimal {
			continue
		}
		if math.IsNaN(best) || better(res.Obj, best) {
			best = res.Obj
		}
	}
	return best
}

func TestRandomBinaryMIPsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		nInt := 2 + rng.Intn(7)
		nCont := rng.Intn(4)
		p := lp.NewProblem()
		if rng.Intn(2) == 0 {
			p.Sense = lp.Maximize
		}
		var intCols []int
		for j := 0; j < nInt; j++ {
			intCols = append(intCols, p.AddCol(rng.NormFloat64()*5, 0, 1, ""))
		}
		for j := 0; j < nCont; j++ {
			p.AddCol(rng.NormFloat64(), 0, 2, "")
		}
		m := 1 + rng.Intn(6)
		for i := 0; i < m; i++ {
			var idx []int32
			var val []float64
			for j := 0; j < p.NumCols(); j++ {
				if rng.Float64() < 0.5 {
					idx = append(idx, int32(j))
					val = append(val, float64(rng.Intn(7)-3))
				}
			}
			if len(idx) == 0 {
				continue
			}
			rhs := float64(rng.Intn(5))
			if rng.Intn(2) == 0 {
				p.AddLE(idx, val, rhs, "")
			} else {
				p.AddGE(idx, val, -rhs, "")
			}
		}
		mp := NewProblem(p)
		for _, j := range intCols {
			mp.SetInteger(j)
		}
		res := Solve(context.Background(), mp, nil)
		want := bruteForceBinary(p, intCols)
		if math.IsNaN(want) {
			if res.Status != StatusInfeasible {
				t.Fatalf("trial %d: brute force infeasible but solver says %v (obj %v)", trial, res.Status, res.Obj)
			}
			continue
		}
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, brute force found %v", trial, res.Status, want)
		}
		if math.Abs(res.Obj-want) > 1e-5 {
			t.Fatalf("trial %d: obj %v, brute force %v", trial, res.Obj, want)
		}
	}
}

func TestGeneralIntegerMIP(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y ≤ 24, x + 2y ≤ 6, x,y ≥ 0 integer.
	// LP optimum (3, 1.5) → 21; integer optimum x=4,y=0 → 20 or x=2,y=2 → 18;
	// check: x=4,y=0: 24 ≤ 24 ✓, 4 ≤ 6 ✓ → 20. x=3,y=1: 22 ≤ 24 ✓, 5 ≤ 6 ✓ → 19.
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	x := p.AddCol(5, 0, lp.Inf, "x")
	y := p.AddCol(4, 0, lp.Inf, "y")
	p.AddLE([]int32{int32(x), int32(y)}, []float64{6, 4}, 24, "r1")
	p.AddLE([]int32{int32(x), int32(y)}, []float64{1, 2}, 6, "r2")
	mp := NewProblem(p)
	mp.SetInteger(x)
	mp.SetInteger(y)
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-20) > 1e-6 {
		t.Fatalf("status %v obj %v X %v, want optimal 20", res.Status, res.Obj, res.X)
	}
}

func TestTimeLimit(t *testing.T) {
	// A hard-ish equality knapsack to burn nodes, with a 1 ns limit: must
	// stop immediately and report StatusLimit.
	rng := rand.New(rand.NewSource(5))
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	var idx []int32
	var val []float64
	for j := 0; j < 30; j++ {
		c := p.AddCol(rng.Float64()*10, 0, 1, "")
		idx = append(idx, int32(c))
		val = append(val, 1+rng.Float64()*9)
	}
	p.AddLE(idx, val, 40, "cap")
	mp := NewProblem(p)
	for j := 0; j < 30; j++ {
		mp.SetInteger(j)
	}
	res := Solve(context.Background(), mp, &Options{TimeLimit: time.Nanosecond})
	if res.Status != StatusLimit {
		t.Fatalf("status = %v, want limit", res.Status)
	}
}

func TestNodeLimit(t *testing.T) {
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	rng := rand.New(rand.NewSource(6))
	var idx []int32
	var val []float64
	for j := 0; j < 25; j++ {
		c := p.AddCol(rng.Float64()*10, 0, 1, "")
		idx = append(idx, int32(c))
		val = append(val, 1+rng.Float64()*9)
	}
	p.AddLE(idx, val, 30, "cap")
	mp := NewProblem(p)
	for j := 0; j < 25; j++ {
		mp.SetInteger(j)
	}
	res := Solve(context.Background(), mp, &Options{NodeLimit: 3, HeuristicEvery: -1})
	if res.Status != StatusLimit && res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Nodes > 3 {
		t.Fatalf("nodes = %d, want ≤ 3", res.Nodes)
	}
}

func TestBoundAndGapConsistency(t *testing.T) {
	p := lp.NewProblem()
	p.Sense = lp.Maximize
	rng := rand.New(rand.NewSource(11))
	var idx []int32
	var val []float64
	for j := 0; j < 20; j++ {
		c := p.AddCol(rng.Float64()*10, 0, 1, "")
		idx = append(idx, int32(c))
		val = append(val, 1+rng.Float64()*5)
	}
	p.AddLE(idx, val, 25, "cap")
	mp := NewProblem(p)
	for j := 0; j < 20; j++ {
		mp.SetInteger(j)
	}
	res := Solve(context.Background(), mp, nil)
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.Bound < res.Obj-1e-6 {
		t.Fatalf("max problem: bound %v < obj %v", res.Bound, res.Obj)
	}
	// Verify the incumbent is actually feasible and integral.
	act := 0.0
	for k, j := range idx {
		x := res.X[j]
		if math.Abs(x-math.Round(x)) > 1e-9 {
			t.Fatalf("x[%d] = %v not integral", j, x)
		}
		act += val[k] * x
	}
	if act > 25+1e-6 {
		t.Fatalf("capacity violated: %v > 25", act)
	}
}

func TestStatusStrings(t *testing.T) {
	for st, want := range map[Status]string{
		StatusOptimal: "optimal", StatusInfeasible: "infeasible",
		StatusUnbounded: "unbounded", StatusLimit: "limit", Status(9): "unknown",
	} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestSetIntegerGrows(t *testing.T) {
	p := lp.NewProblem()
	mp := NewProblem(p)
	p.AddCol(1, 0, 1, "x")
	p.AddCol(1, 0, 1, "y")
	mp.SetInteger(1)
	if len(mp.Integer) != 2 || !mp.Integer[1] || mp.Integer[0] {
		t.Fatalf("Integer = %v", mp.Integer)
	}
}
