package mip

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"tvnep/internal/numtol"
)

// coverSeparator is the test Separator: for every finite ≤-capacity row with
// positive coefficients over integer 0/1 columns it greedily builds a cover
// S (columns in decreasing fractional value until the weights exceed the
// capacity) and returns the cover inequality Σ_{j∈S} x_j ≤ |S|−1. The cut is
// globally valid — all coefficients are positive, so setting every column of
// S to 1 would exceed the capacity — and the construction is a pure function
// of x with an index tie-break, as the Separator contract requires.
type coverSeparator struct {
	prob *Problem
}

func (cs *coverSeparator) Separate(x []float64) []Cut {
	const eps = 1e-9
	var cuts []Cut
	p := cs.prob.LP
	for i := 0; i < p.NumRows(); i++ {
		ub := p.RowUB[i]
		if math.IsInf(ub, 1) || !math.IsInf(p.RowLB[i], -1) {
			continue
		}
		idx, val := p.Row(i)
		usable := len(idx) > 0
		for k, j := range idx {
			if val[k] <= 0 || !cs.prob.Integer[j] {
				usable = false
				break
			}
		}
		if !usable {
			continue
		}
		ord := make([]int, len(idx))
		for k := range ord {
			ord[k] = k
		}
		sort.Slice(ord, func(a, b int) bool {
			xa, xb := x[idx[ord[a]]], x[idx[ord[b]]]
			if xa != xb {
				return xa > xb
			}
			return idx[ord[a]] < idx[ord[b]]
		})
		w, lhs := 0.0, 0.0
		var cover []int32
		for _, k := range ord {
			w += val[k]
			lhs += x[idx[k]]
			cover = append(cover, idx[k])
			if w > ub+eps {
				break
			}
		}
		if w <= ub+eps || len(cover) < 2 {
			continue // the whole row fits: no cover exists
		}
		if lhs <= float64(len(cover)-1)+eps {
			continue // cover found but not violated at x
		}
		ones := make([]float64, len(cover))
		for k := range ones {
			ones[k] = 1
		}
		cuts = append(cuts, Cut{
			Idx: cover, Val: ones,
			LB: math.Inf(-1), UB: float64(len(cover) - 1),
			Name: fmt.Sprintf("cover[%d]", i),
		})
	}
	return cuts
}

func TestCutPoolDedupSelectEvict(t *testing.T) {
	cp := newCutPool(4)
	x := []float64{1, 1, 0, 0}
	inf := math.Inf(-1)

	// Same row offered three ways (permuted, duplicated entries) must pool
	// exactly once.
	cp.offer(Cut{Idx: []int32{0, 1}, Val: []float64{1, 1}, LB: inf, UB: 1, Name: "a"})
	cp.offer(Cut{Idx: []int32{1, 0}, Val: []float64{1, 1}, LB: inf, UB: 1, Name: "a-permuted"})
	cp.offer(Cut{Idx: []int32{0, 1, 1}, Val: []float64{1, 2, -1}, LB: inf, UB: 1, Name: "a-split"})
	if len(cp.entries) != 1 || cp.hits != 2 || cp.offered != 3 {
		t.Fatalf("dedup: %d entries, %d hits, %d offered", len(cp.entries), cp.hits, cp.offered)
	}
	// A zero-sum row canonicalizes to nothing and is dropped.
	cp.offer(Cut{Idx: []int32{2, 2}, Val: []float64{1, -1}, LB: inf, UB: 0, Name: "empty"})
	if len(cp.entries) != 1 {
		t.Fatalf("empty row was pooled")
	}
	// A satisfied row is pooled but never selected.
	cp.offer(Cut{Idx: []int32{2}, Val: []float64{1}, LB: inf, UB: 5, Name: "slack"})
	// A more violated row must sort first.
	cp.offer(Cut{Idx: []int32{0}, Val: []float64{3}, LB: inf, UB: 1, Name: "big"})

	sel := cp.selectViolated(x, 10, numtol.CutViolTol)
	if len(sel) != 2 {
		t.Fatalf("selected %d cuts, want 2", len(sel))
	}
	if sel[0].cut.Name != "big" || sel[1].cut.Name != "a" {
		t.Fatalf("violation order wrong: %q, %q", sel[0].cut.Name, sel[1].cut.Name)
	}
	if got := cp.selectViolated(x, 1, numtol.CutViolTol); len(got) != 1 || got[0].cut.Name != "big" {
		t.Fatalf("batch limit not honored")
	}
	sel[0].added = true
	if got := cp.selectViolated(x, 10, numtol.CutViolTol); len(got) != 1 || got[0].cut.Name != "a" {
		t.Fatalf("added cut re-selected")
	}

	// Aging: the slack row was never violated; after maxAge rounds it must
	// be evicted, while the added one stays (it is an LP row now).
	sel[1].added = true
	for r := 0; r < 4; r++ {
		cp.endRound(3)
	}
	names := map[string]bool{}
	for _, pe := range cp.entries {
		names[pe.cut.Name] = true
	}
	if names["slack"] || !names["big"] || !names["a"] || cp.evicted != 1 {
		t.Fatalf("eviction wrong: entries %v, evicted %d", names, cp.evicted)
	}
	// An evicted row may be offered (and therefore appended) again.
	cp.offer(Cut{Idx: []int32{2}, Val: []float64{1}, LB: inf, UB: 5, Name: "slack"})
	if len(cp.entries) != 3 {
		t.Fatalf("re-offer after eviction did not pool")
	}
}

func TestCutPoolRejectsOutOfRange(t *testing.T) {
	cp := newCutPool(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range cut column did not panic")
		}
	}()
	cp.offer(Cut{Idx: []int32{5}, Val: []float64{1}, LB: math.Inf(-1), UB: 1, Name: "bad"})
}

// TestLazyCutsMatchPlainSolve: separation must never change the certified
// optimum — cuts only tighten the relaxation. Checked across knapsack shapes
// that actually trigger cover cuts.
func TestLazyCutsMatchPlainSolve(t *testing.T) {
	cases := []struct {
		name string
		prob *Problem
	}{
		{"knapsack-le", randKnapsack(5, 22, 30, false)},
		{"knapsack-eq", randKnapsack(9, 18, 24, true)},
		{"multiknapsack", multiKnapsack(3, 30, 10)},
		{"multiknapsack-2", multiKnapsack(17, 24, 6)},
	}
	sawCuts := false
	for _, tc := range cases {
		plain := Solve(context.Background(), tc.prob, nil)
		if plain.Status != StatusOptimal {
			t.Fatalf("%s: plain status %v", tc.name, plain.Status)
		}
		lazy := Solve(context.Background(), tc.prob, &Options{
			Separators: []Separator{&coverSeparator{prob: tc.prob}},
		})
		if lazy.Status != StatusOptimal {
			t.Fatalf("%s: lazy status %v", tc.name, lazy.Status)
		}
		if d := math.Abs(lazy.Obj - plain.Obj); d > 1e-6*(1+math.Abs(plain.Obj)) {
			t.Errorf("%s: lazy obj %v differs from plain %v", tc.name, lazy.Obj, plain.Obj)
		}
		if lazy.Cuts.RowsAtRoot != tc.prob.LP.NumRows() {
			t.Errorf("%s: RowsAtRoot = %d, want %d", tc.name, lazy.Cuts.RowsAtRoot, tc.prob.LP.NumRows())
		}
		if lazy.Cuts.SeparatedRows != len(lazy.AppliedCuts) {
			t.Errorf("%s: SeparatedRows %d != len(AppliedCuts) %d", tc.name, lazy.Cuts.SeparatedRows, len(lazy.AppliedCuts))
		}
		if lazy.Cuts.SeparatedRows > 0 {
			sawCuts = true
			// The incumbent must satisfy every applied cut: that is the
			// validity half of the Separator contract, checked end to end.
			for _, c := range lazy.AppliedCuts {
				if v := rowViolation(c, lazy.X); v > 1e-6 {
					t.Errorf("%s: incumbent violates applied cut %q by %v", tc.name, c.Name, v)
				}
			}
		}
	}
	if !sawCuts {
		t.Fatal("no test case triggered separation; the cases no longer exercise the cut path")
	}
}

// TestParallelDeterminismWithCuts extends the tentpole determinism guarantee
// to lazy separation: with separators registered, the committed result AND
// the full cut trajectory (stats and applied rows) must be bit-identical for
// any worker count, because separation runs only on the committer against
// deterministic fractional points.
func TestParallelDeterminismWithCuts(t *testing.T) {
	cases := []struct {
		name string
		prob *Problem
	}{
		{"knapsack-eq", randKnapsack(9, 18, 24, true)},
		{"multiknapsack", multiKnapsack(3, 22, 6)},
		{"multiknapsack-deep", multiKnapsack(7, 28, 8)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var base Result
			for _, w := range []int{1, 2, 4, 8} {
				res := Solve(context.Background(), tc.prob, &Options{
					Workers:    w,
					Separators: []Separator{&coverSeparator{prob: tc.prob}},
				})
				if res.Status != StatusOptimal {
					t.Fatalf("workers=%d: status %v", w, res.Status)
				}
				if w == 1 {
					base = res
					continue
				}
				assertBitIdentical(t, tc.name, base, res, 1, w)
				if res.Cuts != base.Cuts {
					t.Errorf("cut stats differ between 1 and %d workers: %+v vs %+v", w, base.Cuts, res.Cuts)
				}
				if !reflect.DeepEqual(res.AppliedCuts, base.AppliedCuts) {
					t.Errorf("applied cut rows differ between 1 and %d workers", w)
				}
			}
		})
	}
}

// TestCutRoundsDisabled: negative round budgets must turn separation off
// even with separators registered.
func TestCutRoundsDisabled(t *testing.T) {
	prob := multiKnapsack(3, 30, 10)
	res := Solve(context.Background(), prob, &Options{
		Separators:    []Separator{&coverSeparator{prob: prob}},
		RootCutRounds: -1,
		TreeCutRounds: -1,
	})
	if res.Status != StatusOptimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.Cuts.SeparatedRows != 0 || res.Cuts.Offered != 0 {
		t.Fatalf("separation ran with negative round budgets: %+v", res.Cuts)
	}
}
