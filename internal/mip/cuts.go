package mip

// Lazy cut separation. Instead of emitting every known valid inequality into
// the root LP up front, callers register Separator callbacks that examine
// fractional relaxation points and return the inequalities those points
// violate. The searcher keeps the returned rows in a deterministic cut pool
// (deduplicated by an exact canonical-row key), appends the most violated
// batch to the LP, and hot-restarts the same node from its own final basis —
// the appended rows ride the bordered LU extension in internal/lp, so a
// separation round costs a handful of dual pivots, not a refactorization.
//
// Separation runs only on the serial committer. Workers learn about committed
// cut rows through an atomically published append-only snapshot (see
// engine.go) and replay them onto their own instances before solving, so the
// committed search — and therefore the reported objective, bound, node and
// iteration counts — stays bit-identical for any worker count.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"tvnep/internal/lp"
	"tvnep/internal/numtol"
)

// Cut is one linear inequality LB ≤ Σₖ Val[k]·x[Idx[k]] ≤ UB over the
// problem's structural columns. One-sided rows use ±Inf for the missing
// bound. Name is a diagnostic label carried through to certification.
type Cut struct {
	Idx  []int32
	Val  []float64
	LB   float64
	UB   float64
	Name string
}

// Separator generates valid inequalities violated by a fractional relaxation
// point. The contract has two parts, both load-bearing:
//
//   - Validity: every returned cut must be satisfied by every feasible
//     integral solution of the MIP (global validity). The search keeps node
//     bounds, incumbents and warm bases across separation rounds, which is
//     only sound for rows that never exclude an integral feasible point.
//   - Determinism: Separate must be a pure function of x (same point, same
//     cuts, same order). The committer calls it exactly once per separation
//     round on deterministic points; any internal randomness or iteration
//     over unordered maps would break the bit-identical-across-workers
//     guarantee.
//
// Separate may return cuts that are not violated by x (they are pooled for
// later rounds) and may return duplicates (the pool deduplicates), but it
// must not mutate x.
type Separator interface {
	Separate(x []float64) []Cut
}

// CutStats summarizes the separation work of one solve.
type CutStats struct {
	// RowsAtRoot is the number of LP rows the root relaxation started with
	// (the statically emitted constraints).
	RowsAtRoot int
	// SeparatedRows is the number of cut rows appended by separation over
	// the whole search.
	SeparatedRows int
	// Rounds is the number of separation rounds that appended at least one
	// row.
	Rounds int
	// Offered is the total number of cuts returned by separators (before
	// deduplication).
	Offered int
	// PoolHits counts offered cuts that were already pooled — the dedup
	// rate is PoolHits/Offered.
	PoolHits int
	// Evicted counts pooled-but-never-appended cuts dropped by age-based
	// eviction.
	Evicted int
}

// cutKey returns the exact canonical key of an already-canonicalized cut:
// the little-endian concatenation of (index, coefficient-bits) pairs plus
// the bound bits. Two cuts share a key iff they are the same row, so the
// pool's dedup can never be fooled by a hash collision.
func cutKey(c Cut) string {
	buf := make([]byte, 0, 12*len(c.Idx)+16)
	var b [8]byte
	for k, j := range c.Idx {
		binary.LittleEndian.PutUint32(b[:4], uint32(j))
		buf = append(buf, b[:4]...)
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.Val[k]))
		buf = append(buf, b[:8]...)
	}
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.LB))
	buf = append(buf, b[:8]...)
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(c.UB))
	buf = append(buf, b[:8]...)
	return string(buf)
}

// canonicalCut sorts the row by column index, merges duplicate entries and
// drops exact-zero coefficients, mirroring lp.AppendRow's canonical form so
// that the pool key and the appended row agree. ok is false for rows that
// canonicalize to nothing.
func canonicalCut(c Cut) (Cut, bool) {
	idx := append([]int32(nil), c.Idx...)
	val := append([]float64(nil), c.Val...)
	sort.Sort(&rowByCol{idx: idx, val: val})
	out := Cut{LB: c.LB, UB: c.UB, Name: c.Name}
	for k := 0; k < len(idx); {
		j, v := idx[k], val[k]
		k++
		for k < len(idx) && idx[k] == j {
			v += val[k]
			k++
		}
		if v == 0 {
			continue
		}
		out.Idx = append(out.Idx, j)
		out.Val = append(out.Val, v)
	}
	return out, len(out.Idx) > 0
}

type rowByCol struct {
	idx []int32
	val []float64
}

func (r *rowByCol) Len() int           { return len(r.idx) }
func (r *rowByCol) Less(i, j int) bool { return r.idx[i] < r.idx[j] }
func (r *rowByCol) Swap(i, j int) {
	r.idx[i], r.idx[j] = r.idx[j], r.idx[i]
	r.val[i], r.val[j] = r.val[j], r.val[i]
}

// rootCutSeedSlack is the activity margin of the root seeding round: the
// first separation round at the root also appends pooled cuts that are
// within this slack of binding at the root optimum, not just violated ones.
// Near-active rows do not cut the current point, but they pin down which of
// the relaxation's alternate optima later re-solves land on — the same
// vertex-steering a static build gets from emitting the family up front —
// and on the benchmark models that steering is worth a ~2x smaller proof
// tree. Separators opt in simply by returning near-active members (the
// Separator contract always allowed unviolated cuts).
const rootCutSeedSlack = 0.5

// rowViolation is the signed amount by which x violates the cut: positive
// when violated, negative (the slack to the nearest bound) when satisfied.
func rowViolation(c Cut, x []float64) float64 {
	act := 0.0
	for k, j := range c.Idx {
		act += c.Val[k] * x[j]
	}
	v := math.Inf(-1)
	if !math.IsInf(c.LB, -1) {
		v = c.LB - act
	}
	if d := act - c.UB; d > v {
		v = d
	}
	if math.IsInf(v, -1) {
		v = 0 // bound-free row: vacuously satisfied
	}
	return v
}

// poolEntry is one pooled cut plus its selection and eviction bookkeeping.
type poolEntry struct {
	cut Cut
	// seq is the deterministic insertion order, the final tie-break of the
	// violation sort.
	seq int
	// added marks cuts already appended to the LP; they stay pooled (so a
	// separator re-offering them is a cheap pool hit) but are never
	// selected or evicted again.
	added bool
	// lastViolated is the separation round that last saw this cut violated
	// (its insertion round initially); age-based eviction keys off it.
	lastViolated int
	// viol is scratch state: the violation at the round's fractional point.
	viol float64
}

// cutPool is the committer-private store of offered cuts. All operations are
// deterministic: iteration follows insertion order, selection sorts by
// (violation desc, insertion seq asc), and the dedup key is exact.
type cutPool struct {
	n       int // structural column count, for early index validation
	byKey   map[string]*poolEntry
	entries []*poolEntry
	round   int // current separation round, advanced by endRound
	offered int
	hits    int
	evicted int
}

func newCutPool(n int) *cutPool {
	return &cutPool{n: n, byKey: make(map[string]*poolEntry)}
}

// offer canonicalizes the cut and pools it unless an identical row is
// already present. Rows over out-of-range columns panic here, with the
// separator's cut name, rather than deep inside lp.AppendRow.
func (cp *cutPool) offer(c Cut) {
	cp.offered++
	canon, ok := canonicalCut(c)
	if !ok {
		return // empty row: nothing to separate
	}
	for _, j := range canon.Idx {
		if int(j) >= cp.n || j < 0 {
			panic(fmt.Sprintf("mip: separator cut %q references column %d of %d", c.Name, j, cp.n))
		}
	}
	key := cutKey(canon)
	if _, dup := cp.byKey[key]; dup {
		cp.hits++
		return
	}
	pe := &poolEntry{cut: canon, seq: len(cp.entries), lastViolated: cp.round}
	cp.byKey[key] = pe
	cp.entries = append(cp.entries, pe)
}

// selectViolated returns the (at most) batch unapplied cuts with the
// largest violation above minViol at x, refreshing lastViolated on every
// genuinely violated entry — including those beyond the batch, which stay
// pooled for the next round instead of aging out. Ordinary rounds pass
// numtol.CutViolTol; the root seeding round passes -rootCutSeedSlack, which
// admits near-active rows (their lastViolated is not refreshed, so
// unappended ones still age out normally).
func (cp *cutPool) selectViolated(x []float64, batch int, minViol float64) []*poolEntry {
	var cand []*poolEntry
	for _, pe := range cp.entries {
		if pe.added {
			continue
		}
		pe.viol = rowViolation(pe.cut, x)
		if pe.viol > numtol.CutViolTol {
			pe.lastViolated = cp.round
		}
		if pe.viol > minViol {
			cand = append(cand, pe)
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		//lint:allow floateq -- selection needs a strict deterministic total order, not a tolerance
		if cand[i].viol != cand[j].viol {
			return cand[i].viol > cand[j].viol
		}
		return cand[i].seq < cand[j].seq
	})
	if len(cand) > batch {
		cand = cand[:batch]
	}
	return cand
}

// endRound advances the round counter and evicts unapplied cuts that have
// not been violated for more than maxAge rounds (maxAge ≤ 0 disables
// eviction). Applied cuts are permanent: they are LP rows now, and keeping
// them pooled keeps the dedup exact.
func (cp *cutPool) endRound(maxAge int) {
	cp.round++
	if maxAge <= 0 {
		return
	}
	kept := cp.entries[:0]
	for _, pe := range cp.entries {
		if !pe.added && cp.round-pe.lastViolated > maxAge {
			delete(cp.byKey, cutKey(pe.cut))
			cp.evicted++
			continue
		}
		kept = append(kept, pe)
	}
	for i := len(kept); i < len(cp.entries); i++ {
		cp.entries[i] = nil
	}
	cp.entries = kept
}

// separate runs one separation round at x: offer every separator's cuts,
// append the most violated batch to the committer's instance, publish the
// grown cut list to the workers, and age the pool. Returns the number of
// rows appended (0 → the point is cut-free and the caller stops rounding).
// A seed round (the first root round) drops the batch cap and the violation
// floor to -rootCutSeedSlack so the near-active family members land in the
// root LP together.
func (s *searcher) separate(x []float64, seed bool) int {
	for _, sep := range s.opts.Separators {
		for _, c := range sep.Separate(x) {
			s.pool.offer(c)
		}
	}
	limit, minViol := s.opts.CutBatch, numtol.CutViolTol
	if seed {
		limit, minViol = len(s.pool.entries), -rootCutSeedSlack
	}
	batch := s.pool.selectViolated(x, limit, minViol)
	for _, pe := range batch {
		pe.added = true
		s.inst.AppendRow(pe.cut.Idx, pe.cut.Val, pe.cut.LB, pe.cut.UB)
		s.applied = append(s.applied, pe.cut)
		s.opOrder = append(s.opOrder, opCut)
	}
	if len(batch) > 0 {
		s.eng.publishOps(s.applied, s.appliedCols, s.opOrder)
		s.sepRounds++
	}
	s.pool.endRound(s.opts.CutMaxAge)
	return len(batch)
}

// solveSeparated resolves the node's relaxation, interleaving pricing and
// separation rounds: while a round adds columns or cuts, the same node is
// re-solved at the new epoch, warm-started from its own final basis and
// factors (appended rows ride the bordered factor extension, appended
// columns the basis remap + primal restart). Pricing runs first and to
// convergence — the relaxation value is only a valid node bound once no
// column prices in, so it runs at every node, on integral points too, and
// its per-node cap (Options.PriceRounds) is a safety net rather than a
// budget. Cut rounds follow: root nodes get RootCutRounds, tree nodes
// TreeCutRounds. Committed iteration accounting for every round happens
// here, so the totals stay deterministic.
func (s *searcher) solveSeparated(nd *node) (*lpTask, bool) {
	maxCutRounds := 0
	if s.pool != nil {
		maxCutRounds = s.opts.TreeCutRounds
		if nd.col == -1 {
			maxCutRounds = s.opts.RootCutRounds
		}
	}
	cutRounds, priceRounds := 0, 0
	for {
		t, ok := s.eng.resolve(nd)
		if !ok {
			return nil, false
		}
		res := t.res
		s.iters += res.Iterations
		s.taskIters += res.Iterations
		s.bflips += res.BoundFlips
		s.rpasses += res.RatioPasses
		s.lastWorker = t.worker
		if res.Status != lp.StatusOptimal {
			return t, true
		}
		root := nd.col == -1
		if s.colPool != nil && priceRounds < s.opts.PriceRounds && s.price(res) > 0 {
			// Hot-restart the same node at the new epoch from its own final
			// basis (the appended columns enter nonbasic, so the basis stays
			// valid after the remap); the stale task — and its speculated
			// children, built from the restricted point — is discarded by
			// the epoch check in engine.resolve.
			priceRounds++
			nd.basis, nd.fac = res.Basis, res.Factors
			nd.task = nil
			continue
		}
		// Integral points (children == nil) satisfy every valid cut by the
		// Separator contract, so only fractional optima are worth separating.
		if cutRounds >= maxCutRounds || t.children == nil {
			return t, true
		}
		if s.separate(res.X, root && cutRounds == 0) == 0 {
			return t, true
		}
		cutRounds++
		// Hot-restart from the node's own final basis, as above. The root
		// instead restarts cold after a cut round: its relaxation is solved
		// once per search, and a from-scratch trajectory over the
		// strengthened row set reaches the same vertex a static build would
		// start from, which is what makes the two pipelines' trees
		// comparable.
		nd.basis, nd.fac = res.Basis, res.Factors
		if root {
			nd.basis, nd.fac = nil, nil
		}
		nd.task = nil
	}
}
