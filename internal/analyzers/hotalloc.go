package analyzers

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"tvnep/internal/analysis"
)

// Hotalloc flags allocation sites in the solver's hot path. The simplex
// kernels (sparselu.Ftran/Btran/ExtendInto, the steady-state pivot) carry
// runtime AllocsPerRun pins; this analyzer makes the same contract a
// build-time property over every function the hot path can reach, not just
// the trajectories the pinned tests happen to exercise.
//
// A function is hot when its declaration carries a `//hot:path` directive,
// or when it is reachable from a hot function through the intra-package
// callgraph. Reachability stops at call sites waived with
// //lint:allow hotalloc — that is how amortized cold paths (refactorization,
// arena growth, error exits) are carved out of the hot region.
//
// Inside a hot function the analyzer reports:
//
//   - make/new calls and slice/map composite literals (including &T{...}),
//     except inside an if-body guarded by a cap(...) read — that is the
//     amortized warm-up idiom, allocating only until storage reaches its
//     steady-state size;
//   - append calls, except append(buf[:0], ...) whose destination is an
//     explicit reslice (capacity reserved up front, growth impossible);
//     amortized-arena appends are waived with a reason;
//   - function literals (closures capture and escape);
//   - string<->[]byte/[]rune conversions;
//   - calls into package fmt (formatting allocates and reflects);
//   - interface boxing: a concrete-typed argument passed in an
//     interface-typed (incl. variadic ...interface{}) parameter slot;
//   - calls into other in-module packages whose target is not itself
//     //hot:path-annotated there (checked via facts, so the annotation
//     contract is enforced across package boundaries).
var Hotalloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation sites (make/append/closures/boxing/fmt) in //hot:path functions and everything they reach",
	Run:  runHotalloc,
}

// hotallocFacts is the per-package fact blob: the FuncKeys of this
// package's hot region (annotated roots plus everything they reach), which
// dependents use to check that their hot paths only call hot-vetted code.
type hotallocFacts struct {
	Hot []string `json:"hot,omitempty"`
}

func runHotalloc(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)
	roots := g.DirectiveRoots("hot:path")
	reached := g.Reachable(pass, roots)

	for _, node := range g.Functions() {
		root := reached[node.Func]
		if root == nil {
			continue
		}
		where := "//hot:path " + node.Func.Name()
		if root != node.Func {
			where = fmt.Sprintf("%s (hot: reachable from //hot:path %s)", node.Func.Name(), root.Name())
		}
		checkHotFunc(pass, node, where)
	}

	exportHotallocFacts(pass, reached)
	return nil
}

func checkHotFunc(pass *analysis.Pass, node *analysis.CallNode, where string) {
	guards := capGuardedRanges(node.Decl.Body)
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in %s allocates when it escapes; hoist it or annotate with //lint:allow hotalloc", where)
			return false // the literal's body is not the hot function's own code path
		case *ast.CompositeLit:
			if guards.contains(n.Pos()) {
				return true
			}
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "composite literal allocates in %s; reuse solver-owned scratch", where)
			}
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" && !guards.contains(n.Pos()) {
				pass.Reportf(cl.Pos(), "&composite literal escapes to the heap in %s; reuse solver-owned scratch", where)
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, guards, where)
		}
		return true
	})
}

// posRanges is a set of half-open source intervals.
type posRanges [][2]token.Pos

func (r posRanges) contains(p token.Pos) bool {
	for _, iv := range r {
		if p >= iv[0] && p < iv[1] {
			return true
		}
	}
	return false
}

// capGuardedRanges collects the bodies of if-statements whose condition
// reads cap(...). An allocation behind a capacity guard is the amortized
// warm-up idiom — it fires only while storage is still growing toward its
// steady-state size — so allocation checks inside those bodies are
// sanctioned without a waiver.
func capGuardedRanges(body *ast.BlockStmt) posRanges {
	var out posRanges
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Cond == nil {
			return true
		}
		readsCap := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "cap" {
					readsCap = true
				}
			}
			return !readsCap
		})
		if readsCap {
			out = append(out, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return out
}

func checkHotCall(pass *analysis.Pass, call *ast.CallExpr, guards posRanges, where string) {
	// Builtins and conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				if guards.contains(call.Pos()) {
					return // capacity-guarded warm-up allocation
				}
				pass.Reportf(call.Pos(), "%s in %s allocates; reuse solver-owned scratch or annotate with //lint:allow hotalloc", b.Name(), where)
			case "append":
				// append(buf[:0], ...) — a reslice as the destination is the
				// explicit capacity-reuse idiom (the repo's grow helpers);
				// growth was reserved up front, so the append cannot grow.
				if len(call.Args) > 0 {
					if _, resliced := ast.Unparen(call.Args[0]).(*ast.SliceExpr); resliced {
						return
					}
				}
				pass.Reportf(call.Pos(), "append in %s allocates on growth; reserve capacity, or waive with a reason if growth is amortized", where)
			}
			return
		}
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if stringBytesConversion(tv.Type, pass.TypesInfo.Types[call.Args[0]].Type) {
			pass.Reportf(call.Pos(), "string/byte-slice conversion copies in %s", where)
		}
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in %s allocates and reflects; move formatting off the hot path", fn.Name(), where)
		return
	}
	checkBoxing(pass, call, where)
	checkCrossPackageHot(pass, call, fn, where)
}

// checkBoxing reports concrete values passed in interface-typed parameter
// slots — each such pass boxes the value on the heap (modulo escape
// analysis, which the hot path must not gamble on).
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, where string) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		atv, ok := pass.TypesInfo.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() {
			continue
		}
		if types.IsInterface(atv.Type) {
			continue // already boxed upstream
		}
		if atv.Value != nil {
			continue // untyped constants box at compile time into rodata
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in %s", atv.Type, pt, where)
	}
}

// checkCrossPackageHot enforces the annotation contract across package
// boundaries: a hot function calling into another in-module package must
// target a function that is hot-annotated (and therefore hotalloc-checked)
// in its home package. In-module is detected by fact presence — only
// packages analyzed by this tool export hotalloc facts.
func checkCrossPackageHot(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func, where string) {
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return
	}
	data := pass.ReadFacts(fn.Pkg().Path())
	if data == nil {
		return
	}
	var facts hotallocFacts
	if err := json.Unmarshal(data, &facts); err != nil {
		return
	}
	key := analysis.FuncKey(fn)
	for _, h := range facts.Hot {
		if h == key {
			return
		}
	}
	pass.Reportf(call.Pos(), "%s calls %s.%s, which is not //hot:path in its package; annotate it there so hotalloc covers it, or waive this call as a cold path", where, fn.Pkg().Name(), fn.Name())
}

func stringBytesConversion(dst, src types.Type) bool {
	if dst == nil || src == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteish(src)) || (isByteish(dst) && isStr(src))
}

func exportHotallocFacts(pass *analysis.Pass, reached map[*types.Func]*types.Func) {
	if pass.Facts == nil {
		return
	}
	keys := make([]string, 0, len(reached))
	for fn := range reached {
		keys = append(keys, analysis.FuncKey(fn))
	}
	sort.Strings(keys)
	data, err := json.Marshal(hotallocFacts{Hot: keys})
	if err != nil {
		return
	}
	pass.ExportFacts(data)
}
