package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"tvnep/internal/analysis"
)

// Errdrop flags discarded error results from fallible solver-internal calls.
//
// A call is solver-internal when its callee is declared in the analyzed
// package itself or anywhere inside the tvnep module. Three discard shapes
// are reported: a call used as a bare expression statement whose results
// include an error, an assignment that binds an error-typed result to the
// blank identifier, and a fallible call launched by a defer or go statement
// (both discard every result by construction, so the error vanishes without
// even a blank assignment to grep for). Errors from the standard library
// and other external packages are out of scope — their contracts are not
// ours to police — and deliberate discards are annotated with
// //lint:allow errdrop.
var Errdrop = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded error returns from calls into this module",
	Run:  runErrdrop,
}

// errdropModulePrefix scopes the analyzer to callees inside this module.
const errdropModulePrefix = "tvnep"

func runErrdrop(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, ok := n.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, positions := internalErrorResults(pass, call)
				if name != "" && len(positions) > 0 {
					pass.Reportf(call.Pos(), "error result of %s discarded; handle it or annotate with //lint:allow errdrop", name)
				}
			case *ast.AssignStmt:
				reportBlankErrAssigns(pass, n)
			case *ast.DeferStmt:
				reportStmtCallDrop(pass, n.Call, "defer")
			case *ast.GoStmt:
				reportStmtCallDrop(pass, n.Call, "go")
			}
			return true
		})
	}
	return nil
}

// reportBlankErrAssigns flags `_` bindings of error-typed results from
// solver-internal calls, in both the tuple form `a, _ := f()` and the
// one-to-one form `_ = f()`.
func reportBlankErrAssigns(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		name, positions := internalErrorResults(pass, call)
		if name == "" {
			return
		}
		for _, i := range positions {
			if i < len(as.Lhs) && isBlank(as.Lhs[i]) {
				pass.Reportf(as.Lhs[i].Pos(), "error result of %s assigned to _; handle it or annotate with //lint:allow errdrop", name)
			}
		}
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		name, positions := internalErrorResults(pass, call)
		if name != "" && len(positions) > 0 {
			pass.Reportf(as.Lhs[i].Pos(), "error result of %s assigned to _; handle it or annotate with //lint:allow errdrop", name)
		}
	}
}

// reportStmtCallDrop flags fallible in-module calls launched by defer/go
// statements, which discard every result by construction. Calls to function
// literals resolve to no callee object and are skipped (the literal's own
// body is analyzed normally).
func reportStmtCallDrop(pass *analysis.Pass, call *ast.CallExpr, kw string) {
	name, positions := internalErrorResults(pass, call)
	if name != "" && len(positions) > 0 {
		pass.Reportf(call.Pos(), "error result of %s discarded by %s statement; wrap it in a closure that handles the error or annotate with //lint:allow errdrop", name, kw)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// internalErrorResults resolves call's callee. When the callee is declared
// in the analyzed package or inside the tvnep module, it returns the
// callee's name and the result indices whose type is error; otherwise it
// returns "" and nil.
func internalErrorResults(pass *analysis.Pass, call *ast.CallExpr) (string, []int) {
	obj := calleeObject(pass, call)
	if obj == nil || obj.Pkg() == nil {
		return "", nil
	}
	path := obj.Pkg().Path()
	if obj.Pkg() != pass.Pkg &&
		path != errdropModulePrefix && !strings.HasPrefix(path, errdropModulePrefix+"/") {
		return "", nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return "", nil
	}
	var positions []int
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			positions = append(positions, i)
		}
	}
	if len(positions) == 0 {
		return "", nil
	}
	return obj.Name(), positions
}

// calleeObject resolves the function object behind a direct call; nil for
// function literals, conversions, builtins, and indirect calls through
// function-typed values.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if obj := pass.TypesInfo.Uses[fun.Sel]; obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}
