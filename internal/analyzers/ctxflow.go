package analyzers

import (
	"go/ast"
	"go/types"

	"tvnep/internal/analysis"
)

// Ctxflow enforces context threading through exported entry points.
//
// Rule 1: an exported function (or method) that takes a context.Context
// parameter must actually use it — an accepted-but-ignored context promises
// cancellation that never happens, which in this repository means a solver
// that cannot be interrupted.
//
// Rule 2: inside any function that already has a context.Context parameter,
// calling context.Background() or context.TODO() severs the cancellation
// chain and is reported. The one sanctioned form is the nil-guard
// `ctx = context.Background()` that assigns directly to the context
// parameter itself (normalizing a caller-supplied nil context).
var Ctxflow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags exported functions that accept but ignore a context.Context, and Background()/TODO() calls that sever an inherited cancellation chain",
	Run:  runCtxflow,
}

func runCtxflow(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fd)
			if len(ctxParams) == 0 {
				continue
			}
			if fd.Name.IsExported() {
				for _, p := range ctxParams {
					if p.ident.Name == "_" {
						pass.Reportf(p.ident.Pos(), "exported %s discards its context.Context parameter; name it and thread it through", fd.Name.Name)
						continue
					}
					if !identUsed(pass, fd.Body, p.obj) {
						pass.Reportf(p.ident.Pos(), "exported %s accepts context.Context %q but never uses it; thread it into the calls it guards", fd.Name.Name, p.ident.Name)
					}
				}
			}
			reportFreshContexts(pass, fd, ctxParams)
		}
	}
	return nil
}

// ctxParam is one context.Context parameter: its declaring identifier and
// the object it defines.
type ctxParam struct {
	ident *ast.Ident
	obj   types.Object
}

// contextParams returns the function's parameters of type context.Context
// in declaration order, so diagnostics come out deterministically.
func contextParams(pass *analysis.Pass, fd *ast.FuncDecl) []ctxParam {
	var out []ctxParam
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			out = append(out, ctxParam{name, pass.TypesInfo.Defs[name]})
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// identUsed reports whether obj is referenced anywhere in body.
func identUsed(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	if obj == nil {
		return false
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}

// reportFreshContexts flags context.Background()/TODO() calls inside a
// function that already has a context parameter, except the nil-guard
// assignment back onto that parameter.
func reportFreshContexts(pass *analysis.Pass, fd *ast.FuncDecl, ctxParams []ctxParam) {
	paramObjs := make(map[types.Object]bool, len(ctxParams))
	for _, p := range ctxParams {
		if p.obj != nil {
			paramObjs[p.obj] = true
		}
	}
	// Calls whose result is assigned directly to a context parameter are the
	// sanctioned nil-guard; collect them before the flagging walk.
	sanctioned := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || !paramObjs[pass.TypesInfo.Uses[id]] {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok && freshContextName(pass, call) != "" {
				sanctioned[call] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sanctioned[call] {
			return true
		}
		if name := freshContextName(pass, call); name != "" {
			pass.Reportf(call.Pos(), "%s has a context.Context parameter but calls context.%s, severing the cancellation chain", fd.Name.Name, name)
		}
		return true
	})
}

// freshContextName returns "Background" or "TODO" when call is
// context.Background() / context.TODO(), and "" otherwise.
func freshContextName(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name()
	}
	return ""
}
