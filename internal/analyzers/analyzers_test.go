package analyzers_test

import (
	"path/filepath"
	"testing"

	"tvnep/internal/analysis"
	"tvnep/internal/analysis/antest"
	"tvnep/internal/analyzers"
)

// TestAnalyzers runs each analyzer over its fixture directory; the fixtures
// pin both the flagged lines (via // want markers) and the allowed idioms
// (exact-zero compares, nil-guards, //lint:allow waivers, external callees).
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name     string
		analyzer *analysis.Analyzer
	}{
		{"floateq", analyzers.Floateq},
		{"ctxflow", analyzers.Ctxflow},
		{"errdrop", analyzers.Errdrop},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			antest.Run(t, filepath.Join("testdata", tc.name), tc.analyzer)
		})
	}
}

// TestSuite applies the whole suite at once to every fixture dir: each
// fixture must stay clean under the other analyzers, so the suite can run
// as one vettool pass without cross-talk.
func TestSuite(t *testing.T) {
	for _, dir := range []string{"floateq", "ctxflow", "errdrop"} {
		t.Run(dir, func(t *testing.T) {
			antest.Run(t, filepath.Join("testdata", dir), analyzers.All...)
		})
	}
}
