package analyzers_test

import (
	"path/filepath"
	"testing"

	"tvnep/internal/analysis"
	"tvnep/internal/analysis/antest"
	"tvnep/internal/analyzers"
)

// TestAnalyzers runs each analyzer over its fixture directory; the fixtures
// pin both the flagged lines (via // want markers) and the allowed idioms
// (exact-zero compares, nil-guards, sort-after-collect, seeded generators,
// cold paths, //lint:allow waivers). Waiverstale runs under the full suite:
// it judges a waiver only when the analyzer the waiver names is part of the
// same run.
func TestAnalyzers(t *testing.T) {
	cases := []struct {
		name      string
		analyzers []*analysis.Analyzer
	}{
		{"floateq", []*analysis.Analyzer{analyzers.Floateq}},
		{"ctxflow", []*analysis.Analyzer{analyzers.Ctxflow}},
		{"errdrop", []*analysis.Analyzer{analyzers.Errdrop}},
		{"maporder", []*analysis.Analyzer{analyzers.Maporder}},
		{"nondet", []*analysis.Analyzer{analyzers.Nondet}},
		{"hotalloc", []*analysis.Analyzer{analyzers.Hotalloc}},
		{"waiverstale", analyzers.All},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			antest.Run(t, filepath.Join("testdata", tc.name), tc.analyzers...)
		})
	}
}

// TestSuite applies the whole suite at once to every fixture dir: each
// fixture must stay clean under the other analyzers (including the
// waiverstale post-pass over its //lint:allow annotations), so the suite
// can run as one vettool pass without cross-talk.
func TestSuite(t *testing.T) {
	for _, dir := range []string{"floateq", "ctxflow", "errdrop", "maporder", "nondet", "hotalloc", "waiverstale"} {
		t.Run(dir, func(t *testing.T) {
			antest.Run(t, filepath.Join("testdata", dir), analyzers.All...)
		})
	}
}

// TestByName pins the analyzer subset selector the -only lint flag uses.
func TestByName(t *testing.T) {
	if got := analyzers.ByName(nil); len(got) != len(analyzers.All) {
		t.Fatalf("ByName(nil) returned %d analyzers, want the whole suite (%d)", len(got), len(analyzers.All))
	}
	got := analyzers.ByName([]string{"hotalloc", "floateq", "bogus"})
	if len(got) != 2 || got[0] != analyzers.Floateq || got[1] != analyzers.Hotalloc {
		t.Fatalf("ByName selection wrong: got %v", got)
	}
}
