package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tvnep/internal/analysis"
)

// Maporder flags `range` loops over maps whose body has order-dependent
// effects. Go randomizes map iteration order per run, so any such loop is a
// direct threat to the solver's bit-identical replay guarantee: the same
// instance can produce differently ordered cut pools, differently hashed
// canonical rows, or differently ordered diagnostics from one run to the
// next.
//
// Reported effects inside a map-range body:
//
//   - append to a slice declared outside the loop — unless the enclosing
//     function visibly sorts that slice after the loop (the canonical
//     collect-keys-then-sort idiom is deterministic end to end);
//   - a channel send (delivery order becomes map order);
//   - writes into hashes and writers (methods named Write/WriteString/
//     WriteByte/WriteRune/Sum, and fmt.Fprint*/fmt.Print*) — the digest or
//     output depends on iteration order;
//   - Reportf calls (diagnostics emitted in map order);
//   - compound assignment (+=, -=, *=, /=) into a float or string variable
//     declared outside the loop — float rounding and string concatenation
//     are order-sensitive, unlike exact integer accumulation.
//
// The analyzer is scoped to the solver, eval and admission packages (where
// replay determinism is contractual); deliberate exceptions are annotated
// //lint:allow maporder with a reason.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags map-range loops whose body has iteration-order-dependent effects in solver/eval/admit packages",
	Run:  runMaporder,
}

// maporderScope lists the package-path suffixes the analyzer polices. The
// bare fixture names keep the analyzer testable outside the module.
var maporderScope = []string{
	"internal/core", "internal/depgraph", "internal/mip", "internal/lp",
	"internal/linalg/sparselu", "internal/greedy", "internal/eval",
	"internal/admit", "internal/solution", "internal/certify",
	"internal/analysis", "internal/analyzers",
	"maporder",
}

func inMaporderScope(path string) bool {
	for _, s := range maporderScope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

var orderSensitiveWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Sum": true, "Reportf": true,
}

func runMaporder(pass *analysis.Pass) error {
	if pass.Pkg == nil || !inMaporderScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(pass, rs) {
					return true
				}
				checkMapRangeBody(pass, fd, rs)
				return true
			})
		}
	}
	return nil
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkMapRangeBody reports the order-dependent effects inside one
// map-range loop.
func checkMapRangeBody(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Arrow, "channel send inside map range: delivery order follows randomized map iteration order")
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fd, rs, n)
		case *ast.CallExpr:
			checkMapRangeCall(pass, rs, n)
		}
		return true
	})
}

func checkMapRangeAssign(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			obj := outerIdentObj(pass, rs, lhs)
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsString) != 0 {
				pass.Reportf(as.TokPos, "%s %s inside map range accumulates in randomized iteration order; accumulate over sorted keys", obj.Name(), as.Tok)
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			obj := outerIdentObj(pass, rs, as.Lhs[i])
			if obj == nil {
				continue
			}
			if sortedAfter(pass, fd, rs, obj) {
				continue
			}
			pass.Reportf(call.Pos(), "append to %s inside map range leaks randomized iteration order; sort %s after the loop or range over sorted keys", obj.Name(), obj.Name())
		}
	}
}

func checkMapRangeCall(pass *analysis.Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Fprint") || strings.HasPrefix(fn.Name(), "Print")) {
		pass.Reportf(call.Pos(), "fmt.%s inside map range emits output in randomized iteration order", fn.Name())
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !orderSensitiveWriters[fn.Name()] {
		return
	}
	// Writes into a receiver created inside the loop body are loop-local
	// (e.g. hashing one key); only writes into outer state leak order.
	if obj := outerIdentObj(pass, rs, receiverRoot(sel.X)); obj == nil {
		return
	}
	pass.Reportf(call.Pos(), "%s inside map range feeds a hash/writer in randomized iteration order", fn.Name())
}

// receiverRoot peels selectors/stars/parens down to the root identifier of
// a method receiver expression.
func receiverRoot(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return e
		}
	}
}

// outerIdentObj resolves e to a variable object declared outside the range
// statement; nil when e is not a plain identifier or is loop-local.
func outerIdentObj(pass *analysis.Pass, rs *ast.RangeStmt, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
		return nil // declared by the loop itself (key/value var or body-local)
	}
	return obj
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether fd visibly sorts obj after the map-range loop
// — a call into package sort or slices, past rs, that mentions obj. This
// sanctions the canonical deterministic idiom: collect keys in map order,
// sort, then range over the sorted slice.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					mentions = true
					return false
				}
				return true
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
