package analyzers

import (
	"tvnep/internal/analysis"
)

// Waiverstale flags //lint:allow comments that no longer suppress any
// diagnostic. Waivers are deliberate, reviewed exceptions; once the code
// they excused is fixed or deleted they become misleading documentation —
// a reader assumes the named rule still fires there — and they mask future
// regressions on the same line for free. The framework records which
// waivers actually absorbed a diagnostic during the run; this post-pass
// reports the rest.
//
// A waiver is judged only when the analyzer it names was part of the same
// run, so partial-suite invocations never produce false staleness. Waivers
// naming waiverstale itself are exempt (they are meta-annotations for
// intentionally dormant waivers kept during refactors).
var Waiverstale = &analysis.Analyzer{
	Name: "waiverstale",
	Doc:  "flags //lint:allow waivers that suppress no diagnostic of the named analyzer",
	RunWaivers: func(pass *analysis.Pass, unused []analysis.Waiver) error {
		for _, w := range unused {
			pass.Reportf(w.Pos, "//lint:allow %s suppresses no %s diagnostic; delete the stale waiver", w.Analyzer, w.Analyzer)
		}
		return nil
	},
}
