package analyzers

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"strings"

	"tvnep/internal/analysis"
)

// Nondet flags nondeterminism sources reachable from the solver's
// deterministic entry points. The repository's contract (PRs 4–6) is that
// mip.Solve, lp.Instance.Solve, the eval sweeps and admit replay are pure
// functions of their inputs — bit-identical for any worker count and across
// runs — so wall-clock reads, the global math/rand generator and
// GOMAXPROCS/NumCPU-dependent branching on those paths are bugs unless
// explicitly sanctioned.
//
// Entry points are declared in source with a `//det:entry` directive on the
// function. From each entry the analyzer walks the intra-package callgraph
// (cutting edges at //lint:allow nondet call sites — the waiver vouches for
// the chain behind the call) and reports direct calls to:
//
//   - time.Now / time.Since / time.Until,
//   - package-level math/rand functions (the global, unseeded generator;
//     explicitly seeded rand.New(rand.NewSource(k)) locals are fine),
//   - runtime.GOMAXPROCS and runtime.NumCPU.
//
// Cross-package reach uses facts: each package exports the set of its
// functions that transitively hit an unwaived source, and callers see those
// functions as sources in turn. Calls into the stats/profiling packages are
// sanctioned by construction (latency accounting is allowed to read the
// clock). Deliberate wall-clock dependence — deadlines, latency stats —
// carries a //lint:allow nondet waiver at the call site with a reason.
var Nondet = &analysis.Analyzer{
	Name: "nondet",
	Doc:  "flags time.Now/global math-rand/GOMAXPROCS-dependent calls reachable from //det:entry deterministic entry points",
	Run:  runNondet,
}

// nondetExemptSuffixes are package paths whose callees are sanctioned
// wall-clock consumers: latency statistics and profiling plumbing.
var nondetExemptSuffixes = []string{"internal/stats", "internal/prof"}

// nondetFacts is the per-package fact blob: Tainted maps the FuncKey of
// every function that transitively reaches an unwaived nondeterminism
// source to a human-readable description of that source.
type nondetFacts struct {
	Tainted map[string]string `json:"tainted,omitempty"`
}

// nondetSource describes why a direct call site is nondeterministic; empty
// when it is not.
func nondetSource(pass *analysis.Pass, fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		// Package-level functions draw from the process-global generator;
		// the New*/constructor family builds explicitly seeded locals and
		// is the sanctioned deterministic alternative.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
			return "global " + pkg.Name() + "." + fn.Name()
		}
	case "runtime":
		switch fn.Name() {
		case "GOMAXPROCS", "NumCPU":
			return "runtime." + fn.Name()
		}
	}
	if pkg == pass.Pkg {
		return ""
	}
	for _, s := range nondetExemptSuffixes {
		if p := pkg.Path(); p == s || strings.HasSuffix(p, "/"+s) {
			return ""
		}
	}
	// Imported in-module functions that transitively reach a source are
	// sources themselves, via facts.
	if data := pass.ReadFacts(pkg.Path()); data != nil {
		var facts nondetFacts
		if err := json.Unmarshal(data, &facts); err == nil {
			if src, ok := facts.Tainted[analysis.FuncKey(fn)]; ok {
				return fmt.Sprintf("%s (%s.%s eventually calls it)", src, pkg.Name(), fn.Name())
			}
		}
	}
	return ""
}

func runNondet(pass *analysis.Pass) error {
	g := analysis.BuildCallGraph(pass)

	// Per-function direct offenses (unwaived call sites of a source).
	type offense struct {
		pos token.Pos
		src string
	}
	direct := make(map[*types.Func][]offense)
	for _, node := range g.Functions() {
		for _, e := range node.Edges {
			src := nondetSource(pass, e.Callee)
			if src == "" || pass.Allowed(e.Pos) {
				continue
			}
			direct[node.Func] = append(direct[node.Func], offense{e.Pos, src})
		}
	}

	// Propagate taint up the intra-package callgraph (for facts export):
	// a function is tainted when it directly offends or calls a tainted
	// local function at an unwaived site.
	tainted := make(map[*types.Func]string)
	for fn, offs := range direct {
		tainted[fn] = offs[0].src
	}
	for changed := true; changed; {
		changed = false
		for _, node := range g.Functions() {
			if tainted[node.Func] != "" {
				continue
			}
			for _, e := range node.Edges {
				src := tainted[e.Callee]
				if src == "" || pass.Allowed(e.Pos) {
					continue
				}
				tainted[node.Func] = src
				changed = true
				break
			}
		}
	}

	// Diagnostics: every function reachable from a //det:entry root has its
	// direct offenses reported at the call site.
	roots := g.DirectiveRoots("det:entry")
	reached := g.Reachable(pass, roots)
	for _, node := range g.Functions() {
		root := reached[node.Func]
		if root == nil {
			continue
		}
		for _, off := range direct[node.Func] {
			where := node.Func.Name()
			if root != node.Func {
				where = fmt.Sprintf("%s (reachable from //det:entry %s)", node.Func.Name(), root.Name())
			}
			pass.Reportf(off.pos, "nondeterministic %s in %s; gate it off the deterministic path or annotate with //lint:allow nondet", off.src, where)
		}
	}

	exportNondetFacts(pass, tainted)
	return nil
}

func exportNondetFacts(pass *analysis.Pass, tainted map[*types.Func]string) {
	if pass.Facts == nil {
		return
	}
	set := make(map[string]string)
	for fn, src := range tainted {
		set[analysis.FuncKey(fn)] = src
	}
	// json.Marshal emits map keys in sorted order, so the blob is
	// deterministic and cacheable.
	data, err := json.Marshal(nondetFacts{Tainted: set})
	if err != nil {
		return
	}
	pass.ExportFacts(data)
}
