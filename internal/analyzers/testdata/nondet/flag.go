// Fixture for the nondet analyzer: nondeterminism sources reachable from
// //det:entry functions. Lines with `// want` markers must be flagged; the
// rest pins the sanctioned forms (unreachable helpers, explicitly seeded
// generators, waived deadline/latency reads that cut the callgraph edge).
package nondet

import (
	"math/rand"
	"runtime"
	"time"
)

// Solve is the deterministic entry point of this fixture.
//
//det:entry
func Solve(n int) int {
	t := time.Now() // want "nondeterministic time.Now in Solve"
	total := shuffleOrder(n)
	total += workerCount()
	total += seeded(n)
	//lint:allow nondet -- latency accounting only; never feeds the result
	observeLatency()
	if t.IsZero() {
		total++
	}
	return total
}

// shuffleOrder is reachable from Solve, so its global-rand use is flagged.
func shuffleOrder(n int) int {
	return rand.Intn(n + 1) // want "nondeterministic global rand.Intn in shuffleOrder (reachable from //det:entry Solve)"
}

// workerCount is reachable from Solve: sizing by NumCPU makes the search
// shape depend on the host.
func workerCount() int {
	return runtime.NumCPU() // want "nondeterministic runtime.NumCPU in workerCount"
}

// seeded uses an explicitly seeded local generator: deterministic, allowed.
func seeded(n int) int {
	r := rand.New(rand.NewSource(int64(n)))
	return r.Intn(n + 1)
}

// observeLatency reads the clock, but every edge into it is waived: the
// //lint:allow nondet at the call site vouches for the whole chain.
func observeLatency() time.Time {
	return time.Now()
}

// coldPath is not reachable from any //det:entry root; its clock read is
// out of scope.
func coldPath() time.Duration {
	start := time.Now()
	return time.Since(start)
}
