// Fixture for the ctxflow analyzer: exported entry points must thread the
// context they accept, and no function with a context parameter may mint a
// fresh root context (except the nil-guard on the parameter itself).
package fixture

import "context"

func IgnoresContext(ctx context.Context) error { // want "accepts context.Context \"ctx\" but never uses it"
	return nil
}

func BlankContext(_ context.Context) {} // want "discards its context.Context parameter"

func Severs(ctx context.Context) {
	use(ctx)
	run(context.Background()) // want "severing the cancellation chain"
}

func MintsTODO(ctx context.Context) {
	use(ctx)
	run(context.TODO()) // want "severing the cancellation chain"
}

func NilGuard(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background() // sanctioned nil-guard: allowed
	}
	use(ctx)
}

func Threads(ctx context.Context) {
	use(ctx)
}

type engine struct{}

func (e *engine) Solve(ctx context.Context) error { // want "accepts context.Context \"ctx\" but never uses it"
	return nil
}

func (e *engine) Run(ctx context.Context) error {
	use(ctx)
	return nil
}

// unexported helpers may hold a context without using it (wrappers,
// interface satisfaction); only exported entry points promise cancellation.
func idleHelper(ctx context.Context) {}

//lint:allow ctxflow -- legacy shim keeps the public signature
func LegacyShim(ctx context.Context) {}

func use(ctx context.Context) {}
func run(ctx context.Context) {}
