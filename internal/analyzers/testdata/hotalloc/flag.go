// Fixture for the hotalloc analyzer: allocation sites inside //hot:path
// functions and everything they reach. Lines with `// want` markers must be
// flagged; the rest pins the sanctioned forms (cold functions, waived
// cold-path call edges, waived amortized growth).
package hotalloc

import "fmt"

type solver struct {
	scratch []float64
	arena   []float64
	sink    interface{}
}

func describe(v interface{}) string { return "x" }

// kernel is the fixture's pinned hot kernel.
//
//hot:path
func (s *solver) kernel(v []float64, name string) float64 {
	buf := make([]float64, len(v))   // want "make in //hot:path kernel allocates"
	tmp := []float64{1, 2}           // want "composite literal allocates in //hot:path kernel"
	out := &solver{}                 // want "composite literal escapes to the heap in //hot:path kernel"
	b := []byte(name)                // want "string/byte-slice conversion copies in //hot:path kernel"
	s.sink = describe(len(v))        // want "argument boxes int into interface"
	msg := fmt.Sprintf("%d", len(v)) // want "fmt.Sprintf in //hot:path kernel allocates and reflects"
	total := s.inner(v)
	//lint:allow hotalloc -- refactorization is the amortized cold path
	total += s.refactor(v)
	f := func() float64 { return total } // want "closure literal in //hot:path kernel allocates"
	_ = buf
	_ = tmp
	_ = out
	_ = b
	_ = msg
	return total + f()
}

// inner carries no annotation but is reachable from kernel, so it is hot
// and its allocation sites are flagged with provenance.
func (s *solver) inner(v []float64) float64 {
	w := make([]float64, len(v)) // want "make in inner (hot: reachable from //hot:path kernel) allocates"
	copy(w, v)
	t := 0.0
	for _, x := range w {
		t += x
	}
	//lint:allow hotalloc -- amortized arena growth; steady state is pre-reserved
	s.arena = append(s.arena, t)
	return t
}

// refactor is only called through a waived edge: the //lint:allow at the
// call site cuts it out of the hot region, so its allocations are cold.
func (s *solver) refactor(v []float64) float64 {
	s.scratch = make([]float64, 2*len(v))
	return float64(len(s.scratch))
}

// coldSetup has no //hot:path annotation and is not reachable from one.
func coldSetup(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

// grow is hot and appends: growth allocates unless waived.
//
//hot:path
func (s *solver) grow(x float64) {
	s.scratch = append(s.scratch, x) // want "append in //hot:path grow allocates on growth"
}

// reuse appends into an explicitly resliced destination: capacity was
// reserved up front, the append cannot grow, so it is sanctioned.
//
//hot:path
func (s *solver) reuse(v []float64) {
	s.scratch = append(s.scratch[:0], v...)
}

// warmup allocates only behind a capacity guard: the amortized warm-up
// idiom is sanctioned, while the unguarded make below it still flags.
//
//hot:path
func (s *solver) warmup(n int) []float64 {
	if cap(s.scratch) < n {
		s.scratch = make([]float64, n)
	}
	extra := make([]float64, n) // want "make in //hot:path warmup allocates"
	_ = extra
	return s.scratch[:n]
}
