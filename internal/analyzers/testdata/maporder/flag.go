// Fixture for the maporder analyzer: map-range loops whose bodies have
// iteration-order-dependent effects. Lines with `// want` markers must be
// flagged; the rest pins the sanctioned forms (loop-local state, visible
// sort-after-collect, exact integer accumulation, //lint:allow waivers).
package maporder

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
)

type reporter struct{}

func (reporter) Reportf(format string, args ...interface{}) {}

func appendLeaks(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map range leaks randomized iteration order"
	}
	return keys
}

func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // sorted below: the canonical deterministic idiom
	}
	sort.Strings(keys)
	return keys
}

func appendLoopLocal(m map[string][]int, want int) int {
	n := 0
	for _, vs := range m {
		var local []int
		for _, v := range vs {
			if v == want {
				local = append(local, v) // loop-local slice: order cannot leak
			}
		}
		n += len(local)
	}
	return n
}

func sendLeaks(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want "channel send inside map range"
	}
}

func printLeaks(m map[int]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%d=%d\n", k, v) // want "fmt.Fprintf inside map range emits output"
	}
}

func hashLeaks(m map[string]int) uint32 {
	h := fnv.New32a()
	for k := range m {
		h.Write([]byte(k)) // want "Write inside map range feeds a hash/writer"
	}
	return h.Sum32()
}

func hashPerKey(m map[string]uint32) bool {
	ok := true
	for k, want := range m {
		h := fnv.New32a()
		h.Write([]byte(k)) // hash created inside the loop: per-key digest, no order leak
		if h.Sum32() != want {
			ok = false
		}
	}
	return ok
}

func reportLeaks(m map[string]int, r reporter) {
	for k := range m {
		r.Reportf("saw %s", k) // want "Reportf inside map range feeds a hash/writer"
	}
}

func accumulate(m map[string]float64) (float64, int, string) {
	var sum float64
	var n int
	var joined string
	for k, v := range m {
		sum += v    // want "sum += inside map range accumulates"
		n++         // exact integer accumulation commutes: allowed
		joined += k // want "joined += inside map range accumulates"
	}
	return sum, n, joined
}

func waived(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//lint:allow maporder -- debug-only aggregate, never feeds solver state
		sum += v
	}
	return sum
}

func sliceRangesAreFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x) // slice iteration is ordered
	}
	return out
}
