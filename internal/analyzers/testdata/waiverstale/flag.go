// Fixture for the waiverstale analyzer: //lint:allow annotations that no
// longer suppress anything. It runs under the full suite so the named
// analyzers are present to be judged. Lines with `// want` markers must be
// flagged; the rest pins live waivers and the waiverstale meta-exemption.
package fixture

import (
	"io"
	"strings"
)

func liveWaiver(a, b float64) bool {
	//lint:allow floateq -- bit-exact memo key comparison
	return a == b
}

func staleWaiver(a, b int) bool {
	//lint:allow floateq -- ints never needed a waiver // want "//lint:allow floateq suppresses no floateq diagnostic"
	return a == b
}

func staleExternalDrop(r io.Reader) {
	// io.Copy is an external callee, so errdrop never fired here and the
	// waiver is dead weight.
	//lint:allow errdrop -- hash of self is best-effort // want "//lint:allow errdrop suppresses no errdrop diagnostic"
	_, _ = io.Copy(io.Discard, r)
}

func halfStale(a, b float64) bool {
	return a == b //lint:allow floateq,errdrop -- only the float half is real // want "//lint:allow errdrop suppresses no errdrop diagnostic"
}

func dormantButKept(s string) bool {
	//lint:allow waiverstale -- kept dormant while the memo path is refactored
	//lint:allow floateq -- memo key comparison returns next PR
	return strings.HasPrefix(s, "memo:")
}
