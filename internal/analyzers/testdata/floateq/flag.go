// Fixture for the floateq analyzer: float equality and bare tolerance
// literals. Lines carrying a `// want` marker must be flagged; everything
// else pins the allowed forms (exact-zero compares, named constants,
// //lint:allow waivers).
package fixture

import "tvnep/internal/numtol"

// Named tolerances are the convention floateq enforces; literals inside a
// constant declaration are therefore allowed.
const localTol = 1e-9

func compare(a, b float64) bool {
	if a == b { // want "float == comparison"
		return true
	}
	if a != b { // want "float != comparison"
		return false
	}
	if a == 0 { // exact-zero idiom: allowed
		return true
	}
	if 0 != b { // exact-zero on either side: allowed
		return false
	}
	return a-b < 1e-6 // want "bare tolerance literal 1e-6"
}

func spelledOut(x float64) bool {
	return x < 2.5e-9 // want "bare tolerance literal 2.5e-9"
}

func named(a, b float64) bool {
	return a-b < numtol.TimeTol && b-a < localTol
}

func waived(a, b float64) bool {
	//lint:allow floateq -- bit-exact memo key comparison
	return a == b
}

func intsAreFine(a, b int) bool {
	return a == b
}
