// Fixture for the errdrop analyzer: error results of solver-internal calls
// (same package or anywhere under the tvnep module) must be handled;
// external packages are out of scope.
package fixture

import "fmt"

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

type store struct{}

func (s *store) flush() error { return nil }

func consume(s *store) int {
	fallible()     // want "error result of fallible discarded"
	_ = fallible() // want "error result of fallible assigned to _"
	s.flush()      // want "error result of flush discarded"
	v, _ := pair() // want "error result of pair assigned to _"

	//lint:allow errdrop -- best-effort cache warm, failure is benign
	fallible()

	if err := fallible(); err != nil {
		v++
	}
	w, err := pair()
	if err != nil {
		v += w
	}
	fmt.Println(v) // external callee: allowed
	return v
}
