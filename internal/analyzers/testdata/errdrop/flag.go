// Fixture for the errdrop analyzer: error results of solver-internal calls
// (same package or anywhere under the tvnep module) must be handled;
// external packages are out of scope.
package fixture

import "fmt"

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

type store struct{}

func (s *store) flush() error { return nil }

func consume(s *store) int {
	fallible()     // want "error result of fallible discarded"
	_ = fallible() // want "error result of fallible assigned to _"
	s.flush()      // want "error result of flush discarded"
	v, _ := pair() // want "error result of pair assigned to _"

	//lint:allow errdrop -- best-effort cache warm, failure is benign
	fallible()

	if err := fallible(); err != nil {
		v++
	}
	w, err := pair()
	if err != nil {
		v += w
	}
	fmt.Println(v) // external callee: allowed
	return v
}

// deferred pins the defer/go discard shapes: both statements throw away
// every result of the call they launch.
func deferred(s *store, done chan struct{}) {
	defer s.flush() // want "error result of flush discarded by defer statement"
	go fallible()   // want "error result of fallible discarded by go statement"

	//lint:allow errdrop -- shutdown flush is best-effort by design
	defer s.flush()

	defer func() {
		if err := s.flush(); err != nil { // handled inside the closure: allowed
			<-done
		}
	}()
	go func() {
		fallible() // want "error result of fallible discarded"
	}()
}
