package analyzers

import "tvnep/internal/analysis"

// All is the tvnep-lint suite in its canonical order.
var All = []*analysis.Analyzer{Floateq, Ctxflow, Errdrop}
