// Package analyzers holds the custom static-analysis passes behind the
// tvnep-lint vettool: floateq (float comparison and tolerance-literal
// hygiene), ctxflow (context threading through solver entry points),
// errdrop (discarded errors from fallible solver-internal calls), maporder
// (map iteration order leaking into solver state), nondet (wall-clock /
// global-rand / GOMAXPROCS reads reachable from deterministic entry
// points), hotalloc (allocation sites in //hot:path functions) and
// waiverstale (//lint:allow annotations that suppress nothing). Each
// analyzer encodes a repository-wide convention that is otherwise enforced
// only by review or by runtime tests on specific trajectories; see the Doc
// string on each for the exact rule and for the sanctioned escape hatch
// (named constants, sort-after-collect, //lint:allow annotations).
package analyzers

import "tvnep/internal/analysis"

// All is the tvnep-lint suite in its canonical order. Waiverstale must run
// last conceptually (it judges the others' waiver usage); the framework
// enforces that by running RunWaivers passes after every ordinary one
// regardless of position.
var All = []*analysis.Analyzer{Floateq, Ctxflow, Errdrop, Maporder, Nondet, Hotalloc, Waiverstale}

// ByName returns the analyzers whose names appear in the comma-separated
// list, preserving suite order; unknown names are ignored. An empty list
// selects the whole suite.
func ByName(names []string) []*analysis.Analyzer {
	if len(names) == 0 {
		return All
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*analysis.Analyzer
	for _, a := range All {
		if want[a.Name] {
			out = append(out, a)
		}
	}
	return out
}
