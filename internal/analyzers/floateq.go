package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"tvnep/internal/analysis"
)

// Floateq flags float equality comparisons and bare tolerance literals.
//
// Rule 1: `==` / `!=` between two floating-point operands is reported unless
// one side is the exact constant 0 — comparing against exact zero is the
// deliberate skip-zero idiom of sparse numerical code (zero is exactly
// representable and only ever produced by assignment), while any other
// float equality silently depends on accumulated roundoff.
//
// Rule 2: a scientific-notation literal with a negative exponent (1e-6,
// 2.5e-9, …) outside a constant declaration is reported: such literals are
// numeric tolerances, and tolerances must be named — preferably in
// internal/numtol, or as a kernel-local constant — so their meaning and
// provenance are documented exactly once. The numtol package itself and
// _test.go files are exempt.
var Floateq = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flags ==/!= on float operands and bare tolerance literals outside constant declarations",
	Run:  runFloateq,
}

var tolLitRe = regexp.MustCompile(`(?i)^[0-9]+(\.[0-9]+)?e-[0-9]+$`)

func runFloateq(pass *analysis.Pass) error {
	if pass.Pkg != nil && strings.HasSuffix(pass.Pkg.Path(), "internal/numtol") {
		return nil
	}
	isFloat := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	isZeroConst := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Value == nil {
			return false
		}
		return tv.Value.String() == "0"
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		// Spans of constant declarations: literals inside them are being
		// named, which is exactly the convention the analyzer enforces.
		var constSpans [][2]token.Pos
		ast.Inspect(f, func(n ast.Node) bool {
			if gd, ok := n.(*ast.GenDecl); ok && gd.Tok == token.CONST {
				constSpans = append(constSpans, [2]token.Pos{gd.Pos(), gd.End()})
				return false
			}
			return true
		})
		inConst := func(pos token.Pos) bool {
			for _, s := range constSpans {
				if pos >= s[0] && pos < s[1] {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if !isFloat(n.X) || !isFloat(n.Y) {
					return true
				}
				if isZeroConst(n.X) || isZeroConst(n.Y) {
					return true
				}
				pass.Reportf(n.OpPos, "float %s comparison; use an explicit tolerance (internal/numtol) or compare against exact 0", n.Op)
			case *ast.BasicLit:
				if n.Kind != token.FLOAT || !tolLitRe.MatchString(n.Value) {
					return true
				}
				if inConst(n.Pos()) {
					return true
				}
				pass.Reportf(n.Pos(), "bare tolerance literal %s; name it in internal/numtol or a local constant declaration", n.Value)
			}
			return true
		})
	}
	return nil
}

// isTestFile reports whether the file behind f is a _test.go file.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
