package core

import (
	"fmt"

	"tvnep/internal/model"
)

// buildEmbedding creates the time-invariant embedding machinery shared by
// all three formulations: the acceptance variables x_R (Table III), node
// mapping variables x_V (or a fixed mapping), link-flow variables x_E, and
// Constraints (1) and (2) of Table IV.
func buildEmbedding(b *Built) {
	if b.Opts.FlowMode == FlowPath {
		buildPathEmbedding(b)
		return
	}
	m := b.Model
	inst := b.Inst
	sub := inst.Sub
	k := b.numReq()

	b.XR = make([]model.Var, k)
	b.XE = make([][][]model.Var, k)
	if b.Opts.FixedMapping == nil {
		b.XV = make([][][]model.Var, k)
	}

	for r, req := range inst.Reqs {
		buildAcceptVar(b, r)

		if b.XV != nil {
			// Free node mapping: Constraint (1) — every virtual node sits
			// on exactly one substrate node iff the request is embedded.
			b.XV[r] = make([][]model.Var, req.G.N)
			for v := 0; v < req.G.N; v++ {
				b.XV[r][v] = make([]model.Var, sub.NumNodes())
				sum := model.Expr()
				for s := 0; s < sub.NumNodes(); s++ {
					b.XV[r][v][s] = m.Binary(fmt.Sprintf("xV[%d][%d][%d]", r, v, s))
					sum.Add(1, b.XV[r][v][s])
				}
				sum.Add(-1, b.XR[r])
				m.AddEQ(sum, 0, fmt.Sprintf("map[%d][%d]", r, v))
			}
		}

		// Link flow variables and Constraint (2): a splittable unit flow
		// from host(u) to host(v) for every virtual link (u,v), scaled by
		// the acceptance decision.
		b.XE[r] = make([][]model.Var, req.G.NumEdges())
		for lv := 0; lv < req.G.NumEdges(); lv++ {
			b.XE[r][lv] = make([]model.Var, sub.NumLinks())
			for ls := 0; ls < sub.NumLinks(); ls++ {
				b.XE[r][lv][ls] = m.Continuous(fmt.Sprintf("xE[%d][%d][%d]", r, lv, ls), 0, 1)
			}
			u, v := req.G.Edge(lv)
			for ns := 0; ns < sub.NumNodes(); ns++ {
				bal := model.Expr()
				for _, e := range sub.G.Out(ns) {
					bal.Add(1, b.XE[r][lv][e])
				}
				for _, e := range sub.G.In(ns) {
					bal.Add(-1, b.XE[r][lv][e])
				}
				if b.XV != nil {
					bal.Add(-1, b.XV[r][u][ns])
					bal.Add(1, b.XV[r][v][ns])
					m.AddEQ(bal, 0, fmt.Sprintf("flow[%d][%d][%d]", r, lv, ns))
				} else {
					hostU, hostV := b.Opts.FixedMapping[r][u], b.Opts.FixedMapping[r][v]
					coef := 0.0
					if ns == hostU {
						coef += 1
					}
					if ns == hostV {
						coef -= 1
					}
					bal.Add(-coef, b.XR[r])
					m.AddEQ(bal, 0, fmt.Sprintf("flow[%d][%d][%d]", r, lv, ns))
				}
			}
		}
	}
}

// allocNodeExpr returns the macro alloc_V(R, N_s) of Table V as a linear
// expression.
func (b *Built) allocNodeExpr(r, ns int) *model.LinExpr {
	req := b.Inst.Reqs[r]
	e := model.Expr()
	if b.XV != nil {
		for v := 0; v < req.G.N; v++ {
			e.Add(req.NodeDemand[v], b.XV[r][v][ns])
		}
		return e
	}
	total := 0.0
	for v, host := range b.Opts.FixedMapping[r] {
		if host == ns {
			total += req.NodeDemand[v]
		}
	}
	if total != 0 {
		e.Add(total, b.XR[r])
	}
	return e
}

// allocLinkExpr returns the macro alloc_E(R, L_s) of Table V. In FlowPath
// mode only the seeded path columns appear in the compiled expression;
// priced columns join the same rows later through the linkUse registry.
func (b *Built) allocLinkExpr(r, ls int) *model.LinExpr {
	if b.XE == nil {
		return b.seedAllocLinkExpr(r, ls)
	}
	req := b.Inst.Reqs[r]
	e := model.Expr()
	for lv := 0; lv < req.G.NumEdges(); lv++ {
		if d := req.LinkDemand[lv]; d != 0 {
			e.Add(d, b.XE[r][lv][ls])
		}
	}
	return e
}

// resourceCount returns |V_S| + |E_S|; resources are indexed nodes first,
// then links.
func (b *Built) resourceCount() int { return b.Inst.Sub.NumNodes() + b.Inst.Sub.NumLinks() }

// resourceCap returns c_S of resource index rsc.
func (b *Built) resourceCap(rsc int) float64 {
	sub := b.Inst.Sub
	if rsc < sub.NumNodes() {
		return sub.NodeCap[rsc]
	}
	return sub.LinkCap[rsc-sub.NumNodes()]
}

// allocExpr returns alloc_V or alloc_E for a unified resource index.
func (b *Built) allocExpr(r, rsc int) *model.LinExpr {
	sub := b.Inst.Sub
	if rsc < sub.NumNodes() {
		return b.allocNodeExpr(r, rsc)
	}
	return b.allocLinkExpr(r, rsc-sub.NumNodes())
}

// buildTimeVars creates t_{e_i} (1-based, numEvents of them), t⁺_R, t⁻_R
// with their domain bounds, and the monotonicity constraint (13).
func buildTimeVars(b *Built, numEvents int) {
	m := b.Model
	T := b.Inst.Horizon
	b.TEvent = make([]model.Var, numEvents+1) // index 0 unused
	for i := 1; i <= numEvents; i++ {
		b.TEvent[i] = m.Continuous(fmt.Sprintf("t_e[%d]", i), 0, T)
	}
	for i := 1; i < numEvents; i++ {
		// (13): t_{e_i} ≤ t_{e_{i+1}}
		m.AddLE(model.Expr().Add(1, b.TEvent[i]).Add(-1, b.TEvent[i+1]), 0,
			fmt.Sprintf("mono[%d]", i))
	}
	k := b.numReq()
	b.TPlus = make([]model.Var, k)
	b.TMinus = make([]model.Var, k)
	for r, req := range b.Inst.Reqs {
		// max() guards against negative-epsilon flexibilities from float
		// rounding in t^s + d + flex.
		b.TPlus[r] = m.Continuous(fmt.Sprintf("t+[%d]", r),
			req.Earliest, max(req.Earliest, req.LatestStart()))
		b.TMinus[r] = m.Continuous(fmt.Sprintf("t-[%d]", r),
			req.EarliestEnd(), max(req.EarliestEnd(), req.Latest))
		// (18): t⁻ − t⁺ = d
		m.AddEQ(model.Expr().Add(1, b.TMinus[r]).Add(-1, b.TPlus[r]), req.Duration,
			fmt.Sprintf("dur[%d]", r))
	}
}

// chiSumUpTo returns Σ_{j≤i} χ[r][j] over the variables that exist.
func chiSumUpTo(chi []model.Var, i int) *model.LinExpr {
	e := model.Expr()
	for j := 1; j <= i && j < len(chi); j++ {
		if chi[j].Valid() {
			e.Add(1, chi[j])
		}
	}
	return e
}

// chiSumFrom returns Σ_{j≥i} χ[r][j] over the variables that exist.
func chiSumFrom(chi []model.Var, i int) *model.LinExpr {
	e := model.Expr()
	for j := i; j < len(chi); j++ {
		if j >= 1 && chi[j].Valid() {
			e.Add(1, chi[j])
		}
	}
	return e
}
