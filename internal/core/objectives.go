package core

import (
	"fmt"

	"tvnep/internal/model"
	"tvnep/internal/numtol"
)

// applyObjective installs the objective of Section IV-E selected in the
// build options. Every model in this package maximizes.
func applyObjective(b *Built) {
	switch b.Opts.Objective {
	case AccessControl:
		applyAccessControl(b)
	case MaxEarliness:
		applyMaxEarliness(b)
	case BalanceNodeLoad:
		applyBalanceNodeLoad(b)
	case DisableLinks:
		applyDisableLinks(b)
	case MinMakespan:
		applyMinMakespan(b)
	default:
		panic(fmt.Sprintf("core: unknown objective %d", int(b.Opts.Objective)))
	}
}

// applyAccessControl maximizes provider revenue:
// Σ_R x_R · d_R · Σ_{N_v} c_R(N_v)   (Section IV-E-1).
func applyAccessControl(b *Built) {
	obj := model.Expr()
	for r, req := range b.Inst.Reqs {
		obj.Add(req.Duration*req.TotalNodeDemand(), b.XR[r])
	}
	b.Model.SetObjective(obj)
}

// applyMaxEarliness maximizes Σ_R d_R·(1 − (t⁺_R − t^s_R)/(t^e_R − d_R −
// t^s_R)) over a fixed request set (Section IV-E-2). Requests without
// flexibility contribute the constant fee d_R.
func applyMaxEarliness(b *Built) {
	obj := model.Expr()
	for r, req := range b.Inst.Reqs {
		flex := req.Flexibility()
		if flex <= numtol.EventCoincide {
			obj.AddConst(req.Duration)
			continue
		}
		// d·(1 − (t⁺ − t^s)/flex) = d + d·t^s/flex − (d/flex)·t⁺
		obj.AddConst(req.Duration + req.Duration*req.Earliest/flex)
		obj.Add(-req.Duration/flex, b.TPlus[r])
	}
	b.Model.SetObjective(obj)
}

// applyBalanceNodeLoad maximizes the number of substrate nodes whose load
// never exceeds fraction f of their capacity (Section IV-E-3): binary
// F(N_s) with, for every state s_i,
// Σ_R a_R(s_i, N_s) ≤ f·c + (1−f)·c·(1 − F(N_s)).
func applyBalanceNodeLoad(b *Built) {
	if b.stateNodeLoad == nil {
		panic("core: formulation did not install a state node-load accessor")
	}
	m := b.Model
	f := b.Opts.loadFraction()
	obj := model.Expr()
	for ns := 0; ns < b.Inst.Sub.NumNodes(); ns++ {
		F := m.Binary(fmt.Sprintf("F[%d]", ns))
		obj.Add(1, F)
		c := b.Inst.Sub.NodeCap[ns]
		for n := 1; n <= b.numStates; n++ {
			load := b.stateNodeLoad(n, ns)
			if load.Len() == 0 {
				continue
			}
			// load + (1−f)·c·F ≤ c
			con := model.Expr().AddExpr(1, load).Add((1-f)*c, F)
			m.AddLE(con, c, fmt.Sprintf("bal[%d][%d]", ns, n))
		}
	}
	m.SetObjective(obj)
}

// applyMinMakespan minimizes the completion time of the last request over a
// fixed set: a fresh variable M ≥ t⁻_R for all R, objective max −M (the
// models maximize throughout).
func applyMinMakespan(b *Built) {
	m := b.Model
	M := m.Continuous("makespan", 0, b.Inst.Horizon)
	for r := range b.Inst.Reqs {
		m.AddGE(model.Expr().Add(1, M).Add(-1, b.TMinus[r]), 0,
			fmt.Sprintf("mk[%d]", r))
	}
	m.SetObjective(model.Expr().Add(-1, M))
}

// applyDisableLinks maximizes the number of substrate links carrying no
// flow over the whole horizon (Section IV-E-4): binary D(L_s) with
// Σ_{R, L_v} x_E(L_v, L_s) ≤ M·(1 − D(L_s)).
func applyDisableLinks(b *Built) {
	m := b.Model
	obj := model.Expr()
	// M = total number of virtual links (each x_E ≤ 1).
	M := 0.0
	for _, req := range b.Inst.Reqs {
		M += float64(req.G.NumEdges())
	}
	if M == 0 {
		M = 1
	}
	for ls := 0; ls < b.Inst.Sub.NumLinks(); ls++ {
		D := m.Binary(fmt.Sprintf("D[%d]", ls))
		obj.Add(1, D)
		con := model.Expr().Add(M, D)
		if b.XE != nil {
			for r, req := range b.Inst.Reqs {
				for lv := 0; lv < req.G.NumEdges(); lv++ {
					con.Add(1, b.XE[r][lv][ls])
				}
			}
			m.AddLE(con, M, fmt.Sprintf("dis[%d]", ls))
			continue
		}
		// FlowPath: the activity on ls is the total path-variable value over
		// the paths crossing it — seeds in the compiled row, priced columns
		// via the unit-flow link-use registry (flow counts, not allocation,
		// so the coefficient is 1 regardless of demand).
		for r, req := range b.Inst.Reqs {
			for lv := 0; lv < req.G.NumEdges(); lv++ {
				for kp, p := range b.SeedPaths[r][lv] {
					for _, pls := range p {
						if pls == ls {
							con.Add(1, b.Lambda[r][lv][kp])
						}
					}
				}
			}
		}
		row := m.AddLE(con, M, fmt.Sprintf("dis[%d]", ls))
		b.recordLinkUseUnit(ls, row, 1)
	}
	m.SetObjective(obj)
}
