package core

import (
	"context"
	"math"
	"testing"
	"time"

	"tvnep/internal/graph"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

func TestFlowModeParseAndString(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FlowMode
	}{{"", FlowArc}, {"arc", FlowArc}, {"path", FlowPath}} {
		got, err := ParseFlowMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFlowMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseFlowMode("spanning-tree"); err == nil {
		t.Fatal("ParseFlowMode accepted an unknown mode")
	}
	if FlowArc.String() != "arc" || FlowPath.String() != "path" {
		t.Fatalf("String(): %v / %v", FlowArc, FlowPath)
	}
}

func TestPathModeRequiresFixedMapping(t *testing.T) {
	inst, opts := pairInstance(1)
	opts.FixedMapping = nil
	opts.FlowMode = FlowPath
	defer func() {
		if recover() == nil {
			t.Fatal("FlowPath without a fixed mapping did not panic")
		}
	}()
	BuildCSigma(inst, opts)
}

func TestPathModeRequiresCSigma(t *testing.T) {
	inst, opts := pairInstance(1)
	opts.FlowMode = FlowPath
	for _, f := range []Formulation{Delta, Sigma} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("FlowPath under %v did not panic", f)
				}
			}()
			Build(f, inst, opts)
		}()
	}
}

// diamondInstance: two requests each embedding one virtual link from
// substrate node 0 to node 3 over a diamond (0→1→3 and 0→2→3) with unit
// link capacities and overlapping rigid windows. Both seed columns pick the
// same fewest-hops route 0→1→3 (BFS edge-index tie-break), so accepting
// both requests is only possible after the pricer generates the alternate
// route — the minimal instance on which column generation must fire.
func diamondInstance() (*Instance, BuildOptions) {
	g := graph.NewDigraph(4)
	g.AddEdge(0, 1) // e0
	g.AddEdge(1, 3) // e1
	g.AddEdge(0, 2) // e2
	g.AddEdge(2, 3) // e3
	sub := substrate.New(g, 4, 1)
	req := func(name string) *vnet.Request {
		rg := graph.NewDigraph(2)
		rg.AddEdge(0, 1)
		return &vnet.Request{
			Name:       name,
			G:          rg,
			NodeDemand: []float64{0.5, 0.5},
			LinkDemand: []float64{1},
			Earliest:   0,
			Duration:   2,
			Latest:     2,
		}
	}
	inst := &Instance{Sub: sub, Reqs: []*vnet.Request{req("a"), req("b")}, Horizon: 2}
	opts := BuildOptions{
		Objective:    AccessControl,
		FixedMapping: vnet.NodeMapping{{0, 3}, {0, 3}},
		FlowMode:     FlowPath,
	}
	return inst, opts
}

func TestPathPricingGeneratesAlternateRoute(t *testing.T) {
	inst, opts := diamondInstance()
	b := BuildCSigma(inst, opts)
	if b.XE != nil {
		t.Fatal("FlowPath build created arc variables")
	}
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal || sol == nil {
		t.Fatalf("status %v, sol %v", ms.Status, sol)
	}
	if sol.NumAccepted() != 2 {
		t.Fatalf("accepted %d, want 2 (pricer must open the alternate route)", sol.NumAccepted())
	}
	if ms.Columns.PricedCols == 0 {
		t.Fatal("both requests accepted without pricing a single column — seeds cannot carry both")
	}
	if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
		t.Fatalf("checker rejected path-mode solution: %v", err)
	}
	// Every priced column must be tagged with a contiguous substrate path.
	for _, c := range ms.AppliedColumns {
		r, lv, links, ok := PathTagInfo(c)
		if !ok {
			t.Fatalf("priced column %q carries no path tag", c.Name)
		}
		if r < 0 || r >= len(inst.Reqs) || lv != 0 {
			t.Fatalf("column %q tagged (%d, %d)", c.Name, r, lv)
		}
		assertContiguousPath(t, inst.Sub.G, links, 0, 3)
	}
	// Arc mode agrees on the optimum.
	arc := opts
	arc.FlowMode = FlowArc
	asol, ams := BuildCSigma(inst, arc).Solve(context.Background(), nil)
	if ams.Status != model.StatusOptimal {
		t.Fatalf("arc status %v", ams.Status)
	}
	if math.Abs(asol.Objective-sol.Objective) > 1e-6 {
		t.Fatalf("arc objective %v != path objective %v", asol.Objective, sol.Objective)
	}
}

func assertContiguousPath(t *testing.T, g *graph.Digraph, links []int, src, dst int) {
	t.Helper()
	at := src
	for _, e := range links {
		u, v := g.Edge(e)
		if u != at {
			t.Fatalf("path %v: edge %d starts at %d, walker at %d", links, e, u, at)
		}
		at = v
	}
	if at != dst {
		t.Fatalf("path %v ends at %d, want %d", links, at, dst)
	}
}

func TestPathModeUnroutableReturnsNoSolution(t *testing.T) {
	// Substrate with no route between the pinned endpoints under a fixed-set
	// objective: the artificial absorbs the unit flow, which Extract must
	// refuse to report as an embedding.
	g := graph.NewDigraph(2) // two isolated nodes
	sub := substrate.New(g, 4, 1)
	rg := graph.NewDigraph(2)
	rg.AddEdge(0, 1)
	req := &vnet.Request{
		Name: "iso", G: rg,
		NodeDemand: []float64{0.5, 0.5}, LinkDemand: []float64{1},
		Earliest: 0, Duration: 2, Latest: 2,
	}
	inst := &Instance{Sub: sub, Reqs: []*vnet.Request{req}, Horizon: 2}
	opts := BuildOptions{
		Objective:    MaxEarliness, // fixed set: x_R forced to 1
		FixedMapping: vnet.NodeMapping{{0, 1}},
		FlowMode:     FlowPath,
	}
	b := BuildCSigma(inst, opts)
	sol, ms := b.Solve(context.Background(), nil)
	if !ms.HasSolution {
		t.Fatalf("restricted master should stay feasible via the artificial, status %v", ms.Status)
	}
	if sol != nil {
		t.Fatalf("Extract reported an embedding over a disconnected substrate: %+v", sol)
	}
}

// pathEquivalenceObjectives are the objective functions the arc ≡ path
// property test sweeps; AccessControl runs on the raw scenario, the
// fixed-set objectives on its accepted subset.
var pathEquivalenceObjectives = []Objective{
	MaxEarliness, BalanceNodeLoad, DisableLinks, MinMakespan,
}

func TestPathMatchesArcRandom(t *testing.T) {
	// Satellite property test: arc-mode and path-mode cΣ must reach the same
	// certified optimum across objectives × seeds × flexibilities, and every
	// extracted path-mode solution must pass the independent checker.
	cfg := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 3, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1.5, WeibullShape: 2, WeibullScale: 2,
	}
	seeds := []int64{1, 2, 3, 4}
	flexes := []float64{0, 1.5}
	if testing.Short() {
		seeds = seeds[:2]
		flexes = flexes[1:]
	}
	lim := &model.SolveOptions{TimeLimit: 60 * time.Second}
	for _, flex := range flexes {
		for _, seed := range seeds {
			cfg.FlexibilityHr = flex
			sc := workload.Generate(cfg, seed)
			inst := &Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}

			accepted := comparePathArc(t, inst, BuildOptions{
				Objective:    AccessControl,
				FixedMapping: sc.Mapping,
			}, seed, flex, lim)

			// Fixed-set objectives need an embeddable request set: reuse the
			// accept set of the access-control optimum.
			var reqs []*vnet.Request
			var mapping vnet.NodeMapping
			for r, ok := range accepted {
				if ok {
					reqs = append(reqs, inst.Reqs[r])
					mapping = append(mapping, sc.Mapping[r])
				}
			}
			if len(reqs) == 0 {
				continue
			}
			sub := &Instance{Sub: inst.Sub, Reqs: reqs, Horizon: inst.Horizon}
			for _, obj := range pathEquivalenceObjectives {
				comparePathArc(t, sub, BuildOptions{
					Objective:    obj,
					FixedMapping: mapping,
				}, seed, flex, lim)
			}
		}
	}
}

// comparePathArc solves the instance in both flow modes, asserts both close
// to the same certified optimum with checker-clean solutions, and returns
// the arc-mode accept set.
func comparePathArc(t *testing.T, inst *Instance, opts BuildOptions, seed int64, flex float64, lim *model.SolveOptions) []bool {
	t.Helper()
	opts.FlowMode = FlowArc
	asol, ams := BuildCSigma(inst, opts).Solve(context.Background(), lim)
	if ams.Status != model.StatusOptimal || asol == nil {
		t.Fatalf("seed %d flex %v %v arc: status %v", seed, flex, opts.Objective, ams.Status)
	}
	opts.FlowMode = FlowPath
	psol, pms := BuildCSigma(inst, opts).Solve(context.Background(), lim)
	if pms.Status != model.StatusOptimal || psol == nil {
		t.Fatalf("seed %d flex %v %v path: status %v", seed, flex, opts.Objective, pms.Status)
	}
	if math.Abs(asol.Objective-psol.Objective) > 1e-5*(1+math.Abs(asol.Objective)) {
		t.Fatalf("seed %d flex %v %v: arc objective %v, path objective %v",
			seed, flex, opts.Objective, asol.Objective, psol.Objective)
	}
	for _, sol := range []*solution.Solution{asol, psol} {
		if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
			t.Fatalf("seed %d flex %v %v: checker rejected solution: %v", seed, flex, opts.Objective, err)
		}
	}
	return asol.Accepted
}

func TestPathModeParallelDeterminism(t *testing.T) {
	// Pricing rides the committer-only column pool, so path-mode solves must
	// stay bit-identical for every worker count.
	inst, opts := diamondInstance()
	type fp struct {
		obj, bound uint64
		nodes      int
		lpIters    int
		priced     int
		applied    int
	}
	var base fp
	for i, w := range []int{1, 2, 4, 8} {
		b := BuildCSigma(inst, opts)
		sol, ms := b.Solve(context.Background(), &model.SolveOptions{Workers: w})
		if ms.Status != model.StatusOptimal || sol == nil {
			t.Fatalf("workers %d: status %v", w, ms.Status)
		}
		got := fp{
			obj:     math.Float64bits(sol.Objective),
			bound:   math.Float64bits(sol.Bound),
			nodes:   ms.Nodes,
			lpIters: ms.LPIterations,
			priced:  ms.Columns.PricedCols,
			applied: len(ms.AppliedColumns),
		}
		if i == 0 {
			base = got
		} else if got != base {
			t.Fatalf("workers %d: fingerprint %+v differs from workers 1: %+v", w, got, base)
		}
	}
}
