// Package core implements the paper's primary contribution: the three
// continuous-time mathematical-programming formulations of the Temporal
// Virtual Network Embedding Problem —
//
//   - the Δ-Model (Section III-B): state *changes* at event points encoded
//     with big-M conditional constraints,
//   - the Σ-Model (Section III-C): explicit per-request state allocation
//     variables with provably stronger LP relaxations,
//   - the cΣ-Model (Section IV): the compactified Σ-Model with |R|+1 event
//     points, temporal dependency graph cuts and the activity-interval
//     state-space-reduction presolve,
//
// together with the four objective functions of Section IV-E.
package core

import (
	"context"
	"fmt"
	"math"

	"tvnep/internal/model"
	"tvnep/internal/numtol"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// Formulation identifies one of the paper's three MIP models.
type Formulation int

const (
	// Delta is the state-change Δ-Model of Section III-B.
	Delta Formulation = iota
	// Sigma is the explicit-state Σ-Model of Section III-C.
	Sigma
	// CSigma is the compact state model cΣ of Section IV.
	CSigma
)

// String implements fmt.Stringer.
func (f Formulation) String() string {
	switch f {
	case Delta:
		return "Δ"
	case Sigma:
		return "Σ"
	case CSigma:
		return "cΣ"
	default:
		return "?"
	}
}

// Objective selects one of the objective functions of Section IV-E.
type Objective int

const (
	// AccessControl maximizes provider revenue Σ x_R·d_R·Σ c_R(N_v),
	// deciding which requests to accept.
	AccessControl Objective = iota
	// MaxEarliness maximizes the earliness fee over a fixed request set.
	MaxEarliness
	// BalanceNodeLoad maximizes the number of substrate nodes never loaded
	// above fraction f of their capacity (fixed request set).
	BalanceNodeLoad
	// DisableLinks maximizes the number of substrate links that carry no
	// flow over the whole horizon (fixed request set).
	DisableLinks
	// MinMakespan minimizes the time at which the last request finishes
	// (fixed request set). The paper's contribution list names makespan
	// minimization alongside the Section IV-E objectives; it attaches to
	// all three formulations through the t⁻ variables alone.
	MinMakespan
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case AccessControl:
		return "access-control"
	case MaxEarliness:
		return "max-earliness"
	case BalanceNodeLoad:
		return "balance-node-load"
	case DisableLinks:
		return "disable-links"
	case MinMakespan:
		return "min-makespan"
	default:
		return "?"
	}
}

// FixedSet reports whether the objective assumes all requests are embedded
// (everything except access control).
func (o Objective) FixedSet() bool { return o != AccessControl }

// Instance is one TVNEP problem instance (Definition 2.1 inputs).
type Instance struct {
	Sub     *substrate.Network
	Reqs    []*vnet.Request
	Horizon float64 // T
}

// Validate checks the instance inputs.
func (in *Instance) Validate() error {
	if err := in.Sub.Validate(); err != nil {
		return err
	}
	if in.Horizon <= 0 {
		return fmt.Errorf("core: nonpositive horizon %v", in.Horizon)
	}
	for _, r := range in.Reqs {
		if err := r.Validate(); err != nil {
			return err
		}
		if r.Latest > in.Horizon+numtol.WindowTol {
			return fmt.Errorf("core: request %s window exceeds horizon %v", r.Name, in.Horizon)
		}
	}
	return nil
}

// CutMode selects how the cΣ-Model's pairwise precedence cuts (Constraint
// 20) reach the solver.
type CutMode int

const (
	// CutStatic emits every Constraint-(20) row into the root LP at build
	// time — the formulation exactly as written in the paper. O(|R|²·|R|)
	// rows, most of which never bind.
	CutStatic CutMode = iota
	// CutLazy registers a separator on the model instead: the rows are
	// generated from the dependency graph on demand, appended only when a
	// fractional relaxation point violates them. Same certified optimum,
	// strictly fewer root-LP rows.
	CutLazy
	// CutOff drops Constraint (20) entirely and widens the event windows
	// to the full ranges (no Constraint 19 either) — the ablation baseline.
	CutOff
)

// String implements fmt.Stringer.
func (c CutMode) String() string {
	switch c {
	case CutStatic:
		return "static"
	case CutLazy:
		return "lazy"
	case CutOff:
		return "off"
	default:
		return "?"
	}
}

// ParseCutMode parses the CLI spelling of a cut mode.
func ParseCutMode(s string) (CutMode, error) {
	switch s {
	case "static", "":
		return CutStatic, nil
	case "lazy":
		return CutLazy, nil
	case "off":
		return CutOff, nil
	default:
		return CutStatic, fmt.Errorf("core: unknown cut mode %q (want static, lazy or off)", s)
	}
}

// FlowMode selects how the splittable link flows of Constraint (2) reach the
// solver in the cΣ-Model.
type FlowMode int

const (
	// FlowArc emits per-(virtual link, substrate link) arc variables x_E with
	// per-substrate-node flow-conservation rows — the formulation exactly as
	// written in the paper. O(|E_R|·|E_S|) columns and O(|E_R|·|V_S|) rows
	// per request up front.
	FlowArc FlowMode = iota
	// FlowPath replaces the arc variables with path variables: one convexity
	// row per virtual link (Σ_p λ_p + artificial = x_R), a seed column along
	// a fewest-hops substrate path, and further paths priced in on demand by
	// a reduced-cost shortest-path pricer (internal/mip column generation).
	// Same certified optimum — every arc flow decomposes into simple paths
	// and capacity-useless cycles — with far fewer root-LP columns on
	// WAN-sized substrates. cΣ only, and requires a fixed node mapping (path
	// endpoints must be known at build time).
	FlowPath
)

// String implements fmt.Stringer.
func (f FlowMode) String() string {
	switch f {
	case FlowArc:
		return "arc"
	case FlowPath:
		return "path"
	default:
		return "?"
	}
}

// ParseFlowMode parses the CLI spelling of a flow mode.
func ParseFlowMode(s string) (FlowMode, error) {
	switch s {
	case "arc", "":
		return FlowArc, nil
	case "path":
		return FlowPath, nil
	default:
		return FlowArc, fmt.Errorf("core: unknown flow mode %q (want arc or path)", s)
	}
}

// BuildOptions configures a formulation build.
type BuildOptions struct {
	Objective Objective
	// LoadFraction is f for BalanceNodeLoad (default 0.5).
	LoadFraction float64
	// FixedMapping, when non-nil, pins every virtual node to a substrate
	// node a priori, as the paper's evaluation does (Section VI-A). When
	// nil, binary node-mapping variables x_V are created.
	FixedMapping vnet.NodeMapping
	// CutMode selects static emission (default), lazy separation or no
	// Constraint-(20) cuts for the cΣ-Model; see the CutMode constants.
	CutMode CutMode
	// FlowMode selects arc variables (default) or priced path variables for
	// the link flows of the cΣ-Model; see the FlowMode constants. FlowPath
	// requires a FixedMapping and the cΣ formulation.
	FlowMode FlowMode
	// DisablePresolve turns the activity-interval state-space reduction
	// off. cΣ only; used for ablations.
	DisablePresolve bool
	// ForceAccept / ForceReject pin x_R for individual requests (used by
	// the greedy algorithm, Constraints 24/25). Indexed by request; nil is
	// allowed.
	ForceAccept []bool
	ForceReject []bool
}

func (o BuildOptions) loadFraction() float64 {
	if o.LoadFraction <= 0 || o.LoadFraction >= 1 {
		return 0.5
	}
	return o.LoadFraction
}

// Built is a compiled formulation with its variable handles, ready to solve
// (or to receive a custom objective, as the greedy algorithm does).
type Built struct {
	Model *model.Model
	Kind  Formulation
	Inst  *Instance
	Opts  BuildOptions

	// XR[r] decides whether request r is embedded (Table III).
	XR []model.Var
	// XV[r][v][s] maps virtual node v of request r onto substrate node s;
	// nil when a fixed mapping is used.
	XV [][][]model.Var
	// XE[r][lv][ls] maps virtual link lv onto substrate link ls; nil in
	// FlowPath mode, where link flows live on path variables instead.
	XE [][][]model.Var
	// Lambda[r][lv] holds the statically seeded path variables of FlowPath
	// mode (further paths are priced in as raw LP columns, reported through
	// model.Solution.AppliedColumns); nil in FlowArc mode.
	Lambda [][][]model.Var
	// SeedPaths[r][lv][k] is the substrate-link sequence of seed column
	// Lambda[r][lv][k].
	SeedPaths [][][][]int
	// Art[r][lv] is the FlowPath convexity artificial, a big-M-penalized
	// binary that absorbs the unit flow when no priced path can carry it
	// (nonzero only when the request is forced accepted yet unroutable —
	// Extract treats that as no solution). The zero Var for trivial links
	// whose endpoints share a substrate node.
	Art [][]model.Var
	// ChiPlus[r][i] / ChiMinus[r][i] map request starts/ends onto abstract
	// event points (1-based event index i; entries outside the model's
	// event range or cut windows are the zero Var).
	ChiPlus, ChiMinus [][]model.Var
	// TEvent[i] is t_{e_i} (1-based; index 0 unused).
	TEvent []model.Var
	// TPlus[r], TMinus[r] are the start/end times t⁺_R, t⁻_R.
	TPlus, TMinus []model.Var

	// numStates is the number of inter-event states of the formulation.
	numStates int
	// precCandidates is the size of the lazily separated Constraint-(20)
	// family (CutLazy builds only); see PrecCutCandidates.
	precCandidates int
	// stateNodeLoad returns the total allocation expression on substrate
	// node ns during state n (1-based); installed by each builder and used
	// by the BalanceNodeLoad objective.
	stateNodeLoad func(n, ns int) *model.LinExpr
	// linkUse[r][lv][ls] lists the compiled rows in which one unit of
	// (r, lv)-flow over substrate link ls participates (FlowPath builds
	// only); the pricer assembles priced path columns from it, and the seed
	// columns carry exactly the same coefficients through the expressions.
	linkUse [][][][]rowCoef
	// convRow[r][lv] is the FlowPath convexity row index (−1 for trivial
	// virtual links whose endpoints share a substrate node).
	convRow [][]int
}

// rowCoef is one (compiled row, coefficient-per-unit-flow) entry of the
// FlowPath link-use registry.
type rowCoef struct {
	row  int
	coef float64
}

// numReq is a convenience accessor.
func (b *Built) numReq() int { return len(b.Inst.Reqs) }

// SetObjective replaces the built model's objective with a custom expression
// (the greedy algorithm swaps in its per-iteration objective this way). Use
// it instead of Model.SetObjective on a Built: in FlowPath mode the big-M
// penalties on the convexity artificials scale with the objective and must be
// re-applied after every replacement.
func (b *Built) SetObjective(e *model.LinExpr) {
	b.Model.SetObjective(e)
	if b.Opts.FlowMode == FlowPath && b.linkUse != nil {
		applyArtPenalty(b)
	}
}

// Solve optimizes the built model and converts the result into a
// solution.Solution. The raw model solution is returned alongside for
// callers that need solver statistics or custom variable values.
// Cancelling ctx stops the solve cooperatively with
// model.StatusCancelled; a nil ctx is treated as context.Background().
func (b *Built) Solve(ctx context.Context, opts *model.SolveOptions) (*solution.Solution, *model.Solution) {
	ms := b.Model.Optimize(ctx, opts)
	return b.Extract(ms), ms
}

// Extract converts a model solution into a solution.Solution. Returns nil
// when the model solution carries no feasible assignment.
func (b *Built) Extract(ms *model.Solution) *solution.Solution {
	if !ms.HasSolution {
		return nil
	}
	k := b.numReq()
	sub := b.Inst.Sub
	sol := &solution.Solution{
		Accepted:  make([]bool, k),
		Start:     make([]float64, k),
		End:       make([]float64, k),
		Hosts:     make([][]int, k),
		Flows:     make([][][]float64, k),
		Objective: ms.Obj,
		Bound:     ms.Bound,
		Gap:       ms.Gap,
		Optimal:   ms.Status == model.StatusOptimal && ms.Gap == 0,
		Nodes:     ms.Nodes,
		Runtime:   ms.Runtime,
	}
	for r, req := range b.Inst.Reqs {
		sol.Accepted[r] = ms.Value(b.XR[r]) > 0.5
		sol.Start[r] = ms.Value(b.TPlus[r])
		// Clean rounding: the schedule end is derived from the extracted
		// start and the exact duration. The model's own t⁻ is LP-tolerance
		// accurate; if it disagrees beyond tolerance something is wrong
		// with the formulation, so record a warning instead of silently
		// preferring one of the two values.
		sol.End[r] = sol.Start[r] + req.Duration
		if tMinus := ms.Value(b.TMinus[r]); math.Abs(tMinus-sol.End[r]) > numtol.TimeTol {
			sol.Warnings = append(sol.Warnings, fmt.Sprintf(
				"request %s: model end time t⁻=%.9g disagrees with start+duration=%.9g",
				req.Name, tMinus, sol.End[r]))
		}
		if b.Opts.FixedMapping != nil {
			sol.Hosts[r] = append([]int(nil), b.Opts.FixedMapping[r]...)
		} else {
			hosts := make([]int, req.G.N)
			for v := 0; v < req.G.N; v++ {
				bestS, bestVal := 0, math.Inf(-1)
				for s := 0; s < sub.NumNodes(); s++ {
					if val := ms.Value(b.XV[r][v][s]); val > bestVal {
						bestS, bestVal = s, val
					}
				}
				hosts[v] = bestS
			}
			sol.Hosts[r] = hosts
		}
		flows := make([][]float64, req.G.NumEdges())
		for lv := range flows {
			flows[lv] = make([]float64, sub.NumLinks())
			if b.XE != nil {
				for ls := 0; ls < sub.NumLinks(); ls++ {
					f := ms.Value(b.XE[r][lv][ls])
					if f < numtol.FlowCutoff {
						f = 0
					}
					flows[lv][ls] = f
				}
				continue
			}
			// FlowPath: the arc flow on ls is the total path-variable value
			// over the paths crossing it — seed columns first, priced
			// columns below (they cover every request at once).
			for k, p := range b.SeedPaths[r][lv] {
				v := ms.Value(b.Lambda[r][lv][k])
				if v < numtol.FlowCutoff {
					continue
				}
				for _, ls := range p {
					flows[lv][ls] += v
				}
			}
			if art := b.Art[r][lv]; art.Valid() && sol.Accepted[r] {
				if v := ms.Value(art); v > numtol.FlowTol {
					// The request was accepted but its unit flow fell on the
					// big-M artificial: no substrate path could carry it, so
					// the reported assignment is not a real embedding.
					sol.Warnings = append(sol.Warnings, fmt.Sprintf(
						"request %s: virtual link %d routed %.3g of its flow on the convexity artificial",
						req.Name, lv, v))
					return nil
				}
			}
		}
		sol.Flows[r] = flows
	}
	if b.XE == nil {
		x := ms.X()
		for k, c := range ms.AppliedColumns {
			tag, ok := c.Tag.(pathTag)
			if !ok {
				continue
			}
			j := ms.Columns.ColsAtRoot + k
			if j >= len(x) {
				continue // incumbent predates this column: value is zero
			}
			v := x[j]
			if v < numtol.FlowCutoff {
				continue
			}
			for _, ls := range tag.links {
				sol.Flows[tag.r][tag.lv][ls] += v
			}
		}
	}
	return sol
}

// Build dispatches to the requested formulation.
func Build(f Formulation, inst *Instance, opts BuildOptions) *Built {
	switch f {
	case Delta:
		return BuildDelta(inst, opts)
	case Sigma:
		return BuildSigma(inst, opts)
	case CSigma:
		return BuildCSigma(inst, opts)
	default:
		panic(fmt.Sprintf("core: unknown formulation %d", int(f)))
	}
}
