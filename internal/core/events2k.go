package core

import (
	"fmt"

	"tvnep/internal/model"
)

// buildBijectiveEvents creates the event machinery shared by the Δ- and
// Σ-Models (Section III-A): 2·|R| abstract event points, a bijective
// mapping of request starts AND ends onto them, the start-before-end
// ordering, and the temporal attachment in which both starts and ends are
// pinned exactly to their event's time value.
func buildBijectiveEvents(b *Built) {
	m := b.Model
	k := b.numReq()
	numEvents := 2 * k
	T := b.Inst.Horizon

	buildTimeVars(b, numEvents)

	b.ChiPlus = make([][]model.Var, k)
	b.ChiMinus = make([][]model.Var, k)
	for r := 0; r < k; r++ {
		b.ChiPlus[r] = make([]model.Var, numEvents+1)
		b.ChiMinus[r] = make([]model.Var, numEvents+1)
		for i := 1; i <= numEvents; i++ {
			b.ChiPlus[r][i] = m.Binary(fmt.Sprintf("chi+[%d][%d]", r, i))
			b.ChiMinus[r][i] = m.Binary(fmt.Sprintf("chi-[%d][%d]", r, i))
		}
		m.AddEQ(chiSumUpTo(b.ChiPlus[r], numEvents), 1, fmt.Sprintf("start1[%d]", r))
		m.AddEQ(chiSumUpTo(b.ChiMinus[r], numEvents), 1, fmt.Sprintf("end1[%d]", r))
		// End strictly after start: Σ_{j≤i} χ⁻ ≤ Σ_{j≤i−1} χ⁺.
		for i := 1; i <= numEvents; i++ {
			lhs := chiSumUpTo(b.ChiMinus[r], i)
			lhs.AddExpr(-1, chiSumUpTo(b.ChiPlus[r], i-1))
			m.AddLE(lhs, 0, fmt.Sprintf("order[%d][%d]", r, i))
		}
	}
	// Each event hosts exactly one start or end (Table VII).
	for i := 1; i <= numEvents; i++ {
		sum := model.Expr()
		for r := 0; r < k; r++ {
			sum.Add(1, b.ChiPlus[r][i]).Add(1, b.ChiMinus[r][i])
		}
		m.AddEQ(sum, 1, fmt.Sprintf("event1[%d]", i))
	}

	// Temporal attachment: starts and ends pinned to their event's time.
	for r := 0; r < k; r++ {
		for i := 1; i <= numEvents; i++ {
			// (14)/(15) for starts.
			e14 := model.Expr().Add(1, b.TPlus[r]).Add(-1, b.TEvent[i])
			e14.AddExpr(T, chiSumUpTo(b.ChiPlus[r], i))
			m.AddLE(e14, T, fmt.Sprintf("t14[%d][%d]", r, i))
			e15 := model.Expr().Add(1, b.TPlus[r]).Add(-1, b.TEvent[i])
			e15.AddExpr(-T, chiSumFrom(b.ChiPlus[r], i))
			m.AddGE(e15, -T, fmt.Sprintf("t15[%d][%d]", r, i))
			// Exact analogues for ends (the Δ/Σ event model releases
			// resources exactly at the end's event point).
			e16 := model.Expr().Add(1, b.TMinus[r]).Add(-1, b.TEvent[i])
			e16.AddExpr(T, chiSumUpTo(b.ChiMinus[r], i))
			m.AddLE(e16, T, fmt.Sprintf("t16[%d][%d]", r, i))
			e17 := model.Expr().Add(1, b.TMinus[r]).Add(-1, b.TEvent[i])
			e17.AddExpr(-T, chiSumFrom(b.ChiMinus[r], i))
			m.AddGE(e17, -T, fmt.Sprintf("t17[%d][%d]", r, i))
		}
	}
}

// BuildSigma constructs the explicit-state Σ-Model of Section III-C:
// 2·|R| event points with a bijective start/end mapping and per-request
// state allocation variables a_R(s_i, r) on the 2·|R|−1 states.
func BuildSigma(inst *Instance, opts BuildOptions) *Built {
	k := len(inst.Reqs)
	b := &Built{
		Model: model.New("Sigma", model.Maximize),
		Kind:  Sigma,
		Inst:  inst,
		Opts:  opts,
	}
	m := b.Model

	buildEmbedding(b)
	buildBijectiveEvents(b)

	numStates := 2*k - 1
	if k == 0 {
		numStates = 0
	}
	nRes := b.resourceCount()
	aVars := make(map[[3]int]model.Var)
	for n := 1; n <= numStates; n++ {
		for rsc := 0; rsc < nRes; rsc++ {
			capRsc := b.resourceCap(rsc)
			capacity := model.Expr()
			any := false
			for r := 0; r < k; r++ {
				alloc := b.allocExpr(r, rsc)
				if alloc.Len() == 0 {
					continue
				}
				a := m.Continuous(fmt.Sprintf("a[%d][%d][%d]", r, n, rsc), 0, model.Inf())
				aVars[[3]int{r, n, rsc}] = a
				// (7): a ≥ alloc − c·(1 − Σ(R, e_n)).
				con := model.Expr().Add(1, a)
				con.AddExpr(-1, alloc)
				con.AddExpr(-capRsc, chiSumUpTo(b.ChiPlus[r], n))
				con.AddExpr(capRsc, chiSumUpTo(b.ChiMinus[r], n))
				m.AddGE(con, -capRsc, fmt.Sprintf("state[%d][%d][%d]", r, n, rsc))
				capacity.Add(1, a)
				any = true
			}
			if any {
				m.AddLE(capacity, capRsc, fmt.Sprintf("cap[%d][%d]", n, rsc))
			}
		}
	}

	b.numStates = numStates
	b.stateNodeLoad = func(n, ns int) *model.LinExpr {
		load := model.Expr()
		for r := 0; r < k; r++ {
			if a, ok := aVars[[3]int{r, n, ns}]; ok {
				load.Add(1, a)
			}
		}
		return load
	}

	applyObjective(b)
	return b
}

// BuildDelta constructs the state-change Δ-Model of Section III-B: the same
// 2·|R| bijective event structure as the Σ-Model, but the substrate state
// is tracked only through per-event change variables Δ_{e_i}(r) pinned by
// the big-M conditional constraints (3)–(6), accumulated into per-state
// totals.
func BuildDelta(inst *Instance, opts BuildOptions) *Built {
	k := len(inst.Reqs)
	b := &Built{
		Model: model.New("Delta", model.Maximize),
		Kind:  Delta,
		Inst:  inst,
		Opts:  opts,
	}
	m := b.Model

	buildEmbedding(b)
	buildBijectiveEvents(b)

	numStates := 2*k - 1
	if k == 0 {
		numStates = 0
	}
	nRes := b.resourceCount()
	// Δ_{e_i}(rsc): free state-change variables, one per event that opens a
	// state; A[n][rsc]: accumulated allocation per state, bounded by the
	// capacity (Constraint 9 in cumulative form).
	deltas := make([][]model.Var, numStates+1)
	accums := make([][]model.Var, numStates+1)
	negInf := -model.Inf()
	for i := 1; i <= numStates; i++ {
		deltas[i] = make([]model.Var, nRes)
		accums[i] = make([]model.Var, nRes)
		for rsc := 0; rsc < nRes; rsc++ {
			capRsc := b.resourceCap(rsc)
			deltas[i][rsc] = m.Continuous(fmt.Sprintf("delta[%d][%d]", i, rsc), negInf, model.Inf())
			accums[i][rsc] = m.Continuous(fmt.Sprintf("A[%d][%d]", i, rsc), 0, capRsc)
			// A_n = A_{n−1} + Δ_{e_n}
			con := model.Expr().Add(1, accums[i][rsc]).Add(-1, deltas[i][rsc])
			if i > 1 {
				con.Add(-1, accums[i-1][rsc])
			}
			m.AddEQ(con, 0, fmt.Sprintf("accum[%d][%d]", i, rsc))
		}
	}

	// Conditional constraints (3)–(6) pinning Δ to ±alloc of the request
	// whose checkpoint is mapped on the event.
	for i := 1; i <= numStates; i++ {
		for rsc := 0; rsc < nRes; rsc++ {
			capRsc := b.resourceCap(rsc)
			d := deltas[i][rsc]
			for r := 0; r < k; r++ {
				// Note: the constraints are added even when alloc is the
				// empty expression — they are exactly what pins Δ to zero
				// when the event carries a checkpoint of a request that
				// does not use this resource.
				alloc := b.allocExpr(r, rsc)
				// (3): Δ ≤ alloc + c·(1 − χ⁺)
				c3 := model.Expr().Add(1, d).AddExpr(-1, alloc).Add(capRsc, b.ChiPlus[r][i])
				m.AddLE(c3, capRsc, fmt.Sprintf("d3[%d][%d][%d]", i, rsc, r))
				// (4): Δ ≥ alloc − 2c·(1 − χ⁺)
				c4 := model.Expr().Add(1, d).AddExpr(-1, alloc).Add(-2*capRsc, b.ChiPlus[r][i])
				m.AddGE(c4, -2*capRsc, fmt.Sprintf("d4[%d][%d][%d]", i, rsc, r))
				// (5): Δ ≤ −alloc + 2c·(1 − χ⁻)
				c5 := model.Expr().Add(1, d).AddExpr(1, alloc).Add(2*capRsc, b.ChiMinus[r][i])
				m.AddLE(c5, 2*capRsc, fmt.Sprintf("d5[%d][%d][%d]", i, rsc, r))
				// (6): Δ ≥ −alloc − c·(1 − χ⁻)
				c6 := model.Expr().Add(1, d).AddExpr(1, alloc).Add(-capRsc, b.ChiMinus[r][i])
				m.AddGE(c6, -capRsc, fmt.Sprintf("d6[%d][%d][%d]", i, rsc, r))
			}
		}
	}

	b.numStates = numStates
	b.stateNodeLoad = func(n, ns int) *model.LinExpr {
		return model.Expr().Add(1, accums[n][ns])
	}

	applyObjective(b)
	return b
}
