package core

import (
	"context"
	"os"
	"testing"
	"time"

	"tvnep/internal/model"
	"tvnep/internal/workload"
)

// TestDebugTiming is a diagnostic: per-formulation solve statistics on the
// random cross-model scenario family. Run it explicitly with
// TVNEP_DEBUG_TIMING=1 (it deliberately drives the Δ-Model into its
// timeout, which takes tens of seconds).
func TestDebugTiming(t *testing.T) {
	if os.Getenv("TVNEP_DEBUG_TIMING") == "" {
		t.Skip("set TVNEP_DEBUG_TIMING=1 to run the timing diagnostic")
	}
	cfg := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 3, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1.5, WeibullShape: 2, WeibullScale: 2,
		FlexibilityHr: 1.5,
	}
	for seed := int64(1); seed <= 2; seed++ {
		sc := workload.Generate(cfg, seed)
		inst := &Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		opts := BuildOptions{Objective: AccessControl, FixedMapping: sc.Mapping}
		for _, f := range []Formulation{CSigma, Sigma, Delta} {
			start := time.Now()
			b := Build(f, inst, opts)
			buildTime := time.Since(start)
			_, ms := b.Solve(context.Background(), &model.SolveOptions{TimeLimit: 20 * time.Second})
			t.Logf("seed %d %v: vars=%d constrs=%d ints=%d build=%v status=%v obj=%v gap=%.3g nodes=%d lpiters=%d time=%v",
				seed, f, b.Model.NumVars(), b.Model.NumConstrs(), b.Model.NumIntVars(),
				buildTime, ms.Status, ms.Obj, ms.Gap, ms.Nodes, ms.LPIterations, ms.Runtime)
		}
	}
}
