package core

import (
	"context"
	"math"
	"testing"

	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// The formulations are topology-agnostic (the paper: "the algorithms
// presented in this paper are rather general and support all these
// models"). Exercise chain and clique requests through the cΣ-Model.

func TestChainRequestEmbeds(t *testing.T) {
	sub := substrate.Grid(2, 2, 2, 2)
	r := vnet.Chain("pipe", 3, 1, 1)
	r.Earliest, r.Duration, r.Latest = 0, 2, 4
	inst := &Instance{Sub: sub, Reqs: []*vnet.Request{r}, Horizon: 4}
	// Hosts along a substrate path 0 → 1 → 3.
	b := BuildCSigma(inst, BuildOptions{
		Objective:    AccessControl,
		FixedMapping: vnet.NodeMapping{{0, 1, 3}},
	})
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal || !sol.Accepted[0] {
		t.Fatalf("chain not embedded: %v", ms.Status)
	}
	if err := solution.Check(sub, inst.Reqs, sol); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueRequestEmbedsFreeMapping(t *testing.T) {
	sub := substrate.Grid(2, 2, 2, 3)
	r := vnet.Clique("mesh", 3, 1, 0.5)
	r.Earliest, r.Duration, r.Latest = 0, 1, 2
	inst := &Instance{Sub: sub, Reqs: []*vnet.Request{r}, Horizon: 2}
	b := BuildCSigma(inst, BuildOptions{Objective: AccessControl}) // free placement
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal {
		t.Fatalf("status %v", ms.Status)
	}
	if !sol.Accepted[0] {
		t.Fatal("clique rejected despite ample capacity")
	}
	if err := solution.Check(sub, inst.Reqs, sol); err != nil {
		t.Fatal(err)
	}
}

func TestMixedTopologiesCompete(t *testing.T) {
	// A chain and a clique compete for a small substrate under access
	// control with flexibility: both should fit sequentially.
	sub := substrate.Grid(1, 3, 2, 2)
	chain := vnet.Chain("pipe", 3, 1.5, 1)
	chain.Earliest, chain.Duration, chain.Latest = 0, 2, 6
	mesh := vnet.Clique("mesh", 2, 1.5, 1)
	mesh.Earliest, mesh.Duration, mesh.Latest = 0, 2, 6
	inst := &Instance{Sub: sub, Reqs: []*vnet.Request{chain, mesh}, Horizon: 6}
	b := BuildCSigma(inst, BuildOptions{
		Objective:    AccessControl,
		FixedMapping: vnet.NodeMapping{{0, 1, 2}, {0, 1}},
	})
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal {
		t.Fatalf("status %v", ms.Status)
	}
	if sol.NumAccepted() != 2 {
		t.Fatalf("accepted %d, want 2 (sequential schedule possible)", sol.NumAccepted())
	}
	overlap := math.Min(sol.End[0], sol.End[1]) - math.Max(sol.Start[0], sol.Start[1])
	if overlap > 1e-6 {
		t.Fatalf("node-0 colocated requests overlap by %v", overlap)
	}
	if err := solution.Check(sub, inst.Reqs, sol); err != nil {
		t.Fatal(err)
	}
}
