package core

import (
	"context"
	"math"
	"testing"
	"time"

	"tvnep/internal/graph"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

// singleNodeReq builds a request with one virtual node and no links.
func singleNodeReq(name string, demand, earliest, duration, latest float64) *vnet.Request {
	return &vnet.Request{
		Name:       name,
		G:          graph.NewDigraph(1),
		NodeDemand: []float64{demand},
		LinkDemand: []float64{},
		Earliest:   earliest,
		Duration:   duration,
		Latest:     latest,
	}
}

// pairInstance: two unit-demand single-node requests both pinned on
// substrate node 0 of a 1×2 grid with node capacity 1 — they can never
// overlap in time.
func pairInstance(flex float64) (*Instance, BuildOptions) {
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 2+flex),
		singleNodeReq("b", 1, 0, 2, 2+flex),
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 2 + flex}
	opts := BuildOptions{
		Objective:    AccessControl,
		FixedMapping: vnet.NodeMapping{{0}, {0}},
	}
	return inst, opts
}

func solveAll(t *testing.T, inst *Instance, opts BuildOptions) map[Formulation]*solution.Solution {
	t.Helper()
	out := map[Formulation]*solution.Solution{}
	for _, f := range []Formulation{Delta, Sigma, CSigma} {
		b := Build(f, inst, opts)
		sol, ms := b.Solve(context.Background(), nil)
		if ms.Status != model.StatusOptimal { // mip.StatusOptimal
			t.Fatalf("%v: status %v", f, ms.Status)
		}
		if sol == nil {
			t.Fatalf("%v: no solution extracted", f)
		}
		if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
			t.Fatalf("%v: checker rejected solution: %v", f, err)
		}
		out[f] = sol
	}
	return out
}

func TestNoFlexibilityOnlyOneFits(t *testing.T) {
	inst, opts := pairInstance(0)
	sols := solveAll(t, inst, opts)
	for f, sol := range sols {
		if sol.NumAccepted() != 1 {
			t.Fatalf("%v: accepted %d, want 1 (zero flexibility forces overlap)", f, sol.NumAccepted())
		}
		if math.Abs(sol.Objective-2) > 1e-6 {
			t.Fatalf("%v: objective %v, want 2", f, sol.Objective)
		}
	}
}

func TestFlexibilityAllowsBoth(t *testing.T) {
	inst, opts := pairInstance(2) // window [0,4] for duration-2 requests
	sols := solveAll(t, inst, opts)
	for f, sol := range sols {
		if sol.NumAccepted() != 2 {
			t.Fatalf("%v: accepted %d, want 2 (flexibility permits sequential schedule)", f, sol.NumAccepted())
		}
		if math.Abs(sol.Objective-4) > 1e-6 {
			t.Fatalf("%v: objective %v, want 4", f, sol.Objective)
		}
		// The two runs must be disjoint in time (open intervals).
		aEnd, bEnd := sol.End[0], sol.End[1]
		aSt, bSt := sol.Start[0], sol.Start[1]
		overlap := math.Min(aEnd, bEnd) - math.Max(aSt, bSt)
		if overlap > 1e-6 {
			t.Fatalf("%v: schedules overlap by %v", f, overlap)
		}
	}
}

// twoNodeReq builds a request with two virtual nodes joined by one link.
func twoNodeReq(name string, nodeDemand, linkDemand, earliest, duration, latest float64) *vnet.Request {
	g := graph.NewDigraph(2)
	g.AddEdge(0, 1)
	return &vnet.Request{
		Name:       name,
		G:          g,
		NodeDemand: []float64{nodeDemand, nodeDemand},
		LinkDemand: []float64{linkDemand},
		Earliest:   earliest,
		Duration:   duration,
		Latest:     latest,
	}
}

func TestLinkCapacityForcesSequencing(t *testing.T) {
	// 1×2 grid, link capacity 1; two requests each needing the full link
	// bandwidth between the two substrate nodes.
	sub := substrate.Grid(1, 2, 2, 1)
	reqs := []*vnet.Request{
		twoNodeReq("a", 1, 1, 0, 2, 4),
		twoNodeReq("b", 1, 1, 0, 2, 4),
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 4}
	opts := BuildOptions{
		Objective:    AccessControl,
		FixedMapping: vnet.NodeMapping{{0, 1}, {0, 1}},
	}
	sols := solveAll(t, inst, opts)
	for f, sol := range sols {
		if sol.NumAccepted() != 2 {
			t.Fatalf("%v: accepted %d, want 2", f, sol.NumAccepted())
		}
		overlap := math.Min(sol.End[0], sol.End[1]) - math.Max(sol.Start[0], sol.Start[1])
		if overlap > 1e-6 {
			t.Fatalf("%v: link-contending schedules overlap by %v", f, overlap)
		}
	}
}

func TestFreeNodeMapping(t *testing.T) {
	// Without a fixed mapping the model places nodes itself: two
	// single-node requests with demand 1 on a 1×2 grid with capacity 1 can
	// run simultaneously on different substrate nodes.
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 2),
		singleNodeReq("b", 1, 0, 2, 2),
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 2}
	opts := BuildOptions{Objective: AccessControl} // free mapping
	b := BuildCSigma(inst, opts)
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal {
		t.Fatalf("status %v", ms.Status)
	}
	if sol.NumAccepted() != 2 {
		t.Fatalf("accepted %d, want 2 (free mapping separates hosts)", sol.NumAccepted())
	}
	if sol.Hosts[0][0] == sol.Hosts[1][0] {
		t.Fatalf("both requests on host %d despite capacity", sol.Hosts[0][0])
	}
	if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
		t.Fatal(err)
	}
}

func TestCutsAndPresolveAblation(t *testing.T) {
	// All four cΣ variants must agree on the optimum.
	inst, opts := pairInstance(2)
	want := math.NaN()
	for _, variant := range []struct {
		cuts, presolve bool
	}{{false, false}, {false, true}, {true, false}, {true, true}} {
		o := opts
		if !variant.cuts {
			o.CutMode = CutOff
		}
		o.DisablePresolve = !variant.presolve
		b := BuildCSigma(inst, o)
		sol, ms := b.Solve(context.Background(), nil)
		if ms.Status != model.StatusOptimal {
			t.Fatalf("variant %+v: status %v", variant, ms.Status)
		}
		if math.IsNaN(want) {
			want = sol.Objective
		} else if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("variant %+v: objective %v, others got %v", variant, sol.Objective, want)
		}
		if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
			t.Fatalf("variant %+v: %v", variant, err)
		}
	}
}

func TestMaxEarlinessSchedulesEarly(t *testing.T) {
	// One flexible request alone: must start at its earliest time.
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{singleNodeReq("a", 1, 1, 2, 9)}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 9}
	opts := BuildOptions{Objective: MaxEarliness, FixedMapping: vnet.NodeMapping{{0}}}
	for _, f := range []Formulation{Delta, Sigma, CSigma} {
		b := Build(f, inst, opts)
		sol, ms := b.Solve(context.Background(), nil)
		if ms.Status != model.StatusOptimal {
			t.Fatalf("%v: status %v", f, ms.Status)
		}
		if math.Abs(sol.Start[0]-1) > 1e-5 {
			t.Fatalf("%v: start %v, want 1 (earliest)", f, sol.Start[0])
		}
		// Full fee: objective = d = 2.
		if math.Abs(sol.Objective-2) > 1e-5 {
			t.Fatalf("%v: objective %v, want 2", f, sol.Objective)
		}
	}
}

func TestMaxEarlinessConflict(t *testing.T) {
	// Two requests on one node: one must be delayed; the solver should
	// start one at its earliest and shift the other just enough.
	inst, opts := pairInstance(2)
	opts.Objective = MaxEarliness
	sols := solveAll(t, inst, opts)
	for f, sol := range sols {
		starts := []float64{sol.Start[0], sol.Start[1]}
		early := math.Min(starts[0], starts[1])
		late := math.Max(starts[0], starts[1])
		if math.Abs(early-0) > 1e-5 || math.Abs(late-2) > 1e-5 {
			t.Fatalf("%v: starts %v, want {0, 2}", f, starts)
		}
	}
}

func TestBalanceNodeLoad(t *testing.T) {
	// Two single-node requests on a 1×2 grid, free to share node 0 in time
	// sequence; keeping node 1 idle maximizes the count of lightly loaded
	// nodes when f is generous.
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 6),
		singleNodeReq("b", 1, 0, 2, 6),
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 6}
	opts := BuildOptions{
		Objective:    BalanceNodeLoad,
		LoadFraction: 0.5,
		FixedMapping: vnet.NodeMapping{{0}, {0}},
	}
	for _, f := range []Formulation{Sigma, CSigma, Delta} {
		b := Build(f, inst, opts)
		sol, ms := b.Solve(context.Background(), nil)
		if ms.Status != model.StatusOptimal {
			t.Fatalf("%v: status %v", f, ms.Status)
		}
		// Node 0 carries full load (demand 1 = cap): F[0] = 0.
		// Node 1 idle: F[1] = 1 → objective 1.
		if math.Abs(sol.Objective-1) > 1e-6 {
			t.Fatalf("%v: objective %v, want 1", f, sol.Objective)
		}
		if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
	}
}

func TestDisableLinks(t *testing.T) {
	// One two-node request pinned on adjacent hosts: it needs at least one
	// directed path 0→1; all other links can be disabled.
	sub := substrate.Grid(1, 2, 2, 2)
	reqs := []*vnet.Request{twoNodeReq("a", 1, 1, 0, 2, 2)}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 2}
	opts := BuildOptions{
		Objective:    DisableLinks,
		FixedMapping: vnet.NodeMapping{{0, 1}},
	}
	for _, f := range []Formulation{Sigma, CSigma, Delta} {
		b := Build(f, inst, opts)
		sol, ms := b.Solve(context.Background(), nil)
		if ms.Status != model.StatusOptimal {
			t.Fatalf("%v: status %v", f, ms.Status)
		}
		// 2 links total (0→1, 1→0); flow needs 0→1 only → 1 disabled.
		if math.Abs(sol.Objective-1) > 1e-6 {
			t.Fatalf("%v: objective %v, want 1", f, sol.Objective)
		}
	}
}

func TestForceAcceptReject(t *testing.T) {
	inst, opts := pairInstance(0) // only one fits
	opts.ForceReject = []bool{true, false}
	b := BuildCSigma(inst, opts)
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal {
		t.Fatalf("status %v", ms.Status)
	}
	if sol.Accepted[0] || !sol.Accepted[1] {
		t.Fatalf("accepted = %v, want [false true]", sol.Accepted)
	}

	opts = BuildOptions{Objective: AccessControl, FixedMapping: vnet.NodeMapping{{0}, {0}},
		ForceAccept: []bool{true, false}}
	b = BuildCSigma(inst, opts)
	sol, ms = b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal {
		t.Fatalf("status %v", ms.Status)
	}
	if !sol.Accepted[0] {
		t.Fatal("forced-accept request rejected")
	}
}

func TestInfeasibleFixedSet(t *testing.T) {
	// Two always-overlapping requests on one node with fixed set → no
	// feasible schedule.
	inst, _ := pairInstance(0)
	opts := BuildOptions{Objective: MaxEarliness, FixedMapping: vnet.NodeMapping{{0}, {0}}}
	b := BuildCSigma(inst, opts)
	_, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusInfeasible { // mip.StatusInfeasible
		t.Fatalf("status %v, want infeasible", ms.Status)
	}
}

func TestCrossModelEquivalenceRandom(t *testing.T) {
	// Random tiny scenarios: all three formulations must report identical
	// optima, and every extracted solution must pass the independent
	// checker. Two requests keep the (intentionally weak) Δ-Model solvable
	// in test time.
	cfg := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 2, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1.5, WeibullShape: 2, WeibullScale: 2,
		FlexibilityHr: 1.5,
	}
	for seed := int64(1); seed <= 8; seed++ {
		sc := workload.Generate(cfg, seed)
		inst := &Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		opts := BuildOptions{Objective: AccessControl, FixedMapping: sc.Mapping}
		want := math.NaN()
		for _, f := range []Formulation{CSigma, Sigma, Delta} {
			b := Build(f, inst, opts)
			sol, ms := b.Solve(context.Background(), &model.SolveOptions{TimeLimit: 30 * time.Second})
			if ms.Status != model.StatusOptimal {
				t.Fatalf("seed %d %v: status %v", seed, f, ms.Status)
			}
			if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
				t.Fatalf("seed %d %v: %v", seed, f, err)
			}
			if math.IsNaN(want) {
				want = sol.Objective
			} else if math.Abs(sol.Objective-want) > 1e-5 {
				t.Fatalf("seed %d %v: objective %v, expected %v", seed, f, sol.Objective, want)
			}
		}
	}
}

func TestSigmaCSigmaEquivalenceRandom(t *testing.T) {
	// Larger random scenarios comparing the two strong formulations.
	cfg := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 3, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1.5, WeibullShape: 2, WeibullScale: 2,
		FlexibilityHr: 1.5,
	}
	for seed := int64(1); seed <= 4; seed++ {
		sc := workload.Generate(cfg, seed)
		inst := &Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		opts := BuildOptions{Objective: AccessControl, FixedMapping: sc.Mapping}
		want := math.NaN()
		for _, f := range []Formulation{CSigma, Sigma} {
			b := Build(f, inst, opts)
			sol, ms := b.Solve(context.Background(), &model.SolveOptions{TimeLimit: 60 * time.Second})
			if ms.Status != model.StatusOptimal {
				t.Fatalf("seed %d %v: status %v", seed, f, ms.Status)
			}
			if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
				t.Fatalf("seed %d %v: %v", seed, f, err)
			}
			if math.IsNaN(want) {
				want = sol.Objective
			} else if math.Abs(sol.Objective-want) > 1e-5 {
				t.Fatalf("seed %d %v: objective %v, expected %v", seed, f, sol.Objective, want)
			}
		}
	}
}

func TestRelaxationStrengthOrdering(t *testing.T) {
	// Section III: the Σ relaxation dominates the Δ relaxation, and cΣ is
	// at least as strong as Σ. For maximization: bound(Δ) ≥ bound(Σ) ≥
	// optimum, and similarly for cΣ.
	inst, opts := pairInstance(0)
	relax := func(f Formulation) float64 {
		b := Build(f, inst, opts)
		sol := b.Model.Relax()
		if !sol.HasSolution {
			t.Fatalf("%v relaxation not optimal", f)
		}
		return sol.Obj
	}
	dBound := relax(Delta)
	sBound := relax(Sigma)
	if sBound > dBound+1e-6 {
		t.Fatalf("Σ relaxation bound %v exceeds Δ bound %v (Σ should be tighter)", sBound, dBound)
	}
	// Both must upper-bound the true optimum 2.
	if dBound < 2-1e-6 || sBound < 2-1e-6 {
		t.Fatalf("relaxation below optimum: Δ %v, Σ %v", dBound, sBound)
	}
	// The paper's key observation: the Δ relaxation admits nullified
	// allocations and reaches the full fractional revenue 4.
	if dBound < 4-1e-6 {
		t.Logf("Δ relaxation bound %v (paper predicts it can reach 4)", dBound)
	}
}

func TestFormulationAndObjectiveStrings(t *testing.T) {
	if Delta.String() != "Δ" || Sigma.String() != "Σ" || CSigma.String() != "cΣ" {
		t.Fatal("formulation strings wrong")
	}
	if AccessControl.String() != "access-control" || MaxEarliness.String() != "max-earliness" ||
		BalanceNodeLoad.String() != "balance-node-load" || DisableLinks.String() != "disable-links" {
		t.Fatal("objective strings wrong")
	}
	if AccessControl.FixedSet() || !MaxEarliness.FixedSet() {
		t.Fatal("FixedSet wrong")
	}
}

func TestInstanceValidate(t *testing.T) {
	inst, _ := pairInstance(1)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Instance{Sub: inst.Sub, Reqs: inst.Reqs, Horizon: 0}
	if bad.Validate() == nil {
		t.Fatal("zero horizon accepted")
	}
	bad = &Instance{Sub: inst.Sub, Reqs: inst.Reqs, Horizon: 1} // window exceeds horizon
	if bad.Validate() == nil {
		t.Fatal("window beyond horizon accepted")
	}
}
