package core

import (
	"context"
	"math"
	"testing"

	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

// precInstance builds a 4-request instance with staggered windows: the two
// forced requests (zero flexibility) are provably ordered, so the
// dependency graph has cross-request precedences and the Constraint-(20)
// family is non-trivial. Node capacity 2 keeps the fixed-set objectives
// feasible.
func precInstance() (*Instance, BuildOptions) {
	sub := substrate.Grid(1, 2, 2, 2)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 2), // forced [0,2]
		singleNodeReq("b", 1, 0, 2, 4), // flexible
		singleNodeReq("c", 1, 5, 2, 7), // forced [5,7]: strictly after a
		singleNodeReq("d", 1, 3, 2, 9), // flexible
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 9}
	opts := BuildOptions{
		Objective:    AccessControl,
		FixedMapping: vnet.NodeMapping{{0}, {0}, {1}, {1}},
	}
	return inst, opts
}

// TestStaticVsLazyAllObjectives is the acceptance check of the lazy-cut
// pipeline: for every objective, the CutLazy build must reach the same
// certified optimum as CutStatic with strictly fewer root-LP rows, and the
// extracted solution must pass the independent checker.
func TestStaticVsLazyAllObjectives(t *testing.T) {
	inst, base := precInstance()
	for _, obj := range []Objective{AccessControl, MaxEarliness, BalanceNodeLoad, DisableLinks} {
		opts := base
		opts.Objective = obj

		opts.CutMode = CutStatic
		bs := BuildCSigma(inst, opts)
		staticRows := bs.Model.NumConstrs()
		ssol, sms := bs.Solve(context.Background(), nil)
		if sms.Status != model.StatusOptimal {
			t.Fatalf("%v static: status %v", obj, sms.Status)
		}

		opts.CutMode = CutLazy
		bl := BuildCSigma(inst, opts)
		lazyRows := bl.Model.NumConstrs()
		if bl.PrecCutCandidates() == 0 {
			t.Fatalf("%v: no precedence cut candidates; the instance no longer exercises lazy separation", obj)
		}
		if lazyRows >= staticRows {
			t.Fatalf("%v: lazy build has %d root rows, static %d — want strictly fewer", obj, lazyRows, staticRows)
		}
		if got := staticRows - lazyRows; got != bl.PrecCutCandidates() {
			t.Fatalf("%v: row saving %d != candidate count %d", obj, got, bl.PrecCutCandidates())
		}
		lsol, lms := bl.Solve(context.Background(), nil)
		if lms.Status != model.StatusOptimal {
			t.Fatalf("%v lazy: status %v", obj, lms.Status)
		}
		if math.Abs(lsol.Objective-ssol.Objective) > 1e-6*(1+math.Abs(ssol.Objective)) {
			t.Fatalf("%v: lazy objective %v, static %v", obj, lsol.Objective, ssol.Objective)
		}
		if err := solution.Check(inst.Sub, inst.Reqs, lsol); err != nil {
			t.Fatalf("%v lazy: checker rejected solution: %v", obj, err)
		}
		if lms.Cuts.RowsAtRoot != lazyRows {
			t.Fatalf("%v: reported RowsAtRoot %d, model has %d rows", obj, lms.Cuts.RowsAtRoot, lazyRows)
		}
		if lms.Cuts.SeparatedRows != len(lms.AppliedCuts) {
			t.Fatalf("%v: SeparatedRows %d != applied list %d", obj, lms.Cuts.SeparatedRows, len(lms.AppliedCuts))
		}
		if lms.Cuts.SeparatedRows > bl.PrecCutCandidates() {
			t.Fatalf("%v: separated %d rows out of %d candidates", obj, lms.Cuts.SeparatedRows, bl.PrecCutCandidates())
		}
	}
}

// TestCutModeOffMatchesStaticOptimum: dropping Constraint (19)/(20) widens
// the relaxation but must not change the certified integer optimum.
func TestCutModeOffMatchesStaticOptimum(t *testing.T) {
	inst, opts := precInstance()

	static := opts
	static.CutMode = CutStatic
	bStatic := BuildCSigma(inst, static)

	off := opts
	off.CutMode = CutOff
	bOff := BuildCSigma(inst, off)

	sStatic, msStatic := bStatic.Solve(context.Background(), nil)
	sOff, msOff := bOff.Solve(context.Background(), nil)
	if msStatic.Status != model.StatusOptimal || msOff.Status != model.StatusOptimal {
		t.Fatalf("statuses %v / %v", msStatic.Status, msOff.Status)
	}
	if math.Abs(sStatic.Objective-sOff.Objective) > 1e-9 {
		t.Fatalf("objectives differ: %v vs %v", sStatic.Objective, sOff.Objective)
	}
}

// checkAppliedCuts re-checks every row the lazy solve appended against the
// incumbent: an applied cut the certified-optimal solution violates would
// prove the separator (or the pool) unsound.
func checkAppliedCuts(t *testing.T, ms *model.Solution) {
	t.Helper()
	x := ms.X()
	for _, c := range ms.AppliedCuts {
		act := 0.0
		for k, j := range c.Idx {
			act += c.Val[k] * x[j]
		}
		if act > c.UB+1e-6 || act < c.LB-1e-6 {
			t.Fatalf("incumbent violates applied cut %q: activity %v outside [%v, %v]", c.Name, act, c.LB, c.UB)
		}
	}
}

// TestLazySeparatedCutsAreValid checks applied-cut validity on the staggered
// pair instance.
func TestLazySeparatedCutsAreValid(t *testing.T) {
	inst, opts := precInstance()
	opts.CutMode = CutLazy
	b := BuildCSigma(inst, opts)
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal || sol == nil {
		t.Fatalf("status %v", ms.Status)
	}
	checkAppliedCuts(t, ms)
}

// TestLazySeparationFiresOnWorkload pins generated workloads whose LP
// relaxations actually violate precedence candidates, so the full pipeline —
// separator call, pool selection, incremental row append, warm re-solve —
// runs end to end at the core level, not just in internal/mip unit tests.
// The seeds were chosen by scanning generated workloads for instances with a
// violated candidate at the root; if workload generation changes, rescan.
func TestLazySeparationFiresOnWorkload(t *testing.T) {
	cfg := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 4, StarLeaves: 1, DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1.5, WeibullShape: 2, WeibullScale: 2, FlexibilityHr: 1.5,
	}
	for _, seed := range []int64{3, 4} {
		sc := workload.Generate(cfg, seed)
		inst := &Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		opts := BuildOptions{Objective: AccessControl, FixedMapping: sc.Mapping}

		opts.CutMode = CutStatic
		bs := BuildCSigma(inst, opts)
		ssol, sms := bs.Solve(context.Background(), nil)
		if sms.Status != model.StatusOptimal {
			t.Fatalf("seed %d static: status %v", seed, sms.Status)
		}

		opts.CutMode = CutLazy
		bl := BuildCSigma(inst, opts)
		lsol, lms := bl.Solve(context.Background(), nil)
		if lms.Status != model.StatusOptimal {
			t.Fatalf("seed %d lazy: status %v", seed, lms.Status)
		}
		if lms.Cuts.SeparatedRows == 0 {
			t.Fatalf("seed %d: no cuts separated — the seed no longer exercises the lazy pipeline", seed)
		}
		if lms.Cuts.Rounds == 0 || lms.Cuts.Offered < lms.Cuts.SeparatedRows {
			t.Fatalf("seed %d: inconsistent stats %+v", seed, lms.Cuts)
		}
		if math.Abs(lsol.Objective-ssol.Objective) > 1e-6*(1+math.Abs(ssol.Objective)) {
			t.Fatalf("seed %d: lazy objective %v, static %v", seed, lsol.Objective, ssol.Objective)
		}
		if err := solution.Check(inst.Sub, inst.Reqs, lsol); err != nil {
			t.Fatalf("seed %d lazy: checker rejected solution: %v", seed, err)
		}
		checkAppliedCuts(t, lms)
	}
}
