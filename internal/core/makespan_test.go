package core

import (
	"context"
	"math"
	"testing"

	"tvnep/internal/model"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

func TestMinMakespanSerializesTightly(t *testing.T) {
	// Two 2h jobs forced onto one node: minimum makespan is 4 (back to
	// back, starting immediately), even though the window extends to 10.
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 10),
		singleNodeReq("b", 1, 0, 2, 10),
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 10}
	opts := BuildOptions{Objective: MinMakespan, FixedMapping: vnet.NodeMapping{{0}, {0}}}
	for _, f := range []Formulation{CSigma, Sigma, Delta} {
		b := Build(f, inst, opts)
		sol, ms := b.Solve(context.Background(), nil)
		if ms.Status != model.StatusOptimal {
			t.Fatalf("%v: status %v", f, ms.Status)
		}
		makespan := math.Max(sol.End[0], sol.End[1])
		if math.Abs(makespan-4) > 1e-5 {
			t.Fatalf("%v: makespan %v, want 4", f, makespan)
		}
		// Objective is −makespan by construction.
		if math.Abs(sol.Objective-(-4)) > 1e-5 {
			t.Fatalf("%v: objective %v, want -4", f, sol.Objective)
		}
	}
}

func TestMinMakespanParallelWhenPossible(t *testing.T) {
	// Same two jobs with capacity for both: makespan collapses to 2.
	sub := substrate.Grid(1, 2, 2, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 10),
		singleNodeReq("b", 1, 0, 2, 10),
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 10}
	b := BuildCSigma(inst, BuildOptions{Objective: MinMakespan, FixedMapping: vnet.NodeMapping{{0}, {0}}})
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal {
		t.Fatalf("status %v", ms.Status)
	}
	if mk := math.Max(sol.End[0], sol.End[1]); math.Abs(mk-2) > 1e-5 {
		t.Fatalf("makespan %v, want 2", mk)
	}
}

func TestMinMakespanRespectsArrivals(t *testing.T) {
	// A job arriving at t=5 lower-bounds the makespan at 5 + d.
	sub := substrate.Grid(1, 2, 1, 1)
	late := singleNodeReq("late", 1, 5, 1, 10)
	inst := &Instance{Sub: sub, Reqs: []*vnet.Request{late}, Horizon: 10}
	b := BuildCSigma(inst, BuildOptions{Objective: MinMakespan, FixedMapping: vnet.NodeMapping{{0}}})
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal {
		t.Fatalf("status %v", ms.Status)
	}
	if math.Abs(sol.End[0]-6) > 1e-5 {
		t.Fatalf("end %v, want 6", sol.End[0])
	}
}

func TestObjectiveStringIncludesMakespan(t *testing.T) {
	if MinMakespan.String() != "min-makespan" {
		t.Fatal("string missing")
	}
	if !MinMakespan.FixedSet() {
		t.Fatal("makespan must be a fixed-set objective")
	}
}
