package core

import (
	"context"
	"testing"
	"time"

	"tvnep/internal/model"
	"tvnep/internal/workload"
)

// hardInstance returns a contended Δ-Model scenario that the branch-and-
// bound provably cannot finish in a few milliseconds (the Δ-Model's big-M
// avalanche takes tens of seconds at this size; see TestDebugTiming).
func hardInstance(t *testing.T) (*Instance, *Built) {
	t.Helper()
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 8
	wl.StarLeaves = 2
	wl.FlexibilityHr = 4
	sc := workload.Generate(wl, 3)
	inst := &Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	b := BuildDelta(inst, BuildOptions{Objective: AccessControl, FixedMapping: sc.Mapping})
	return inst, b
}

// TestSolveCancelledContextReturnsImmediately: an already-cancelled context
// must stop the solve before any node is explored.
func TestSolveCancelledContextReturnsImmediately(t *testing.T) {
	_, b := hardInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, ms := b.Solve(ctx, nil)
	if ms.Status != model.StatusCancelled {
		t.Fatalf("status %v, want %v", ms.Status, model.StatusCancelled)
	}
	if sol != nil || ms.HasSolution {
		t.Fatal("cancelled-before-start solve produced a solution")
	}
}

// TestSolveCancellationStopsLongSolve cancels mid-flight: the solve must
// come back orders of magnitude before its one-hour time limit and report
// StatusCancelled.
func TestSolveCancellationStopsLongSolve(t *testing.T) {
	_, b := hardInstance(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, ms := b.Solve(ctx, model.NewSolveOptions(model.WithTimeLimit(time.Hour)))
	elapsed := time.Since(start)
	if ms.Status != model.StatusCancelled {
		t.Fatalf("status %v after %v, want %v", ms.Status, elapsed, model.StatusCancelled)
	}
	// Generous bound: cancellation is checked every 64 LP iterations and at
	// every node, so even slow CI machines finish far under this.
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
