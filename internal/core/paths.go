package core

// Path-based link flows for the cΣ-Model (FlowPath mode), the column-side
// twin of the lazy precedence cuts in cuts.go. The arc formulation emits
// O(|E_R|·|E_S|) flow variables and O(|E_R|·|V_S|) conservation rows per
// request up front; the path formulation replaces all of it with one
// convexity row per virtual link,
//
//	Σ_p λ_p + art = x_R,
//
// a single statically seeded fewest-hops path column, and further path
// columns priced in on demand by a reduced-cost shortest-path pricer riding
// the branch-and-bound solver's column-generation pipeline (internal/mip).
// The two formulations have the same certified optimum: any feasible arc
// flow decomposes into simple paths plus cycles, and cycles only consume
// capacity without helping connectivity, so restricting to simple paths
// never cuts off an optimal embedding, while every path column maps back to
// a feasible arc flow.
//
// The artificial keeps every restricted master primal feasible — a seed path
// may be capacity-blocked while another route exists, and pricing can only
// rescue a node whose relaxation still has duals. It is a binary variable
// with a big-M objective penalty dominating the whole objective: integer
// solutions either route the full unit flow or park all of it on the
// artificial, and parking it always loses to the penalty, so the artificial
// carries flow only when the request is force-accepted yet genuinely
// unroutable, which Extract reports as "no solution".

import (
	"fmt"
	"math"

	"tvnep/internal/graph"
	"tvnep/internal/lp"
	"tvnep/internal/model"
	"tvnep/internal/numtol"
)

// pathTag is the pricer payload carried on every priced path column: which
// virtual link the column serves and the substrate-link sequence it routes
// over. Extract and internal/certify read it back from
// model.Solution.AppliedColumns.
type pathTag struct {
	r, lv int
	links []int
}

// PathTagInfo exposes a priced path column's payload — the (request, virtual
// link) pair it serves and its substrate-link sequence — to packages outside
// core (internal/certify re-validates every priced column against the
// substrate graph). ok is false when the column was not produced by the
// path pricer.
func PathTagInfo(c model.Column) (r, lv int, links []int, ok bool) {
	tag, ok := c.Tag.(pathTag)
	if !ok {
		return 0, 0, nil, false
	}
	return tag.r, tag.lv, tag.links, true
}

// MakePathTag constructs a path-column tag as the pricer would attach it.
// It exists for internal/certify's mutation tests, which forge tags to prove
// the column certificate rejects them; production columns get their tags from
// pathColumn.
func MakePathTag(r, lv int, links []int) interface{} {
	return pathTag{r: r, lv: lv, links: append([]int(nil), links...)}
}

// pathLinkDemand reports whether request r has any nontrivial virtual link
// with positive demand — i.e. whether any path column of r can ever
// participate in a link-capacity row.
func (b *Built) pathLinkDemand(r int) bool {
	req := b.Inst.Reqs[r]
	for lv := 0; lv < req.G.NumEdges(); lv++ {
		if req.LinkDemand[lv] > 0 && b.convRow[r][lv] >= 0 {
			return true
		}
	}
	return false
}

// recordLinkUse registers "one unit of (r, lv)-flow over substrate link ls
// participates in row with coefficient sign·d" for every nontrivial virtual
// link of r with positive demand. Seed columns receive exactly the same
// coefficients through the allocLinkExpr expressions, so priced and seeded
// paths are interchangeable LP columns.
func (b *Built) recordLinkUse(r, ls, row int, sign float64) {
	req := b.Inst.Reqs[r]
	for lv := 0; lv < req.G.NumEdges(); lv++ {
		d := req.LinkDemand[lv]
		if d <= 0 || b.convRow[r][lv] < 0 {
			continue
		}
		b.linkUse[r][lv][ls] = append(b.linkUse[r][lv][ls], rowCoef{row: row, coef: sign * d})
	}
}

// recordLinkUseUnit registers a demand-independent unit-flow coefficient
// (the DisableLinks activity rows count flow, not allocation) on every
// nontrivial virtual link of every request.
func (b *Built) recordLinkUseUnit(ls, row int, coef float64) {
	for r, req := range b.Inst.Reqs {
		for lv := 0; lv < req.G.NumEdges(); lv++ {
			if b.convRow[r][lv] < 0 {
				continue
			}
			b.linkUse[r][lv][ls] = append(b.linkUse[r][lv][ls], rowCoef{row: row, coef: coef})
		}
	}
}

// buildPathEmbedding is the FlowPath counterpart of buildEmbedding: the
// acceptance variables are identical, but instead of arc variables and
// conservation rows each virtual link gets a convexity row over path
// variables — one seeded fewest-hops path plus the big-M artificial.
func buildPathEmbedding(b *Built) {
	if b.Kind != CSigma {
		panic(fmt.Sprintf("core: FlowPath requires the cΣ formulation, not %v", b.Kind))
	}
	if b.Opts.FixedMapping == nil {
		panic("core: FlowPath requires a fixed node mapping (path endpoints must be known at build time)")
	}
	m := b.Model
	inst := b.Inst
	sub := inst.Sub
	k := b.numReq()

	b.XR = make([]model.Var, k)
	b.Lambda = make([][][]model.Var, k)
	b.SeedPaths = make([][][][]int, k)
	b.Art = make([][]model.Var, k)
	b.convRow = make([][]int, k)
	b.linkUse = make([][][][]rowCoef, k)

	for r, req := range inst.Reqs {
		buildAcceptVar(b, r)
		nE := req.G.NumEdges()
		b.Lambda[r] = make([][]model.Var, nE)
		b.SeedPaths[r] = make([][][]int, nE)
		b.Art[r] = make([]model.Var, nE)
		b.convRow[r] = make([]int, nE)
		b.linkUse[r] = make([][][]rowCoef, nE)
		for lv := 0; lv < nE; lv++ {
			b.linkUse[r][lv] = make([][]rowCoef, sub.NumLinks())
			u, v := req.G.Edge(lv)
			hu, hv := b.Opts.FixedMapping[r][u], b.Opts.FixedMapping[r][v]
			if hu == hv {
				// Both endpoints share a substrate node: the unit flow is
				// internal and no path (or row) is needed.
				b.convRow[r][lv] = -1
				continue
			}
			conv := model.Expr()
			if p, ok := shortestHopPath(sub.G, hu, hv); ok {
				lam := m.Continuous(fmt.Sprintf("lambda[%d][%d][0]", r, lv), 0, 1)
				b.Lambda[r][lv] = []model.Var{lam}
				b.SeedPaths[r][lv] = [][]int{p}
				conv.Add(1, lam)
			}
			// The artificial is BINARY, not continuous: a continuous artificial
			// could absorb a capacity residual (route 1−δ, park δ) at a big-M
			// penalty linear in δ while the matching objective gain is a step —
			// e.g. keeping a disable-links D at 1 — which would admit integer
			// incumbents strictly better than the arc optimum. As a binary it
			// relaxes to [0,1] in every node LP (keeping the restricted master
			// feasible and duals available for pricing), while integer
			// solutions either route the full unit flow or park all of it,
			// and a full unit always loses to big-M.
			art := m.Binary(fmt.Sprintf("artE[%d][%d]", r, lv))
			b.Art[r][lv] = art
			conv.Add(1, art).Add(-1, b.XR[r])
			b.convRow[r][lv] = m.AddEQ(conv, 0, fmt.Sprintf("conv[%d][%d]", r, lv))
		}
	}
}

// buildAcceptVar creates x_R for request r with the acceptance pinning the
// objective and build options demand; shared by the arc and path embeddings.
func buildAcceptVar(b *Built, r int) {
	m := b.Model
	b.XR[r] = m.Binary(fmt.Sprintf("xR[%d]", r))
	forced := b.Opts.Objective.FixedSet()
	if b.Opts.ForceAccept != nil && r < len(b.Opts.ForceAccept) && b.Opts.ForceAccept[r] {
		forced = true
	}
	if forced {
		m.Fix(b.XR[r], 1)
	}
	if b.Opts.ForceReject != nil && r < len(b.Opts.ForceReject) && b.Opts.ForceReject[r] {
		m.Fix(b.XR[r], 0)
	}
}

// seedAllocLinkExpr is allocLinkExpr's FlowPath branch: the allocation on
// substrate link ls from the statically seeded path columns (priced columns
// contribute through linkUse instead).
func (b *Built) seedAllocLinkExpr(r, ls int) *model.LinExpr {
	req := b.Inst.Reqs[r]
	e := model.Expr()
	for lv := 0; lv < req.G.NumEdges(); lv++ {
		d := req.LinkDemand[lv]
		if d <= 0 {
			continue
		}
		for kp, p := range b.SeedPaths[r][lv] {
			for _, pls := range p {
				if pls == ls {
					e.Add(d, b.Lambda[r][lv][kp])
				}
			}
		}
	}
	return e
}

// finishPathFlows installs the big-M artificial penalties (the objective is
// final by now) and registers the path pricer. Called at the end of
// BuildCSigma, after applyObjective has filled linkUse with every row a path
// column can participate in.
func finishPathFlows(b *Built) {
	if applyArtPenalty(b) {
		b.Model.RegisterPricer(&pathPricer{b: b})
	}
}

// applyArtPenalty big-M penalizes the FlowPath convexity artificials against
// the current objective, reporting whether any artificial exists. Any
// solution routing ε of flow on an artificial is worse than the same
// solution with the request rejected, whatever the rest of the objective
// contributes — that is what makes "art > tol" a reliable no-embedding
// signal in Extract. The artificials must carry objective 0 on entry (fresh
// build, or right after Model.SetObjective rebuilt the objective vector).
func applyArtPenalty(b *Built) bool {
	M := 1 + b.Model.AbsObjSum()
	any := false
	for r, req := range b.Inst.Reqs {
		for lv := 0; lv < req.G.NumEdges(); lv++ {
			if b.convRow[r][lv] < 0 {
				continue
			}
			b.Model.BumpObjective(b.Art[r][lv], -M)
			any = true
		}
	}
	return any
}

// pathColumn assembles the LP column of path (a substrate-link sequence) for
// virtual link (r, lv): +1 on the convexity row plus the registered per-unit
// capacity and activity coefficients of every traversed link. The solver's
// column pool canonicalizes (sorts, merges) the raw entries.
func (b *Built) pathColumn(r, lv int, path []int) model.Column {
	idx := []int32{int32(b.convRow[r][lv])}
	val := []float64{1}
	for _, ls := range path {
		for _, rc := range b.linkUse[r][lv][ls] {
			idx = append(idx, int32(rc.row))
			val = append(val, rc.coef)
		}
	}
	return model.Column{
		Idx: idx, Val: val, LB: 0, UB: 1, Obj: 0,
		Name: fmt.Sprintf("lambda[%d][%d]@%v", r, lv, path),
		Tag:  pathTag{r: r, lv: lv, links: append([]int(nil), path...)},
	}
}

// pathPricer prices path columns for every nontrivial virtual link: the
// reduced cost of a path column is −y_conv − Σ_{ls∈p} cost(ls) with
// cost(ls) = Σ_{(row,coef)∈linkUse} coef·y_row, so the most improving path
// is the cost-shortest substrate path. At an exactly dual-feasible point
// every cost(ls) is nonnegative — the state rows contribute (−d)·(y ≤ 0),
// the capacity and activity rows (+d)·(y ≥ 0) — so Dijkstra applies;
// LP-tolerance dual noise is clamped away and the winner re-checked with the
// exact reduced cost before it is offered. A pure function of duals with
// index-ordered tie-breaks, as the mip.Pricer contract requires.
type pathPricer struct {
	b *Built
}

// Price implements model.Pricer.
func (pp *pathPricer) Price(duals, x []float64) []model.Column {
	b := pp.b
	sub := b.Inst.Sub
	w := make([]float64, sub.NumLinks())
	var out []model.Column
	for r, req := range b.Inst.Reqs {
		for lv := 0; lv < req.G.NumEdges(); lv++ {
			if b.convRow[r][lv] < 0 {
				continue
			}
			for ls := range w {
				c := 0.0
				for _, rc := range b.linkUse[r][lv][ls] {
					c += rc.coef * duals[rc.row]
				}
				if c < 0 {
					c = 0 // dual noise; the exact recheck below decides
				}
				w[ls] = c
			}
			u, v := req.G.Edge(lv)
			hu, hv := b.Opts.FixedMapping[r][u], b.Opts.FixedMapping[r][v]
			path, ok := shortestWeightedPath(sub.G, hu, hv, w)
			if !ok {
				continue
			}
			col := b.pathColumn(r, lv, path)
			if lp.CandidateReducedCost(col.Obj, col.Idx, col.Val, duals) > numtol.PriceRedTol {
				out = append(out, col)
			}
		}
	}
	return out
}

// shortestHopPath returns the fewest-hops directed path from src to dst as
// an edge sequence (BFS, deterministic: neighbors expand in edge-index
// order). ok is false when dst is unreachable.
func shortestHopPath(g *graph.Digraph, src, dst int) ([]int, bool) {
	if src == dst {
		return nil, true
	}
	parentEdge := make([]int, g.N)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	queue := []int{src}
	seen := make([]bool, g.N)
	seen[src] = true
	for len(queue) > 0 && !seen[dst] {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.Out(u) {
			_, v := g.Edge(int(e))
			if seen[v] {
				continue
			}
			seen[v] = true
			parentEdge[v] = int(e)
			queue = append(queue, v)
		}
	}
	if !seen[dst] {
		return nil, false
	}
	return tracePath(g, parentEdge, src, dst), true
}

// shortestWeightedPath returns the minimum-weight directed path from src to
// dst under nonnegative edge weights w, as an edge sequence. Deterministic
// Dijkstra: the unsettled node with the smallest distance wins, smallest
// index on ties, and edges relax in index order with strict improvement —
// the same duals always yield the same path. ok is false when dst is
// unreachable.
func shortestWeightedPath(g *graph.Digraph, src, dst int, w []float64) ([]int, bool) {
	dist := make([]float64, g.N)
	parentEdge := make([]int, g.N)
	done := make([]bool, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
		parentEdge[i] = -1
	}
	dist[src] = 0
	for {
		u, best := -1, math.Inf(1)
		for i, d := range dist {
			if !done[i] && d < best {
				u, best = i, d
			}
		}
		if u == -1 {
			return nil, false
		}
		if u == dst {
			return tracePath(g, parentEdge, src, dst), true
		}
		done[u] = true
		for _, e := range g.Out(u) {
			_, v := g.Edge(int(e))
			if nd := dist[u] + w[e]; nd < dist[v] {
				dist[v] = nd
				parentEdge[v] = int(e)
			}
		}
	}
}

// tracePath walks parent edges back from dst and returns the forward edge
// sequence.
func tracePath(g *graph.Digraph, parentEdge []int, src, dst int) []int {
	var rev []int
	for v := dst; v != src; {
		e := parentEdge[v]
		rev = append(rev, e)
		u, _ := g.Edge(e)
		v = u
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
