package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

func TestModelSizeOrdering(t *testing.T) {
	// Section IV: the compactification halves the state space. On the same
	// instance, the cΣ-Model must have fewer variables and binaries than
	// the Σ-Model, and both fewer constraints than the Δ-Model's big-M
	// avalanche.
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 4
	wl.FlexibilityHr = 2
	sc := workload.Generate(wl, 11)
	inst := &Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	opts := BuildOptions{Objective: AccessControl, FixedMapping: sc.Mapping}

	cs := BuildCSigma(inst, opts)
	sg := BuildSigma(inst, opts)
	dl := BuildDelta(inst, opts)

	if cs.Model.NumVars() >= sg.Model.NumVars() {
		t.Fatalf("cΣ has %d vars, Σ has %d — compactification should shrink the model",
			cs.Model.NumVars(), sg.Model.NumVars())
	}
	if cs.Model.NumIntVars() >= sg.Model.NumIntVars() {
		t.Fatalf("cΣ has %d binaries, Σ has %d", cs.Model.NumIntVars(), sg.Model.NumIntVars())
	}
	if dl.Model.NumConstrs() <= sg.Model.NumConstrs() {
		t.Fatalf("Δ has %d constraints, Σ has %d — the conditional encoding should dominate",
			dl.Model.NumConstrs(), sg.Model.NumConstrs())
	}
}

func TestPresolveShrinksModel(t *testing.T) {
	// With zero flexibility every request's activity is fully determined:
	// the presolve should eliminate (almost) all state allocation vars.
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 4
	sc := workload.Generate(wl, 3) // zero flexibility
	inst := &Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	opts := BuildOptions{Objective: AccessControl, FixedMapping: sc.Mapping}
	with := BuildCSigma(inst, opts)
	opts.DisablePresolve = true
	without := BuildCSigma(inst, opts)
	if with.Model.NumVars() >= without.Model.NumVars() {
		t.Fatalf("presolve did not shrink the model: %d vs %d vars",
			with.Model.NumVars(), without.Model.NumVars())
	}
}

func TestRejectedRequestTimesStillValid(t *testing.T) {
	// Definition 2.1 fixes start/end times even for rejected requests; the
	// extracted times must respect window and duration.
	inst, opts := pairInstance(0) // capacity admits only one
	b := BuildCSigma(inst, opts)
	sol, _ := b.Solve(context.Background(), nil)
	if sol.NumAccepted() != 1 {
		t.Fatalf("accepted %d", sol.NumAccepted())
	}
	for r, req := range inst.Reqs {
		if math.Abs((sol.End[r]-sol.Start[r])-req.Duration) > 1e-5 {
			t.Fatalf("request %d (accepted=%v): bad duration", r, sol.Accepted[r])
		}
		if sol.Start[r] < req.Earliest-1e-5 || sol.End[r] > req.Latest+1e-5 {
			t.Fatalf("request %d: times outside window", r)
		}
	}
}

func TestFreeMappingRejectsOversizedRequest(t *testing.T) {
	// A request whose single VM exceeds every node capacity can never be
	// embedded, regardless of placement freedom.
	sub := substrate.Grid(1, 2, 1, 1)
	big := singleNodeReq("big", 5, 0, 1, 4)
	small := singleNodeReq("small", 1, 0, 1, 4)
	inst := &Instance{Sub: sub, Reqs: []*vnet.Request{big, small}, Horizon: 4}
	b := BuildCSigma(inst, BuildOptions{Objective: AccessControl})
	sol, ms := b.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal {
		t.Fatalf("status %v", ms.Status)
	}
	if sol.Accepted[0] {
		t.Fatal("oversized request accepted")
	}
	if !sol.Accepted[1] {
		t.Fatal("fitting request rejected")
	}
}

func TestLoadFractionDefault(t *testing.T) {
	o := BuildOptions{}
	if o.loadFraction() != 0.5 {
		t.Fatalf("default f = %v", o.loadFraction())
	}
	o.LoadFraction = 0.25
	if o.loadFraction() != 0.25 {
		t.Fatalf("explicit f = %v", o.loadFraction())
	}
	o.LoadFraction = 1.5 // nonsense → default
	if o.loadFraction() != 0.5 {
		t.Fatalf("out-of-range f = %v", o.loadFraction())
	}
}

func TestBuildDispatch(t *testing.T) {
	inst, opts := pairInstance(1)
	for _, f := range []Formulation{Delta, Sigma, CSigma} {
		b := Build(f, inst, opts)
		if b.Kind != f {
			t.Fatalf("Build(%v) returned kind %v", f, b.Kind)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown formulation did not panic")
		}
	}()
	Build(Formulation(42), inst, opts)
}

func TestVariableHandlesExposed(t *testing.T) {
	inst, opts := pairInstance(1)
	b := BuildCSigma(inst, opts)
	if len(b.XR) != 2 || len(b.TPlus) != 2 || len(b.TMinus) != 2 {
		t.Fatal("request-level handles missing")
	}
	if len(b.ChiPlus) != 2 || len(b.ChiMinus) != 2 {
		t.Fatal("event-mapping handles missing")
	}
	if len(b.TEvent) != 4 { // |R|+1 events, 1-based with unused slot 0
		t.Fatalf("TEvent len %d, want 4", len(b.TEvent))
	}
	if !strings.Contains(b.XR[0].Name(), "xR") {
		t.Fatalf("unexpected variable name %q", b.XR[0].Name())
	}
}

func TestGapReportedOnTimeout(t *testing.T) {
	// A hard instance with a microscopic time limit must report either a
	// +Inf gap (no incumbent) or a finite positive gap, never "optimal".
	wl := workload.Default()
	wl.GridRows, wl.GridCols = 2, 2
	wl.NumRequests = 5
	wl.FlexibilityHr = 4
	sc := workload.Generate(wl, 2)
	inst := &Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	b := BuildCSigma(inst, BuildOptions{Objective: AccessControl, FixedMapping: sc.Mapping})
	_, ms := b.Solve(context.Background(), &model.SolveOptions{TimeLimit: 1}) // 1 ns
	if ms.Status == model.StatusOptimal {
		t.Fatal("1 ns budget reported optimal")
	}
	if ms.Gap < 0 {
		t.Fatalf("negative gap %v", ms.Gap)
	}
}

func TestCheckerCatchesCorruptedSolution(t *testing.T) {
	// End-to-end guard: corrupt a valid solution and verify the independent
	// checker notices (i.e. the tests' safety net is alive).
	inst, opts := pairInstance(2)
	b := BuildCSigma(inst, opts)
	sol, _ := b.Solve(context.Background(), nil)
	if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
		t.Fatalf("valid solution rejected: %v", err)
	}
	sol.Start[0] = sol.Start[1] // force full overlap on the shared node
	sol.End[0] = sol.Start[0] + inst.Reqs[0].Duration
	if solution.Check(inst.Sub, inst.Reqs, sol) == nil {
		t.Fatal("checker accepted an overlapping overload")
	}
}

func TestDeltaBalanceObjective(t *testing.T) {
	// The Δ-Model supports BalanceNodeLoad through its accumulated state
	// variables; cross-check against cΣ on a small fixed-set instance.
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 6),
		singleNodeReq("b", 1, 0, 2, 6),
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 6}
	opts := BuildOptions{
		Objective:    BalanceNodeLoad,
		LoadFraction: 0.5,
		FixedMapping: vnet.NodeMapping{{0}, {0}},
	}
	want := math.NaN()
	for _, f := range []Formulation{CSigma, Delta} {
		b := Build(f, inst, opts)
		sol, ms := b.Solve(context.Background(), nil)
		if ms.Status != model.StatusOptimal {
			t.Fatalf("%v: %v", f, ms.Status)
		}
		if math.IsNaN(want) {
			want = sol.Objective
		} else if math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("%v: %v != %v", f, sol.Objective, want)
		}
	}
}
