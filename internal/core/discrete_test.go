package core

import (
	"context"
	"math"
	"testing"

	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

func TestDiscreteMatchesContinuousOnGridFriendlyInstance(t *testing.T) {
	// Integral data aligned to the slot grid: discrete and continuous
	// optima must coincide.
	inst, opts := pairInstance(2) // durations 2, window [0,4]
	db := BuildDiscrete(inst, opts, 1.0)
	sol, ms := db.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal {
		t.Fatalf("status %v", ms.Status)
	}
	if sol.NumAccepted() != 2 || math.Abs(sol.Objective-4) > 1e-6 {
		t.Fatalf("discrete: accepted %d obj %v, want 2 / 4", sol.NumAccepted(), sol.Objective)
	}
	if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
		t.Fatalf("discrete solution rejected by checker: %v", err)
	}
}

func TestDiscreteLosesOffGridSolutions(t *testing.T) {
	// Two 1.5h jobs in a [0,3] window on one unit-capacity node: the
	// continuous model schedules them back to back (accept both), but a
	// 1h grid must round each job up to 2 slots → only one fits.
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 1.5, 3),
		singleNodeReq("b", 1, 0, 1.5, 3),
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 3}
	opts := BuildOptions{Objective: AccessControl, FixedMapping: vnet.NodeMapping{{0}, {0}}}

	cont := BuildCSigma(inst, opts)
	csol, cms := cont.Solve(context.Background(), nil)
	if cms.Status != model.StatusOptimal || csol.NumAccepted() != 2 {
		t.Fatalf("continuous: status %v accepted %d, want 2", cms.Status, csol.NumAccepted())
	}

	db := BuildDiscrete(inst, opts, 1.0)
	dsol, dms := db.Solve(context.Background(), nil)
	if dms.Status != model.StatusOptimal {
		t.Fatalf("discrete: status %v", dms.Status)
	}
	if dsol.NumAccepted() >= csol.NumAccepted() {
		t.Fatalf("discretization should lose here: discrete %d vs continuous %d",
			dsol.NumAccepted(), csol.NumAccepted())
	}
}

func TestDiscreteConvergesWithFinerGrid(t *testing.T) {
	// The same off-grid instance recovers the continuous optimum once the
	// slot length divides the durations.
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 1.5, 3),
		singleNodeReq("b", 1, 0, 1.5, 3),
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 3}
	opts := BuildOptions{Objective: AccessControl, FixedMapping: vnet.NodeMapping{{0}, {0}}}
	db := BuildDiscrete(inst, opts, 0.5)
	sol, ms := db.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal || sol.NumAccepted() != 2 {
		t.Fatalf("fine grid: status %v accepted %d, want 2", ms.Status, sol.NumAccepted())
	}
	if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
		t.Fatal(err)
	}
}

func TestDiscreteNeverBeatsContinuous(t *testing.T) {
	// Property over random workloads: the slotted optimum is a lower bound
	// on the continuous optimum (every slotted schedule is feasible for the
	// continuous model).
	wl := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 3, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1, WeibullShape: 2, WeibullScale: 2,
		FlexibilityHr: 2,
	}
	for seed := int64(1); seed <= 5; seed++ {
		sc := workload.Generate(wl, seed)
		inst := &Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		opts := BuildOptions{Objective: AccessControl, FixedMapping: sc.Mapping}
		cont := BuildCSigma(inst, opts)
		csol, cms := cont.Solve(context.Background(), nil)
		if cms.Status != model.StatusOptimal {
			t.Fatalf("seed %d: continuous status %v", seed, cms.Status)
		}
		db := BuildDiscrete(inst, opts, 1.0)
		dsol, dms := db.Solve(context.Background(), nil)
		if dms.Status != model.StatusOptimal {
			t.Fatalf("seed %d: discrete status %v", seed, dms.Status)
		}
		if dsol.Objective > csol.Objective+1e-5 {
			t.Fatalf("seed %d: discrete %v beats continuous %v", seed, dsol.Objective, csol.Objective)
		}
		if err := solution.Check(inst.Sub, inst.Reqs, dsol); err != nil {
			t.Fatalf("seed %d: discrete solution infeasible: %v", seed, err)
		}
	}
}

func TestDiscreteMakespan(t *testing.T) {
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 10),
		singleNodeReq("b", 1, 0, 2, 10),
	}
	inst := &Instance{Sub: sub, Reqs: reqs, Horizon: 10}
	db := BuildDiscrete(inst, BuildOptions{
		Objective: MinMakespan, FixedMapping: vnet.NodeMapping{{0}, {0}},
	}, 1.0)
	sol, ms := db.Solve(context.Background(), nil)
	if ms.Status != model.StatusOptimal {
		t.Fatalf("status %v", ms.Status)
	}
	if mk := math.Max(sol.End[0], sol.End[1]); math.Abs(mk-4) > 1e-6 {
		t.Fatalf("makespan %v, want 4", mk)
	}
}

func TestDiscreteRejectsUnsupportedObjective(t *testing.T) {
	inst, opts := pairInstance(1)
	opts.Objective = BalanceNodeLoad
	defer func() {
		if recover() == nil {
			t.Fatal("unsupported objective did not panic")
		}
	}()
	BuildDiscrete(inst, opts, 1.0)
}

func TestDiscreteModelGrowsWithGrid(t *testing.T) {
	// The paper's motivation in numbers: halving the slot length roughly
	// doubles the discrete model, while the continuous cΣ-Model size is
	// grid-independent.
	inst, opts := pairInstance(2)
	coarse := BuildDiscrete(inst, opts, 1.0)
	fine := BuildDiscrete(inst, opts, 0.25)
	if fine.Model.NumVars() <= coarse.Model.NumVars() {
		t.Fatalf("finer grid did not grow the model: %d vs %d",
			fine.Model.NumVars(), coarse.Model.NumVars())
	}
	if fine.NumSlots != 4*coarse.NumSlots {
		t.Fatalf("slots %d vs %d", fine.NumSlots, coarse.NumSlots)
	}
	cont := BuildCSigma(inst, opts)
	if cont.Model.NumVars() >= fine.Model.NumVars() {
		t.Fatalf("cΣ (%d vars) should be smaller than the fine discrete model (%d vars)",
			cont.Model.NumVars(), fine.Model.NumVars())
	}
}
