package core

import (
	"fmt"

	"tvnep/internal/depgraph"
	"tvnep/internal/model"
)

// BuildCSigma constructs the compact state model cΣ of Section IV:
// |R|+1 event points, starts bijective on e_1…e_|R|, ends many-to-one on
// e_2…e_|R|+1, explicit per-request state allocations on the |R| states,
// temporal dependency graph cuts (19)/(20) and the activity-interval
// presolve unless disabled.
func BuildCSigma(inst *Instance, opts BuildOptions) *Built {
	k := len(inst.Reqs)
	b := &Built{
		Model: model.New("cSigma", model.Maximize),
		Kind:  CSigma,
		Inst:  inst,
		Opts:  opts,
	}
	m := b.Model
	T := inst.Horizon
	numEvents := k + 1

	buildEmbedding(b)
	buildTimeVars(b, numEvents)

	dg := depgraph.Build(inst.Reqs)
	cutMode := opts.CutMode

	// Event windows: except in CutOff mode, χ variables exist only inside
	// the Constraint-(19) windows; otherwise over the full legal ranges.
	// The windows stay static even under lazy separation — they restrict
	// which variables are created, so there is no row to defer.
	var startWin, endWin []depgraph.Window
	if cutMode == CutOff {
		startWin, endWin = depgraph.FullWindows(k)
	} else {
		startWin = append([]depgraph.Window(nil), dg.StartWindow...)
		endWin = append([]depgraph.Window(nil), dg.EndWindow...)
	}

	// Event mapping variables (Table VII restricted to the cΣ ranges).
	b.ChiPlus = make([][]model.Var, k)
	b.ChiMinus = make([][]model.Var, k)
	for r := 0; r < k; r++ {
		b.ChiPlus[r] = make([]model.Var, numEvents+1)
		b.ChiMinus[r] = make([]model.Var, numEvents+2)
		for i := startWin[r].Lo; i <= startWin[r].Hi; i++ {
			b.ChiPlus[r][i] = m.Binary(fmt.Sprintf("chi+[%d][%d]", r, i))
		}
		for i := endWin[r].Lo; i <= endWin[r].Hi; i++ {
			b.ChiMinus[r][i] = m.Binary(fmt.Sprintf("chi-[%d][%d]", r, i))
		}
		// (10)/(19): each start on exactly one event in its window.
		m.AddEQ(chiSumUpTo(b.ChiPlus[r], numEvents), 1, fmt.Sprintf("start1[%d]", r))
		// (11)/(19): each end on exactly one event in its window.
		m.AddEQ(chiSumUpTo(b.ChiMinus[r], numEvents+1), 1, fmt.Sprintf("end1[%d]", r))
		// End strictly after start: Σ_{j≤i} χ⁻ ≤ Σ_{j≤i−1} χ⁺.
		for i := 2; i <= k; i++ {
			lhs := chiSumUpTo(b.ChiMinus[r], i)
			if lhs.Len() == 0 {
				continue
			}
			lhs.AddExpr(-1, chiSumUpTo(b.ChiPlus[r], i-1))
			m.AddLE(lhs, 0, fmt.Sprintf("order[%d][%d]", r, i))
		}
	}
	// (12): every event e_1…e_k hosts exactly one request start.
	for i := 1; i <= k; i++ {
		sum := model.Expr()
		for r := 0; r < k; r++ {
			if b.ChiPlus[r][i].Valid() {
				sum.Add(1, b.ChiPlus[r][i])
			}
		}
		m.AddEQ(sum, 1, fmt.Sprintf("event1[%d]", i))
	}

	// Constraint (20): pairwise precedence cuts from the dependency graph.
	// CutStatic emits every row up front (the formulation as written);
	// CutLazy registers a separator that appends only the rows fractional
	// relaxation points actually violate; CutOff drops the family.
	switch cutMode {
	case CutStatic:
		forEachPrecRow(b, dg, startWin, endWin, func(lhs *model.LinExpr, name string) {
			m.AddLE(lhs, 0, name)
		})
	case CutLazy:
		b.registerPrecSeparator(dg, startWin, endWin)
	}

	// State allocations (Tables VIII/IX, compactified). State s_n spans
	// [e_n, e_{n+1}]; request r is active there iff its start is at an
	// event ≤ n and its end at an event ≥ n+1.
	activity := func(r, n int) depgraph.Activity {
		if opts.DisablePresolve {
			// Without presolve every request may be active in every state
			// permitted by its χ ranges; windows still bound it when cuts
			// are on, so derive from the active windows.
			if n < startWin[r].Lo || n > endWin[r].Hi-1 {
				return depgraph.Never
			}
			return depgraph.Maybe
		}
		return dg.ActivityAt(r, n)
	}

	aVars := make(map[[3]int]model.Var) // (r, state, resource) → a
	nRes := b.resourceCount()
	numNodes := inst.Sub.NumNodes()
	for n := 1; n <= k; n++ {
		for rsc := 0; rsc < nRes; rsc++ {
			capRsc := b.resourceCap(rsc)
			capacity := model.Expr()
			any := false
			// FlowPath: priced path columns join link rows after the build,
			// so link-resource rows must exist for every request whose paths
			// can carry demand even when the compiled (seed-only) allocation
			// is empty; pendAlways defers their cap-row registration until
			// the row index exists.
			var pendAlways []int
			for r := 0; r < k; r++ {
				force := b.linkUse != nil && rsc >= numNodes && b.pathLinkDemand(r)
				switch activity(r, n) {
				case depgraph.Never:
					continue
				case depgraph.Always:
					// Presolve of Section IV-C: the request is provably
					// active; its allocation joins Constraint (9) directly
					// and needs no a variable.
					alloc := b.allocExpr(r, rsc)
					if alloc.Len() > 0 || force {
						capacity.AddExpr(1, alloc)
						any = true
						if force {
							pendAlways = append(pendAlways, r)
						}
					}
				case depgraph.Maybe:
					alloc := b.allocExpr(r, rsc)
					if alloc.Len() == 0 && !force {
						continue
					}
					a := m.Continuous(fmt.Sprintf("a[%d][%d][%d]", r, n, rsc), 0, model.Inf())
					aVars[[3]int{r, n, rsc}] = a
					// (7): a ≥ alloc − c·(1 − Σc(r, e_n)) with
					// Σc = Σ_{j≤n} χ⁺ − Σ_{j≤n} χ⁻, i.e.
					// a − alloc − c·Σχ⁺ + c·Σχ⁻ ≥ −c.
					con := model.Expr().Add(1, a)
					con.AddExpr(-1, alloc)
					con.AddExpr(-capRsc, chiSumUpTo(b.ChiPlus[r], n))
					con.AddExpr(capRsc, chiSumUpTo(b.ChiMinus[r], n))
					row := m.AddGE(con, -capRsc, fmt.Sprintf("state[%d][%d][%d]", r, n, rsc))
					if force {
						b.recordLinkUse(r, rsc-numNodes, row, -1)
					}
					capacity.Add(1, a)
					any = true
				}
			}
			if any {
				// (9): total state allocation within capacity.
				row := m.AddLE(capacity, capRsc, fmt.Sprintf("cap[%d][%d]", n, rsc))
				for _, r := range pendAlways {
					b.recordLinkUse(r, rsc-numNodes, row, 1)
				}
			}
		}
	}

	// Temporal attachment (Table XIII), restricted to the active windows.
	for r := 0; r < k; r++ {
		for i := startWin[r].Lo; i <= startWin[r].Hi; i++ {
			// (14): t⁺ ≤ t_{e_i} + (1 − Σ_{j≤i} χ⁺)·T
			e14 := model.Expr().Add(1, b.TPlus[r]).Add(-1, b.TEvent[i])
			e14.AddExpr(T, chiSumUpTo(b.ChiPlus[r], i))
			m.AddLE(e14, T, fmt.Sprintf("t14[%d][%d]", r, i))
			// (15): t⁺ ≥ t_{e_i} − (1 − Σ_{j≥i} χ⁺)·T
			e15 := model.Expr().Add(1, b.TPlus[r]).Add(-1, b.TEvent[i])
			e15.AddExpr(-T, chiSumFrom(b.ChiPlus[r], i))
			m.AddGE(e15, -T, fmt.Sprintf("t15[%d][%d]", r, i))
		}
		for i := endWin[r].Lo; i <= endWin[r].Hi; i++ {
			// (16): t⁻ ≤ t_{e_i} + (1 − Σ_{2≤j≤i} χ⁻)·T
			e16 := model.Expr().Add(1, b.TMinus[r]).Add(-1, b.TEvent[i])
			e16.AddExpr(T, chiSumUpTo(b.ChiMinus[r], i))
			m.AddLE(e16, T, fmt.Sprintf("t16[%d][%d]", r, i))
			// (17): t⁻ ≥ t_{e_{i−1}} − (1 − Σ_{j≥i} χ⁻)·T
			e17 := model.Expr().Add(1, b.TMinus[r]).Add(-1, b.TEvent[i-1])
			e17.AddExpr(-T, chiSumFrom(b.ChiMinus[r], i))
			m.AddGE(e17, -T, fmt.Sprintf("t17[%d][%d]", r, i))
		}
	}

	// Node-load accessor for the BalanceNodeLoad objective.
	b.numStates = k
	b.stateNodeLoad = func(n, ns int) *model.LinExpr {
		load := model.Expr()
		for r := 0; r < k; r++ {
			switch activity(r, n) {
			case depgraph.Always:
				load.AddExpr(1, b.allocExpr(r, ns))
			case depgraph.Maybe:
				if a, ok := aVars[[3]int{r, n, ns}]; ok {
					load.Add(1, a)
				}
			}
		}
		return load
	}

	applyObjective(b)
	if opts.FlowMode == FlowPath {
		finishPathFlows(b)
	}
	return b
}
