package core

import (
	"context"
	"fmt"
	"math"

	"tvnep/internal/model"
	"tvnep/internal/numtol"
	"tvnep/internal/solution"
)

// DiscreteBuilt is the compiled discrete-time baseline (see BuildDiscrete).
type DiscreteBuilt struct {
	*Built
	SlotLen  float64
	NumSlots int
	// Y[r][s] decides whether request r starts at slot boundary s·SlotLen.
	Y [][]model.Var
	// slots[r] is the number of whole slots request r occupies (duration
	// rounded up — the discretization error the paper's continuous-time
	// approach avoids).
	slots []int
}

// BuildDiscrete constructs the time-slotted baseline MIP the paper's
// continuous-time approach is motivated against (Section III: discrete
// models trade accuracy for a time grid). Start times are restricted to
// multiples of slotLen and durations are rounded *up* to whole slots, so
// the model is resource-safe but loses schedules that need off-grid starts
// — its optimum can only be ≤ the continuous optimum, approaching it as
// slotLen → 0 at the cost of one state per slot.
//
// Supported objectives: AccessControl, MaxEarliness, MinMakespan and
// DisableLinks (BalanceNodeLoad would need per-slot loads and is omitted).
func BuildDiscrete(inst *Instance, opts BuildOptions, slotLen float64) *DiscreteBuilt {
	if slotLen <= 0 {
		panic("core: BuildDiscrete needs a positive slot length")
	}
	k := len(inst.Reqs)
	b := &Built{
		Model: model.New("Discrete", model.Maximize),
		Kind:  Formulation(-1), // not one of the paper's three
		Inst:  inst,
		Opts:  opts,
	}
	m := b.Model
	buildEmbedding(b)

	numSlots := int(math.Ceil(inst.Horizon/slotLen - numtol.WindowTol))
	db := &DiscreteBuilt{
		Built:    b,
		SlotLen:  slotLen,
		NumSlots: numSlots,
		Y:        make([][]model.Var, k),
		slots:    make([]int, k),
	}
	// TPlus/TMinus become derived continuous variables so extraction and
	// the earliness/makespan objectives work unchanged.
	b.TPlus = make([]model.Var, k)
	b.TMinus = make([]model.Var, k)

	for r, req := range inst.Reqs {
		db.slots[r] = int(math.Ceil(req.Duration/slotLen - numtol.WindowTol))
		if db.slots[r] < 1 {
			db.slots[r] = 1
		}
		db.Y[r] = make([]model.Var, numSlots)
		choice := model.Expr()
		startExpr := model.Expr()
		for s := 0; s < numSlots; s++ {
			start := float64(s) * slotLen
			end := start + float64(db.slots[r])*slotLen
			// Grid feasibility: the slotted run must fit the window (this
			// is where discretization loses solutions).
			if start < req.Earliest-numtol.WindowTol || end > req.Latest+numtol.WindowTol {
				continue
			}
			db.Y[r][s] = m.Binary(fmt.Sprintf("y[%d][%d]", r, s))
			choice.Add(1, db.Y[r][s])
			startExpr.Add(start, db.Y[r][s])
		}
		// Exactly one start slot iff embedded.
		choice.Add(-1, b.XR[r])
		m.AddEQ(choice, 0, fmt.Sprintf("choose[%d]", r))

		b.TPlus[r] = m.Continuous(fmt.Sprintf("t+[%d]", r), 0, inst.Horizon)
		b.TMinus[r] = m.Continuous(fmt.Sprintf("t-[%d]", r), 0, inst.Horizon)
		// t⁺ = Σ s·δ·y (+ earliest·(1−xR) so rejected requests keep a valid
		// window position, mirroring Definition 2.1).
		tPlusExpr := model.Expr().Add(1, b.TPlus[r])
		tPlusExpr.AddExpr(-1, startExpr)
		tPlusExpr.Add(req.Earliest, b.XR[r])
		m.AddEQ(tPlusExpr, req.Earliest, fmt.Sprintf("tplus[%d]", r))
		dur := model.Expr().Add(1, b.TMinus[r]).Add(-1, b.TPlus[r])
		m.AddEQ(dur, req.Duration, fmt.Sprintf("tminus[%d]", r))
	}

	// Per-slot capacity via the same big-M device as the Σ-Models:
	// a[r][q][rsc] ≥ alloc − c·(1 − active(r,q)).
	nRes := b.resourceCount()
	for q := 0; q < numSlots; q++ {
		for rsc := 0; rsc < nRes; rsc++ {
			capRsc := b.resourceCap(rsc)
			capacity := model.Expr()
			any := false
			for r := 0; r < k; r++ {
				active := model.Expr()
				for s := q - db.slots[r] + 1; s <= q; s++ {
					if s >= 0 && s < numSlots && db.Y[r][s].Valid() {
						active.Add(1, db.Y[r][s])
					}
				}
				if active.Len() == 0 {
					continue
				}
				alloc := b.allocExpr(r, rsc)
				if alloc.Len() == 0 {
					continue
				}
				a := m.Continuous(fmt.Sprintf("a[%d][%d][%d]", r, q, rsc), 0, model.Inf())
				con := model.Expr().Add(1, a)
				con.AddExpr(-1, alloc)
				con.AddExpr(-capRsc, active)
				m.AddGE(con, -capRsc, fmt.Sprintf("slot[%d][%d][%d]", r, q, rsc))
				capacity.Add(1, a)
				any = true
			}
			if any {
				m.AddLE(capacity, capRsc, fmt.Sprintf("scap[%d][%d]", q, rsc))
			}
		}
	}

	switch opts.Objective {
	case AccessControl, MaxEarliness, MinMakespan, DisableLinks:
		applyObjective(b)
	default:
		panic(fmt.Sprintf("core: discrete baseline does not support objective %v", opts.Objective))
	}
	return db
}

// Solve optimizes the discrete model and extracts a solution (the slotted
// schedule is exact, so the continuous checker applies unchanged). A nil
// ctx is treated as context.Background().
func (db *DiscreteBuilt) Solve(ctx context.Context, opts *model.SolveOptions) (*solution.Solution, *model.Solution) {
	ms := db.Model.Optimize(ctx, opts)
	return db.Built.Extract(ms), ms
}
