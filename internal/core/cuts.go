package core

// Lazy separation of the cΣ-Model's pairwise precedence cuts. The static
// build emits every Constraint-(20) row up front — O(|R|²) precedence pairs
// times O(|R|) event indices — even though on most instances only a small
// fraction ever binds. In CutLazy mode the same enumeration runs once at
// build time to precompute the candidate rows, but none become LP rows;
// instead a separator hands the branch-and-bound solver the members a
// fractional relaxation point violates, and the solver's cut pool appends
// them incrementally (internal/mip, internal/lp).

import (
	"fmt"

	"tvnep/internal/depgraph"
	"tvnep/internal/model"
)

// forEachPrecRow enumerates the Constraint-(20) rows exactly as the static
// cΣ build emits them: for every positive-distance precedence (V, W, gap)
// and every event index i in W's window (capped so the χ_V prefix is
// non-vacuous), the row Σ_{j≤i} χ_W − Σ_{j≤i−gap} χ_V ≤ 0. Static emission
// and lazy separation share this single enumeration, so the two modes
// reason about the identical cut family.
func forEachPrecRow(b *Built, dg *depgraph.Graph, startWin, endWin []depgraph.Window, fn func(lhs *model.LinExpr, name string)) {
	for _, pr := range dg.Precedences() {
		chiV := b.ChiPlus[depgraph.RequestOf(pr.V)]
		winV := startWin[depgraph.RequestOf(pr.V)]
		if !depgraph.IsStartNode(pr.V) {
			chiV = b.ChiMinus[depgraph.RequestOf(pr.V)]
			winV = endWin[depgraph.RequestOf(pr.V)]
		}
		chiW := b.ChiPlus[depgraph.RequestOf(pr.W)]
		winW := startWin[depgraph.RequestOf(pr.W)]
		if !depgraph.IsStartNode(pr.W) {
			chiW = b.ChiMinus[depgraph.RequestOf(pr.W)]
			winW = endWin[depgraph.RequestOf(pr.W)]
		}
		hi := winW.Hi
		if lim := winV.Hi + pr.Gap - 1; lim < hi {
			hi = lim
		}
		for i := winW.Lo; i <= hi; i++ {
			lhs := chiSumUpTo(chiW, i)
			if lhs.Len() == 0 {
				continue
			}
			lhs.AddExpr(-1, chiSumUpTo(chiV, i-pr.Gap))
			fn(lhs, fmt.Sprintf("prec[%d][%d][%d]", pr.V, pr.W, i))
		}
	}
}

// precSeparator lazily separates the precedence cut family. cands is the
// full precomputed candidate list in the deterministic build-time
// enumeration order; Separate scans it and returns the violated members —
// a pure function of x, as the mip.Separator contract requires. Every
// candidate is globally valid: the windows-never-exclude-a-feasible-schedule
// property (tested in internal/depgraph) guarantees no integral embedding
// is cut off.
type precSeparator struct {
	cands []model.Cut
}

// precSeedSlack is the activity margin within which an unviolated candidate
// is still offered to the solver's cut pool: the pool's root seeding round
// (internal/mip) appends near-active rows alongside violated ones, so the
// tree search starts from the same strengthened root a static build would
// give. The margin matches the pool's rootCutSeedSlack.
const precSeedSlack = 0.5

// Separate implements model.Separator: it returns the candidates x violates
// plus the near-active ones (within precSeedSlack of binding), which the
// pool appends only during root seeding.
func (ps *precSeparator) Separate(x []float64) []model.Cut {
	var out []model.Cut
	for _, c := range ps.cands {
		act := 0.0
		for k, j := range c.Idx {
			act += c.Val[k] * x[j]
		}
		if act > c.UB-precSeedSlack {
			out = append(out, c)
		}
	}
	return out
}

// registerPrecSeparator precomputes the Constraint-(20) candidate rows and
// registers the separator on the built model (CutLazy mode).
func (b *Built) registerPrecSeparator(dg *depgraph.Graph, startWin, endWin []depgraph.Window) {
	ps := &precSeparator{}
	forEachPrecRow(b, dg, startWin, endWin, func(lhs *model.LinExpr, name string) {
		ps.cands = append(ps.cands, model.CutLE(lhs, 0, name))
	})
	b.precCandidates = len(ps.cands)
	if len(ps.cands) > 0 {
		b.Model.RegisterSeparator(ps)
	}
}

// PrecCutCandidates reports the size of the lazily separated Constraint-(20)
// family (0 unless the model was built with CutLazy). It equals the number
// of rows CutStatic would have emitted, which is what the row-count
// accounting in internal/eval reports as the saving.
func (b *Built) PrecCutCandidates() int { return b.precCandidates }
