// Package stats provides the small descriptive-statistics helpers the
// evaluation harness uses to summarize per-flexibility result distributions
// (the box plots of Figures 3–9).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a five-number summary plus mean of a sample.
type Summary struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sample using linear
// interpolation between order statistics. NaN for empty input.
func Quantile(sample []float64, q float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range sample {
		s += v
	}
	return s / float64(len(sample))
}

// Summarize computes the five-number summary of a sample.
func Summarize(sample []float64) Summary {
	return Summary{
		N:      len(sample),
		Min:    Quantile(sample, 0),
		Q1:     Quantile(sample, 0.25),
		Median: Quantile(sample, 0.5),
		Q3:     Quantile(sample, 0.75),
		Max:    Quantile(sample, 1),
		Mean:   Mean(sample),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g q1=%.3g med=%.3g q3=%.3g max=%.3g mean=%.3g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}
