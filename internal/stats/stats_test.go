package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileKnown(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(s, c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := []float64{0, 10}
	if got := Quantile(s, 0.5); got != 5 {
		t.Fatalf("median of {0,10} = %v, want 5", got)
	}
}

func TestQuantileUnsortedInput(t *testing.T) {
	s := []float64{5, 1, 3, 2, 4}
	if got := Quantile(s, 0.5); got != 3 {
		t.Fatalf("median = %v, want 3", got)
	}
	// Input must not be mutated.
	if s[0] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestEmpty(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Mean(nil)) {
		t.Fatal("empty sample should give NaN")
	}
	sum := Summarize(nil)
	if sum.N != 0 || !math.IsNaN(sum.Median) {
		t.Fatalf("empty summary = %+v", sum)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

// Property: quantiles are monotone in q and bracketed by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		s := make([]float64, n)
		for i := range s {
			s[i] = rng.NormFloat64() * 10
		}
		sorted := append([]float64(nil), s...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.1 {
			v := Quantile(s, math.Min(q, 1))
			if v < prev-1e-12 || v < sorted[0]-1e-12 || v > sorted[n-1]+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
