package admit

import (
	"context"
	"math"
	"testing"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/greedy"
	"tvnep/internal/model"
	"tvnep/internal/numtol"
	"tvnep/internal/solution"
	"tvnep/internal/workload"
)

// trace generates a seeded arrival trace sized for the test mode.
func trace(t *testing.T, n int, seed int64) *workload.Scenario {
	t.Helper()
	cfg := workload.Default()
	cfg.NumRequests = n
	cfg.FlexibilityHr = 2
	sc := workload.Generate(cfg, seed)
	if err := sc.Validate(); err != nil {
		t.Fatalf("generated scenario invalid: %v", err)
	}
	return sc
}

// replay streams a whole scenario through a fresh engine and returns it.
func replay(t *testing.T, sc *workload.Scenario, cfg Config) *Engine {
	t.Helper()
	cfg.Sub = sc.Substrate
	cfg.Horizon = sc.Horizon
	eng, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i, req := range sc.Requests {
		if _, err := eng.Admit(context.Background(), req, sc.Mapping[i]); err != nil {
			t.Fatalf("Admit(%d): %v", i, err)
		}
	}
	return eng
}

// TestReplayDeterminism replays one seeded trace at several worker counts
// and requires the bit-identical accept/reject sequence and schedules: the
// admission engine's contract is that parallelism never changes decisions.
func TestReplayDeterminism(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 20
	}
	sc := trace(t, n, 7)
	var base []Decision
	for _, workers := range []int{1, 2, 4, 8} {
		eng := replay(t, sc, Config{Solve: model.SolveOptions{Workers: workers}, Certify: true})
		ds := eng.Decisions()
		if base == nil {
			base = ds
			continue
		}
		for i := range ds {
			if ds[i].Accepted != base[i].Accepted {
				t.Fatalf("workers=%d: decision %d accept=%v, workers=1 gave %v",
					workers, i, ds[i].Accepted, base[i].Accepted)
			}
			if math.Float64bits(ds[i].Start) != math.Float64bits(base[i].Start) ||
				math.Float64bits(ds[i].End) != math.Float64bits(base[i].End) {
				t.Fatalf("workers=%d: decision %d schedule [%v,%v] != [%v,%v]",
					workers, i, ds[i].Start, ds[i].End, base[i].Start, base[i].End)
			}
		}
	}
}

// TestWarmRestartRegression guards the commitment hot-restart: across a
// streamed trace the warm-started share of restarts must stay positive —
// the whole point of keeping the LP instance hot between the deciding solve
// and the decision pin.
func TestWarmRestartRegression(t *testing.T) {
	sc := trace(t, 25, 3)
	eng := replay(t, sc, Config{})
	s := eng.Stats()
	if s.WarmAttempts == 0 {
		t.Fatal("no commitment hot-restarts were attempted")
	}
	if s.WarmUsed == 0 {
		t.Fatalf("warm-restart hit rate is zero across %d attempts", s.WarmAttempts)
	}
	t.Logf("warm rate %.2f (%d/%d), basis extensions %d",
		s.WarmRate(), s.WarmUsed, s.WarmAttempts, s.BasisExtended)
	if s.BasisExtended == 0 {
		t.Fatal("no warm restart extended the LU factors over the appended pin rows")
	}
}

// TestMatchesGreedy streams a trace whose arrival order equals the
// earliest-start order (workload arrivals are Poisson-ordered) and checks
// the engine reproduces the offline greedy cΣ_A^G accept set and schedules:
// the engine is the same algorithm, computed incrementally with active-set
// pruning and tiered solves, so the decisions must coincide.
func TestMatchesGreedy(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 12
	}
	sc := trace(t, n, 11)
	eng := replay(t, sc, Config{})

	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	gsol, _, err := greedy.Solve(context.Background(), inst, sc.Mapping, core.BuildOptions{}, nil)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	ds := eng.Decisions()
	for i := range sc.Requests {
		if ds[i].Accepted != gsol.Accepted[i] {
			t.Errorf("request %d: engine accept=%v, greedy accept=%v", i, ds[i].Accepted, gsol.Accepted[i])
			continue
		}
		if !ds[i].Accepted {
			continue
		}
		if math.Abs(ds[i].Start-gsol.Start[i]) > numtol.TimeTol {
			t.Errorf("request %d: engine start %v, greedy start %v", i, ds[i].Start, gsol.Start[i])
		}
	}
}

// TestSnapshotCertifies certifies the engine's cumulative solution with the
// independent checker after a full streamed trace, under the access-control
// objective the engine optimizes.
func TestSnapshotCertifies(t *testing.T) {
	sc := trace(t, 25, 5)
	eng := replay(t, sc, Config{Certify: true, ReoptEvery: 4})
	inst, mapping, sol := eng.Snapshot()
	rep := certify.Solution(inst, sol, certify.Options{Objective: core.AccessControl, Mapping: mapping})
	if err := rep.Err(); err != nil {
		t.Fatalf("snapshot does not certify: %v", err)
	}
	if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
		t.Fatalf("snapshot fails the feasibility checker: %v", err)
	}
	s := eng.Stats()
	if s.Decisions != len(sc.Requests) {
		t.Fatalf("decisions %d != requests %d", s.Decisions, len(sc.Requests))
	}
	if s.Accepted == 0 {
		t.Fatal("trace accepted nothing; scenario too tight to be meaningful")
	}
	t.Logf("accepted %d/%d, tiers precheck=%d lp=%d mip=%d, reopts=%d",
		s.Accepted, s.Decisions, s.PrecheckTier, s.LPTier, s.MIPTier, s.Reopts)
}

// TestPrecheckReject covers the no-solve tier: a request whose own demand
// exceeds a node capacity must be rejected without touching the solver.
func TestPrecheckReject(t *testing.T) {
	sc := trace(t, 1, 1)
	eng := replay(t, sc, Config{})
	req := *sc.Requests[0]
	req.Name = "too-big"
	req.NodeDemand = append([]float64(nil), req.NodeDemand...)
	req.NodeDemand[0] = sc.Substrate.NodeCap[sc.Mapping[0][0]] + 1
	d, err := eng.Admit(context.Background(), &req, sc.Mapping[0])
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	if d.Accepted || d.Stats.Tier != TierPrecheck {
		t.Fatalf("want precheck rejection, got accepted=%v tier=%q", d.Accepted, d.Stats.Tier)
	}
	if d.Start != req.Earliest || d.End != req.EarliestEnd() {
		t.Fatalf("rejected times [%v,%v] != Definition-2.1 fixed [%v,%v]",
			d.Start, d.End, req.Earliest, req.EarliestEnd())
	}
}
