// Package admit implements the online admission engine: a long-running
// service that receives VNet requests one at a time and decides, for each
// arrival, whether to embed it — the streaming counterpart of the greedy
// algorithm cΣ_A^G (Section V). Every decision solves a small cΣ model in
// which all previously accepted requests keep their committed schedules
// (Constraint 24) and their committed link flows (pinned χ bounds — the
// solve sees the true residual capacity, it cannot reroute committed
// traffic) and only the arriving request is free, under objective (21):
// max T·x_R + (T − t⁻).
//
// The engine is built around three cost tiers per admission:
//
//  1. a capacity precheck that rejects requests that cannot fit the
//     substrate even on an empty network (no solve at all),
//  2. an LP fast tier that solves the root relaxation through a raw
//     lp.Instance (keeping the basis and LU factors) and decides
//     immediately when the relaxation is integral,
//  3. a full branch-and-bound solve otherwise.
//
// After each decision the engine pins the outcome into the still-hot LP
// instance with lp.Instance.AppendRow (x_R and t⁺ band rows) and re-solves
// with the captured basis/factors (lp.Options.WarmBasis/WarmFactors) — the
// cutting-plane hot-restart machinery reused as a per-admission commitment
// certificate, giving an LP bound on the committed system without a single
// refactorization in the common case.
//
// Decisions are deterministic: admissions are serialized, the per-decision
// branch-and-bound search is bit-identical for every worker count
// (internal/mip), and the default budget is a node limit rather than a time
// limit, so replaying the same trace yields the same accept/reject sequence
// regardless of parallelism or machine speed.
package admit

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/lp"
	"tvnep/internal/model"
	"tvnep/internal/numtol"
	"tvnep/internal/round"
	"tvnep/internal/solution"
	"tvnep/internal/stats"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// DefaultNodeLimit bounds the branch-and-bound search of one admission when
// the caller sets neither a node nor a time limit. A node limit (unlike a
// time limit) keeps the decision sequence a pure function of the trace.
const DefaultNodeLimit = 20000

// Tier names which cost tier produced a decision.
type Tier string

const (
	// TierPrecheck: rejected by the capacity precheck, no solve.
	TierPrecheck Tier = "precheck"
	// TierLP: decided by an integral LP relaxation, no branch and bound.
	TierLP Tier = "lp"
	// TierRounding: accepted by rounding the fractional LP relaxation
	// (Config.Rounding; only accepts — rejections stay with the MIP tier).
	TierRounding Tier = "rounding"
	// TierMIP: decided by a full branch-and-bound solve.
	TierMIP Tier = "mip"
)

// roundingSamples is the number of random flow samples the rounding tier
// tries per admission after the deterministic path mix.
const roundingSamples = 8

// Config configures an Engine.
type Config struct {
	// Sub is the substrate network shared by all admissions.
	Sub *substrate.Network
	// Horizon is the planning horizon T; every request window must fit it.
	Horizon float64
	// Solve configures each per-decision solve. A zero TimeLimit and
	// NodeLimit default to NodeLimit = DefaultNodeLimit; setting a TimeLimit
	// trades replay determinism for a wall-clock bound.
	Solve model.SolveOptions
	// CutMode selects how Constraint-(20) cuts reach the per-decision cΣ
	// models (default static).
	CutMode core.CutMode
	// DisablePresolve turns the activity-interval state-space reduction off
	// in the per-decision models (ablations).
	DisablePresolve bool
	// Rounding enables the randomized-rounding fast tier between the LP
	// relaxation and the branch-and-bound: when the relaxation is optimal
	// but fractional, the engine first tries to round the arriving request
	// into the committed system (internal/round.AdmitSample). The tier only
	// ever accepts; anything it cannot place falls through to the exact
	// solve, so rejections keep their branch-and-bound justification.
	Rounding bool
	// Seed drives the rounding tier's per-decision sampling (ignored when
	// Rounding is off). Decisions derive their own seeds from it via
	// round.MixSeed, so replaying a trace with the same seed is
	// bit-identical.
	Seed int64
	// Certify re-verifies every accepting decision with the independent
	// solution checker before committing it; a violation downgrades the
	// decision to a rejection (and is reported in Decision.CertErr).
	Certify bool
	// ReoptEvery triggers a batched re-optimization of the committed link
	// allocations after every n-th acceptance (0 → never). Re-optimization
	// never changes past accept/reject decisions or schedules, only flows.
	ReoptEvery int
}

// Decision is the engine's answer to one admission request.
type Decision struct {
	// Index is the arrival index of the request (0-based).
	Index int
	// Name echoes the request name.
	Name string
	// Accepted reports whether the request was embedded.
	Accepted bool
	// Start and End are the committed schedule when accepted; for rejected
	// requests they are the Definition-2.1 fixed times [t^s, t^s+d].
	Start, End float64
	// Hosts and Flows are the committed embedding when accepted (Hosts
	// echoes the pinned mapping; Flows are the splittable link allocations).
	Hosts []int
	Flows [][]float64
	// Stats carries the per-decision solver statistics.
	Stats DecisionStats
	// CertErr records a certification failure that downgraded an accepting
	// solve to a rejection (nil otherwise).
	CertErr error
}

// DecisionStats are the per-decision solver statistics.
type DecisionStats struct {
	// Tier names the cost tier that produced the decision.
	Tier Tier
	// Latency is the wall-clock time of the whole admission.
	Latency time.Duration
	// LPIterations counts simplex iterations across all solves of the
	// admission (fast tier, branch and bound, commitment restart).
	LPIterations int
	// Nodes counts branch-and-bound nodes (0 for precheck/LP decisions).
	Nodes int
	// WarmUsed reports that the commitment hot-restart ran warm (dual
	// simplex from the captured basis, no cold fallback).
	WarmUsed bool
	// BasisExtended reports that the hot-restart extended the LU factors
	// over the appended pin rows (sparselu.Extend) instead of refactorizing.
	BasisExtended bool
	// PinnedBound is the LP optimum of the decision-pinned model produced
	// by the commitment hot-restart (NaN when the restart was skipped).
	PinnedBound float64
	// ActiveSet is the number of committed requests included in the
	// per-decision model after temporal pruning.
	ActiveSet int
}

// Stats aggregates engine statistics across all decisions.
type Stats struct {
	Decisions     int
	Accepted      int
	Rejected      int
	PrecheckTier  int
	LPTier        int
	RoundingTier  int
	MIPTier       int
	CertFailures  int
	Reopts        int
	TotalLPIters  int
	TotalNodes    int
	WarmAttempts  int
	WarmUsed      int
	BasisExtended int
	// LatencyP50 and LatencyP99 summarize per-decision latency.
	LatencyP50, LatencyP99 time.Duration
}

// AcceptRate returns the fraction of decisions that accepted (0 for none).
func (s Stats) AcceptRate() float64 {
	if s.Decisions == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Decisions)
}

// WarmRate returns the fraction of commitment restarts that ran warm.
func (s Stats) WarmRate() float64 {
	if s.WarmAttempts == 0 {
		return 0
	}
	return float64(s.WarmUsed) / float64(s.WarmAttempts)
}

// record is the engine's log entry for one decided request.
type record struct {
	req     *vnet.Request // original window (not pinned)
	mapping []int
	decided Decision
}

// Engine is the online admission engine. All methods are safe for
// concurrent use; admissions are serialized internally, which is what makes
// the accept/reject sequence a pure function of the submission order.
type Engine struct {
	mu         sync.Mutex
	cfg        Config
	log        []*record // every decided request, in arrival order
	active     []*record // accepted subset, in arrival order
	stats      Stats
	latencies  []float64 // seconds, one per decision
	sinceReopt int
}

// New validates the configuration and returns a fresh engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Sub == nil {
		return nil, errors.New("admit: nil substrate")
	}
	if err := cfg.Sub.Validate(); err != nil {
		return nil, fmt.Errorf("admit: %w", err)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("admit: nonpositive horizon %v", cfg.Horizon)
	}
	if cfg.Solve.TimeLimit == 0 && cfg.Solve.NodeLimit == 0 {
		cfg.Solve.NodeLimit = DefaultNodeLimit
	}
	return &Engine{cfg: cfg}, nil
}

// Horizon returns the engine's planning horizon T.
func (e *Engine) Horizon() float64 { return e.cfg.Horizon }

// validate checks one arriving request against the engine configuration.
func (e *Engine) validate(req *vnet.Request, mapping []int) error {
	if req == nil {
		return errors.New("admit: nil request")
	}
	if err := req.Validate(); err != nil {
		return fmt.Errorf("admit: %w", err)
	}
	if req.Latest > e.cfg.Horizon+numtol.WindowTol {
		return fmt.Errorf("admit: request %s window [%v,%v] exceeds horizon %v",
			req.Name, req.Earliest, req.Latest, e.cfg.Horizon)
	}
	if len(mapping) != req.G.N {
		return fmt.Errorf("admit: request %s: mapping covers %d of %d virtual nodes",
			req.Name, len(mapping), req.G.N)
	}
	for v, s := range mapping {
		if s < 0 || s >= e.cfg.Sub.NumNodes() {
			return fmt.Errorf("admit: request %s: virtual node %d mapped to invalid substrate node %d",
				req.Name, v, s)
		}
	}
	return nil
}

// precheckReject reports whether the request can be rejected without any
// solve: its own node demand, aggregated per substrate node under the
// pinned mapping, exceeds some node capacity — then no schedule can embed
// it even on an empty substrate.
func (e *Engine) precheckReject(req *vnet.Request, mapping []int) bool {
	load := map[int]float64{}
	for v, s := range mapping {
		load[s] += req.NodeDemand[v]
	}
	for s, l := range load {
		if l > e.cfg.Sub.NodeCap[s]+numtol.CapTol {
			return true
		}
	}
	return false
}

// overlaps reports whether the committed schedule [start,end] can interact
// with any schedule inside the arriving request's window [earliest,latest].
// Capacities are enforced pointwise in time, so requests whose committed
// intervals lie strictly outside the window can never constrain the new
// request; the tolerance errs on the inclusive side (a false "overlap" only
// grows the model, never changes the optimum).
func overlaps(start, end, earliest, latest float64) bool {
	return end > earliest-numtol.EventCoincide && start < latest+numtol.EventCoincide
}

// Admit decides one arriving request. mapping pins every virtual node to a
// substrate node (the engine, like the paper's evaluation, requires a-priori
// node mappings). The call blocks while earlier admissions are in flight;
// decisions are made strictly in call order under the engine's lock.
//
//det:entry
func (e *Engine) Admit(ctx context.Context, req *vnet.Request, mapping []int) (Decision, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	began := time.Now() //lint:allow nondet -- admission latency accounting; decisions never read the clock
	if err := e.validate(req, mapping); err != nil {
		return Decision{}, err
	}

	// Private copy: the engine retains the request beyond the call.
	cp := *req
	rec := &record{req: &cp, mapping: append([]int(nil), mapping...)}
	d := Decision{Index: len(e.log), Name: cp.Name}
	d.Stats.PinnedBound = math.NaN()

	if e.precheckReject(&cp, rec.mapping) {
		d.Stats.Tier = TierPrecheck
		e.finishReject(rec, &d, began)
		return d, nil
	}

	dec, err := e.decide(ctx, rec, &d)
	if err != nil {
		return Decision{}, err
	}
	if dec != nil && e.cfg.Certify {
		if cerr := e.certifyDecision(rec, dec); cerr != nil {
			d.CertErr = cerr
			e.stats.CertFailures++
			dec = nil // downgrade to rejection; nothing is committed
		}
	}
	if dec == nil {
		e.finishReject(rec, &d, began)
		return d, nil
	}

	// Commit.
	d.Accepted = true
	d.Start, d.End = dec.start, dec.end
	d.Hosts = dec.hosts
	d.Flows = dec.flows
	e.log = append(e.log, rec)
	e.active = append(e.active, rec)
	e.stats.Decisions++
	e.stats.Accepted++
	e.observe(&d, began)
	rec.decided = d

	e.sinceReopt++
	if e.cfg.ReoptEvery > 0 && e.sinceReopt >= e.cfg.ReoptEvery {
		e.sinceReopt = 0
		e.reoptimize(ctx)
	}
	return d, nil
}

// acceptance is the embedding a deciding solve produced for the arriving
// request.
type acceptance struct {
	start, end float64
	hosts      []int
	flows      [][]float64
}

// decide runs the LP fast tier and, when inconclusive, the full
// branch-and-bound solve. It returns nil when the request is rejected.
func (e *Engine) decide(ctx context.Context, rec *record, d *Decision) (*acceptance, error) {
	subInst, _, opts, newIdx, pinned := e.subproblem(rec)
	d.Stats.ActiveSet = newIdx

	b := core.BuildCSigma(subInst, opts)
	// Pin the committed flows, not just the committed schedules: the solve
	// has no authority to reroute traffic the engine already committed, so
	// letting the χ variables of accepted requests float would admit new
	// requests against a hypothetical rerouting that never happens — the
	// union of per-decision flows could then overload links. The ±FlowCutoff
	// band absorbs the quantization applied when the flows were extracted.
	for i, flows := range pinned {
		for lv, row := range flows {
			for ls, f := range row {
				lo := f - numtol.FlowCutoff
				if lo < 0 {
					lo = 0
				}
				b.Model.SetBounds(b.XE[i][lv][ls], lo, f+numtol.FlowCutoff)
			}
		}
	}
	// Objective (21): max T·x_R(new) + (T − t⁻_new).
	T := e.cfg.Horizon
	b.Model.SetObjective(model.Expr().
		Add(T, b.XR[newIdx]).
		Add(-1, b.TMinus[newIdx]).
		AddConst(T))

	// LP fast tier: solve the root relaxation through a raw instance so the
	// basis and LU factors survive for the commitment hot-restart below.
	inst := lp.NewInstance(b.Model.LP())
	lpRes := inst.Solve(&lp.Options{CaptureFactors: true, Context: ctx})
	d.Stats.LPIterations += lpRes.Iterations

	var sol *solution.Solution
	if lpRes.Status == lp.StatusOptimal && integral(b.Model, lpRes.X) {
		d.Stats.Tier = TierLP
		sol = b.Extract(b.Model.SolutionFromLP(lpRes))
	} else {
		if e.cfg.Rounding && lpRes.Status == lp.StatusOptimal {
			// Rounding fast tier: try to place the arriving request by
			// rounding the fractional relaxation before paying for a full
			// branch-and-bound. Accept-only; the per-decision seed is
			// derived from the arrival index so traces replay identically.
			if rsol := round.AdmitSample(b, b.Model.SolutionFromLP(lpRes), newIdx,
				round.MixSeed(e.cfg.Seed, int64(len(e.log))), roundingSamples); rsol != nil {
				d.Stats.Tier = TierRounding
				sol = rsol
			}
		}
		if sol == nil {
			d.Stats.Tier = TierMIP
			ms := b.Model.Optimize(ctx, &e.cfg.Solve)
			d.Stats.LPIterations += ms.LPIterations
			d.Stats.Nodes += ms.Nodes
			if ms.Status == model.StatusCancelled {
				return nil, ctx.Err()
			}
			sol = b.Extract(ms)
		}
	}
	if sol == nil || !sol.Accepted[newIdx] {
		e.commitRestart(inst, b, lpRes, nil, newIdx, d)
		return nil, nil
	}
	acc := &acceptance{
		start: sol.Start[newIdx],
		end:   sol.End[newIdx],
		hosts: sol.Hosts[newIdx],
		flows: sol.Flows[newIdx],
	}
	e.commitRestart(inst, b, lpRes, acc, newIdx, d)
	return acc, nil
}

// subproblem assembles the per-decision cΣ instance: every committed request
// whose schedule overlaps the arriving window, pinned to its schedule and
// force-accepted, plus the arriving request free. The arriving request's
// subproblem index is returned (it is always last) together with the
// committed flows of the included requests, in subproblem order, for the
// caller to pin.
func (e *Engine) subproblem(rec *record) (*core.Instance, vnet.NodeMapping, core.BuildOptions, int, [][][]float64) {
	var subReqs []*vnet.Request
	var subMap vnet.NodeMapping
	var force []bool
	var pinned [][][]float64
	for _, a := range e.active {
		if !overlaps(a.decided.Start, a.decided.End, rec.req.Earliest, rec.req.Latest) {
			continue
		}
		pin := *a.req
		pin.Earliest = a.decided.Start
		pin.Latest = a.decided.End
		subReqs = append(subReqs, &pin)
		subMap = append(subMap, a.mapping)
		force = append(force, true)
		pinned = append(pinned, a.decided.Flows)
	}
	newIdx := len(subReqs)
	subReqs = append(subReqs, rec.req)
	subMap = append(subMap, rec.mapping)
	force = append(force, false)
	inst := &core.Instance{Sub: e.cfg.Sub, Reqs: subReqs, Horizon: e.cfg.Horizon}
	opts := core.BuildOptions{
		Objective:       core.AccessControl, // replaced by objective (21)
		FixedMapping:    subMap,
		CutMode:         e.cfg.CutMode,
		DisablePresolve: e.cfg.DisablePresolve,
		ForceAccept:     force,
	}
	return inst, subMap, opts, newIdx, pinned
}

// integral reports whether the LP point is integral on every integer column.
func integral(m *model.Model, x []float64) bool {
	for j, isInt := range m.IntegerMask() {
		if !isInt {
			continue
		}
		if frac := math.Abs(x[j] - math.Round(x[j])); frac > numtol.MIPIntTol {
			return false
		}
	}
	return true
}

// commitRestart pins the decision into the already-solved LP instance with
// AppendRow band rows and re-solves warm from the captured basis and LU
// factors — the lazy-cut hot-restart machinery reused to certify the
// committed system with an LP bound. acc == nil pins a rejection.
func (e *Engine) commitRestart(inst *lp.Instance, b *core.Built, lpRes lp.Result, acc *acceptance, newIdx int, d *Decision) {
	if lpRes.Basis == nil {
		return // fast-tier LP did not finish; nothing to restart from
	}
	xr := int32(b.XR[newIdx].Index())
	if acc != nil {
		inst.AppendRow([]int32{xr}, []float64{1}, 0.5, lp.Inf)
		tp := int32(b.TPlus[newIdx].Index())
		inst.AppendRow([]int32{tp}, []float64{1}, acc.start-numtol.TimeTol, acc.start+numtol.TimeTol)
	} else {
		inst.AppendRow([]int32{xr}, []float64{1}, math.Inf(-1), 0.5)
	}
	e.stats.WarmAttempts++
	res := inst.Solve(&lp.Options{WarmBasis: lpRes.Basis, WarmFactors: lpRes.Factors})
	d.Stats.LPIterations += res.Iterations
	d.Stats.WarmUsed = res.WarmUsed
	d.Stats.BasisExtended = res.BasisExtended
	if res.WarmUsed {
		e.stats.WarmUsed++
	}
	if res.BasisExtended {
		e.stats.BasisExtended++
	}
	if res.Status == lp.StatusOptimal {
		d.Stats.PinnedBound = res.Obj
	}
}

// certifyDecision re-verifies an accepting decision with the independent
// checker before it is committed: the arriving embedding is laid over the
// currently committed system and checked against Definition 2.1.
func (e *Engine) certifyDecision(rec *record, acc *acceptance) error {
	subReqs := []*vnet.Request{}
	subMap := vnet.NodeMapping{}
	sol := &solution.Solution{}
	add := func(r *vnet.Request, m []int, start, end float64, hosts []int, flows [][]float64) {
		subReqs = append(subReqs, r)
		subMap = append(subMap, m)
		sol.Accepted = append(sol.Accepted, true)
		sol.Start = append(sol.Start, start)
		sol.End = append(sol.End, end)
		sol.Hosts = append(sol.Hosts, hosts)
		sol.Flows = append(sol.Flows, flows)
	}
	for _, a := range e.active {
		add(a.req, a.mapping, a.decided.Start, a.decided.End, a.decided.Hosts, a.decided.Flows)
	}
	add(rec.req, rec.mapping, acc.start, acc.end, acc.hosts, acc.flows)
	inst := &core.Instance{Sub: e.cfg.Sub, Reqs: subReqs, Horizon: e.cfg.Horizon}
	rep := certify.Solution(inst, sol, certify.Options{SkipObjective: true, Mapping: subMap})
	return rep.Err()
}

// finishReject records a rejecting decision with the Definition-2.1 fixed
// times [t^s, t^s + d].
func (e *Engine) finishReject(rec *record, d *Decision, began time.Time) {
	d.Accepted = false
	d.Start = rec.req.Earliest
	d.End = rec.req.EarliestEnd()
	e.log = append(e.log, rec)
	e.stats.Decisions++
	e.stats.Rejected++
	e.observe(d, began)
	rec.decided = *d
}

// observe folds one decision into the aggregate statistics.
func (e *Engine) observe(d *Decision, began time.Time) {
	d.Stats.Latency = time.Since(began) //lint:allow nondet -- latency accounting only
	switch d.Stats.Tier {
	case TierPrecheck:
		e.stats.PrecheckTier++
	case TierLP:
		e.stats.LPTier++
	case TierRounding:
		e.stats.RoundingTier++
	case TierMIP:
		e.stats.MIPTier++
	}
	e.stats.TotalLPIters += d.Stats.LPIterations
	e.stats.TotalNodes += d.Stats.Nodes
	e.latencies = append(e.latencies, d.Stats.Latency.Seconds())
}

// reoptimize rebuilds the committed system (schedules and acceptances
// pinned) and re-solves it to rebalance the splittable link allocations —
// the batched re-optimization window. Decisions and schedules never change;
// only flows (and hosts when mappings were free, which they are not here)
// are refreshed, and only when the refreshed system passes certification.
func (e *Engine) reoptimize(ctx context.Context) {
	if len(e.active) == 0 {
		return
	}
	subReqs := make([]*vnet.Request, len(e.active))
	subMap := make(vnet.NodeMapping, len(e.active))
	force := make([]bool, len(e.active))
	for i, a := range e.active {
		pin := *a.req
		pin.Earliest = a.decided.Start
		pin.Latest = a.decided.End
		subReqs[i] = &pin
		subMap[i] = a.mapping
		force[i] = true
	}
	inst := &core.Instance{Sub: e.cfg.Sub, Reqs: subReqs, Horizon: e.cfg.Horizon}
	b := core.BuildCSigma(inst, core.BuildOptions{
		Objective:       core.AccessControl,
		FixedMapping:    subMap,
		CutMode:         e.cfg.CutMode,
		DisablePresolve: e.cfg.DisablePresolve,
		ForceAccept:     force,
	})
	sol, ms := b.Solve(ctx, &e.cfg.Solve)
	e.stats.TotalLPIters += ms.LPIterations
	e.stats.TotalNodes += ms.Nodes
	if sol == nil {
		return
	}
	if e.cfg.Certify {
		rep := certify.Solution(inst, sol, certify.Options{SkipObjective: true, Mapping: subMap})
		if !rep.OK() {
			return
		}
	}
	for i, a := range e.active {
		a.decided.Flows = sol.Flows[i]
	}
	e.stats.Reopts++
}

// Stats returns a snapshot of the aggregate statistics, with latency
// percentiles computed over all decisions so far.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	if len(e.latencies) > 0 {
		s.LatencyP50 = time.Duration(stats.Quantile(e.latencies, 0.50) * float64(time.Second))
		s.LatencyP99 = time.Duration(stats.Quantile(e.latencies, 0.99) * float64(time.Second))
	}
	return s
}

// Decisions returns a copy of every decision made so far, in arrival order.
func (e *Engine) Decisions() []Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Decision, len(e.log))
	for i, r := range e.log {
		out[i] = r.decided
	}
	return out
}

// Snapshot reconstructs the full instance seen so far and the engine's
// committed solution over it: accepted requests carry their committed
// schedules and embeddings, rejected requests the Definition-2.1 fixed
// times. The solution's objective is the access-control revenue of the
// accepted set, so the pair certifies directly with certify.Solution under
// core.AccessControl.
func (e *Engine) Snapshot() (*core.Instance, vnet.NodeMapping, *solution.Solution) {
	e.mu.Lock()
	defer e.mu.Unlock()
	k := len(e.log)
	inst := &core.Instance{Sub: e.cfg.Sub, Reqs: make([]*vnet.Request, k), Horizon: e.cfg.Horizon}
	mapping := make(vnet.NodeMapping, k)
	sol := &solution.Solution{
		Accepted: make([]bool, k),
		Start:    make([]float64, k),
		End:      make([]float64, k),
		Hosts:    make([][]int, k),
		Flows:    make([][][]float64, k),
		Optimal:  false,
	}
	for i, r := range e.log {
		cp := *r.req
		inst.Reqs[i] = &cp
		mapping[i] = r.mapping
		sol.Accepted[i] = r.decided.Accepted
		sol.Start[i] = r.decided.Start
		sol.End[i] = r.decided.End
		sol.Hosts[i] = r.decided.Hosts
		sol.Flows[i] = r.decided.Flows
		if r.decided.Accepted {
			sol.Objective += cp.Duration * cp.TotalNodeDemand()
		}
	}
	return inst, mapping, sol
}
