package admit

import (
	"math"
	"testing"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/model"
	"tvnep/internal/solution"
)

// TestRoundingTierEngages streams a trace through an engine with the
// rounding fast tier enabled: the tier must decide a positive share of the
// admissions, only ever as accepts, and the committed state must still
// pass the full independent certificate at the end of the trace.
func TestRoundingTierEngages(t *testing.T) {
	sc := trace(t, 40, 7)
	eng := replay(t, sc, Config{Rounding: true, Seed: 5, Certify: true})
	s := eng.Stats()
	if s.RoundingTier == 0 {
		t.Fatalf("rounding tier never engaged: %+v", s)
	}
	if s.CertFailures != 0 {
		t.Fatalf("%d certificate failures across the trace", s.CertFailures)
	}
	for _, d := range eng.Decisions() {
		if d.Stats.Tier == TierRounding && !d.Accepted {
			t.Fatalf("decision %d: rounding tier produced a rejection", d.Index)
		}
	}
	inst, mapping, sol := eng.Snapshot()
	rep := certify.Solution(inst, sol, certify.Options{Objective: core.AccessControl, Mapping: mapping})
	if err := rep.Err(); err != nil {
		t.Fatalf("snapshot does not certify: %v", err)
	}
	if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
		t.Fatalf("snapshot fails the feasibility checker: %v", err)
	}
	t.Logf("tiers precheck=%d lp=%d rounding=%d mip=%d, accepted %d/%d",
		s.PrecheckTier, s.LPTier, s.RoundingTier, s.MIPTier, s.Accepted, s.Decisions)
}

// TestRoundingTierDeterminism replays one trace with the rounding tier at
// several worker counts and twice at the same seed: the accept/reject
// sequence, the committed schedules (bit-for-bit) and the per-decision
// tiers must be identical — the tier's per-decision seeds derive only from
// Config.Seed and the decision index.
func TestRoundingTierDeterminism(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 15
	}
	sc := trace(t, n, 11)
	var base []Decision
	for _, run := range []struct {
		workers int
	}{{1}, {2}, {4}, {8}, {1}} { // final run repeats workers=1 at the same seed
		eng := replay(t, sc, Config{
			Rounding: true, Seed: 23,
			Solve: model.SolveOptions{Workers: run.workers},
		})
		ds := eng.Decisions()
		if base == nil {
			base = ds
			continue
		}
		if len(ds) != len(base) {
			t.Fatalf("workers=%d: %d decisions, want %d", run.workers, len(ds), len(base))
		}
		for i := range ds {
			if ds[i].Accepted != base[i].Accepted || ds[i].Stats.Tier != base[i].Stats.Tier {
				t.Fatalf("workers=%d: decision %d (accept=%v tier=%q) != base (accept=%v tier=%q)",
					run.workers, i, ds[i].Accepted, ds[i].Stats.Tier, base[i].Accepted, base[i].Stats.Tier)
			}
			if math.Float64bits(ds[i].Start) != math.Float64bits(base[i].Start) ||
				math.Float64bits(ds[i].End) != math.Float64bits(base[i].End) {
				t.Fatalf("workers=%d: decision %d schedule [%v,%v] != [%v,%v]",
					run.workers, i, ds[i].Start, ds[i].End, base[i].Start, base[i].End)
			}
		}
	}
}

// TestRoundingTierSeedSensitivity double-checks the seed is actually
// load-bearing: the engine must keep producing valid traces under a
// different seed (decisions may or may not coincide), and the committed
// snapshot must certify either way.
func TestRoundingTierSeedSensitivity(t *testing.T) {
	sc := trace(t, 20, 13)
	for _, seed := range []int64{1, 99} {
		eng := replay(t, sc, Config{Rounding: true, Seed: seed, Certify: true})
		inst, mapping, sol := eng.Snapshot()
		rep := certify.Solution(inst, sol, certify.Options{Objective: core.AccessControl, Mapping: mapping})
		if err := rep.Err(); err != nil {
			t.Fatalf("seed=%d: snapshot does not certify: %v", seed, err)
		}
	}
}
