// Package solution defines the output format of every TVNEP solver in this
// repository and an independent feasibility checker that verifies
// Definition 2.1 directly by an event sweep — deliberately written against
// the problem statement rather than any of the MIP formulations, so model
// bugs cannot hide from it.
package solution

import (
	"fmt"
	"math"
	"sort"
	"time"

	"tvnep/internal/numtol"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// Solution is a (candidate) solution to a TVNEP instance.
type Solution struct {
	// Accepted[r] reports whether request r is embedded (x_R).
	Accepted []bool
	// Start[r], End[r] are t⁺_R and t⁻_R. Definition 2.1 fixes them for
	// every request, accepted or not.
	Start, End []float64
	// Hosts[r][v] is the substrate node hosting virtual node v of request r
	// (meaningful when accepted).
	Hosts [][]int
	// Flows[r][lv][ls] is the fraction of virtual link lv of request r
	// routed over substrate link ls (splittable flows, x_E ∈ [0,1]).
	Flows [][][]float64

	// Solver metadata.
	Objective float64
	Bound     float64
	Gap       float64
	Optimal   bool
	Nodes     int
	Runtime   time.Duration

	// Warnings collects non-fatal consistency notes produced while the
	// solution was extracted from a solver (e.g. a model time variable
	// disagreeing with the duration-derived schedule beyond tolerance).
	Warnings []string
}

// NumAccepted counts embedded requests.
func (s *Solution) NumAccepted() int {
	n := 0
	for _, a := range s.Accepted {
		if a {
			n++
		}
	}
	return n
}

// Checker tolerances; see internal/numtol for what each one bounds.
const (
	timeTol = numtol.TimeTol
	capTol  = numtol.CapTol
	flowTol = numtol.FlowTol
)

// Check verifies the solution against Definition 2.1: temporal windows,
// durations, per-virtual-link unit flows, and node/link capacities at every
// point in time. It returns nil iff the solution is feasible.
func Check(sub *substrate.Network, reqs []*vnet.Request, sol *Solution) error {
	k := len(reqs)
	if len(sol.Accepted) != k || len(sol.Start) != k || len(sol.End) != k {
		return fmt.Errorf("solution: slice lengths do not match %d requests", k)
	}
	for r, req := range reqs {
		if err := checkTemporal(req, sol, r); err != nil {
			return err
		}
		if !sol.Accepted[r] {
			continue
		}
		if err := checkEmbedding(sub, req, sol, r); err != nil {
			return err
		}
	}
	return checkCapacities(sub, reqs, sol)
}

func checkTemporal(req *vnet.Request, sol *Solution, r int) error {
	st, en := sol.Start[r], sol.End[r]
	if math.Abs((en-st)-req.Duration) > timeTol {
		return fmt.Errorf("request %s: scheduled duration %v != d=%v", req.Name, en-st, req.Duration)
	}
	if st < req.Earliest-timeTol {
		return fmt.Errorf("request %s: starts at %v before earliest %v", req.Name, st, req.Earliest)
	}
	if en > req.Latest+timeTol {
		return fmt.Errorf("request %s: ends at %v after latest %v", req.Name, en, req.Latest)
	}
	return nil
}

func checkEmbedding(sub *substrate.Network, req *vnet.Request, sol *Solution, r int) error {
	if len(sol.Hosts) <= r || len(sol.Hosts[r]) != req.G.N {
		return fmt.Errorf("request %s: missing host assignment", req.Name)
	}
	for v, host := range sol.Hosts[r] {
		if host < 0 || host >= sub.NumNodes() {
			return fmt.Errorf("request %s: virtual node %d hosted on invalid node %d", req.Name, v, host)
		}
	}
	if len(sol.Flows) <= r || len(sol.Flows[r]) != req.G.NumEdges() {
		return fmt.Errorf("request %s: missing flow assignment", req.Name)
	}
	for lv := 0; lv < req.G.NumEdges(); lv++ {
		u, v := req.G.Edge(lv)
		flow := sol.Flows[r][lv]
		if len(flow) != sub.NumLinks() {
			return fmt.Errorf("request %s link %d: flow over %d links, substrate has %d", req.Name, lv, len(flow), sub.NumLinks())
		}
		src, dst := sol.Hosts[r][u], sol.Hosts[r][v]
		for ls, f := range flow {
			if f < -flowTol || f > 1+flowTol {
				return fmt.Errorf("request %s link %d: flow %v on substrate link %d outside [0,1]", req.Name, lv, f, ls)
			}
		}
		// Flow conservation: one unit from src to dst.
		for ns := 0; ns < sub.NumNodes(); ns++ {
			bal := 0.0
			for _, e := range sub.G.Out(ns) {
				bal += flow[e]
			}
			for _, e := range sub.G.In(ns) {
				bal -= flow[e]
			}
			want := 0.0
			if ns == src {
				want += 1
			}
			if ns == dst {
				want -= 1
			}
			if math.Abs(bal-want) > flowTol {
				return fmt.Errorf("request %s link %d: flow balance %v at substrate node %d, want %v",
					req.Name, lv, bal, ns, want)
			}
		}
	}
	return nil
}

// checkCapacities sweeps the intervals between consecutive event times and
// verifies the open-interval allocation condition of Definition 2.1.
func checkCapacities(sub *substrate.Network, reqs []*vnet.Request, sol *Solution) error {
	var events []float64
	for r := range reqs {
		if sol.Accepted[r] {
			events = append(events, sol.Start[r], sol.End[r])
		}
	}
	if len(events) == 0 {
		return nil
	}
	sort.Float64s(events)
	for i := 0; i+1 < len(events); i++ {
		if events[i+1]-events[i] < numtol.EventCoincide {
			continue
		}
		mid := (events[i] + events[i+1]) / 2
		if err := checkInstant(sub, reqs, sol, mid); err != nil {
			return err
		}
	}
	return nil
}

func checkInstant(sub *substrate.Network, reqs []*vnet.Request, sol *Solution, t float64) error {
	nodeLoad := make([]float64, sub.NumNodes())
	linkLoad := make([]float64, sub.NumLinks())
	for r, req := range reqs {
		if !sol.Accepted[r] || t <= sol.Start[r] || t >= sol.End[r] {
			continue
		}
		for v, host := range sol.Hosts[r] {
			nodeLoad[host] += req.NodeDemand[v]
		}
		for lv := 0; lv < req.G.NumEdges(); lv++ {
			demand := req.LinkDemand[lv]
			for ls, f := range sol.Flows[r][lv] {
				if f > flowTol {
					linkLoad[ls] += demand * f
				}
			}
		}
	}
	for ns, load := range nodeLoad {
		if load > sub.NodeCap[ns]+capTol {
			return fmt.Errorf("t=%v: substrate node %d loaded %v > capacity %v", t, ns, load, sub.NodeCap[ns])
		}
	}
	for ls, load := range linkLoad {
		if load > sub.LinkCap[ls]+capTol {
			return fmt.Errorf("t=%v: substrate link %d loaded %v > capacity %v", t, ls, load, sub.LinkCap[ls])
		}
	}
	return nil
}
