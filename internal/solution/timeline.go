package solution

import (
	"fmt"
	"io"
	"sort"

	"tvnep/internal/numtol"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// TimelineSegment describes substrate utilization during one interval in
// which allocations are constant.
type TimelineSegment struct {
	Start, End float64
	// NodeLoad[s] / LinkLoad[l] are absolute allocations.
	NodeLoad []float64
	LinkLoad []float64
	// Active lists the indices of requests running in the segment.
	Active []int
}

// PeakNodeUtil returns the maximum node utilization (load/capacity) of the
// segment, or 0 for an empty substrate.
func (seg *TimelineSegment) PeakNodeUtil(sub *substrate.Network) float64 {
	peak := 0.0
	for s, load := range seg.NodeLoad {
		if c := sub.NodeCap[s]; c > 0 {
			if u := load / c; u > peak {
				peak = u
			}
		}
	}
	return peak
}

// PeakLinkUtil returns the maximum link utilization of the segment.
func (seg *TimelineSegment) PeakLinkUtil(sub *substrate.Network) float64 {
	peak := 0.0
	for l, load := range seg.LinkLoad {
		if c := sub.LinkCap[l]; c > 0 {
			if u := load / c; u > peak {
				peak = u
			}
		}
	}
	return peak
}

// Timeline computes the piecewise-constant substrate utilization of a
// solution: one segment per interval between consecutive request start/end
// events (the same decomposition Definition 2.1's feasibility condition
// rests on). Only accepted requests contribute.
func Timeline(sub *substrate.Network, reqs []*vnet.Request, sol *Solution) []TimelineSegment {
	var events []float64
	for r := range reqs {
		if sol.Accepted[r] {
			events = append(events, sol.Start[r], sol.End[r])
		}
	}
	if len(events) == 0 {
		return nil
	}
	sort.Float64s(events)
	// Deduplicate.
	uniq := events[:1]
	for _, t := range events[1:] {
		if t-uniq[len(uniq)-1] > numtol.EventCoincide {
			uniq = append(uniq, t)
		}
	}
	var out []TimelineSegment
	for i := 0; i+1 < len(uniq); i++ {
		seg := TimelineSegment{
			Start:    uniq[i],
			End:      uniq[i+1],
			NodeLoad: make([]float64, sub.NumNodes()),
			LinkLoad: make([]float64, sub.NumLinks()),
		}
		mid := (seg.Start + seg.End) / 2
		for r, req := range reqs {
			if !sol.Accepted[r] || mid <= sol.Start[r] || mid >= sol.End[r] {
				continue
			}
			seg.Active = append(seg.Active, r)
			for v, host := range sol.Hosts[r] {
				seg.NodeLoad[host] += req.NodeDemand[v]
			}
			for lv := 0; lv < req.G.NumEdges(); lv++ {
				d := req.LinkDemand[lv]
				for ls, f := range sol.Flows[r][lv] {
					if f > numtol.FlowCutoff {
						seg.LinkLoad[ls] += d * f
					}
				}
			}
		}
		out = append(out, seg)
	}
	return out
}

// WriteTimeline renders the timeline as an aligned text table (one row per
// segment) — a quick way to eyeball a schedule.
func WriteTimeline(w io.Writer, sub *substrate.Network, reqs []*vnet.Request, sol *Solution) {
	segs := Timeline(sub, reqs, sol)
	fmt.Fprintf(w, "%10s %10s %8s %14s %14s  %s\n",
		"start", "end", "active", "peak node util", "peak link util", "requests")
	for _, seg := range segs {
		names := make([]string, 0, len(seg.Active))
		for _, r := range seg.Active {
			names = append(names, reqs[r].Name)
		}
		fmt.Fprintf(w, "%10.3f %10.3f %8d %13.1f%% %13.1f%%  %v\n",
			seg.Start, seg.End, len(seg.Active),
			100*seg.PeakNodeUtil(sub), 100*seg.PeakLinkUtil(sub), names)
	}
}
