package solution

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"tvnep/internal/graph"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

func timelineFixture() (*substrate.Network, []*vnet.Request, *Solution) {
	sub := substrate.Grid(1, 2, 2, 2)
	mk := func(name string, start, dur float64) (*vnet.Request, int) {
		return &vnet.Request{
			Name: name, G: graph.NewDigraph(1),
			NodeDemand: []float64{1}, LinkDemand: []float64{},
			Earliest: 0, Duration: dur, Latest: 100,
		}, 0
	}
	r1, _ := mk("a", 0, 4)
	r2, _ := mk("b", 2, 4)
	sol := &Solution{
		Accepted: []bool{true, true},
		Start:    []float64{0, 2},
		End:      []float64{4, 6},
		Hosts:    [][]int{{0}, {0}},
		Flows:    [][][]float64{{}, {}},
	}
	return sub, []*vnet.Request{r1, r2}, sol
}

func TestTimelineSegments(t *testing.T) {
	sub, reqs, sol := timelineFixture()
	segs := Timeline(sub, reqs, sol)
	// Events at 0, 2, 4, 6 → 3 segments.
	if len(segs) != 3 {
		t.Fatalf("%d segments, want 3", len(segs))
	}
	// Segment [2,4] has both requests on node 0 → load 2.
	mid := segs[1]
	if mid.Start != 2 || mid.End != 4 {
		t.Fatalf("middle segment [%v,%v]", mid.Start, mid.End)
	}
	if len(mid.Active) != 2 || mid.NodeLoad[0] != 2 {
		t.Fatalf("middle segment active=%v load=%v", mid.Active, mid.NodeLoad)
	}
	if u := mid.PeakNodeUtil(sub); math.Abs(u-1) > 1e-9 {
		t.Fatalf("peak util %v, want 1", u)
	}
	// Outer segments carry one request each.
	if len(segs[0].Active) != 1 || len(segs[2].Active) != 1 {
		t.Fatalf("outer segments: %v / %v", segs[0].Active, segs[2].Active)
	}
}

func TestTimelineEmptyAndRejected(t *testing.T) {
	sub, reqs, sol := timelineFixture()
	sol.Accepted = []bool{false, false}
	if segs := Timeline(sub, reqs, sol); segs != nil {
		t.Fatalf("timeline of empty schedule: %v", segs)
	}
}

func TestTimelineLinkLoads(t *testing.T) {
	sub := substrate.Grid(1, 2, 2, 2)
	g := graph.NewDigraph(2)
	g.AddEdge(0, 1)
	req := &vnet.Request{
		Name: "x", G: g,
		NodeDemand: []float64{1, 1}, LinkDemand: []float64{1.5},
		Earliest: 0, Duration: 2, Latest: 2,
	}
	var e01 int
	for e := 0; e < sub.NumLinks(); e++ {
		if u, v := sub.G.Edge(e); u == 0 && v == 1 {
			e01 = e
		}
	}
	flows := make([]float64, sub.NumLinks())
	flows[e01] = 1
	sol := &Solution{
		Accepted: []bool{true}, Start: []float64{0}, End: []float64{2},
		Hosts: [][]int{{0, 1}}, Flows: [][][]float64{{flows}},
	}
	segs := Timeline(sub, []*vnet.Request{req}, sol)
	if len(segs) != 1 {
		t.Fatalf("%d segments", len(segs))
	}
	if segs[0].LinkLoad[e01] != 1.5 {
		t.Fatalf("link load %v, want 1.5", segs[0].LinkLoad[e01])
	}
	if u := segs[0].PeakLinkUtil(sub); math.Abs(u-0.75) > 1e-9 {
		t.Fatalf("peak link util %v, want 0.75", u)
	}
}

func TestWriteTimeline(t *testing.T) {
	sub, reqs, sol := timelineFixture()
	var buf bytes.Buffer
	WriteTimeline(&buf, sub, reqs, sol)
	out := buf.String()
	if !strings.Contains(out, "peak node util") || !strings.Contains(out, "[a b]") {
		t.Fatalf("timeline output incomplete:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 { // header + 3 rows
		t.Fatalf("unexpected row count:\n%s", out)
	}
}
