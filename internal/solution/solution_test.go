package solution

import (
	"strings"
	"testing"

	"tvnep/internal/graph"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
)

// fixture: 1×2 substrate, one two-node request hosted on nodes 0 and 1 with
// a unit flow on the direct link.
func fixture() (*substrate.Network, []*vnet.Request, *Solution) {
	sub := substrate.Grid(1, 2, 2, 2)
	g := graph.NewDigraph(2)
	g.AddEdge(0, 1)
	req := &vnet.Request{
		Name: "a", G: g,
		NodeDemand: []float64{1, 1},
		LinkDemand: []float64{1},
		Earliest:   0, Duration: 2, Latest: 4,
	}
	// Find the substrate edge 0→1.
	var e01 int
	for e := 0; e < sub.NumLinks(); e++ {
		if u, v := sub.G.Edge(e); u == 0 && v == 1 {
			e01 = e
		}
	}
	flows := make([]float64, sub.NumLinks())
	flows[e01] = 1
	sol := &Solution{
		Accepted: []bool{true},
		Start:    []float64{0},
		End:      []float64{2},
		Hosts:    [][]int{{0, 1}},
		Flows:    [][][]float64{{flows}},
	}
	return sub, []*vnet.Request{req}, sol
}

func TestCheckAcceptsValid(t *testing.T) {
	sub, reqs, sol := fixture()
	if err := Check(sub, reqs, sol); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRejectsWrongDuration(t *testing.T) {
	sub, reqs, sol := fixture()
	sol.End[0] = 3
	if err := Check(sub, reqs, sol); err == nil || !strings.Contains(err.Error(), "duration") {
		t.Fatalf("err = %v, want duration violation", err)
	}
}

func TestCheckRejectsEarlyStart(t *testing.T) {
	sub, reqs, sol := fixture()
	reqs[0].Earliest = 1
	reqs[0].Latest = 5
	if err := Check(sub, reqs, sol); err == nil || !strings.Contains(err.Error(), "earliest") {
		t.Fatalf("err = %v, want earliest violation", err)
	}
}

func TestCheckRejectsLateEnd(t *testing.T) {
	sub, reqs, sol := fixture()
	reqs[0].Latest = 1.5
	reqs[0].Earliest = -0.5
	if err := Check(sub, reqs, sol); err == nil || !strings.Contains(err.Error(), "latest") {
		t.Fatalf("err = %v, want latest violation", err)
	}
}

func TestCheckRejectsBrokenFlow(t *testing.T) {
	sub, reqs, sol := fixture()
	for ls := range sol.Flows[0][0] {
		sol.Flows[0][0][ls] = 0 // no flow at all
	}
	if err := Check(sub, reqs, sol); err == nil || !strings.Contains(err.Error(), "balance") {
		t.Fatalf("err = %v, want flow balance violation", err)
	}
}

func TestCheckRejectsFlowOutOfRange(t *testing.T) {
	sub, reqs, sol := fixture()
	sol.Flows[0][0][0] = 1.5
	if err := Check(sub, reqs, sol); err == nil {
		t.Fatal("flow 1.5 accepted")
	}
}

func TestCheckRejectsNodeOverload(t *testing.T) {
	sub, reqs, sol := fixture()
	sub.NodeCap[0] = 0.5 // demand 1 on host 0
	if err := Check(sub, reqs, sol); err == nil || !strings.Contains(err.Error(), "node") {
		t.Fatalf("err = %v, want node overload", err)
	}
}

func TestCheckRejectsLinkOverload(t *testing.T) {
	sub, reqs, sol := fixture()
	for i := range sub.LinkCap {
		sub.LinkCap[i] = 0.5
	}
	if err := Check(sub, reqs, sol); err == nil || !strings.Contains(err.Error(), "link") {
		t.Fatalf("err = %v, want link overload", err)
	}
}

func TestCheckIgnoresRejectedRequests(t *testing.T) {
	sub, reqs, sol := fixture()
	sol.Accepted[0] = false
	sub.NodeCap[0] = 0 // would overload if accepted
	if err := Check(sub, reqs, sol); err != nil {
		t.Fatalf("rejected request still checked: %v", err)
	}
}

func TestCheckOpenIntervalBoundaries(t *testing.T) {
	// Two requests back to back on the same resources: end == start is
	// allowed by the open-interval condition of Definition 2.1.
	sub, reqs, sol := fixture()
	g := graph.NewDigraph(2)
	g.AddEdge(0, 1)
	req2 := &vnet.Request{
		Name: "b", G: g,
		NodeDemand: []float64{2, 2}, // full node capacity
		LinkDemand: []float64{2},    // full link capacity
		Earliest:   2, Duration: 2, Latest: 4,
	}
	reqs = append(reqs, req2)
	reqs[0].NodeDemand = []float64{2, 2}
	reqs[0].LinkDemand = []float64{2}
	flows2 := append([]float64(nil), sol.Flows[0][0]...)
	sol.Accepted = append(sol.Accepted, true)
	sol.Start = append(sol.Start, 2)
	sol.End = append(sol.End, 4)
	sol.Hosts = append(sol.Hosts, []int{0, 1})
	sol.Flows = append(sol.Flows, [][]float64{flows2})
	if err := Check(sub, reqs, sol); err != nil {
		t.Fatalf("back-to-back schedules rejected: %v", err)
	}
	// But actual overlap must fail.
	sol.Start[1] = 1.5
	sol.End[1] = 3.5
	if err := Check(sub, reqs, sol); err == nil {
		t.Fatal("overlapping full-capacity schedules accepted")
	}
}

func TestCheckColocatedVirtualNodes(t *testing.T) {
	// Both virtual nodes on the same host: zero flow is a valid embedding
	// of the virtual link.
	sub, reqs, sol := fixture()
	sol.Hosts[0] = []int{0, 0}
	for ls := range sol.Flows[0][0] {
		sol.Flows[0][0][ls] = 0
	}
	if err := Check(sub, reqs, sol); err != nil {
		t.Fatalf("colocated embedding rejected: %v", err)
	}
}

func TestCheckLengthMismatch(t *testing.T) {
	sub, reqs, sol := fixture()
	sol.Accepted = nil
	if err := Check(sub, reqs, sol); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestNumAccepted(t *testing.T) {
	s := &Solution{Accepted: []bool{true, false, true}}
	if s.NumAccepted() != 2 {
		t.Fatalf("NumAccepted = %d", s.NumAccepted())
	}
}

func TestCheckSplitFlow(t *testing.T) {
	// A request on a 2×2 grid with hosts at opposite corners and a 50/50
	// split over the two shortest paths.
	sub := substrate.Grid(2, 2, 2, 2)
	g := graph.NewDigraph(2)
	g.AddEdge(0, 1)
	req := &vnet.Request{
		Name: "a", G: g,
		NodeDemand: []float64{1, 1},
		LinkDemand: []float64{1},
		Earliest:   0, Duration: 1, Latest: 1,
	}
	// Hosts: substrate nodes 0 and 3 (corners). Paths 0→1→3 and 0→2→3.
	edge := func(u, v int) int {
		for e := 0; e < sub.NumLinks(); e++ {
			if a, b := sub.G.Edge(e); a == u && b == v {
				return e
			}
		}
		panic("edge not found")
	}
	flows := make([]float64, sub.NumLinks())
	flows[edge(0, 1)] = 0.5
	flows[edge(1, 3)] = 0.5
	flows[edge(0, 2)] = 0.5
	flows[edge(2, 3)] = 0.5
	sol := &Solution{
		Accepted: []bool{true},
		Start:    []float64{0},
		End:      []float64{1},
		Hosts:    [][]int{{0, 3}},
		Flows:    [][][]float64{{flows}},
	}
	if err := Check(sub, []*vnet.Request{req}, sol); err != nil {
		t.Fatalf("split flow rejected: %v", err)
	}
}
