package model

import (
	"time"

	"tvnep/internal/mip"
)

// Progress is a snapshot of a running solve, delivered to the callback
// installed with WithProgress. It aliases the branch-and-bound progress
// record: incumbent updates carry NewIncumbent == true, all other
// callbacks are periodic node-count ticks.
type Progress = mip.Progress

// ProgressFunc receives solve progress snapshots. Callbacks run
// synchronously on the solving goroutine; keep them cheap.
type ProgressFunc func(Progress)

// Cut is one valid inequality produced by a Separator; it aliases the
// branch-and-bound solver's cut record.
type Cut = mip.Cut

// Separator lazily generates valid inequalities from fractional relaxation
// points; register implementations with Model.RegisterSeparator. The
// interface (and its validity/determinism contract) is the branch-and-bound
// solver's.
type Separator = mip.Separator

// CutStats summarizes the lazy-separation work of one solve.
type CutStats = mip.CutStats

// Column is one lazily generated structural column produced by a Pricer; it
// aliases the branch-and-bound solver's column record.
type Column = mip.Column

// Pricer lazily generates improving columns from relaxation dual values;
// register implementations with Model.RegisterPricer. The interface (and its
// validity/determinism contract) is the branch-and-bound solver's.
type Pricer = mip.Pricer

// ColumnStats summarizes the column-generation work of one solve.
type ColumnStats = mip.ColumnStats

// SolveOptions is the single options struct for every solve in the
// repository: exact MIP solves (Model.Optimize, core.Built.Solve), the
// per-iteration subproblems of the greedy algorithm, the admission engine's
// per-decision solves, and the evaluation sweeps. The zero value means "no
// limits, serial, silent".
//
// Direct construction is an internal lowering target and deprecated for
// API consumers: configure solves through the pkg/tvnep facade's functional
// options (tvnep.WithTimeLimit, tvnep.WithWorkers, …), which lower into
// this struct in exactly one place.
type SolveOptions struct {
	// TimeLimit bounds one solve (0 → none). The greedy algorithm applies
	// it per iteration; sweeps apply it per scenario solve.
	TimeLimit time.Duration
	// NodeLimit bounds the branch-and-bound node count (0 → none).
	NodeLimit int
	// GapTol is the relative optimality gap at which the search stops
	// (default 1e-6).
	GapTol float64
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// HeuristicEvery runs the rounding heuristic at the root and at every
	// k-th node thereafter (0 → the default of 50; a negative value
	// disables the heuristic entirely, including at the root).
	HeuristicEvery int
	// Workers is the degree of parallelism. Sweep drivers (internal/eval)
	// use it as the number of scenarios solved concurrently, where 0 means
	// runtime.NumCPU(); a single solve hands it to the branch-and-bound
	// tree search as the number of node-relaxation workers, where 0 means
	// one worker. The parallel tree search is deterministic: its committed
	// result is bit-identical for every worker count. Sweeps keep their
	// inner solves single-worker, so the two uses never multiply.
	Workers int
	// Progress, when non-nil, receives per-solve progress snapshots
	// (incumbent updates, node counts, LP iteration totals).
	Progress ProgressFunc
	// ProgressEvery is the periodic progress interval in nodes (default
	// 100; < 0 keeps only incumbent callbacks).
	ProgressEvery int
	// Seed drives the explicitly seeded sampling of the randomized-rounding
	// tier (internal/round) and any future randomized component. The exact
	// branch-and-bound is deterministic by construction and ignores it.
	Seed int64
}

// SolveOption mutates a SolveOptions; see NewSolveOptions.
type SolveOption func(*SolveOptions)

// NewSolveOptions builds a SolveOptions from functional options:
//
//	opts := model.NewSolveOptions(
//		model.WithTimeLimit(time.Minute),
//		model.WithWorkers(8),
//	)
func NewSolveOptions(opts ...SolveOption) *SolveOptions {
	o := &SolveOptions{}
	for _, fn := range opts {
		fn(o)
	}
	return o
}

// WithTimeLimit bounds each solve by d.
func WithTimeLimit(d time.Duration) SolveOption {
	return func(o *SolveOptions) { o.TimeLimit = d }
}

// WithWorkers sets the degree of parallelism: scenarios solved concurrently
// in sweep drivers (0 → runtime.NumCPU()), branch-and-bound workers inside
// a single solve (0 → 1). See SolveOptions.Workers.
func WithWorkers(n int) SolveOption {
	return func(o *SolveOptions) { o.Workers = n }
}

// WithProgress installs a per-solve progress callback.
func WithProgress(fn ProgressFunc) SolveOption {
	return func(o *SolveOptions) { o.Progress = fn }
}

// WithSeed sets the seed for randomized components (the rounding tier);
// the deterministic exact solver ignores it.
func WithSeed(seed int64) SolveOption {
	return func(o *SolveOptions) { o.Seed = seed }
}

// mipOptions lowers the public options into the branch-and-bound solver's
// option set. Nil receivers lower to nil (solver defaults).
func (o *SolveOptions) mipOptions() *mip.Options {
	if o == nil {
		return nil
	}
	mo := &mip.Options{
		TimeLimit:      o.TimeLimit,
		NodeLimit:      o.NodeLimit,
		GapTol:         o.GapTol,
		IntTol:         o.IntTol,
		HeuristicEvery: o.HeuristicEvery,
		Workers:        o.Workers,
		ProgressEvery:  o.ProgressEvery,
	}
	if o.Progress != nil {
		mo.Progress = o.Progress
	}
	return mo
}
