package model

import (
	"time"

	"tvnep/internal/mip"
)

// Progress is a snapshot of a running solve, delivered to the callback
// installed with WithProgress. It aliases the branch-and-bound progress
// record: incumbent updates carry NewIncumbent == true, all other
// callbacks are periodic node-count ticks.
type Progress = mip.Progress

// ProgressFunc receives solve progress snapshots. Callbacks run
// synchronously on the solving goroutine; keep them cheap.
type ProgressFunc func(Progress)

// SolveOptions is the single options struct for every solve in the
// repository: exact MIP solves (Model.Optimize, core.Built.Solve), the
// per-iteration subproblems of the greedy algorithm, and the evaluation
// sweeps. The zero value means "no limits, serial, silent".
type SolveOptions struct {
	// TimeLimit bounds one solve (0 → none). The greedy algorithm applies
	// it per iteration; sweeps apply it per scenario solve.
	TimeLimit time.Duration
	// NodeLimit bounds the branch-and-bound node count (0 → none).
	NodeLimit int
	// GapTol is the relative optimality gap at which the search stops
	// (default 1e-6).
	GapTol float64
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// HeuristicEvery runs the rounding heuristic at every k-th node
	// (default 50; < 0 disables except at the root).
	HeuristicEvery int
	// Workers is the degree of parallelism for drivers that run many
	// independent solves (the eval sweeps). 0 means runtime.NumCPU(); a
	// single solve ignores it — the branch-and-bound search itself is
	// sequential.
	Workers int
	// Progress, when non-nil, receives per-solve progress snapshots
	// (incumbent updates, node counts, LP iteration totals).
	Progress ProgressFunc
	// ProgressEvery is the periodic progress interval in nodes (default
	// 100; < 0 keeps only incumbent callbacks).
	ProgressEvery int
}

// SolveOption mutates a SolveOptions; see NewSolveOptions.
type SolveOption func(*SolveOptions)

// NewSolveOptions builds a SolveOptions from functional options:
//
//	opts := model.NewSolveOptions(
//		model.WithTimeLimit(time.Minute),
//		model.WithWorkers(8),
//	)
func NewSolveOptions(opts ...SolveOption) *SolveOptions {
	o := &SolveOptions{}
	for _, fn := range opts {
		fn(o)
	}
	return o
}

// WithTimeLimit bounds each solve by d.
func WithTimeLimit(d time.Duration) SolveOption {
	return func(o *SolveOptions) { o.TimeLimit = d }
}

// WithWorkers sets the worker-pool size used by sweep drivers
// (0 → runtime.NumCPU()).
func WithWorkers(n int) SolveOption {
	return func(o *SolveOptions) { o.Workers = n }
}

// WithProgress installs a per-solve progress callback.
func WithProgress(fn ProgressFunc) SolveOption {
	return func(o *SolveOptions) { o.Progress = fn }
}

// WithNodeLimit bounds the branch-and-bound node count.
func WithNodeLimit(n int) SolveOption {
	return func(o *SolveOptions) { o.NodeLimit = n }
}

// WithGapTol sets the relative optimality gap tolerance.
func WithGapTol(tol float64) SolveOption {
	return func(o *SolveOptions) { o.GapTol = tol }
}

// mipOptions lowers the public options into the branch-and-bound solver's
// option set. Nil receivers lower to nil (solver defaults).
func (o *SolveOptions) mipOptions() *mip.Options {
	if o == nil {
		return nil
	}
	mo := &mip.Options{
		TimeLimit:      o.TimeLimit,
		NodeLimit:      o.NodeLimit,
		GapTol:         o.GapTol,
		IntTol:         o.IntTol,
		HeuristicEvery: o.HeuristicEvery,
		ProgressEvery:  o.ProgressEvery,
	}
	if o.Progress != nil {
		mo.Progress = o.Progress
	}
	return mo
}
