package model

import "tvnep/internal/mip"

// Status is the typed outcome of a model solve. It replaces raw solver
// status integers in all public signatures: callers compare against the
// exported constants instead of magic numbers.
type Status int

const (
	// StatusOptimal means the solution is proven optimal within tolerance.
	StatusOptimal Status = iota
	// StatusFeasible means a limit stopped the search after an integral
	// solution was found but before optimality was proven.
	StatusFeasible
	// StatusInfeasible means no feasible solution exists.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded over the feasible
	// set.
	StatusUnbounded
	// StatusTimeLimit means a time, node or iteration limit stopped the
	// search before any integral solution was found.
	StatusTimeLimit
	// StatusCancelled means the solve's context was cancelled before the
	// search concluded.
	StatusCancelled
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusTimeLimit:
		return "time-limit"
	case StatusCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Optimal reports whether the status certifies a proven optimum.
func (s Status) Optimal() bool { return s == StatusOptimal }

// HasSolution reports whether the status implies an incumbent solution
// exists (StatusOptimal and StatusFeasible; for the limit and cancelled
// statuses consult Solution.HasSolution).
func (s Status) HasSolution() bool { return s == StatusOptimal || s == StatusFeasible }

// statusFromMIP translates a branch-and-bound outcome into the public
// Status vocabulary.
func statusFromMIP(st mip.Status, hasSolution bool) Status {
	switch st {
	case mip.StatusOptimal:
		return StatusOptimal
	case mip.StatusInfeasible:
		return StatusInfeasible
	case mip.StatusUnbounded:
		return StatusUnbounded
	case mip.StatusCancelled:
		return StatusCancelled
	default: // mip.StatusLimit
		if hasSolution {
			return StatusFeasible
		}
		return StatusTimeLimit
	}
}
