// Package model provides a small algebraic modeling layer over the LP/MIP
// solvers (a deliberately minimal analogue of the Gurobi API the paper's
// formulations were originally written against): named variables, linear
// expressions, ranged constraints, and objective senses.
package model

import (
	"context"
	"fmt"
	"math"
	"time"

	"tvnep/internal/lp"
	"tvnep/internal/mip"
)

// Inf returns the +infinity bound value.
func Inf() float64 { return math.Inf(1) }

// Sense of the objective.
type Sense int

const (
	// Minimize the objective.
	Minimize Sense = iota
	// Maximize the objective.
	Maximize
)

// Var is a handle to a model variable.
type Var struct {
	idx int
	m   *Model
}

// Index returns the variable's column index.
func (v Var) Index() int { return v.idx }

// Name returns the variable's name.
func (v Var) Name() string { return v.m.lp.ColName[v.idx] }

// Valid reports whether the handle refers to a variable.
func (v Var) Valid() bool { return v.m != nil }

// LinExpr is a linear expression Σ coef_i·var_i + constant.
type LinExpr struct {
	vars  []int
	coefs []float64
	Const float64
}

// Expr creates an empty linear expression.
func Expr() *LinExpr { return &LinExpr{} }

// Term creates the expression coef·v.
func Term(coef float64, v Var) *LinExpr { return Expr().Add(coef, v) }

// Add appends coef·v to the expression and returns it for chaining.
func (e *LinExpr) Add(coef float64, v Var) *LinExpr {
	e.vars = append(e.vars, v.idx)
	e.coefs = append(e.coefs, coef)
	return e
}

// AddConst adds a constant and returns the expression for chaining.
func (e *LinExpr) AddConst(c float64) *LinExpr {
	e.Const += c
	return e
}

// AddExpr adds scale·other to the expression.
func (e *LinExpr) AddExpr(scale float64, other *LinExpr) *LinExpr {
	for k, vi := range other.vars {
		e.vars = append(e.vars, vi)
		e.coefs = append(e.coefs, scale*other.coefs[k])
	}
	e.Const += scale * other.Const
	return e
}

// Len returns the number of (unmerged) terms.
func (e *LinExpr) Len() int { return len(e.vars) }

// Model is an optimization model under construction.
type Model struct {
	Name    string
	lp      *lp.Problem
	integer []bool
	sense   Sense
	seps    []Separator
	prs     []Pricer
}

// New creates an empty model with the given objective sense.
func New(name string, sense Sense) *Model {
	m := &Model{Name: name, lp: lp.NewProblem(), sense: sense}
	if sense == Maximize {
		m.lp.Sense = lp.Maximize
	}
	return m
}

// LP exposes the underlying LP problem (shared storage; callers must treat
// it as read-only). It exists so external checks — presolve round-trip
// tests, feasibility audits — can inspect the exact rows the solver sees.
func (m *Model) LP() *lp.Problem { return m.lp }

// NumVars reports the number of variables.
func (m *Model) NumVars() int { return m.lp.NumCols() }

// NumConstrs reports the number of constraints.
func (m *Model) NumConstrs() int { return m.lp.NumRows() }

// NumIntVars reports the number of integer (incl. binary) variables.
func (m *Model) NumIntVars() int {
	c := 0
	for _, b := range m.integer {
		if b {
			c++
		}
	}
	return c
}

// Continuous adds a continuous variable with the given bounds and zero
// objective coefficient.
func (m *Model) Continuous(name string, lb, ub float64) Var {
	idx := m.lp.AddCol(0, lb, ub, name)
	m.integer = append(m.integer, false)
	return Var{idx: idx, m: m}
}

// Binary adds a {0,1} variable.
func (m *Model) Binary(name string) Var {
	idx := m.lp.AddCol(0, 0, 1, name)
	m.integer = append(m.integer, true)
	return Var{idx: idx, m: m}
}

// IntegerVar adds a general integer variable.
func (m *Model) IntegerVar(name string, lb, ub float64) Var {
	idx := m.lp.AddCol(0, lb, ub, name)
	m.integer = append(m.integer, true)
	return Var{idx: idx, m: m}
}

// SetBounds overrides a variable's bounds.
func (m *Model) SetBounds(v Var, lb, ub float64) {
	if lb > ub {
		panic(fmt.Sprintf("model: SetBounds(%s): lb %v > ub %v", v.Name(), lb, ub))
	}
	m.lp.ColLB[v.idx] = lb
	m.lp.ColUB[v.idx] = ub
}

// Fix pins a variable to a single value.
func (m *Model) Fix(v Var, val float64) { m.SetBounds(v, val, val) }

// Bounds returns a variable's bounds.
func (m *Model) Bounds(v Var) (lb, ub float64) { return m.lp.ColLB[v.idx], m.lp.ColUB[v.idx] }

// SetObjective replaces the whole objective with the expression.
func (m *Model) SetObjective(e *LinExpr) {
	for j := range m.lp.Obj {
		m.lp.Obj[j] = 0
	}
	for k, vi := range e.vars {
		m.lp.Obj[vi] += e.coefs[k]
	}
	m.lp.ObjOffset = e.Const
}

func (m *Model) rowFromExpr(e *LinExpr) ([]int32, []float64) {
	idx := make([]int32, len(e.vars))
	for k, vi := range e.vars {
		idx[k] = int32(vi)
	}
	return idx, e.coefs
}

// AddLE adds the constraint e ≤ rhs.
func (m *Model) AddLE(e *LinExpr, rhs float64, name string) int {
	idx, val := m.rowFromExpr(e)
	return m.lp.AddLE(idx, val, rhs-e.Const, name)
}

// AddGE adds the constraint e ≥ rhs.
func (m *Model) AddGE(e *LinExpr, rhs float64, name string) int {
	idx, val := m.rowFromExpr(e)
	return m.lp.AddGE(idx, val, rhs-e.Const, name)
}

// AddEQ adds the constraint e = rhs.
func (m *Model) AddEQ(e *LinExpr, rhs float64, name string) int {
	idx, val := m.rowFromExpr(e)
	return m.lp.AddEQ(idx, val, rhs-e.Const, name)
}

// AddRange adds lo ≤ e ≤ hi.
func (m *Model) AddRange(e *LinExpr, lo, hi float64, name string) int {
	idx, val := m.rowFromExpr(e)
	return m.lp.AddRow(idx, val, lo-e.Const, hi-e.Const, name)
}

// CutLE converts an expression into the ≤-cut record e ≤ rhs, the lazy
// counterpart of AddLE: instead of becoming a static row it can be returned
// from a Separator and appended only when violated.
func CutLE(e *LinExpr, rhs float64, name string) Cut {
	idx := make([]int32, len(e.vars))
	for k, vi := range e.vars {
		idx[k] = int32(vi)
	}
	return Cut{
		Idx: idx, Val: append([]float64(nil), e.coefs...),
		LB: math.Inf(-1), UB: rhs - e.Const, Name: name,
	}
}

// RegisterSeparator attaches a lazy-cut separator to the model: instead of
// emitting a constraint family as static rows, Optimize will call the
// separator on fractional relaxation points and append only the violated
// members. Separators must satisfy the validity and determinism contract
// documented on mip.Separator; registration order is significant (it is the
// order separators are consulted each round).
func (m *Model) RegisterSeparator(sep Separator) {
	m.seps = append(m.seps, sep)
}

// Separators returns the registered separators (shared slice; treat as
// read-only).
func (m *Model) Separators() []Separator { return m.seps }

// RegisterPricer attaches a column-generation pricer to the model: instead of
// emitting a variable family as static columns, Optimize will call the pricer
// on relaxation dual values and append only improving members. Pricers must
// satisfy the validity and determinism contract documented on mip.Pricer;
// registration order is significant (it is the order pricers are consulted
// each round).
func (m *Model) RegisterPricer(pr Pricer) {
	m.prs = append(m.prs, pr)
}

// Pricers returns the registered pricers (shared slice; treat as read-only).
func (m *Model) Pricers() []Pricer { return m.prs }

// BumpObjective adds delta to a variable's objective coefficient without
// replacing the rest of the objective. It exists for penalty terms attached
// after SetObjective has installed the real objective (e.g. the path-flow
// artificials' big-M penalties in internal/core).
func (m *Model) BumpObjective(v Var, delta float64) {
	m.lp.Obj[v.idx] += delta
}

// AbsObjSum returns Σ_j |obj_j|, the scale from which big-M penalty weights
// that must dominate the whole objective can be derived.
func (m *Model) AbsObjSum() float64 {
	s := 0.0
	for _, c := range m.lp.Obj {
		s += math.Abs(c)
	}
	return s
}

// Solution is the result of optimizing a model.
type Solution struct {
	Status       Status
	HasSolution  bool
	Obj          float64
	Bound        float64
	Gap          float64
	Nodes        int
	LPIterations int
	// BoundFlips and RatioPasses summarize the LP solver's long-step dual
	// ratio-test activity over the committed search (deterministic, like
	// LPIterations).
	BoundFlips  int
	RatioPasses int
	Runtime     time.Duration
	// Cuts summarizes lazy separation (zero apart from RowsAtRoot when no
	// separators were registered).
	Cuts CutStats
	// AppliedCuts lists every cut row the search appended, in order, for
	// independent re-validation (internal/certify).
	AppliedCuts []Cut
	// Columns summarizes column generation (zero apart from ColsAtRoot when
	// no pricers were registered).
	Columns ColumnStats
	// AppliedColumns lists every column pricing appended, in order: the k-th
	// entry is raw LP column Columns.ColsAtRoot + k. Extractors use it to
	// map incumbent values back to pricer payloads (Column.Tag).
	AppliedColumns []Column
	x              []float64
}

// Value returns the solution value of v (NaN when no solution exists).
func (s *Solution) Value(v Var) float64 {
	if !s.HasSolution || v.idx >= len(s.x) {
		return math.NaN()
	}
	return s.x[v.idx]
}

// X returns the raw column assignment (shared slice; treat as read-only),
// nil when no solution exists. It exists for callers that evaluate rows
// produced outside the model layer — applied cut records carry raw column
// indices, and internal/certify re-checks them against the incumbent.
func (s *Solution) X() []float64 {
	if !s.HasSolution {
		return nil
	}
	return s.x
}

// ValueOf returns the solution value of an expression.
func (s *Solution) ValueOf(e *LinExpr) float64 {
	val := e.Const
	for k, vi := range e.vars {
		val += e.coefs[k] * s.x[vi]
	}
	return val
}

// Optimize solves the model as a MIP. Cancelling ctx stops the search
// cooperatively (Status == StatusCancelled); a nil ctx is treated as
// context.Background(). A nil opts solves with the solver defaults.
func (m *Model) Optimize(ctx context.Context, opts *SolveOptions) *Solution {
	mp := mip.NewProblem(m.lp)
	for j, isInt := range m.integer {
		if isInt {
			mp.SetInteger(j)
		}
	}
	mo := opts.mipOptions()
	if len(m.seps) > 0 {
		if mo == nil {
			mo = &mip.Options{}
		}
		mo.Separators = m.seps
	}
	if len(m.prs) > 0 {
		if mo == nil {
			mo = &mip.Options{}
		}
		mo.Pricers = m.prs
	}
	res := mip.Solve(ctx, mp, mo)
	return &Solution{
		Status:         statusFromMIP(res.Status, res.HasSolution),
		HasSolution:    res.HasSolution,
		Obj:            res.Obj,
		Bound:          res.Bound,
		Gap:            res.Gap,
		Nodes:          res.Nodes,
		LPIterations:   res.LPIterations,
		BoundFlips:     res.BoundFlips,
		RatioPasses:    res.RatioPasses,
		Runtime:        res.Runtime,
		Cuts:           res.Cuts,
		AppliedCuts:    res.AppliedCuts,
		Columns:        res.Columns,
		AppliedColumns: res.AppliedColumns,
		x:              res.X,
	}
}

// IsInteger reports whether v is an integer (incl. binary) variable.
func (m *Model) IsInteger(v Var) bool { return m.integer[v.idx] }

// IntegerMask returns the per-column integrality markers (shared slice;
// treat as read-only). Index it with Var.Index. It exists for callers that
// drive the raw LP of the model themselves — the admission engine's LP fast
// tier checks the root relaxation for integrality before deciding whether a
// branch-and-bound search is needed at all.
func (m *Model) IntegerMask() []bool { return m.integer }

// SolutionFromLP wraps a raw LP result over this model's columns into a
// Solution, so callers that solve the model's LP() through their own
// lp.Instance (to keep the basis and LU factors for warm restarts) can
// reuse the variable-indexed accessors and extractors. The LP bound is only
// a bound on the MIP; HasSolution is set for an optimal LP result whether
// or not it is integral — use IntegerMask to decide that.
func (m *Model) SolutionFromLP(res lp.Result) *Solution {
	sol := &Solution{LPIterations: res.Iterations, BoundFlips: res.BoundFlips, RatioPasses: res.RatioPasses}
	switch res.Status {
	case lp.StatusOptimal:
		sol.Status = StatusOptimal
		sol.HasSolution = true
		sol.Obj = res.Obj
		sol.Bound = res.Obj
		sol.x = res.X
	case lp.StatusInfeasible:
		sol.Status = StatusInfeasible
		sol.Gap = math.Inf(1)
	case lp.StatusUnbounded:
		sol.Status = StatusUnbounded
		sol.Gap = math.Inf(1)
	default:
		sol.Status = StatusTimeLimit
		sol.Gap = math.Inf(1)
	}
	return sol
}

// Relax solves the LP relaxation (integrality dropped).
func (m *Model) Relax() *Solution {
	return m.SolutionFromLP(lp.Solve(m.lp, nil))
}
