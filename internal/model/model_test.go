package model

import (
	"context"
	"math"
	"testing"
)

func TestBasicMaximize(t *testing.T) {
	m := New("knap", Maximize)
	a := m.Binary("a")
	b := m.Binary("b")
	c := m.Binary("c")
	m.SetObjective(Expr().Add(10, a).Add(13, b).Add(7, c))
	m.AddLE(Expr().Add(3, a).Add(4, b).Add(2, c), 6, "cap")
	sol := m.Optimize(context.Background(), nil)
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-20) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 20", sol.Status, sol.Obj)
	}
	if sol.Value(b) != 1 || sol.Value(c) != 1 || sol.Value(a) != 0 {
		t.Fatalf("values a=%v b=%v c=%v", sol.Value(a), sol.Value(b), sol.Value(c))
	}
}

func TestExprConstantsShiftRHS(t *testing.T) {
	// x + 5 ≤ 7 → x ≤ 2; min −x → x = 2.
	m := New("const", Minimize)
	x := m.Continuous("x", 0, 10)
	m.SetObjective(Term(-1, x))
	m.AddLE(Expr().Add(1, x).AddConst(5), 7, "r")
	sol := m.Optimize(context.Background(), nil)
	if math.Abs(sol.Value(x)-2) > 1e-7 {
		t.Fatalf("x = %v, want 2", sol.Value(x))
	}
}

func TestObjectiveConstant(t *testing.T) {
	m := New("offset", Minimize)
	x := m.Continuous("x", 1, 5)
	m.SetObjective(Expr().Add(2, x).AddConst(100))
	sol := m.Optimize(context.Background(), nil)
	if math.Abs(sol.Obj-102) > 1e-7 {
		t.Fatalf("obj = %v, want 102", sol.Obj)
	}
}

func TestAddExprAndValueOf(t *testing.T) {
	m := New("expr", Maximize)
	x := m.Continuous("x", 0, 3)
	y := m.Continuous("y", 0, 3)
	e1 := Expr().Add(1, x).Add(1, y)
	e2 := Expr().AddExpr(2, e1).AddConst(1) // 2x + 2y + 1
	m.SetObjective(e2)
	sol := m.Optimize(context.Background(), nil)
	if math.Abs(sol.Obj-13) > 1e-7 {
		t.Fatalf("obj = %v, want 13", sol.Obj)
	}
	if math.Abs(sol.ValueOf(e1)-6) > 1e-7 {
		t.Fatalf("ValueOf(e1) = %v, want 6", sol.ValueOf(e1))
	}
}

func TestFixAndBounds(t *testing.T) {
	m := New("fix", Maximize)
	x := m.Binary("x")
	y := m.Binary("y")
	m.SetObjective(Expr().Add(1, x).Add(1, y))
	m.Fix(x, 0)
	sol := m.Optimize(context.Background(), nil)
	if sol.Value(x) != 0 || sol.Value(y) != 1 {
		t.Fatalf("x=%v y=%v, want 0, 1", sol.Value(x), sol.Value(y))
	}
	lb, ub := m.Bounds(x)
	if lb != 0 || ub != 0 {
		t.Fatalf("Bounds(x) = %v, %v", lb, ub)
	}
}

func TestIntegerVar(t *testing.T) {
	m := New("int", Maximize)
	x := m.IntegerVar("x", 0, 9)
	m.SetObjective(Term(1, x))
	m.AddLE(Term(2, x), 7, "r") // x ≤ 3.5 → 3
	sol := m.Optimize(context.Background(), nil)
	if math.Abs(sol.Value(x)-3) > 1e-7 {
		t.Fatalf("x = %v, want 3", sol.Value(x))
	}
}

func TestRelaxDropsIntegrality(t *testing.T) {
	m := New("relax", Maximize)
	x := m.IntegerVar("x", 0, 9)
	m.SetObjective(Term(1, x))
	m.AddLE(Term(2, x), 7, "r")
	sol := m.Relax()
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-3.5) > 1e-7 {
		t.Fatalf("relax obj = %v (status %v), want 3.5", sol.Obj, sol.Status)
	}
}

func TestRelaxInfeasible(t *testing.T) {
	m := New("inf", Minimize)
	x := m.Continuous("x", 0, 1)
	m.AddGE(Term(1, x), 5, "r")
	sol := m.Relax()
	if sol.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
	if !math.IsNaN(sol.Value(x)) {
		t.Fatalf("Value on infeasible = %v, want NaN", sol.Value(x))
	}
}

func TestAddRange(t *testing.T) {
	m := New("range", Maximize)
	x := m.Continuous("x", 0, 10)
	m.SetObjective(Term(1, x))
	m.AddRange(Expr().Add(1, x).AddConst(1), 2, 6, "rng") // 1 ≤ x ≤ 5
	sol := m.Optimize(context.Background(), nil)
	if math.Abs(sol.Value(x)-5) > 1e-7 {
		t.Fatalf("x = %v, want 5", sol.Value(x))
	}
}

func TestCounts(t *testing.T) {
	m := New("counts", Minimize)
	m.Binary("a")
	m.Continuous("b", 0, 1)
	m.IntegerVar("c", 0, 5)
	m.AddLE(Expr(), 1, "empty")
	if m.NumVars() != 3 || m.NumIntVars() != 2 || m.NumConstrs() != 1 {
		t.Fatalf("counts: vars %d ints %d constrs %d", m.NumVars(), m.NumIntVars(), m.NumConstrs())
	}
}

func TestVarIdentity(t *testing.T) {
	m := New("id", Minimize)
	v := m.Continuous("hello", 0, 1)
	if v.Name() != "hello" || v.Index() != 0 || !v.Valid() {
		t.Fatalf("Var identity broken: %q %d %v", v.Name(), v.Index(), v.Valid())
	}
	var zero Var
	if zero.Valid() {
		t.Fatal("zero Var should be invalid")
	}
}
