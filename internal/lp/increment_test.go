package lp

import (
	"math"
	"math/rand"
	"testing"
)

// appendRandomRows draws extra rows that keep xstar feasible (so appending
// them never empties the feasible region) and returns them.
func appendRandomRows(rng *rand.Rand, n, count int, xstar []float64) (idxs [][]int32, vals [][]float64, lbs, ubs []float64) {
	for i := 0; i < count; i++ {
		var idx []int32
		var val []float64
		act := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				v := rng.NormFloat64()
				idx = append(idx, int32(j))
				val = append(val, v)
				act += v * xstar[j]
			}
		}
		if len(idx) == 0 {
			idx = append(idx, 0)
			val = append(val, 1)
			act = xstar[0]
		}
		lo, hi := math.Inf(-1), act+rng.Float64()*0.5
		if rng.Intn(3) == 0 {
			lo = act - rng.Float64()*0.5
		}
		idxs = append(idxs, idx)
		vals = append(vals, val)
		lbs = append(lbs, lo)
		ubs = append(ubs, hi)
	}
	return
}

// TestAppendRowHotRestart is the core cutting-plane kernel test: solve, append
// rows, hot-restart from the old basis + factors, and require the same
// optimum as a cold solve of the full problem.
func TestAppendRowHotRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(15)
		m := 1 + rng.Intn(15)
		p, xstar := buildRandomLP(rng, n, m)
		m = p.NumRows() // empty candidate rows are skipped by the builder
		inst := NewInstance(p)
		res := inst.Solve(&Options{CaptureFactors: true})
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: base status %v", trial, res.Status)
		}

		count := 1 + rng.Intn(4)
		idxs, vals, lbs, ubs := appendRandomRows(rng, n, count, xstar)
		full := NewProblem()
		full.Sense = p.Sense
		for j := 0; j < n; j++ {
			full.AddCol(p.Obj[j], p.ColLB[j], p.ColUB[j], "")
		}
		for i := 0; i < p.NumRows(); i++ {
			ri, rv := p.Row(i)
			full.AddRow(ri, rv, p.RowLB[i], p.RowUB[i], "")
		}
		for i := range idxs {
			if got := inst.AppendRow(idxs[i], vals[i], lbs[i], ubs[i]); got != m+i {
				t.Fatalf("trial %d: AppendRow index %d, want %d", trial, got, m+i)
			}
			full.AddRow(idxs[i], vals[i], lbs[i], ubs[i], "")
		}
		if inst.NumRows() != m+count || inst.NumAppendedRows() != count {
			t.Fatalf("trial %d: row accounting off: %d/%d", trial, inst.NumRows(), inst.NumAppendedRows())
		}

		ext0 := DebugBasisExtensions.Load()
		warm := inst.Solve(&Options{WarmBasis: res.Basis, WarmFactors: res.Factors, CaptureFactors: true})
		cold := Solve(full, nil)
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status != StatusOptimal {
			continue // xstar keeps it feasible; only numeric statuses could differ
		}
		if d := math.Abs(warm.Obj - cold.Obj); d > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Fatalf("trial %d: warm obj %v, cold obj %v (diff %v)", trial, warm.Obj, cold.Obj, d)
		}
		checkFeasible(t, full, warm.X, 1e-6)
		if DebugBasisExtensions.Load() == ext0 {
			t.Fatalf("trial %d: hot restart did not use the bordered factor extension", trial)
		}

		// A second round on top of the first must chain (basis and factors
		// now include the first batch of appended rows).
		idxs2, vals2, lbs2, ubs2 := appendRandomRows(rng, n, 1, xstar)
		inst.AppendRow(idxs2[0], vals2[0], lbs2[0], ubs2[0])
		full.AddRow(idxs2[0], vals2[0], lbs2[0], ubs2[0], "")
		warm2 := inst.Solve(&Options{WarmBasis: warm.Basis, WarmFactors: warm.Factors})
		cold2 := Solve(full, nil)
		if warm2.Status != cold2.Status {
			t.Fatalf("trial %d: round-2 warm status %v, cold %v", trial, warm2.Status, cold2.Status)
		}
		if warm2.Status == StatusOptimal {
			if d := math.Abs(warm2.Obj - cold2.Obj); d > 1e-6*(1+math.Abs(cold2.Obj)) {
				t.Fatalf("trial %d: round-2 warm obj %v, cold obj %v", trial, warm2.Obj, cold2.Obj)
			}
		}
	}
}

func TestAppendRowRedundantCutIsFree(t *testing.T) {
	// A row the optimum already satisfies must hot-restart in zero pivots.
	p := NewProblem()
	x := p.AddCol(-1, 0, 10, "x")
	y := p.AddCol(-1, 0, 10, "y")
	p.AddLE([]int32{int32(x), int32(y)}, []float64{1, 1}, 12, "")
	inst := NewInstance(p)
	res := inst.Solve(&Options{CaptureFactors: true})
	if res.Status != StatusOptimal || math.Abs(res.Obj+12) > 1e-9 {
		t.Fatalf("base solve: %v obj %v", res.Status, res.Obj)
	}
	inst.AppendRow([]int32{int32(x)}, []float64{1}, math.Inf(-1), 11) // slack at optimum
	warm := inst.Solve(&Options{WarmBasis: res.Basis, WarmFactors: res.Factors})
	if warm.Status != StatusOptimal || math.Abs(warm.Obj+12) > 1e-9 {
		t.Fatalf("warm after redundant row: %v obj %v", warm.Status, warm.Obj)
	}
	// The dual loop burns one iteration certifying feasibility (recompute
	// x_B once), but performs no pivot.
	if warm.Iterations > 1 {
		t.Fatalf("redundant cut cost %d iterations, want ≤ 1", warm.Iterations)
	}
}

func TestAppendRowCutsOptimum(t *testing.T) {
	// max x+y st x+y ≤ 12 → obj 12 at a vertex; the cut x ≤ 3 moves it.
	p := NewProblem()
	p.Sense = Maximize
	x := p.AddCol(2, 0, 10, "x")
	y := p.AddCol(1, 0, 10, "y")
	p.AddLE([]int32{int32(x), int32(y)}, []float64{1, 1}, 12, "")
	inst := NewInstance(p)
	res := inst.Solve(&Options{CaptureFactors: true})
	if res.Status != StatusOptimal || math.Abs(res.Obj-22) > 1e-9 { // x=10, y=2
		t.Fatalf("base solve: %v obj %v", res.Status, res.Obj)
	}
	inst.AppendRow([]int32{int32(x)}, []float64{1}, math.Inf(-1), 3)
	warm := inst.Solve(&Options{WarmBasis: res.Basis, WarmFactors: res.Factors})
	if warm.Status != StatusOptimal || math.Abs(warm.Obj-15) > 1e-9 { // x=3, y=9
		t.Fatalf("warm after cut: %v obj %v, want 15", warm.Status, warm.Obj)
	}
	if warm.X[x] > 3+1e-9 {
		t.Fatalf("cut violated: x = %v", warm.X[x])
	}
}

func TestAppendRowInfeasibleCut(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(1, 0, 5, "x")
	inst := NewInstance(p)
	res := inst.Solve(&Options{CaptureFactors: true})
	if res.Status != StatusOptimal {
		t.Fatalf("base: %v", res.Status)
	}
	inst.AppendRow([]int32{int32(x)}, []float64{1}, 7, 9) // x ≥ 7 contradicts x ≤ 5
	warm := inst.Solve(&Options{WarmBasis: res.Basis, WarmFactors: res.Factors})
	if warm.Status != StatusInfeasible {
		t.Fatalf("warm after contradictory row: %v, want infeasible", warm.Status)
	}
}

func TestAppendRowCloneIsolation(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(-1, 0, 10, "x")
	p.AddLE([]int32{int32(x)}, []float64{1}, 8, "")
	parent := NewInstance(p)
	before := parent.Clone() // cloned before the append: must not see the row
	parent.AppendRow([]int32{int32(x)}, []float64{1}, math.Inf(-1), 4)
	after := parent.Clone() // cloned after: must see it

	if got := before.NumRows(); got != 1 {
		t.Fatalf("pre-append clone has %d rows, want 1", got)
	}
	if got := after.NumRows(); got != 2 {
		t.Fatalf("post-append clone has %d rows, want 2", got)
	}
	rb := before.Solve(&Options{})
	rp := parent.Solve(&Options{})
	ra := after.Solve(&Options{})
	if math.Abs(rb.Obj+8) > 1e-9 {
		t.Fatalf("pre-append clone obj %v, want -8", rb.Obj)
	}
	if math.Abs(rp.Obj+4) > 1e-9 || math.Abs(ra.Obj+4) > 1e-9 {
		t.Fatalf("parent/post-append objs %v/%v, want -4", rp.Obj, ra.Obj)
	}
	// Appending different rows to two clones must stay independent.
	c1, c2 := before.Clone(), before.Clone()
	c1.AppendRow([]int32{int32(x)}, []float64{1}, math.Inf(-1), 2)
	c2.AppendRow([]int32{int32(x)}, []float64{1}, math.Inf(-1), 6)
	r1 := c1.Solve(&Options{})
	r2 := c2.Solve(&Options{})
	if math.Abs(r1.Obj+2) > 1e-9 || math.Abs(r2.Obj+6) > 1e-9 {
		t.Fatalf("sibling clone objs %v/%v, want -2/-6", r1.Obj, r2.Obj)
	}
}

func TestAppendRowMergesDuplicates(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(-1, 0, 10, "x")
	p.AddLE([]int32{int32(x)}, []float64{1}, 8, "")
	inst := NewInstance(p)
	r := inst.AppendRow([]int32{int32(x), int32(x), int32(x)}, []float64{2, -1, 1}, math.Inf(-1), 6)
	idx, val := inst.rowData(r)
	if len(idx) != 1 || idx[0] != int32(x) || val[0] != 2 {
		t.Fatalf("merged row = %v %v, want [0] [2]", idx, val)
	}
	res := inst.Solve(&Options{})
	if math.Abs(res.Obj+3) > 1e-9 { // 2x ≤ 6
		t.Fatalf("obj %v, want -3", res.Obj)
	}
	if lb, ub := inst.RowBounds(r); !math.IsInf(lb, -1) || ub != 6 {
		t.Fatalf("RowBounds = [%v, %v]", lb, ub)
	}
}
