package lp

import "math"

// dual runs dual simplex iterations from a (dual-feasible) basis until
// primal feasibility is restored, primal infeasibility is proven, or the
// iteration budget is exhausted. The MIP solver uses this to re-solve after
// branching tightens variable bounds. Reduced costs are maintained
// incrementally (see reduced.go); each iteration costs O(m + nnz).
//
// The ratio test is the long-step (bound-flipping) variant: instead of
// stopping at the first breakpoint, the test walks breakpoints in ratio
// order and flips boundedly-finite nonbasic variables across to their
// opposite bounds for as long as the leaving row's violation stays positive,
// entering only the breakpoint where it would change sign. One iteration
// can thus absorb many would-be degenerate pivots; the flipped variables'
// reduced costs are unchanged (a bound flip moves no dual), so dual
// feasibility is preserved by construction. Under Bland's rule the classic
// single-breakpoint test is kept verbatim for the anti-cycling guarantee.
//
//hot:path
func (s *solver) dual(maxIters int) iterStatus {
	feas := s.opts.FeasTol
	for ; s.iters < maxIters; s.iters++ {
		if s.iters&63 == 0 && s.interrupted() {
			return iterLimit
		}
		if !s.dValid {
			s.recomputeReducedCosts()
		}
		// Select the leaving row among primal-infeasible basic variables:
		// dual steepest-edge (infeasibility²/β_i) normally; raw
		// most-infeasible under Bland's rule to keep the anti-cycling
		// behavior unchanged.
		r, bestScore, viol := -1, 0.0, 0.0
		below := false
		for i := 0; i < s.m; i++ {
			j := s.basis[i]
			v, isBelow := s.lb[j]-s.xB[i], true
			if v2 := s.xB[i] - s.ub[j]; v2 > v {
				v, isBelow = v2, false
			}
			if v <= feas {
				continue
			}
			score := v
			if !s.bland {
				score = v * v / s.dualW[i]
			}
			if score > bestScore {
				r, bestScore, viol, below = i, score, v, isBelow
			}
		}
		if r == -1 {
			// Certify: basic values may have drifted through incremental
			// updates; recompute them once before declaring feasibility.
			if s.xbFresh {
				return iterOptimal
			}
			s.computeXB()
			s.xbFresh = true
			continue
		}
		// Tableau row r over the nonbasic columns (fills s.arow over the
		// hyper-sparse stack s.arowNZ, and s.rho for the DSE update).
		s.pivotRow(r)

		var q int
		if s.bland {
			q = s.ratioTestBland(below)
		} else {
			q = s.ratioTestLongStep(below, viol)
		}
		if q == -1 {
			// The violated row cannot be repaired: primal infeasible —
			// but only if the violation is real and not drift; certify
			// with freshly recomputed basic values and basis inverse.
			if s.xbFresh && s.sincefac == 0 {
				return iterInfeasible
			}
			if err := s.refactor(); err != nil { //lint:allow hotalloc -- periodic refactorization is the amortized cold path
				return iterNumeric
			}
			s.computeXB()
			s.xbFresh = true
			s.dValid = false
			continue
		}
		// Apply the accumulated bound flips before the pivot: one combined
		// FTRAN updates the basic values for all flipped columns at once.
		s.applyBoundFlips()
		s.ftran(q, s.alpha)
		if math.Abs(s.alpha[r]) <= pivTol {
			// Numerical disagreement between the row and column view;
			// refactorize and retry once, otherwise give up. (Any bound
			// flips taken above remain valid: computeXB rebuilds the basic
			// values from the flipped statuses.)
			if err := s.refactor(); err != nil { //lint:allow hotalloc -- periodic refactorization is the amortized cold path
				return iterNumeric
			}
			s.computeXB()
			s.dValid = false
			s.ftran(q, s.alpha)
			if math.Abs(s.alpha[r]) <= pivTol {
				return iterNumeric
			}
			s.recomputeReducedCosts()
			s.pivotRow(r)
		}
		// Move x_q so that x_B(r) lands exactly on its violated bound.
		leavingCol := int(s.basis[r])
		target := s.lb[leavingCol]
		leaveStat := vsLower
		if !below {
			target = s.ub[leavingCol]
			leaveStat = vsUpper
		}
		s.dseUpdate(s.alpha, r)
		s.applyPivotToReducedCosts(q, leavingCol)
		deltaQ := (s.xB[r] - target) / s.alpha[r]
		enterVal := s.colValue(q) + deltaQ
		for i := 0; i < s.m; i++ {
			s.xB[i] -= deltaQ * s.alpha[i]
		}
		s.pivot(q, r, s.alpha, enterVal, leaveStat)
		s.noteProgress(math.Abs(deltaQ))
	}
	return iterLimit
}

// dualEligible reports whether nonbasic column j (tableau coefficient a) may
// enter for a leaving row violated below (true) or above (false): moving x_j
// off its bound must push x_B(r) toward the violated bound, and
// Δx_B(r) = −a·Δx_j.
func (s *solver) dualEligible(j int, a float64, below bool) bool {
	switch s.vstat[j] {
	case vsLower: // Δx_j ≥ 0
		return (below && a < 0) || (!below && a > 0)
	case vsUpper: // Δx_j ≤ 0
		return (below && a > 0) || (!below && a < 0)
	case vsFree:
		return true
	}
	return false
}

// ratioTestBland is the classic single-breakpoint dual ratio test under
// Bland's rule: minimum ratio, ties broken by lowest column index. It scans
// the hyper-sparse stack (sorted ascending, so identical to the historical
// full scan restricted to the row's support). No bound flips are taken.
func (s *solver) ratioTestBland(below bool) int {
	s.flips = s.flips[:0]
	q, bestRatio := -1, math.Inf(1)
	for _, j32 := range s.arowNZ {
		j := int(j32)
		if s.vstat[j] == vsBasic || s.fixedCol(j) {
			continue
		}
		a := s.arow[j]
		if math.Abs(a) <= pivTol || !s.dualEligible(j, a, below) {
			continue
		}
		ratio := math.Abs(s.d[j]) / math.Abs(a)
		if q == -1 || ratio < bestRatio-blandTieTol || (ratio <= bestRatio+blandTieTol && j < q) {
			q, bestRatio = j, ratio
		}
	}
	return q
}

// ratioTestLongStep is the bound-flipping (long-step) dual ratio test.
// Breakpoints — sign-eligible nonbasic columns, keyed by their dual ratio
// |d_j|/|a_j| — are drained from a binary heap into ratio order, then walked
// forward: a breakpoint whose column has finite span is tentatively flipped
// as long as the remaining violation viol − |a_j|·span stays above
// flipSlopeTol and a later breakpoint exists to enter.
//
// Flips taken within ratioTieTol of the final entering ratio are then
// retracted: a flip is only dual-consistent if the pivot's dual step
// strictly passes its breakpoint, so that the flipped column's reduced cost
// actually changes sign. On a degenerate run (all ratios ≈ equal, dual step
// ≈ 0) the retraction removes every tentative flip and the test degrades to
// the classic single-breakpoint rule — without it, zero-step flips oscillate
// forever on massively degenerate models. The entering column is the
// largest |a_j| within the tie window (stability); survivors of the
// retraction land in s.flips for applyBoundFlips. Returns -1 if no
// breakpoint exists (primal infeasibility evidence).
func (s *solver) ratioTestLongStep(below bool, viol float64) int {
	s.flips = s.flips[:0]
	s.bfRatio, s.bfJ = s.bfRatio[:0], s.bfJ[:0]
	for _, j32 := range s.arowNZ {
		j := int(j32)
		if s.vstat[j] == vsBasic || s.fixedCol(j) {
			continue
		}
		a := s.arow[j]
		if math.Abs(a) <= pivTol || !s.dualEligible(j, a, below) {
			continue
		}
		s.bfPush(math.Abs(s.d[j])/math.Abs(a), j32)
	}
	nb := len(s.bfJ)
	if nb == 0 {
		return -1
	}
	// Heap-sort the breakpoints into the scratch arrays (ascending ratio,
	// column-index tie order — fully deterministic).
	s.bpRatio, s.bpJ = s.bpRatio[:0], s.bpJ[:0]
	for len(s.bfJ) > 0 {
		r, j := s.bfPop()
		s.bpRatio = append(s.bpRatio, r) //lint:allow hotalloc -- amortized breakpoint scratch; capacity persists across solves
		s.bpJ = append(s.bpJ, j)
	}
	// Forward walk: tentatively flip while the row stays violated and a
	// later breakpoint remains to enter.
	k := 0
	for k < nb-1 {
		j := int(s.bpJ[k])
		a := math.Abs(s.arow[j])
		span := s.ub[j] - s.lb[j] // +Inf when either bound is open (incl. free)
		if math.IsInf(span, 1) || viol-a*span <= flipSlopeTol {
			break
		}
		viol -= a * span
		k++
		s.ratioPass++
	}
	// Retract tentative flips inside the tie window of the entering ratio.
	stopRatio := s.bpRatio[k]
	for k > 0 && s.bpRatio[k-1] > stopRatio-ratioTieTol {
		k--
	}
	// Entering column: largest pivot magnitude within the tie window.
	q, qAbs := -1, 0.0
	for i := k; i < nb && s.bpRatio[i] <= stopRatio+ratioTieTol; i++ {
		if a := math.Abs(s.arow[s.bpJ[i]]); a > qAbs {
			q, qAbs = int(s.bpJ[i]), a
		}
	}
	s.flips = append(s.flips, s.bpJ[:k]...) //lint:allow hotalloc -- amortized flip scratch; capacity persists across solves
	return q
}

// applyBoundFlips toggles the columns recorded by the long-step ratio test
// across to their opposite bounds and updates the basic values with one
// combined FTRAN: Δx_B = −B⁻¹·Σ A_j·Δx_j. Reduced costs are untouched — a
// bound flip moves no dual variable.
func (s *solver) applyBoundFlips() {
	if len(s.flips) == 0 {
		return
	}
	for i := range s.work {
		s.work[i] = 0
	}
	for _, j32 := range s.flips {
		j := int(j32)
		span := s.ub[j] - s.lb[j]
		var delta float64
		if s.vstat[j] == vsLower {
			s.vstat[j] = vsUpper
			delta = span
		} else {
			s.vstat[j] = vsLower
			delta = -span
		}
		idx, val := s.col(j)
		for k, ri := range idx {
			s.work[ri] += val[k] * delta
		}
	}
	s.fac.Ftran(s.work)
	for i := 0; i < s.m; i++ {
		s.xB[i] -= s.work[i]
	}
	s.xbFresh = false
	s.boundFlips += len(s.flips)
	s.flips = s.flips[:0]
}

// bfPush inserts a breakpoint into the ratio-test min-heap, ordered by
// (ratio, column) so the walk is deterministic.
func (s *solver) bfPush(ratio float64, j int32) {
	s.bfRatio = append(s.bfRatio, ratio) //lint:allow hotalloc -- amortized heap scratch; capacity persists across solves
	s.bfJ = append(s.bfJ, j)
	i := len(s.bfJ) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.bfRatio[p] < s.bfRatio[i] ||
			(s.bfRatio[p] == s.bfRatio[i] && s.bfJ[p] <= s.bfJ[i]) { //lint:allow floateq -- exact compare of stored heap keys for a deterministic tie-break
			break
		}
		s.bfRatio[p], s.bfRatio[i] = s.bfRatio[i], s.bfRatio[p]
		s.bfJ[p], s.bfJ[i] = s.bfJ[i], s.bfJ[p]
		i = p
	}
}

// bfPop removes and returns the smallest (ratio, column) breakpoint.
func (s *solver) bfPop() (float64, int32) {
	ratio, j := s.bfRatio[0], s.bfJ[0]
	last := len(s.bfJ) - 1
	s.bfRatio[0], s.bfJ[0] = s.bfRatio[last], s.bfJ[last]
	s.bfRatio, s.bfJ = s.bfRatio[:last], s.bfJ[:last]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		small := i
		if l < last && (s.bfRatio[l] < s.bfRatio[small] ||
			(s.bfRatio[l] == s.bfRatio[small] && s.bfJ[l] < s.bfJ[small])) { //lint:allow floateq -- exact compare of stored heap keys for a deterministic tie-break
			small = l
		}
		if rr < last && (s.bfRatio[rr] < s.bfRatio[small] ||
			(s.bfRatio[rr] == s.bfRatio[small] && s.bfJ[rr] < s.bfJ[small])) { //lint:allow floateq -- exact compare of stored heap keys for a deterministic tie-break
			small = rr
		}
		if small == i {
			break
		}
		s.bfRatio[i], s.bfRatio[small] = s.bfRatio[small], s.bfRatio[i]
		s.bfJ[i], s.bfJ[small] = s.bfJ[small], s.bfJ[i]
		i = small
	}
	return ratio, j
}
