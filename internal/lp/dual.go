package lp

import "math"

// dual runs dual simplex iterations from a (dual-feasible) basis until
// primal feasibility is restored, primal infeasibility is proven, or the
// iteration budget is exhausted. The MIP solver uses this to re-solve after
// branching tightens variable bounds. Reduced costs are maintained
// incrementally (see reduced.go); each iteration costs O(m + nnz).
func (s *solver) dual(maxIters int) iterStatus {
	feas := s.opts.FeasTol
	for ; s.iters < maxIters; s.iters++ {
		if s.iters&63 == 0 && s.interrupted() {
			return iterLimit
		}
		if !s.dValid {
			s.recomputeReducedCosts()
		}
		// Select the leaving row among primal-infeasible basic variables.
		// Devex-weighted (infeasibility²/w_i) normally; raw most-infeasible
		// under Bland's rule to keep the anti-cycling behavior unchanged.
		r, bestScore := -1, 0.0
		below := false
		for i := 0; i < s.m; i++ {
			j := s.basis[i]
			v, isBelow := s.lb[j]-s.xB[i], true
			if v2 := s.xB[i] - s.ub[j]; v2 > v {
				v, isBelow = v2, false
			}
			if v <= feas {
				continue
			}
			score := v
			if !s.bland {
				score = v * v / s.dualW[i]
			}
			if score > bestScore {
				r, bestScore, below = i, score, isBelow
			}
		}
		if r == -1 {
			// Certify: basic values may have drifted through incremental
			// updates; recompute them once before declaring feasibility.
			if s.xbFresh {
				return iterOptimal
			}
			s.computeXB()
			s.xbFresh = true
			continue
		}
		// Tableau row r over the nonbasic columns.
		s.pivotRow(r)

		// Dual ratio test: choose entering q minimizing |d_q / alphaRow_q|
		// among sign-eligible nonbasic columns.
		q, bestRatio, bestAbs := -1, math.Inf(1), 0.0
		for j := 0; j < s.N; j++ {
			st := s.vstat[j]
			if st == vsBasic || s.fixedCol(j) {
				continue
			}
			a := s.arow[j]
			if math.Abs(a) <= pivTol {
				continue
			}
			// Eligibility: moving x_j from its bound must push x_B(r)
			// toward the violated bound. Δx_B(r) = −a·Δx_j.
			ok := false
			switch st {
			case vsLower: // Δx_j ≥ 0
				ok = (below && a < 0) || (!below && a > 0)
			case vsUpper: // Δx_j ≤ 0
				ok = (below && a > 0) || (!below && a < 0)
			case vsFree:
				ok = true
			}
			if !ok {
				continue
			}
			ratio := math.Abs(s.d[j]) / math.Abs(a)
			if s.bland {
				if q == -1 || ratio < bestRatio-blandTieTol || (ratio <= bestRatio+blandTieTol && j < q) {
					q, bestRatio, bestAbs = j, ratio, math.Abs(a)
				}
			} else if ratio < bestRatio-ratioTieTol || (ratio <= bestRatio+ratioTieTol && math.Abs(a) > bestAbs) {
				q, bestRatio, bestAbs = j, ratio, math.Abs(a)
			}
		}
		if q == -1 {
			// The violated row cannot be repaired: primal infeasible —
			// but only if the violation is real and not drift; certify
			// with freshly recomputed basic values and basis inverse.
			if s.xbFresh && s.sincefac == 0 {
				return iterInfeasible
			}
			if err := s.refactor(); err != nil {
				return iterNumeric
			}
			s.computeXB()
			s.xbFresh = true
			s.dValid = false
			continue
		}
		s.ftran(q, s.alpha)
		if math.Abs(s.alpha[r]) <= pivTol {
			// Numerical disagreement between the row and column view;
			// refactorize and retry once, otherwise give up.
			if err := s.refactor(); err != nil {
				return iterNumeric
			}
			s.computeXB()
			s.dValid = false
			s.ftran(q, s.alpha)
			if math.Abs(s.alpha[r]) <= pivTol {
				return iterNumeric
			}
			s.recomputeReducedCosts()
			s.pivotRow(r)
		}
		// Move x_q so that x_B(r) lands exactly on its violated bound.
		leavingCol := int(s.basis[r])
		target := s.lb[leavingCol]
		leaveStat := vsLower
		if !below {
			target = s.ub[leavingCol]
			leaveStat = vsUpper
		}
		s.devexDualUpdate(s.alpha, r)
		s.applyPivotToReducedCosts(q, leavingCol)
		deltaQ := (s.xB[r] - target) / s.alpha[r]
		enterVal := s.colValue(q) + deltaQ
		for i := 0; i < s.m; i++ {
			s.xB[i] -= deltaQ * s.alpha[i]
		}
		s.pivot(q, r, s.alpha, enterVal, leaveStat)
		s.noteProgress(math.Abs(deltaQ))
	}
	return iterLimit
}
