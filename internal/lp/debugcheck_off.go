//go:build !debugchecks

package lp

// debugVerifyResult is compiled to a no-op unless the debugchecks build tag
// is set; see debugcheck_on.go for the assertion it enables.
func debugVerifyResult(*Instance, *Result) {}
