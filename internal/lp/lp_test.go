package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkFeasible verifies that x satisfies all rows and column bounds of p.
func checkFeasible(t *testing.T, p *Problem, x []float64, tol float64) {
	t.Helper()
	for j := range x {
		if x[j] < p.ColLB[j]-tol || x[j] > p.ColUB[j]+tol {
			t.Fatalf("column %d (%s): value %v outside [%v, %v]", j, p.ColName[j], x[j], p.ColLB[j], p.ColUB[j])
		}
	}
	for i := 0; i < p.NumRows(); i++ {
		idx, val := p.Row(i)
		act := 0.0
		for k, jj := range idx {
			act += val[k] * x[jj]
		}
		if act < p.RowLB[i]-tol || act > p.RowUB[i]+tol {
			t.Fatalf("row %d (%s): activity %v outside [%v, %v]", i, p.RowName[i], act, p.RowLB[i], p.RowUB[i])
		}
	}
}

// checkKKT verifies the optimality certificate: with duals y, every column's
// reduced cost must respect its bound status and every row dual must respect
// the row activity (minimization convention; for Maximize the problem is
// negated first).
func checkKKT(t *testing.T, p *Problem, res Result, tol float64) {
	t.Helper()
	n := p.NumCols()
	c := make([]float64, n)
	y := make([]float64, p.NumRows())
	copy(y, res.Duals)
	for j := 0; j < n; j++ {
		c[j] = p.Obj[j]
	}
	if p.Sense == Maximize {
		for j := range c {
			c[j] = -c[j]
		}
		for i := range y {
			y[i] = -y[i]
		}
	}
	// Column reduced costs.
	d := make([]float64, n)
	copy(d, c)
	for i := 0; i < p.NumRows(); i++ {
		idx, val := p.Row(i)
		for k, j := range idx {
			d[j] -= y[i] * val[k]
		}
	}
	for j := 0; j < n; j++ {
		atLB := math.Abs(res.X[j]-p.ColLB[j]) < 1e-6
		atUB := math.Abs(res.X[j]-p.ColUB[j]) < 1e-6
		switch {
		case atLB && atUB:
			// fixed: any reduced cost allowed
		case atLB:
			if d[j] < -tol {
				t.Fatalf("column %d at lower bound with negative reduced cost %v", j, d[j])
			}
		case atUB:
			if d[j] > tol {
				t.Fatalf("column %d at upper bound with positive reduced cost %v", j, d[j])
			}
		default:
			if math.Abs(d[j]) > tol {
				t.Fatalf("column %d interior with reduced cost %v", j, d[j])
			}
		}
	}
	// Row dual signs.
	for i := 0; i < p.NumRows(); i++ {
		idx, val := p.Row(i)
		act := 0.0
		for k, j := range idx {
			act += val[k] * res.X[j]
		}
		atLB := math.Abs(act-p.RowLB[i]) < 1e-6
		atUB := math.Abs(act-p.RowUB[i]) < 1e-6
		switch {
		case atLB && atUB:
		case atLB:
			if y[i] < -tol {
				t.Fatalf("row %d at lower bound with dual %v < 0", i, y[i])
			}
		case atUB:
			if y[i] > tol {
				t.Fatalf("row %d at upper bound with dual %v > 0", i, y[i])
			}
		default:
			if math.Abs(y[i]) > tol {
				t.Fatalf("row %d inactive with dual %v != 0", i, y[i])
			}
		}
	}
}

func TestSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y ≤ 4, x + 3y ≤ 6, x,y ≥ 0 → x=4, y=0, obj 12
	p := NewProblem()
	p.Sense = Maximize
	x := p.AddCol(3, 0, Inf, "x")
	y := p.AddCol(2, 0, Inf, "y")
	p.AddLE([]int32{int32(x), int32(y)}, []float64{1, 1}, 4, "r1")
	p.AddLE([]int32{int32(x), int32(y)}, []float64{1, 3}, 6, "r2")
	res := Solve(p, nil)
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Obj-12) > 1e-7 {
		t.Fatalf("obj = %v, want 12", res.Obj)
	}
	checkFeasible(t, p, res.X, 1e-7)
	checkKKT(t, p, res, 1e-6)
}

func TestSimpleMinEquality(t *testing.T) {
	// min x + 2y s.t. x + y = 3, 0 ≤ x ≤ 2, y ≥ 0 → x=2, y=1, obj 4
	p := NewProblem()
	x := p.AddCol(1, 0, 2, "x")
	y := p.AddCol(2, 0, Inf, "y")
	p.AddEQ([]int32{int32(x), int32(y)}, []float64{1, 1}, 3, "sum")
	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-4) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal 4", res.Status, res.Obj)
	}
	if math.Abs(res.X[0]-2) > 1e-7 || math.Abs(res.X[1]-1) > 1e-7 {
		t.Fatalf("x = %v, want [2 1]", res.X)
	}
	checkKKT(t, p, res, 1e-6)
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(1, 0, 1, "x")
	p.AddGE([]int32{int32(x)}, []float64{1}, 5, "impossible")
	res := Solve(p, nil)
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(-1, 0, Inf, "x") // min −x, x unbounded above
	_ = x
	res := Solve(p, nil)
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestUnboundedWithRow(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(-1, 0, Inf, "x")
	y := p.AddCol(0, 0, Inf, "y")
	p.AddGE([]int32{int32(x), int32(y)}, []float64{1, -1}, 0, "r") // x ≥ y, both can grow
	res := Solve(p, nil)
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestNoRows(t *testing.T) {
	// Pure bound problem: min −2x + y with x ∈ [0,3], y ∈ [−1,5] → x=3, y=−1.
	p := NewProblem()
	p.AddCol(-2, 0, 3, "x")
	p.AddCol(1, -1, 5, "y")
	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-7)) > 1e-9 {
		t.Fatalf("status %v obj %v, want optimal -7", res.Status, res.Obj)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x² surrogate: min |x − 3| style via free var split is overkill;
	// instead: min x s.t. x ≥ −5 with free y tied by y = x → check frees work.
	p := NewProblem()
	x := p.AddCol(1, -5, Inf, "x")
	y := p.AddCol(0, math.Inf(-1), Inf, "y")
	p.AddEQ([]int32{int32(x), int32(y)}, []float64{1, -1}, 0, "tie")
	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-5)) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal -5", res.Status, res.Obj)
	}
	if math.Abs(res.X[1]-(-5)) > 1e-7 {
		t.Fatalf("free y = %v, want -5", res.X[1])
	}
}

func TestRangeRow(t *testing.T) {
	// max x s.t. 2 ≤ x + y ≤ 5, y ∈ [0,1], x ∈ [0,10] → x=5, y=0.
	p := NewProblem()
	p.Sense = Maximize
	x := p.AddCol(1, 0, 10, "x")
	y := p.AddCol(0, 0, 1, "y")
	p.AddRow([]int32{int32(x), int32(y)}, []float64{1, 1}, 2, 5, "range")
	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-5) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal 5", res.Status, res.Obj)
	}
	checkKKT(t, p, res, 1e-6)
}

func TestDegenerateTransport(t *testing.T) {
	// Classic degenerate transportation problem.
	// min Σ c_ij x_ij with supplies [20, 30], demands [20, 30], costs asymmetric.
	p := NewProblem()
	c := []float64{1, 4, 2, 1}
	var cols []int32
	for k := 0; k < 4; k++ {
		cols = append(cols, int32(p.AddCol(c[k], 0, Inf, "")))
	}
	p.AddEQ([]int32{cols[0], cols[1]}, []float64{1, 1}, 20, "s0")
	p.AddEQ([]int32{cols[2], cols[3]}, []float64{1, 1}, 30, "s1")
	p.AddEQ([]int32{cols[0], cols[2]}, []float64{1, 1}, 20, "d0")
	p.AddEQ([]int32{cols[1], cols[3]}, []float64{1, 1}, 30, "d1")
	res := Solve(p, nil)
	// Optimal: x00=20, x11=30 → 20 + 30 = 50.
	if res.Status != StatusOptimal || math.Abs(res.Obj-50) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 50", res.Status, res.Obj)
	}
	checkFeasible(t, p, res.X, 1e-6)
	checkKKT(t, p, res, 1e-6)
}

func TestMergedDuplicateCoefficients(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(1, 0, Inf, "x")
	// x + x ≥ 4 → 2x ≥ 4 → x ≥ 2.
	p.AddGE([]int32{int32(x), int32(x)}, []float64{1, 1}, 4, "dup")
	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.X[0]-2) > 1e-7 {
		t.Fatalf("duplicate merge broken: %v %v", res.Status, res.X)
	}
}

// buildRandomLP generates a random feasible bounded LP by construction: pick
// x*, generate rows around its activities.
func buildRandomLP(rng *rand.Rand, n, m int) (*Problem, []float64) {
	p := NewProblem()
	xstar := make([]float64, n)
	for j := 0; j < n; j++ {
		lo := rng.Float64()*4 - 2
		hi := lo + rng.Float64()*5
		xstar[j] = lo + rng.Float64()*(hi-lo)
		p.AddCol(rng.NormFloat64(), lo, hi, "")
	}
	for i := 0; i < m; i++ {
		var idx []int32
		var val []float64
		act := 0.0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				v := rng.NormFloat64()
				idx = append(idx, int32(j))
				val = append(val, v)
				act += v * xstar[j]
			}
		}
		if len(idx) == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0:
			p.AddLE(idx, val, act+rng.Float64()*2, "")
		case 1:
			p.AddGE(idx, val, act-rng.Float64()*2, "")
		default:
			p.AddRow(idx, val, act-rng.Float64(), act+rng.Float64(), "")
		}
	}
	return p, xstar
}

func TestRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(15)
		m := 1 + rng.Intn(20)
		p, _ := buildRandomLP(rng, n, m)
		res := Solve(p, nil)
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v (problem is feasible and bounded by construction)", trial, res.Status)
		}
		checkFeasible(t, p, res.X, 1e-6)
		checkKKT(t, p, res, 1e-5)
	}
}

func TestRandomMaximize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		p, _ := buildRandomLP(rng, 2+rng.Intn(10), 1+rng.Intn(12))
		p.Sense = Maximize
		res := Solve(p, nil)
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		checkFeasible(t, p, res.X, 1e-6)
		checkKKT(t, p, res, 1e-5)
	}
}

func TestWarmStartAfterBoundChange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(10)
		m := 2 + rng.Intn(12)
		p, _ := buildRandomLP(rng, n, m)
		inst := NewInstance(p)
		res := inst.Solve(nil)
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: cold status %v", trial, res.Status)
		}
		// Tighten a random column's bounds (like a branching step).
		j := rng.Intn(n)
		lo, hi := inst.ColBounds(j)
		mid := (lo + hi) / 2
		if rng.Intn(2) == 0 {
			inst.SetColBounds(j, lo, mid)
		} else {
			inst.SetColBounds(j, mid, hi)
		}
		warm := inst.Solve(&Options{WarmBasis: res.Basis})
		cold := inst.Solve(nil)
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm %v vs cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status == StatusOptimal {
			if math.Abs(warm.Obj-cold.Obj) > 1e-5 {
				t.Fatalf("trial %d: warm obj %v vs cold obj %v", trial, warm.Obj, cold.Obj)
			}
			// KKT is checked against the *modified* bounds, so verify rows
			// only (column bounds differ from the original problem).
			lbj, ubj := inst.ColBounds(j)
			if warm.X[j] < lbj-1e-6 || warm.X[j] > ubj+1e-6 {
				t.Fatalf("trial %d: branched column %d value %v outside [%v,%v]", trial, j, warm.X[j], lbj, ubj)
			}
		}
		inst.SetColBounds(j, lo, hi) // restore
	}
}

func TestWarmStartToInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(1, 0, 10, "x")
	y := p.AddCol(1, 0, 10, "y")
	p.AddGE([]int32{int32(x), int32(y)}, []float64{1, 1}, 5, "r")
	inst := NewInstance(p)
	res := inst.Solve(nil)
	if res.Status != StatusOptimal {
		t.Fatalf("cold: %v", res.Status)
	}
	inst.SetColBounds(0, 0, 1)
	inst.SetColBounds(1, 0, 1)
	warm := inst.Solve(&Options{WarmBasis: res.Basis})
	if warm.Status != StatusInfeasible {
		t.Fatalf("warm after tightening = %v, want infeasible", warm.Status)
	}
}

func TestFixedVariables(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(1, 3, 3, "x") // fixed at 3
	y := p.AddCol(1, 0, Inf, "y")
	p.AddGE([]int32{int32(x), int32(y)}, []float64{1, 1}, 5, "r")
	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-5) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal 5", res.Status, res.Obj)
	}
	if res.X[0] != 3 {
		t.Fatalf("fixed variable moved: %v", res.X[0])
	}
}

func TestNegativeLowerBounds(t *testing.T) {
	// min x + y s.t. x + y ≥ −4, x,y ∈ [−3, 3] → obj −4 on the constraint.
	p := NewProblem()
	x := p.AddCol(1, -3, 3, "x")
	y := p.AddCol(1, -3, 3, "y")
	p.AddGE([]int32{int32(x), int32(y)}, []float64{1, 1}, -4, "r")
	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-(-4)) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal -4", res.Status, res.Obj)
	}
	checkKKT(t, p, res, 1e-6)
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusOptimal:    "optimal",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusIterLimit:  "iteration-limit",
		Status(42):       "lp.Status(42)",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

func TestBasisClone(t *testing.T) {
	var nilBasis *Basis
	if nilBasis.Clone() != nil {
		t.Fatal("nil basis clone should be nil")
	}
	b := &Basis{Basic: []int32{1}, Status: []int8{vsBasic, vsLower}}
	c := b.Clone()
	c.Basic[0] = 99
	if b.Basic[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestLargerStructuredLP(t *testing.T) {
	// Multicommodity-flow-like LP: route 2 units through a 4-node diamond,
	// minimizing cost, capacities force a split.
	p := NewProblem()
	// Edges: s→a, s→b, a→t, b→t with caps 1.5 each; costs 1, 2, 1, 2.
	sa := p.AddCol(1, 0, 1.5, "sa")
	sb := p.AddCol(2, 0, 1.5, "sb")
	at := p.AddCol(1, 0, 1.5, "at")
	bt := p.AddCol(2, 0, 1.5, "bt")
	p.AddEQ([]int32{int32(sa), int32(sb)}, []float64{1, 1}, 2, "src")
	p.AddEQ([]int32{int32(sa), int32(at)}, []float64{1, -1}, 0, "a")
	p.AddEQ([]int32{int32(sb), int32(bt)}, []float64{1, -1}, 0, "b")
	res := Solve(p, nil)
	// Optimal: 1.5 via a (cost 3), 0.5 via b (cost 2) → 5.
	if res.Status != StatusOptimal || math.Abs(res.Obj-5) > 1e-6 {
		t.Fatalf("status %v obj %v, want optimal 5", res.Status, res.Obj)
	}
	checkKKT(t, p, res, 1e-6)
}
