package lp

import (
	"math"

	"tvnep/internal/numtol"
)

// LP presolve: cheap reductions applied by Solve before the simplex runs,
// with a postsolve that maps the reduced solution — values, row duals and
// basis — back to the original problem. The passes iterate to a fixpoint:
//
//   - empty rows are checked for feasibility and dropped (dual 0);
//   - singleton rows are turned into column-bound tightenings and dropped
//     (their duals are recovered in reverse elimination order);
//   - fixed columns (lb = ub, originally or after tightening) are
//     substituted into the row bounds and dropped;
//   - empty columns are fixed at their objective-favored bound and dropped
//     (kept when that bound is infinite, so the simplex can certify
//     unboundedness only after feasibility is established);
//   - redundant rows — whose activity range over the column bounds cannot
//     leave the row bounds — are dropped (dual 0).
//
// The MIP solver re-solves Instances in place under branching bound changes
// and therefore bypasses this layer entirely (it calls Instance.Solve);
// presolve applies only to Solve(p, opts) calls without a warm basis.

const (
	// presolveFeasTol is the infeasibility tolerance of presolve decisions
	// (empty-row violation, crossed bounds after tightening). It equals
	// the solver's default primal feasibility tolerance so presolve never
	// declares infeasible what the simplex would accept.
	presolveFeasTol = numtol.LPFeasTol
	// presolveFixTol treats a column whose bounds are this close as fixed.
	presolveFixTol = 1e-11
	// presolvePivTol is the minimum singleton-row coefficient magnitude
	// eliminated; smaller pivots stay in the problem for the simplex's own
	// tolerance handling.
	presolvePivTol = 1e-7
)

// singletonRec records one eliminated singleton row for dual recovery.
type singletonRec struct {
	row int
	col int
	a   float64
}

// presolved holds the reductions applied to a Problem.
type presolved struct {
	orig *Problem
	red  *Problem

	colPos []int32   // orig col → reduced col, or -1 when removed
	colMap []int32   // reduced col → orig col
	fixVal []float64 // orig col → substituted value (valid when colPos < 0)
	rowPos []int32   // orig row → reduced row, or -1 when removed
	rowMap []int32   // reduced row → orig row

	singletons []singletonRec

	// Original column → row adjacency, built lazily for dual recovery.
	adjRows [][]int32
	adjVals [][]float64

	infeasible bool
}

// presolve applies the reduction passes to p. It returns nil when no
// reduction fires, so irreducible problems take the direct solve path
// unchanged.
func presolve(p *Problem) *presolved {
	n, m := p.NumCols(), p.NumRows()
	ps := &presolved{
		orig:   p,
		colPos: make([]int32, n),
		fixVal: make([]float64, n),
		rowPos: make([]int32, m),
	}
	lo := append([]float64(nil), p.ColLB...)
	hi := append([]float64(nil), p.ColUB...)
	rlb := append([]float64(nil), p.RowLB...)
	rub := append([]float64(nil), p.RowUB...)
	removedCol := make([]bool, n)
	removedRow := make([]bool, m)

	// Column → row adjacency and live-entry counts. Counted two-pass build
	// into shared backing arrays: this runs on every cold Solve, so the
	// per-entry append pattern would dominate the solver's allocation count.
	rowCount := make([]int, m)
	colCount := make([]int, n)
	nnz := 0
	for i := 0; i < m; i++ {
		idx, _ := p.Row(i)
		rowCount[i] = len(idx)
		nnz += len(idx)
		for _, j := range idx {
			colCount[j]++
		}
	}
	colRows := make([][]int32, n)
	colVals := make([][]float64, n)
	rowsBack := make([]int32, nnz)
	valsBack := make([]float64, nnz)
	off := 0
	for j := 0; j < n; j++ {
		colRows[j] = rowsBack[off : off : off+colCount[j]]
		colVals[j] = valsBack[off : off : off+colCount[j]]
		off += colCount[j]
	}
	for i := 0; i < m; i++ {
		idx, val := p.Row(i)
		for k, j := range idx {
			colRows[j] = append(colRows[j], int32(i))
			colVals[j] = append(colVals[j], val[k])
		}
	}
	ps.adjRows, ps.adjVals = colRows, colVals // reused by dual recovery

	dropRow := func(i int) {
		removedRow[i] = true
		idx, _ := p.Row(i)
		for _, j := range idx {
			if !removedCol[j] {
				colCount[j]--
			}
		}
	}
	fixCol := func(j int, v float64) {
		removedCol[j] = true
		ps.fixVal[j] = v
		for k, i := range colRows[j] {
			if removedRow[i] {
				continue
			}
			a := colVals[j][k]
			if !math.IsInf(rlb[i], -1) {
				rlb[i] -= a * v
			}
			if !math.IsInf(rub[i], 1) {
				rub[i] -= a * v
			}
			rowCount[i]--
		}
	}

	// Objective coefficients in minimization convention, for choosing the
	// favored bound of empty columns.
	cmin := make([]float64, n)
	for j := 0; j < n; j++ {
		cmin[j] = p.Obj[j]
		if p.Sense == Maximize {
			cmin[j] = -cmin[j]
		}
	}

	anything := false
	for pass := 0; pass < 20; pass++ {
		changed := false

		// Empty and singleton rows.
		for i := 0; i < m; i++ {
			if removedRow[i] {
				continue
			}
			switch rowCount[i] {
			case 0:
				if rlb[i] > presolveFeasTol || rub[i] < -presolveFeasTol {
					ps.infeasible = true
					return ps
				}
				dropRow(i)
				changed = true
			case 1:
				// Find the surviving entry.
				idx, val := p.Row(i)
				j, a := -1, 0.0
				for k, jj := range idx {
					if !removedCol[jj] {
						j, a = int(jj), val[k]
						break
					}
				}
				if math.Abs(a) < presolvePivTol {
					continue
				}
				implLo, implHi := rlb[i]/a, rub[i]/a
				if a < 0 {
					implLo, implHi = implHi, implLo
				}
				if implLo > lo[j] {
					lo[j] = implLo
				}
				if implHi < hi[j] {
					hi[j] = implHi
				}
				if lo[j] > hi[j]+presolveFeasTol {
					ps.infeasible = true
					return ps
				}
				if lo[j] > hi[j] {
					lo[j] = hi[j] // crossed within tolerance: snap
				}
				ps.singletons = append(ps.singletons, singletonRec{row: i, col: j, a: a})
				dropRow(i)
				changed = true
			}
		}

		// Fixed and empty columns.
		for j := 0; j < n; j++ {
			if removedCol[j] {
				continue
			}
			if hi[j]-lo[j] <= presolveFixTol && !math.IsInf(lo[j], 0) {
				fixCol(j, lo[j])
				changed = true
				continue
			}
			if colCount[j] == 0 {
				var v float64
				switch {
				case cmin[j] > 0:
					v = lo[j]
				case cmin[j] < 0:
					v = hi[j]
				case !math.IsInf(lo[j], -1):
					v = lo[j]
				case !math.IsInf(hi[j], 1):
					v = hi[j]
				default:
					v = 0
				}
				if math.IsInf(v, 0) {
					// Unbounded favored direction: keep the column so the
					// simplex proves feasibility before unboundedness.
					continue
				}
				fixCol(j, v)
				changed = true
			}
		}

		// Redundant rows: activity range within the row bounds.
		for i := 0; i < m; i++ {
			if removedRow[i] || rowCount[i] == 0 {
				continue
			}
			idx, val := p.Row(i)
			actMin, actMax := 0.0, 0.0
			for k, j := range idx {
				if removedCol[j] {
					continue
				}
				if a := val[k]; a > 0 {
					actMin += a * lo[j]
					actMax += a * hi[j]
				} else {
					actMin += a * hi[j]
					actMax += a * lo[j]
				}
			}
			if actMin >= rlb[i]-presolveFeasTol && actMax <= rub[i]+presolveFeasTol {
				dropRow(i)
				changed = true
			}
		}

		if !changed {
			break
		}
		anything = true
	}
	if !anything {
		return nil
	}

	// Assemble the reduced problem over the survivors. Survivor counts are
	// known up front, so every slice is reserved exactly once: the append
	// doubling this loop otherwise pays shows up directly in cold-Solve GC.
	keptCols, keptRows := 0, 0
	for j := 0; j < n; j++ {
		if !removedCol[j] {
			keptCols++
		}
	}
	for i := 0; i < m; i++ {
		if !removedRow[i] {
			keptRows++
		}
	}
	red := NewProblem()
	red.Sense = p.Sense
	red.ObjOffset = p.ObjOffset
	red.Obj = make([]float64, 0, keptCols)
	red.ColLB = make([]float64, 0, keptCols)
	red.ColUB = make([]float64, 0, keptCols)
	red.ColName = make([]string, 0, keptCols)
	red.rows = make([]sparseRow, 0, keptRows)
	red.RowLB = make([]float64, 0, keptRows)
	red.RowUB = make([]float64, 0, keptRows)
	red.RowName = make([]string, 0, keptRows)
	ps.colMap = make([]int32, 0, n)
	for j := 0; j < n; j++ {
		if removedCol[j] {
			ps.colPos[j] = -1
			// Contribution of the substituted column, in the original sense
			// (ObjOffset is applied before the minimize/maximize negation).
			red.ObjOffset += p.Obj[j] * ps.fixVal[j]
			continue
		}
		ps.colPos[j] = int32(red.AddCol(p.Obj[j], lo[j], hi[j], p.ColName[j]))
		ps.colMap = append(ps.colMap, int32(j))
	}
	ps.rowMap = make([]int32, 0, m)
	// Counted two-pass build into shared backing arrays, mirroring the
	// adjacency build above: two fresh slices per kept row would put ~2m
	// allocations on every cold Solve.
	keptNNZ := 0
	for i := 0; i < m; i++ {
		if removedRow[i] {
			continue
		}
		idx, _ := p.Row(i)
		for _, j := range idx {
			if !removedCol[j] {
				keptNNZ++
			}
		}
	}
	ridxBack := make([]int32, 0, keptNNZ)
	rvalBack := make([]float64, 0, keptNNZ)
	for i := 0; i < m; i++ {
		if removedRow[i] {
			ps.rowPos[i] = -1
			continue
		}
		idx, val := p.Row(i)
		// Append the filtered row directly: the source row is already
		// deduplicated and in range, so AddRow's merging map is dead weight
		// on this hot path (one assembly per cold Solve).
		start := len(ridxBack)
		for k, j := range idx {
			if !removedCol[j] {
				ridxBack = append(ridxBack, ps.colPos[j])
				rvalBack = append(rvalBack, val[k])
			}
		}
		ps.rowPos[i] = int32(len(red.rows))
		red.rows = append(red.rows, sparseRow{idx: ridxBack[start:len(ridxBack):len(ridxBack)], val: rvalBack[start:len(rvalBack):len(rvalBack)]})
		red.RowLB = append(red.RowLB, rlb[i])
		red.RowUB = append(red.RowUB, rub[i])
		red.RowName = append(red.RowName, p.RowName[i])
		ps.rowMap = append(ps.rowMap, int32(i))
	}
	ps.red = red
	return ps
}

// solve optimizes the reduced problem and postsolves the outcome.
func (ps *presolved) solve(opts *Options) Result {
	if ps.infeasible {
		return Result{Status: StatusInfeasible}
	}
	if ps.red.NumCols() == 0 && ps.red.NumRows() == 0 {
		// Fully solved by presolve; the empty basis lifts to all-slack-basic.
		return ps.postsolve(Result{Status: StatusOptimal, Obj: ps.red.ObjOffset, Basis: &Basis{}})
	}
	return ps.postsolve(Solve(ps.red, opts))
}

// postsolve maps a Result of the reduced problem back to the original.
func (ps *presolved) postsolve(rres Result) Result {
	p := ps.orig
	n, m := p.NumCols(), p.NumRows()
	res := Result{Status: rres.Status, Obj: rres.Obj, Iterations: rres.Iterations}
	if rres.Status != StatusOptimal {
		return res
	}

	// Primal values: survivors from the reduced solution, the rest from
	// their substituted values.
	res.X = make([]float64, n)
	for j := 0; j < n; j++ {
		if ps.colPos[j] >= 0 {
			res.X[j] = rres.X[ps.colPos[j]]
		} else {
			res.X[j] = ps.fixVal[j]
		}
	}

	// Row duals, in minimization convention while reconstructing: kept rows
	// from the reduced solve, dropped empty/redundant rows 0, singleton rows
	// by reverse elimination replay.
	y := make([]float64, m)
	for k, i := range ps.rowMap {
		y[i] = rres.Duals[k]
		if p.Sense == Maximize {
			y[i] = -y[i]
		}
	}
	ps.recoverSingletonDuals(y, res.X)
	res.Duals = y
	if p.Sense == Maximize {
		for i := range res.Duals {
			res.Duals[i] = -res.Duals[i]
		}
	}

	res.Basis = ps.postsolveBasis(rres.Basis)
	return res
}

// recoverSingletonDuals assigns duals to the eliminated singleton rows so
// the full-problem KKT conditions hold: replaying eliminations in reverse,
// each row absorbs its column's residual reduced cost whenever the column
// sits away from an original bound that would justify it — but only when
// the resulting dual sign is consistent with the row's activity (otherwise
// an earlier eliminated row on the same column absorbs the residual).
func (ps *presolved) recoverSingletonDuals(y, x []float64) {
	p := ps.orig
	const tol = numtol.DualRoundTol
	for t := len(ps.singletons) - 1; t >= 0; t-- {
		rec := ps.singletons[t]
		j := rec.col
		// Residual reduced cost of the column (minimization convention).
		d := p.Obj[j]
		if p.Sense == Maximize {
			d = -d
		}
		for k, i := range ps.colRowsOf(j) {
			d -= y[i] * ps.colValsOf(j)[k]
		}
		atLB := math.Abs(x[j]-p.ColLB[j]) < numtol.AtBoundTol
		atUB := math.Abs(x[j]-p.ColUB[j]) < numtol.AtBoundTol
		ok := (atLB && atUB) ||
			(atLB && d >= -tol) ||
			(atUB && d <= tol) ||
			math.Abs(d) <= tol
		if ok {
			continue
		}
		yi := d / rec.a
		// Row-dual sign check against the row's activity position.
		idx, val := p.Row(rec.row)
		act := 0.0
		for k, jj := range idx {
			act += val[k] * x[jj]
		}
		rAtLB := math.Abs(act-p.RowLB[rec.row]) < numtol.AtBoundTol
		rAtUB := math.Abs(act-p.RowUB[rec.row]) < numtol.AtBoundTol
		switch {
		case rAtLB && rAtUB:
		case rAtLB:
			if yi < -tol {
				continue
			}
		case rAtUB:
			if yi > tol {
				continue
			}
		default:
			continue
		}
		y[rec.row] = yi
	}
}

// colRowsOf / colValsOf lazily build the original column → row adjacency
// used by dual recovery.
func (ps *presolved) colRowsOf(j int) []int32 {
	ps.ensureAdjacency()
	return ps.adjRows[j]
}

func (ps *presolved) colValsOf(j int) []float64 {
	ps.ensureAdjacency()
	return ps.adjVals[j]
}

func (ps *presolved) ensureAdjacency() {
	if ps.adjRows != nil {
		return
	}
	p := ps.orig
	ps.adjRows = make([][]int32, p.NumCols())
	ps.adjVals = make([][]float64, p.NumCols())
	for i := 0; i < p.NumRows(); i++ {
		idx, val := p.Row(i)
		for k, j := range idx {
			ps.adjRows[j] = append(ps.adjRows[j], int32(i))
			ps.adjVals[j] = append(ps.adjVals[j], val[k])
		}
	}
}

// postsolveBasis lifts the reduced basis to the full problem: kept rows keep
// their (remapped) basic columns, dropped rows take their own slack basic,
// dropped columns go nonbasic at the bound nearest their substituted value.
// The lifted basis matrix is block-triangular with the reduced basis and an
// identity over the dropped rows' slacks, so it stays nonsingular and usable
// for warm starts.
func (ps *presolved) postsolveBasis(rb *Basis) *Basis {
	if rb == nil {
		return nil
	}
	p := ps.orig
	n, m := p.NumCols(), p.NumRows()
	nRed, mRed := ps.red.NumCols(), ps.red.NumRows()
	if len(rb.Basic) != mRed || len(rb.Status) != nRed+2*mRed {
		return nil
	}
	liftCol := func(jr int32) int32 {
		switch {
		case int(jr) < nRed: // structural
			return ps.colMap[jr]
		case int(jr) < nRed+mRed: // slack
			return int32(n) + ps.rowMap[int(jr)-nRed]
		default: // artificial
			return int32(n+m) + ps.rowMap[int(jr)-nRed-mRed]
		}
	}
	b := &Basis{Basic: make([]int32, m), Status: make([]int8, n+2*m)}
	for i := 0; i < m; i++ {
		if ps.rowPos[i] >= 0 {
			b.Basic[i] = liftCol(rb.Basic[ps.rowPos[i]])
		} else {
			b.Basic[i] = int32(n + i) // dropped row: own slack basic
			b.Status[n+i] = vsBasic
		}
	}
	for j := 0; j < n; j++ {
		if ps.colPos[j] >= 0 {
			b.Status[j] = rb.Status[ps.colPos[j]]
			continue
		}
		v := ps.fixVal[j]
		switch {
		case math.Abs(v-p.ColLB[j]) < numtol.BoundSnapTol || math.IsInf(p.ColUB[j], 1):
			b.Status[j] = vsLower
		case !math.IsInf(p.ColUB[j], 1):
			b.Status[j] = vsUpper
		default:
			b.Status[j] = vsFree
		}
	}
	for k, i := range ps.rowMap {
		b.Status[n+int(i)] = rb.Status[nRed+k]
		b.Status[n+m+int(i)] = rb.Status[nRed+mRed+k]
	}
	return b
}
