package lp

import (
	"fmt"
	"math"
	"time"

	"tvnep/internal/linalg/sparselu"
)

// Nonbasic/basic variable statuses. Exported values appear in Basis
// snapshots; keep them stable.
const (
	vsLower int8 = iota // nonbasic at lower bound
	vsUpper             // nonbasic at upper bound
	vsFree              // nonbasic free variable, held at value 0
	vsBasic             // basic
)

const (
	pivTol     = 1e-9  // minimum pivot magnitude
	dropTol    = 1e-12 // entries below this are treated as zero in updates
	stallLimit = 400   // degenerate iterations before switching to Bland's rule

	// crashBoundTol is the slack allowed when testing whether a row
	// activity already lies inside its slack's bounds during the crash
	// basis construction; activities are single dot products, so only a
	// few ulps of error are possible.
	crashBoundTol = 1e-12
	// ratioTieTol is the window within which two ratio-test limits are
	// treated as tied (the larger-pivot rule then breaks the tie).
	ratioTieTol = 1e-10
	// blandTieTol is the much tighter tie window used under Bland's rule,
	// where ties must be broken by index to preserve the anti-cycling
	// guarantee.
	blandTieTol = 1e-12
	// degenStepTol is the step length below which an iteration counts as
	// degenerate for the stall detector.
	degenStepTol = 1e-12
	// flipSlopeTol is the dual-infeasibility slope below which the
	// long-step (bound-flipping) ratio test stops passing breakpoints: a
	// flip is only taken while the remaining primal violation of the
	// leaving row stays safely positive afterwards.
	flipSlopeTol = 1e-9
	// dseFloor keeps the dual steepest-edge weights away from zero; a
	// too-small weight would make one row's score explode on roundoff.
	dseFloor = 1e-4
)

// refactorEvery returns the number of eta-file updates tolerated before a
// scheduled refactorization. A sparse refactorization costs O(nnz·fill)
// while every eta lengthens all subsequent FTRAN/BTRAN solves, so the
// trade-off favors fairly frequent refactorization; larger bases still
// amortize it over proportionally more pivots.
func refactorEvery(m int) int {
	if n := m / 2; n > 120 {
		return n
	}
	return 120
}

// etaNNZBudget bounds the total eta-file size before a refactorization is
// forced regardless of the update count: dense pivot columns (up to m
// entries each) would otherwise make the product-form solves quadratic.
func etaNNZBudget(m int) int {
	if n := 8 * m; n > 512 {
		return n
	}
	return 512
}

// Instance is a solvable snapshot of a Problem with mutable column bounds.
// It caches the sparse column-wise matrix in equilibrated (scaled) form; the
// branch-and-bound solver mutates bounds between solves instead of
// rebuilding the problem. Bounds, objective, solutions and duals stay in the
// original units — the scaling is applied and removed inside the solver (see
// scaling.go). Instances are not safe for concurrent use.
type Instance struct {
	p *Problem
	n int // structural columns
	m int // rows

	colIdx [][]int32 // structural columns only; values are scaled
	colVal [][]float64

	// Rows added by AppendRow (cuts), row-wise: row baseRows+i is
	// extraIdx[i]/extraVal[i], stored scaled. The column-major matrix above
	// already contains their entries; this row view serves warm-basis
	// extension and the row-wise consumers (pivotRow, debug checks).
	baseRows int
	extraIdx [][]int32
	extraVal [][]float64

	// Columns added by AppendColumn (priced path columns), overlaid row-wise:
	// apRowIdx[i]/apRowVal[i] list the appended columns touching row i that
	// the row's own storage predates (values scaled). The column-major matrix
	// above already contains their entries; this overlay completes the row
	// view for the row-wise consumers. nil when no columns were appended.
	baseCols int
	apRowIdx [][]int32
	apRowVal [][]float64

	// Scaled row view of the compiled rows (indices shared with the
	// Problem); nil when the instance is unscaled.
	baseRowVal [][]float64

	unitIdx []int32 // unitIdx[i] = i; slack/artificial column index storage

	lb, ub []float64 // length n+m, original units: structural then row bounds
	objMin []float64 // minimization costs for structural columns (original)
	negate bool      // true if original sense was Maximize

	// Power-of-two equilibration scales (see scaling.go): the solver works
	// on A' = R·A·C with R = diag(rowScale), C = diag(colScale). All scales
	// are powers of two, so applying and removing them is exact and the
	// scaled solve stays bit-deterministic. nil/scaled=false means identity.
	scaled      bool
	rowScale    []float64
	colScale    []float64
	colScaleInv []float64

	// sv is the per-instance solver state, reused across solves so the hot
	// restart path (branch-and-bound, admission, cutting planes) allocates
	// nothing in steady state. Lazily (re)built when dimensions change.
	sv *solver
}

// NewInstance compiles p into column-major form and equilibrates it.
func NewInstance(p *Problem) *Instance {
	n, m := p.NumCols(), p.NumRows()
	inst := &Instance{
		p: p, n: n, m: m,
		baseRows: m,
		baseCols: n,
		colIdx:   make([][]int32, n),
		colVal:   make([][]float64, n),
		lb:       make([]float64, n+m),
		ub:       make([]float64, n+m),
		objMin:   make([]float64, n),
		negate:   p.Sense == Maximize,
	}
	copy(inst.lb, p.ColLB)
	copy(inst.ub, p.ColUB)
	inst.unitIdx = make([]int32, m)
	for i := 0; i < m; i++ {
		inst.lb[n+i] = p.RowLB[i]
		inst.ub[n+i] = p.RowUB[i]
		inst.unitIdx[i] = int32(i)
	}
	for j := 0; j < n; j++ {
		inst.objMin[j] = p.Obj[j]
		if inst.negate {
			inst.objMin[j] = -p.Obj[j]
		}
	}
	// Transpose rows into columns.
	counts := make([]int, n)
	for i := 0; i < m; i++ {
		idx, _ := p.Row(i)
		for _, j := range idx {
			counts[j]++
		}
	}
	nnz := 0
	for _, c := range counts {
		nnz += c
	}
	idxBack := make([]int32, nnz) // shared backing: two allocations, not 2n
	valBack := make([]float64, nnz)
	off := 0
	for j := 0; j < n; j++ {
		inst.colIdx[j] = idxBack[off : off : off+counts[j]]
		inst.colVal[j] = valBack[off : off : off+counts[j]]
		off += counts[j]
	}
	for i := 0; i < m; i++ {
		idx, val := p.Row(i)
		for k, j := range idx {
			inst.colIdx[j] = append(inst.colIdx[j], int32(i))
			inst.colVal[j] = append(inst.colVal[j], val[k])
		}
	}
	inst.equilibrate()
	return inst
}

// Clone returns an independent Instance over the same compiled problem.
// The immutable per-column and per-row storage (and the Problem it was
// compiled from) is shared; the mutable column bounds are copied and the
// solver state starts empty. Clones are what give every worker of a
// parallel branch-and-bound search its own simplex state without recompiling
// the problem: the shared inner slices are never written after compilation,
// and AppendRow replaces — never grows in place — the outer slices it
// touches, so rows appended to one clone stay invisible to the others.
func (inst *Instance) Clone() *Instance {
	out := &Instance{
		p: inst.p, n: inst.n, m: inst.m,
		baseRows:    inst.baseRows,
		baseCols:    inst.baseCols,
		colIdx:      append([][]int32(nil), inst.colIdx...),
		colVal:      append([][]float64(nil), inst.colVal...),
		extraIdx:    append([][]int32(nil), inst.extraIdx...),
		extraVal:    append([][]float64(nil), inst.extraVal...),
		apRowIdx:    append([][]int32(nil), inst.apRowIdx...),
		apRowVal:    append([][]float64(nil), inst.apRowVal...),
		baseRowVal:  inst.baseRowVal,
		unitIdx:     inst.unitIdx,
		lb:          append([]float64(nil), inst.lb...),
		ub:          append([]float64(nil), inst.ub...),
		objMin:      inst.objMin,
		negate:      inst.negate,
		scaled:      inst.scaled,
		rowScale:    inst.rowScale,
		colScale:    inst.colScale,
		colScaleInv: inst.colScaleInv,
	}
	return out
}

// NumCols reports the number of structural columns.
func (inst *Instance) NumCols() int { return inst.n }

// NumRows reports the number of rows.
func (inst *Instance) NumRows() int { return inst.m }

// SetColBounds overrides the bounds of structural column j.
func (inst *Instance) SetColBounds(j int, lb, ub float64) {
	if lb > ub {
		panic(fmt.Sprintf("lp: SetColBounds(%d) lb %v > ub %v", j, lb, ub))
	}
	inst.lb[j], inst.ub[j] = lb, ub
}

// ColBounds returns the current bounds of structural column j.
func (inst *Instance) ColBounds(j int) (lb, ub float64) { return inst.lb[j], inst.ub[j] }

// solver holds the simplex state for solves on one instance. It is owned by
// the instance and reused across solves: all slices below are allocated once
// per (n, m) shape, so warm restarts and steady-state iterations allocate
// nothing.
type solver struct {
	inst *Instance
	m    int // rows
	nm   int // structural + slack columns
	N    int // total columns including m permanent artificials

	lb, ub  []float64 // length N, scaled units
	cost    []float64 // active phase costs, length N
	real    []float64 // phase-2 costs, length N
	vstat   []int8    // length N
	basis   []int32   // length m
	inBasis []int32   // length N, row position or -1

	fac *sparselu.Factors // sparse LU of the basis + eta updates
	xB  []float64         // basic variable values

	// Factorization buffers: the active factorization always lives in one
	// of these two solver-owned buffers (never handed out — Result.Factors
	// is a deep copy), so refactorizations and warm-factor adoptions reuse
	// their storage. Two buffers because a mid-solve refactorization must
	// not destroy the current factors before it succeeds.
	facBuf [2]*sparselu.Factors
	facCur int
	facWS  *sparselu.Workspace
	refIdx [][]int32 // refactorization column headers, length m
	refVal [][]float64
	// preFac, when set by extendWarmStart, is a solver-owned buffer already
	// holding the bordered extension of the caller's WarmFactors; adoptBasis
	// installs it directly instead of copying WarmFactors.
	preFac *sparselu.Factors
	// extendWarmStart scratch: border rows in basis positions, their
	// diagonal, and the basic-column → position lookup (-1-initialized).
	extIdx  [][]int32
	extVal  [][]float64
	extDiag []float64
	posOf   []int32

	// workspaces
	alpha []float64
	y     []float64
	rho   []float64
	work  []float64
	tau   []float64 // B⁻¹ρ for the dual steepest-edge update

	// Incrementally maintained reduced costs (see reduced.go).
	d       []float64
	arow    []float64
	arowNZ  []int32 // hyper-sparse index stack: columns touched by pivotRow
	arowTag []bool  // membership marks for arowNZ

	basisSeen []bool // adoptBasis duplicate-column check scratch, length N
	dValid    bool
	dFresh    bool // d recomputed from scratch since the last pivot
	xbFresh   bool // xB recomputed from scratch since the last pivot

	// Long-step (bound-flipping) dual ratio test scratch: a binary min-heap
	// of breakpoints keyed (ratio, column), the ratio-sorted drain of that
	// heap, and the flip list of the current iteration (see dual.go).
	bfRatio []float64
	bfJ     []int32
	bpRatio []float64
	bpJ     []int32
	flips   []int32

	// Pricing weights (see devex.go): devexW are primal Devex weights for
	// entering columns; dualW are dual steepest-edge weights β_i ≈ ‖B⁻ᵀe_i‖²
	// for leaving rows. priceCursor is the rotating start of the primal's
	// sectional candidate scan.
	devexW      []float64
	dualW       []float64
	priceCursor int

	opts       Options
	iters      int
	boundFlips int // nonbasic bound flips taken by the long-step ratio test
	ratioPass  int // breakpoints passed (flipped through) in ratio tests
	bland      bool
	stall      int
	sincefac   int
	lastPivotQ int
}

// fixedCol reports whether column j is fixed (equal bounds) and can never
// leave its bound. Bounds are only ever equal by assignment (construction,
// branching, presolve), so the bit-exact comparison is deliberate.
func (s *solver) fixedCol(j int) bool {
	//lint:allow floateq -- equal bounds are assigned, never computed
	return s.lb[j] == s.ub[j]
}

// newSolver returns the instance's solver, reset for a fresh solve. The
// state is allocated on first use (or when AppendRow changed the dimensions)
// and reused otherwise.
func newSolver(inst *Instance, opts Options) *solver {
	n, m := inst.n, inst.m
	s := inst.sv
	if s == nil || s.m != m || s.N != n+2*m {
		s = &solver{
			inst: inst, m: m, nm: n + m, N: n + 2*m,
			lb: make([]float64, n+2*m), ub: make([]float64, n+2*m),
			cost: make([]float64, n+2*m), real: make([]float64, n+2*m),
			vstat: make([]int8, n+2*m), basis: make([]int32, m),
			inBasis: make([]int32, n+2*m),
			xB:      make([]float64, m),
			alpha:   make([]float64, m), y: make([]float64, m),
			rho: make([]float64, m), work: make([]float64, m),
			tau: make([]float64, m),
			d:   make([]float64, n+2*m), arow: make([]float64, n+2*m),
			arowNZ: make([]int32, 0, n+2*m), arowTag: make([]bool, n+2*m),
			basisSeen: make([]bool, n+2*m),
			devexW:    make([]float64, n+2*m), dualW: make([]float64, m),
			facWS:  sparselu.NewWorkspace(),
			refIdx: make([][]int32, m), refVal: make([][]float64, m),
			posOf: make([]int32, n+2*m),
		}
		for j := range s.posOf {
			s.posOf[j] = -1
		}
		inst.sv = s
	}
	s.reset(opts)
	return s
}

// reset prepares the solver for a new solve under the instance's current
// bounds: scaled bounds and costs are (re)installed, all incremental state
// is invalidated, and the pricing weights return to their reference values.
func (s *solver) reset(opts Options) {
	inst := s.inst
	s.opts = opts
	s.iters = 0
	s.bland = false
	s.stall = 0
	s.sincefac = 0
	s.lastPivotQ = -1
	s.priceCursor = 0
	s.boundFlips = 0
	s.ratioPass = 0
	s.dValid, s.dFresh, s.xbFresh = false, false, false
	s.fac = nil
	s.preFac = nil
	for j := range s.devexW {
		s.devexW[j] = 1
	}
	for i := range s.dualW {
		s.dualW[i] = 1
	}
	for j := range s.inBasis {
		s.inBasis[j] = -1
	}
	for j := range s.arow {
		s.arow[j] = 0
		s.arowTag[j] = false
	}
	s.arowNZ = s.arowNZ[:0]
	if inst.scaled {
		// x'_j = x_j/c_j and slack s'_i = r_i·s_i; the scales are powers of
		// two, so these transforms are exact (and map ±Inf to ±Inf).
		for j := 0; j < inst.n; j++ {
			ci := inst.colScaleInv[j]
			s.lb[j] = inst.lb[j] * ci
			s.ub[j] = inst.ub[j] * ci
			s.real[j] = inst.objMin[j] * inst.colScale[j]
		}
		for i := 0; i < s.m; i++ {
			r := inst.rowScale[i]
			s.lb[inst.n+i] = inst.lb[inst.n+i] * r
			s.ub[inst.n+i] = inst.ub[inst.n+i] * r
		}
	} else {
		copy(s.lb, inst.lb)
		copy(s.ub, inst.ub)
		copy(s.real[:inst.n], inst.objMin)
	}
	for j := inst.n; j < s.N; j++ {
		s.real[j] = 0
		s.cost[j] = 0
	}
	// Artificials default to fixed at zero; phase-1 setup relaxes the ones
	// it needs.
	for j := s.nm; j < s.N; j++ {
		s.lb[j], s.ub[j] = 0, 0
	}
}

// grabFacBuf returns the inactive solver-owned factorization buffer,
// allocating it on first use. The caller installs the result as s.fac after
// filling it; the previously active buffer then becomes the spare.
func (s *solver) grabFacBuf() *sparselu.Factors {
	next := 1 - s.facCur
	if s.facBuf[next] == nil {
		s.facBuf[next] = &sparselu.Factors{}
	}
	s.facCur = next
	return s.facBuf[next]
}

// Shared single-entry value slices for the slack (−1) and artificial (+1)
// unit columns. Read-only; never mutate.
var (
	negUnitVal = []float64{-1}
	posUnitVal = []float64{1}
)

// col returns the sparse column j of the full matrix [A | −I | +I]. The
// returned slices are shared storage; callers must not mutate or retain
// them across basis changes.
func (s *solver) col(j int) ([]int32, []float64) {
	switch {
	case j < s.inst.n:
		return s.inst.colIdx[j], s.inst.colVal[j]
	case j < s.nm:
		r := j - s.inst.n
		return s.inst.unitIdx[r : r+1], negUnitVal
	default:
		r := j - s.nm
		return s.inst.unitIdx[r : r+1], posUnitVal
	}
}

// colValue returns the current value of column j.
func (s *solver) colValue(j int) float64 {
	switch s.vstat[j] {
	case vsLower:
		return s.lb[j]
	case vsUpper:
		return s.ub[j]
	case vsFree:
		return 0
	default:
		return s.xB[s.inBasis[j]]
	}
}

// defaultStatus returns the natural nonbasic status for column j.
func (s *solver) defaultStatus(j int) int8 {
	lb, ub := s.lb[j], s.ub[j]
	switch {
	case !math.IsInf(lb, -1):
		return vsLower
	case !math.IsInf(ub, 1):
		return vsUpper
	default:
		return vsFree
	}
}

// ftran computes alpha ← B⁻¹·A_j via a hyper-sparse forward solve: the
// entering column is scattered into alpha and solved in place, skipping
// structurally-zero positions.
func (s *solver) ftran(j int, alpha []float64) {
	for i := range alpha {
		alpha[i] = 0
	}
	idx, val := s.col(j)
	for k, r := range idx {
		alpha[r] += val[k]
	}
	s.fac.Ftran(alpha)
}

// computeDuals fills s.y with the solution of Bᵀ·y = c_B for the active
// phase costs.
func (s *solver) computeDuals() {
	for i := 0; i < s.m; i++ {
		s.y[i] = s.cost[s.basis[i]]
	}
	s.fac.Btran(s.y)
}

// reducedCost returns d_j = c_j − yᵀ·A_j using the currently computed duals.
func (s *solver) reducedCost(j int) float64 {
	d := s.cost[j]
	idx, val := s.col(j)
	for k, r := range idx {
		d -= s.y[r] * val[k]
	}
	return d
}

// btranRow fills rho with row r of B⁻¹, i.e. the solution of Bᵀ·ρ = e_r
// (a maximally sparse right-hand side for the backward solve).
func (s *solver) btranRow(r int, rho []float64) {
	for k := range rho {
		rho[k] = 0
	}
	rho[r] = 1
	s.fac.Btran(rho)
}

// computeXB recomputes the basic values from scratch:
// x_B = −B⁻¹·(Σ nonbasic A_j·value_j).
func (s *solver) computeXB() {
	for i := range s.xB {
		s.xB[i] = 0
	}
	for j := 0; j < s.N; j++ {
		if s.vstat[j] == vsBasic {
			continue
		}
		v := s.colValue(j)
		if v == 0 {
			continue
		}
		idx, val := s.col(j)
		for k, r := range idx {
			s.xB[r] -= val[k] * v
		}
	}
	s.fac.Ftran(s.xB)
}

// refactor rebuilds the sparse LU factorization of the basis from scratch,
// discarding the eta file. Returns sparselu.ErrSingular if the basis matrix
// is singular; the previous factorization (if any) stays intact and active
// in that case.
func (s *solver) refactor() error {
	m := s.m
	for pos := 0; pos < m; pos++ {
		s.refIdx[pos], s.refVal[pos] = s.col(int(s.basis[pos]))
	}
	// Factorize into the spare buffer so a failure leaves s.fac usable.
	next := 1 - s.facCur
	if s.facBuf[next] == nil {
		s.facBuf[next] = &sparselu.Factors{}
	}
	if err := sparselu.FactorizeInto(s.facBuf[next], s.facWS, m, s.refIdx, s.refVal); err != nil {
		return err
	}
	s.facCur = next
	s.fac = s.facBuf[next]
	s.sincefac = 0
	return nil
}

// updateFactors applies the pivot (entering column with ftran vector alpha,
// leaving row r) as an eta-file update.
func (s *solver) updateFactors(alpha []float64, r int) {
	s.fac.Update(alpha, r)
	s.sincefac++
}

// pivot makes column q basic in row r. enterVal is the new value of x_q and
// leaveStat the nonbasic status assigned to the leaving variable.
//
//hot:path
func (s *solver) pivot(q int, r int, alpha []float64, enterVal float64, leaveStat int8) {
	leaving := int(s.basis[r])
	s.vstat[leaving] = leaveStat
	s.inBasis[leaving] = -1
	s.basis[r] = int32(q)
	s.inBasis[q] = int32(r)
	s.vstat[q] = vsBasic
	s.updateFactors(alpha, r)
	s.xB[r] = enterVal
	s.lastPivotQ = q
	s.xbFresh = false
	if s.sincefac >= refactorEvery(s.m) || s.fac.EtaNNZ() >= etaNNZBudget(s.m) {
		if err := s.refactor(); err == nil { //lint:allow hotalloc -- periodic refactorization is the amortized cold path
			s.computeXB()
			s.dValid = false // refresh reduced costs against numerical drift
		}
	}
}

// snapshot extracts a warm-startable basis (all N columns, including
// artificials, so a later solver of the same instance can adopt it).
func (s *solver) snapshot() *Basis {
	b := &Basis{Basic: make([]int32, s.m), Status: make([]int8, s.N)}
	copy(b.Basic, s.basis)
	copy(b.Status, s.vstat)
	return b
}

// adoptBasis installs a snapshot, refactorizes (or adopts the handed-off
// factors) and recomputes basic values.
func (s *solver) adoptBasis(b *Basis) bool {
	if b == nil || len(b.Basic) != s.m || len(b.Status) != s.N {
		return false
	}
	okBasis := true
	for _, j := range b.Basic {
		if int(j) < 0 || int(j) >= s.N || s.basisSeen[j] {
			okBasis = false
			break
		}
		s.basisSeen[j] = true
	}
	for _, j := range b.Basic {
		if int(j) >= 0 && int(j) < s.N {
			s.basisSeen[j] = false
		}
	}
	if !okBasis {
		return false
	}
	copy(s.basis, b.Basic)
	copy(s.vstat, b.Status)
	for j := range s.inBasis {
		s.inBasis[j] = -1
	}
	for pos, j := range s.basis {
		s.inBasis[j] = int32(pos)
		s.vstat[j] = vsBasic
	}
	adopted := false
	if s.preFac != nil {
		// extendWarmStart already built the bordered extension in a
		// solver-owned buffer; install it directly.
		s.fac = s.preFac
		s.preFac = nil
		adopted = true
	} else if wf := s.opts.WarmFactors; wf != nil && wf.M() == s.m {
		// Explicit factor handoff (Result.Factors of the solve that produced
		// b). Deep-copied into a solver-owned buffer so this solver's eta
		// updates stay out of the caller's copy, which siblings share; the
		// copy reuses the buffer's storage, so steady-state handoffs do not
		// allocate.
		wf.CopyInto(s.grabFacBuf())
		s.fac = s.facBuf[s.facCur]
		adopted = true
		DebugFactorHandoffs.Add(1)
	}
	// Repair nonbasic statuses that reference bounds which no longer exist
	// (possible after branching tightened/removed a bound).
	for j := 0; j < s.N; j++ {
		if s.vstat[j] == vsBasic {
			continue
		}
		switch s.vstat[j] {
		case vsLower:
			if math.IsInf(s.lb[j], -1) {
				s.vstat[j] = s.defaultStatus(j)
			}
		case vsUpper:
			if math.IsInf(s.ub[j], 1) {
				s.vstat[j] = s.defaultStatus(j)
			}
		case vsFree:
			if !math.IsInf(s.lb[j], -1) || !math.IsInf(s.ub[j], 1) {
				s.vstat[j] = s.defaultStatus(j)
			}
		}
	}
	if !adopted {
		if err := s.refactor(); err != nil {
			return false
		}
	}
	s.computeXB()
	return true
}

// objValue returns the current phase-2 objective (minimization form, no
// offset). Scaled costs times scaled values give original-unit terms.
func (s *solver) objValue() float64 {
	obj := 0.0
	for j := 0; j < s.inst.n; j++ {
		obj += s.real[j] * s.colValue(j)
	}
	return obj
}

// interrupted reports whether the solve should stop: its deadline has
// passed or its context has been cancelled.
func (s *solver) interrupted() bool {
	if !s.opts.Deadline.IsZero() && time.Now().After(s.opts.Deadline) { //lint:allow nondet -- deadline enforcement is deliberate wall-clock dependence
		return true
	}
	if ctx := s.opts.Context; ctx != nil && ctx.Err() != nil {
		return true
	}
	return false
}

// primalInfeasibility returns the largest bound violation among basic
// variables.
func (s *solver) primalInfeasibility() float64 {
	worst := 0.0
	for i := 0; i < s.m; i++ {
		j := s.basis[i]
		if v := s.lb[j] - s.xB[i]; v > worst {
			worst = v
		}
		if v := s.xB[i] - s.ub[j]; v > worst {
			worst = v
		}
	}
	return worst
}
