package lp

import "slices"

// Incrementally maintained reduced costs. Recomputing duals from scratch is
// O(m²) per iteration; the standard product-form update after a pivot is
// O(m + nnz), which dominates overall solver speed on the TVNEP models.

// recomputeReducedCosts refreshes s.d from the current basis: O(m² + nnz).
func (s *solver) recomputeReducedCosts() {
	s.computeDuals()
	for j := 0; j < s.N; j++ {
		if s.vstat[j] == vsBasic {
			s.d[j] = 0
			continue
		}
		s.d[j] = s.reducedCost(j)
	}
	s.dValid = true
	s.dFresh = true
}

// pivotRow fills s.arow[j] = (e_r·B⁻¹)·A_j for every column j (the r-th row
// of the simplex tableau; consumers skip basic columns). It exploits the
// sparsity of ρ = e_r·B⁻¹ twice: the scatter is row-wise — only matrix rows
// with a nonzero multiplier are touched — and every touched column is pushed
// onto the hyper-sparse index stack s.arowNZ, so the downstream ratio test,
// reduced-cost update and Devex update iterate the row's support instead of
// all N columns. Entries of the previous pivot row are cleared through the
// old stack, never by a full sweep.
//
// The stack is left in discovery order: every consumer is insensitive to it
// — the long-step ratio test orders its breakpoints through a heap keyed by
// the strict (ratio, column) total order, and the reduced-cost and Devex
// updates touch each column independently — so the per-pivot sort this loop
// used to pay (the single hottest non-kernel cost on the benchmark models)
// buys nothing. The one exception is Bland's rule, whose anti-cycling
// guarantee is stated over ascending column order; its scan sorts here,
// on the rare degeneracy-triggered iterations that use it.
func (s *solver) pivotRow(r int) {
	s.btranRow(r, s.rho)
	for _, j := range s.arowNZ {
		s.arow[j] = 0
		s.arowTag[j] = false
	}
	s.arowNZ = s.arowNZ[:0]
	n, nm := s.inst.n, s.nm
	for i, rv := range s.rho {
		if rv == 0 {
			continue
		}
		idx, val := s.inst.rowData(i)
		for k, j := range idx {
			if !s.arowTag[j] {
				s.arowTag[j] = true
				s.arowNZ = append(s.arowNZ, j) //lint:allow hotalloc -- amortized sparse-row scratch; steady state is pre-reserved
			}
			s.arow[j] += rv * val[k]
		}
		// Columns appended after the row's storage was written live in the
		// row-wise overlay (see Instance.apRowIdx).
		if ap := s.inst.apRowIdx; i < len(ap) && ap[i] != nil {
			for k, j := range ap[i] {
				if !s.arowTag[j] {
					s.arowTag[j] = true
					s.arowNZ = append(s.arowNZ, j) //lint:allow hotalloc -- amortized sparse-row scratch; steady state is pre-reserved
				}
				s.arow[j] += rv * s.inst.apRowVal[i][k]
			}
		}
		s.arow[n+i] = -rv // slack column −e_i
		s.arow[nm+i] = rv // artificial column +e_i
		if !s.arowTag[n+i] {
			s.arowTag[n+i] = true
			s.arowNZ = append(s.arowNZ, int32(n+i)) //lint:allow hotalloc -- amortized sparse-row scratch; steady state is pre-reserved
		}
		if !s.arowTag[nm+i] {
			s.arowTag[nm+i] = true
			s.arowNZ = append(s.arowNZ, int32(nm+i)) //lint:allow hotalloc -- amortized sparse-row scratch; steady state is pre-reserved
		}
	}
	if s.bland {
		slices.Sort(s.arowNZ)
	}
}

// applyPivotToReducedCosts updates s.d for the pivot in which column q
// enters at row r (whose basic variable `leaving` exits). Must run after
// pivotRow(r) and BEFORE the basis swap (it relies on the pre-pivot
// nonbasic set). The dual update is y' = y + θ·e_r·B⁻¹ with θ = d_q/α_rq,
// hence d_j' = d_j − θ·α_row_j, d_leaving' = −θ and d_q' = 0. Columns off
// the pivot row's support have α_row_j = 0 and are untouched, so the loop
// runs over the hyper-sparse stack.
func (s *solver) applyPivotToReducedCosts(q, leaving int) {
	theta := s.d[q] / s.arow[q]
	for _, j := range s.arowNZ {
		if s.vstat[j] == vsBasic || int(j) == q {
			continue
		}
		if a := s.arow[j]; a != 0 {
			s.d[j] -= theta * a
		}
	}
	s.d[leaving] = -theta
	s.d[q] = 0
	s.dFresh = false
}
