package lp

// Incrementally maintained reduced costs. Recomputing duals from scratch is
// O(m²) per iteration; the standard product-form update after a pivot is
// O(m + nnz), which dominates overall solver speed on the TVNEP models.

// recomputeReducedCosts refreshes s.d from the current basis: O(m² + nnz).
func (s *solver) recomputeReducedCosts() {
	s.computeDuals()
	for j := 0; j < s.N; j++ {
		if s.vstat[j] == vsBasic {
			s.d[j] = 0
			continue
		}
		s.d[j] = s.reducedCost(j)
	}
	s.dValid = true
	s.dFresh = true
}

// pivotRow fills s.arow[j] = (e_r·B⁻¹)·A_j for every column j (the r-th row
// of the simplex tableau; consumers skip basic columns). It exploits the
// sparsity of ρ = e_r·B⁻¹ by scattering row-wise — only matrix rows with a
// nonzero multiplier are touched — rather than gathering per column.
func (s *solver) pivotRow(r int) {
	s.btranRow(r, s.rho)
	for j := range s.arow {
		s.arow[j] = 0
	}
	n, nm := s.inst.n, s.nm
	for i, rv := range s.rho {
		if rv == 0 {
			continue
		}
		idx, val := s.inst.rowData(i)
		for k, j := range idx {
			s.arow[j] += rv * val[k]
		}
		s.arow[n+i] = -rv // slack column −e_i
		s.arow[nm+i] = rv // artificial column +e_i
	}
}

// applyPivotToReducedCosts updates s.d for the pivot in which column q
// enters at row r (whose basic variable `leaving` exits). Must run after
// pivotRow(r) and BEFORE the basis swap (it relies on the pre-pivot
// nonbasic set). The dual update is y' = y + θ·e_r·B⁻¹ with θ = d_q/α_rq,
// hence d_j' = d_j − θ·α_row_j, d_leaving' = −θ and d_q' = 0.
func (s *solver) applyPivotToReducedCosts(q, leaving int) {
	theta := s.d[q] / s.arow[q]
	for j := 0; j < s.N; j++ {
		if s.vstat[j] == vsBasic || j == q {
			continue
		}
		if a := s.arow[j]; a != 0 {
			s.d[j] -= theta * a
		}
	}
	s.d[leaving] = -theta
	s.d[q] = 0
	s.dFresh = false
}
