// Package lp implements a linear-programming solver: a bounded-variable
// revised simplex method with a two-phase primal algorithm, a dual simplex
// for warm-started re-solves (used heavily by the branch-and-bound MIP
// solver in internal/mip), Bland's rule as an anti-cycling fallback and
// periodic basis refactorization for numerical stability.
//
// Problems are stated over structural columns x with bounds l ≤ x ≤ u and
// ranged rows rlb ≤ a·x ≤ rub; internally every row receives a slack
// ("row activity") variable so the system becomes A·x − s = 0.
package lp

import (
	"context"
	"fmt"
	"math"
	"time"

	"tvnep/internal/linalg/sparselu"
	"tvnep/internal/numtol"
)

// Inf is the canonical infinity used for absent bounds.
var Inf = math.Inf(1)

// Sense describes the optimization direction of a Problem.
type Sense int

const (
	// Minimize the objective (the internal canonical form).
	Minimize Sense = iota
	// Maximize the objective.
	Maximize
)

// Problem is a builder for an LP in the form
//
//	opt  c·x + offset
//	s.t. rlb_i ≤ a_i·x ≤ rub_i   for every row i
//	     lb_j ≤ x_j ≤ ub_j       for every column j
type Problem struct {
	Sense     Sense
	Obj       []float64 // length = number of columns
	ObjOffset float64
	ColLB     []float64
	ColUB     []float64
	ColName   []string

	RowLB   []float64
	RowUB   []float64
	RowName []string
	rows    []sparseRow
}

type sparseRow struct {
	idx []int32
	val []float64
}

// NewProblem returns an empty minimization problem.
func NewProblem() *Problem { return &Problem{Sense: Minimize} }

// NumCols reports the number of structural columns.
func (p *Problem) NumCols() int { return len(p.Obj) }

// NumRows reports the number of rows.
func (p *Problem) NumRows() int { return len(p.rows) }

// AddCol appends a column with the given objective coefficient and bounds,
// returning its index. lb may be -Inf and ub may be +Inf.
func (p *Problem) AddCol(obj, lb, ub float64, name string) int {
	if lb > ub {
		panic(fmt.Sprintf("lp: column %q has lb %v > ub %v", name, lb, ub))
	}
	p.Obj = append(p.Obj, obj)
	p.ColLB = append(p.ColLB, lb)
	p.ColUB = append(p.ColUB, ub)
	p.ColName = append(p.ColName, name)
	return len(p.Obj) - 1
}

// AddRow appends a ranged row rlb ≤ Σ val_k·x_{idx_k} ≤ rub and returns its
// index. Duplicate column indices within one row are merged.
func (p *Problem) AddRow(idx []int32, val []float64, rlb, rub float64, name string) int {
	if len(idx) != len(val) {
		panic("lp: AddRow index/value length mismatch")
	}
	if rlb > rub {
		panic(fmt.Sprintf("lp: row %q has rlb %v > rub %v", name, rlb, rub))
	}
	merged := map[int32]float64{}
	order := make([]int32, 0, len(idx))
	for k, j := range idx {
		if int(j) < 0 || int(j) >= p.NumCols() {
			panic(fmt.Sprintf("lp: row %q references column %d out of range [0,%d)", name, j, p.NumCols()))
		}
		if _, seen := merged[j]; !seen {
			order = append(order, j)
		}
		merged[j] += val[k]
	}
	r := sparseRow{}
	for _, j := range order {
		if v := merged[j]; v != 0 {
			r.idx = append(r.idx, j)
			r.val = append(r.val, v)
		}
	}
	p.rows = append(p.rows, r)
	p.RowLB = append(p.RowLB, rlb)
	p.RowUB = append(p.RowUB, rub)
	p.RowName = append(p.RowName, name)
	return len(p.rows) - 1
}

// AddLE appends the row a·x ≤ rhs.
func (p *Problem) AddLE(idx []int32, val []float64, rhs float64, name string) int {
	return p.AddRow(idx, val, math.Inf(-1), rhs, name)
}

// AddGE appends the row a·x ≥ rhs.
func (p *Problem) AddGE(idx []int32, val []float64, rhs float64, name string) int {
	return p.AddRow(idx, val, rhs, Inf, name)
}

// AddEQ appends the row a·x = rhs.
func (p *Problem) AddEQ(idx []int32, val []float64, rhs float64, name string) int {
	return p.AddRow(idx, val, rhs, rhs, name)
}

// Row returns the coefficient slices of row i (shared storage; do not
// mutate).
func (p *Problem) Row(i int) ([]int32, []float64) { return p.rows[i].idx, p.rows[i].val }

// Status reports the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal basic solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means the constraints admit no solution.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded over the feasible set.
	StatusUnbounded
	// StatusIterLimit means the iteration limit was hit before convergence.
	StatusIterLimit
	// StatusNumeric means the solve was abandoned after an irrecoverable
	// numerical failure (e.g. a basis factorization that failed and could
	// not be repaired by a cold refactorization).
	StatusNumeric
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusIterLimit:
		return "iteration-limit"
	case StatusNumeric:
		return "numeric-failure"
	default:
		return fmt.Sprintf("lp.Status(%d)", int(s))
	}
}

// Basis is a snapshot of a simplex basis usable for warm starts.
type Basis struct {
	Basic  []int32 // column index basic in each row position
	Status []int8  // per-column nonbasic status (see vstatus constants)
}

// Clone deep-copies the basis.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	out := &Basis{Basic: make([]int32, len(b.Basic)), Status: make([]int8, len(b.Status))}
	copy(out.Basic, b.Basic)
	copy(out.Status, b.Status)
	return out
}

// Result holds the outcome of an LP solve.
type Result struct {
	Status     Status
	Obj        float64   // objective in the problem's original sense
	X          []float64 // structural column values (valid when Optimal)
	Duals      []float64 // row duals, in the problem's original sense
	Iterations int
	Basis      *Basis // final basis snapshot (valid when Optimal or Infeasible-by-dual)
	// BoundFlips counts nonbasic variables flipped between their bounds by
	// the long-step dual ratio test; each flip absorbs a would-be
	// (typically degenerate) pivot. RatioPasses counts the breakpoints the
	// long-step test walked through (flips plus entering choices).
	BoundFlips  int
	RatioPasses int
	// Factors is the LU factorization matching Basis, filled only when
	// Options.CaptureFactors is set (and Basis is). Handing it back as
	// Options.WarmFactors of a later solve warm-starts that solve without a
	// refactorization, and works across Instance clones, which is what
	// makes parallel branch-and-bound bit-reproducible.
	Factors *sparselu.Factors
	// WarmUsed reports that this result came from a successful warm-started
	// dual-simplex run (rather than the cold two-phase fallback). Unlike the
	// process-global Debug* counters it is attributable to one solve, which
	// is what lets concurrent callers (the admission engine, parallel
	// sweeps) account their own warm-start hit rates race-free.
	WarmUsed bool
	// BasisExtended reports that the warm start adopted a basis predating
	// rows appended with AppendRow AND extended its LU factors with a
	// bordered block (sparselu.Extend) instead of refactorizing — the
	// cutting-plane/admission hot-restart fast path.
	BasisExtended bool
	// ColumnsRemapped reports that the warm start adopted a basis predating
	// columns appended with AppendColumn, remapped onto the widened column
	// space — the column-generation hot-restart path. The appended columns
	// enter nonbasic, so the old factorization is reused unchanged.
	ColumnsRemapped bool
}

// Options tunes a solve.
type Options struct {
	MaxIters  int    // 0 → automatic (20000 + 50·(rows+cols))
	WarmBasis *Basis // if non-nil, attempt a dual-simplex warm start
	// WarmFactors, when non-nil, is the LU factorization of WarmBasis
	// (typically a prior Result.Factors). The warm start copies it into
	// solver-owned storage instead of refactorizing, making the solve a
	// pure function of its inputs. The caller must guarantee the factors
	// actually belong to WarmBasis.
	WarmFactors *sparselu.Factors
	// CaptureFactors asks the solve to return a deep copy of its final
	// basis factorization in Result.Factors (whenever Result.Basis is
	// filled).
	CaptureFactors bool
	FeasTol        float64
	OptTol         float64
	// Deadline aborts the solve (StatusIterLimit) once passed. Zero means
	// no deadline. Checked every few dozen iterations.
	Deadline time.Time
	// Context, when non-nil, aborts the solve (StatusIterLimit) as soon as
	// it is cancelled. Like Deadline it is checked at iteration
	// checkpoints, so cancellation takes effect within a few dozen simplex
	// iterations.
	Context context.Context
}

func (o *Options) withDefaults(rows, cols int) Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxIters <= 0 {
		out.MaxIters = 20000 + 50*(rows+cols)
	}
	if out.FeasTol <= 0 {
		out.FeasTol = numtol.LPFeasTol
	}
	if out.OptTol <= 0 {
		out.OptTol = numtol.LPOptTol
	}
	return out
}

// Solve solves the problem from scratch (or from opts.WarmBasis when given).
// Cold solves first run the presolve reductions (see presolve.go) and map
// the reduced solution back; warm-started solves skip presolve because the
// supplied basis is stated over the unreduced problem.
func Solve(p *Problem, opts *Options) Result {
	if opts == nil || opts.WarmBasis == nil {
		if ps := presolve(p); ps != nil {
			return ps.solve(opts)
		}
	}
	inst := NewInstance(p)
	return inst.Solve(opts)
}
