package lp

import (
	"math"
	"math/rand"
	"testing"
)

// warmCounters snapshots the package debug counters around a block.
func warmCounters(f func()) (attempts, ok, cacheHits int64) {
	a0, o0, c0 := DebugWarmAttempts.Load(), DebugWarmOK.Load(), DebugCacheHits.Load()
	f()
	return DebugWarmAttempts.Load() - a0, DebugWarmOK.Load() - o0, DebugCacheHits.Load() - c0
}

// TestWarmStartCacheHit: re-solving on the same Instance from the basis it
// just returned must adopt the cached factorization (a cache hit) and
// succeed as a warm start.
func TestWarmStartCacheHit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, _ := buildRandomLP(rng, 8, 10)
	inst := NewInstance(p)
	res := inst.Solve(nil)
	if res.Status != StatusOptimal {
		t.Fatalf("cold status %v", res.Status)
	}
	attempts, ok, hits := warmCounters(func() {
		warm := inst.Solve(&Options{WarmBasis: res.Basis})
		if warm.Status != StatusOptimal {
			t.Fatalf("warm status %v", warm.Status)
		}
		if math.Abs(warm.Obj-res.Obj) > 1e-7*(1+math.Abs(res.Obj)) {
			t.Fatalf("warm obj %v vs cold %v", warm.Obj, res.Obj)
		}
	})
	if attempts != 1 || ok != 1 {
		t.Fatalf("warm attempts/ok = %d/%d, want 1/1", attempts, ok)
	}
	if hits < 1 {
		t.Fatalf("expected a factorization cache hit, got %d", hits)
	}
}

// TestWarmStartCacheMiss: a basis snapshot from a DIFFERENT Instance is a
// valid warm basis (dimensions match) but cannot hit this instance's
// factorization cache — the solver must refactorize and still succeed.
func TestWarmStartCacheMiss(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p, _ := buildRandomLP(rng, 8, 10)
	other := NewInstance(p)
	res := other.Solve(nil)
	if res.Status != StatusOptimal {
		t.Fatalf("cold status %v", res.Status)
	}
	inst := NewInstance(p)
	attempts, ok, hits := warmCounters(func() {
		warm := inst.Solve(&Options{WarmBasis: res.Basis.Clone()})
		if warm.Status != StatusOptimal {
			t.Fatalf("warm status %v", warm.Status)
		}
		if math.Abs(warm.Obj-res.Obj) > 1e-7*(1+math.Abs(res.Obj)) {
			t.Fatalf("warm obj %v vs cold %v", warm.Obj, res.Obj)
		}
	})
	if attempts != 1 || ok != 1 {
		t.Fatalf("warm attempts/ok = %d/%d, want 1/1", attempts, ok)
	}
	if hits != 0 {
		t.Fatalf("cache hits = %d on a fresh instance, want 0", hits)
	}
}

// TestWarmStartIncompatibleBasis: a basis of the wrong dimensions must be
// rejected by adoptBasis and fall back to a conclusive cold solve, with the
// attempt counted but not the success.
func TestWarmStartIncompatibleBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p, _ := buildRandomLP(rng, 8, 10)
	small, _ := buildRandomLP(rng, 4, 5)
	smallRes := NewInstance(small).Solve(nil)
	if smallRes.Status != StatusOptimal {
		t.Fatalf("small cold status %v", smallRes.Status)
	}
	cold := NewInstance(p).Solve(nil)

	inst := NewInstance(p)
	attempts, ok, _ := warmCounters(func() {
		warm := inst.Solve(&Options{WarmBasis: smallRes.Basis})
		if warm.Status != StatusOptimal {
			t.Fatalf("fallback status %v", warm.Status)
		}
		if math.Abs(warm.Obj-cold.Obj) > 1e-7*(1+math.Abs(cold.Obj)) {
			t.Fatalf("fallback obj %v vs cold %v", warm.Obj, cold.Obj)
		}
	})
	if attempts != 1 || ok != 0 {
		t.Fatalf("warm attempts/ok = %d/%d, want 1/0 (incompatible basis)", attempts, ok)
	}

	// A duplicated basic entry must also be rejected.
	bad := cold.Basis.Clone()
	if len(bad.Basic) >= 2 {
		bad.Basic[1] = bad.Basic[0]
		attempts, ok, _ = warmCounters(func() {
			if r := inst.Solve(&Options{WarmBasis: bad}); r.Status != StatusOptimal {
				t.Fatalf("fallback status %v", r.Status)
			}
		})
		if attempts != 1 || ok != 0 {
			t.Fatalf("warm attempts/ok = %d/%d, want 1/0 (duplicate basic)", attempts, ok)
		}
	}
}

// TestFactorizationCacheRing: the cache keeps the last 4 snapshots keyed by
// pointer; a 5th evicts the oldest (FIFO ring), while the newest 4 all hit.
func TestFactorizationCacheRing(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p, _ := buildRandomLP(rng, 10, 8)
	inst := NewInstance(p)
	res := inst.Solve(nil)
	if res.Status != StatusOptimal {
		t.Fatalf("cold status %v", res.Status)
	}

	// Produce 5 distinct snapshots by nudging bounds and re-solving warm;
	// each optimal solve stores its own basis in the ring.
	bases := []*Basis{res.Basis}
	for k := 0; len(bases) < 5 && k < 20; k++ {
		j := rng.Intn(p.NumCols())
		if math.IsInf(p.ColUB[j], 1) || p.ColUB[j]-p.ColLB[j] < 1e-6 {
			continue
		}
		inst.SetColBounds(j, p.ColLB[j], p.ColLB[j]+(p.ColUB[j]-p.ColLB[j])*0.9)
		r := inst.Solve(&Options{WarmBasis: bases[len(bases)-1]})
		if r.Status != StatusOptimal || r.Basis == bases[len(bases)-1] {
			continue
		}
		bases = append(bases, r.Basis)
	}
	if len(bases) < 5 {
		t.Skip("could not generate 5 distinct basis snapshots")
	}
	if inst.cachedFactors(bases[0]) != nil {
		t.Fatal("oldest snapshot still cached after 4 newer stores (ring should evict FIFO)")
	}
	for i := 1; i < 5; i++ {
		if inst.cachedFactors(bases[i]) == nil {
			t.Fatalf("snapshot %d of the last 4 missing from the cache ring", i)
		}
	}
}
