package lp

import (
	"math"
	"math/rand"
	"testing"
)

// warmCounters snapshots the package debug counters around a block.
func warmCounters(f func()) (attempts, ok, handoffs int64) {
	a0, o0, h0 := DebugWarmAttempts.Load(), DebugWarmOK.Load(), DebugFactorHandoffs.Load()
	f()
	return DebugWarmAttempts.Load() - a0, DebugWarmOK.Load() - o0, DebugFactorHandoffs.Load() - h0
}

// TestWarmStartRefactorizes: a warm start from a bare basis (no factor
// handoff) must refactorize from the instance data and succeed.
func TestWarmStartRefactorizes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p, _ := buildRandomLP(rng, 8, 10)
	inst := NewInstance(p)
	res := inst.Solve(nil)
	if res.Status != StatusOptimal {
		t.Fatalf("cold status %v", res.Status)
	}
	attempts, ok, handoffs := warmCounters(func() {
		warm := inst.Solve(&Options{WarmBasis: res.Basis})
		if warm.Status != StatusOptimal {
			t.Fatalf("warm status %v", warm.Status)
		}
		if math.Abs(warm.Obj-res.Obj) > 1e-7*(1+math.Abs(res.Obj)) {
			t.Fatalf("warm obj %v vs cold %v", warm.Obj, res.Obj)
		}
	})
	if attempts != 1 || ok != 1 {
		t.Fatalf("warm attempts/ok = %d/%d, want 1/1", attempts, ok)
	}
	if handoffs != 0 {
		t.Fatalf("factor handoffs = %d without WarmFactors, want 0", handoffs)
	}
}

// TestWarmStartFactorHandoff: supplying the captured factorization alongside
// the basis must be adopted as a handoff (no refactorization) and produce
// the same optimum — including on a DIFFERENT Instance of the same problem,
// which is what the parallel branch-and-bound workers rely on.
func TestWarmStartFactorHandoff(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p, _ := buildRandomLP(rng, 8, 10)
	other := NewInstance(p)
	res := other.Solve(&Options{CaptureFactors: true})
	if res.Status != StatusOptimal {
		t.Fatalf("cold status %v", res.Status)
	}
	if res.Factors == nil {
		t.Fatal("CaptureFactors set but Result.Factors is nil")
	}
	for _, inst := range []*Instance{other, NewInstance(p)} {
		attempts, ok, handoffs := warmCounters(func() {
			warm := inst.Solve(&Options{WarmBasis: res.Basis.Clone(), WarmFactors: res.Factors})
			if warm.Status != StatusOptimal {
				t.Fatalf("warm status %v", warm.Status)
			}
			if math.Abs(warm.Obj-res.Obj) > 1e-7*(1+math.Abs(res.Obj)) {
				t.Fatalf("warm obj %v vs cold %v", warm.Obj, res.Obj)
			}
		})
		if attempts != 1 || ok != 1 {
			t.Fatalf("warm attempts/ok = %d/%d, want 1/1", attempts, ok)
		}
		if handoffs != 1 {
			t.Fatalf("factor handoffs = %d, want 1", handoffs)
		}
	}
}

// TestCapturedFactorsOutliveSolver: captured factors must be a deep copy —
// later solves on the same instance reuse the solver's internal buffers, and
// must not corrupt a handoff captured earlier (siblings of a
// branch-and-bound node share the parent's factors read-only).
func TestCapturedFactorsOutliveSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p, _ := buildRandomLP(rng, 8, 10)
	inst := NewInstance(p)
	res := inst.Solve(&Options{CaptureFactors: true})
	if res.Status != StatusOptimal || res.Factors == nil {
		t.Fatalf("cold status %v (factors %v)", res.Status, res.Factors != nil)
	}

	// Churn the solver state with perturbed re-solves.
	for k := 0; k < 4; k++ {
		j := rng.Intn(p.NumCols())
		if math.IsInf(p.ColUB[j], 1) || p.ColUB[j]-p.ColLB[j] < 1e-6 {
			continue
		}
		inst.SetColBounds(j, p.ColLB[j], p.ColLB[j]+(p.ColUB[j]-p.ColLB[j])*0.9)
		inst.Solve(&Options{WarmBasis: res.Basis.Clone(), WarmFactors: res.Factors})
	}

	// The original handoff must still reproduce the original optimum on a
	// fresh instance.
	fresh := NewInstance(p)
	warm := fresh.Solve(&Options{WarmBasis: res.Basis.Clone(), WarmFactors: res.Factors})
	if warm.Status != StatusOptimal {
		t.Fatalf("warm status %v after churn", warm.Status)
	}
	if math.Abs(warm.Obj-res.Obj) > 1e-7*(1+math.Abs(res.Obj)) {
		t.Fatalf("warm obj %v vs original %v — captured factors were clobbered", warm.Obj, res.Obj)
	}
}

// TestWarmStartIncompatibleBasis: a basis of the wrong dimensions must be
// rejected by adoptBasis and fall back to a conclusive cold solve, with the
// attempt counted but not the success.
func TestWarmStartIncompatibleBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p, _ := buildRandomLP(rng, 8, 10)
	small, _ := buildRandomLP(rng, 4, 5)
	smallRes := NewInstance(small).Solve(nil)
	if smallRes.Status != StatusOptimal {
		t.Fatalf("small cold status %v", smallRes.Status)
	}
	cold := NewInstance(p).Solve(nil)

	inst := NewInstance(p)
	attempts, ok, _ := warmCounters(func() {
		warm := inst.Solve(&Options{WarmBasis: smallRes.Basis})
		if warm.Status != StatusOptimal {
			t.Fatalf("fallback status %v", warm.Status)
		}
		if math.Abs(warm.Obj-cold.Obj) > 1e-7*(1+math.Abs(cold.Obj)) {
			t.Fatalf("fallback obj %v vs cold %v", warm.Obj, cold.Obj)
		}
	})
	if attempts != 1 || ok != 0 {
		t.Fatalf("warm attempts/ok = %d/%d, want 1/0 (incompatible basis)", attempts, ok)
	}

	// A duplicated basic entry must also be rejected.
	bad := cold.Basis.Clone()
	if len(bad.Basic) >= 2 {
		bad.Basic[1] = bad.Basic[0]
		attempts, ok, _ = warmCounters(func() {
			if r := inst.Solve(&Options{WarmBasis: bad}); r.Status != StatusOptimal {
				t.Fatalf("fallback status %v", r.Status)
			}
		})
		if attempts != 1 || ok != 0 {
			t.Fatalf("warm attempts/ok = %d/%d, want 1/0 (duplicate basic)", attempts, ok)
		}
	}
}

// TestWarmStartChain: a sequence of bound nudges re-solved warm, each
// handing the previous solve's factors forward, must track the cold solves
// exactly — the steady-state pattern of the admission engine.
func TestWarmStartChain(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p, _ := buildRandomLP(rng, 10, 8)
	inst := NewInstance(p)
	res := inst.Solve(&Options{CaptureFactors: true})
	if res.Status != StatusOptimal {
		t.Fatalf("cold status %v", res.Status)
	}

	cold := NewInstance(p)
	steps := 0
	for k := 0; k < 20 && steps < 5; k++ {
		j := rng.Intn(p.NumCols())
		if math.IsInf(p.ColUB[j], 1) || p.ColUB[j]-p.ColLB[j] < 1e-6 {
			continue
		}
		lo := p.ColLB[j]
		hi := lo + (p.ColUB[j]-lo)*(0.5+0.4*rng.Float64())
		inst.SetColBounds(j, lo, hi)
		cold.SetColBounds(j, lo, hi)

		warm := inst.Solve(&Options{WarmBasis: res.Basis, WarmFactors: res.Factors, CaptureFactors: true})
		ref := cold.Solve(nil)
		if warm.Status != ref.Status {
			t.Fatalf("step %d: warm status %v vs cold %v", steps, warm.Status, ref.Status)
		}
		if warm.Status == StatusOptimal {
			if math.Abs(warm.Obj-ref.Obj) > 1e-7*(1+math.Abs(ref.Obj)) {
				t.Fatalf("step %d: warm obj %v vs cold %v", steps, warm.Obj, ref.Obj)
			}
			res = warm
		}
		steps++
	}
	if steps == 0 {
		t.Skip("no perturbable columns")
	}
}
