package lp

import "math"

// Pricing. The primal uses Devex (Harris 1973): approximate steepest-edge
// weights maintained against a reference framework, pricing entering columns
// by d_j²/w_j instead of the raw Dantzig rule |d_j|. The dual uses dual
// steepest-edge (Forrest–Goldfarb 1992) in its cheap-initialization form
// (Koberstein): leaving rows are priced by infeasibility²/β_i where
// β_i ≈ ‖B⁻ᵀe_i‖², weights start at 1 and are corrected incrementally —
// with the leaving row's weight replaced by its exact value each pivot,
// since the pivot row ρ_r = B⁻ᵀe_r is computed anyway.

const (
	// devexMax bounds the primal weights; exceeding it resets the reference
	// framework (all weights back to 1).
	devexMax = 1e8
	// priceSectionMin is the smallest sectional-scan size of the primal's
	// partial pricing; tiny problems degrade to a full scan. The floor is
	// deliberately wide: on the TVNEP models narrow sections pick weak
	// entering columns whose effect compounds through the branch-and-bound
	// trajectory (measured as 2-5x the node count), while the scan itself is
	// a cheap contiguous pass.
	priceSectionMin = 384
)

// devexPrimalUpdate refreshes the entering-column weights for the pivot in
// which column q enters at row r. Must run after pivotRow(r) (it reads
// s.arow over the hyper-sparse stack s.arowNZ) and before the basis swap
// (it relies on the pre-pivot nonbasic set). leaving is the column exiting
// the basis. Columns off the pivot row's support keep their weights, so the
// loop runs over the stack instead of all N columns.
func (s *solver) devexPrimalUpdate(q, r, leaving int) {
	arq := s.arow[q]
	if arq == 0 {
		return
	}
	wq := s.devexW[q]
	scale := wq / (arq * arq)
	reset := false
	for _, j := range s.arowNZ {
		if s.vstat[j] == vsBasic || int(j) == q {
			continue
		}
		a := s.arow[j]
		if a == 0 {
			continue
		}
		if cand := a * a * scale; cand > s.devexW[j] {
			if cand > devexMax {
				reset = true
				break
			}
			s.devexW[j] = cand
		}
	}
	if reset {
		for j := range s.devexW {
			s.devexW[j] = 1
		}
		return
	}
	if wl := scale; wl > 1 {
		s.devexW[leaving] = wl
	} else {
		s.devexW[leaving] = 1
	}
}

// dseUpdate refreshes the dual steepest-edge weights β_i = ‖B⁻ᵀe_i‖² for
// the pivot in which column q enters at row r. alpha is the FTRAN'd
// entering column; s.rho must still hold the pivot row B⁻ᵀe_r (from
// pivotRow) and s.tau receives B⁻¹ρ_r, the one extra FTRAN this rule costs
// per iteration. Must run before the basis swap.
//
// With β_r taken exactly as ‖ρ_r‖² (free — ρ_r is already computed), the
// Forrest–Goldfarb recurrence for the post-pivot weights is
//
//	β̂_r = β_r/α_r²
//	β̂_i = β_i − 2·(α_i/α_r)·τ_i + (α_i/α_r)²·β_r,  τ = B⁻¹ρ_r
//
// so rows untouched by the entering column (α_i = 0) keep their weights.
// The exact β_r each iteration is what lets the cheap all-ones
// initialization converge to true steepest-edge behavior after a warm
// start.
//
// The recurrence is only exact when β_i itself is exact. Under the cheap
// initialization a stale (too small) β_i can drive the computed value
// negative — the floor would then overprice that row by orders of magnitude
// and pricing thrashes. The standard safeguard clamps the update from below
// at (α_i/α_r)²·β_r, the part of the new row norm contributed by the pivot
// row, which keeps stale weights from collapsing.
func (s *solver) dseUpdate(alpha []float64, r int) {
	ar := alpha[r]
	if ar == 0 {
		return
	}
	betaR := 0.0
	for _, v := range s.rho {
		betaR += v * v
	}
	copy(s.tau, s.rho)
	s.fac.Ftran(s.tau)
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		a := alpha[i]
		if a == 0 {
			continue
		}
		k := a / ar
		nb := s.dualW[i] - 2*k*s.tau[i] + k*k*betaR
		if low := k * k * betaR; nb < low {
			nb = low
		}
		if nb < dseFloor {
			nb = dseFloor
		}
		s.dualW[i] = nb
	}
	nb := betaR / (ar * ar)
	if nb < dseFloor {
		nb = dseFloor
	}
	s.dualW[r] = nb
}

// priceEntering selects an entering column, returning (-1, 0) at
// (partial-pricing-certified) optimality.
//
// Under Bland's rule the full column range is scanned and the first eligible
// index wins (the anti-cycling guarantee). Otherwise the scan is sectional
// partial pricing: starting from a rotating cursor, columns are examined one
// section at a time and the first section containing an eligible candidate
// yields the one with the best Devex score d²/w. Only when every section
// comes up empty — a full rescan of all N columns — is optimality declared,
// so partial pricing never terminates early.
func (s *solver) priceEntering() (int, float64) {
	tol := s.opts.OptTol
	if s.bland {
		for j := 0; j < s.N; j++ {
			st := s.vstat[j]
			if st == vsBasic || s.fixedCol(j) {
				continue // fixed columns can never move
			}
			d := s.d[j]
			var viol float64
			switch st {
			case vsLower:
				viol = -d
			case vsUpper:
				viol = d
			case vsFree:
				viol = math.Abs(d)
			}
			if viol > tol {
				return j, d // Bland: first eligible index
			}
		}
		return -1, 0
	}
	section := s.N / 8
	if section < priceSectionMin {
		section = priceSectionMin
	}
	j := s.priceCursor
	if j >= s.N {
		j = 0
	}
	best, bestScore := -1, 0.0
	for scanned := 0; scanned < s.N; {
		end := scanned + section
		if end > s.N {
			end = s.N
		}
		for ; scanned < end; scanned++ {
			jj := j
			if j++; j == s.N {
				j = 0
			}
			st := s.vstat[jj]
			if st == vsBasic || s.fixedCol(jj) {
				continue
			}
			d := s.d[jj]
			var viol float64
			switch st {
			case vsLower:
				viol = -d
			case vsUpper:
				viol = d
			case vsFree:
				viol = math.Abs(d)
			}
			if viol <= tol {
				continue
			}
			if score := viol * viol / s.devexW[jj]; score > bestScore {
				best, bestScore = jj, score
			}
		}
		if best != -1 {
			s.priceCursor = j
			return best, s.d[best]
		}
	}
	return -1, 0
}
