package lp

import "math"

// Devex pricing (Harris 1973): approximate steepest-edge weights maintained
// against a reference framework. The primal prices entering columns by
// d_j²/w_j instead of the raw Dantzig rule |d_j|; the dual prices leaving
// rows by infeasibility²/w_i. Weights start at 1 (the reference framework is
// the current nonbasic set), are cheap to update from quantities the pivot
// already computes (the pivot row for the primal, the FTRAN column for the
// dual), and the framework is reset whenever a weight overflows its budget.

const (
	// devexMax bounds the weights; exceeding it resets the reference
	// framework (all weights back to 1).
	devexMax = 1e8
	// priceSectionMin is the smallest sectional-scan size of the primal's
	// partial pricing; tiny problems degrade to a full scan.
	priceSectionMin = 128
)

// devexPrimalUpdate refreshes the entering-column weights for the pivot in
// which column q enters at row r. Must run after pivotRow(r) (it reads
// s.arow) and before the basis swap (it relies on the pre-pivot nonbasic
// set). leaving is the column exiting the basis.
func (s *solver) devexPrimalUpdate(q, r, leaving int) {
	arq := s.arow[q]
	if arq == 0 {
		return
	}
	wq := s.devexW[q]
	scale := wq / (arq * arq)
	reset := false
	for j := 0; j < s.N; j++ {
		if s.vstat[j] == vsBasic || j == q {
			continue
		}
		a := s.arow[j]
		if a == 0 {
			continue
		}
		if cand := a * a * scale; cand > s.devexW[j] {
			if cand > devexMax {
				reset = true
				break
			}
			s.devexW[j] = cand
		}
	}
	if reset {
		for j := range s.devexW {
			s.devexW[j] = 1
		}
		return
	}
	if wl := scale; wl > 1 {
		s.devexW[leaving] = wl
	} else {
		s.devexW[leaving] = 1
	}
}

// devexDualUpdate refreshes the leaving-row weights for the pivot in which
// the basic variable of row r leaves. alpha is the FTRAN'd entering column.
// Must run before the basis swap.
func (s *solver) devexDualUpdate(alpha []float64, r int) {
	ar := alpha[r]
	if ar == 0 {
		return
	}
	wr := s.dualW[r]
	scale := wr / (ar * ar)
	reset := false
	for i := 0; i < s.m; i++ {
		if i == r {
			continue
		}
		a := alpha[i]
		if a == 0 {
			continue
		}
		if cand := a * a * scale; cand > s.dualW[i] {
			if cand > devexMax {
				reset = true
				break
			}
			s.dualW[i] = cand
		}
	}
	if reset {
		for i := range s.dualW {
			s.dualW[i] = 1
		}
		return
	}
	if scale > 1 {
		s.dualW[r] = scale
	} else {
		s.dualW[r] = 1
	}
}

// priceEntering selects an entering column, returning (-1, 0) at
// (partial-pricing-certified) optimality.
//
// Under Bland's rule the full column range is scanned and the first eligible
// index wins (the anti-cycling guarantee). Otherwise the scan is sectional
// partial pricing: starting from a rotating cursor, columns are examined one
// section at a time and the first section containing an eligible candidate
// yields the one with the best Devex score d²/w. Only when every section
// comes up empty — a full rescan of all N columns — is optimality declared,
// so partial pricing never terminates early.
func (s *solver) priceEntering() (int, float64) {
	tol := s.opts.OptTol
	if s.bland {
		for j := 0; j < s.N; j++ {
			st := s.vstat[j]
			if st == vsBasic || s.fixedCol(j) {
				continue // fixed columns can never move
			}
			d := s.d[j]
			var viol float64
			switch st {
			case vsLower:
				viol = -d
			case vsUpper:
				viol = d
			case vsFree:
				viol = math.Abs(d)
			}
			if viol > tol {
				return j, d // Bland: first eligible index
			}
		}
		return -1, 0
	}
	section := s.N / 8
	if section < priceSectionMin {
		section = priceSectionMin
	}
	j := s.priceCursor
	if j >= s.N {
		j = 0
	}
	best, bestScore := -1, 0.0
	for scanned := 0; scanned < s.N; {
		end := scanned + section
		if end > s.N {
			end = s.N
		}
		for ; scanned < end; scanned++ {
			jj := j
			if j++; j == s.N {
				j = 0
			}
			st := s.vstat[jj]
			if st == vsBasic || s.fixedCol(jj) {
				continue
			}
			d := s.d[jj]
			var viol float64
			switch st {
			case vsLower:
				viol = -d
			case vsUpper:
				viol = d
			case vsFree:
				viol = math.Abs(d)
			}
			if viol <= tol {
				continue
			}
			if score := viol * viol / s.devexW[jj]; score > bestScore {
				best, bestScore = jj, score
			}
		}
		if best != -1 {
			s.priceCursor = j
			return best, s.d[best]
		}
	}
	return -1, 0
}
