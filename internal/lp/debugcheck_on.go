//go:build debugchecks

package lp

import (
	"fmt"
	"math"

	"tvnep/internal/numtol"
)

// debugVerifyResult re-checks every optimal result against the instance's
// own row and bound data and panics on a violation. It is compiled in only
// under the debugchecks build tag (`go test -tags debugchecks ./...`), so
// the release solver pays nothing; with the tag on, every LP solve in the
// process — including each branch-and-bound node relaxation — runs through
// this assertion. The tolerance is deliberately loose (catch wrong answers,
// not honest roundoff); the precise certificate lives in internal/certify.
func debugVerifyResult(inst *Instance, res *Result) {
	if res.Status != StatusOptimal || res.X == nil {
		return
	}
	// Loose acceptance: two orders of magnitude beyond the solver's own
	// feasibility tolerance.
	const tol = 100 * numtol.LPFeasTol
	for j := 0; j < inst.n; j++ {
		x := res.X[j]
		if x < inst.lb[j]-tol*(1+math.Abs(inst.lb[j])) || x > inst.ub[j]+tol*(1+math.Abs(inst.ub[j])) {
			panic(fmt.Sprintf("lp debugchecks: column %d value %v outside [%v, %v]",
				j, x, inst.lb[j], inst.ub[j]))
		}
	}
	for i := 0; i < inst.m; i++ {
		// rowData is stored in the solver's scaled units; check the scaled
		// identity act' = r_i·(A·x) against the scaled row bounds. On an
		// unscaled instance the scales are identity.
		idx, val := inst.rowData(i)
		act := 0.0
		rlb, rub := inst.lb[inst.n+i], inst.ub[inst.n+i]
		if inst.scaled {
			for k, j := range idx {
				act += val[k] * res.X[j] * inst.colScaleInv[j]
			}
			if i < len(inst.apRowIdx) {
				// Columns appended after the row (see Instance.apRowIdx).
				for k, j := range inst.apRowIdx[i] {
					act += inst.apRowVal[i][k] * res.X[j] * inst.colScaleInv[j]
				}
			}
			rs := inst.rowScale[i]
			rlb *= rs
			rub *= rs
		} else {
			for k, j := range idx {
				act += val[k] * res.X[j]
			}
			if i < len(inst.apRowIdx) {
				for k, j := range inst.apRowIdx[i] {
					act += inst.apRowVal[i][k] * res.X[j]
				}
			}
		}
		if act < rlb-tol*(1+math.Abs(rlb)) || act > rub+tol*(1+math.Abs(rub)) {
			panic(fmt.Sprintf("lp debugchecks: row %d activity %v outside [%v, %v]",
				i, act, rlb, rub))
		}
	}
}
