package lp

import (
	"math"
	"sync/atomic"

	"tvnep/internal/numtol"
)

// Solve optimizes the instance under its current column bounds. If
// opts.WarmBasis is set and compatible, a dual-simplex warm start is
// attempted first; any failure falls back to a cold two-phase primal solve.
// Under the debugchecks build tag every optimal result is additionally
// re-checked against the instance's row and bound data before it is
// returned (see debugcheck_on.go).
//
//det:entry
func (inst *Instance) Solve(opts *Options) Result {
	res := inst.solveDispatch(opts)
	debugVerifyResult(inst, &res)
	return res
}

func (inst *Instance) solveDispatch(opts *Options) Result {
	o := opts.withDefaults(inst.m, inst.n)

	if o.WarmBasis != nil {
		res, used, ok := inst.solveWarm(o)
		if ok {
			return res
		}
		// One shared budget: iterations burned by the failed warm attempt
		// come out of the cold fallback's allowance, so a warm-started
		// solve can never run up to twice MaxIters.
		o.MaxIters -= used
		if o.MaxIters <= 0 {
			return Result{Status: StatusIterLimit, Iterations: used}
		}
		res = inst.solveCold(o)
		res.Iterations += used
		return res
	}
	return inst.solveCold(o)
}

// Debug counters, safe for concurrent solves (each worker of a parallel
// sweep owns its own Instance, but these aggregates are shared). They
// quantify how often warm starts succeed and how they obtain their basis
// factorization.
var (
	DebugWarmAttempts atomic.Int64
	DebugWarmOK       atomic.Int64
	// DebugFactorHandoffs counts warm starts that adopted an explicitly
	// supplied Options.WarmFactors (the cache-independent handoff used by
	// the parallel branch-and-bound workers).
	DebugFactorHandoffs atomic.Int64
	// DebugBasisExtensions counts warm starts whose basis predated appended
	// rows and whose LU factors were extended with a bordered block instead
	// of refactorized (the lazy-cut hot-restart path).
	DebugBasisExtensions atomic.Int64
	// DebugColumnExtensions counts warm starts whose basis predated columns
	// appended with AppendColumn and was remapped onto the widened column
	// space with the old factorization reused (the column-generation
	// hot-restart path).
	DebugColumnExtensions atomic.Int64
)

// solveWarm attempts a dual-simplex warm start. The boolean result reports
// whether the attempt produced a conclusive answer; iters is the number of
// simplex iterations consumed either way, so an inconclusive attempt can be
// charged against the cold fallback's budget.
func (inst *Instance) solveWarm(o Options) (res Result, iters int, ok bool) {
	DebugWarmAttempts.Add(1)
	s := newSolver(inst, o)
	copy(s.cost, s.real)
	wb := o.WarmBasis
	extended := false
	remapped := false
	nOld := len(wb.Status) - 2*len(wb.Basic)
	if nOld != inst.n {
		// The basis predates columns appended by AppendColumn: remap it onto
		// the widened column space. The basic set is untouched, so the factor
		// handoff below still matches.
		if nOld < 0 || nOld > inst.n {
			return Result{}, 0, false
		}
		wb = inst.extendWarmStartCols(wb, nOld)
		remapped = true
	}
	if len(wb.Basic) < s.m {
		// The basis predates rows appended by AppendRow: extend it (new
		// slacks basic) and, when the factor handoff matches, extend the LU
		// factors too (into a solver-owned buffer, installed via s.preFac).
		// The extended point stays dual feasible, so the usual dual →
		// primal-polish restart below applies unchanged.
		eb := s.extendWarmStart(wb, o.WarmFactors)
		if eb == nil {
			return Result{}, 0, false
		}
		wb = eb
		extended = s.preFac != nil
		s.opts.WarmFactors = nil // preFac or refactorization, never a raw copy
	}
	if !s.adoptBasis(wb) {
		return Result{}, 0, false
	}
	DebugWarmOK.Add(1)
	if remapped {
		DebugColumnExtensions.Add(1)
	}
	// warmResult stamps the per-solve warm-start provenance onto a
	// successful result; see Result.WarmUsed/BasisExtended/ColumnsRemapped.
	warmResult := func(st Status) Result {
		r := s.result(st)
		r.WarmUsed = true
		r.BasisExtended = extended
		r.ColumnsRemapped = remapped
		return r
	}
	if remapped && !s.appendedColsDualFeasible(nOld, o.OptTol) {
		// An appended column prices in at the adopted point, so the point is
		// dual infeasible and the dual restart below would be unsound (its
		// phase logic assumes dual feasibility throughout). With only columns
		// appended the basic values are unchanged and the point stays primal
		// feasible — verify (branching may have moved bounds since the
		// snapshot) and optimize with the primal simplex directly.
		if s.primalInfeasibility() > 10*o.FeasTol {
			return Result{}, s.iters, false
		}
		s.dValid = false
		switch s.primal(o.MaxIters) {
		case iterOptimal:
			return warmResult(StatusOptimal), s.iters, true
		case iterUnbounded:
			return warmResult(StatusUnbounded), s.iters, true
		default:
			return Result{}, s.iters, false
		}
	}
	st := s.dual(o.MaxIters)
	switch st {
	case iterOptimal:
		// Polish: the dual run restored primal feasibility; a short primal
		// run certifies optimality (usually zero iterations). The two runs
		// share s.iters, so MaxIters bounds their sum.
		st2 := s.primal(o.MaxIters)
		switch st2 {
		case iterOptimal:
			return warmResult(StatusOptimal), s.iters, true
		case iterUnbounded:
			return warmResult(StatusUnbounded), s.iters, true
		default:
			return Result{}, s.iters, false
		}
	case iterInfeasible:
		return warmResult(StatusInfeasible), s.iters, true
	default:
		return Result{}, s.iters, false // numeric trouble or limit: retry cold
	}
}

// solveCold solves from scratch: a dual phase 1 from the all-slack basis
// restores primal feasibility, then the primal simplex optimizes the real
// objective. The classic artificial-variable two-phase primal remains as
// the fallback for runs the dual phase cannot finish.
func (inst *Instance) solveCold(o Options) Result {
	s := newSolver(inst, o)
	// Dual phase 1: the all-slack basis under zero costs is trivially dual
	// feasible, so the dual simplex restores primal feasibility directly —
	// no artificial variables, and with the long-step ratio test the
	// all-zero reduced costs make every breakpoint a tie, so the entering
	// column is simply the most stable pivot. An inconclusive run (numeric
	// trouble or a stall at the iteration budget) falls back to the
	// classic artificial-variable phase 1 on the remaining budget.
	if err := s.crashSlackBasis(); err != nil {
		return s.result(StatusNumeric)
	}
	s.dValid = false
	s.xbFresh = true
	switch s.dual(o.MaxIters) {
	case iterOptimal:
		for j := range s.cost {
			s.cost[j] = s.real[j]
		}
		s.dValid = false
		switch s.primal(o.MaxIters) {
		case iterOptimal:
			return s.finishOptimal(o)
		case iterUnbounded:
			return s.result(StatusUnbounded)
		default:
			return s.result(StatusIterLimit)
		}
	case iterInfeasible:
		return s.result(StatusInfeasible)
	}
	o.MaxIters -= s.iters
	if o.MaxIters <= 0 {
		return s.result(StatusIterLimit)
	}
	s = newSolver(inst, o)
	needPhase1, err := s.crashBasis()
	if err != nil {
		// No usable factorization: report the numerical failure instead of
		// iterating against a stale basis.
		return s.result(StatusNumeric)
	}
	if needPhase1 {
		// Phase 1: costs were installed by crashBasis (±1 on artificials).
		st := s.primal(o.MaxIters)
		if st == iterLimit {
			return s.result(StatusIterLimit)
		}
		if s.phase1Objective() > numtol.Phase1Tol {
			return s.result(StatusInfeasible)
		}
	}
	s.sealArtificials()
	for j := range s.cost {
		s.cost[j] = s.real[j]
	}
	s.dValid = false // phase costs changed
	st := s.primal(o.MaxIters)
	switch st {
	case iterOptimal:
		return s.finishOptimal(o)
	case iterUnbounded:
		return s.result(StatusUnbounded)
	default:
		return s.result(StatusIterLimit)
	}
}

// finishOptimal guards a claimed primal optimum against incremental drift:
// basic values are recomputed from a fresh factorization, and a residual
// infeasibility is repaired once with a dual-then-primal cleanup before the
// result is packaged.
func (s *solver) finishOptimal(o Options) Result {
	if err := s.refactor(); err == nil {
		s.computeXB()
	}
	if s.primalInfeasibility() > 10*o.FeasTol {
		if s.dual(o.MaxIters) == iterOptimal {
			s.primal(o.MaxIters)
		}
	}
	return s.result(StatusOptimal)
}

// result packages the solver state into a Result, removing the
// equilibration scaling: solutions, duals and objective are reported in the
// problem's original units (exactly — the scales are powers of two).
func (s *solver) result(status Status) Result {
	inst := s.inst
	res := Result{
		Status:      status,
		Iterations:  s.iters,
		BoundFlips:  s.boundFlips,
		RatioPasses: s.ratioPass,
	}
	if status == StatusOptimal {
		res.X = make([]float64, inst.n)
		for j := 0; j < inst.n; j++ {
			v := s.colValue(j)
			if inst.scaled {
				v *= inst.colScale[j] // x_j = c_j·x'_j, exact
			}
			// Snap to (original-unit) bounds within tolerance for clean
			// downstream use.
			if !math.IsInf(inst.lb[j], -1) && math.Abs(v-inst.lb[j]) < numtol.BoundSnapTol {
				v = inst.lb[j]
			} else if !math.IsInf(inst.ub[j], 1) && math.Abs(v-inst.ub[j]) < numtol.BoundSnapTol {
				v = inst.ub[j]
			}
			res.X[j] = v
		}
		obj := inst.p.ObjOffset
		min := 0.0
		for j := 0; j < inst.n; j++ {
			min += inst.objMin[j] * res.X[j]
		}
		if inst.negate {
			obj -= min
		} else {
			obj += min
		}
		res.Obj = obj
		s.computeDuals()
		res.Duals = make([]float64, s.m)
		if inst.scaled {
			for i := 0; i < s.m; i++ {
				res.Duals[i] = s.y[i] * inst.rowScale[i] // y_i = r_i·y'_i, exact
			}
		} else {
			copy(res.Duals, s.y)
		}
		if inst.negate {
			for i := range res.Duals {
				res.Duals[i] = -res.Duals[i]
			}
		}
	}
	if status == StatusOptimal || status == StatusInfeasible {
		res.Basis = s.snapshot()
		if s.opts.CaptureFactors {
			// Deep copy: the solver's factorization buffers are reused by
			// later solves on this instance, so the handed-off factors must
			// own their storage (siblings of a branch-and-bound node share
			// them read-only).
			res.Factors = s.fac.Clone()
		}
	}
	return res
}
