package lp

import (
	"math"
	"sync/atomic"

	"tvnep/internal/numtol"
)

// Solve optimizes the instance under its current column bounds. If
// opts.WarmBasis is set and compatible, a dual-simplex warm start is
// attempted first; any failure falls back to a cold two-phase primal solve.
// Under the debugchecks build tag every optimal result is additionally
// re-checked against the instance's row and bound data before it is
// returned (see debugcheck_on.go).
func (inst *Instance) Solve(opts *Options) Result {
	res := inst.solveDispatch(opts)
	debugVerifyResult(inst, &res)
	return res
}

func (inst *Instance) solveDispatch(opts *Options) Result {
	o := opts.withDefaults(inst.m, inst.n)

	if o.WarmBasis != nil {
		res, used, ok := inst.solveWarm(o)
		if ok {
			return res
		}
		// One shared budget: iterations burned by the failed warm attempt
		// come out of the cold fallback's allowance, so a warm-started
		// solve can never run up to twice MaxIters.
		o.MaxIters -= used
		if o.MaxIters <= 0 {
			return Result{Status: StatusIterLimit, Iterations: used}
		}
		res = inst.solveCold(o)
		res.Iterations += used
		return res
	}
	return inst.solveCold(o)
}

// Debug counters, safe for concurrent solves (each worker of a parallel
// sweep owns its own Instance, but these aggregates are shared). They
// quantify how often warm starts succeed and how often the basis-inverse
// cache avoids refactorization.
var (
	DebugWarmAttempts atomic.Int64
	DebugWarmOK       atomic.Int64
	DebugCacheHits    atomic.Int64
	// DebugFactorHandoffs counts warm starts that adopted an explicitly
	// supplied Options.WarmFactors (the cache-independent handoff used by
	// the parallel branch-and-bound workers).
	DebugFactorHandoffs atomic.Int64
	// DebugBasisExtensions counts warm starts whose basis predated appended
	// rows and whose LU factors were extended with a bordered block instead
	// of refactorized (the lazy-cut hot-restart path).
	DebugBasisExtensions atomic.Int64
)

// solveWarm attempts a dual-simplex warm start. The boolean result reports
// whether the attempt produced a conclusive answer; iters is the number of
// simplex iterations consumed either way, so an inconclusive attempt can be
// charged against the cold fallback's budget.
func (inst *Instance) solveWarm(o Options) (res Result, iters int, ok bool) {
	DebugWarmAttempts.Add(1)
	s := newSolver(inst, o)
	copy(s.cost, s.real)
	wb := o.WarmBasis
	extended := false
	if len(wb.Basic) < s.m {
		// The basis predates rows appended by AppendRow: extend it (new
		// slacks basic) and, when the factor handoff matches, extend the LU
		// factors too. The extended point stays dual feasible, so the usual
		// dual → primal-polish restart below applies unchanged.
		eb, ef := inst.extendWarmStart(wb, o.WarmFactors)
		if eb == nil {
			return Result{}, 0, false
		}
		wb = eb
		s.opts.WarmFactors = ef // nil → adoptBasis refactorizes
		extended = ef != nil
	}
	if !s.adoptBasis(wb) {
		return Result{}, 0, false
	}
	DebugWarmOK.Add(1)
	// warmResult stamps the per-solve warm-start provenance onto a
	// successful result; see Result.WarmUsed/BasisExtended.
	warmResult := func(st Status) Result {
		r := s.result(st)
		r.WarmUsed = true
		r.BasisExtended = extended
		return r
	}
	st := s.dual(o.MaxIters)
	switch st {
	case iterOptimal:
		// Polish: the dual run restored primal feasibility; a short primal
		// run certifies optimality (usually zero iterations). The two runs
		// share s.iters, so MaxIters bounds their sum.
		st2 := s.primal(o.MaxIters)
		switch st2 {
		case iterOptimal:
			return warmResult(StatusOptimal), s.iters, true
		case iterUnbounded:
			return warmResult(StatusUnbounded), s.iters, true
		default:
			return Result{}, s.iters, false
		}
	case iterInfeasible:
		return warmResult(StatusInfeasible), s.iters, true
	default:
		return Result{}, s.iters, false // numeric trouble or limit: retry cold
	}
}

// solveCold runs the two-phase primal algorithm from the slack/artificial
// crash basis.
func (inst *Instance) solveCold(o Options) Result {
	s := newSolver(inst, o)
	needPhase1, err := s.crashBasis()
	if err != nil {
		// No usable factorization: report the numerical failure instead of
		// iterating against a stale basis.
		return s.result(StatusNumeric)
	}
	if needPhase1 {
		// Phase 1: costs were installed by crashBasis (±1 on artificials).
		st := s.primal(o.MaxIters)
		if st == iterLimit {
			return s.result(StatusIterLimit)
		}
		if s.phase1Objective() > numtol.Phase1Tol {
			return s.result(StatusInfeasible)
		}
	}
	s.sealArtificials()
	for j := range s.cost {
		s.cost[j] = s.real[j]
	}
	s.dValid = false // phase costs changed
	st := s.primal(o.MaxIters)
	switch st {
	case iterOptimal:
		// Guard against drift: verify primal feasibility; repair once via
		// refactorization + dual cleanup if needed.
		if err := s.refactor(); err == nil {
			s.computeXB()
		}
		if s.primalInfeasibility() > 10*o.FeasTol {
			if s.dual(o.MaxIters) == iterOptimal {
				s.primal(o.MaxIters)
			}
		}
		return s.result(StatusOptimal)
	case iterUnbounded:
		return s.result(StatusUnbounded)
	default:
		return s.result(StatusIterLimit)
	}
}

// result packages the solver state into a Result.
func (s *solver) result(status Status) Result {
	inst := s.inst
	res := Result{Status: status, Iterations: s.iters}
	if status == StatusOptimal {
		res.X = make([]float64, inst.n)
		for j := 0; j < inst.n; j++ {
			v := s.colValue(j)
			// Snap to bounds within tolerance for clean downstream use.
			if !math.IsInf(s.lb[j], -1) && math.Abs(v-s.lb[j]) < numtol.BoundSnapTol {
				v = s.lb[j]
			} else if !math.IsInf(s.ub[j], 1) && math.Abs(v-s.ub[j]) < numtol.BoundSnapTol {
				v = s.ub[j]
			}
			res.X[j] = v
		}
		obj := inst.p.ObjOffset
		min := 0.0
		for j := 0; j < inst.n; j++ {
			min += s.real[j] * res.X[j]
		}
		if inst.negate {
			obj -= min
		} else {
			obj += min
		}
		res.Obj = obj
		s.computeDuals()
		res.Duals = make([]float64, s.m)
		copy(res.Duals, s.y)
		if inst.negate {
			for i := range res.Duals {
				res.Duals[i] = -res.Duals[i]
			}
		}
	}
	if status == StatusOptimal || status == StatusInfeasible {
		res.Basis = s.snapshot()
		if s.opts.CaptureFactors {
			// The caller wants an explicit, cache-independent handoff (it
			// will pass the clone back as WarmFactors); skip the instance
			// cache so the factorization is cloned exactly once.
			res.Factors = s.fac.Clone()
		} else {
			// Remember the factorization for this snapshot so warm starts
			// from it (both branch-and-bound children) skip refactorization.
			inst.storeFactors(res.Basis, s.fac)
		}
	}
	return res
}
