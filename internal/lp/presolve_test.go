package lp

import (
	"math"
	"math/rand"
	"testing"
)

// solveNoPresolve bypasses the presolve layer (Instance.Solve is the path
// the MIP solver uses), for comparing against the presolved result.
func solveNoPresolve(p *Problem, opts *Options) Result {
	return NewInstance(p).Solve(opts)
}

func TestPresolveSingletonRow(t *testing.T) {
	// min x + y s.t. 2x = 6 (singleton equality), x + y ≥ 5.
	p := NewProblem()
	x := p.AddCol(1, 0, 10, "x")
	y := p.AddCol(1, 0, 10, "y")
	p.AddEQ([]int32{int32(x)}, []float64{2}, 6, "fix-x")
	p.AddGE([]int32{int32(x), int32(y)}, []float64{1, 1}, 5, "cover")

	ps := presolve(p)
	if ps == nil {
		t.Fatal("presolve found no reductions on a singleton-row problem")
	}
	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-5) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal 5", res.Status, res.Obj)
	}
	if math.Abs(res.X[0]-3) > 1e-7 || math.Abs(res.X[1]-2) > 1e-7 {
		t.Fatalf("x = %v, want [3 2]", res.X)
	}
	checkFeasible(t, p, res.X, 1e-6)
	checkKKT(t, p, res, 1e-6)
}

func TestPresolveFullyReduced(t *testing.T) {
	// Every column is pinned by a singleton row; nothing reaches the simplex.
	p := NewProblem()
	x := p.AddCol(2, 0, 10, "x")
	y := p.AddCol(-3, 0, 10, "y")
	p.AddEQ([]int32{int32(x)}, []float64{1}, 4, "pin-x")
	p.AddEQ([]int32{int32(y)}, []float64{1}, 1, "pin-y")

	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-5) > 1e-9 {
		t.Fatalf("status %v obj %v, want optimal 5", res.Status, res.Obj)
	}
	if res.Iterations != 0 {
		t.Fatalf("fully presolved problem used %d simplex iterations", res.Iterations)
	}
	checkFeasible(t, p, res.X, 1e-6)
	checkKKT(t, p, res, 1e-6)
}

func TestPresolveInfeasibleSingleton(t *testing.T) {
	// Two singleton rows force x to incompatible values.
	p := NewProblem()
	x := p.AddCol(1, 0, 10, "x")
	p.AddEQ([]int32{int32(x)}, []float64{1}, 2, "x-is-2")
	p.AddEQ([]int32{int32(x)}, []float64{1}, 3, "x-is-3")
	if res := Solve(p, nil); res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestPresolveEmptyAndRedundantRows(t *testing.T) {
	// A row over fixed columns becomes empty; a wide row is redundant.
	p := NewProblem()
	x := p.AddCol(1, 2, 2, "x") // fixed at 2
	y := p.AddCol(1, 0, 3, "y")
	p.AddRow([]int32{int32(x)}, []float64{1}, 0, 5, "becomes-empty")
	p.AddRow([]int32{int32(x), int32(y)}, []float64{1, 1}, -100, 100, "redundant")
	p.AddGE([]int32{int32(y)}, []float64{1}, 1, "y-floor")

	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-3) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal 3", res.Status, res.Obj)
	}
	checkFeasible(t, p, res.X, 1e-6)
	checkKKT(t, p, res, 1e-6)
}

func TestPresolveEmptyRowInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(1, 1, 1, "x") // fixed at 1
	p.AddGE([]int32{int32(x)}, []float64{1}, 3, "impossible-after-substitution")
	if res := Solve(p, nil); res.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestPresolveEmptyColumn(t *testing.T) {
	// y appears in no row: it must land on its objective-favored bound.
	p := NewProblem()
	x := p.AddCol(1, 0, 10, "x")
	y := p.AddCol(-2, 0, 7, "y") // minimize −2y → ub
	p.AddGE([]int32{int32(x)}, []float64{1}, 4, "x-floor")

	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-(4-14)) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal -10", res.Status, res.Obj)
	}
	if math.Abs(res.X[y]-7) > 1e-9 {
		t.Fatalf("empty column landed at %v, want its favored bound 7", res.X[y])
	}
	checkFeasible(t, p, res.X, 1e-6)
	checkKKT(t, p, res, 1e-6)
}

func TestPresolveUnboundedEmptyColumnKept(t *testing.T) {
	// The favored bound of the empty column is infinite: presolve must keep
	// it and let the simplex certify unboundedness (after feasibility).
	p := NewProblem()
	x := p.AddCol(1, 0, 1, "x")
	p.AddCol(-1, 0, Inf, "ray")
	p.AddEQ([]int32{int32(x)}, []float64{1}, 1, "pin-x")
	if res := Solve(p, nil); res.Status != StatusUnbounded {
		t.Fatalf("status %v, want unbounded", res.Status)
	}
}

func TestPresolveMaximizeSense(t *testing.T) {
	// Favored bounds flip under Maximize.
	p := NewProblem()
	p.Sense = Maximize
	x := p.AddCol(3, 0, 5, "x") // maximize 3x → ub
	y := p.AddCol(1, 0, 10, "y")
	p.AddEQ([]int32{int32(y)}, []float64{2}, 8, "pin-y")

	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-19) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal 19", res.Status, res.Obj)
	}
	if math.Abs(res.X[x]-5) > 1e-9 || math.Abs(res.X[y]-4) > 1e-9 {
		t.Fatalf("x = %v, want [5 4]", res.X)
	}
	checkFeasible(t, p, res.X, 1e-6)
	checkKKT(t, p, res, 1e-6)
}

// TestPresolveRoundTripRandom cross-checks the presolved path against the
// direct simplex on random LPs seeded with presolve-friendly structure
// (fixed columns, singleton rows, wide rows): identical objectives, primal
// feasibility and full-problem KKT.
func TestPresolveRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(12)
		m := 2 + rng.Intn(15)
		p, _ := buildRandomLP(rng, n, m)
		// Inject reducible structure.
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.2 {
				v := p.ColLB[j]
				p.ColLB[j], p.ColUB[j] = v, v // fix
			}
		}
		for extra := rng.Intn(3); extra > 0; extra-- {
			j := rng.Intn(n)
			lo, hi := p.ColLB[j], p.ColUB[j]
			mid := lo + (hi-lo)*rng.Float64()
			p.AddRow([]int32{int32(j)}, []float64{1 + rng.Float64()},
				lo, mid+(hi-mid)*rng.Float64(), "singleton")
		}
		p.AddRow(nil, nil, -1, 1, "empty-feasible")

		direct := solveNoPresolve(p, nil)
		viaPre := Solve(p, nil)
		if direct.Status != viaPre.Status {
			t.Fatalf("trial %d: status %v (presolved) vs %v (direct)", trial, viaPre.Status, direct.Status)
		}
		if direct.Status != StatusOptimal {
			continue
		}
		if math.Abs(direct.Obj-viaPre.Obj) > 1e-6*(1+math.Abs(direct.Obj)) {
			t.Fatalf("trial %d: obj %v (presolved) vs %v (direct)", trial, viaPre.Obj, direct.Obj)
		}
		checkFeasible(t, p, viaPre.X, 1e-6)
		checkKKT(t, p, viaPre, 1e-5)
	}
}

// TestPresolveBasisWarmStart verifies that the postsolved basis is a valid
// warm-start basis for the full problem: adopting it and re-solving (even
// after a bound change) must succeed and agree with a cold solve.
func TestPresolveBasisWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(10)
		m := 2 + rng.Intn(12)
		p, _ := buildRandomLP(rng, n, m)
		if rng.Intn(2) == 0 {
			j := rng.Intn(n)
			p.ColLB[j] = p.ColUB[j] // ensure a reduction fires
		}
		p.AddRow([]int32{int32(rng.Intn(n))}, []float64{1},
			math.Inf(-1), 1e6, "singleton")

		res := Solve(p, nil)
		if res.Status != StatusOptimal {
			continue
		}
		if res.Basis == nil {
			t.Fatalf("trial %d: optimal presolved result carries no basis", trial)
		}
		// Branch-style bound change, then warm start from the lifted basis.
		j := rng.Intn(n)
		if !math.IsInf(p.ColUB[j], 1) && p.ColUB[j] > p.ColLB[j] {
			p.ColUB[j] = p.ColLB[j] + (p.ColUB[j]-p.ColLB[j])/2
		}
		warm := NewInstance(p).Solve(&Options{WarmBasis: res.Basis})
		cold := solveNoPresolve(p, nil)
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v vs cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status == StatusOptimal &&
			math.Abs(warm.Obj-cold.Obj) > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Fatalf("trial %d: warm obj %v vs cold %v", trial, warm.Obj, cold.Obj)
		}
	}
}
