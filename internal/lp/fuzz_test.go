package lp_test

import (
	"math"
	"testing"

	"tvnep/internal/certify"
	"tvnep/internal/lp"
)

// decodeBoxedLP deterministically turns a fuzz byte string into a small
// boxed LP: every column has finite bounds, every coefficient is a small
// integer. Finite boxes rule out unboundedness, so the only legal verdicts
// are Optimal and Infeasible — which makes the presolve/no-presolve
// comparison in FuzzPresolveRoundTrip exact.
func decodeBoxedLP(data []byte) *lp.Problem {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	p := lp.NewProblem()
	if next()%2 == 1 {
		p.Sense = lp.Maximize
	}
	n := 1 + int(next()%6)
	m := int(next() % 5)
	for j := 0; j < n; j++ {
		obj := float64(int8(next())%8) / 2
		lb := float64(int8(next()) % 5)
		width := float64(next() % 6)
		p.AddCol(obj, lb, lb+width, "")
	}
	for i := 0; i < m; i++ {
		kind := next() % 3
		rhs := float64(int8(next()) % 10)
		var idx []int32
		var val []float64
		for j := 0; j < n; j++ {
			a := float64(int8(next())%7 - 3)
			if a == 0 {
				continue
			}
			idx = append(idx, int32(j))
			val = append(val, a)
		}
		if len(idx) == 0 {
			continue
		}
		switch kind {
		case 0:
			p.AddLE(idx, val, rhs, "")
		case 1:
			p.AddGE(idx, val, rhs, "")
		default:
			p.AddEQ(idx, val, rhs, "")
		}
	}
	return p
}

// FuzzPresolveRoundTrip cross-validates the presolve layer: lp.Solve runs
// the reduction passes and postsolves the answer back, Instance.Solve
// bypasses presolve entirely. On every decoded boxed LP the two paths must
// agree on the verdict, agree on the optimum, and the presolved path's
// postsolved result (values, duals, basis) must pass the independent LP
// certificate — primal/dual feasibility and strong duality on the ORIGINAL
// problem.
func FuzzPresolveRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 3, 2, 4, 250, 3, 2, 1, 0, 2, 7, 1, 5, 255, 2, 9, 3, 1})
	f.Add([]byte{0, 5, 4, 6, 1, 2, 250, 3, 4, 8, 2, 2, 5, 9, 1, 7, 3, 253, 0, 4, 6, 1, 8, 2, 5, 0, 3})
	f.Add([]byte{1, 2, 3, 200, 100, 5, 4, 4, 4, 2, 6, 1, 1, 1, 1, 0, 9, 250, 250, 250})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 256 {
			return
		}
		p := decodeBoxedLP(data)
		pre := lp.Solve(p, nil)
		raw := lp.NewInstance(p).Solve(nil)
		if pre.Status == lp.StatusIterLimit || raw.Status == lp.StatusIterLimit {
			return // pathological cycling guard; nothing to compare
		}
		if pre.Status != raw.Status {
			t.Fatalf("presolved status %v, direct status %v", pre.Status, raw.Status)
		}
		if pre.Status != lp.StatusOptimal {
			return
		}
		scale := 1 + math.Abs(raw.Obj)
		if diff := math.Abs(pre.Obj - raw.Obj); diff > 1e-6*scale {
			t.Fatalf("presolved objective %v, direct objective %v (diff %g)", pre.Obj, raw.Obj, diff)
		}
		if cert := certify.LP(p, pre, 0); cert.Err() != nil {
			t.Fatalf("postsolved result failed the LP certificate: %v", cert.Err())
		}
		if cert := certify.LP(p, raw, 0); cert.Err() != nil {
			t.Fatalf("direct result failed the LP certificate: %v", cert.Err())
		}
	})
}
