package lp

import "math"

// Equilibration scaling. NewInstance rewrites the compiled matrix as
// A' = R·A·C where R and C hold per-row and per-column scale factors chosen
// by iterated geometric-mean equilibration and then rounded to the nearest
// power of two. The solver works entirely in scaled units; bounds, costs,
// solutions and duals cross the boundary in solver.reset and solver.result:
//
//	x'_j = x_j/c_j    s'_i = r_i·s_i    c'_j = c_j·obj_j    y_i = r_i·y'_i
//
// Power-of-two scales make every one of those transforms exact (multiplying
// by 2^k only changes the exponent), so objective values, certificates and
// duals are bit-identical to an unscaled formulation of the same solution —
// scaling changes the simplex trajectory, never the reported answer's
// meaning — and the scaled solve remains bit-deterministic across runs and
// worker counts. Slack and artificial columns stay exact unit columns
// because the slack variables themselves are scaled by r_i.

const (
	// scalingSweeps is the number of row/column geometric-mean passes.
	scalingSweeps = 2
	// scalingMaxExp clamps scale factors to 2^±scalingMaxExp; equilibration
	// on pathological data must not overflow to ±Inf scales.
	scalingMaxExp = 40
	// scalingSpreadMin is the coefficient spread max|a|/min|a| below which a
	// matrix counts as well-ranged and is left unscaled. Equilibration exists
	// to rescue ill-conditioned inputs; on an already tame matrix it only
	// perturbs the pricing trajectory (measurably for the worse on the TVNEP
	// models, whose spread is ~10) while paying the scaled-view overhead on
	// every pivot row.
	scalingSpreadMin = 64
)

// pow2Round returns the power of two nearest to x in log space, clamped to
// 2^±scalingMaxExp. x must be positive and finite.
func pow2Round(x float64) float64 {
	e := math.Round(math.Log2(x))
	if e > scalingMaxExp {
		e = scalingMaxExp
	} else if e < -scalingMaxExp {
		e = -scalingMaxExp
	}
	return math.Exp2(e)
}

// equilibrate computes the power-of-two equilibration of the compiled
// matrix and applies it in place to the column-major storage (which
// NewInstance freshly allocated). If every rounded scale comes out as 1 —
// the common case for already well-ranged 0/±1 models — the instance is
// left unscaled and pays no overhead anywhere.
func (inst *Instance) equilibrate() {
	n, m := inst.n, inst.m
	if n == 0 || m == 0 {
		return
	}
	// Well-ranged matrices skip equilibration entirely (see scalingSpreadMin).
	lo, hi := math.Inf(1), 0.0
	for j := 0; j < n; j++ {
		for k := range inst.colIdx[j] {
			a := math.Abs(inst.colVal[j][k])
			if a == 0 {
				continue
			}
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
	}
	if hi == 0 || hi/lo < scalingSpreadMin {
		return
	}
	rs := make([]float64, m)
	cs := make([]float64, n)
	for i := range rs {
		rs[i] = 1
	}
	for j := range cs {
		cs[j] = 1
	}
	// Iterated geometric-mean equilibration: each pass divides every row by
	// the (power-of-two-rounded) geometric mean of its current extreme
	// magnitudes, then every column likewise. Two passes settle the scales
	// on anything this solver meets; more sweeps only polish ulps.
	for sweep := 0; sweep < scalingSweeps; sweep++ {
		for i := 0; i < m; i++ {
			lo, hi := math.Inf(1), 0.0
			idx, val := inst.p.Row(i)
			for k, j := range idx {
				a := math.Abs(val[k]) * rs[i] * cs[j]
				if a == 0 {
					continue
				}
				if a < lo {
					lo = a
				}
				if a > hi {
					hi = a
				}
			}
			if hi > 0 {
				rs[i] = pow2Round(rs[i] / math.Sqrt(lo*hi))
			}
		}
		for j := 0; j < n; j++ {
			lo, hi := math.Inf(1), 0.0
			for k, i := range inst.colIdx[j] {
				a := math.Abs(inst.colVal[j][k]) * rs[i] * cs[j]
				if a == 0 {
					continue
				}
				if a < lo {
					lo = a
				}
				if a > hi {
					hi = a
				}
			}
			if hi > 0 {
				cs[j] = pow2Round(cs[j] / math.Sqrt(lo*hi))
			}
		}
	}
	identity := true
	for _, v := range rs {
		if v != 1 { //lint:allow floateq -- pow2Round yields exact powers of two; 1.0 is an exact no-op sentinel
			identity = false
			break
		}
	}
	if identity {
		for _, v := range cs {
			if v != 1 { //lint:allow floateq -- pow2Round yields exact powers of two; 1.0 is an exact no-op sentinel
				identity = false
				break
			}
		}
	}
	if identity {
		return
	}
	inst.scaled = true
	inst.rowScale = rs
	inst.colScale = cs
	inst.colScaleInv = make([]float64, n)
	for j := 0; j < n; j++ {
		inst.colScaleInv[j] = 1 / cs[j] // exact: cs[j] is a power of two
	}
	// Scale the column-major storage in place (freshly allocated by
	// NewInstance, shared with nothing yet).
	for j := 0; j < n; j++ {
		c := cs[j]
		for k, i := range inst.colIdx[j] {
			inst.colVal[j][k] *= rs[i] * c
		}
	}
	// Scaled row view of the compiled rows for the row-wise consumers
	// (pivotRow, warm-basis borders). Indices are shared with the Problem;
	// only the values need scaled copies.
	inst.baseRowVal = make([][]float64, m)
	nnz := 0
	for i := 0; i < m; i++ {
		idx, _ := inst.p.Row(i)
		nnz += len(idx)
	}
	back := make([]float64, nnz)
	off := 0
	for i := 0; i < m; i++ {
		idx, val := inst.p.Row(i)
		row := back[off : off+len(val)]
		off += len(val)
		for k, j := range idx {
			row[k] = val[k] * rs[i] * cs[j]
		}
		inst.baseRowVal[i] = row
	}
}

// appendedRowScale picks the power-of-two scale for a row appended after
// compilation: the geometric mean of the row's column-scaled extreme
// magnitudes, matching what equilibrate would have chosen in one pass.
func (inst *Instance) appendedRowScale(idx []int32, val []float64) float64 {
	lo, hi := math.Inf(1), 0.0
	for k, j := range idx {
		a := math.Abs(val[k])
		if inst.scaled {
			a *= inst.colScale[j]
		}
		if a == 0 {
			continue
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi == 0 {
		return 1
	}
	return pow2Round(1 / math.Sqrt(lo*hi))
}

// ScalingStats reports the equilibration's effect for diagnostics: whether
// scaling is active and the matrix coefficient spread max|a|/min|a| over
// nonzeros before and after scaling. Unscaled instances report equal
// spreads.
func (inst *Instance) ScalingStats() (scaled bool, spreadBefore, spreadAfter float64) {
	loB, hiB := math.Inf(1), 0.0
	loA, hiA := math.Inf(1), 0.0
	for j := 0; j < inst.n; j++ {
		for k, i := range inst.colIdx[j] {
			a := math.Abs(inst.colVal[j][k])
			if a == 0 {
				continue
			}
			if a < loA {
				loA = a
			}
			if a > hiA {
				hiA = a
			}
			b := a
			if inst.scaled {
				b = a * inst.colScaleInv[j] / inst.rowScale[i]
			}
			if b < loB {
				loB = b
			}
			if b > hiB {
				hiB = b
			}
		}
	}
	if hiB == 0 {
		return inst.scaled, 1, 1
	}
	return inst.scaled, hiB / loB, hiA / loA
}
