package lp

import (
	"math/rand"
	"testing"
)

// TestSteadyStatePivotsAllocFree pins the steady-state allocation contract
// of the simplex hot path: once the solver's persistent scratch is warmed,
// warm re-solves that actually pivot must allocate exactly as much as warm
// re-solves that do not (i.e. only result packaging) — the iterations
// themselves are allocation-free. This is the white-box counterpart of the
// tvnep-bench steady_state_allocs probe.
func TestSteadyStatePivotsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, _ := buildRandomLP(rng, 30, 18)
	inst := NewInstance(p)
	first := inst.Solve(&Options{CaptureFactors: true})
	if first.Status != StatusOptimal {
		t.Fatalf("cold solve status %v, want optimal", first.Status)
	}
	wb, wf := first.Basis, first.Factors
	warm := func() Result {
		return inst.Solve(&Options{WarmBasis: wb, WarmFactors: wf})
	}
	warm() // warm the persistent scratch
	base := testing.AllocsPerRun(20, func() { warm() })

	// Perturb a column sitting strictly between its bounds so the warm
	// re-solve has to take dual pivots, then restore.
	perturb := -1
	var plo, phi float64
	for j := range first.X {
		lo, hi := inst.ColBounds(j)
		if x := first.X[j]; x > lo+1e-6 && x < hi-1e-6 {
			perturb, plo, phi = j, lo, hi
			break
		}
	}
	if perturb < 0 {
		t.Skip("no interior column to perturb")
	}
	x := first.X[perturb]
	pivots := 0
	run := func() {
		inst.SetColBounds(perturb, plo, (plo+x)/2)
		r1 := warm()
		inst.SetColBounds(perturb, plo, phi)
		r2 := warm()
		pivots += r1.Iterations + r2.Iterations
	}
	run() // grow any scratch the perturbed trajectory needs
	pivots = 0
	per := testing.AllocsPerRun(20, run)
	if pivots == 0 {
		t.Fatal("perturbation produced no pivots; the probe is vacuous")
	}
	// run() packages two results, the baseline one.
	if per > 2*base {
		t.Fatalf("pivoting warm re-solve allocates %v per run vs %v packaging-only baseline (%d pivots): steady-state iterations must be allocation-free", per, 2*base, pivots)
	}
}
