package lp

import (
	"fmt"
	"sort"

	"tvnep/internal/linalg/sparselu"
)

// Incremental rows: the cutting-plane interface. AppendRow grows a solved
// Instance by one row; extendWarmStart then maps a pre-append basis (and its
// LU factors, via the WarmFactors handoff) onto the new dimensions so the
// dual simplex hot-restarts from the old optimum instead of refactorizing
// and re-solving from scratch. Appending a row keeps the old point dual
// feasible — the new slack enters the basis with dual value zero, leaving
// every reduced cost unchanged — so the dual simplex restores primal
// feasibility in a handful of pivots, which is what makes lazy cut
// separation cheap.

// AppendRow appends the row rlb ≤ Σ val[k]·x[idx[k]] ≤ rub over structural
// columns and returns its row index. Duplicate indices are merged and zero
// coefficients dropped. The column-major matrix is updated copy-on-write:
// clones sharing the pre-append column storage stay valid, and clones taken
// after the append see the new row. On a scaled instance the stored row is
// equilibrated like the compiled rows (a fresh power-of-two row scale over
// the already column-scaled coefficients); bounds stay in original units.
// Bases snapshotted before the append no longer match the instance's
// dimensions; Solve extends them automatically (see extendWarmStart).
func (inst *Instance) AppendRow(idx []int32, val []float64, rlb, rub float64) int {
	if len(idx) != len(val) {
		panic("lp: AppendRow index/value length mismatch")
	}
	if rlb > rub {
		panic(fmt.Sprintf("lp: AppendRow bounds lb %v > ub %v", rlb, rub))
	}
	r := inst.m
	// Canonicalize into a private, retained row copy: sorted by column,
	// duplicates merged, zeros dropped.
	type ent struct {
		j int32
		v float64
	}
	ents := make([]ent, 0, len(idx))
	for k, j := range idx {
		if int(j) < 0 || int(j) >= inst.n {
			panic(fmt.Sprintf("lp: AppendRow column %d out of range [0, %d)", j, inst.n))
		}
		ents = append(ents, ent{j, val[k]})
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a].j < ents[b].j })
	rowIdx := make([]int32, 0, len(ents))
	rowVal := make([]float64, 0, len(ents))
	for _, e := range ents {
		if n := len(rowIdx); n > 0 && rowIdx[n-1] == e.j {
			rowVal[n-1] += e.v
			continue
		}
		rowIdx = append(rowIdx, e.j)
		rowVal = append(rowVal, e.v)
	}
	// Drop entries that merged to zero.
	w := 0
	for k := range rowIdx {
		if rowVal[k] != 0 {
			rowIdx[w], rowVal[w] = rowIdx[k], rowVal[k]
			w++
		}
	}
	rowIdx, rowVal = rowIdx[:w], rowVal[:w]

	// Equilibrate the stored row like the compiled ones. Scaling was fixed
	// at compile time; an unscaled instance stays unscaled (row scale 1).
	if inst.scaled {
		rs := inst.appendedRowScale(rowIdx, rowVal)
		for k, j := range rowIdx {
			rowVal[k] *= rs * inst.colScale[j]
		}
		// rowScale grows copy-on-write, like unitIdx below: clones sharing
		// the old slice must not observe the new row.
		nrs := make([]float64, r+1)
		copy(nrs, inst.rowScale)
		nrs[r] = rs
		inst.rowScale = nrs
	}

	// Copy-on-write column updates: the old column slices may be shared with
	// clones (or with the compile-time backing arrays), so each affected
	// column gets fresh storage.
	for k, j := range rowIdx {
		ci, cv := inst.colIdx[j], inst.colVal[j]
		nci := make([]int32, len(ci)+1)
		ncv := make([]float64, len(cv)+1)
		copy(nci, ci)
		copy(ncv, cv)
		nci[len(ci)] = int32(r)
		ncv[len(cv)] = rowVal[k]
		inst.colIdx[j], inst.colVal[j] = nci, ncv
	}
	inst.extraIdx = append(inst.extraIdx, rowIdx)
	inst.extraVal = append(inst.extraVal, rowVal)
	// Row (slack) bounds live at the tail of lb/ub, in original units.
	inst.lb = append(inst.lb, rlb)
	inst.ub = append(inst.ub, rub)
	ui := make([]int32, r+1)
	copy(ui, inst.unitIdx)
	ui[r] = int32(r)
	inst.unitIdx = ui
	inst.m = r + 1
	return r
}

// NumAppendedRows reports how many rows AppendRow has added beyond the
// compiled Problem.
func (inst *Instance) NumAppendedRows() int { return inst.m - inst.baseRows }

// rowData returns row i's structural indices and coefficients in the
// solver's (scaled) units, covering both compiled and appended rows. The
// slices are shared storage; do not mutate.
func (inst *Instance) rowData(i int) ([]int32, []float64) {
	if i < inst.baseRows {
		idx, val := inst.p.Row(i)
		if inst.scaled {
			return idx, inst.baseRowVal[i]
		}
		return idx, val
	}
	return inst.extraIdx[i-inst.baseRows], inst.extraVal[i-inst.baseRows]
}

// RowBounds returns the bounds of row i in original units.
func (inst *Instance) RowBounds(i int) (lb, ub float64) {
	return inst.lb[inst.n+i], inst.ub[inst.n+i]
}

// extendWarmStart maps a basis snapshotted when the instance had mOld < m
// rows onto the current dimensions: each appended row's slack enters the
// basis (the standard cutting-plane restart — the primal point is unchanged,
// the new slacks carry the new rows' activities, and dual feasibility is
// preserved because the new duals start at zero). Slack and artificial
// column indices are remapped around the grown slack block. When wf holds
// the LU factors matching b, they are extended with a bordered block
// (sparselu.ExtendInto, into a solver-owned buffer installed as s.preFac)
// so the hot restart skips refactorization entirely.
//
// Returns nil if b does not look like a basis of this instance with fewer
// rows; returns the extended basis with s.preFac unset if only the basis
// could be extended (the adopting solver then refactorizes).
func (s *solver) extendWarmStart(b *Basis, wf *sparselu.Factors) *Basis {
	inst := s.inst
	n, m := inst.n, inst.m
	mOld := len(b.Basic)
	if mOld >= m || len(b.Status) != n+2*mOld {
		return nil
	}
	shift := m - mOld
	eb := &Basis{Basic: make([]int32, m), Status: make([]int8, n+2*m)}
	for p, j := range b.Basic {
		if int(j) >= n+mOld {
			j += int32(shift) // artificial block moved up by the new slacks
		}
		eb.Basic[p] = j
	}
	copy(eb.Status[:n+mOld], b.Status[:n+mOld])
	for i := mOld; i < m; i++ {
		eb.Basic[i] = int32(n + i)
		eb.Status[n+i] = vsBasic
	}
	copy(eb.Status[n+m:n+m+mOld], b.Status[n+mOld:])
	// New artificials keep the zero value (vsLower), fixed at 0 by newSolver.

	if wf == nil || wf.M() != mOld {
		return eb
	}
	// Border block: the appended rows' coefficients on the old basic
	// columns, stated in basis positions. Appended rows touch structural
	// columns only, so basic slacks and artificials contribute nothing.
	// The row-wise column overlay (apRowIdx) never contributes either: a
	// column appended after this basis was snapshotted is nonbasic in it,
	// and every column the basis can hold predates these border rows, so
	// their coefficients live in the rows' own storage read by rowData.
	// The position lookup and border storage are solver-owned scratch.
	for p, j := range b.Basic {
		s.posOf[j] = int32(p)
	}
	if cap(s.extIdx) < shift {
		s.extIdx = make([][]int32, shift)
		s.extVal = make([][]float64, shift)
		s.extDiag = make([]float64, shift)
	}
	s.extIdx = s.extIdx[:shift]
	s.extVal = s.extVal[:shift]
	s.extDiag = s.extDiag[:shift]
	for t := 0; t < shift; t++ {
		ridx, rval := inst.rowData(mOld + t)
		bi, bv := s.extIdx[t][:0], s.extVal[t][:0]
		for k, j := range ridx {
			if p := s.posOf[j]; p >= 0 {
				bi = append(bi, p)
				bv = append(bv, rval[k])
			}
		}
		s.extIdx[t], s.extVal[t] = bi, bv
		s.extDiag[t] = -1 // the appended slack column is −e_row
	}
	for _, j := range b.Basic {
		s.posOf[j] = -1
	}
	dst := s.grabFacBuf()
	if err := wf.ExtendInto(dst, s.facWS, shift, s.extIdx, s.extVal, s.extDiag); err != nil {
		return eb
	}
	s.preFac = dst
	DebugBasisExtensions.Add(1)
	return eb
}
