package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestDeadlineAborts(t *testing.T) {
	// A large random LP with an already-expired deadline must return
	// the iteration-limit status almost immediately.
	rng := rand.New(rand.NewSource(3))
	p, _ := buildRandomLP(rng, 60, 80)
	res := Solve(p, &Options{Deadline: time.Now().Add(-time.Second)})
	if res.Status != StatusIterLimit {
		t.Fatalf("status = %v, want iteration-limit", res.Status)
	}
}

func TestAssignmentProblem(t *testing.T) {
	// 3×3 assignment problem: LP relaxation is integral (totally
	// unimodular), optimum picks the permutation with min cost.
	cost := [3][3]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	// Best: (0,1)+(1,0)+(2,2) = 1+2+2 = 5.
	p := NewProblem()
	var cols [3][3]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			cols[i][j] = p.AddCol(cost[i][j], 0, 1, "")
		}
	}
	for i := 0; i < 3; i++ {
		var ridx, cidx []int32
		for j := 0; j < 3; j++ {
			ridx = append(ridx, int32(cols[i][j]))
			cidx = append(cidx, int32(cols[j][i]))
		}
		p.AddEQ(ridx, []float64{1, 1, 1}, 1, "")
		p.AddEQ(cidx, []float64{1, 1, 1}, 1, "")
	}
	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-5) > 1e-7 {
		t.Fatalf("status %v obj %v, want optimal 5", res.Status, res.Obj)
	}
	// Integrality of the basic solution.
	for _, x := range res.X {
		if math.Abs(x-math.Round(x)) > 1e-7 {
			t.Fatalf("assignment LP returned fractional vertex: %v", res.X)
		}
	}
}

func TestRepeatedSolvesSameInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p, _ := buildRandomLP(rng, 10, 12)
	inst := NewInstance(p)
	first := inst.Solve(nil)
	if first.Status != StatusOptimal {
		t.Fatalf("first solve: %v", first.Status)
	}
	for k := 0; k < 5; k++ {
		res := inst.Solve(nil)
		if res.Status != StatusOptimal || math.Abs(res.Obj-first.Obj) > 1e-8 {
			t.Fatalf("re-solve %d drifted: %v vs %v", k, res.Obj, first.Obj)
		}
	}
	// Warm start from its own final basis must agree too.
	warm := inst.Solve(&Options{WarmBasis: first.Basis})
	if warm.Status != StatusOptimal || math.Abs(warm.Obj-first.Obj) > 1e-8 {
		t.Fatalf("self-warm-start drifted: %v vs %v", warm.Obj, first.Obj)
	}
}

func TestWarmBasisDimensionMismatch(t *testing.T) {
	pa := NewProblem()
	pa.AddCol(1, 0, 1, "x")
	resA := Solve(pa, nil)

	pb := NewProblem()
	pb.AddCol(1, 0, 1, "x")
	pb.AddCol(1, 0, 1, "y")
	pb.AddGE([]int32{0, 1}, []float64{1, 1}, 1, "r")
	// A basis from a different problem must be rejected gracefully and the
	// solve must still succeed via the cold path.
	res := Solve(pb, &Options{WarmBasis: resA.Basis})
	if res.Status != StatusOptimal || math.Abs(res.Obj-1) > 1e-7 {
		t.Fatalf("mismatched warm basis broke the solve: %v %v", res.Status, res.Obj)
	}
}

func TestHighlyDegenerateLP(t *testing.T) {
	// Many redundant constraints through one vertex: classic degeneracy
	// stressor for the anti-cycling safeguards.
	p := NewProblem()
	x := p.AddCol(-1, 0, Inf, "x")
	y := p.AddCol(-1, 0, Inf, "y")
	for k := 0; k < 30; k++ {
		a := 1 + float64(k)*1e-9
		p.AddLE([]int32{int32(x), int32(y)}, []float64{a, 1}, 1, "")
	}
	res := Solve(p, nil)
	if res.Status != StatusOptimal {
		t.Fatalf("degenerate LP: %v", res.Status)
	}
	if math.Abs(res.Obj-(-1)) > 1e-6 {
		t.Fatalf("obj = %v, want -1", res.Obj)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem()
	res := Solve(p, nil)
	if res.Status != StatusOptimal || res.Obj != 0 {
		t.Fatalf("empty problem: %v obj %v", res.Status, res.Obj)
	}
}

func TestObjOffsetRoundTrip(t *testing.T) {
	p := NewProblem()
	p.ObjOffset = 7.5
	x := p.AddCol(2, 1, 3, "x")
	_ = x
	res := Solve(p, nil)
	if math.Abs(res.Obj-(7.5+2)) > 1e-9 {
		t.Fatalf("obj = %v, want 9.5", res.Obj)
	}
	p.Sense = Maximize
	res = Solve(p, nil)
	if math.Abs(res.Obj-(7.5+6)) > 1e-9 {
		t.Fatalf("max obj = %v, want 13.5", res.Obj)
	}
}

func TestChainOfEqualities(t *testing.T) {
	// x0 = x1 = … = x9, x0 fixed at 2.5, minimize x9 → 2.5.
	p := NewProblem()
	var cols []int
	for i := 0; i < 10; i++ {
		lb, ub := math.Inf(-1), Inf
		if i == 0 {
			lb, ub = 2.5, 2.5
		}
		obj := 0.0
		if i == 9 {
			obj = 1
		}
		cols = append(cols, p.AddCol(obj, lb, ub, ""))
	}
	for i := 0; i+1 < 10; i++ {
		p.AddEQ([]int32{int32(cols[i]), int32(cols[i+1])}, []float64{1, -1}, 0, "")
	}
	res := Solve(p, nil)
	if res.Status != StatusOptimal || math.Abs(res.Obj-2.5) > 1e-7 {
		t.Fatalf("chain: %v obj %v", res.Status, res.Obj)
	}
	for i, x := range res.X {
		if math.Abs(x-2.5) > 1e-7 {
			t.Fatalf("x[%d] = %v, want 2.5", i, x)
		}
	}
}

func TestInstanceBoundAccessors(t *testing.T) {
	p := NewProblem()
	p.AddCol(1, -1, 4, "x")
	inst := NewInstance(p)
	if lb, ub := inst.ColBounds(0); lb != -1 || ub != 4 {
		t.Fatalf("bounds %v %v", lb, ub)
	}
	inst.SetColBounds(0, 0, 2)
	if lb, ub := inst.ColBounds(0); lb != 0 || ub != 2 {
		t.Fatalf("bounds after set %v %v", lb, ub)
	}
	if inst.NumCols() != 1 || inst.NumRows() != 0 {
		t.Fatalf("dims %d %d", inst.NumCols(), inst.NumRows())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetColBounds with lb > ub did not panic")
		}
	}()
	inst.SetColBounds(0, 3, 1)
}

func TestAddRowValidation(t *testing.T) {
	p := NewProblem()
	p.AddCol(1, 0, 1, "x")
	for name, fn := range map[string]func(){
		"len mismatch":   func() { p.AddRow([]int32{0}, []float64{1, 2}, 0, 1, "") },
		"col range":      func() { p.AddRow([]int32{5}, []float64{1}, 0, 1, "") },
		"inverted range": func() { p.AddRow([]int32{0}, []float64{1}, 2, 1, "") },
		"col lb>ub":      func() { p.AddCol(0, 3, 2, "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBigBandLP(t *testing.T) {
	// Banded structured LP of moderate size to exercise refactorization
	// scheduling: minimize Σx_i s.t. x_i + x_{i+1} ≥ 1.
	n := 200
	p := NewProblem()
	for i := 0; i < n; i++ {
		p.AddCol(1, 0, Inf, "")
	}
	for i := 0; i+1 < n; i++ {
		p.AddGE([]int32{int32(i), int32(i + 1)}, []float64{1, 1}, 1, "")
	}
	res := Solve(p, nil)
	if res.Status != StatusOptimal {
		t.Fatalf("band LP: %v", res.Status)
	}
	// Optimum: alternate 0/1 → (n-1+1)/2 ≈ n/2... exact: ceil((n-1)/2)·1?
	// For a path cover with x ∈ [0,∞): LP optimum is (n-1)/2 achieved at
	// x_i = 1/2 everywhere except the ends can be shaved; accept the range.
	if res.Obj < float64(n-1)/2-1e-6 || res.Obj > float64(n)/2+1e-6 {
		t.Fatalf("band LP obj %v outside [%v, %v]", res.Obj, float64(n-1)/2, float64(n)/2)
	}
	checkFeasible(t, p, res.X, 1e-6)
	checkKKT(t, p, res, 1e-5)
}
