package lp

import (
	"math"
	"math/rand"
	"testing"
)

// appendRandomCols draws extra columns with finite bounds (so appending them
// never unbounds the problem) and random coefficients over the existing rows.
func appendRandomCols(rng *rand.Rand, m, count int) (idxs [][]int32, vals [][]float64, lbs, ubs, objs []float64) {
	for c := 0; c < count; c++ {
		var idx []int32
		var val []float64
		for i := 0; i < m; i++ {
			if rng.Float64() < 0.5 {
				idx = append(idx, int32(i))
				val = append(val, rng.NormFloat64())
			}
		}
		idxs = append(idxs, idx)
		vals = append(vals, val)
		lbs = append(lbs, 0)
		ubs = append(ubs, rng.Float64()*3)
		objs = append(objs, rng.NormFloat64())
	}
	return
}

// fullWithColumns rebuilds p plus the appended columns as one compiled
// problem: the cold-solve reference for the hot-restart tests.
func fullWithColumns(p *Problem, idxs [][]int32, vals [][]float64, lbs, ubs, objs []float64) *Problem {
	n := p.NumCols()
	full := NewProblem()
	full.Sense = p.Sense
	for j := 0; j < n; j++ {
		full.AddCol(p.Obj[j], p.ColLB[j], p.ColUB[j], "")
	}
	for c := range idxs {
		full.AddCol(objs[c], lbs[c], ubs[c], "")
	}
	for i := 0; i < p.NumRows(); i++ {
		ri, rv := p.Row(i)
		ri = append([]int32(nil), ri...)
		rv = append([]float64(nil), rv...)
		for c := range idxs {
			for k, r := range idxs[c] {
				if int(r) == i {
					ri = append(ri, int32(n+c))
					rv = append(rv, vals[c][k])
				}
			}
		}
		full.AddRow(ri, rv, p.RowLB[i], p.RowUB[i], "")
	}
	return full
}

// TestAppendColumnHotRestart is the core column-generation kernel test:
// solve, append columns, hot-restart from the old basis + factors, and
// require the same optimum as a cold solve of the full problem.
func TestAppendColumnHotRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(15)
		m := 1 + rng.Intn(15)
		p, _ := buildRandomLP(rng, n, m)
		m = p.NumRows()
		inst := NewInstance(p)
		res := inst.Solve(&Options{CaptureFactors: true})
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: base status %v", trial, res.Status)
		}

		count := 1 + rng.Intn(4)
		idxs, vals, lbs, ubs, objs := appendRandomCols(rng, m, count)
		for c := range idxs {
			if got := inst.AppendColumn(idxs[c], vals[c], lbs[c], ubs[c], objs[c]); got != n+c {
				t.Fatalf("trial %d: AppendColumn index %d, want %d", trial, got, n+c)
			}
		}
		if inst.NumCols() != n+count || inst.NumAppendedCols() != count {
			t.Fatalf("trial %d: column accounting off: %d/%d", trial, inst.NumCols(), inst.NumAppendedCols())
		}
		full := fullWithColumns(p, idxs, vals, lbs, ubs, objs)

		ext0 := DebugColumnExtensions.Load()
		warm := inst.Solve(&Options{WarmBasis: res.Basis, WarmFactors: res.Factors, CaptureFactors: true})
		cold := Solve(full, nil)
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status != StatusOptimal {
			continue
		}
		if d := math.Abs(warm.Obj - cold.Obj); d > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Fatalf("trial %d: warm obj %v, cold obj %v (diff %v)", trial, warm.Obj, cold.Obj, d)
		}
		checkFeasible(t, full, warm.X, 1e-6)
		if !warm.WarmUsed || !warm.ColumnsRemapped {
			t.Fatalf("trial %d: warm provenance not stamped: used=%v remapped=%v",
				trial, warm.WarmUsed, warm.ColumnsRemapped)
		}
		if DebugColumnExtensions.Load() == ext0 {
			t.Fatalf("trial %d: hot restart did not take the column-remap path", trial)
		}

		// A second round on top of the first must chain (basis and factors
		// now include the first batch of appended columns).
		idxs2, vals2, lbs2, ubs2, objs2 := appendRandomCols(rng, m, 1)
		inst.AppendColumn(idxs2[0], vals2[0], lbs2[0], ubs2[0], objs2[0])
		full2 := fullWithColumns(p,
			append(append([][]int32(nil), idxs...), idxs2[0]),
			append(append([][]float64(nil), vals...), vals2[0]),
			append(append([]float64(nil), lbs...), lbs2[0]),
			append(append([]float64(nil), ubs...), ubs2[0]),
			append(append([]float64(nil), objs...), objs2[0]))
		warm2 := inst.Solve(&Options{WarmBasis: warm.Basis, WarmFactors: warm.Factors})
		cold2 := Solve(full2, nil)
		if warm2.Status != cold2.Status {
			t.Fatalf("trial %d: round-2 warm status %v, cold %v", trial, warm2.Status, cold2.Status)
		}
		if warm2.Status == StatusOptimal {
			if d := math.Abs(warm2.Obj - cold2.Obj); d > 1e-6*(1+math.Abs(cold2.Obj)) {
				t.Fatalf("trial %d: round-2 warm obj %v, cold obj %v", trial, warm2.Obj, cold2.Obj)
			}
		}
	}
}

// TestAppendColumnThenRow interleaves the two incremental interfaces: after
// cuts AND priced columns land on the same instance, a warm restart from a
// basis predating both must still match the cold solve of the full problem.
func TestAppendColumnThenRow(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(10)
		m := 1 + rng.Intn(10)
		p, xstar := buildRandomLP(rng, n, m)
		m = p.NumRows()
		inst := NewInstance(p)
		res := inst.Solve(&Options{CaptureFactors: true})
		if res.Status != StatusOptimal {
			t.Fatalf("trial %d: base status %v", trial, res.Status)
		}

		cIdx, cVal, cLB, cUB, cObj := appendRandomCols(rng, m, 1)
		inst.AppendColumn(cIdx[0], cVal[0], cLB[0], cUB[0], cObj[0])
		rIdx, rVal, rLB, rUB := appendRandomRows(rng, n, 1, xstar)
		inst.AppendRow(rIdx[0], rVal[0], rLB[0], rUB[0])

		full := fullWithColumns(p, cIdx, cVal, cLB, cUB, cObj)
		full.AddRow(rIdx[0], rVal[0], rLB[0], rUB[0], "")

		warm := inst.Solve(&Options{WarmBasis: res.Basis, WarmFactors: res.Factors})
		cold := Solve(full, nil)
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status != StatusOptimal {
			continue
		}
		if d := math.Abs(warm.Obj - cold.Obj); d > 1e-6*(1+math.Abs(cold.Obj)) {
			t.Fatalf("trial %d: warm obj %v, cold obj %v (diff %v)", trial, warm.Obj, cold.Obj, d)
		}
		checkFeasible(t, full, warm.X, 1e-6)
	}
}

func TestAppendColumnImprovesObjective(t *testing.T) {
	// max 2x st x ≤ 4 → 8; a new column with profit 3 sharing the row prices
	// in and the hot restart must pivot it into the basis.
	p := NewProblem()
	p.Sense = Maximize
	x := p.AddCol(2, 0, 10, "x")
	p.AddLE([]int32{int32(x)}, []float64{1}, 4, "")
	inst := NewInstance(p)
	res := inst.Solve(&Options{CaptureFactors: true})
	if res.Status != StatusOptimal || math.Abs(res.Obj-8) > 1e-9 {
		t.Fatalf("base solve: %v obj %v", res.Status, res.Obj)
	}
	d := CandidateReducedCost(3, []int32{0}, []float64{1}, res.Duals)
	if d <= 0 {
		t.Fatalf("improving candidate has reduced cost %v, want > 0 for Maximize", d)
	}
	j := inst.AppendColumn([]int32{0}, []float64{1}, 0, math.Inf(1), 3)
	warm := inst.Solve(&Options{WarmBasis: res.Basis, WarmFactors: res.Factors})
	if warm.Status != StatusOptimal || math.Abs(warm.Obj-12) > 1e-9 { // y=4, x=0
		t.Fatalf("warm after improving column: %v obj %v, want 12", warm.Status, warm.Obj)
	}
	if !warm.ColumnsRemapped {
		t.Fatal("ColumnsRemapped not stamped")
	}
	if math.Abs(warm.X[j]-4) > 1e-9 {
		t.Fatalf("appended column value %v, want 4", warm.X[j])
	}
}

func TestAppendColumnRedundantIsFree(t *testing.T) {
	// A column that prices out at the optimum must hot-restart through the
	// unchanged dual path in zero-to-one iterations.
	p := NewProblem()
	p.Sense = Maximize
	x := p.AddCol(2, 0, 10, "x")
	p.AddLE([]int32{int32(x)}, []float64{1}, 4, "")
	inst := NewInstance(p)
	res := inst.Solve(&Options{CaptureFactors: true})
	if res.Status != StatusOptimal {
		t.Fatalf("base solve: %v", res.Status)
	}
	d := CandidateReducedCost(1, []int32{0}, []float64{1}, res.Duals)
	if d > -1e-9 {
		t.Fatalf("non-improving candidate has reduced cost %v, want < 0", d)
	}
	inst.AppendColumn([]int32{0}, []float64{1}, 0, math.Inf(1), 1)
	warm := inst.Solve(&Options{WarmBasis: res.Basis, WarmFactors: res.Factors})
	if warm.Status != StatusOptimal || math.Abs(warm.Obj-8) > 1e-9 {
		t.Fatalf("warm after redundant column: %v obj %v, want 8", warm.Status, warm.Obj)
	}
	if warm.Iterations > 1 {
		t.Fatalf("redundant column cost %d iterations, want ≤ 1", warm.Iterations)
	}
}

func TestAppendColumnCloneIsolation(t *testing.T) {
	p := NewProblem()
	p.Sense = Maximize
	x := p.AddCol(1, 0, 5, "x")
	p.AddLE([]int32{int32(x)}, []float64{1}, 5, "")
	parent := NewInstance(p)
	before := parent.Clone() // cloned before the append: must not see the column
	parent.AppendColumn([]int32{0}, []float64{1}, 0, 5, 2)
	after := parent.Clone() // cloned after: must see it

	if got := before.NumCols(); got != 1 {
		t.Fatalf("pre-append clone has %d cols, want 1", got)
	}
	if got := after.NumCols(); got != 2 {
		t.Fatalf("post-append clone has %d cols, want 2", got)
	}
	rb := before.Solve(&Options{})
	rp := parent.Solve(&Options{})
	ra := after.Solve(&Options{})
	if math.Abs(rb.Obj-5) > 1e-9 {
		t.Fatalf("pre-append clone obj %v, want 5", rb.Obj)
	}
	if math.Abs(rp.Obj-10) > 1e-9 || math.Abs(ra.Obj-10) > 1e-9 {
		t.Fatalf("parent/post-append objs %v/%v, want 10", rp.Obj, ra.Obj)
	}
	// Appending different columns to two clones must stay independent.
	c1, c2 := before.Clone(), before.Clone()
	c1.AppendColumn([]int32{0}, []float64{1}, 0, 5, 3)
	c2.AppendColumn([]int32{0}, []float64{1}, 0, 5, 7)
	r1 := c1.Solve(&Options{})
	r2 := c2.Solve(&Options{})
	if math.Abs(r1.Obj-15) > 1e-9 || math.Abs(r2.Obj-35) > 1e-9 {
		t.Fatalf("sibling clone objs %v/%v, want 15/35", r1.Obj, r2.Obj)
	}
}

func TestAppendColumnMergesDuplicates(t *testing.T) {
	p := NewProblem()
	x := p.AddCol(-1, 0, 10, "x")
	p.AddLE([]int32{int32(x)}, []float64{1}, 8, "")
	inst := NewInstance(p)
	j := inst.AppendColumn([]int32{0, 0, 0}, []float64{2, -1, 1}, 0, 3, -3)
	idx, val := inst.colIdx[j], inst.colVal[j]
	if len(idx) != 1 || idx[0] != 0 || val[0] != 2 {
		t.Fatalf("merged column = %v %v, want [0] [2]", idx, val)
	}
	// min −x −3y st x + 2y ≤ 8, y ≤ 3: y=3 leaves x=2 → obj −11.
	res := inst.Solve(&Options{})
	if res.Status != StatusOptimal || math.Abs(res.Obj+11) > 1e-9 {
		t.Fatalf("solve: %v obj %v, want -11", res.Status, res.Obj)
	}
	if lb, ub := inst.ColBounds(j); lb != 0 || ub != 3 {
		t.Fatalf("ColBounds = [%v, %v]", lb, ub)
	}
}

// TestAppendColumnScaled exercises the appended-column equilibration path: a
// badly scaled compile triggers scaling, and appended columns must round-trip
// through the power-of-two column scale exactly like compiled ones.
func TestAppendColumnScaled(t *testing.T) {
	p := NewProblem()
	p.Sense = Maximize
	x := p.AddCol(1, 0, 1e6, "x")
	y := p.AddCol(1e4, 0, 100, "y")
	p.AddLE([]int32{int32(x), int32(y)}, []float64{1e-4, 1e3}, 500, "")
	inst := NewInstance(p)
	if scaled, _, _ := inst.ScalingStats(); !scaled {
		t.Fatal("instance unexpectedly unscaled; the test needs the scaled path")
	}
	res := inst.Solve(&Options{CaptureFactors: true})
	if res.Status != StatusOptimal {
		t.Fatalf("base solve: %v", res.Status)
	}
	// A high-profit column consuming the row resource prices in.
	j := inst.AppendColumn([]int32{0}, []float64{2e3}, 0, math.Inf(1), 5e4)
	warm := inst.Solve(&Options{WarmBasis: res.Basis, WarmFactors: res.Factors})
	cold := inst.Solve(nil)
	if warm.Status != StatusOptimal || cold.Status != StatusOptimal {
		t.Fatalf("statuses: warm %v cold %v", warm.Status, cold.Status)
	}
	if d := math.Abs(warm.Obj - cold.Obj); d > 1e-6*(1+math.Abs(cold.Obj)) {
		t.Fatalf("warm obj %v, cold obj %v", warm.Obj, cold.Obj)
	}
	if warm.X[j] <= 0 {
		t.Fatalf("scaled appended column stayed at zero, want it in the optimum")
	}
}
