package lp

import (
	"fmt"
	"math"
	"sort"
)

// Incremental columns: the column-generation interface, the column-side
// mirror of AppendRow. AppendColumn grows a solved Instance by one structural
// column; Solve then maps a pre-append basis onto the new dimensions so the
// primal simplex hot-restarts from the old optimum instead of re-solving from
// scratch. Appending a column keeps the old point primal feasible — the new
// column enters nonbasic at a bound, leaving every basic value unchanged — so
// the basis factorization is reused verbatim and a primal run prices the new
// column in with a handful of pivots, which is what makes column generation
// cheap. (Contrast AppendRow, whose restart preserves dual feasibility and
// re-enters through the dual simplex.)

// AppendColumn appends a structural column with coefficients val over rows
// idx, bounds [lb, ub] and objective coefficient obj (all in the problem's
// original sense and units), returning its column index. Duplicate row
// indices are merged and zero coefficients dropped. The column-major matrix
// and the row-wise overlay are updated copy-on-write: clones sharing the
// pre-append storage stay valid, and clones taken after the append see the
// new column. On a scaled instance the stored column is equilibrated like
// the compiled ones (a fresh power-of-two column scale over the already
// row-scaled coefficients); bounds and objective stay in original units.
// Bases snapshotted before the append no longer match the instance's
// dimensions; Solve remaps them automatically (see extendWarmStartCols).
func (inst *Instance) AppendColumn(idx []int32, val []float64, lb, ub, obj float64) int {
	if len(idx) != len(val) {
		panic("lp: AppendColumn index/value length mismatch")
	}
	if lb > ub {
		panic(fmt.Sprintf("lp: AppendColumn bounds lb %v > ub %v", lb, ub))
	}
	j := inst.n
	// Canonicalize into a private, retained column copy: sorted by row,
	// duplicates merged, zeros dropped.
	type ent struct {
		i int32
		v float64
	}
	ents := make([]ent, 0, len(idx))
	for k, i := range idx {
		if int(i) < 0 || int(i) >= inst.m {
			panic(fmt.Sprintf("lp: AppendColumn row %d out of range [0, %d)", i, inst.m))
		}
		ents = append(ents, ent{i, val[k]})
	}
	sort.Slice(ents, func(a, b int) bool { return ents[a].i < ents[b].i })
	colIdx := make([]int32, 0, len(ents))
	colVal := make([]float64, 0, len(ents))
	for _, e := range ents {
		if n := len(colIdx); n > 0 && colIdx[n-1] == e.i {
			colVal[n-1] += e.v
			continue
		}
		colIdx = append(colIdx, e.i)
		colVal = append(colVal, e.v)
	}
	w := 0
	for k := range colIdx {
		if colVal[k] != 0 {
			colIdx[w], colVal[w] = colIdx[k], colVal[k]
			w++
		}
	}
	colIdx, colVal = colIdx[:w], colVal[:w]

	// Equilibrate the stored column like the compiled ones. Scaling was fixed
	// at compile time; an unscaled instance stays unscaled (column scale 1).
	// colScale/colScaleInv grow copy-on-write, like objMin below.
	if inst.scaled {
		cs := inst.appendedColScale(colIdx, colVal)
		for k, i := range colIdx {
			colVal[k] *= cs * inst.rowScale[i]
		}
		ncs := make([]float64, j+1)
		copy(ncs, inst.colScale)
		ncs[j] = cs
		inst.colScale = ncs
		nci := make([]float64, j+1)
		copy(nci, inst.colScaleInv)
		nci[j] = 1 / cs
		inst.colScaleInv = nci
	}

	// Objective, in the internal minimization sense (copy-on-write: the old
	// slice may be shared with clones or the compiled Problem's era).
	nob := make([]float64, j+1)
	copy(nob, inst.objMin)
	if inst.negate {
		obj = -obj
	}
	nob[j] = obj
	inst.objMin = nob

	// Bounds: structural bounds occupy [0, n) with the row (slack) bounds at
	// the tail, so the new column's bounds are inserted at position n and the
	// row tail shifts up by one.
	nlb := make([]float64, len(inst.lb)+1)
	nub := make([]float64, len(inst.ub)+1)
	copy(nlb, inst.lb[:j])
	copy(nub, inst.ub[:j])
	nlb[j], nub[j] = lb, ub
	copy(nlb[j+1:], inst.lb[j:])
	copy(nub[j+1:], inst.ub[j:])
	inst.lb, inst.ub = nlb, nub

	// The column-major matrix gains an outer entry; the slices were
	// canonicalized above and are owned by this instance.
	inst.colIdx = append(inst.colIdx, colIdx)
	inst.colVal = append(inst.colVal, colVal)

	// Row-wise overlay for the rows this column touches: every such row's
	// own storage (compiled Problem row or AppendRow copy) predates the
	// column, so the row-wise consumers (pivotRow, debug checks) read the
	// missing entries from here. Copy-on-write like the column updates in
	// AppendRow: clones sharing the old overlay must not observe the column.
	if len(colIdx) > 0 {
		nap := make([][]int32, inst.m)
		nav := make([][]float64, inst.m)
		copy(nap, inst.apRowIdx)
		copy(nav, inst.apRowVal)
		for k, i := range colIdx {
			ri := make([]int32, len(nap[i])+1)
			rv := make([]float64, len(nav[i])+1)
			copy(ri, nap[i])
			copy(rv, nav[i])
			ri[len(ri)-1] = int32(j)
			rv[len(rv)-1] = colVal[k]
			nap[i], nav[i] = ri, rv
		}
		inst.apRowIdx, inst.apRowVal = nap, nav
	}

	inst.n = j + 1
	return j
}

// NumAppendedCols reports how many columns AppendColumn has added beyond the
// compiled Problem.
func (inst *Instance) NumAppendedCols() int { return inst.n - inst.baseCols }

// appendedColScale picks the power-of-two scale for a column appended after
// compilation: the geometric mean of the column's row-scaled extreme
// magnitudes, matching what equilibrate would have chosen in one pass. Only
// called on scaled instances.
func (inst *Instance) appendedColScale(idx []int32, val []float64) float64 {
	lo, hi := math.Inf(1), 0.0
	for k, i := range idx {
		a := math.Abs(val[k]) * inst.rowScale[i]
		if a == 0 {
			continue
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	if hi == 0 {
		return 1
	}
	return pow2Round(1 / math.Sqrt(lo*hi))
}

// extendWarmStartCols maps a basis snapshotted when the instance had
// nOld < n structural columns onto the current dimensions: the appended
// columns enter nonbasic at their natural bound and the slack/artificial
// status block shifts up around them. The basic set — and therefore the
// basis matrix and any handed-off LU factors — is unchanged, so adoptBasis
// reuses Options.WarmFactors verbatim; no bordered extension is needed
// (sparselu.ExtendColumn serves the matched row/column-pair shape, which
// plain column appends never produce).
func (inst *Instance) extendWarmStartCols(b *Basis, nOld int) *Basis {
	n := inst.n
	mOld := len(b.Basic)
	shift := n - nOld
	eb := &Basis{Basic: make([]int32, mOld), Status: make([]int8, n+2*mOld)}
	for p, j := range b.Basic {
		if int(j) >= nOld {
			j += int32(shift) // slack/artificial blocks moved up by the new columns
		}
		eb.Basic[p] = j
	}
	copy(eb.Status[:nOld], b.Status[:nOld])
	copy(eb.Status[n:], b.Status[nOld:])
	// Appended columns keep the zero value (vsLower); adoptBasis repairs the
	// status of any whose lower bound is −Inf.
	return eb
}

// appendedColsDualFeasible reports whether every column in [nOld, n) prices
// out at the adopted basis: none has an improving reduced cost for its
// nonbasic status. When true, the old point is still dual feasible and the
// usual dual-simplex restart applies; when false, solveWarm switches to the
// primal-first column-generation restart. Requires an installed
// factorization (adoptBasis); uses the active phase costs.
func (s *solver) appendedColsDualFeasible(nOld int, optTol float64) bool {
	s.computeDuals()
	for j := nOld; j < s.inst.n; j++ {
		switch s.vstat[j] {
		case vsBasic:
			continue
		case vsLower:
			if s.reducedCost(j) < -optTol {
				return false
			}
		case vsUpper:
			if s.reducedCost(j) > optTol {
				return false
			}
		default: // vsFree
			if math.Abs(s.reducedCost(j)) > optTol {
				return false
			}
		}
	}
	return true
}

// CandidateReducedCost returns obj − Σ duals[i]·val[k], the reduced cost of a
// candidate column in the problem's original sense, where duals is the Duals
// field of an optimal Result (length NumRows, covering appended rows). This
// is the pricing test of column generation: for a Maximize problem, a
// candidate entering at its lower bound improves the LP iff the value is
// positive beyond tolerance; for Minimize, iff it is negative. Duplicate row
// indices accumulate, matching AppendColumn.
func CandidateReducedCost(obj float64, idx []int32, val []float64, duals []float64) float64 {
	d := obj
	for k, i := range idx {
		d -= duals[i] * val[k]
	}
	return d
}
