package lp

import "math"

// iterStatus is the outcome of a simplex phase.
type iterStatus int

const (
	iterOptimal iterStatus = iota
	iterUnbounded
	iterLimit
	iterInfeasible // dual simplex: primal infeasibility proven
	iterNumeric    // irrecoverable numerical trouble
)

// crashBasis installs the initial slack/artificial basis for a cold start
// and configures phase-1 bounds and costs for the artificials that are
// needed. It returns true if any artificial carries a nonzero value (i.e. a
// phase 1 is required). A non-nil error means the initial factorization
// failed and the solve cannot proceed on this basis.
func (s *solver) crashBasis() (bool, error) {
	n, m := s.inst.n, s.m
	// All structural columns nonbasic at their natural bound. Phase-1 costs
	// are zero everywhere except the artificials set below — the solver is
	// reused across solves, so the previous solve's phase-2 costs must be
	// cleared explicitly.
	for j := 0; j < s.nm; j++ {
		s.cost[j] = 0
	}
	for j := 0; j < n; j++ {
		s.vstat[j] = s.defaultStatus(j)
		s.inBasis[j] = -1
	}
	// Row activities under that assignment.
	act := make([]float64, m)
	for j := 0; j < n; j++ {
		v := 0.0
		switch s.vstat[j] {
		case vsLower:
			v = s.lb[j]
		case vsUpper:
			v = s.ub[j]
		}
		if v == 0 {
			continue
		}
		for k, r := range s.inst.colIdx[j] {
			act[r] += s.inst.colVal[j][k] * v
		}
	}
	needPhase1 := false
	for i := 0; i < m; i++ {
		slack := n + i
		art := s.nm + i
		s.cost[art] = 0
		lo, hi := s.lb[slack], s.ub[slack]
		switch {
		case act[i] >= lo-crashBoundTol && act[i] <= hi+crashBoundTol:
			// Slack absorbs the activity: basic.
			s.basis[i] = int32(slack)
			s.inBasis[slack] = int32(i)
			s.vstat[slack] = vsBasic
			s.vstat[art] = vsLower
			s.lb[art], s.ub[art] = 0, 0
			s.xB[i] = act[i]
		default:
			// Clamp the slack to its nearest bound; artificial covers the
			// residual. Artificial column is +e_i, so z_i = act_i − s_i.
			var sv float64
			if act[i] < lo {
				sv = lo
			} else {
				sv = hi
			}
			if math.IsInf(sv, 0) {
				// One-sided row violated on its open side cannot happen:
				// an infinite bound cannot be violated.
				sv = 0
			}
			s.vstat[slack] = vsLower
			//lint:allow floateq -- sv was assigned from lo/hi by the clamp above; bit-exact by construction
			if sv == hi && sv != lo {
				s.vstat[slack] = vsUpper
			}
			// Row equation: act_i − s_i + z_i = 0 → z_i = s_i − act_i.
			res := sv - act[i]
			s.basis[i] = int32(art)
			s.inBasis[art] = int32(i)
			s.vstat[art] = vsBasic
			s.xB[i] = res
			if res >= 0 {
				s.lb[art], s.ub[art] = 0, Inf
				s.cost[art] = 1
			} else {
				s.lb[art], s.ub[art] = math.Inf(-1), 0
				s.cost[art] = -1
			}
			needPhase1 = true
		}
	}
	// The crash basis is diagonal (slack columns −e_i, artificials +e_i),
	// so this factorization should be trivially well-conditioned — but a
	// failure here means every subsequent FTRAN/BTRAN would run against a
	// stale or absent factorization, so it must stop the solve rather than
	// be ignored.
	if err := s.refactor(); err != nil {
		return needPhase1, err
	}
	return needPhase1, nil
}

// phase1Objective sums the absolute values of the artificial variables.
func (s *solver) phase1Objective() float64 {
	sum := 0.0
	for j := s.nm; j < s.N; j++ {
		sum += math.Abs(s.colValue(j))
	}
	return sum
}

// sealArtificials fixes every artificial to zero after a successful phase 1.
func (s *solver) sealArtificials() {
	for j := s.nm; j < s.N; j++ {
		s.lb[j], s.ub[j] = 0, 0
		if s.vstat[j] != vsBasic {
			s.vstat[j] = vsLower
		}
	}
}

// primal runs primal simplex iterations with the current cost vector until
// optimality, unboundedness or the iteration budget is exhausted.
//
//hot:path
func (s *solver) primal(maxIters int) iterStatus {
	feas := s.opts.FeasTol
	for ; s.iters < maxIters; s.iters++ {
		if s.iters&63 == 0 && s.interrupted() {
			return iterLimit
		}
		if !s.dValid {
			s.recomputeReducedCosts()
		}
		q, dq := s.priceEntering()
		if q == -1 {
			// Certify: incremental reduced costs may have drifted, so a
			// claimed optimum must survive a fresh recomputation.
			if s.dFresh {
				return iterOptimal
			}
			s.recomputeReducedCosts()
			continue
		}
		// Movement direction of the entering variable.
		dir := 1.0
		switch s.vstat[q] {
		case vsUpper:
			dir = -1
		case vsFree:
			if dq > 0 {
				dir = -1
			}
		}
		s.ftran(q, s.alpha)

		// Ratio test. t is the allowed movement of x_q along dir.
		t := math.Inf(1)
		if !math.IsInf(s.lb[q], -1) && !math.IsInf(s.ub[q], 1) {
			t = s.ub[q] - s.lb[q] // bound-flip distance
		}
		leave, leaveStat := -1, vsLower
		leaveAbs := 0.0
		for i := 0; i < s.m; i++ {
			a := s.alpha[i]
			if math.Abs(a) <= pivTol {
				continue
			}
			bi := int(s.basis[i])
			delta := -dir * a // rate of change of x_B(i)
			var ratio float64
			var st int8
			if delta < 0 {
				if math.IsInf(s.lb[bi], -1) {
					continue
				}
				ratio = (s.xB[i] - s.lb[bi] + feas) / -delta
				st = vsLower
			} else {
				if math.IsInf(s.ub[bi], 1) {
					continue
				}
				ratio = (s.ub[bi] - s.xB[i] + feas) / delta
				st = vsUpper
			}
			if ratio < 0 {
				ratio = 0
			}
			better := ratio < t-ratioTieTol
			tie := !better && ratio <= t+ratioTieTol
			if s.bland {
				if better || (tie && (leave == -1 || bi < int(s.basis[leave]))) {
					t, leave, leaveStat, leaveAbs = ratio, i, st, math.Abs(a)
				}
			} else if better || (tie && math.Abs(a) > leaveAbs) {
				t, leave, leaveStat, leaveAbs = ratio, i, st, math.Abs(a)
			}
		}
		if math.IsInf(t, 1) {
			return iterUnbounded
		}
		// Remove the feasibility-tolerance slack we added to the ratios.
		if t > 0 && leave >= 0 {
			bi := int(s.basis[leave])
			var exact float64
			if leaveStat == vsLower {
				exact = (s.xB[leave] - s.lb[bi]) / (dir * s.alpha[leave])
			} else {
				exact = (s.ub[bi] - s.xB[leave]) / (-dir * s.alpha[leave])
			}
			if exact < 0 {
				exact = 0
			}
			t = exact
		}
		flipDist := math.Inf(1)
		if !math.IsInf(s.lb[q], -1) && !math.IsInf(s.ub[q], 1) {
			flipDist = s.ub[q] - s.lb[q]
		}
		if flipDist <= t || leave == -1 {
			// Bound flip: x_q travels to its opposite bound.
			t = flipDist
			if math.IsInf(t, 1) {
				return iterUnbounded
			}
			for i := 0; i < s.m; i++ {
				s.xB[i] -= dir * t * s.alpha[i]
			}
			s.xbFresh = false
			if s.vstat[q] == vsLower {
				s.vstat[q] = vsUpper
			} else {
				s.vstat[q] = vsLower
			}
			s.noteProgress(t)
			continue
		}
		// Basis change: update Devex weights and reduced costs via the
		// pivot row BEFORE the basis swap, then apply the pivot.
		s.pivotRow(leave)
		s.devexPrimalUpdate(q, leave, int(s.basis[leave]))
		s.applyPivotToReducedCosts(q, int(s.basis[leave]))
		enterVal := s.colValue(q) + dir*t
		for i := 0; i < s.m; i++ {
			s.xB[i] -= dir * t * s.alpha[i]
		}
		s.pivot(q, leave, s.alpha, enterVal, leaveStat)
		s.noteProgress(t)
	}
	return iterLimit
}

// noteProgress tracks degeneracy and enables Bland's rule on long stalls.
func (s *solver) noteProgress(step float64) {
	if step <= degenStepTol {
		s.stall++
		if s.stall > stallLimit {
			s.bland = true
		}
	} else {
		s.stall = 0
		s.bland = false
	}
}

// crashSlackBasis installs the all-slack basis for the dual phase 1: every
// slack basic at its row activity, structural columns at their natural
// bounds, artificials nonbasic and fixed at zero. Under the all-zero cost
// vector every reduced cost is zero, so this basis is dual feasible no
// matter how many rows it violates — the dual simplex can then restore
// primal feasibility directly, without the artificial-variable detour (and
// its factorization is diagonal, so the initial refactor is trivial).
func (s *solver) crashSlackBasis() error {
	n, m := s.inst.n, s.m
	for j := 0; j < s.nm; j++ {
		s.cost[j] = 0
	}
	for j := 0; j < n; j++ {
		s.vstat[j] = s.defaultStatus(j)
		s.inBasis[j] = -1
	}
	act := make([]float64, m)
	for j := 0; j < n; j++ {
		v := 0.0
		switch s.vstat[j] {
		case vsLower:
			v = s.lb[j]
		case vsUpper:
			v = s.ub[j]
		}
		if v == 0 {
			continue
		}
		for k, r := range s.inst.colIdx[j] {
			act[r] += s.inst.colVal[j][k] * v
		}
	}
	for i := 0; i < m; i++ {
		slack := n + i
		art := s.nm + i
		s.cost[art] = 0
		s.basis[i] = int32(slack)
		s.inBasis[slack] = int32(i)
		s.vstat[slack] = vsBasic
		s.vstat[art] = vsLower
		s.lb[art], s.ub[art] = 0, 0
		s.xB[i] = act[i]
	}
	return s.refactor()
}
