// Package substrate defines the capacitated substrate (physical) network of
// Table I: a directed graph whose nodes and links both carry a single
// capacity value.
package substrate

import (
	"fmt"

	"tvnep/internal/graph"
)

// Network is a capacitated substrate network.
type Network struct {
	G       *graph.Digraph
	NodeCap []float64 // per node
	LinkCap []float64 // per edge index of G
}

// New creates a substrate over g with uniform capacities.
func New(g *graph.Digraph, nodeCap, linkCap float64) *Network {
	n := &Network{
		G:       g,
		NodeCap: make([]float64, g.N),
		LinkCap: make([]float64, g.NumEdges()),
	}
	for i := range n.NodeCap {
		n.NodeCap[i] = nodeCap
	}
	for i := range n.LinkCap {
		n.LinkCap[i] = linkCap
	}
	return n
}

// Grid builds the paper's substrate: a rows×cols bidirected grid with the
// given uniform node and link capacities (Section VI-A uses 4×5, 3.5, 5).
func Grid(rows, cols int, nodeCap, linkCap float64) *Network {
	return New(graph.Grid(rows, cols), nodeCap, linkCap)
}

// NumNodes reports |V_S|.
func (n *Network) NumNodes() int { return n.G.N }

// NumLinks reports |E_S|.
func (n *Network) NumLinks() int { return n.G.NumEdges() }

// Validate checks structural invariants (positive capacities, matching
// slice lengths).
func (n *Network) Validate() error {
	if len(n.NodeCap) != n.G.N {
		return fmt.Errorf("substrate: %d node capacities for %d nodes", len(n.NodeCap), n.G.N)
	}
	if len(n.LinkCap) != n.G.NumEdges() {
		return fmt.Errorf("substrate: %d link capacities for %d links", len(n.LinkCap), n.G.NumEdges())
	}
	for i, c := range n.NodeCap {
		if c < 0 {
			return fmt.Errorf("substrate: node %d has negative capacity %v", i, c)
		}
	}
	for i, c := range n.LinkCap {
		if c < 0 {
			return fmt.Errorf("substrate: link %d has negative capacity %v", i, c)
		}
	}
	return nil
}
