package substrate

import (
	"testing"
)

func TestWANDeterministic(t *testing.T) {
	a := WAN(12, 4, 3.5, 5, 42)
	b := WAN(12, 4, 3.5, 5, 42)
	if a.NumNodes() != b.NumNodes() || a.NumLinks() != b.NumLinks() {
		t.Fatalf("shape differs across identical seeds: %d/%d vs %d/%d",
			a.NumNodes(), a.NumLinks(), b.NumNodes(), b.NumLinks())
	}
	for e := 0; e < a.NumLinks(); e++ {
		au, av := a.G.Edge(e)
		bu, bv := b.G.Edge(e)
		if au != bu || av != bv || a.LinkCap[e] != b.LinkCap[e] {
			t.Fatalf("edge %d differs across identical seeds: %d→%d cap %v vs %d→%d cap %v",
				e, au, av, a.LinkCap[e], bu, bv, b.LinkCap[e])
		}
	}
	c := WAN(12, 4, 3.5, 5, 43)
	same := a.NumLinks() == c.NumLinks()
	if same {
		for e := 0; e < a.NumLinks(); e++ {
			au, av := a.G.Edge(e)
			cu, cv := c.G.Edge(e)
			if au != cu || av != cv {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical WANs")
	}
}

func TestWANStronglyConnected(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 99} {
		n := WAN(15, 4, 3.5, 5, seed)
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for src := 0; src < n.NumNodes(); src++ {
			reach := n.G.Reachable(src)
			for v, ok := range reach {
				if !ok {
					t.Fatalf("seed %d: node %d unreachable from %d", seed, v, src)
				}
			}
		}
	}
}

func TestWANCapacities(t *testing.T) {
	n := WAN(20, 5, 3.5, 5, 7)
	for _, c := range n.NodeCap {
		if c != 3.5 {
			t.Fatalf("node cap %v, want 3.5", c)
		}
	}
	var trunks, shortcuts int
	for e, c := range n.LinkCap {
		switch c {
		case 10: // backbone ring trunks carry 2·linkCap
			trunks++
		case 5:
			shortcuts++
		default:
			t.Fatalf("link %d has cap %v, want 5 or 10", e, c)
		}
	}
	if trunks != 2*20 {
		t.Fatalf("%d trunk links, want 40 (bidirected 20-node ring)", trunks)
	}
	if shortcuts == 0 {
		t.Fatal("no Waxman shortcut links generated")
	}
	// The average-degree target should be roughly met: 5·20 = 100 directed
	// edges requested; the attempt cap may leave it short but never by much
	// at this density.
	if n.NumLinks() < 80 {
		t.Fatalf("%d links, want ≥80 for avgDeg 5 on 20 nodes", n.NumLinks())
	}
}

func TestWANRejectsTiny(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WAN(2, ...) did not panic")
		}
	}()
	WAN(2, 4, 1, 1, 1)
}
