package substrate

import (
	"fmt"
	"math"
	"math/rand"

	"tvnep/internal/graph"
)

// Waxman parameters for WAN generation: alpha scales the overall link
// probability, beta the tolerance for long-haul links (the classic
// ISP-topology values).
const (
	waxmanAlpha = 0.9
	waxmanBeta  = 0.3
)

// WAN builds a deterministic ISP-style wide-area substrate with n points of
// presence: nodes are placed uniformly at random in the unit square, wired
// into a bidirected ring in placement-angle order (the national backbone
// loop, guaranteeing strong connectivity) plus Waxman shortcut links —
// accepted with probability α·exp(−d(u,v)/(β·L)), L = √2 — until the
// average degree reaches avgDeg. Backbone ring links model aggregated
// trunks and carry 2·linkCap; shortcuts carry linkCap, so WAN substrates
// exercise per-link capacities, unlike the paper's uniform grid. The result
// is a pure function of (n, avgDeg, seed).
func WAN(n int, avgDeg, nodeCap, linkCap float64, seed int64) *Network {
	if n < 3 {
		panic(fmt.Sprintf("substrate: a WAN needs at least 3 PoPs, got %d", n))
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(u, v int) float64 {
		return math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
	}

	// Ring order: sort PoPs by angle around the centroid so the backbone
	// visits them as a loop rather than a random tour.
	cx, cy := 0.0, 0.0
	for i := range xs {
		cx += xs[i] / float64(n)
		cy += ys[i] / float64(n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	angle := func(i int) float64 { return math.Atan2(ys[i]-cy, xs[i]-cx) }
	for i := 1; i < n; i++ { // insertion sort: deterministic, n is small
		for j := i; j > 0 && angle(order[j]) < angle(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	g := graph.NewDigraph(n)
	var caps []float64
	addBoth := func(u, v int, c float64) {
		g.AddEdge(u, v)
		caps = append(caps, c)
		g.AddEdge(v, u)
		caps = append(caps, c)
	}
	for i := 0; i < n; i++ {
		addBoth(order[i], order[(i+1)%n], 2*linkCap)
	}

	// Waxman shortcuts until the average degree target; the attempt cap
	// bounds generation on parameter sets the acceptance probability can
	// barely satisfy (dense targets over spread-out PoPs).
	targetEdges := int(avgDeg * float64(n))
	maxL := math.Sqrt2
	for attempts := 50 * (targetEdges + 1); g.NumEdges() < targetEdges && attempts > 0; attempts-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if rng.Float64() < waxmanAlpha*math.Exp(-dist(u, v)/(waxmanBeta*maxL)) {
			addBoth(u, v, linkCap)
		}
	}

	net := &Network{G: g, NodeCap: make([]float64, n), LinkCap: caps}
	for i := range net.NodeCap {
		net.NodeCap[i] = nodeCap
	}
	return net
}
