package substrate

import (
	"testing"

	"tvnep/internal/graph"
)

func TestGridCapacities(t *testing.T) {
	n := Grid(4, 5, 3.5, 5)
	if n.NumNodes() != 20 || n.NumLinks() != 62 {
		t.Fatalf("shape %d/%d, want 20/62", n.NumNodes(), n.NumLinks())
	}
	for _, c := range n.NodeCap {
		if c != 3.5 {
			t.Fatalf("node cap %v, want 3.5", c)
		}
	}
	for _, c := range n.LinkCap {
		if c != 5 {
			t.Fatalf("link cap %v, want 5", c)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	n := Grid(2, 2, 1, 1)
	n.NodeCap[0] = -1
	if n.Validate() == nil {
		t.Fatal("negative node capacity not rejected")
	}
	n = Grid(2, 2, 1, 1)
	n.LinkCap[0] = -1
	if n.Validate() == nil {
		t.Fatal("negative link capacity not rejected")
	}
	n = Grid(2, 2, 1, 1)
	n.NodeCap = n.NodeCap[:1]
	if n.Validate() == nil {
		t.Fatal("length mismatch not rejected")
	}
	n = Grid(2, 2, 1, 1)
	n.LinkCap = n.LinkCap[:1]
	if n.Validate() == nil {
		t.Fatal("link length mismatch not rejected")
	}
}

func TestNewCustomGraph(t *testing.T) {
	g := graph.Chain(3)
	n := New(g, 2, 7)
	if n.NumNodes() != 3 || n.NumLinks() != 2 {
		t.Fatalf("shape %d/%d", n.NumNodes(), n.NumLinks())
	}
	if n.LinkCap[1] != 7 {
		t.Fatal("custom link cap wrong")
	}
}
