package greedy

import (
	"context"
	"math"
	"testing"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/graph"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

func singleNodeReq(name string, demand, earliest, duration, latest float64) *vnet.Request {
	return &vnet.Request{
		Name:       name,
		G:          graph.NewDigraph(1),
		NodeDemand: []float64{demand},
		LinkDemand: []float64{},
		Earliest:   earliest,
		Duration:   duration,
		Latest:     latest,
	}
}

func TestGreedyAcceptsSequentialPair(t *testing.T) {
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 4),
		singleNodeReq("b", 1, 0, 2, 4),
	}
	inst := &core.Instance{Sub: sub, Reqs: reqs, Horizon: 4}
	mapping := vnet.NodeMapping{{0}, {0}}
	sol, stats, err := Solve(context.Background(), inst, mapping, core.BuildOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumAccepted() != 2 {
		t.Fatalf("accepted %d, want 2", sol.NumAccepted())
	}
	if stats.Iterations != 2 || stats.AcceptedCount != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := solution.Check(sub, reqs, sol); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyRejectsWhenForced(t *testing.T) {
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 2),
		singleNodeReq("b", 1, 0, 2, 2),
	}
	inst := &core.Instance{Sub: sub, Reqs: reqs, Horizon: 2}
	sol, _, err := Solve(context.Background(), inst, vnet.NodeMapping{{0}, {0}}, core.BuildOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.NumAccepted() != 1 {
		t.Fatalf("accepted %d, want 1 (overlap forced)", sol.NumAccepted())
	}
	if err := solution.Check(sub, reqs, sol); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyStartsEarly(t *testing.T) {
	// The objective prefers early completion: a lone flexible request must
	// start at its earliest time.
	sub := substrate.Grid(1, 2, 1, 1)
	reqs := []*vnet.Request{singleNodeReq("a", 1, 1, 2, 10)}
	inst := &core.Instance{Sub: sub, Reqs: reqs, Horizon: 10}
	sol, _, err := Solve(context.Background(), inst, vnet.NodeMapping{{0}}, core.BuildOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Start[0]-1) > 1e-5 {
		t.Fatalf("start %v, want 1", sol.Start[0])
	}
}

func TestGreedyRequiresMapping(t *testing.T) {
	inst := &core.Instance{Sub: substrate.Grid(1, 2, 1, 1), Horizon: 1}
	if _, _, err := Solve(context.Background(), inst, nil, core.BuildOptions{}, nil); err != ErrNoMapping {
		t.Fatalf("err = %v, want ErrNoMapping", err)
	}
}

func TestGreedyNeverBeatsOptimal(t *testing.T) {
	// Greedy is a heuristic: objective ≤ cΣ optimum, solution feasible.
	cfg := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 4, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1, WeibullShape: 2, WeibullScale: 2,
		FlexibilityHr: 1,
	}
	for seed := int64(1); seed <= 5; seed++ {
		sc := workload.Generate(cfg, seed)
		inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		gsol, _, err := Solve(context.Background(), inst, sc.Mapping, core.BuildOptions{}, &model.SolveOptions{TimeLimit: 10 * time.Second})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := solution.Check(sc.Substrate, sc.Requests, gsol); err != nil {
			t.Fatalf("seed %d: greedy solution infeasible: %v", seed, err)
		}
		b := core.BuildCSigma(inst, core.BuildOptions{
			Objective: core.AccessControl, FixedMapping: sc.Mapping,
		})
		osol, ms := b.Solve(context.Background(), &model.SolveOptions{TimeLimit: 60 * time.Second})
		if ms.Status != model.StatusOptimal {
			t.Fatalf("seed %d: optimal solve status %v", seed, ms.Status)
		}
		if gsol.Objective > osol.Objective+1e-5 {
			t.Fatalf("seed %d: greedy %v beats optimum %v", seed, gsol.Objective, osol.Objective)
		}
	}
}

func TestGreedyEmptyInstance(t *testing.T) {
	inst := &core.Instance{Sub: substrate.Grid(1, 2, 1, 1), Horizon: 1}
	sol, stats, err := Solve(context.Background(), inst, vnet.NodeMapping{}, core.BuildOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations != 0 || sol.NumAccepted() != 0 {
		t.Fatalf("empty instance: %+v", stats)
	}
}
