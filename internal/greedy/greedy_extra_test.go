package greedy

import (
	"context"
	"testing"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/substrate"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

func TestGreedyExploitsFlexibility(t *testing.T) {
	// The same contended workload must admit at least as many requests when
	// every window gains slack (the paper's central claim, greedy flavor).
	base := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 5, StarLeaves: 1,
		DemandLow: 1, DemandHigh: 1.5,
		MeanInterArr: 0.5, WeibullShape: 2, WeibullScale: 3,
	}
	improvedSomewhere := false
	for seed := int64(1); seed <= 6; seed++ {
		var accepted [2]int
		for i, flex := range []float64{0, 4} {
			cfg := base
			cfg.FlexibilityHr = flex
			sc := workload.Generate(cfg, seed)
			inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
			sol, _, err := Solve(context.Background(), inst, sc.Mapping, core.BuildOptions{}, &model.SolveOptions{TimeLimit: 10 * time.Second})
			if err != nil {
				t.Fatalf("seed %d flex %v: %v", seed, flex, err)
			}
			if err := solution.Check(sc.Substrate, sc.Requests, sol); err != nil {
				t.Fatalf("seed %d flex %v: %v", seed, flex, err)
			}
			accepted[i] = sol.NumAccepted()
		}
		if accepted[1] > accepted[0] {
			improvedSomewhere = true
		}
	}
	if !improvedSomewhere {
		t.Fatal("4h of flexibility never increased greedy admissions across 6 seeds")
	}
}

func TestGreedyStatsPopulated(t *testing.T) {
	wl := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 3, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1,
		MeanInterArr: 1, WeibullShape: 2, WeibullScale: 2,
		FlexibilityHr: 1,
	}
	sc := workload.Generate(wl, 4)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	sol, stats, err := Solve(context.Background(), inst, sc.Mapping, core.BuildOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations != 3 {
		t.Fatalf("iterations %d, want 3", stats.Iterations)
	}
	if stats.TotalRuntime <= 0 || stats.MaxIterTime <= 0 {
		t.Fatalf("timings not recorded: %+v", stats)
	}
	if stats.AcceptedCount != sol.NumAccepted() {
		t.Fatalf("stats accepted %d != solution accepted %d", stats.AcceptedCount, sol.NumAccepted())
	}
	if stats.TotalLPIters <= 0 {
		t.Fatalf("LP iterations not counted: %+v", stats)
	}
}

func TestGreedyAblationVariantsAgreeOnTiny(t *testing.T) {
	// Cuts/presolve must not change greedy admissions on deterministic tiny
	// cases (they only change solve speed).
	reqs := []*vnet.Request{
		singleNodeReq("a", 1, 0, 2, 6),
		singleNodeReq("b", 1, 0, 2, 6),
		singleNodeReq("c", 1, 0, 2, 6),
	}
	inst := &core.Instance{Sub: substrate.Grid(1, 2, 1, 1), Reqs: reqs, Horizon: 6}
	mapping := vnet.NodeMapping{{0}, {0}, {0}}
	var want int = -1
	for _, opt := range []core.BuildOptions{
		{},
		{CutMode: core.CutOff},
		{DisablePresolve: true},
		{CutMode: core.CutOff, DisablePresolve: true},
	} {
		sol, _, err := Solve(context.Background(), inst, mapping, opt, nil)
		if err != nil {
			t.Fatalf("%+v: %v", opt, err)
		}
		if want == -1 {
			want = sol.NumAccepted()
		} else if sol.NumAccepted() != want {
			t.Fatalf("%+v: accepted %d, others %d", opt, sol.NumAccepted(), want)
		}
	}
	if want != 3 {
		t.Fatalf("accepted %d, want 3 (three 2h jobs fit in 6h)", want)
	}
}
