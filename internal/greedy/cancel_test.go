package greedy

import (
	"context"
	"errors"
	"testing"

	"tvnep/internal/core"
	"tvnep/internal/workload"
)

// TestGreedyCancelledContext: a cancelled context must abort the iteration
// loop and surface context.Canceled instead of a partial solution.
func TestGreedyCancelledContext(t *testing.T) {
	wl := workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 3, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1,
		MeanInterArr: 1, WeibullShape: 2, WeibullScale: 2,
		FlexibilityHr: 1,
	}
	sc := workload.Generate(wl, 4)
	inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, _, err := Solve(ctx, inst, sc.Mapping, core.BuildOptions{}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sol != nil {
		t.Fatal("cancelled run returned a solution")
	}
}
