// Package greedy implements Algorithm cΣ_A^G of Section V: a fast
// polynomial-time heuristic for the access-control objective. Requests are
// processed in order of earliest possible start; each iteration solves a
// small cΣ model in which every previously decided request has a fixed
// schedule, with the objective
//
//	max  T·x_R(L[i]) + (T − t⁻_{L[i]})
//
// which accepts the request whenever possible and otherwise/additionally
// finishes it as early as possible. Accepted requests keep their assigned
// schedule in all later iterations (Constraint 24); rejected requests stay
// rejected (Constraint 25) with their times fixed as Definition 2.1
// requires. Link allocations are re-optimized in every iteration.
package greedy

import (
	"context"
	"errors"
	"sort"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/vnet"
)

// Stats reports per-run statistics.
type Stats struct {
	Iterations    int
	TotalRuntime  time.Duration
	MaxIterTime   time.Duration
	TotalLPIters  int
	TotalBBNodes  int
	AcceptedCount int
}

// ErrNoMapping is returned when no fixed node mapping is supplied; the
// algorithm (as in the paper) requires node mappings as input.
var ErrNoMapping = errors.New("greedy: cΣ_A^G requires a fixed node mapping")

// Solve runs cΣ_A^G on the instance. The returned solution is indexed like
// inst.Reqs. build carries the per-iteration cΣ builder configuration
// (CutMode, FlowMode, DisablePresolve — the objective, mapping and
// force-accept/reject fields are owned by the algorithm and overwritten);
// solve configures each per-request MIP solve, whose TimeLimit bounds a
// single iteration (nil or a nonpositive limit defaults to 30 s — the models
// are tiny because all but one request is fixed). Cancelling ctx stops the
// run between (and cooperatively within) iterations, returning ctx.Err(); a
// nil ctx is treated as context.Background().
func Solve(ctx context.Context, inst *core.Instance, mapping vnet.NodeMapping, build core.BuildOptions, solve *model.SolveOptions) (*solution.Solution, Stats, error) {
	var stats Stats
	if ctx == nil {
		ctx = context.Background()
	}
	if mapping == nil {
		return nil, stats, ErrNoMapping
	}
	var so model.SolveOptions
	if solve != nil {
		so = *solve
	}
	if so.TimeLimit <= 0 {
		so.TimeLimit = 30 * time.Second
	}
	start := time.Now() //lint:allow nondet -- runtime accounting only; never branches the search
	k := len(inst.Reqs)

	// Working copies: accepted requests get their windows pinned to the
	// assigned schedule, rejected ones to their earliest slot.
	work := make([]*vnet.Request, k)
	for r, req := range inst.Reqs {
		cp := *req
		work[r] = &cp
	}
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return inst.Reqs[order[a]].Earliest < inst.Reqs[order[b]].Earliest
	})

	accepted := make([]bool, k)
	rejected := make([]bool, k)
	var last *solution.Solution
	var considered []int // original indices, in processing order

	for _, cur := range order {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		considered = append(considered, cur)
		subReqs := make([]*vnet.Request, len(considered))
		subMap := make(vnet.NodeMapping, len(considered))
		forceAccept := make([]bool, len(considered))
		forceReject := make([]bool, len(considered))
		curSub := -1
		for i, orig := range considered {
			subReqs[i] = work[orig]
			subMap[i] = mapping[orig]
			forceAccept[i] = accepted[orig]
			forceReject[i] = rejected[orig]
			if orig == cur {
				curSub = i
			}
		}
		subInst := &core.Instance{Sub: inst.Sub, Reqs: subReqs, Horizon: inst.Horizon}
		bo := build
		bo.Objective = core.AccessControl // placeholder; replaced below
		bo.FixedMapping = subMap
		bo.ForceAccept = forceAccept
		bo.ForceReject = forceReject
		b := core.BuildCSigma(subInst, bo)
		// Objective (21): max T·x_R(cur) + (T − t⁻_cur).
		T := inst.Horizon
		b.SetObjective(model.Expr().
			Add(T, b.XR[curSub]).
			Add(-1, b.TMinus[curSub]).
			AddConst(T))

		iterStart := time.Now() //lint:allow nondet -- per-iteration timing stat
		sol, ms := b.Solve(ctx, &so)
		iterTime := time.Since(iterStart) //lint:allow nondet -- per-iteration timing stat
		stats.Iterations++
		stats.TotalLPIters += ms.LPIterations
		stats.TotalBBNodes += ms.Nodes
		if iterTime > stats.MaxIterTime {
			stats.MaxIterTime = iterTime
		}

		acceptCur := sol != nil && sol.Accepted[curSub]
		if sol == nil {
			// Retry with the current request explicitly rejected; the
			// remaining fixed-schedule system is feasible by induction.
			forceReject[curSub] = true // bo.ForceReject aliases this slice
			b = core.BuildCSigma(subInst, bo)
			b.SetObjective(model.Expr().Add(-1, b.TMinus[curSub]).AddConst(T))
			// The retry burns real solver work; fold its statistics into the
			// run totals instead of discarding them with the model solution.
			var retry *model.Solution
			sol, retry = b.Solve(ctx, &so)
			stats.TotalLPIters += retry.LPIterations
			stats.TotalBBNodes += retry.Nodes
			if sol == nil {
				if err := ctx.Err(); err != nil {
					return nil, stats, err
				}
				return nil, stats, errors.New("greedy: fixed-schedule subproblem infeasible (solver failure)")
			}
		}
		if acceptCur {
			accepted[cur] = true
			// Pin the schedule exactly. Pinned times are LP-tolerance
			// accurate; the tie-epsilon in the dependency graph keeps
			// later subproblems from treating ulp-level orderings as hard
			// precedences.
			work[cur].Earliest = sol.Start[curSub]
			work[cur].Latest = sol.End[curSub]
			stats.AcceptedCount++
		} else {
			rejected[cur] = true
			work[cur].Latest = work[cur].Earliest + work[cur].Duration
		}
		last = remapSolution(sol, considered, k)
	}
	stats.TotalRuntime = time.Since(start) //lint:allow nondet -- runtime accounting only
	if last == nil {                       // zero requests
		last = &solution.Solution{}
	}
	// Recompute the access-control objective of the final solution.
	last.Objective = 0
	for r, req := range inst.Reqs {
		if last.Accepted[r] {
			last.Objective += req.Duration * req.TotalNodeDemand()
		}
	}
	return last, stats, nil
}

// remapSolution expands a subproblem solution (indexed by `considered`)
// into full-instance indexing. Requests not yet considered are marked
// rejected with zeroed times; callers only read the final, complete
// iteration.
func remapSolution(sub *solution.Solution, considered []int, k int) *solution.Solution {
	out := &solution.Solution{
		Accepted:  make([]bool, k),
		Start:     make([]float64, k),
		End:       make([]float64, k),
		Hosts:     make([][]int, k),
		Flows:     make([][][]float64, k),
		Objective: sub.Objective,
		Bound:     sub.Bound,
		Gap:       sub.Gap,
		Optimal:   sub.Optimal,
		Nodes:     sub.Nodes,
		Runtime:   sub.Runtime,
	}
	for i, orig := range considered {
		out.Accepted[orig] = sub.Accepted[i]
		out.Start[orig] = sub.Start[i]
		out.End[orig] = sub.End[i]
		out.Hosts[orig] = sub.Hosts[i]
		out.Flows[orig] = sub.Flows[i]
	}
	return out
}
