// Package analysis is a deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one typechecked
// package and reports diagnostics. It exists because this repository builds
// offline against the standard library only; the subset implemented here is
// exactly what the tvnep-lint analyzers need, and analyzers written against
// it port to the upstream API by changing one import path.
//
// Beyond the plain per-package walk the framework provides three services
// the deeper analyzers (maporder, nondet, hotalloc, waiverstale) rely on:
//
//   - an intra-package callgraph with function-directive scanning and
//     waiver-aware reachability (see callgraph.go);
//   - per-analyzer facts: opaque blobs an analyzer exports for the current
//     package and reads back for imported packages, serialized by the
//     driver through the unitchecker vetx files so information flows in
//     dependency order across the module;
//   - waiver usage accounting: the framework records which //lint:allow
//     comments actually suppressed a diagnostic, so a post-pass analyzer
//     (waiverstale) can flag the ones that no longer do.
//
// Suppression: a diagnostic is dropped when the line it is reported on — or
// the line directly above it — carries a comment of the form
//
//	//lint:allow <analyzer>[,<analyzer>...] [-- reason]
//
// naming the reporting analyzer. The annotation is intentionally loud (it
// names the rule being waived) so waivers are greppable and reviewable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// annotations. By convention it is a short lowercase word.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run inspects the package in pass and reports findings via
	// pass.Reportf. The error return is for operational failures only
	// (never for findings).
	Run func(pass *Pass) error
	// RunWaivers, when set, makes the analyzer a post-pass over waiver
	// usage instead of source: it runs after every ordinary analyzer in
	// the suite and receives the //lint:allow waivers that named an
	// ordinary analyzer of the current run but suppressed none of its
	// diagnostics. An analyzer sets Run or RunWaivers, not both.
	RunWaivers func(pass *Pass, unused []Waiver) error
}

// Pass hands one typechecked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the cross-package fact store supplied by the driver; nil
	// when the driver has no fact channel (single-package fixture runs).
	Facts Facts

	allowed map[string]*waiverUse
	diags   []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Posn, d.Analyzer, d.Message)
}

// Waiver is one (comment, analyzer-name) pair from a //lint:allow
// annotation, tracked so waiverstale can report the ones that suppress
// nothing.
type Waiver struct {
	// Analyzer is the waived analyzer's name.
	Analyzer string
	// Pos / Posn locate the //lint:allow comment itself.
	Pos  token.Pos
	Posn token.Position
}

// waiverUse tracks whether a waiver suppressed at least one diagnostic.
type waiverUse struct {
	w    Waiver
	used bool
}

// Facts is the cross-package fact channel. An analyzer may export one
// opaque blob per package; drivers persist the blobs (the unitchecker vetx
// files) and surface the blobs of imported packages on later passes.
// Implementations return nil from Read when the package has no fact blob
// for the analyzer — which is also how analyzers distinguish in-module
// packages (analyzed by this tool, facts present) from external ones.
type Facts interface {
	Read(pkgPath, analyzer string) []byte
	Write(analyzer string, data []byte)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Posn:     p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether a //lint:allow waiver naming this pass's analyzer
// covers the line of pos. Analyzers that walk callgraphs use it to stop at
// waived call sites: the waiver vouches for the whole chain behind the call,
// not just the one diagnostic on that line. A waiver that is consulted and
// honored here counts as used for waiverstale — cutting a callgraph edge is
// work even when no diagnostic existed to suppress.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.allowed == nil {
		return false
	}
	posn := p.Fset.Position(pos)
	u := p.allowed[allowKey(posn.Filename, posn.Line, p.Analyzer.Name)]
	if u == nil {
		return false
	}
	u.used = true
	return true
}

// ReadFacts returns the blob this pass's analyzer exported when pkgPath was
// analyzed, or nil when there is none (external package, or no fact
// channel).
func (p *Pass) ReadFacts(pkgPath string) []byte {
	if p.Facts == nil {
		return nil
	}
	return p.Facts.Read(pkgPath, p.Analyzer.Name)
}

// ExportFacts publishes this pass's analyzer blob for the current package.
func (p *Pass) ExportFacts(data []byte) {
	if p.Facts != nil {
		p.Facts.Write(p.Analyzer.Name, data)
	}
}

var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-zA-Z0-9_,\s]+?)\s*(?:--.*)?$`)

func allowKey(file string, line int, analyzer string) string {
	return fmt.Sprintf("%s:%d:%s", file, line, analyzer)
}

// collectWaivers gathers every //lint:allow comment. The returned map keys
// "file:line:analyzer" cover both the comment's own line and the line below
// it (so the annotation can sit on its own line above the flagged
// statement); both keys share one waiverUse so usage on either line counts.
func collectWaivers(fset *token.FileSet, files []*ast.File) (map[string]*waiverUse, []*waiverUse) {
	allowed := make(map[string]*waiverUse)
	var all []*waiverUse
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, name := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					if name == "" {
						continue
					}
					u := &waiverUse{w: Waiver{Analyzer: name, Pos: c.Pos(), Posn: posn}}
					all = append(all, u)
					allowed[allowKey(posn.Filename, posn.Line, name)] = u
					allowed[allowKey(posn.Filename, posn.Line+1, name)] = u
				}
			}
		}
	}
	return allowed, all
}

// Run applies the analyzers to one typechecked package and returns the
// surviving diagnostics, sorted by position. It is RunWithFacts without a
// fact channel.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWithFacts(fset, files, pkg, info, analyzers, nil)
}

// RunWithFacts applies the analyzers to one typechecked package with a
// cross-package fact channel. Ordinary analyzers run first; waiver
// post-passes (RunWaivers) run once usage of every //lint:allow annotation
// is known. Diagnostics of both phases go through waiver suppression.
func RunWithFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts Facts) ([]Diagnostic, error) {
	allowed, all := collectWaivers(fset, files)
	var out []Diagnostic
	ordinary := make(map[string]bool)
	run := func(a *Analyzer, exec func(p *Pass) error) error {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Facts: facts, allowed: allowed}
		if err := exec(pass); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if u := allowed[allowKey(d.Posn.Filename, d.Posn.Line, d.Analyzer)]; u != nil {
				u.used = true
				continue
			}
			out = append(out, d)
		}
		return nil
	}
	for _, a := range analyzers {
		if a.RunWaivers != nil {
			continue
		}
		ordinary[a.Name] = true
		if err := run(a, a.Run); err != nil {
			return nil, err
		}
	}
	// A waiver is judged stale only when the analyzer it names was part of
	// this run; subset runs stay silent about waivers they cannot judge.
	var unused []Waiver
	for _, u := range all {
		if !u.used && ordinary[u.w.Analyzer] {
			unused = append(unused, u.w)
		}
	}
	for _, a := range analyzers {
		if a.RunWaivers == nil {
			continue
		}
		rw := a.RunWaivers
		if err := run(a, func(p *Pass) error { return rw(p, unused) }); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Posn, out[j].Posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// NewTypesInfo allocates a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
