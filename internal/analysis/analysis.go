// Package analysis is a deliberately small, dependency-free mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one typechecked
// package and reports diagnostics. It exists because this repository builds
// offline against the standard library only; the subset implemented here is
// exactly what the tvnep-lint analyzers need (no facts, no cross-analyzer
// requirements), and analyzers written against it port to the upstream API
// by changing one import path.
//
// Suppression: a diagnostic is dropped when the line it is reported on — or
// the line directly above it — carries a comment of the form
//
//	//lint:allow <analyzer>[,<analyzer>...] [-- reason]
//
// naming the reporting analyzer. The annotation is intentionally loud (it
// names the rule being waived) so waivers are greppable and reviewable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// annotations. By convention it is a short lowercase word.
	Name string
	// Doc is a one-paragraph description of what the analyzer reports.
	Doc string
	// Run inspects the package in pass and reports findings via
	// pass.Reportf. The error return is for operational failures only
	// (never for findings).
	Run func(pass *Pass) error
}

// Pass hands one typechecked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Posn, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Posn:     p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([a-zA-Z0-9_,\s]+?)\s*(?:--.*)?$`)

// allowedLines collects, per filename, the set of "line:analyzer" keys that
// //lint:allow comments waive. A comment waives its own line and the line
// below it (so the annotation can sit on its own line above the flagged
// statement).
func allowedLines(fset *token.FileSet, files []*ast.File) map[string]bool {
	allowed := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, name := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					if name == "" {
						continue
					}
					allowed[fmt.Sprintf("%s:%d:%s", posn.Filename, posn.Line, name)] = true
					allowed[fmt.Sprintf("%s:%d:%s", posn.Filename, posn.Line+1, name)] = true
				}
			}
		}
	}
	return allowed
}

// Run applies the analyzers to one typechecked package and returns the
// surviving diagnostics, sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	allowed := allowedLines(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if allowed[fmt.Sprintf("%s:%d:%s", d.Posn.Filename, d.Posn.Line, d.Analyzer)] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Posn, out[j].Posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

// NewTypesInfo allocates a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
