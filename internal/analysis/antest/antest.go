// Package antest is the fixture-driven test harness for tvnep-lint
// analyzers, a stdlib-only stand-in for golang.org/x/tools/go/analysis/
// analysistest. A fixture is a directory of Go files that are parsed and
// typechecked together (imports resolve against the host toolchain's export
// data via `go list -export -deps`). Expected findings are declared in the
// fixtures themselves with trailing comments of the form
//
//	// want "substring"
//
// one per line that must produce a diagnostic containing the quoted
// substring. The harness fails the test for every unmet expectation and for
// every unexpected diagnostic, so fixtures pin both the flagged and the
// allowed behavior of an analyzer.
package antest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"tvnep/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// want is one expectation: a diagnostic on file:line whose message contains
// the substring.
type want struct {
	file string
	line int
	sub  string
}

// Run parses and typechecks the fixture directory and applies the analyzers,
// comparing diagnostics against the // want expectations in the fixtures.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var files []*ast.File
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				sub, err := unquoteWant(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern: %v", path, i+1, err)
				}
				wants = append(wants, want{file: path, line: i + 1, sub: sub})
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: exportDataImporter(t, files)}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck fixtures: %v", err)
	}
	diags, err := analysis.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}

	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			if d.Posn.Filename == w.file && d.Posn.Line == w.line && strings.Contains(d.Message, w.sub) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.file, w.line, w.sub)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// unquoteWant resolves the two escapes the want syntax needs (\" and \\).
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			if i >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}

var (
	exportMu    sync.Mutex
	exportCache = map[string]map[string]string{}
)

// exportDataImporter returns a types.Importer backed by the host
// toolchain's compiled export data: the fixtures' imports are resolved with
// `go list -export -deps`, which compiles them if needed and prints the
// export-data file of every package in the transitive closure (the same
// files gcimporter reads inside the go/vet toolchain).
func exportDataImporter(t *testing.T, files []*ast.File) types.Importer {
	t.Helper()
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	sort.Strings(imports)
	key := strings.Join(imports, " ")

	exportMu.Lock()
	exportMap, ok := exportCache[key]
	exportMu.Unlock()
	if !ok {
		exportMap = map[string]string{}
		if len(imports) > 0 {
			args := append([]string{"list", "-export", "-deps", "-f", "{{.ImportPath}}={{.Export}}"}, imports...)
			cmd := exec.Command("go", args...)
			cmd.Stderr = io.Discard
			out, err := cmd.Output()
			if err != nil {
				t.Fatalf("go list -export %v: %v", imports, err)
			}
			for _, line := range strings.Split(string(out), "\n") {
				path, file, ok := strings.Cut(line, "=")
				if ok && file != "" {
					exportMap[path] = file
				}
			}
		}
		exportMu.Lock()
		exportCache[key] = exportMap
		exportMu.Unlock()
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exportMap[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(token.NewFileSet(), "gc", lookup)
}

// Files returns the sorted .go files of a fixture dir (test convenience).
func Files(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out
}
