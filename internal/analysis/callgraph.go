package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CallEdge is one static call site inside a declared function. Callee may
// belong to any package; only callees declared in the analyzed package have
// a CallNode of their own.
type CallEdge struct {
	Callee *types.Func
	Pos    token.Pos
}

// CallNode is one function (or method) declared in the analyzed package.
type CallNode struct {
	Func *types.Func
	Decl *ast.FuncDecl
	// Edges lists the statically resolvable calls made by the function,
	// including calls inside func literals it declares (a closure runs on
	// behalf of its creator as far as determinism and allocation discipline
	// are concerned), and calls in defer/go statements.
	Edges []CallEdge
}

// CallGraph is the intra-package callgraph: every declared function with its
// statically resolvable call sites. Dynamic calls through function values
// and interface methods resolve to the declared object when go/types can
// name one (interface method, stored *types.Func) and are absent otherwise;
// analyzers over the graph are therefore "best effort static" and pair with
// waivers for the gaps.
type CallGraph struct {
	Nodes map[*types.Func]*CallNode
	// order preserves file/declaration order for deterministic iteration.
	order []*CallNode
}

// BuildCallGraph constructs the callgraph of the pass's package, skipping
// _test.go files (the analyzers police shipped code, not tests).
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CallNode)}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CallNode{Func: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := CalleeFunc(pass.TypesInfo, call); callee != nil {
					node.Edges = append(node.Edges, CallEdge{Callee: callee, Pos: call.Pos()})
				}
				return true
			})
			g.Nodes[fn] = node
			g.order = append(g.order, node)
		}
	}
	return g
}

// Functions returns the declared functions in file/declaration order.
func (g *CallGraph) Functions() []*CallNode { return g.order }

// Reachable expands roots through intra-package call edges and returns, for
// every reached function, the root it was first reached from (roots map to
// themselves). Expansion stops at call sites waived for pass's analyzer:
// the //lint:allow there vouches for the entire chain behind the call.
// Traversal is breadth-first in deterministic declaration order.
func (g *CallGraph) Reachable(pass *Pass, roots []*types.Func) map[*types.Func]*types.Func {
	reached := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	for _, r := range roots {
		if _, ok := g.Nodes[r]; ok && reached[r] == nil {
			reached[r] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Nodes[fn]
		if node == nil {
			continue
		}
		for _, e := range node.Edges {
			if reached[e.Callee] != nil || g.Nodes[e.Callee] == nil {
				continue
			}
			if pass.Allowed(e.Pos) {
				continue
			}
			reached[e.Callee] = reached[fn]
			queue = append(queue, e.Callee)
		}
	}
	return reached
}

// CalleeFunc resolves the *types.Func behind a direct call expression: a
// plain function call, a method call, or a call through an imported name.
// It returns nil for func-literal calls, builtins, conversions, and calls
// through function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// HasDirective reports whether the function declaration's doc comment
// carries the given machine directive (a comment line that is exactly
// "//"+name, optionally followed by a space-separated remark). Directives
// mirror the compiler's "//go:" convention: no space after the slashes.
func HasDirective(fd *ast.FuncDecl, name string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//"+name || strings.HasPrefix(c.Text, "//"+name+" ") {
			return true
		}
	}
	return false
}

// DirectiveRoots returns the declared functions whose doc comment carries
// the directive, in declaration order.
func (g *CallGraph) DirectiveRoots(name string) []*types.Func {
	var out []*types.Func
	for _, n := range g.order {
		if HasDirective(n.Decl, name) {
			out = append(out, n.Func)
		}
	}
	return out
}

// FuncKey returns a stable package-local key for fn: "Name" for package
// functions, "Recv.Name" for methods (pointerness of the receiver is
// erased, so facts survive value/pointer receiver refactors).
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// SortedKeys sorts a set of fact keys for deterministic serialization.
func SortedKeys(set map[string]string) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
