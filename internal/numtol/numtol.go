// Package numtol is the single home of the numeric tolerances shared across
// the solver stack. Every constant documents exactly what error it bounds and
// which layer introduces that error, so a change here is a deliberate,
// reviewable decision rather than a scattered literal edit.
//
// The floateq analyzer (internal/analyzers) enforces the convention: bare
// scientific-notation tolerance literals such as 1e-6 are flagged outside
// constant declarations, so new tolerances must either live here or be named
// constants local to one kernel (e.g. the sparse-LU pivot thresholds, which
// are properties of that factorization alone and not shared conventions).
//
// Layering: this package must not import anything from the repository, so
// that every layer — linalg, lp, mip, model, core, solution, certify — can
// depend on it without cycles.
package numtol

const (
	// TimeTol bounds the disagreement accepted between two schedule times
	// that should be equal (e.g. a request's scheduled duration vs its d_R,
	// or the model's t⁻ variable vs start+duration). Schedules are produced
	// by LP solves with feasibility tolerance LPFeasTol; after the event
	// times of up to |R|+1 chained constraints accumulate, 1e-5 is the
	// tightest bound the solver reliably meets on the paper's scenarios.
	TimeTol = 1e-5

	// CapTol is the slack allowed when comparing a substrate node/link load
	// against its capacity. Loads are sums of up to |R|·|V_R| LP variable
	// values, each accurate to LPFeasTol.
	CapTol = 1e-5

	// FlowTol bounds the error accepted in splittable-flow values: the
	// distance of a flow fraction from [0,1] and the imbalance of the flow
	// conservation equation at any substrate node.
	FlowTol = 1e-5

	// ObjTol bounds the relative disagreement between a solver-reported
	// objective value and its independent recomputation from the solution's
	// own schedule/flows (internal/certify). The objective is a weighted sum
	// of O(|R|) terms each accurate to roughly LPFeasTol.
	ObjTol = 1e-5

	// TieEps guards temporal precedence decisions against float dust: two
	// schedule checkpoints closer than this are treated as unordered when
	// building the dependency graph. Schedules pinned by earlier LP solves
	// are only LPFeasTol-accurate; dropping an edge only weakens the cuts,
	// it never cuts off a feasible solution.
	TieEps = 1e-6

	// WindowTol tolerates rounding in window arithmetic t^s + d + flex
	// (request validation, horizon containment): the three summands are
	// exact inputs, so only one or two ulps of error arise, far below 1e-9.
	WindowTol = 1e-9

	// FlowCutoff is the threshold below which an extracted flow value is
	// treated as exactly zero. LP basic solutions carry O(LPFeasTol)
	// dust on nominally-zero variables; 1e-9 clears dust that survived the
	// solver's own bound snapping without touching meaningful split flows.
	FlowCutoff = 1e-9

	// EventCoincide is the spacing below which two event times are merged
	// into one timeline event. It only needs to separate "same time modulo
	// float noise" from genuinely distinct events, so it sits well below
	// TimeTol.
	EventCoincide = 1e-12

	// LPFeasTol is the default primal feasibility tolerance of the simplex
	// solver: bound and row violations up to this are accepted.
	LPFeasTol = 1e-7

	// LPOptTol is the default dual feasibility (reduced-cost) tolerance of
	// the simplex solver.
	LPOptTol = 1e-7

	// Phase1Tol is the residual phase-1 objective above which an LP is
	// declared primal infeasible. Artificials are driven to zero by simplex
	// pivots whose error is bounded by LPFeasTol per row; 1e-6 leaves an
	// order of magnitude of slack over the m-row accumulation.
	Phase1Tol = 1e-6

	// BoundSnapTol is the distance within which a column value is snapped
	// exactly onto its finite bound when extracting an LP solution. It must
	// exceed the basis-solve roundoff (≈ machine epsilon times the basis
	// condition number) but stay far below any meaningful activity level.
	BoundSnapTol = 1e-9

	// AtBoundTol classifies a value as "at a bound" when reconstructing
	// basis statuses and dual signs in postsolve. It is looser than
	// BoundSnapTol because postsolved values combine several eliminated
	// rows' worth of arithmetic.
	AtBoundTol = 1e-6

	// DualRoundTol is the threshold below which a recovered dual/reduced
	// cost is treated as exactly zero during presolve postprocessing, so
	// complementary slackness is restored exactly on fixed columns.
	DualRoundTol = 1e-9

	// MIPGapTol is the default relative optimality gap at which branch and
	// bound declares an incumbent optimal.
	MIPGapTol = 1e-6

	// MIPIntTol is the default distance from integrality within which a
	// relaxation value counts as integral. It must comfortably exceed
	// LPFeasTol, since basic variable values carry that much noise.
	MIPIntTol = 1e-6

	// PriceRedTol is the minimum improving reduced cost a pooled column must
	// show before a pricing round appends it to the LP relaxation. Duals
	// carry LPOptTol-level noise accumulated over O(rows) terms, so anything
	// below this is indistinguishable from a non-improving column; appending
	// it would cost a hot restart and improve nothing.
	PriceRedTol = 1e-6

	// CutViolTol is the minimum amount by which a fractional point must
	// violate a pooled cut before the cut is worth appending to the LP
	// relaxation. Row activities are sums of LPFeasTol-accurate values, so
	// anything below this is indistinguishable from an already-satisfied
	// row; appending it would cost a hot restart and tighten nothing.
	CutViolTol = 1e-6
)
