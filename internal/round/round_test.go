package round

import (
	"context"
	"reflect"
	"testing"
	"time"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/model"
	"tvnep/internal/solution"
	"tvnep/internal/vnet"
	"tvnep/internal/workload"
)

// Numeric slack of the test assertions, spelled out so the tolerances read
// as deliberate rather than as magic literals.
const (
	// boundSlack is the headroom a rounded objective may exceed the LP
	// bound by (pure floating-point noise; any real excess is a bug).
	boundSlack = 1e-6
	// qualityFactor is the empirically recorded worst-case quality of the
	// rounding tier on the small deterministic grid below: the minimum
	// rounded/optimal ratio observed over the full flex × seed grid is
	// 0.8584 (flex=2h, seed=3); every other cell rounds to the optimum.
	// The grid is bit-reproducible, so this is a regression bound, not a
	// statistical one.
	qualityFactor = 0.85
)

// smallCfg is the deterministic micro-workload shared by the tests: small
// enough that the exact branch-and-bound reference finishes in milliseconds.
func smallCfg(flexHr float64) workload.Config {
	return workload.Config{
		GridRows: 2, GridCols: 2, NodeCap: 2, LinkCap: 2,
		NumRequests: 4, StarLeaves: 1,
		DemandLow: 0.5, DemandHigh: 1.5,
		MeanInterArr: 1, WeibullShape: 2, WeibullScale: 2,
		FlexibilityHr: flexHr,
	}
}

func instanceOf(sc *workload.Scenario) *core.Instance {
	return &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
}

func TestRoundingRequiresMapping(t *testing.T) {
	sc := workload.Generate(smallCfg(1), 1)
	if _, _, err := Solve(context.Background(), instanceOf(sc), nil, Options{}); err != ErrNoMapping {
		t.Fatalf("err = %v, want ErrNoMapping", err)
	}
}

// TestRoundingPropertyCertifies is the trustworthiness harness of the
// ISSUE: every solution the rounding tier returns — across randomized
// workloads, the whole flexibility grid, several seeds and all Section
// IV-E objectives — must pass the independent certify.Solution checker
// with zero violations. Fallback is disabled so every certified solution
// really came out of the sampling + repair pipeline. The fixed-set
// objectives run on the request subset accepted by the access-control
// rounding pass (the same restriction eval.ObjectivesSweep applies), so
// their instances are integrally feasible by construction.
func TestRoundingPropertyCertifies(t *testing.T) {
	fixedSet := []core.Objective{
		core.MaxEarliness, core.BalanceNodeLoad, core.DisableLinks, core.MinMakespan,
	}
	certified := 0
	for _, flexHr := range []float64{0, 0.5, 1, 2} {
		for seed := int64(1); seed <= 3; seed++ {
			sc := workload.Generate(smallCfg(flexHr), seed)
			inst := instanceOf(sc)
			opts := Options{Seed: MixSeed(9, seed), Objective: core.AccessControl, DisableFallback: true}
			rsol, stats, err := Solve(context.Background(), inst, sc.Mapping, opts)
			if err != nil {
				t.Fatalf("flex=%v seed=%d: %v", flexHr, seed, err)
			}
			if rsol == nil {
				continue
			}
			assertCertified(t, inst, rsol, core.AccessControl, sc.Mapping, flexHr, seed)
			certified++
			if stats.FellBack {
				t.Fatalf("flex=%v seed=%d: fell back with fallback disabled", flexHr, seed)
			}

			// Restrict to the accepted set and run every fixed-set objective.
			var reqs []*vnet.Request
			var subMap vnet.NodeMapping
			for r, acc := range rsol.Accepted {
				if acc {
					reqs = append(reqs, inst.Reqs[r])
					subMap = append(subMap, sc.Mapping[r])
				}
			}
			if len(reqs) == 0 {
				continue
			}
			sub := &core.Instance{Sub: inst.Sub, Reqs: reqs, Horizon: inst.Horizon}
			for _, obj := range fixedSet {
				fopts := Options{Seed: MixSeed(9, seed, int64(obj)), Objective: obj, DisableFallback: true}
				fsol, _, err := Solve(context.Background(), sub, subMap, fopts)
				if err != nil {
					t.Fatalf("flex=%v seed=%d obj=%v: %v", flexHr, seed, obj, err)
				}
				if fsol == nil {
					continue
				}
				assertCertified(t, sub, fsol, obj, subMap, flexHr, seed)
				certified++
			}
		}
	}
	// The property must not hold vacuously: the grid is deterministic and
	// known to round the large majority of its cells.
	if certified < 20 {
		t.Fatalf("only %d rounded solutions certified; harness lost its coverage", certified)
	}
}

func assertCertified(t *testing.T, inst *core.Instance, sol *solution.Solution, obj core.Objective, mapping vnet.NodeMapping, flexHr float64, seed int64) {
	t.Helper()
	rep := certify.Solution(inst, sol, certify.Options{Objective: obj, Mapping: mapping})
	if !rep.OK() {
		t.Fatalf("flex=%v seed=%d obj=%v: rounded solution failed certification: %v",
			flexHr, seed, obj, rep.Err())
	}
	if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
		t.Fatalf("flex=%v seed=%d obj=%v: %v", flexHr, seed, obj, err)
	}
}

// TestRoundingDeterministic pins the nondeterminism contract: at a fixed
// seed the tier returns bit-identical solutions and statistics for every
// worker count and across repeated runs. The second scenario is one whose
// samples all fail, so the worker sweep also covers the parallel
// branch-and-bound fallback (identical fallback counts and objectives).
func TestRoundingDeterministic(t *testing.T) {
	type scenario struct {
		name string
		obj  core.Objective
		seed int64
	}
	for _, sc := range []scenario{
		{"rounded", core.AccessControl, 1},
		{"fallback", core.MinMakespan, 3},
	} {
		t.Run(sc.name, func(t *testing.T) {
			wsc := workload.Generate(withRequests(smallCfg(2), 3), sc.seed)
			inst := instanceOf(wsc)
			run := func(workers int) (*solution.Solution, Stats) {
				sol, stats, err := Solve(context.Background(), inst, wsc.Mapping, Options{
					Seed:      42,
					Objective: sc.obj,
					Solve:     model.SolveOptions{TimeLimit: time.Hour, Workers: workers},
				})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if sol == nil {
					t.Fatalf("workers=%d: no solution", workers)
				}
				stats.Runtime = 0
				sol.Runtime = 0
				return sol, stats
			}
			refSol, refStats := run(1)
			if sc.name == "fallback" && !refStats.FellBack {
				t.Fatalf("scenario no longer exercises the fallback: %+v", refStats)
			}
			for _, workers := range []int{1, 2, 4, 8} {
				sol, stats := run(workers)
				if !reflect.DeepEqual(refSol, sol) {
					t.Fatalf("solution differs between 1 and %d workers:\nref: %+v\ngot: %+v", workers, refSol, sol)
				}
				if !reflect.DeepEqual(refStats, stats) {
					t.Fatalf("stats differ between 1 and %d workers:\nref: %+v\ngot: %+v", workers, refStats, stats)
				}
			}
		})
	}
}

func withRequests(cfg workload.Config, n int) workload.Config {
	cfg.NumRequests = n
	return cfg
}

// TestRoundingGapBounds sandwiches every rounded objective between the two
// exact references. All objectives maximize, so the LP relaxation optimum
// is an UPPER bound on any integral solution (the ISSUE's "rounded ≥ LP
// bound" reads the direction for a minimization problem); the lower bound
// is the recorded qualityFactor of the exact branch-and-bound optimum.
func TestRoundingGapBounds(t *testing.T) {
	for _, flexHr := range []float64{0, 1, 2} {
		for seed := int64(1); seed <= 3; seed++ {
			sc := workload.Generate(smallCfg(flexHr), seed)
			inst := instanceOf(sc)
			rsol, stats, err := Solve(context.Background(), inst, sc.Mapping, Options{
				Seed: 11, Objective: core.AccessControl, DisableFallback: true,
			})
			if err != nil {
				t.Fatalf("flex=%v seed=%d: %v", flexHr, seed, err)
			}
			if rsol == nil {
				t.Fatalf("flex=%v seed=%d: rounding found nothing", flexHr, seed)
			}
			if rsol.Objective > stats.LPBound+boundSlack {
				t.Fatalf("flex=%v seed=%d: rounded %v exceeds LP bound %v",
					flexHr, seed, rsol.Objective, stats.LPBound)
			}
			b := core.BuildCSigma(inst, core.BuildOptions{
				Objective: core.AccessControl, FixedMapping: sc.Mapping,
			})
			osol, ms := b.Solve(context.Background(), &model.SolveOptions{TimeLimit: time.Minute})
			if osol == nil || ms.Status != model.StatusOptimal {
				t.Fatalf("flex=%v seed=%d: exact reference failed: %v", flexHr, seed, ms.Status)
			}
			if rsol.Objective < qualityFactor*osol.Objective {
				t.Fatalf("flex=%v seed=%d: rounded %v below %v × optimum %v",
					flexHr, seed, rsol.Objective, qualityFactor, osol.Objective)
			}
		}
	}
}

// TestRoundingFallsBack drives the tier through its escape hatch: a
// fixed-set instance whose LP rounds to nothing feasible. With fallback
// disabled the solve must return no solution; with it enabled, the exact
// branch-and-bound result must come back certified and flagged.
func TestRoundingFallsBack(t *testing.T) {
	sc := workload.Generate(withRequests(smallCfg(2), 3), 3)
	inst := instanceOf(sc)
	pure, stats, err := Solve(context.Background(), inst, sc.Mapping, Options{
		Seed: 3, Objective: core.MinMakespan, DisableFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pure != nil || stats.Feasible != 0 || stats.FellBack {
		t.Fatalf("expected every sample to fail without fallback, got sol=%v stats=%+v", pure, stats)
	}
	sol, stats, err := Solve(context.Background(), inst, sc.Mapping, Options{
		Seed: 3, Objective: core.MinMakespan,
		Solve: model.SolveOptions{TimeLimit: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol == nil || !stats.FellBack || stats.FallbackNodes <= 0 {
		t.Fatalf("fallback did not engage: sol=%v stats=%+v", sol, stats)
	}
	assertCertified(t, inst, sol, core.MinMakespan, sc.Mapping, 2, 3)
}

func TestRoundingCancellation(t *testing.T) {
	sc := workload.Generate(smallCfg(2), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Solve(ctx, instanceOf(sc), sc.Mapping, Options{Objective: core.AccessControl}); err == nil {
		t.Fatal("cancelled solve returned nil error")
	}
}

func TestMixSeed(t *testing.T) {
	if MixSeed(1, 2, 3) != MixSeed(1, 2, 3) {
		t.Fatal("MixSeed is not a pure function")
	}
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for part := int64(0); part < 64; part++ {
			seen[MixSeed(base, part)] = true
		}
	}
	if len(seen) != 4*64 {
		t.Fatalf("MixSeed collided: %d distinct seeds of %d", len(seen), 4*64)
	}
}

// TestRoundingPaperScaleBeatsExact is the ISSUE's acceptance instance: a
// 4×5-grid, 20-request access-control scenario at four hours of
// flexibility. The rounding tier must deliver a certified solution without
// falling back, inside a wall-clock budget under which the pure
// branch-and-bound cannot even produce an incumbent.
func TestRoundingPaperScaleBeatsExact(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second paper-scale instance")
	}
	wl := workload.PaperScale()
	wl.FlexibilityHr = 4
	sc := workload.Generate(wl, 1)
	inst := instanceOf(sc)

	start := time.Now()
	rsol, stats, err := Solve(context.Background(), inst, sc.Mapping, Options{
		Seed: 7, Objective: core.AccessControl, DisableFallback: true,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if rsol == nil || stats.FellBack {
		t.Fatalf("rounding failed on the acceptance instance: stats=%+v", stats)
	}
	assertCertified(t, inst, rsol, core.AccessControl, sc.Mapping, 4, 1)
	// Rounding finishes in ~1.3s here; 30s keeps slow CI machines green
	// while still being the budget the exact reference fails below.
	const budget = 30 * time.Second
	if elapsed > budget {
		t.Fatalf("rounding took %v, over the %v budget", elapsed, budget)
	}

	b := core.BuildCSigma(inst, core.BuildOptions{
		Objective: core.AccessControl, FixedMapping: sc.Mapping,
	})
	esol, ms := b.Solve(context.Background(), &model.SolveOptions{TimeLimit: 2 * time.Second})
	if ms.Status == model.StatusOptimal {
		t.Fatalf("exact reference solved the acceptance instance in 2s (%d nodes); pick a harder one", ms.Nodes)
	}
	if esol != nil && esol.Objective >= rsol.Objective {
		t.Fatalf("time-limited exact incumbent %v already beats rounding %v", esol.Objective, rsol.Objective)
	}
}
