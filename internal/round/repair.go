package round

import (
	"math"
	"math/rand"
	"sort"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/numtol"
	"tvnep/internal/solution"
	"tvnep/internal/vnet"
)

// drawSample rounds the decomposition into one integral candidate
// solution. Sample 0 is fully deterministic (threshold acceptance, argmax
// start, re-mixed fractional flows); later samples draw acceptance,
// start time and one substrate path per virtual link from the LP-induced
// distributions. Returns nil when a fixed-set objective meets a request
// whose flow decomposition failed (no sample can embed it).
func drawSample(inst *core.Instance, mapping vnet.NodeMapping, cands []reqCand, obj core.Objective, deterministic bool, rng *rand.Rand) *solution.Solution {
	k := len(inst.Reqs)
	sol := &solution.Solution{
		Accepted: make([]bool, k),
		Start:    make([]float64, k),
		End:      make([]float64, k),
		Hosts:    make([][]int, k),
		Flows:    make([][][]float64, k),
	}
	for r, req := range inst.Reqs {
		c := &cands[r]
		accept := c.embeddable
		if accept && obj == core.AccessControl {
			if deterministic {
				accept = c.xr >= halfMass
			} else {
				accept = rng.Float64() < c.xr
			}
		} else if !deterministic {
			rng.Float64() // keep the stream aligned across samples
		}
		if !c.embeddable && obj.FixedSet() {
			return nil
		}
		sol.Hosts[r] = append([]int(nil), mapping[r]...)
		if deterministic {
			sol.Start[r] = argmaxStart(c.starts)
		} else {
			sol.Start[r] = sampleStart(c.starts, rng)
		}
		sol.End[r] = sol.Start[r] + req.Duration
		flows := make([][]float64, req.G.NumEdges())
		for lv := range flows {
			if !accept {
				flows[lv] = make([]float64, inst.Sub.NumLinks())
				continue
			}
			lc := &c.links[lv]
			if deterministic || len(lc.paths) <= 1 {
				flows[lv] = append([]float64(nil), lc.mix...)
			} else {
				flows[lv] = samplePath(lc, inst.Sub.NumLinks(), rng)
			}
		}
		sol.Accepted[r] = accept
		sol.Flows[r] = flows
		if !accept {
			sol.Start[r] = req.Earliest
			sol.End[r] = req.Earliest + req.Duration
		}
	}
	return sol
}

// argmaxStart picks the heaviest candidate start, earliest on ties.
func argmaxStart(starts []startCand) float64 {
	best := starts[0]
	for _, s := range starts[1:] {
		if s.w > best.w+numtol.TieEps {
			best = s
		}
	}
	return best.t
}

// sampleStart draws a start time from the χ⁺ distribution.
func sampleStart(starts []startCand, rng *rand.Rand) float64 {
	u := rng.Float64()
	acc := 0.0
	for _, s := range starts {
		acc += s.w
		if u < acc {
			return s.t
		}
	}
	return starts[len(starts)-1].t
}

// samplePath draws one substrate path from the link's decomposition and
// returns it as an integral 0/1 flow vector.
func samplePath(lc *linkCand, numLinks int, rng *rand.Rand) []float64 {
	flow := make([]float64, numLinks)
	u := rng.Float64()
	acc := 0.0
	chosen := len(lc.paths) - 1
	for i, p := range lc.paths {
		acc += p.w
		if u < acc {
			chosen = i
			break
		}
	}
	for _, e := range lc.paths[chosen].edges {
		flow[e] = 1
	}
	return flow
}

// firstViolation sweeps the event intervals of the candidate in time order
// (mirroring certify's capacity check exactly, tolerances included) and
// returns the end of the first interval whose node or link capacity is
// exceeded, together with the accepted requests contributing load to the
// violated resource.
func firstViolation(inst *core.Instance, sol *solution.Solution) (intervalEnd float64, contributors []int, found bool) {
	var events []float64
	for r := range inst.Reqs {
		if sol.Accepted[r] {
			events = append(events, sol.Start[r], sol.End[r])
		}
	}
	sort.Float64s(events)
	for i := 0; i+1 < len(events); i++ {
		if events[i+1]-events[i] < numtol.EventCoincide {
			continue
		}
		t := (events[i] + events[i+1]) / 2
		if contribs, ok := violatedAt(inst, sol, t); ok {
			return events[i+1], contribs, true
		}
	}
	return 0, nil, false
}

// violatedAt checks Definition 2.1's allocation condition at instant t and
// returns the contributors to the first overbooked resource (nodes first,
// then links, both in index order — a fixed scan order keeps repair
// deterministic).
func violatedAt(inst *core.Instance, sol *solution.Solution, t float64) ([]int, bool) {
	sub := inst.Sub
	nodeLoad := make([]float64, sub.NumNodes())
	linkLoad := make([]float64, sub.NumLinks())
	for r, req := range inst.Reqs {
		if !sol.Accepted[r] || t <= sol.Start[r] || t >= sol.End[r] {
			continue
		}
		for v, host := range sol.Hosts[r] {
			nodeLoad[host] += req.NodeDemand[v]
		}
		for lv := 0; lv < req.G.NumEdges(); lv++ {
			for ls, f := range sol.Flows[r][lv] {
				if f > numtol.FlowTol {
					linkLoad[ls] += req.LinkDemand[lv] * f
				}
			}
		}
	}
	for ns, load := range nodeLoad {
		if load > sub.NodeCap[ns]+numtol.CapTol {
			return nodeContributors(inst, sol, t, ns), true
		}
	}
	for ls, load := range linkLoad {
		if load > sub.LinkCap[ls]+numtol.CapTol {
			return linkContributors(inst, sol, t, ls), true
		}
	}
	return nil, false
}

func nodeContributors(inst *core.Instance, sol *solution.Solution, t float64, ns int) []int {
	var out []int
	for r, req := range inst.Reqs {
		if !sol.Accepted[r] || t <= sol.Start[r] || t >= sol.End[r] {
			continue
		}
		for v, host := range sol.Hosts[r] {
			if host == ns && req.NodeDemand[v] > 0 {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

func linkContributors(inst *core.Instance, sol *solution.Solution, t float64, ls int) []int {
	var out []int
	for r, req := range inst.Reqs {
		if !sol.Accepted[r] || t <= sol.Start[r] || t >= sol.End[r] {
			continue
		}
		for lv := 0; lv < req.G.NumEdges(); lv++ {
			if sol.Flows[r][lv][ls] > numtol.FlowTol && req.LinkDemand[lv] > 0 {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// repairSample resolves capacity violations by deferring contributors
// within their flexibility windows: the contributor with the most
// remaining slack that can still start at the violated interval's end is
// pushed to exactly that end (aligning it with an existing event). When no
// contributor can defer, the access-control objective rejects the
// cheapest contributor instead; fixed-set objectives fail the sample. The
// iteration guard bounds pathological defer chains — on overflow the
// sample is abandoned and the caller moves on (or falls back to B&B).
func repairSample(inst *core.Instance, sol *solution.Solution, obj core.Objective) (repairs, rejections int, ok bool) {
	maxIter := 16 + 8*len(inst.Reqs)
	for iter := 0; ; iter++ {
		t2, contribs, found := firstViolation(inst, sol)
		if !found {
			return repairs, rejections, true
		}
		if iter >= maxIter {
			return repairs, rejections, false
		}
		best, bestRoom := -1, 0.0
		for _, r := range contribs {
			latestStart := inst.Reqs[r].LatestStart()
			if latestStart+numtol.WindowTol < t2 {
				continue // cannot start after the violated interval
			}
			if room := latestStart - sol.Start[r]; room > bestRoom+numtol.TieEps {
				best, bestRoom = r, room
			}
		}
		if best >= 0 {
			ns := math.Min(t2, inst.Reqs[best].LatestStart())
			sol.Start[best] = ns
			sol.End[best] = ns + inst.Reqs[best].Duration
			repairs++
			continue
		}
		if obj.FixedSet() {
			return repairs, rejections, false
		}
		// Reject the contributor with the smallest revenue (ties to the
		// lowest index, for determinism).
		worst, minRev := -1, math.Inf(1)
		for _, r := range contribs {
			if rev := inst.Reqs[r].Duration * inst.Reqs[r].TotalNodeDemand(); rev < minRev-numtol.TieEps {
				worst, minRev = r, rev
			}
		}
		if worst < 0 {
			return repairs, rejections, false
		}
		sol.Accepted[worst] = false
		sol.Start[worst] = inst.Reqs[worst].Earliest
		sol.End[worst] = sol.Start[worst] + inst.Reqs[worst].Duration
		rejections++
	}
}

// scoreSample recomputes the objective exactly as the independent
// certificate does and reports whether the repaired sample is feasible.
// Feeding the candidate through certify itself (ignoring only the
// objective-mismatch class, since the objective is what is being computed)
// guarantees that any sample this returns feasible will later pass
// certify.Solution with zero violations.
func scoreSample(inst *core.Instance, mapping vnet.NodeMapping, sol *solution.Solution, obj core.Objective, loadFraction float64) (float64, bool) {
	rep := certify.Solution(inst, sol, certify.Options{
		Objective:    obj,
		LoadFraction: loadFraction,
		Mapping:      mapping,
	})
	for _, v := range rep.Violations {
		if v.Kind != certify.Objective {
			return 0, false
		}
	}
	sol.Objective = rep.RecomputedObjective
	return rep.RecomputedObjective, true
}
