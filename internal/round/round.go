// Package round implements the approximate solve tier: LP-relaxation
// randomized rounding with repair, after Rost & Schmid's "Virtual Network
// Embedding Approximations: Leveraging Randomized Rounding"
// (arXiv:1803.03622), adapted to the temporal dimension of the TVNEP.
//
// The tier solves only the LP relaxation of the cΣ-Model, decomposes the
// fractional optimum into weighted integral candidates per request — a
// probability distribution over start times read off the χ⁺ event-mapping
// mass (valid because the start1[r] rows sum χ⁺ to exactly one even when
// x_R is fractional) and a convex combination of substrate paths stripped
// from the x_R-normalized edge flows — then samples integral solutions
// with an explicitly seeded generator, repairs capacity violations by
// deferring requests within their flexibility windows, and falls back to
// the full branch-and-bound only when no sample survives repair. Every
// returned rounded solution has already passed the independent
// internal/certify checker with zero violations.
package round

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"time"

	"tvnep/internal/core"
	"tvnep/internal/model"
	"tvnep/internal/numtol"
	"tvnep/internal/solution"
	"tvnep/internal/vnet"
)

// DefaultSamples is the number of rounding samples drawn per solve when
// Options.Samples is unset. Sample 0 is always the deterministic
// threshold rounding; the rest are random draws from the LP distribution.
const DefaultSamples = 16

// Numerical floors of the rounding tier. All are named here so the
// floateq analyzer can see them as deliberate, package-local tolerances.
const (
	// xrFloor is the minimum LP acceptance mass at which a request may be
	// rounded up: below it, dividing the edge flows by x_R amplifies the
	// LP feasibility tolerance into flow that was never really there.
	xrFloor = 1e-3
	// weightCutoff drops dust entries from the χ⁺ start distribution.
	weightCutoff = 1e-9
	// stripCutoff is the residual below which a substrate edge is
	// considered drained during path stripping.
	stripCutoff = 1e-6
	// halfMass is the deterministic sample's acceptance threshold.
	halfMass = 0.5
)

// Options tunes a rounding solve. Direct construction is an internal
// lowering target; API consumers configure rounding through the pkg/tvnep
// facade (tvnep.WithAlgorithm(tvnep.Rounding) plus tvnep.WithSeed).
type Options struct {
	// Seed drives every random choice of the solve. Equal seeds on equal
	// instances give bit-identical solutions; there is no implicit
	// time- or package-level randomness anywhere in this package.
	Seed int64
	// Samples is the number of rounding samples to draw (default
	// DefaultSamples). Sample 0 is deterministic threshold rounding.
	Samples int
	// Objective, LoadFraction, CutMode and DisablePresolve configure the
	// underlying cΣ build exactly as core.BuildOptions does. CutLazy is
	// meaningless here (nothing separates cuts during a bare relaxation)
	// and is strengthened to CutStatic so the relaxation keeps the
	// Constraint-(20) rows it would otherwise lose.
	Objective       core.Objective
	LoadFraction    float64
	CutMode         core.CutMode
	DisablePresolve bool
	// Solve configures the branch-and-bound fallback run when no sample
	// survives repair. The LP relaxation itself takes no limits.
	Solve model.SolveOptions
	// DisableFallback turns the B&B fallback off: when set, a solve whose
	// samples all fail returns no solution instead of an exact run. Used
	// by tests that must observe the pure rounding behaviour.
	DisableFallback bool
}

// Stats reports per-solve statistics of the rounding tier.
type Stats struct {
	// LPIterations counts simplex iterations: the relaxation's, plus the
	// fallback B&B's when it ran.
	LPIterations int
	// LPBound is the LP relaxation optimum — an upper bound on every
	// integral solution (all objectives maximize).
	LPBound float64
	// Samples is the number of candidate samples drawn, Feasible how many
	// survived repair and certification, and BestSample the index of the
	// winning draw (-1 when the solve fell back or found nothing).
	Samples    int
	Feasible   int
	BestSample int
	// Repairs counts deferral operations and Rejections repair-forced
	// rejections (access control only), summed over all samples.
	Repairs    int
	Rejections int
	// FellBack is set when no sample survived and the exact B&B ran;
	// FallbackNodes is that run's node count.
	FellBack      bool
	FallbackNodes int
	// Runtime is the wall-clock time of the whole solve.
	Runtime time.Duration
}

// ErrNoMapping is returned when no fixed node mapping is supplied; like
// the greedy algorithm, rounding decomposes flows between pinned hosts.
var ErrNoMapping = errors.New("round: randomized rounding requires a fixed node mapping")

// Solve runs the randomized-rounding tier on the instance. The returned
// solution is indexed like inst.Reqs and has already passed the
// independent certificate; (nil, stats, nil) means no solution was found
// within the configured limits (for fixed-set objectives this implies the
// instance itself is infeasible when the LP relaxation was). Cancelling
// ctx stops the solve between samples and inside the fallback.
//
//det:entry
func Solve(ctx context.Context, inst *core.Instance, mapping vnet.NodeMapping, opts Options) (*solution.Solution, Stats, error) {
	var stats Stats
	stats.BestSample = -1
	if ctx == nil {
		ctx = context.Background()
	}
	if mapping == nil {
		return nil, stats, ErrNoMapping
	}
	start := time.Now() //lint:allow nondet -- runtime accounting only; never branches the search

	cutMode := opts.CutMode
	if cutMode == core.CutLazy {
		cutMode = core.CutStatic
	}
	b := core.BuildCSigma(inst, core.BuildOptions{
		Objective:       opts.Objective,
		LoadFraction:    opts.LoadFraction,
		FixedMapping:    mapping,
		CutMode:         cutMode,
		DisablePresolve: opts.DisablePresolve,
	})
	rel := b.Model.Relax()
	stats.LPIterations = rel.LPIterations
	if !rel.HasSolution {
		// The relaxation is infeasible, so the integral model is too;
		// there is nothing to round and nothing for B&B to find.
		stats.Runtime = time.Since(start) //lint:allow nondet -- runtime accounting only
		return nil, stats, nil
	}
	stats.LPBound = rel.Obj

	cands := decompose(b, rel)
	samples := opts.Samples
	if samples <= 0 {
		samples = DefaultSamples
	}
	embeddableAll := true
	for r := range cands {
		if !cands[r].embeddable {
			embeddableAll = false
			break
		}
	}

	var best *solution.Solution
	bestScore := math.Inf(-1)
	if embeddableAll || !opts.Objective.FixedSet() {
		rng := rand.New(rand.NewSource(opts.Seed))
		for s := 0; s < samples; s++ {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
			cand := drawSample(inst, mapping, cands, opts.Objective, s == 0, rng)
			if cand == nil {
				continue
			}
			stats.Samples++
			rep, rej, ok := repairSample(inst, cand, opts.Objective)
			stats.Repairs += rep
			stats.Rejections += rej
			if !ok {
				continue
			}
			score, feasible := scoreSample(inst, mapping, cand, opts.Objective, opts.LoadFraction)
			if !feasible {
				continue
			}
			stats.Feasible++
			if score > bestScore {
				best, bestScore = cand, score
				stats.BestSample = s
			}
		}
	}
	if best != nil {
		best.Bound = stats.LPBound
		if gap := (stats.LPBound - bestScore) / (1 + math.Abs(bestScore)); gap > 0 {
			best.Gap = gap
		}
		best.Optimal = best.Gap <= numtol.MIPGapTol
		stats.Runtime = time.Since(start) //lint:allow nondet -- runtime accounting only
		best.Runtime = stats.Runtime
		return best, stats, nil
	}
	if opts.DisableFallback {
		stats.Runtime = time.Since(start) //lint:allow nondet -- runtime accounting only
		return nil, stats, nil
	}

	// No sample survived repair: fall back to the exact branch-and-bound
	// on the already-built model (Relax never mutates it).
	stats.FellBack = true
	sol, ms := b.Solve(ctx, &opts.Solve)
	stats.LPIterations += ms.LPIterations
	stats.FallbackNodes = ms.Nodes
	stats.Runtime = time.Since(start) //lint:allow nondet -- runtime accounting only
	if sol == nil {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		return nil, stats, nil
	}
	sol.Runtime = stats.Runtime
	return sol, stats, nil
}

// MixSeed derives a work-item-local seed from a base seed and any number
// of distinguishing parts (decision index, scenario seed, flex bits, …)
// with a splitmix64-style finalizer, so concurrent work items never share
// a generator stream and per-item seeds stay reproducible.
func MixSeed(base int64, parts ...int64) int64 {
	// The base runs through the same finalizer as every part: mixing it in
	// by a plain xor/add would alias MixSeed(b+d, p) with MixSeed(b, p+d).
	z := splitmix(uint64(base) + 0x9e3779b97f4a7c15)
	for _, p := range parts {
		z = splitmix(z + uint64(p) + 0x9e3779b97f4a7c15)
	}
	return int64(z)
}

// splitmix is the SplitMix64 output finalizer.
func splitmix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
