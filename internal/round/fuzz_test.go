package round

import (
	"context"
	"encoding/json"
	"testing"

	"tvnep/internal/certify"
	"tvnep/internal/core"
	"tvnep/internal/solution"
	"tvnep/internal/workload"
)

// Size caps of one fuzz execution: anything larger is rejected up front so
// a single input can never turn the harness into an LP stress test.
const (
	fuzzMaxRequests = 8
	fuzzMaxNodes    = 16
	fuzzMaxHorizon  = 1e5
)

// FuzzRoundingRepair is the crash-and-contract harness of the rounding
// tier: any byte string that decodes to a valid workload scenario is
// rounded (fallback disabled, so the sampling + repair pipeline itself is
// on trial) and every solution that comes back must pass the independent
// certify.Solution checker with zero violations — the same trust property
// TestRoundingPropertyCertifies pins on the curated grid, extended to
// adversarial instances.
func FuzzRoundingRepair(f *testing.F) {
	cfg := workload.Default()
	cfg.GridRows, cfg.GridCols, cfg.NumRequests = 2, 2, 3
	for seed := int64(1); seed <= 3; seed++ {
		cfg.FlexibilityHr = float64(seed - 1)
		sc := workload.Generate(cfg, seed)
		data, err := json.Marshal(sc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"substrate":{"nodes":1,"node_caps":[1]},"horizon":1}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var sc workload.Scenario
		if err := json.Unmarshal(data, &sc); err != nil {
			return // rejected inputs are out of contract
		}
		if sc.Validate() != nil {
			return
		}
		if len(sc.Requests) == 0 || len(sc.Requests) > fuzzMaxRequests ||
			sc.Substrate.NumNodes() > fuzzMaxNodes || sc.Horizon > fuzzMaxHorizon {
			return
		}
		inst := &core.Instance{Sub: sc.Substrate, Reqs: sc.Requests, Horizon: sc.Horizon}
		if inst.Validate() != nil {
			return
		}
		for _, obj := range []core.Objective{core.AccessControl, core.MinMakespan} {
			sol, stats, err := Solve(context.Background(), inst, sc.Mapping, Options{
				Seed:            MixSeed(1, int64(len(data)), int64(obj)),
				Samples:         4,
				Objective:       obj,
				DisableFallback: true,
			})
			if err != nil {
				t.Fatalf("obj=%v: %v", obj, err)
			}
			if sol == nil {
				continue
			}
			if stats.FellBack {
				t.Fatalf("obj=%v: fell back with fallback disabled", obj)
			}
			rep := certify.Solution(inst, sol, certify.Options{Objective: obj, Mapping: sc.Mapping})
			if !rep.OK() {
				t.Fatalf("obj=%v: rounded solution failed certification: %v\nscenario: %s", obj, rep.Err(), data)
			}
			if err := solution.Check(inst.Sub, inst.Reqs, sol); err != nil {
				t.Fatalf("obj=%v: %v", obj, err)
			}
		}
	})
}
