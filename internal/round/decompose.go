package round

import (
	"math"
	"sort"

	"tvnep/internal/core"
	"tvnep/internal/graph"
	"tvnep/internal/model"
)

// startCand is one candidate start time with its χ⁺ probability mass.
type startCand struct {
	t float64
	w float64
}

// pathCand is one substrate path for a virtual link with its flow mass.
type pathCand struct {
	edges []int32
	w     float64
}

// linkCand is the flow decomposition of one virtual link: a convex
// combination of substrate paths whose weights sum to exactly one, plus
// the re-mixed fractional flow it induces (which therefore conserves one
// unit exactly, unlike the raw LP flow divided by a fractional x_R).
type linkCand struct {
	paths []pathCand
	mix   []float64
}

// reqCand is the per-request decomposition of the fractional LP solution:
// an acceptance mass, a probability distribution over candidate start
// times (valid because the start1[r] row sums χ⁺ to exactly one whether or
// not x_R is fractional), and a path decomposition per virtual link.
type reqCand struct {
	xr         float64
	starts     []startCand // ascending time, weights sum to 1
	links      []linkCand
	embeddable bool // flow decomposition succeeded
}

// decompose splits the LP relaxation into per-request rounding candidates.
// Requests whose acceptance mass is below xrFloor keep embeddable=false
// and are never rounded up (their normalized flows would be LP noise).
func decompose(b *core.Built, rel *model.Solution) []reqCand {
	k := len(b.Inst.Reqs)
	cands := make([]reqCand, k)
	for r := range b.Inst.Reqs {
		cands[r] = decomposeRequest(b, rel, r)
	}
	return cands
}

// decomposeRequest builds the rounding candidate for a single request.
func decomposeRequest(b *core.Built, rel *model.Solution, r int) reqCand {
	req := b.Inst.Reqs[r]
	c := reqCand{xr: clamp(rel.Value(b.XR[r]), 0, 1)}

	// Temporal-window selection: each χ⁺[r][i] with positive mass nominates
	// the LP value of its event time as a candidate start.
	lo, hi := req.Earliest, math.Max(req.Earliest, req.LatestStart())
	sum := 0.0
	for i := range b.ChiPlus[r] {
		v := b.ChiPlus[r][i]
		if !v.Valid() {
			continue
		}
		w := rel.Value(v)
		if w <= weightCutoff {
			continue
		}
		t := clamp(rel.Value(b.TEvent[i]), lo, hi)
		c.starts = append(c.starts, startCand{t: t, w: w})
		sum += w
	}
	if sum <= weightCutoff {
		c.starts = []startCand{{t: lo, w: 1}}
	} else {
		for i := range c.starts {
			c.starts[i].w /= sum
		}
		sort.SliceStable(c.starts, func(a, b int) bool { return c.starts[a].t < c.starts[b].t })
	}

	// Flow decomposition. Dividing the LP edge flows by a tiny x_R
	// amplifies the solver's feasibility tolerance into real flow, so
	// requests below the floor are never rounded up at all.
	if c.xr < xrFloor {
		return c
	}
	sub := b.Inst.Sub
	mapping := b.Opts.FixedMapping
	c.links = make([]linkCand, req.G.NumEdges())
	for lv := 0; lv < req.G.NumEdges(); lv++ {
		u, v := req.G.Edge(lv)
		src, dst := mapping[r][u], mapping[r][v]
		if src == dst {
			c.links[lv] = linkCand{mix: make([]float64, sub.NumLinks())}
			continue
		}
		raw := make([]float64, sub.NumLinks())
		for ls := range raw {
			f := rel.Value(b.XE[r][lv][ls]) / c.xr
			if f > 0 {
				raw[ls] = f
			}
		}
		paths := stripPaths(sub.G, raw, src, dst)
		if len(paths) == 0 {
			if edges := bfsPath(sub.G, src, dst); edges != nil {
				paths = []pathCand{{edges: edges, w: 1}}
			} else {
				return c // substrate cannot connect the pinned hosts
			}
		}
		// Renormalize so the path weights sum to exactly one; the re-mixed
		// flow then satisfies unit conservation to machine precision
		// regardless of LP noise in the raw flows.
		total := 0.0
		for _, p := range paths {
			total += p.w
		}
		mix := make([]float64, sub.NumLinks())
		for i := range paths {
			paths[i].w /= total
			for _, e := range paths[i].edges {
				mix[e] += paths[i].w
			}
		}
		c.links[lv] = linkCand{paths: paths, mix: mix}
	}
	c.embeddable = true
	return c
}

// stripPaths greedily decomposes a (noisy) src→dst unit flow into simple
// paths: repeatedly walk out of src along the heaviest remaining out-edge
// (ties broken by edge index, so the decomposition is deterministic),
// cancel any cycle met on the walk stack, and subtract the bottleneck of
// each completed path. Every completed walk, cancelled cycle or dead-end
// retreat zeroes at least one edge, so the loop terminates.
func stripPaths(g *graph.Digraph, flow []float64, src, dst int) []pathCand {
	residual := append([]float64(nil), flow...)
	var paths []pathCand
	pos := make([]int, g.N)
	steps, maxSteps := 0, 64*(len(flow)+4)
	for {
		for i := range pos {
			pos[i] = -1
		}
		nodeStack := []int{src}
		edgeStack := []int32{}
		pos[src] = 0
		done := false
		for !done {
			steps++
			if steps > maxSteps {
				return paths
			}
			u := nodeStack[len(nodeStack)-1]
			best, bestF := int32(-1), stripCutoff
			for _, e := range g.Out(u) {
				if residual[e] > bestF {
					best, bestF = e, residual[e]
				}
			}
			if best < 0 {
				if len(edgeStack) == 0 {
					return paths // source dried up
				}
				// Dead end: the edge we arrived by cannot reach dst with
				// the remaining residual, so remove it and back up.
				residual[edgeStack[len(edgeStack)-1]] = 0
				edgeStack = edgeStack[:len(edgeStack)-1]
				pos[u] = -1
				nodeStack = nodeStack[:len(nodeStack)-1]
				continue
			}
			_, v := g.Edge(int(best))
			if p := pos[v]; p >= 0 {
				// Cycle: cancel it so the walk cannot revisit it.
				bn := residual[best]
				for _, e := range edgeStack[p:] {
					if residual[e] < bn {
						bn = residual[e]
					}
				}
				residual[best] -= bn
				if residual[best] <= stripCutoff {
					residual[best] = 0
				}
				for _, e := range edgeStack[p:] {
					residual[e] -= bn
					if residual[e] <= stripCutoff {
						residual[e] = 0
					}
				}
				for _, n := range nodeStack[p+1:] {
					pos[n] = -1
				}
				nodeStack = nodeStack[:p+1]
				edgeStack = edgeStack[:p]
				continue
			}
			edgeStack = append(edgeStack, best)
			pos[v] = len(nodeStack)
			nodeStack = append(nodeStack, v)
			if v == dst {
				bn := math.Inf(1)
				for _, e := range edgeStack {
					if residual[e] < bn {
						bn = residual[e]
					}
				}
				for _, e := range edgeStack {
					residual[e] -= bn
					if residual[e] <= stripCutoff {
						residual[e] = 0
					}
				}
				paths = append(paths, pathCand{edges: append([]int32(nil), edgeStack...), w: bn})
				done = true
			}
		}
	}
}

// bfsPath returns a hop-shortest src→dst edge path (deterministic: BFS in
// edge-index order), or nil when dst is unreachable. It backstops the
// greedy stripping when the LP flow is too noisy to walk.
func bfsPath(g *graph.Digraph, src, dst int) []int32 {
	parentEdge := make([]int32, g.N)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	visited := make([]bool, g.N)
	visited[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, e := range g.Out(u) {
			_, v := g.Edge(int(e))
			if !visited[v] {
				visited[v] = true
				parentEdge[v] = e
				queue = append(queue, v)
			}
		}
	}
	if !visited[dst] {
		return nil
	}
	var rev []int32
	for u := dst; u != src; {
		e := parentEdge[u]
		rev = append(rev, e)
		from, _ := g.Edge(int(e))
		u = from
	}
	edges := make([]int32, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return edges
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
