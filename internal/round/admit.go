package round

import (
	"math"
	"math/rand"

	"tvnep/internal/core"
	"tvnep/internal/model"
	"tvnep/internal/numtol"
	"tvnep/internal/solution"
)

// AdmitSample rounds the LP relaxation of one admission subproblem: every
// committed request keeps its pinned schedule and flows (their relaxation
// values are exact, the engine fixed their bounds), only the arriving
// request — index newIdx, the last one — is rounded. Flow candidates come
// from the same path decomposition as the offline solve; the start is the
// earliest one that fits, found by walking the request forward over the
// violated intervals (deferral restricted to the new request: committed
// schedules must never move). Returns nil when no sample fits, in which
// case the caller proceeds to the exact branch-and-bound tier.
//
// The rel solution must be the optimum of b's relaxation; calls with a
// fractional acceptance x_R(new) < 1 return nil immediately (rounding the
// request up against a relaxation that would rather not take it whole is
// exactly the case the exact tier exists for).
func AdmitSample(b *core.Built, rel *model.Solution, newIdx int, seed int64, samples int) *solution.Solution {
	if rel == nil || !rel.HasSolution {
		return nil
	}
	if rel.Value(b.XR[newIdx]) < 1-numtol.MIPIntTol {
		return nil
	}
	cand := decomposeRequest(b, rel, newIdx)
	if !cand.embeddable {
		return nil
	}
	base := b.Extract(rel)
	if base == nil {
		return nil
	}
	base.Warnings = nil // fractional t⁻ disagreements are expected here
	base.Accepted[newIdx] = true

	req := b.Inst.Reqs[newIdx]
	latestStart := math.Max(req.Earliest, req.LatestStart())
	rng := rand.New(rand.NewSource(seed))
	if samples <= 0 {
		samples = DefaultSamples
	}
	for s := 0; s <= samples; s++ {
		flows := make([][]float64, req.G.NumEdges())
		for lv := range flows {
			lc := &cand.links[lv]
			if s == 0 || len(lc.paths) <= 1 {
				flows[lv] = append([]float64(nil), lc.mix...)
			} else {
				flows[lv] = samplePath(lc, b.Inst.Sub.NumLinks(), rng)
			}
		}
		base.Flows[newIdx] = flows
		// Walk the start forward over violated intervals. The committed
		// system alone is feasible (engine invariant), so every violation
		// involves the new request and its interval ends after the current
		// start — each step makes strict progress.
		start := req.Earliest
		for iter := 0; iter <= 2*len(b.Inst.Reqs)+8; iter++ {
			base.Start[newIdx] = start
			base.End[newIdx] = start + req.Duration
			t2, _, found := firstViolation(b.Inst, base)
			if !found {
				return base
			}
			if t2 > latestStart+numtol.WindowTol || t2 <= start {
				break // this flow choice cannot fit the window
			}
			start = math.Min(t2, latestStart)
		}
	}
	return nil
}
