// Package graph provides directed-graph utilities used across the TVNEP
// library: adjacency bookkeeping, grid/star generators, reachability,
// topological sorting, and all-pairs longest distances on DAGs (the
// Floyd–Warshall variant the temporal dependency graph cuts of Section IV-C
// rely on).
package graph

import (
	"fmt"
	"math"
)

// Digraph is a directed graph on nodes 0..N-1 with parallel-edge-free edges.
type Digraph struct {
	N     int
	edges [][2]int32
	out   [][]int32 // edge indices leaving each node
	in    [][]int32 // edge indices entering each node
	seen  map[[2]int32]bool
}

// NewDigraph creates a digraph with n nodes and no edges.
func NewDigraph(n int) *Digraph {
	return &Digraph{
		N:    n,
		out:  make([][]int32, n),
		in:   make([][]int32, n),
		seen: make(map[[2]int32]bool),
	}
}

// NumEdges reports the number of edges.
func (g *Digraph) NumEdges() int { return len(g.edges) }

// AddEdge inserts the directed edge u→v and returns its index. Duplicate
// edges and self-loops panic: the substrate and request topologies of the
// paper contain neither.
func (g *Digraph) AddEdge(u, v int) int {
	if u < 0 || u >= g.N || v < 0 || v >= g.N {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.N))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	key := [2]int32{int32(u), int32(v)}
	if g.seen[key] {
		panic(fmt.Sprintf("graph: duplicate edge (%d,%d)", u, v))
	}
	g.seen[key] = true
	idx := len(g.edges)
	g.edges = append(g.edges, key)
	g.out[u] = append(g.out[u], int32(idx))
	g.in[v] = append(g.in[v], int32(idx))
	return idx
}

// Edge returns the endpoints of edge e.
func (g *Digraph) Edge(e int) (u, v int) {
	return int(g.edges[e][0]), int(g.edges[e][1])
}

// Out returns the indices of edges leaving u (shared slice; do not mutate).
func (g *Digraph) Out(u int) []int32 { return g.out[u] }

// In returns the indices of edges entering v (shared slice; do not mutate).
func (g *Digraph) In(v int) []int32 { return g.in[v] }

// HasEdge reports whether u→v exists.
func (g *Digraph) HasEdge(u, v int) bool { return g.seen[[2]int32{int32(u), int32(v)}] }

// Grid returns a directed rows×cols grid: every pair of 4-neighbour nodes is
// connected by edges in both directions (the paper's substrate topology).
// Node (r,c) has index r*cols + c.
func Grid(rows, cols int) *Digraph {
	g := NewDigraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
				g.AddEdge(id(r, c+1), id(r, c))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
				g.AddEdge(id(r+1, c), id(r, c))
			}
		}
	}
	return g
}

// Star returns a star on 1+leaves nodes with node 0 as center. If inward is
// true all edges point towards the center, otherwise away from it (the two
// request topologies of Section VI-A).
func Star(leaves int, inward bool) *Digraph {
	g := NewDigraph(1 + leaves)
	for l := 1; l <= leaves; l++ {
		if inward {
			g.AddEdge(l, 0)
		} else {
			g.AddEdge(0, l)
		}
	}
	return g
}

// Chain returns a directed path 0→1→…→n-1.
func Chain(n int) *Digraph {
	g := NewDigraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

// TopoSort returns a topological order of the nodes, or ok=false if the
// graph contains a cycle.
func (g *Digraph) TopoSort() (order []int, ok bool) {
	indeg := make([]int, g.N)
	for v := 0; v < g.N; v++ {
		indeg[v] = len(g.in[v])
	}
	queue := make([]int, 0, g.N)
	for v := 0; v < g.N; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.out[v] {
			_, w := g.Edge(int(e))
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, len(order) == g.N
}

// Reachable returns the set of nodes reachable from src (excluding src
// unless it lies on a cycle).
func (g *Digraph) Reachable(src int) []bool {
	vis := make([]bool, g.N)
	stack := []int{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[v] {
			_, w := g.Edge(int(e))
			if !vis[w] {
				vis[w] = true
				stack = append(stack, w)
			}
		}
	}
	return vis
}

// NegInf marks "unreachable" in LongestDistances results.
var NegInf = math.Inf(-1)

// LongestDistances computes all-pairs longest path lengths on a DAG with
// the given edge weights, using the Floyd–Warshall scheme on negated
// weights as in the paper (Section IV-C). dist[u][v] = NegInf when v is not
// reachable from u; dist[u][u] = 0. Panics if the graph is cyclic.
func (g *Digraph) LongestDistances(weight func(e int) float64) [][]float64 {
	if _, ok := g.TopoSort(); !ok {
		panic("graph: LongestDistances requires a DAG")
	}
	n := g.N
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			dist[i][j] = NegInf
		}
		dist[i][i] = 0
	}
	for e := range g.edges {
		u, v := g.Edge(e)
		w := weight(e)
		if w > dist[u][v] {
			dist[u][v] = w
		}
	}
	for k := 0; k < n; k++ {
		dk := dist[k]
		for i := 0; i < n; i++ {
			dik := dist[i][k]
			if math.IsInf(dik, -1) {
				continue
			}
			di := dist[i]
			for j := 0; j < n; j++ {
				if c := dik + dk[j]; c > di[j] {
					di[j] = c
				}
			}
		}
	}
	return dist
}
