package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridShape(t *testing.T) {
	// The paper's 4×5 grid: 20 nodes, 62 directed edges.
	g := Grid(4, 5)
	if g.N != 20 {
		t.Fatalf("nodes = %d, want 20", g.N)
	}
	if g.NumEdges() != 62 {
		t.Fatalf("edges = %d, want 62 (paper, Section VI-A)", g.NumEdges())
	}
}

func TestGridSmall(t *testing.T) {
	g := Grid(3, 3)
	if g.N != 9 || g.NumEdges() != 24 {
		t.Fatalf("3x3 grid: %d nodes %d edges, want 9, 24", g.N, g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(0, 3) {
		t.Fatal("grid adjacency broken")
	}
	if g.HasEdge(0, 4) {
		t.Fatal("diagonal edge should not exist")
	}
}

func TestStar(t *testing.T) {
	in := Star(4, true)
	if in.N != 5 || in.NumEdges() != 4 {
		t.Fatalf("star: %d nodes %d edges", in.N, in.NumEdges())
	}
	for e := 0; e < 4; e++ {
		_, v := in.Edge(e)
		if v != 0 {
			t.Fatalf("inward star edge %d does not point to center", e)
		}
	}
	out := Star(3, false)
	for e := 0; e < 3; e++ {
		u, _ := out.Edge(e)
		if u != 0 {
			t.Fatalf("outward star edge %d does not leave center", e)
		}
	}
}

func TestChainTopoSort(t *testing.T) {
	g := Chain(5)
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("chain reported cyclic")
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("topo order %v, want identity", order)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, ok := g.TopoSort(); ok {
		t.Fatal("cycle not detected")
	}
}

func TestReachable(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	vis := g.Reachable(0)
	if !vis[1] || !vis[2] || vis[3] || vis[0] {
		t.Fatalf("reachable from 0 = %v", vis)
	}
}

func TestLongestDistances(t *testing.T) {
	// 0→1→2 and 0→2, weights: edge from 0: 1, from 1: 2.
	g := NewDigraph(3)
	e01 := g.AddEdge(0, 1)
	e12 := g.AddEdge(1, 2)
	e02 := g.AddEdge(0, 2)
	w := map[int]float64{e01: 1, e12: 2, e02: 1}
	dist := g.LongestDistances(func(e int) float64 { return w[e] })
	if dist[0][2] != 3 { // 0→1→2 beats direct 0→2
		t.Fatalf("dist[0][2] = %v, want 3", dist[0][2])
	}
	if dist[0][1] != 1 || dist[1][2] != 2 {
		t.Fatalf("dist = %v", dist)
	}
	if !math.IsInf(dist[2][0], -1) {
		t.Fatalf("dist[2][0] = %v, want -Inf", dist[2][0])
	}
	if dist[1][1] != 0 {
		t.Fatalf("diagonal not 0")
	}
}

func TestLongestDistancesPanicsOnCycle(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on cyclic graph")
		}
	}()
	g.LongestDistances(func(int) float64 { return 1 })
}

func TestDuplicateEdgePanics(t *testing.T) {
	g := NewDigraph(2)
	g.AddEdge(0, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate edge")
		}
	}()
	g.AddEdge(0, 1)
}

func TestSelfLoopPanics(t *testing.T) {
	g := NewDigraph(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on self loop")
		}
	}()
	g.AddEdge(1, 1)
}

func TestInOutConsistency(t *testing.T) {
	g := Grid(2, 3)
	// Total out-degree == total in-degree == edges.
	tot := 0
	for v := 0; v < g.N; v++ {
		tot += len(g.Out(v))
	}
	if tot != g.NumEdges() {
		t.Fatalf("out-degree sum %d != edges %d", tot, g.NumEdges())
	}
	tot = 0
	for v := 0; v < g.N; v++ {
		tot += len(g.In(v))
	}
	if tot != g.NumEdges() {
		t.Fatalf("in-degree sum %d != edges %d", tot, g.NumEdges())
	}
}

// Property: grid edge count formula 2·(r(c−1) + c(r−1)).
func TestQuickGridEdgeCount(t *testing.T) {
	f := func(a, b uint8) bool {
		r := int(a%5) + 1
		c := int(b%5) + 1
		g := Grid(r, c)
		want := 2 * (r*(c-1) + c*(r-1))
		return g.NumEdges() == want && g.N == r*c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: grids of any size are strongly-connected enough that node 0
// reaches every other node.
func TestQuickGridReachability(t *testing.T) {
	f := func(a, b uint8) bool {
		r := int(a%4) + 1
		c := int(b%4) + 1
		g := Grid(r, c)
		vis := g.Reachable(0)
		for v := 1; v < g.N; v++ {
			if !vis[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
