package eval

import (
	"context"
	"fmt"
	"io"
	"strings"

	"tvnep/internal/core"
	"tvnep/internal/model"
	"tvnep/internal/numtol"
	"tvnep/internal/solution"
)

// AblationVariant names one cΣ configuration in the cuts/presolve ablation.
type AblationVariant struct {
	Name            string
	CutMode         core.CutMode
	DisablePresolve bool
}

// AblationVariants enumerates the cΣ configurations of DESIGN.md §6 plus the
// lazy-separation variant: identical cut family to "cΣ full" but the
// Constraint-(20) rows enter the LP through the separation pipeline instead
// of static emission.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "cΣ full", CutMode: core.CutStatic, DisablePresolve: false},
		{Name: "cΣ lazy-cuts", CutMode: core.CutLazy, DisablePresolve: false},
		{Name: "cΣ no-cuts", CutMode: core.CutOff, DisablePresolve: false},
		{Name: "cΣ no-presolve", CutMode: core.CutStatic, DisablePresolve: true},
		{Name: "cΣ bare", CutMode: core.CutOff, DisablePresolve: true},
	}
}

// AblationRecord extends Record with model-size statistics.
type AblationRecord struct {
	Record
	Variant    string
	NumVars    int
	NumConstrs int
	NumInts    int
	// SeparatedRows counts cut rows appended during the solve (lazy variant
	// only; static rows are included in NumConstrs instead).
	SeparatedRows int
}

// AblationSweep quantifies the contribution of the temporal dependency
// graph cuts, of the lazy separation pipeline and of the activity-interval
// presolve (Section IV-C): it solves every scenario with the five cΣ
// variants and records runtimes, node counts and model sizes. Variants must
// (and are verified to) agree on the optimum whenever both solve to proven
// optimality.
//
//det:entry
func (c Config) AblationSweep(ctx context.Context, progress io.Writer) ([]AblationRecord, error) {
	type ablResult struct {
		recs []AblationRecord
		log  string
		err  error
	}
	keys := c.pairs()
	var out []AblationRecord
	var firstErr error
	runOrdered(ctx, c.Solve.Workers, len(keys),
		func(ctx context.Context, i int) ablResult {
			flex, seed := keys[i].flex, keys[i].seed
			inst, mapping := c.scenario(flex, seed)
			var log strings.Builder
			var res ablResult
			best := map[string]float64{}
			for _, v := range AblationVariants() {
				b := core.BuildCSigma(inst, core.BuildOptions{
					Objective:       core.AccessControl,
					FixedMapping:    mapping,
					CutMode:         v.CutMode,
					DisablePresolve: v.DisablePresolve,
				})
				inner := c.innerSolve()
				sol, ms := b.Solve(ctx, &inner)
				c.count(ms)
				rec := AblationRecord{
					Record: Record{
						FlexMin: flex, Seed: seed, Form: core.CSigma,
						Obj: core.AccessControl, Algo: "mip",
						Runtime: ms.Runtime, Gap: ms.Gap,
						Nodes: ms.Nodes, LPIters: ms.LPIterations,
						Optimal: ms.Status == model.StatusOptimal,
					},
					Variant:       v.Name,
					NumVars:       b.Model.NumVars(),
					NumConstrs:    b.Model.NumConstrs(),
					NumInts:       b.Model.NumIntVars(),
					SeparatedRows: ms.Cuts.SeparatedRows,
				}
				if sol != nil {
					rec.Value = sol.Objective
					rec.Accepted = sol.NumAccepted()
					rec.Feasible = solution.Check(inst.Sub, inst.Reqs, sol) == nil
				}
				if rec.Optimal {
					best[v.Name] = rec.Value
				}
				res.recs = append(res.recs, rec)
				fmt.Fprintf(&log, "flex=%3.0f seed=%2d %-14s obj=%7.2f time=%7.2fs nodes=%5d vars=%d rows=%d\n",
					flex, seed, v.Name, rec.Value, rec.Runtime.Seconds(), rec.Nodes, rec.NumVars, rec.NumConstrs)
			}
			// Cross-variant sanity: proven optima must agree.
			var ref float64
			first := true
			for name, v := range best {
				if first {
					ref, first = v, false
					continue
				}
				if diff := v - ref; diff > numtol.ObjTol || diff < -numtol.ObjTol {
					res.err = fmt.Errorf("ablation mismatch at flex=%v seed=%d: %s=%v vs ref=%v",
						flex, seed, name, v, ref)
					break
				}
			}
			res.log = log.String()
			return res
		},
		func(_ int, r ablResult) {
			out = append(out, r.recs...)
			if progress != nil && r.log != "" {
				io.WriteString(progress, r.log)
			}
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
		})
	return out, firstErr
}

// WriteAblation renders the ablation results grouped by variant.
func WriteAblation(w io.Writer, recs []AblationRecord, cfg Config) {
	fmt.Fprintln(w, "# Ablation — cΣ with/without dependency-graph cuts and presolve")
	for _, v := range AblationVariants() {
		fmt.Fprintf(w, "## %s\n", v.Name)
		fmt.Fprintf(w, "%10s %12s %12s %10s %10s %10s %10s\n", "flex_min", "med_time_s", "med_nodes", "med_vars", "med_rows", "med_sep", "solved")
		for _, flex := range cfg.FlexMinutes {
			var times, nodes, vars, rows, sep []float64
			solved, total := 0, 0
			for _, r := range recs {
				//lint:allow floateq -- FlexMin is copied verbatim from the config grid; bit-exact group key
				if r.Variant != v.Name || r.FlexMin != flex {
					continue
				}
				total++
				if r.Optimal {
					solved++
					times = append(times, r.Runtime.Seconds())
				} else {
					times = append(times, cfg.Solve.TimeLimit.Seconds())
				}
				nodes = append(nodes, float64(r.Nodes))
				vars = append(vars, float64(r.NumVars))
				rows = append(rows, float64(r.NumConstrs))
				sep = append(sep, float64(r.SeparatedRows))
			}
			fmt.Fprintf(w, "%10.0f %12.4g %12.4g %10.4g %10.4g %10.4g %7d/%d\n",
				flex, median(times), median(nodes), median(vars), median(rows), median(sep), solved, total)
		}
	}
	fmt.Fprintln(w)
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if n := len(cp); n%2 == 1 {
		return cp[n/2]
	} else {
		return (cp[n/2-1] + cp[n/2]) / 2
	}
}
