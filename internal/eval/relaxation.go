package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	"tvnep/internal/core"
)

// RelaxationRecord captures the LP-relaxation objective of one formulation
// on one scenario (maximization: smaller bound = stronger relaxation).
type RelaxationRecord struct {
	FlexMin float64
	Seed    int64
	Form    core.Formulation
	Bound   float64 // LP relaxation objective (upper bound on the optimum)
	Exact   float64 // integer optimum (NaN if not computed)
}

// RelaxationSweep reproduces the Section III strength argument numerically:
// it solves the LP relaxation of the Δ-, Σ- and cΣ-Model on every scenario
// (plus the cΣ integer optimum as the reference) and reports the bounds.
// The expected ordering is bound(Δ) ≥ bound(Σ) ≥ bound(cΣ) ≥ optimum.
//
//det:entry
func (c Config) RelaxationSweep(ctx context.Context, progress io.Writer) []RelaxationRecord {
	type relResult struct {
		recs []RelaxationRecord
		log  string
	}
	keys := c.pairs()
	var out []RelaxationRecord
	runOrdered(ctx, c.Solve.Workers, len(keys),
		func(ctx context.Context, i int) relResult {
			flex, seed := keys[i].flex, keys[i].seed
			inst, mapping := c.scenario(flex, seed)
			var log strings.Builder
			var res relResult
			exact := math.NaN()
			if rec := c.solveOne(ctx, core.CSigma, core.AccessControl, inst, mapping, flex, seed); rec.Optimal {
				exact = rec.Value
			}
			for _, f := range []core.Formulation{core.Delta, core.Sigma, core.CSigma} {
				b := core.Build(f, inst, core.BuildOptions{
					Objective: core.AccessControl, FixedMapping: mapping,
				})
				rel := b.Model.Relax()
				rec := RelaxationRecord{FlexMin: flex, Seed: seed, Form: f, Exact: exact}
				if rel.HasSolution {
					rec.Bound = rel.Obj
				} else {
					rec.Bound = math.NaN()
				}
				res.recs = append(res.recs, rec)
				fmt.Fprintf(&log, "flex=%3.0f seed=%2d %-2v relaxation=%8.3f exact=%8.3f\n",
					flex, seed, f, rec.Bound, exact)
			}
			res.log = log.String()
			return res
		},
		func(_ int, r relResult) {
			out = append(out, r.recs...)
			if progress != nil && r.log != "" {
				io.WriteString(progress, r.log)
			}
		})
	return out
}

// WriteRelaxation renders per-formulation mean relaxation bounds and the
// integrality gap they leave.
func WriteRelaxation(w io.Writer, recs []RelaxationRecord, cfg Config) {
	fmt.Fprintln(w, "# Relaxation strength — LP bound of Δ/Σ/cΣ vs the integer optimum (Section III)")
	fmt.Fprintf(w, "%10s %14s %14s %14s %14s\n", "flex_min", "Δ bound", "Σ bound", "cΣ bound", "exact")
	for _, flex := range cfg.FlexMinutes {
		var sums [3]float64
		var counts [3]int
		exSum, exCount := 0.0, 0
		for _, r := range recs {
			//lint:allow floateq -- FlexMin is copied verbatim from the config grid; bit-exact group key
			if r.FlexMin != flex || math.IsNaN(r.Bound) {
				continue
			}
			sums[int(r.Form)] += r.Bound
			counts[int(r.Form)]++
			if r.Form == core.CSigma && !math.IsNaN(r.Exact) {
				exSum += r.Exact
				exCount++
			}
		}
		mean := func(i int) float64 {
			if counts[i] == 0 {
				return math.NaN()
			}
			return sums[i] / float64(counts[i])
		}
		exact := math.NaN()
		if exCount > 0 {
			exact = exSum / float64(exCount)
		}
		fmt.Fprintf(w, "%10.0f %14.4f %14.4f %14.4f %14.4f\n",
			flex, mean(int(core.Delta)), mean(int(core.Sigma)), mean(int(core.CSigma)), exact)
	}
	fmt.Fprintln(w)
}
