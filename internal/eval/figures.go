package eval

import (
	"fmt"
	"math"
	"sort"

	"tvnep/internal/core"
)

// Figure3 — runtime of the Δ-, Σ- and cΣ-Model as a function of temporal
// flexibility under the access-control objective. Solves cut off at the
// time limit report the limit itself, as in the paper ("a runtime of 3600
// implies that no optimal solution has been found").
func Figure3(records []Record, cfg Config) []Series {
	var out []Series
	for _, f := range []core.Formulation{core.Delta, core.Sigma, core.CSigma} {
		form := f
		x, sums := collect(records, cfg.FlexMinutes,
			func(r Record) bool { return r.Algo == "mip" && r.Form == form && r.Obj == core.AccessControl },
			func(r Record) float64 {
				if !r.Optimal {
					return cfg.Solve.TimeLimit.Seconds()
				}
				return r.Runtime.Seconds()
			})
		out = append(out, Series{Label: fmt.Sprintf("runtime[s] %v-Model", form), X: x, Summaries: sums})
	}
	return out
}

// Figure4 — objective gap after the time limit, per formulation. Scenarios
// solved to optimality contribute gap 0; scenarios without any feasible
// solution contribute +Inf (rendered as the paper's ∞ marker; summarized
// here by capping at a large sentinel so quartiles stay printable).
func Figure4(records []Record, cfg Config) []Series {
	const infSentinel = 1e6
	var out []Series
	for _, f := range []core.Formulation{core.Delta, core.Sigma, core.CSigma} {
		form := f
		x, sums := collect(records, cfg.FlexMinutes,
			func(r Record) bool { return r.Algo == "mip" && r.Form == form && r.Obj == core.AccessControl },
			func(r Record) float64 {
				if math.IsInf(r.Gap, 1) {
					return infSentinel
				}
				return r.Gap * 100 // percent
			})
		out = append(out, Series{Label: fmt.Sprintf("gap[%%] %v-Model (1e6 ≙ ∞)", form), X: x, Summaries: sums})
	}
	return out
}

// Figure5 — runtime of the cΣ-Model under the three fixed-set objectives.
func Figure5(records []Record, cfg Config) []Series {
	var out []Series
	for _, o := range []core.Objective{core.MaxEarliness, core.BalanceNodeLoad, core.DisableLinks} {
		obj := o
		x, sums := collect(records, cfg.FlexMinutes,
			func(r Record) bool { return r.Algo == "mip" && r.Obj == obj },
			func(r Record) float64 {
				if !r.Optimal {
					return cfg.Solve.TimeLimit.Seconds()
				}
				return r.Runtime.Seconds()
			})
		out = append(out, Series{Label: fmt.Sprintf("runtime[s] cΣ %v", obj), X: x, Summaries: sums})
	}
	return out
}

// Figure6 — gap of the cΣ-Model under the three fixed-set objectives.
func Figure6(records []Record, cfg Config) []Series {
	const infSentinel = 1e6
	var out []Series
	for _, o := range []core.Objective{core.MaxEarliness, core.BalanceNodeLoad, core.DisableLinks} {
		obj := o
		x, sums := collect(records, cfg.FlexMinutes,
			func(r Record) bool { return r.Algo == "mip" && r.Obj == obj },
			func(r Record) float64 {
				if math.IsInf(r.Gap, 1) {
					return infSentinel
				}
				return r.Gap * 100
			})
		out = append(out, Series{Label: fmt.Sprintf("gap[%%] cΣ %v (1e6 ≙ ∞)", obj), X: x, Summaries: sums})
	}
	return out
}

// Figure7 — relative performance of Algorithm cΣ_A^G with respect to the
// solutions found by the cΣ-Model: (opt − greedy)/opt in percent, paired by
// (flexibility, seed).
func Figure7(records []Record, cfg Config) []Series {
	type key struct {
		flex float64
		seed int64
	}
	opt := map[key]float64{}
	grd := map[key]float64{}
	for _, r := range records {
		if r.Obj != core.AccessControl {
			continue
		}
		k := key{r.FlexMin, r.Seed}
		switch r.Algo {
		case "mip":
			if r.Form == core.CSigma {
				opt[k] = r.Value
			}
		case "greedy":
			grd[k] = r.Value
		}
	}
	gapRecords := make([]Record, 0, len(grd))
	for k, g := range grd {
		o, ok := opt[k]
		if !ok || o <= 0 {
			continue
		}
		gapRecords = append(gapRecords, Record{
			FlexMin: k.flex, Seed: k.seed, Algo: "pair",
			Value: 100 * (o - g) / o,
		})
	}
	// grd is a map, so the records arrive in randomized iteration order; fix
	// the order before any consumer can accumulate floats across it.
	sort.Slice(gapRecords, func(i, j int) bool {
		a, b := gapRecords[i], gapRecords[j]
		if a.FlexMin < b.FlexMin {
			return true
		}
		if b.FlexMin < a.FlexMin {
			return false
		}
		return a.Seed < b.Seed
	})
	x, sums := collect(gapRecords, cfg.FlexMinutes,
		func(r Record) bool { return true },
		func(r Record) float64 { return r.Value })
	return []Series{{Label: "greedy optimality gap [%] vs cΣ", X: x, Summaries: sums}}
}

// Figure8 — number of requests embedded by the cΣ-Model per flexibility.
func Figure8(records []Record, cfg Config) []Series {
	x, sums := collect(records, cfg.FlexMinutes,
		func(r Record) bool {
			return r.Algo == "mip" && r.Form == core.CSigma && r.Obj == core.AccessControl
		},
		func(r Record) float64 { return float64(r.Accepted) })
	return []Series{{Label: "requests embedded (cΣ)", X: x, Summaries: sums}}
}

// Figure9 — relative improvement of the access-control objective compared
// with the objective at flexibility 0, paired by seed, in percent.
func Figure9(records []Record, cfg Config) []Series {
	base := map[int64]float64{}
	for _, r := range records {
		if r.Algo == "mip" && r.Form == core.CSigma && r.Obj == core.AccessControl && r.FlexMin == 0 {
			base[r.Seed] = r.Value
		}
	}
	var rel []Record
	for _, r := range records {
		if r.Algo != "mip" || r.Form != core.CSigma || r.Obj != core.AccessControl {
			continue
		}
		b, ok := base[r.Seed]
		if !ok || b <= 0 {
			continue
		}
		rel = append(rel, Record{FlexMin: r.FlexMin, Seed: r.Seed, Value: 100 * (r.Value - b) / b})
	}
	x, sums := collect(rel, cfg.FlexMinutes,
		func(r Record) bool { return true },
		func(r Record) float64 { return r.Value })
	return []Series{{Label: "objective improvement over flex=0 [%] (cΣ)", X: x, Summaries: sums}}
}
